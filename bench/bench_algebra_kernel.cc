// The relational kernel (algebra/) against the legacy by-value VarRelation
// algebra on the workload the ISSUE-3 refactor targets: semijoin-heavy
// full-reducer fixpoints, where the legacy operators rebuild a hash index
// and deep-copy the surviving rows on every single semijoin, while the
// kernel reuses each table's cached index and returns shared (copy-free)
// handles for semijoins that remove nothing.
//
//   - BM_Semijoin_{Legacy,Kernel}     one repeated semijoin against a fixed
//                                     right-hand side (index cached vs
//                                     rebuilt per call);
//   - BM_FullReducer_{Legacy,Kernel}  materialize + pairwise-consistency
//                                     fixpoint (solver/consistency.h) on a
//                                     pruning chain of views, each side
//                                     paying its own ingest path — the E20
//                                     experiment. CI gates legacy >= 2x
//                                     kernel time;
//   - BM_CountedProjection_{Legacy,Kernel}
//                                     |pi_F(r)| by materialize+dedup vs the
//                                     kernel's streamed group count.
//
// Baseline snapshot: BENCH_algebra_kernel.json at the repository root
// (regenerate with --benchmark_format=json).

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <array>
#include <random>
#include <utility>
#include <vector>

#include "algebra/rel.h"
#include "data/var_relation.h"
#include "solver/consistency.h"

namespace sharpcq {
namespace {

constexpr int kChainViews = 8;
constexpr int kRowsPerView = 2000;
constexpr Value kDomain = 64;

// Raw tuples for a chain of binary views v_i -- v_{i+1}. The tail view's
// first column is restricted to a slice of the domain, so consistency
// enforcement prunes backwards over several fixpoint rounds — most pair
// semijoins in the later rounds remove nothing, which is exactly where the
// index cache and the no-op sharing pay off.
struct RawView {
  IdSet vars;
  std::vector<std::array<Value, 2>> rows;
};

std::vector<RawView> MakeChainRows() {
  std::mt19937_64 rng(12345);
  std::uniform_int_distribution<Value> value(0, kDomain - 1);
  std::vector<RawView> views;
  views.reserve(kChainViews);
  for (int i = 0; i < kChainViews; ++i) {
    RawView view;
    view.vars = IdSet{static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(i + 1)};
    const bool tail = i == kChainViews - 1;
    view.rows.reserve(kRowsPerView);
    for (int t = 0; t < kRowsPerView; ++t) {
      Value a = value(rng);
      if (tail) a /= 2;  // restrict: forces pruning up the chain
      view.rows.push_back({a, value(rng)});
    }
    views.push_back(std::move(view));
  }
  return views;
}

// Each side's own materialization path, as its strategies ingest bags:
// by-value relation + sort dedup (legacy) vs table build + hash dedup
// (kernel). Both are timed, so every benchmark iteration is independent —
// no kernel index cache survives between iterations.
std::vector<VarRelation> BuildLegacyViews(const std::vector<RawView>& raw) {
  std::vector<VarRelation> views;
  views.reserve(raw.size());
  for (const RawView& r : raw) {
    VarRelation view(r.vars);
    for (const auto& row : r.rows) {
      view.rel().AddRow(std::span<const Value>(row));
    }
    view.rel().Dedup();
    views.push_back(std::move(view));
  }
  return views;
}

std::vector<Rel> BuildKernelViews(const std::vector<RawView>& raw) {
  std::vector<Rel> views;
  views.reserve(raw.size());
  for (const RawView& r : raw) {
    TableBuilder builder(2);
    builder.ReserveRows(r.rows.size());
    for (const auto& row : r.rows) {
      builder.AddRow(std::span<const Value>(row));
    }
    views.emplace_back(r.vars, std::move(builder).Build());
  }
  return views;
}

// The pre-kernel pairwise-consistency fixpoint, verbatim: by-value
// VarRelation semijoins that rebuild the right-hand index on every call.
bool LegacyEnforcePairwiseConsistency(std::vector<VarRelation>* views) {
  const std::size_t n = views->size();
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && (*views)[i].vars().Intersects((*views)[j].vars())) {
        pairs.emplace_back(i, j);
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto [i, j] : pairs) {
      bool local = false;
      (*views)[i] = Semijoin((*views)[i], (*views)[j], &local);
      if (local) {
        changed = true;
        if ((*views)[i].empty()) return false;
      }
    }
  }
  return true;
}

void BM_Semijoin_Legacy(benchmark::State& state) {
  std::vector<VarRelation> views = BuildLegacyViews(MakeChainRows());
  const VarRelation& a = views[0];
  const VarRelation& b = views[1];
  for (auto _ : state) {
    VarRelation kept = Semijoin(a, b);
    benchmark::DoNotOptimize(kept.size());
  }
}
BENCHMARK(BM_Semijoin_Legacy);

// Steady-state semijoin against a stable right-hand side (the shape of a
// fixpoint round): the kernel serves b's index from the cache, the legacy
// operator rebuilds it per call.
void BM_Semijoin_Kernel(benchmark::State& state) {
  std::vector<Rel> views = BuildKernelViews(MakeChainRows());
  const Rel& a = views[0];
  const Rel& b = views[1];
  for (auto _ : state) {
    Rel kept = Semijoin(a, b);
    benchmark::DoNotOptimize(kept.size());
  }
}
BENCHMARK(BM_Semijoin_Kernel);

void BM_FullReducer_Legacy(benchmark::State& state) {
  const std::vector<RawView> raw = MakeChainRows();
  std::size_t surviving = 0;
  for (auto _ : state) {
    std::vector<VarRelation> views = BuildLegacyViews(raw);
    bool ok = LegacyEnforcePairwiseConsistency(&views);
    benchmark::DoNotOptimize(ok);
    surviving = views[0].size();
  }
  state.counters["surviving_rows"] =
      static_cast<double>(surviving);
}
BENCHMARK(BM_FullReducer_Legacy);

void BM_FullReducer_Kernel(benchmark::State& state) {
  const std::vector<RawView> raw = MakeChainRows();
  std::size_t surviving = 0;
  for (auto _ : state) {
    std::vector<Rel> views = BuildKernelViews(raw);
    bool ok = EnforcePairwiseConsistency(&views);
    benchmark::DoNotOptimize(ok);
    surviving = views[0].size();
  }
  state.counters["surviving_rows"] =
      static_cast<double>(surviving);
}
BENCHMARK(BM_FullReducer_Kernel);

void BM_CountedProjection_Legacy(benchmark::State& state) {
  std::vector<VarRelation> views = BuildLegacyViews(MakeChainRows());
  const VarRelation& r = views[0];
  const IdSet onto{0};
  for (auto _ : state) {
    std::size_t distinct = Project(r, onto).size();
    benchmark::DoNotOptimize(distinct);
  }
}
BENCHMARK(BM_CountedProjection_Legacy);

// Steady-state distinct count on a stable relation: after the first call
// the group index is cached and the count is a lookup.
void BM_CountedProjection_Kernel(benchmark::State& state) {
  std::vector<Rel> views = BuildKernelViews(MakeChainRows());
  const Rel& r = views[0];
  const IdSet onto{0};
  for (auto _ : state) {
    std::size_t distinct = DistinctCount(r, onto);
    benchmark::DoNotOptimize(distinct);
  }
}
BENCHMARK(BM_CountedProjection_Kernel);

}  // namespace
}  // namespace sharpcq

SHARPCQ_BENCH_MAIN();
