// Batch counting throughput: single-thread vs N-thread queries/sec on the
// mixed paper-query workload, driving CountBatch over the engine's
// work-stealing pool with the sharded plan cache warm (steady-state
// serving, the ROADMAP's heavy-traffic scenario).
//
//   - BM_Batch_Throughput/T     CountBatch of a 64-job mixed workload on a
//                               T-thread pool (T = 1, 2, 4, 8); the
//                               queries/sec figure is the acceptance metric
//                               (>= 2x at T=4 vs T=1 on a >= 4-core host).
//   - BM_Sequential_Baseline    the same workload as a plain Count loop on
//                               the caller thread — what T=1 must match.
//   - BM_Batch_ColdPlanning/T   the same workload with the cache cleared
//                               every iteration: T threads colliding on
//                               first-miss planning, which exercises shard
//                               contention rather than execution scaling.
//
// Baseline snapshot: BENCH_batch_throughput.json at the repository root
// (regenerate with --benchmark_format=json). The committed baseline was
// recorded on the build container; scaling claims should be read off a
// host with >= 4 hardware threads (the JSON context records num_cpus).

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <vector>

#include "engine/engine.h"
#include "gen/paper_queries.h"
#include "util/check.h"

namespace sharpcq {
namespace {

// The mixed workload: the four paper shapes of bench_plan_cache, each
// repeated 16x (64 jobs), so every strategy the planner picks is in the mix
// and jobs sharing a shape share one cached plan.
struct Workload {
  std::vector<Database> databases;
  std::vector<CountJob> jobs;
};

Workload MakeWorkload() {
  Workload w;
  w.databases.reserve(4);
  Q0DatabaseParams q0_params;
  q0_params.seed = 7;
  w.databases.push_back(MakeQ0Database(q0_params));        // Q0: #-htw 2
  w.databases.push_back(MakeQ1Database(8, 24, 7));         // Q1: #-htw 2
  w.databases.push_back(MakeQn1RandomDatabase(10, 30, 7)); // Qn1: #-htw 1
  w.databases.push_back(MakeQh2Database(3));               // Qh2: acyclic-ps13
  const ConjunctiveQuery queries[4] = {MakeQ0(), MakeQ1(), MakeQn1(5),
                                       MakeQh2(3)};
  for (int repeat = 0; repeat < 16; ++repeat) {
    for (int s = 0; s < 4; ++s) {
      w.jobs.push_back({queries[s], &w.databases[static_cast<std::size_t>(s)]});
    }
  }
  return w;
}

void BM_Batch_Throughput(benchmark::State& state) {
  Workload w = MakeWorkload();
  EngineOptions options;
  options.batch_threads = static_cast<std::size_t>(state.range(0));
  CountingEngine engine(options);
  engine.CountBatch(w.jobs);  // warm the plan cache and spin up the pool
  for (auto _ : state) {
    std::vector<CountResult> results = engine.CountBatch(w.jobs);
    SHARPCQ_CHECK(results.size() == w.jobs.size());
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.jobs.size()));
  state.counters["pool_threads"] = static_cast<double>(state.range(0));
  state.counters["cache_hit_rate"] =
      static_cast<double>(engine.cache_stats().hits) /
      static_cast<double>(engine.cache_stats().lookups);
}
BENCHMARK(BM_Batch_Throughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Sequential_Baseline(benchmark::State& state) {
  Workload w = MakeWorkload();
  CountingEngine engine;
  for (const CountJob& job : w.jobs) engine.Count(job.query, *job.db);  // warm
  for (auto _ : state) {
    for (const CountJob& job : w.jobs) {
      CountResult result = engine.Count(job.query, *job.db);
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.jobs.size()));
}
BENCHMARK(BM_Sequential_Baseline)->Unit(benchmark::kMillisecond);

void BM_Batch_ColdPlanning(benchmark::State& state) {
  Workload w = MakeWorkload();
  EngineOptions options;
  options.batch_threads = static_cast<std::size_t>(state.range(0));
  CountingEngine engine(options);
  engine.CountBatch(w.jobs);  // spin up the pool outside the timed region
  for (auto _ : state) {
    engine.ClearCache();
    std::vector<CountResult> results = engine.CountBatch(w.jobs);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.jobs.size()));
  state.counters["pool_threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Batch_ColdPlanning)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace sharpcq

SHARPCQ_BENCH_MAIN();
