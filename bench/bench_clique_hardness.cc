// E15 (DESIGN.md) — the hardness side of Theorem 1.6, empirically: counting
// k-cliques encoded as #CQ. The class {Clique_k} has unbounded #-hypertree
// width (quantifier-free cores, clique hypergraphs), and the theorem says
// no polynomial algorithm exists for such classes (under FPT != #W[1]).
// The observable shape: counting time grows superpolynomially with k at
// fixed graph size, and the width found by the decomposition search grows
// with k.
//
// Counters: sharp_htw (grows ~ k/2), answers (ordered cliques = k! per
// clique).

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "count/enumeration.h"
#include "engine/engine.h"
#include "gen/paper_queries.h"
#include "util/check.h"

namespace sharpcq {
namespace {

constexpr int kGraphNodes = 30;
constexpr double kEdgeProbability = 0.4;

void BM_Clique_SharpWidthGrows(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeCliqueQuery(k);
  int width = 0;
  for (auto _ : state) {
    width = SharpHypertreeWidth(q, k).value_or(-1);
    benchmark::DoNotOptimize(width);
  }
  SHARPCQ_CHECK(width >= (k - 1) / 2);
  state.counters["sharp_htw"] = width;
}
BENCHMARK(BM_Clique_SharpWidthGrows)->DenseRange(2, 5);

void BM_Clique_CountViaDecomposition(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeCliqueQuery(k);
  Database db = MakeRandomGraphDatabase(kGraphNodes, kEdgeProbability, 17);
  // Measurement-scope change vs. pre-engine baselines: the decomposition
  // search runs once (first iteration) and is then served from the plan
  // cache; steady-state iterations measure execution only. Cold planning
  // cost is benchmarked separately in bench_plan_cache.cc.
  CountingEngine engine;
  PlannerOptions options;
  options.max_width = k;
  options.enable_acyclic_ps13 = false;
  options.enable_hybrid = false;
  CountInt answers = 0;
  for (auto _ : state) {
    CountResult result = engine.Count(q, db, options);
    SHARPCQ_CHECK(result.method.rfind("#-hypertree", 0) == 0);
    answers = result.count;
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Clique_CountViaDecomposition)->DenseRange(2, 5);

void BM_Clique_CountByBacktracking(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeCliqueQuery(k);
  Database db = MakeRandomGraphDatabase(kGraphNodes, kEdgeProbability, 17);
  CountInt answers = 0;
  for (auto _ : state) {
    answers = CountByBacktracking(q, db);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Clique_CountByBacktracking)->DenseRange(2, 5);

// Graph-size scaling at fixed k = 4: even the decomposition-based counter
// pays n^{Theta(k)} — the class is not fixed-parameter tractable in k, but
// each member is polynomial in the data, which is exactly the promise
// boundary of Theorem 1.6.
void BM_Clique4_GraphScaling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeCliqueQuery(4);
  Database db = MakeRandomGraphDatabase(n, kEdgeProbability, 23);
  CountingEngine engine;
  PlannerOptions options;
  options.max_width = 4;
  options.enable_acyclic_ps13 = false;
  options.enable_hybrid = false;
  CountInt answers = 0;
  for (auto _ : state) {
    CountResult result = engine.Count(q, db, options);
    SHARPCQ_CHECK(result.method.rfind("#-hypertree", 0) == 0);
    answers = result.count;
    benchmark::DoNotOptimize(result);
  }
  state.counters["graph_nodes"] = n;
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Clique4_GraphScaling)->RangeMultiplier(2)->Range(10, 40);

}  // namespace
}  // namespace sharpcq

SHARPCQ_BENCH_MAIN();
