// The statistics-driven cost model on its pessimal inputs (ISSUE 8): data
// whose textual atom order is exactly wrong for the fixed schedulers, so
// every win has to come from the persisted data profile.
//
//   - BM_SkewedStar_CostOn/Off: a 5-atom acyclic star whose single
//     selective filter atom is listed LAST. The cost-model run reorders the
//     join-tree children so the selective semijoin shrinks the 200k-row
//     center before the three unselective leaves probe it; the cost-off run
//     probes the full center three times first. CI gates the Off/On ratio
//     at >= 1.3x (best of 3 repetitions).
//   - BM_ReversedChain_CostOn/Off: a 3-atom chain whose tiny end relation
//     is listed last — GYO roots the tree at the middle atom, and the
//     cost model hoists the tiny child ahead of the 200k-row sibling so
//     the root shrinks before the expensive probe. Informational, not
//     gated.
//
// Both databases round-trip through a v2 snapshot before counting, so the
// engines run on columnar tables with persisted stats (the production
// serving shape; the cost model consults stats without a computation pass).
//
// Baseline snapshot: BENCH_cost_model.json at the repository root
// (regenerate with --benchmark_format=json from an optimized build).

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <cstdio>
#include <string>
#include <unistd.h>

#include "engine/engine.h"
#include "query/parser.h"
#include "storage/snapshot.h"
#include "util/check.h"

namespace sharpcq {
namespace {

constexpr int kDomain = 100000;   // X values
constexpr int kCenterRows = 200000;
constexpr int kSelective = 10;    // rows in the filter atom

// Round-trips `db` through a temporary v2 snapshot and returns the mapped
// (columnar, stats-installed) load — the shape a catalog serves.
Database SnapshotRoundTrip(const Database& db, const char* tag) {
  std::string path = "/tmp/sharpcq_bench_cost_" + std::string(tag) + "_" +
                     std::to_string(::getpid()) + ".sharpcq";
  Status error;
  auto stats = WriteSnapshot(db, nullptr, path, &error);
  SHARPCQ_CHECK_MSG(stats.has_value(), error.message().c_str());
  auto loaded = LoadSnapshot(path, SnapshotLoadMode::kMapped, &error);
  SHARPCQ_CHECK_MSG(loaded.has_value(), error.message().c_str());
  ::unlink(path.c_str());  // the mapping keeps the pages alive
  return std::move(loaded->db);
}

// Star: center(X,P) with 200k rows over a 100k X-domain, three unselective
// leaves covering the whole domain, and a 10-row filter atom. The filter is
// the LAST atom textually, so the default child order runs it last.
const Database& StarDb() {
  static const Database db = [] {
    Database raw;
    for (int i = 0; i < kCenterRows; ++i) {
      raw.AddTuple("center", {i % kDomain, i});
    }
    for (int x = 0; x < kDomain; ++x) {
      raw.AddTuple("leaf_a", {x});
      raw.AddTuple("leaf_b", {x});
      raw.AddTuple("leaf_c", {x});
    }
    for (int s = 0; s < kSelective; ++s) {
      raw.AddTuple("sel", {s * (kDomain / kSelective)});
    }
    return SnapshotRoundTrip(raw, "star");
  }();
  return db;
}

// Chain: r1 and r2 carry 200k rows, r3 ends in a 10-row relation. GYO
// roots the join tree at the middle atom r2; the default child order
// visits the 200k-row r1 before the 10-row r3.
const Database& ChainDb() {
  static const Database db = [] {
    Database raw;
    for (int i = 0; i < kCenterRows; ++i) {
      raw.AddTuple("r1", {i % kDomain, (i * 7) % kDomain});
      raw.AddTuple("r2", {(i * 7) % kDomain, (i * 13) % kDomain});
    }
    for (int s = 0; s < kSelective; ++s) {
      raw.AddTuple("r3", {(s * 13) % kDomain, s});
    }
    return SnapshotRoundTrip(raw, "chain");
  }();
  return db;
}

ConjunctiveQuery StarQuery() {
  auto q = ParseQuery(
      "Q(X) <- center(X,P), leaf_a(X), leaf_b(X), leaf_c(X), sel(X)");
  SHARPCQ_CHECK(q.has_value());
  return *q;
}

ConjunctiveQuery ChainQuery() {
  auto q = ParseQuery("Q(A) <- r1(A,B), r2(B,C), r3(C,D)");
  SHARPCQ_CHECK(q.has_value());
  return *q;
}

CountingEngine& Engine(bool cost_model) {
  static CountingEngine on;  // default options: cost model enabled
  static CountingEngine off([] {
    EngineOptions options;
    options.enable_cost_model = false;
    return options;
  }());
  return cost_model ? on : off;
}

void RunCountLoop(benchmark::State& state, const ConjunctiveQuery& q,
                  const Database& db, bool cost_model, bool expect_steered) {
  CountingEngine& engine = Engine(cost_model);
  // Strategy pinned to the acyclic PS13 path: both settings execute the
  // same exact algorithm over the same join tree; only the scheduling
  // (rooting, child order, worklist, morsels) may differ.
  auto options = PlannerOptionsForStrategy("ps13", engine.options().planner);
  SHARPCQ_CHECK(options.has_value());
  CountInt answers = 0;
  for (auto _ : state) {
    CountResult result = engine.Count(q, db, *options);
    SHARPCQ_CHECK(result.method == "acyclic-ps13");
    SHARPCQ_CHECK(result.cost_model_steered == expect_steered);
    answers = result.count;
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_SkewedStar_CostOn(benchmark::State& state) {
  RunCountLoop(state, StarQuery(), StarDb(), /*cost_model=*/true,
               /*expect_steered=*/true);
}
BENCHMARK(BM_SkewedStar_CostOn);

void BM_SkewedStar_CostOff(benchmark::State& state) {
  RunCountLoop(state, StarQuery(), StarDb(), /*cost_model=*/false,
               /*expect_steered=*/false);
}
BENCHMARK(BM_SkewedStar_CostOff);

void BM_ReversedChain_CostOn(benchmark::State& state) {
  RunCountLoop(state, ChainQuery(), ChainDb(), /*cost_model=*/true,
               /*expect_steered=*/true);
}
BENCHMARK(BM_ReversedChain_CostOn);

void BM_ReversedChain_CostOff(benchmark::State& state) {
  RunCountLoop(state, ChainQuery(), ChainDb(), /*cost_model=*/false,
               /*expect_steered=*/false);
}
BENCHMARK(BM_ReversedChain_CostOff);

}  // namespace
}  // namespace sharpcq

SHARPCQ_BENCH_MAIN();
