// E9, E16 (DESIGN.md) — Theorems 3.6 and 6.7 (FPT decomposition search) and
// Lemma 4.3 (polynomial cores).
//
// Shape claims reproduced:
//   - #-decomposition search time depends on the query size only, not on
//     the database (it never touches relations);
//   - the hybrid #b search is FPT: polynomial in the data for fixed query;
//   - core computation via local consistency (Lemma 4.3) is polynomial and
//     agrees with the exact (exponential-worst-case) oracle.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "core/sharp_decomposition.h"
#include "gen/paper_queries.h"
#include "hybrid/sharp_b.h"
#include "solver/core.h"
#include "util/check.h"

namespace sharpcq {
namespace {

void BM_SharpDecomposition_QuerySizeScaling(benchmark::State& state) {
  // Q^n_1 grows linearly in n; the search includes core enumeration + tree
  // projection, both FPT in ||Q||.
  const int n = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQn1(n);
  bool found = false;
  for (auto _ : state) {
    found = FindSharpHypertreeDecomposition(q, 1).has_value();
    benchmark::DoNotOptimize(found);
  }
  SHARPCQ_CHECK(found);
  state.counters["atoms"] = static_cast<double>(q.NumAtoms());
}
BENCHMARK(BM_SharpDecomposition_QuerySizeScaling)->DenseRange(2, 7);

void BM_SharpBSearch_DataScaling(benchmark::State& state) {
  // Theorem 6.7: for a fixed query, the hybrid search is polynomial in the
  // database (here: the Z-domain scales the data).
  const int z = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQbarh2(3);
  Database db = MakeQbarh2Database(3, z);
  std::size_t bound = 0;
  for (auto _ : state) {
    auto d = FindSharpBDecomposition(q, db, 2);
    SHARPCQ_CHECK(d.has_value());
    bound = d->bound;
    benchmark::DoNotOptimize(d);
  }
  SHARPCQ_CHECK(bound == 1);
  state.counters["z_domain"] = z;
}
BENCHMARK(BM_SharpBSearch_DataScaling)->RangeMultiplier(4)->Range(4, 256);

void BM_Core_ExactOracle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQn1(n);
  std::size_t atoms = 0;
  for (auto _ : state) {
    ConjunctiveQuery core = ComputeColoredCore(q);
    atoms = core.NumAtoms();
    benchmark::DoNotOptimize(core);
  }
  SHARPCQ_CHECK(atoms == static_cast<std::size_t>(n));
  state.counters["core_atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_Core_ExactOracle)->DenseRange(2, 7);

void BM_Core_Lemma43Consistency(benchmark::State& state) {
  // The Lemma 4.3 oracle at k = 2 (Q^n_1 cores are acyclic, width 1 <= 2).
  const int n = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQn1(n);
  std::size_t atoms = 0;
  for (auto _ : state) {
    ConjunctiveQuery core = ComputeColoredCoreViaConsistency(q, 2);
    atoms = core.NumAtoms();
    benchmark::DoNotOptimize(core);
  }
  SHARPCQ_CHECK(atoms == static_cast<std::size_t>(n));
  state.counters["core_atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_Core_Lemma43Consistency)->DenseRange(2, 7);

void BM_CoreEnumeration_Q0(benchmark::State& state) {
  // Theorem 3.6's core enumeration on the running example (two cores).
  ConjunctiveQuery q = MakeQ0();
  std::size_t cores = 0;
  for (auto _ : state) {
    cores = EnumerateColoredCores(q, 8).size();
    benchmark::DoNotOptimize(cores);
  }
  SHARPCQ_CHECK(cores == 2);
  state.counters["cores"] = static_cast<double>(cores);
}
BENCHMARK(BM_CoreEnumeration_Q0);

// Ablation (DESIGN.md "Key design decisions"): the #-decomposition search
// tries the greedy core first and only falls back to full substructure-core
// enumeration when views reject it (Example 3.5). The gap between the two
// oracles on Q^6_1 is what the fast path saves on every search.
void BM_Ablation_GreedyCoreOnly(benchmark::State& state) {
  ConjunctiveQuery q = MakeQn1(6);
  for (auto _ : state) {
    ConjunctiveQuery core = ComputeColoredCore(q);
    benchmark::DoNotOptimize(core);
  }
}
BENCHMARK(BM_Ablation_GreedyCoreOnly);

void BM_Ablation_FullCoreEnumeration(benchmark::State& state) {
  ConjunctiveQuery q = MakeQn1(6);
  std::size_t cores = 0;
  for (auto _ : state) {
    cores = EnumerateColoredCores(q, 8).size();
    benchmark::DoNotOptimize(cores);
  }
  state.counters["cores"] = static_cast<double>(cores);
}
BENCHMARK(BM_Ablation_FullCoreEnumeration);

}  // namespace
}  // namespace sharpcq

SHARPCQ_BENCH_MAIN();
