// E10, E11, E17 (DESIGN.md) — Theorem 6.2, Example C.1/C.2 (Figure 12),
// Theorem C.5.
//
// On (Q^h_2, D_2) with m = 2^h:
//   - the natural width-1 decomposition HD_2 has bound(D_2, HD_2) = m,
//   - the merged width-2 decomposition HD'_2 has bound 1,
//   - the D-optimal search (Theorem C.5) finds bound 1 automatically at
//     k = 2 and is stuck at bound m for k = 1.
// The PS13 runtime gap is exhibited by rooting the width-1 decomposition at
// the s-vertex (no free variables there): its #-relation then splits
// against the m root groups, paying the degree, while HD'_2 stays flat.
//
// Counters: m, bound, ps13_sets, ps13_set_size.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "count/enumeration.h"
#include "gen/paper_queries.h"
#include "hybrid/degree.h"
#include "hybrid/degree_counting.h"
#include "hybrid/optimal_decomp.h"
#include "util/check.h"

namespace sharpcq {
namespace {

// The width-1 decomposition of Figure 12(c) re-rooted at the s-vertex: the
// root covers no free variable, which is exactly the degenerate case
// Example C.2 warns about.
Hypertree SRootedNaiveHypertree(const ConjunctiveQuery& q, int h) {
  Hypertree ht;
  std::vector<int> parent;
  // Vertex 0 (root): {Y0..Yh} guarded by s (atom 1).
  IdSet s_chi{q.VarByName("Y0")};
  for (int i = 1; i <= h; ++i) {
    s_chi.Insert(q.VarByName("Y" + std::to_string(i)));
  }
  ht.chi.push_back(s_chi);
  ht.lambda.push_back({1});
  parent.push_back(-1);
  // Vertex 1: {X0, Y1..Yh} guarded by r (atom 0), child of the root.
  IdSet r_chi{q.VarByName("X0")};
  for (int i = 1; i <= h; ++i) {
    r_chi.Insert(q.VarByName("Y" + std::to_string(i)));
  }
  ht.chi.push_back(r_chi);
  ht.lambda.push_back({0});
  parent.push_back(0);
  // Vertices 2..h+1: {Xi, Yi} guarded by w_i, children of the r vertex.
  for (int i = 1; i <= h; ++i) {
    ht.chi.push_back(IdSet{q.VarByName("X" + std::to_string(i)),
                           q.VarByName("Y" + std::to_string(i))});
    ht.lambda.push_back({1 + i});
    parent.push_back(1);
  }
  ht.shape = TreeShape::FromParents(std::move(parent));
  return ht;
}

void BM_ExampleC2_BoundOfNaiveHD(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQh2(h);
  Database db = MakeQh2Database(h);
  Hypertree naive = MakeQh2NaiveHypertree(q, h);
  std::size_t bound = 0;
  for (auto _ : state) {
    bound = HypertreeBound(q, db, naive);
    benchmark::DoNotOptimize(bound);
  }
  SHARPCQ_CHECK(bound == (static_cast<std::size_t>(1) << h));
  state.counters["m"] = static_cast<double>(std::size_t{1} << h);
  state.counters["bound"] = static_cast<double>(bound);
}
BENCHMARK(BM_ExampleC2_BoundOfNaiveHD)->DenseRange(2, 10, 2);

void BM_ExampleC2_BoundOfMergedHD(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQh2(h);
  Database db = MakeQh2Database(h);
  Hypertree merged = MakeQh2MergedHypertree(q, h);
  std::size_t bound = 0;
  for (auto _ : state) {
    bound = HypertreeBound(q, db, merged);
    benchmark::DoNotOptimize(bound);
  }
  SHARPCQ_CHECK(bound == 1);
  state.counters["m"] = static_cast<double>(std::size_t{1} << h);
  state.counters["bound"] = static_cast<double>(bound);
}
BENCHMARK(BM_ExampleC2_BoundOfMergedHD)->DenseRange(2, 10, 2);

void BM_Theorem62_Ps13OnSRootedNaive(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQh2(h);
  Database db = MakeQh2Database(h);
  Hypertree naive = SRootedNaiveHypertree(q, h);
  Ps13Stats stats;
  CountInt answers = 0;
  for (auto _ : state) {
    answers = CountByPs13OnHypertree(q, db, naive, &stats).count;
    benchmark::DoNotOptimize(answers);
  }
  SHARPCQ_CHECK(answers == (CountInt{1} << h));
  state.counters["m"] = static_cast<double>(std::size_t{1} << h);
  state.counters["ps13_sets"] = static_cast<double>(stats.max_sets);
  state.counters["ps13_set_size"] = static_cast<double>(stats.max_set_size);
}
BENCHMARK(BM_Theorem62_Ps13OnSRootedNaive)->DenseRange(2, 10, 2);

void BM_Theorem62_Ps13OnMerged(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQh2(h);
  Database db = MakeQh2Database(h);
  Hypertree merged = MakeQh2MergedHypertree(q, h);
  Ps13Stats stats;
  CountInt answers = 0;
  for (auto _ : state) {
    answers = CountByPs13OnHypertree(q, db, merged, &stats).count;
    benchmark::DoNotOptimize(answers);
  }
  SHARPCQ_CHECK(answers == (CountInt{1} << h));
  state.counters["m"] = static_cast<double>(std::size_t{1} << h);
  state.counters["ps13_sets"] = static_cast<double>(stats.max_sets);
  state.counters["ps13_set_size"] = static_cast<double>(stats.max_set_size);
}
BENCHMARK(BM_Theorem62_Ps13OnMerged)->DenseRange(2, 10, 2);

void BM_TheoremC5_DOptimalAtWidth2(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQh2(h);
  Database db = MakeQh2Database(h);
  std::size_t bound = 0;
  for (auto _ : state) {
    auto result = FindDOptimalDecomposition(q, db, 2);
    SHARPCQ_CHECK(result.has_value());
    bound = result->bound;
    benchmark::DoNotOptimize(result);
  }
  SHARPCQ_CHECK(bound == 1);
  state.counters["m"] = static_cast<double>(std::size_t{1} << h);
  state.counters["bound"] = static_cast<double>(bound);
}
BENCHMARK(BM_TheoremC5_DOptimalAtWidth2)->DenseRange(2, 8, 2);

void BM_TheoremC5_DOptimalAtWidth1(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQh2(h);
  Database db = MakeQh2Database(h);
  std::size_t bound = 0;
  for (auto _ : state) {
    auto result = FindDOptimalDecomposition(q, db, 1);
    SHARPCQ_CHECK(result.has_value());
    bound = result->bound;
    benchmark::DoNotOptimize(result);
  }
  SHARPCQ_CHECK(bound == (static_cast<std::size_t>(1) << h));
  state.counters["m"] = static_cast<double>(std::size_t{1} << h);
  state.counters["bound"] = static_cast<double>(bound);
}
BENCHMARK(BM_TheoremC5_DOptimalAtWidth1)->DenseRange(2, 8, 2);

// E17: PS13 acyclic counting scaling in the database size m on the merged
// decomposition (linear shape) — the baseline PS13 behaviour of Section C.
void BM_Ps13_AcyclicScalingInM(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQh2(h);
  Database db = MakeQh2Database(h);
  Hypertree merged = MakeQh2MergedHypertree(q, h);
  CountInt answers = 0;
  for (auto _ : state) {
    answers = CountByPs13OnHypertree(q, db, merged).count;
    benchmark::DoNotOptimize(answers);
  }
  state.counters["m"] = static_cast<double>(std::size_t{1} << h);
  state.counters["answers_per_m"] = 1.0;
}
BENCHMARK(BM_Ps13_AcyclicScalingInM)->DenseRange(4, 12, 2);

}  // namespace
}  // namespace sharpcq

SHARPCQ_BENCH_MAIN();
