// E12 (DESIGN.md) — Example 6.3/6.5 (Figures 9-10): the hybrid family
// (Qbar^h_2, Dbar^m_2).
//
// Shape claims reproduced:
//   - the family has unbounded #-hypertree width: the minimal structural k
//     grows with h (counter structural_k; 0 = not found within budget);
//   - a width-2 #1-generalized hypertree decomposition always exists
//     (counters hybrid_k, hybrid_b);
//   - hybrid counting scales polynomially in h and in the Z-domain size,
//     while the "compute solutions then project" baseline pays for the
//     m-fold Z extensions.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "core/sharp_decomposition.h"
#include "count/enumeration.h"
#include "engine/engine.h"
#include "gen/paper_queries.h"
#include "hybrid/hybrid_counting.h"
#include "util/check.h"

namespace sharpcq {
namespace {

constexpr int kZDomain = 32;

void BM_Qbar_StructuralWidthGrows(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQbarh2(h);
  int k_min = 0;
  for (auto _ : state) {
    k_min = SharpHypertreeWidth(q, /*k_max=*/h + 2).value_or(0);
    benchmark::DoNotOptimize(k_min);
  }
  // The frontier is a clique over the h+1 free variables; covering it needs
  // the rbar atom plus (h-1)-ish w_i atoms, so k grows with h.
  SHARPCQ_CHECK(k_min == 0 || k_min > 2 || h <= 1);
  state.counters["structural_k"] = k_min;
}
BENCHMARK(BM_Qbar_StructuralWidthGrows)->DenseRange(2, 5);

void BM_Qbar_HybridSearch(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQbarh2(h);
  Database db = MakeQbarh2Database(h, kZDomain);
  int k = 0;
  std::size_t b = 0;
  for (auto _ : state) {
    auto d = FindSharpBDecomposition(q, db, 2);
    SHARPCQ_CHECK(d.has_value());
    k = d->decomposition.width;
    b = d->bound;
    benchmark::DoNotOptimize(d);
  }
  SHARPCQ_CHECK(b == 1);
  state.counters["hybrid_k"] = k;
  state.counters["hybrid_b"] = static_cast<double>(b);
}
BENCHMARK(BM_Qbar_HybridSearch)->DenseRange(2, 5);

void BM_Qbar_HybridCount(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQbarh2(h);
  Database db = MakeQbarh2Database(h, kZDomain);
  // Engine path: the query-only planning caches, the database-dependent
  // #b-decomposition search remains part of every execution.
  CountingEngine engine;
  PlannerOptions options;
  options.max_width = 2;
  options.enable_acyclic_ps13 = false;
  CountInt answers = 0;
  for (auto _ : state) {
    CountResult result = engine.Count(q, db, options);
    SHARPCQ_CHECK(result.method.rfind("#b-hypertree", 0) == 0);
    answers = result.count;
    benchmark::DoNotOptimize(result);
  }
  SHARPCQ_CHECK(answers == (CountInt{1} << h));
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Qbar_HybridCount)->DenseRange(2, 5);

void BM_Qbar_JoinProjectBaseline(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQbarh2(h);
  Database db = MakeQbarh2Database(h, kZDomain);
  CountInt answers = 0;
  for (auto _ : state) {
    answers = CountByJoinProject(q, db);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Qbar_JoinProjectBaseline)->DenseRange(2, 5);

void BM_Qbar_BacktrackingBaseline(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQbarh2(h);
  Database db = MakeQbarh2Database(h, kZDomain);
  CountInt answers = 0;
  for (auto _ : state) {
    answers = CountByBacktracking(q, db);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Qbar_BacktrackingBaseline)->DenseRange(2, 5);

// Scaling in the Z-domain (the paper's m): hybrid counting must stay flat
// in the number of Z extensions per answer; h is fixed at 3.
void BM_Qbar_HybridCount_ZScaling(benchmark::State& state) {
  const int z = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQbarh2(3);
  Database db = MakeQbarh2Database(3, z);
  CountInt answers = 0;
  for (auto _ : state) {
    auto result = CountBySharpBDecomposition(q, db, 2);
    SHARPCQ_CHECK(result.has_value());
    answers = result->count;
    benchmark::DoNotOptimize(result);
  }
  SHARPCQ_CHECK(answers == (CountInt{1} << 3));
  state.counters["z_domain"] = z;
}
BENCHMARK(BM_Qbar_HybridCount_ZScaling)->RangeMultiplier(4)->Range(4, 256);

// The same Z-scaling with the decomposition precomputed: the data-
// complexity view of Theorem 6.6 (a DBA finds the decomposition once and
// counts per query). Near-linear in ||D||.
void BM_Qbar_CountOnly_ZScaling(benchmark::State& state) {
  const int z = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQbarh2(3);
  Database db = MakeQbarh2Database(3, z);
  auto d = FindSharpBDecomposition(q, db, 2);
  SHARPCQ_CHECK(d.has_value());
  CountInt answers = 0;
  for (auto _ : state) {
    answers = CountViaSharpB(q, db, *d).count;
    benchmark::DoNotOptimize(answers);
  }
  SHARPCQ_CHECK(answers == (CountInt{1} << 3));
  state.counters["z_domain"] = z;
}
BENCHMARK(BM_Qbar_CountOnly_ZScaling)->RangeMultiplier(4)->Range(4, 256);

void BM_Qbar_JoinProject_ZScaling(benchmark::State& state) {
  const int z = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQbarh2(3);
  Database db = MakeQbarh2Database(3, z);
  CountInt answers = 0;
  for (auto _ : state) {
    answers = CountByJoinProject(q, db);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["z_domain"] = z;
}
BENCHMARK(BM_Qbar_JoinProject_ZScaling)->RangeMultiplier(4)->Range(4, 256);

}  // namespace
}  // namespace sharpcq

SHARPCQ_BENCH_MAIN();
