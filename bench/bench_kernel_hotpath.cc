// The ISSUE-5 packed-key probe kernel against the PR 3 kernel it replaced,
// on the hot paths every counting strategy executes. The PR 3 probe loop —
// assemble a std::vector<Value> key per row, HashRange it, walk an
// open-addressing table comparing whole value vectors — is replicated here
// verbatim (including its per-(table, key-columns) index cache, so the
// comparison isolates the packed-word probes, not PR 3's own caching wins):
//
//   - BM_SemijoinProbe_MultiCol_{Pr3,Packed}  steady-state two-column
//     semijoin probes against a cached right-hand index (the fixpoint-round
//     shape). CI gates Pr3 >= 1.5x Packed time;
//   - BM_FullReducerChain_{Pr3,Packed}        materialize + pairwise
//     consistency on an acyclic pruning chain of 4-ary views with 2-column
//     overlaps: the packed side also exercises the worklist propagator's
//     join-tree downgrade. CI gates Pr3 >= 1.5x Packed;
//   - BM_CountAggregate_{Pr3,Packed}          the CountFullJoin weight
//     aggregation sweep over a materialized chain instance.
//
// Baseline snapshot: BENCH_kernel_hotpath.json at the repository root
// (regenerate with --benchmark_format=json).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "algebra/rel.h"
#include "count/join_tree_instance.h"
#include "solver/consistency.h"
#include "util/count_int.h"
#include "util/hash.h"

namespace sharpcq {
namespace {

// --- the PR 3 kernel, replicated ---------------------------------------------

// Open-addressing index over materialized std::vector<Value> keys: the PR 3
// TableIndex build and probe paths before key packing.
class LegacyValueIndex {
 public:
  LegacyValueIndex(const Table& table, std::vector<int> key_columns)
      : key_columns_(std::move(key_columns)), width_(key_columns_.size()) {
    const std::size_t n = table.rows();
    std::size_t capacity = 16;
    while (capacity < n * 2 + 2) capacity <<= 1;
    slots_.assign(capacity, 0);
    mask_ = capacity - 1;
    std::vector<std::uint32_t> group_of(n);
    std::vector<std::uint32_t> counts;
    std::vector<Value> key(width_);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < width_; ++j) {
        key[j] = table.at(i, key_columns_[j]);
      }
      std::size_t slot = FindSlot(key);
      if (slots_[slot] == 0) {
        keys_.insert(keys_.end(), key.begin(), key.end());
        counts.push_back(0);
        slots_[slot] = static_cast<std::uint32_t>(++num_groups_);
      }
      std::uint32_t g = slots_[slot] - 1;
      group_of[i] = g;
      ++counts[g];
    }
    offsets_.assign(num_groups_ + 1, 0);
    for (std::size_t g = 0; g < num_groups_; ++g) {
      offsets_[g + 1] = offsets_[g] + counts[g];
    }
    rows_.resize(n);
    std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      rows_[cursor[group_of[i]]++] = static_cast<std::uint32_t>(i);
    }
  }

  std::span<const std::uint32_t> Lookup(std::span<const Value> key) const {
    std::size_t slot = FindSlot(key);
    if (slots_[slot] == 0) return {};
    std::uint32_t g = slots_[slot] - 1;
    return {rows_.data() + offsets_[g],
            static_cast<std::size_t>(offsets_[g + 1] - offsets_[g])};
  }

  const std::vector<int>& key_columns() const { return key_columns_; }

 private:
  std::size_t FindSlot(std::span<const Value> key) const {
    std::size_t h = HashRange(key.begin(), key.end()) & mask_;
    while (true) {
      std::uint32_t g = slots_[h];
      if (g == 0) return h;
      const Value* stored = keys_.data() + (g - 1) * width_;
      if (std::equal(key.begin(), key.end(), stored)) return h;
      h = (h + 1) & mask_;
    }
  }

  std::vector<int> key_columns_;
  std::size_t width_;
  std::size_t num_groups_ = 0;
  std::vector<Value> keys_;
  std::vector<std::uint32_t> slots_;
  std::size_t mask_ = 0;
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> rows_;
};

// The PR 3 per-table index cache: one LegacyValueIndex per
// (table, key columns), like Table's own cache but value-keyed. Entries
// hold the table alive so a dead table's address can never alias a cached
// index (the kernel's cache lives on the Table itself and is immune).
class LegacyIndexCache {
 public:
  const LegacyValueIndex& On(std::shared_ptr<const Table> table,
                             std::vector<int> cols) {
    auto key = std::make_pair(table.get(), std::move(cols));
    auto it = cache_.find(key);
    if (it != cache_.end()) return *it->second.second;
    auto index = std::make_unique<LegacyValueIndex>(*table, key.second);
    const LegacyValueIndex& ref = *index;
    cache_.emplace(std::move(key),
                   std::make_pair(std::move(table), std::move(index)));
    return ref;
  }

 private:
  std::map<std::pair<const Table*, std::vector<int>>,
           std::pair<std::shared_ptr<const Table>,
                     std::unique_ptr<LegacyValueIndex>>>
      cache_;
};

// PR 3 Semijoin: per-row key vector assembly + value-keyed lookup, with the
// copy-free "nothing removed" fast path PR 3 already had.
Rel Pr3Semijoin(const Rel& a, const Rel& b, LegacyIndexCache* cache,
                bool* changed = nullptr) {
  IdSet shared = Intersect(a.vars(), b.vars());
  const LegacyValueIndex& index = cache->On(b.table(), ColumnsOf(b, shared));
  std::vector<int> a_cols = ColumnsOf(a, shared);
  std::vector<Value> key(shared.size());
  const Table& ta = *a.table();
  const std::size_t n = ta.rows();
  std::vector<std::uint32_t> kept;
  kept.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < a_cols.size(); ++j) {
      key[j] = ta.at(i, a_cols[j]);
    }
    if (!index.Lookup(key).empty()) {
      kept.push_back(static_cast<std::uint32_t>(i));
    }
  }
  if (kept.size() == n) {
    if (changed != nullptr) *changed = false;
    return a;
  }
  if (changed != nullptr) *changed = true;
  return Rel(a.vars(), Table::Gather(ta, kept));
}

// PR 3 pairwise consistency: the full-rescan fixpoint (every interacting
// pair, every round, until a clean confirming round).
bool Pr3EnforcePairwiseConsistency(std::vector<Rel>* views,
                                   LegacyIndexCache* cache) {
  const std::size_t n = views->size();
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && (*views)[i].vars().Intersects((*views)[j].vars())) {
        pairs.emplace_back(i, j);
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto [i, j] : pairs) {
      bool local = false;
      (*views)[i] = Pr3Semijoin((*views)[i], (*views)[j], cache, &local);
      if (local) {
        changed = true;
        if ((*views)[i].empty()) return false;
      }
    }
  }
  return true;
}

// --- workloads ----------------------------------------------------------------

constexpr int kChainViews = 6;
constexpr int kRowsPerView = 8000;
constexpr Value kDomain = 32;  // dictionary-dense: 2-col keys bit-pack

struct RawView {
  IdSet vars;
  std::vector<std::vector<Value>> rows;
};

// A chain of 4-ary views v_i(x_{2i}..x_{2i+3}) overlapping the next view on
// two columns; the tail view's key columns are restricted so consistency
// enforcement prunes backwards through the chain.
std::vector<RawView> MakeChainRows() {
  std::mt19937_64 rng(20260729);
  std::uniform_int_distribution<Value> value(0, kDomain - 1);
  std::vector<RawView> views;
  views.reserve(kChainViews);
  for (int i = 0; i < kChainViews; ++i) {
    RawView view;
    for (std::uint32_t v = 0; v < 4; ++v) {
      view.vars.Insert(static_cast<std::uint32_t>(2 * i) + v);
    }
    const bool tail = i == kChainViews - 1;
    view.rows.reserve(kRowsPerView);
    for (int t = 0; t < kRowsPerView; ++t) {
      Value a = value(rng);
      Value b = value(rng);
      if (tail) {  // restrict the overlap columns: forces pruning
        a /= 2;
        b /= 2;
      }
      view.rows.push_back({a, b, value(rng), value(rng)});
    }
    views.push_back(std::move(view));
  }
  return views;
}

std::vector<Rel> BuildViews(const std::vector<RawView>& raw) {
  std::vector<Rel> views;
  views.reserve(raw.size());
  for (const RawView& r : raw) {
    TableBuilder builder(static_cast<int>(r.rows[0].size()));
    builder.ReserveRows(r.rows.size());
    for (const auto& row : r.rows) {
      builder.AddRow(std::span<const Value>(row));
    }
    views.emplace_back(r.vars, std::move(builder).Build());
  }
  return views;
}

// Probe/build pair for the steady-state semijoin: b holds every key combo,
// so the semijoin keeps every row of a and both sides measure pure probes.
std::pair<Rel, Rel> MakeProbePair() {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<Value> value(0, kDomain - 1);
  TableBuilder a_builder(3);
  a_builder.ReserveRows(40000);
  for (int t = 0; t < 40000; ++t) {
    std::vector<Value> row = {value(rng), value(rng), value(rng)};
    a_builder.AddRow(row);
  }
  TableBuilder b_builder(3);
  b_builder.ReserveRows(static_cast<std::size_t>(kDomain * kDomain));
  for (Value x = 0; x < kDomain; ++x) {
    for (Value y = 0; y < kDomain; ++y) {
      std::vector<Value> row = {x, y, x};
      b_builder.AddRow(row);
    }
  }
  return {Rel(IdSet{0, 1, 2}, std::move(a_builder).Build()),
          Rel(IdSet{0, 1, 3}, std::move(b_builder).Build())};
}

void BM_SemijoinProbe_MultiCol_Pr3(benchmark::State& state) {
  auto [a, b] = MakeProbePair();
  LegacyIndexCache cache;
  for (auto _ : state) {
    Rel kept = Pr3Semijoin(a, b, &cache);
    benchmark::DoNotOptimize(kept.size());
  }
  state.counters["rows"] = static_cast<double>(a.size());
}
BENCHMARK(BM_SemijoinProbe_MultiCol_Pr3);

void BM_SemijoinProbe_MultiCol_Packed(benchmark::State& state) {
  auto [a, b] = MakeProbePair();
  for (auto _ : state) {
    Rel kept = Semijoin(a, b);
    benchmark::DoNotOptimize(kept.size());
  }
  state.counters["rows"] = static_cast<double>(a.size());
}
BENCHMARK(BM_SemijoinProbe_MultiCol_Packed);

// Both reducer benches ingest the chain once and enforce consistency on a
// fresh vector of handles per iteration (Rel copies share tables, so the
// iteration measures semijoin probing and the materialization of pruned
// views, not CSV-style ingest). Index caches — the kernel's per-table one
// and the Pr3 replica's — persist across iterations on the unpruned source
// tables, the steady state of a fixpoint-serving engine.
void BM_FullReducerChain_Pr3(benchmark::State& state) {
  const std::vector<Rel> chain = BuildViews(MakeChainRows());
  std::size_t surviving = 0;
  for (auto _ : state) {
    std::vector<Rel> views = chain;
    // Per-iteration cache: PR 3 cached indexes on the table object, so
    // indexes over the pruned intermediates died with their fixpoint run.
    LegacyIndexCache cache;
    bool ok = Pr3EnforcePairwiseConsistency(&views, &cache);
    benchmark::DoNotOptimize(ok);
    surviving = views[0].size();
  }
  state.counters["surviving_rows"] = static_cast<double>(surviving);
}
BENCHMARK(BM_FullReducerChain_Pr3);

void BM_FullReducerChain_Packed(benchmark::State& state) {
  const std::vector<Rel> chain = BuildViews(MakeChainRows());
  std::size_t surviving = 0;
  for (auto _ : state) {
    std::vector<Rel> views = chain;
    bool ok = EnforcePairwiseConsistency(&views);
    benchmark::DoNotOptimize(ok);
    surviving = views[0].size();
  }
  state.counters["surviving_rows"] = static_cast<double>(surviving);
}
BENCHMARK(BM_FullReducerChain_Packed);

// The chain as a path-shaped join-tree instance (vertex i's parent is
// i - 1), for the weight-aggregation sweep.
JoinTreeInstance MakeChainInstance() {
  JoinTreeInstance instance;
  std::vector<int> parents(kChainViews);
  parents[0] = -1;
  for (int i = 1; i < kChainViews; ++i) parents[static_cast<std::size_t>(i)] = i - 1;
  instance.shape = TreeShape::FromParents(std::move(parents));
  instance.nodes = BuildViews(MakeChainRows());
  return instance;
}

// The PR 3 CountFullJoin aggregation loop: per parent row, assemble the
// shared-key vector and look it up in the child's value-keyed index.
CountInt Pr3CountAggregate(const JoinTreeInstance& instance,
                           LegacyIndexCache* cache) {
  std::vector<int> order = instance.shape.TopoOrder();
  std::vector<std::vector<CountInt>> weights(instance.nodes.size());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::size_t v = static_cast<std::size_t>(*it);
    const Rel& rel = instance.nodes[v];
    std::vector<CountInt>& w = weights[v];
    w.assign(rel.size(), CountInt{1});
    for (int child : instance.shape.children[v]) {
      std::size_t c = static_cast<std::size_t>(child);
      const Rel& crel = instance.nodes[c];
      IdSet shared = Intersect(rel.vars(), crel.vars());
      const LegacyValueIndex& index =
          cache->On(crel.table(), ColumnsOf(crel, shared));
      std::vector<int> parent_cols = ColumnsOf(rel, shared);
      std::vector<Value> key(shared.size());
      const Table& parent_table = *rel.table();
      for (std::size_t row = 0; row < rel.size(); ++row) {
        if (w[row] == 0) continue;
        for (std::size_t j = 0; j < parent_cols.size(); ++j) {
          key[j] = parent_table.at(row, parent_cols[j]);
        }
        std::span<const std::uint32_t> matches = index.Lookup(key);
        if (matches.empty()) {
          w[row] = 0;
          continue;
        }
        CountInt sum = 0;
        for (std::uint32_t crow : matches) sum += weights[c][crow];
        w[row] *= sum;
      }
    }
  }
  CountInt total = 0;
  for (CountInt w : weights[static_cast<std::size_t>(instance.shape.root)]) {
    total += w;
  }
  return total;
}

void BM_CountAggregate_Pr3(benchmark::State& state) {
  JoinTreeInstance instance = MakeChainInstance();
  LegacyIndexCache cache;
  for (auto _ : state) {
    CountInt total = Pr3CountAggregate(instance, &cache);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_CountAggregate_Pr3);

void BM_CountAggregate_Packed(benchmark::State& state) {
  JoinTreeInstance instance = MakeChainInstance();
  for (auto _ : state) {
    CountInt total = CountFullJoin(instance);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_CountAggregate_Packed);

}  // namespace
}  // namespace sharpcq

BENCHMARK_MAIN();
