// The ISSUE-5 packed-key probe kernel against the PR 3 kernel it replaced,
// on the hot paths every counting strategy executes. The PR 3 probe loop —
// assemble a std::vector<Value> key per row, HashRange it, walk an
// open-addressing table comparing whole value vectors — is replicated here
// verbatim (including its per-(table, key-columns) index cache, so the
// comparison isolates the packed-word probes, not PR 3's own caching wins):
//
//   - BM_SemijoinProbe_MultiCol_{Pr3,Packed}  steady-state two-column
//     semijoin probes against a cached right-hand index (the fixpoint-round
//     shape). CI gates Pr3 >= 1.5x Packed time;
//   - BM_FullReducerChain_{Pr3,Packed}        materialize + pairwise
//     consistency on an acyclic pruning chain of 4-ary views with 2-column
//     overlaps: the packed side also exercises the worklist propagator's
//     join-tree downgrade. CI gates Pr3 >= 1.5x Packed;
//   - BM_CountAggregate_{Pr3,Packed}          the CountFullJoin weight
//     aggregation sweep over a materialized chain instance.
//
// The ISSUE-6 additions measure the filter-fronted SIMD kernel against the
// ISSUE-5 (PR 5) kernel it replaced — packed words and a word-compare slot
// walk, but per-row scalar hashing, a gathered group_words compare, and no
// miss filter — replicated below as Pr5WordIndex:
//
//   - BM_SemijoinProbe_MissHeavy_{Pr5,Filtered}  semijoin probes where 95%
//     of probe keys are absent from an out-of-L2 build side (the
//     reduced-relation fixpoint shape). CI gates Pr5 >= 1.5x Filtered time;
//   - BM_IndexBuild_OutOfCache_{Streaming,Radix} index construction on a
//     build side whose slot arrays dwarf L2: the streaming insert strides
//     the whole table, the radix build partitions rows so each partition's
//     slot span stays cache-resident.
//
// The ISSUE-9 observability additions rerun two of the above with
// process-wide metrics disabled, isolating the cost of the block-flushed
// counter increments on the kernel hot path:
//
//   - BM_SemijoinProbe_MissHeavy_FilteredMetricsOff  the miss-heavy probe
//     loop (per-block filter-tally flush) without metrics;
//   - BM_FullReducerChain_PackedMetricsOff           the full consistency
//     chain (filter tallies + index-build counter) without metrics.
//
// CI gates the metrics-ON siblings at <= 1.03x these OFF times — the
// "metrics cost under 3%" guarantee of DESIGN.md's Observability section.
//
// Baseline snapshot: BENCH_kernel_hotpath.json at the repository root
// (regenerate with --benchmark_format=json).

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <map>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "algebra/exec_policy.h"
#include "algebra/rel.h"
#include "algebra/table.h"
#include "count/join_tree_instance.h"
#include "solver/consistency.h"
#include "util/count_int.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/mem_budget.h"
#include "util/metrics.h"

namespace sharpcq {
namespace {

// --- the PR 3 kernel, replicated ---------------------------------------------

// Open-addressing index over materialized std::vector<Value> keys: the PR 3
// TableIndex build and probe paths before key packing.
class LegacyValueIndex {
 public:
  LegacyValueIndex(const Table& table, std::vector<int> key_columns)
      : key_columns_(std::move(key_columns)), width_(key_columns_.size()) {
    const std::size_t n = table.rows();
    std::size_t capacity = 16;
    while (capacity < n * 2 + 2) capacity <<= 1;
    slots_.assign(capacity, 0);
    mask_ = capacity - 1;
    std::vector<std::uint32_t> group_of(n);
    std::vector<std::uint32_t> counts;
    std::vector<Value> key(width_);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < width_; ++j) {
        key[j] = table.at(i, key_columns_[j]);
      }
      std::size_t slot = FindSlot(key);
      if (slots_[slot] == 0) {
        keys_.insert(keys_.end(), key.begin(), key.end());
        counts.push_back(0);
        slots_[slot] = static_cast<std::uint32_t>(++num_groups_);
      }
      std::uint32_t g = slots_[slot] - 1;
      group_of[i] = g;
      ++counts[g];
    }
    offsets_.assign(num_groups_ + 1, 0);
    for (std::size_t g = 0; g < num_groups_; ++g) {
      offsets_[g + 1] = offsets_[g] + counts[g];
    }
    rows_.resize(n);
    std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      rows_[cursor[group_of[i]]++] = static_cast<std::uint32_t>(i);
    }
  }

  std::span<const std::uint32_t> Lookup(std::span<const Value> key) const {
    std::size_t slot = FindSlot(key);
    if (slots_[slot] == 0) return {};
    std::uint32_t g = slots_[slot] - 1;
    return {rows_.data() + offsets_[g],
            static_cast<std::size_t>(offsets_[g + 1] - offsets_[g])};
  }

  const std::vector<int>& key_columns() const { return key_columns_; }

 private:
  std::size_t FindSlot(std::span<const Value> key) const {
    std::size_t h = HashRange(key.begin(), key.end()) & mask_;
    while (true) {
      std::uint32_t g = slots_[h];
      if (g == 0) return h;
      const Value* stored = keys_.data() + (g - 1) * width_;
      if (std::equal(key.begin(), key.end(), stored)) return h;
      h = (h + 1) & mask_;
    }
  }

  std::vector<int> key_columns_;
  std::size_t width_;
  std::size_t num_groups_ = 0;
  std::vector<Value> keys_;
  std::vector<std::uint32_t> slots_;
  std::size_t mask_ = 0;
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> rows_;
};

// The PR 3 per-table index cache: one LegacyValueIndex per
// (table, key columns), like Table's own cache but value-keyed. Entries
// hold the table alive so a dead table's address can never alias a cached
// index (the kernel's cache lives on the Table itself and is immune).
class LegacyIndexCache {
 public:
  const LegacyValueIndex& On(std::shared_ptr<const Table> table,
                             std::vector<int> cols) {
    auto key = std::make_pair(table.get(), std::move(cols));
    auto it = cache_.find(key);
    if (it != cache_.end()) return *it->second.second;
    auto index = std::make_unique<LegacyValueIndex>(*table, key.second);
    const LegacyValueIndex& ref = *index;
    cache_.emplace(std::move(key),
                   std::make_pair(std::move(table), std::move(index)));
    return ref;
  }

 private:
  std::map<std::pair<const Table*, std::vector<int>>,
           std::pair<std::shared_ptr<const Table>,
                     std::unique_ptr<LegacyValueIndex>>>
      cache_;
};

// PR 3 Semijoin: per-row key vector assembly + value-keyed lookup, with the
// copy-free "nothing removed" fast path PR 3 already had.
Rel Pr3Semijoin(const Rel& a, const Rel& b, LegacyIndexCache* cache,
                bool* changed = nullptr) {
  IdSet shared = Intersect(a.vars(), b.vars());
  const LegacyValueIndex& index = cache->On(b.table(), ColumnsOf(b, shared));
  std::vector<int> a_cols = ColumnsOf(a, shared);
  std::vector<Value> key(shared.size());
  const Table& ta = *a.table();
  const std::size_t n = ta.rows();
  std::vector<std::uint32_t> kept;
  kept.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < a_cols.size(); ++j) {
      key[j] = ta.at(i, a_cols[j]);
    }
    if (!index.Lookup(key).empty()) {
      kept.push_back(static_cast<std::uint32_t>(i));
    }
  }
  if (kept.size() == n) {
    if (changed != nullptr) *changed = false;
    return a;
  }
  if (changed != nullptr) *changed = true;
  return Rel(a.vars(), Table::Gather(ta, kept));
}

// PR 3 pairwise consistency: the full-rescan fixpoint (every interacting
// pair, every round, until a clean confirming round).
bool Pr3EnforcePairwiseConsistency(std::vector<Rel>* views,
                                   LegacyIndexCache* cache) {
  const std::size_t n = views->size();
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && (*views)[i].vars().Intersects((*views)[j].vars())) {
        pairs.emplace_back(i, j);
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto [i, j] : pairs) {
      bool local = false;
      (*views)[i] = Pr3Semijoin((*views)[i], (*views)[j], cache, &local);
      if (local) {
        changed = true;
        if ((*views)[i].empty()) return false;
      }
    }
  }
  return true;
}

// --- the ISSUE-5 (PR 5) kernel, replicated ------------------------------------

// The PR 5 packing chooser, verbatim: single-column pass-through, dense
// bit-packing under 62 bits, hashed fallback (the bench workloads below all
// pack dense).
KeyPacking Pr5ChoosePacking(const Table& table,
                            const std::vector<int>& key_columns) {
  KeyPacking packing;
  if (key_columns.size() <= 1) {
    packing.mode = KeyPacking::Mode::kSingle;
    return packing;
  }
  int total_bits = 0;
  for (int c : key_columns) {
    std::span<const Value> col = table.Column(c);
    Value lo = col[0];
    Value hi = col[0];
    for (Value v : col) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    std::uint64_t range =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    packing.base.push_back(static_cast<std::uint64_t>(lo));
    packing.range.push_back(range);
    packing.shift.push_back(total_bits);
    total_bits += std::bit_width(range);
  }
  packing.mode = KeyPacking::Mode::kDense;
  return packing;
}

// The PR 5 TableIndex probe path for exact packings: per-row scalar
// HashMix, a slot array holding only group ids, and the word compare
// gathering group_words_[g - 1] — no tags, no inline slot words, no miss
// filter, no batched hashing.
class Pr5WordIndex {
 public:
  static constexpr std::uint32_t kNoGroup = 0xFFFFFFFFu;

  Pr5WordIndex(const Table& table, std::vector<int> key_columns)
      : key_columns_(std::move(key_columns)), width_(key_columns_.size()) {
    packing_ = Pr5ChoosePacking(table, key_columns_);
    const std::size_t n = table.rows();
    std::size_t capacity = 16;
    while (capacity < n * 2 + 2) capacity <<= 1;
    slots_.assign(capacity, 0);
    mask_ = capacity - 1;
    std::vector<std::uint64_t> words(n);
    PackProbeWords(packing_, table,
                   std::span<const int>(key_columns_.data(), width_), 0, n,
                   words.data());
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t h = static_cast<std::size_t>(HashMix(words[i])) & mask_;
      while (true) {
        std::uint32_t g = slots_[h];
        if (g == 0) {
          group_words_.push_back(words[i]);
          slots_[h] = static_cast<std::uint32_t>(++num_groups_);
          break;
        }
        if (group_words_[g - 1] == words[i]) break;
        h = (h + 1) & mask_;
      }
    }
  }

  const KeyPacking& packing() const { return packing_; }
  const std::vector<int>& key_columns() const { return key_columns_; }

  std::uint32_t FindGroupWord(std::uint64_t word) const {
    std::size_t h = static_cast<std::size_t>(HashMix(word)) & mask_;
    while (true) {
      std::uint32_t g = slots_[h];
      if (g == 0) return kNoGroup;
      if (group_words_[g - 1] == word) return g - 1;  // the PR 5 gather
      h = (h + 1) & mask_;
    }
  }

 private:
  std::vector<int> key_columns_;
  std::size_t width_;
  KeyPacking packing_;
  std::size_t num_groups_ = 0;
  std::vector<std::uint64_t> group_words_;
  std::vector<std::uint32_t> slots_;
  std::size_t mask_ = 0;
};

// --- workloads ----------------------------------------------------------------

constexpr int kChainViews = 6;
constexpr int kRowsPerView = 8000;
constexpr Value kDomain = 32;  // dictionary-dense: 2-col keys bit-pack

struct RawView {
  IdSet vars;
  std::vector<std::vector<Value>> rows;
};

// A chain of 4-ary views v_i(x_{2i}..x_{2i+3}) overlapping the next view on
// two columns; the tail view's key columns are restricted so consistency
// enforcement prunes backwards through the chain.
std::vector<RawView> MakeChainRows() {
  std::mt19937_64 rng(20260729);
  std::uniform_int_distribution<Value> value(0, kDomain - 1);
  std::vector<RawView> views;
  views.reserve(kChainViews);
  for (int i = 0; i < kChainViews; ++i) {
    RawView view;
    for (std::uint32_t v = 0; v < 4; ++v) {
      view.vars.Insert(static_cast<std::uint32_t>(2 * i) + v);
    }
    const bool tail = i == kChainViews - 1;
    view.rows.reserve(kRowsPerView);
    for (int t = 0; t < kRowsPerView; ++t) {
      Value a = value(rng);
      Value b = value(rng);
      if (tail) {  // restrict the overlap columns: forces pruning
        a /= 2;
        b /= 2;
      }
      view.rows.push_back({a, b, value(rng), value(rng)});
    }
    views.push_back(std::move(view));
  }
  return views;
}

std::vector<Rel> BuildViews(const std::vector<RawView>& raw) {
  std::vector<Rel> views;
  views.reserve(raw.size());
  for (const RawView& r : raw) {
    TableBuilder builder(static_cast<int>(r.rows[0].size()));
    builder.ReserveRows(r.rows.size());
    for (const auto& row : r.rows) {
      builder.AddRow(std::span<const Value>(row));
    }
    views.emplace_back(r.vars, std::move(builder).Build());
  }
  return views;
}

// Probe/build pair for the steady-state semijoin: b holds every key combo,
// so the semijoin keeps every row of a and both sides measure pure probes.
std::pair<Rel, Rel> MakeProbePair() {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<Value> value(0, kDomain - 1);
  TableBuilder a_builder(3);
  a_builder.ReserveRows(40000);
  for (int t = 0; t < 40000; ++t) {
    std::vector<Value> row = {value(rng), value(rng), value(rng)};
    a_builder.AddRow(row);
  }
  TableBuilder b_builder(3);
  b_builder.ReserveRows(static_cast<std::size_t>(kDomain * kDomain));
  for (Value x = 0; x < kDomain; ++x) {
    for (Value y = 0; y < kDomain; ++y) {
      std::vector<Value> row = {x, y, x};
      b_builder.AddRow(row);
    }
  }
  return {Rel(IdSet{0, 1, 2}, std::move(a_builder).Build()),
          Rel(IdSet{0, 1, 3}, std::move(b_builder).Build())};
}

void BM_SemijoinProbe_MultiCol_Pr3(benchmark::State& state) {
  auto [a, b] = MakeProbePair();
  LegacyIndexCache cache;
  for (auto _ : state) {
    Rel kept = Pr3Semijoin(a, b, &cache);
    benchmark::DoNotOptimize(kept.size());
  }
  state.counters["rows"] = static_cast<double>(a.size());
}
BENCHMARK(BM_SemijoinProbe_MultiCol_Pr3);

void BM_SemijoinProbe_MultiCol_Packed(benchmark::State& state) {
  auto [a, b] = MakeProbePair();
  for (auto _ : state) {
    Rel kept = Semijoin(a, b);
    benchmark::DoNotOptimize(kept.size());
  }
  state.counters["rows"] = static_cast<double>(a.size());
}
BENCHMARK(BM_SemijoinProbe_MultiCol_Packed);

// Miss-heavy probe pair: the build side holds the ~260k distinct (x, y)
// keys over 0..999 x 0..999 with (x + y) % 3 != 0, so its slot arrays
// (1M slots x 13 bytes) dwarf L2 while the blocked bloom filter stays
// L2-resident. The probe side is 95% keys with (x + y) % 3 == 0 —
// guaranteed absent, yet inside the dense packing box, so every miss is a
// real slot-table (or filter) miss, not a poisoned word — and 5% copies of
// build rows. This is the fixpoint shape: semijoins against an
// already-reduced relation, where nearly every probe misses and the
// unfiltered kernel pays an out-of-cache slot touch to learn it.
std::pair<Rel, Rel> MakeMissHeavyPair() {
  std::mt19937_64 rng(4243);
  std::uniform_int_distribution<Value> value(0, 999);
  TableBuilder b_builder(3);
  b_builder.ReserveRows(400000);
  std::vector<std::pair<Value, Value>> build_keys;
  build_keys.reserve(400000);
  for (int t = 0; t < 400000; ++t) {
    Value x = value(rng);
    Value y = value(rng);
    if ((x + y) % 3 == 0) x = (x + 1) % 1000 == 0 ? x - 2 : x + 1;
    if ((x + y) % 3 == 0) continue;
    build_keys.emplace_back(x, y);
    std::vector<Value> row = {x, y, value(rng)};
    b_builder.AddRow(row);
  }
  TableBuilder a_builder(3);
  a_builder.ReserveRows(40000);
  std::uniform_int_distribution<std::size_t> pick(0, build_keys.size() - 1);
  for (int t = 0; t < 40000; ++t) {
    if (t % 20 == 0) {
      const auto& [x, y] = build_keys[pick(rng)];
      std::vector<Value> row = {x, y, value(rng)};
      a_builder.AddRow(row);
    } else {
      Value x = value(rng);
      Value y = value(rng);
      const Value adjust = (3 - (x + y) % 3) % 3;
      y = y + adjust < 1000 ? y + adjust : y + adjust - 3;
      std::vector<Value> row = {x, y, value(rng)};
      a_builder.AddRow(row);
    }
  }
  return {Rel(IdSet{0, 1, 2}, std::move(a_builder).Build()),
          Rel(IdSet{0, 1, 3}, std::move(b_builder).Build())};
}

// Both miss-heavy benches measure the probe loop of a semijoin — pack the
// probe rows, probe a prebuilt (cache-served) index, collect surviving row
// ids — with output materialization and per-call allocation stripped from
// BOTH sides, so the ratio isolates kernel against kernel. (The PR 5 side
// even gets the reused buffers the shipped PR 5 code never had; the gate
// holds anyway.)
void BM_SemijoinProbe_MissHeavy_Pr5(benchmark::State& state) {
  auto [a, b] = MakeMissHeavyPair();
  IdSet shared = Intersect(a.vars(), b.vars());
  Pr5WordIndex index(*b.table(), ColumnsOf(b, shared));
  std::vector<int> a_cols = ColumnsOf(a, shared);
  const Table& ta = *a.table();
  const std::size_t n = ta.rows();
  std::vector<std::uint64_t> words(n);
  std::vector<std::uint32_t> kept;
  kept.reserve(n);
  for (auto _ : state) {
    kept.clear();
    PackProbeWords(index.packing(), ta,
                   std::span<const int>(a_cols.data(), a_cols.size()), 0, n,
                   words.data());
    for (std::size_t i = 0; i < n; ++i) {
      if (index.FindGroupWord(words[i]) != Pr5WordIndex::kNoGroup) {
        kept.push_back(static_cast<std::uint32_t>(i));
      }
    }
    benchmark::DoNotOptimize(kept.size());
  }
  state.counters["rows"] = static_cast<double>(n);
  state.counters["kept"] = static_cast<double>(kept.size());
}
BENCHMARK(BM_SemijoinProbe_MissHeavy_Pr5);

void BM_SemijoinProbe_MissHeavy_Filtered(benchmark::State& state) {
  auto [a, b] = MakeMissHeavyPair();
  IdSet shared = Intersect(a.vars(), b.vars());
  std::shared_ptr<const TableIndex> index =
      b.table()->IndexOn(ColumnsOf(b, shared));
  std::vector<int> a_cols = ColumnsOf(a, shared);
  const Table& ta = *a.table();
  const std::size_t n = ta.rows();
  std::vector<std::uint32_t> kept;
  kept.reserve(n);
  for (auto _ : state) {
    kept.clear();
    ForEachProbeGroup(*index, ta,
                      std::span<const int>(a_cols.data(), a_cols.size()), 0, n,
                      [&](std::size_t i, std::uint32_t group) {
                        if (group != TableIndex::kNoGroup) {
                          kept.push_back(static_cast<std::uint32_t>(i));
                        }
                      });
    benchmark::DoNotOptimize(kept.size());
  }
  state.counters["rows"] = static_cast<double>(n);
  state.counters["kept"] = static_cast<double>(kept.size());
}
BENCHMARK(BM_SemijoinProbe_MissHeavy_Filtered);

// The same filtered probe loop with metrics disabled: every increment on
// the path (the per-block probe-filter tally flush) becomes a relaxed load
// and an untaken branch. CI gates Filtered <= 1.03x this.
void BM_SemijoinProbe_MissHeavy_FilteredMetricsOff(benchmark::State& state) {
  SetMetricsEnabled(false);
  auto [a, b] = MakeMissHeavyPair();
  IdSet shared = Intersect(a.vars(), b.vars());
  std::shared_ptr<const TableIndex> index =
      b.table()->IndexOn(ColumnsOf(b, shared));
  std::vector<int> a_cols = ColumnsOf(a, shared);
  const Table& ta = *a.table();
  const std::size_t n = ta.rows();
  std::vector<std::uint32_t> kept;
  kept.reserve(n);
  for (auto _ : state) {
    kept.clear();
    ForEachProbeGroup(*index, ta,
                      std::span<const int>(a_cols.data(), a_cols.size()), 0, n,
                      [&](std::size_t i, std::uint32_t group) {
                        if (group != TableIndex::kNoGroup) {
                          kept.push_back(static_cast<std::uint32_t>(i));
                        }
                      });
    benchmark::DoNotOptimize(kept.size());
  }
  state.counters["rows"] = static_cast<double>(n);
  state.counters["kept"] = static_cast<double>(kept.size());
  SetMetricsEnabled(true);
}
BENCHMARK(BM_SemijoinProbe_MissHeavy_FilteredMetricsOff);

// Out-of-cache build side: ~330k distinct 2-column keys put the slot
// arrays (1M slots x 13 bytes) far past L2. Each iteration constructs the
// index directly — the table itself is built once — so the measurement is
// the insert pass, streaming vs radix-partitioned.
std::shared_ptr<const Table> MakeOutOfCacheBuildTable() {
  std::mt19937_64 rng(515151);
  std::uniform_int_distribution<Value> value(0, 999);
  TableBuilder builder(2);
  builder.ReserveRows(400000);
  for (int t = 0; t < 400000; ++t) {
    std::vector<Value> row = {value(rng), value(rng)};
    builder.AddRow(row);
  }
  return std::move(builder).Build();
}

void BM_IndexBuild_OutOfCache_Streaming(benchmark::State& state) {
  auto table = MakeOutOfCacheBuildTable();
  TableIndex::SetRadixRowThresholdForTesting(
      std::numeric_limits<std::size_t>::max());
  std::size_t groups = 0;
  for (auto _ : state) {
    TableIndex index(*table, {0, 1});
    groups = index.num_groups();
    benchmark::DoNotOptimize(groups);
  }
  TableIndex::SetRadixRowThresholdForTesting(0);
  state.counters["rows"] = static_cast<double>(table->rows());
  state.counters["groups"] = static_cast<double>(groups);
}
BENCHMARK(BM_IndexBuild_OutOfCache_Streaming);

void BM_IndexBuild_OutOfCache_Radix(benchmark::State& state) {
  auto table = MakeOutOfCacheBuildTable();
  TableIndex::SetRadixRowThresholdForTesting(1);
  std::size_t groups = 0;
  for (auto _ : state) {
    TableIndex index(*table, {0, 1});
    groups = index.num_groups();
    benchmark::DoNotOptimize(groups);
  }
  TableIndex::SetRadixRowThresholdForTesting(0);
  state.counters["rows"] = static_cast<double>(table->rows());
  state.counters["groups"] = static_cast<double>(groups);
}
BENCHMARK(BM_IndexBuild_OutOfCache_Radix);

// Both reducer benches ingest the chain once and enforce consistency on a
// fresh vector of handles per iteration (Rel copies share tables, so the
// iteration measures semijoin probing and the materialization of pruned
// views, not CSV-style ingest). Index caches — the kernel's per-table one
// and the Pr3 replica's — persist across iterations on the unpruned source
// tables, the steady state of a fixpoint-serving engine.
void BM_FullReducerChain_Pr3(benchmark::State& state) {
  const std::vector<Rel> chain = BuildViews(MakeChainRows());
  std::size_t surviving = 0;
  for (auto _ : state) {
    std::vector<Rel> views = chain;
    // Per-iteration cache: PR 3 cached indexes on the table object, so
    // indexes over the pruned intermediates died with their fixpoint run.
    LegacyIndexCache cache;
    bool ok = Pr3EnforcePairwiseConsistency(&views, &cache);
    benchmark::DoNotOptimize(ok);
    surviving = views[0].size();
  }
  state.counters["surviving_rows"] = static_cast<double>(surviving);
}
BENCHMARK(BM_FullReducerChain_Pr3);

void BM_FullReducerChain_Packed(benchmark::State& state) {
  const std::vector<Rel> chain = BuildViews(MakeChainRows());
  std::size_t surviving = 0;
  for (auto _ : state) {
    std::vector<Rel> views = chain;
    bool ok = EnforcePairwiseConsistency(&views);
    benchmark::DoNotOptimize(ok);
    surviving = views[0].size();
  }
  state.counters["surviving_rows"] = static_cast<double>(surviving);
}
BENCHMARK(BM_FullReducerChain_Packed);

// The full consistency chain with metrics disabled — filter-tally flushes
// and the index-build counter all become untaken branches. CI gates Packed
// <= 1.03x this.
void BM_FullReducerChain_PackedMetricsOff(benchmark::State& state) {
  SetMetricsEnabled(false);
  const std::vector<Rel> chain = BuildViews(MakeChainRows());
  std::size_t surviving = 0;
  for (auto _ : state) {
    std::vector<Rel> views = chain;
    bool ok = EnforcePairwiseConsistency(&views);
    benchmark::DoNotOptimize(ok);
    surviving = views[0].size();
  }
  state.counters["surviving_rows"] = static_cast<double>(surviving);
  SetMetricsEnabled(true);
}
BENCHMARK(BM_FullReducerChain_PackedMetricsOff);

// The chain under the robustness machinery at its most expensive
// never-firing configuration: a generous memory budget bound in an
// ExecScope (every allocation site calls ChargeExecMemory) and a failpoint
// armed on the index-build site at a hit count it never reaches, so
// AnyArmed() is true and every SHARPCQ_FAILPOINT takes the registry slow
// path without firing. CI gates this <= 1.03x BM_FullReducerChain_Packed:
// fault injection and budget accounting stay off the probe hot path.
void BM_FullReducerChain_Budgeted(benchmark::State& state) {
  failpoint::Trigger trigger;
  trigger.action = FailpointAction::kError;
  trigger.after_hits = std::numeric_limits<std::uint64_t>::max() / 2;
  failpoint::Arm("index.build", trigger);
  MemoryBudget query_budget(1ull << 40);
  MemoryBudget process_budget(1ull << 40);
  ExecPolicy policy;
  policy.query_memory = &query_budget;
  policy.process_memory = &process_budget;
  ExecScope scope(policy);
  const std::vector<Rel> chain = BuildViews(MakeChainRows());
  std::size_t surviving = 0;
  for (auto _ : state) {
    std::vector<Rel> views = chain;
    bool ok = EnforcePairwiseConsistency(&views);
    benchmark::DoNotOptimize(ok);
    surviving = views[0].size();
  }
  state.counters["surviving_rows"] = static_cast<double>(surviving);
  state.counters["charged_bytes"] = static_cast<double>(query_budget.used());
  failpoint::DisarmAll();
}
BENCHMARK(BM_FullReducerChain_Budgeted);

// The chain as a path-shaped join-tree instance (vertex i's parent is
// i - 1), for the weight-aggregation sweep.
JoinTreeInstance MakeChainInstance() {
  JoinTreeInstance instance;
  std::vector<int> parents(kChainViews);
  parents[0] = -1;
  for (int i = 1; i < kChainViews; ++i) parents[static_cast<std::size_t>(i)] = i - 1;
  instance.shape = TreeShape::FromParents(std::move(parents));
  instance.nodes = BuildViews(MakeChainRows());
  return instance;
}

// The PR 3 CountFullJoin aggregation loop: per parent row, assemble the
// shared-key vector and look it up in the child's value-keyed index.
CountInt Pr3CountAggregate(const JoinTreeInstance& instance,
                           LegacyIndexCache* cache) {
  std::vector<int> order = instance.shape.TopoOrder();
  std::vector<std::vector<CountInt>> weights(instance.nodes.size());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::size_t v = static_cast<std::size_t>(*it);
    const Rel& rel = instance.nodes[v];
    std::vector<CountInt>& w = weights[v];
    w.assign(rel.size(), CountInt{1});
    for (int child : instance.shape.children[v]) {
      std::size_t c = static_cast<std::size_t>(child);
      const Rel& crel = instance.nodes[c];
      IdSet shared = Intersect(rel.vars(), crel.vars());
      const LegacyValueIndex& index =
          cache->On(crel.table(), ColumnsOf(crel, shared));
      std::vector<int> parent_cols = ColumnsOf(rel, shared);
      std::vector<Value> key(shared.size());
      const Table& parent_table = *rel.table();
      for (std::size_t row = 0; row < rel.size(); ++row) {
        if (w[row] == 0) continue;
        for (std::size_t j = 0; j < parent_cols.size(); ++j) {
          key[j] = parent_table.at(row, parent_cols[j]);
        }
        std::span<const std::uint32_t> matches = index.Lookup(key);
        if (matches.empty()) {
          w[row] = 0;
          continue;
        }
        CountInt sum = 0;
        for (std::uint32_t crow : matches) sum += weights[c][crow];
        w[row] *= sum;
      }
    }
  }
  CountInt total = 0;
  for (CountInt w : weights[static_cast<std::size_t>(instance.shape.root)]) {
    total += w;
  }
  return total;
}

void BM_CountAggregate_Pr3(benchmark::State& state) {
  JoinTreeInstance instance = MakeChainInstance();
  LegacyIndexCache cache;
  for (auto _ : state) {
    CountInt total = Pr3CountAggregate(instance, &cache);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_CountAggregate_Pr3);

void BM_CountAggregate_Packed(benchmark::State& state) {
  JoinTreeInstance instance = MakeChainInstance();
  for (auto _ : state) {
    CountInt total = CountFullJoin(instance);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_CountAggregate_Packed);

}  // namespace
}  // namespace sharpcq

SHARPCQ_BENCH_MAIN();
