// Shared benchmark entry point with build-type hygiene.
//
// The packaged Google Benchmark library reports ITS OWN build type in the
// JSON context ("library_build_type"), not ours — a Debug sharpcq linked
// against a Release libbenchmark happily writes baselines that look
// legitimate but measure assertion-laden code. SHARPCQ_BENCH_MAIN() closes
// that hole by keying off this translation unit's NDEBUG:
//
//   - every run stamps "sharpcq_build_type" into the benchmark context, so
//     committed BENCH_*.json files carry the truth about the binary that
//     produced them;
//   - a Debug binary prints a prominent warning banner, and REFUSES to run
//     when asked for machine-readable output (--benchmark_format=json or
//     --benchmark_out=...) — numbers from an unoptimized build must never
//     become a baseline or feed a CI ratio gate.
//
// Every bench/*.cc uses SHARPCQ_BENCH_MAIN() instead of BENCHMARK_MAIN().

#ifndef SHARPCQ_BENCH_BENCH_MAIN_H_
#define SHARPCQ_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

namespace sharpcq {
namespace bench_internal {

#ifdef NDEBUG
inline constexpr bool kOptimizedBuild = true;
#else
inline constexpr bool kOptimizedBuild = false;
#endif

inline bool WantsMachineOutput(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_format=", 19) == 0 &&
        std::strcmp(argv[i] + 19, "console") != 0) {
      return true;
    }
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) return true;
  }
  return false;
}

inline int RunBenchmarks(int argc, char** argv) {
  benchmark::AddCustomContext("sharpcq_build_type",
                              kOptimizedBuild ? "optimized" : "debug");
  if (!kOptimizedBuild) {
    if (WantsMachineOutput(argc, argv)) {
      std::fprintf(stderr,
                   "sharpcq bench: refusing to emit JSON/file output from a "
                   "Debug (assertions-on) build.\n"
                   "Baselines and CI gates must come from an optimized build "
                   "(RelWithDebInfo or Release).\n");
      return 1;
    }
    std::fprintf(stderr,
                 "*** WARNING: Debug (assertions-on) sharpcq build — timings "
                 "below are meaningless. ***\n");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench_internal
}  // namespace sharpcq

#define SHARPCQ_BENCH_MAIN()                                     \
  int main(int argc, char** argv) {                              \
    return ::sharpcq::bench_internal::RunBenchmarks(argc, argv); \
  }                                                              \
  static_assert(true, "require a trailing semicolon")

#endif  // SHARPCQ_BENCH_BENCH_MAIN_H_
