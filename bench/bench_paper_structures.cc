// E1-E7, E14 (DESIGN.md): the paper's worked structural objects.
//
// Each benchmark times the computation that produces a figure's object and
// records the verified structural fact as a counter, so the bench output
// doubles as the reproduction table for Figures 1-8 and Theorem A.3:
//
//   - fh_edges:     number of hyperedges of FH(Q0,{A,B,C})   (Figure 1(b): 3)
//   - htw:          hypertree width of Q0                     (Figure 2:   2)
//   - core_atoms:   atoms of the core of color(Q0)            (Figure 3(a): 7)
//   - sharp_htw:    #-hypertree width                         (Fig 3(c)/8(e))
//   - covered:      #-covered w.r.t. the hand-built V0        (Example 3.5)

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "core/sharp_counting.h"
#include "core/sharp_decomposition.h"
#include "decomp/hypertree.h"
#include "gen/paper_queries.h"
#include "hypergraph/hypergraph.h"
#include "solver/core.h"
#include "util/check.h"

namespace sharpcq {
namespace {

void BM_Figure1_FrontierHypergraph(benchmark::State& state) {
  ConjunctiveQuery q = MakeQ0();
  Hypergraph h = q.BuildHypergraph();
  std::size_t edges = 0;
  for (auto _ : state) {
    Hypergraph fh = FrontierHypergraph(h, q.free_vars());
    edges = fh.num_edges();
    benchmark::DoNotOptimize(fh);
  }
  SHARPCQ_CHECK(edges == 3);  // {A,B}, {B}, {B,C}
  state.counters["fh_edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_Figure1_FrontierHypergraph);

void BM_Figure2_Q0HypertreeWidth(benchmark::State& state) {
  ConjunctiveQuery q = MakeQ0();
  int width = 0;
  for (auto _ : state) {
    width = HypertreeWidth(q, 3).value_or(-1);
    benchmark::DoNotOptimize(width);
  }
  SHARPCQ_CHECK(width == 2);
  state.counters["htw"] = width;
}
BENCHMARK(BM_Figure2_Q0HypertreeWidth);

void BM_Figure3a_Q0ColoredCore(benchmark::State& state) {
  ConjunctiveQuery q = MakeQ0();
  std::size_t atoms = 0;
  for (auto _ : state) {
    ConjunctiveQuery core = ComputeColoredCore(q);
    atoms = core.NumAtoms();
    benchmark::DoNotOptimize(core);
  }
  SHARPCQ_CHECK(atoms == 7);  // drops one subtask branch
  state.counters["core_atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_Figure3a_Q0ColoredCore);

void BM_Figure3c_Q0SharpHypertreeWidth(benchmark::State& state) {
  ConjunctiveQuery q = MakeQ0();
  int width = 0;
  for (auto _ : state) {
    width = SharpHypertreeWidth(q, 3).value_or(-1);
    benchmark::DoNotOptimize(width);
  }
  SHARPCQ_CHECK(width == 2);
  state.counters["sharp_htw"] = width;
}
BENCHMARK(BM_Figure3c_Q0SharpHypertreeWidth);

void BM_Example35_SharpCoveredByV0(benchmark::State& state) {
  // Figure 4/7: the hand-built view set V0 admits a #-decomposition for the
  // F-branch core and none for the G-branch core.
  ConjunctiveQuery q = MakeQ0();
  std::vector<IdSet> v0_edges = {
      IdSet{q.VarByName("A"), q.VarByName("B"), q.VarByName("I")},
      IdSet{q.VarByName("B"), q.VarByName("E")},
      IdSet{q.VarByName("B"), q.VarByName("C"), q.VarByName("D")},
      IdSet{q.VarByName("D"), q.VarByName("F"), q.VarByName("H")}};
  ViewSet v0 = ViewsFromEdges(v0_edges);
  bool covered = false;
  for (auto _ : state) {
    covered = FindSharpDecomposition(q, v0).has_value();
    benchmark::DoNotOptimize(covered);
  }
  SHARPCQ_CHECK(covered);
  state.counters["covered"] = covered ? 1 : 0;
}
BENCHMARK(BM_Example35_SharpCoveredByV0);

void BM_Figure8_Q1SharpWidth(benchmark::State& state) {
  ConjunctiveQuery q = MakeQ1();
  int width = 0;
  for (auto _ : state) {
    width = SharpHypertreeWidth(q, 3).value_or(-1);
    benchmark::DoNotOptimize(width);
  }
  SHARPCQ_CHECK(width == 2);
  state.counters["sharp_htw"] = width;
}
BENCHMARK(BM_Figure8_Q1SharpWidth);

void BM_Figure5_PseudoFreeFrontierCollapse(benchmark::State& state) {
  // Example 1.5: with D pseudo-free, all FH edges sit inside original
  // hyperedges, so any hypertree decomposition covers them for free.
  ConjunctiveQuery q = MakeQ0();
  Hypergraph h = q.BuildHypergraph();
  IdSet w = Union(q.free_vars(), IdSet{q.VarByName("D")});
  bool collapsed = false;
  for (auto _ : state) {
    Hypergraph fh = FrontierHypergraph(h, w);
    collapsed = true;
    for (const IdSet& e : fh.edges()) {
      collapsed = collapsed && CoveredBySome(h.edges(), e);
    }
    benchmark::DoNotOptimize(collapsed);
  }
  SHARPCQ_CHECK(collapsed);
  state.counters["fh_inside_hq0"] = collapsed ? 1 : 0;
}
BENCHMARK(BM_Figure5_PseudoFreeFrontierCollapse);

void BM_TheoremA3_BicliqueWidthGap(benchmark::State& state) {
  // Q^n_2: ghw = n but #-htw = 1 (n = state.range(0)).
  const int n = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQn2(n);
  int ghw = 0, sharp = 0;
  for (auto _ : state) {
    ghw = HypertreeWidth(q, n + 1).value_or(-1);
    sharp = SharpHypertreeWidth(q, 2).value_or(-1);
    benchmark::DoNotOptimize(ghw + sharp);
  }
  SHARPCQ_CHECK(ghw == n && sharp == 1);
  state.counters["ghw"] = ghw;
  state.counters["sharp_htw"] = sharp;
}
BENCHMARK(BM_TheoremA3_BicliqueWidthGap)->DenseRange(2, 4);

}  // namespace
}  // namespace sharpcq

SHARPCQ_BENCH_MAIN();
