// Plan-cache throughput: the engine's pitch is that structural
// classification (core computation + width searches) is query-only and
// cacheable, so a service answering repeated query shapes pays it once.
// This benchmark measures that directly on the paper's queries:
//
//   - BM_Plan_Cold/*       planning with the cache cleared every iteration
//                          (the legacy facades' per-call cost);
//   - BM_Plan_Cached/*     planning against a warm cache (canonicalize +
//                          lookup only);
//   - BM_Count_Cold/*      full plan+execute with a cold cache;
//   - BM_Count_Cached/*    steady-state serving: execute with a cached plan.
//
// Baseline snapshot: BENCH_plan_cache.json at the repository root
// (regenerate with --benchmark_format=json).

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "engine/engine.h"
#include "gen/paper_queries.h"
#include "util/check.h"

namespace sharpcq {
namespace {

// The repeated-shape workload: each paper query family member by name.
ConjunctiveQuery QueryByIndex(int index) {
  switch (index) {
    case 0:
      return MakeQ0();  // cyclic, #-htw 2
    case 1:
      return MakeQ1();  // square, #-htw 2
    case 2:
      return MakeQn1(5);  // chain family, #-htw 1, big colored core
    default:
      return MakeQh2(3);  // acyclic, #-htw 4 (width search fails at 3)
  }
}

Database DatabaseByIndex(int index) {
  switch (index) {
    case 0: {
      Q0DatabaseParams params;
      params.seed = 7;
      return MakeQ0Database(params);
    }
    case 1:
      return MakeQ1Database(8, 24, 7);
    case 2:
      return MakeQn1RandomDatabase(10, 30, 7);
    default:
      return MakeQh2Database(3);
  }
}

void BM_Plan_Cold(benchmark::State& state) {
  ConjunctiveQuery q = QueryByIndex(static_cast<int>(state.range(0)));
  CountingEngine engine;
  for (auto _ : state) {
    engine.ClearCache();
    CountingEngine::Planned planned = engine.Plan(q);
    SHARPCQ_CHECK(!planned.cache_hit);
    benchmark::DoNotOptimize(planned);
  }
}
BENCHMARK(BM_Plan_Cold)->DenseRange(0, 3);

void BM_Plan_Cached(benchmark::State& state) {
  ConjunctiveQuery q = QueryByIndex(static_cast<int>(state.range(0)));
  CountingEngine engine;
  engine.Plan(q);  // warm
  for (auto _ : state) {
    CountingEngine::Planned planned = engine.Plan(q);
    SHARPCQ_CHECK(planned.cache_hit);
    benchmark::DoNotOptimize(planned);
  }
  state.counters["cache_hits"] =
      static_cast<double>(engine.cache_stats().hits);
}
BENCHMARK(BM_Plan_Cached)->DenseRange(0, 3);

void BM_Count_Cold(benchmark::State& state) {
  const int index = static_cast<int>(state.range(0));
  ConjunctiveQuery q = QueryByIndex(index);
  Database db = DatabaseByIndex(index);
  CountingEngine engine;
  CountInt answers = 0;
  for (auto _ : state) {
    engine.ClearCache();
    CountResult result = engine.Count(q, db);
    answers = result.count;
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Count_Cold)->DenseRange(0, 3);

void BM_Count_Cached(benchmark::State& state) {
  const int index = static_cast<int>(state.range(0));
  ConjunctiveQuery q = QueryByIndex(index);
  Database db = DatabaseByIndex(index);
  CountingEngine engine;
  engine.Count(q, db);  // warm
  CountInt answers = 0;
  for (auto _ : state) {
    CountResult result = engine.Count(q, db);
    SHARPCQ_CHECK(result.cache_hit);
    answers = result.count;
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Count_Cached)->DenseRange(0, 3);

}  // namespace
}  // namespace sharpcq

SHARPCQ_BENCH_MAIN();
