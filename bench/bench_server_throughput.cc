// Daemon serving throughput: concurrent socket clients hammering one
// sharpcqd Daemon with count requests vs the same workload issued
// in-process through CountBatch — the cost of the wire (framing, parsing,
// admission control, provenance serialization) on top of the engine.
//
//   - BM_Server_Socket/threads:C   C persistent-connection clients, each
//                                  issuing count requests round-robin over
//                                  the query mix; requests/sec is the
//                                  figure of merit, with p50/p95/p99
//                                  round-trip latency (log-histogram bucket
//                                  bounds, averaged across client threads)
//                                  reported alongside.
//   - BM_InProcess_CountBatch/C    the same mix as CountJobs on a C-thread
//                                  batch pool — the no-network ceiling.
//   - BM_InProcess_Sequential      plain Count loop, single thread.
//
// One daemon serves the whole binary (started on first use, ephemeral
// port); clients connect once per benchmark thread outside the timed
// region, so the loop measures steady-state request/response round-trips,
// not connection setup.
//
// Baseline snapshot: BENCH_server_throughput.json at the repository root
// (regenerate with --benchmark_format=json).

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "query/parser.h"
#include "server/client.h"
#include "server/daemon.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/metrics.h"

namespace sharpcq {
namespace {

// The query mix: a width-1 path, a width-2 square, and a single-atom
// projection — every strategy tier the planner picks for binary relations,
// all against one database so plan-cache and catalog lookups stay warm.
const char* const kQueryTexts[] = {
    "Q(X,Z) <- r(X,Y), s(Y,Z)",
    "Q(A,C) <- r(A,B), s(B,C), r(C,D), s(D,A)",
    "Q(X,Y) <- r(X,Y)",
};
constexpr std::size_t kQueryCount = sizeof(kQueryTexts) / sizeof(kQueryTexts[0]);

Database MakeBenchDatabase() {
  Database db;
  for (Value i = 0; i < 40; ++i) {
    for (Value j = 0; j < 40; ++j) {
      if ((i + 3 * j) % 7 == 0) db.AddTuple("r", {i, j});
      if ((2 * i + j) % 5 == 0) db.AddTuple("s", {i, j});
    }
  }
  db.DedupAll();
  return db;
}

// One daemon for the whole binary, torn down at exit.
class DaemonHarness {
 public:
  DaemonHarness() {
    namespace fs = std::filesystem;
    root_ = (fs::temp_directory_path() / "sharpcq_bench_serverXXXXXX").string();
    SHARPCQ_CHECK(::mkdtemp(root_.data()) != nullptr);
    {
      Catalog catalog(root_);
      Status error;
      SHARPCQ_CHECK(
          catalog.Ingest("bench", MakeBenchDatabase(), nullptr, &error)
              .has_value());
    }
    DaemonOptions options;
    options.catalog_root = root_;
    options.max_inflight = 16;
    options.max_queued = 64;
    daemon_ = std::make_unique<Daemon>(std::move(options));
    std::string error;
    SHARPCQ_CHECK(daemon_->Start(&error));
  }

  ~DaemonHarness() {
    daemon_->Stop();
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  int port() const { return daemon_->port(); }

 private:
  std::string root_;
  std::unique_ptr<Daemon> daemon_;
};

DaemonHarness& SharedDaemon() {
  static DaemonHarness harness;
  return harness;
}

Request CountRequest(std::size_t query_index) {
  Request request;
  request.command = "count";
  request.args = {{"db", "bench"}};
  request.body = std::string(kQueryTexts[query_index % kQueryCount]) + "\n";
  return request;
}

void BM_Server_Socket(benchmark::State& state) {
  const int port = SharedDaemon().port();
  Client client;
  std::string error;
  SHARPCQ_CHECK(client.Connect("127.0.0.1", port, &error));
  // Warm the daemon's plan cache for every shape before timing.
  for (std::size_t q = 0; q < kQueryCount; ++q) {
    auto response = client.Call(CountRequest(q), &error);
    SHARPCQ_CHECK(response.has_value() && response->ok);
  }
  std::size_t sent = static_cast<std::size_t>(state.thread_index());
  // Per-thread round-trip latency tail, recorded into a private log
  // histogram (util/metrics.h) so the timed loop adds one clock read and
  // one relaxed increment per request.
  Histogram latency;
  for (auto _ : state) {
    const MonotonicClock::time_point start = MonotonicNow();
    auto response = client.Call(CountRequest(sent++), &error);
    latency.Record(ElapsedMs(start));
    SHARPCQ_CHECK(response.has_value());
    SHARPCQ_CHECK(response->ok);
    benchmark::DoNotOptimize(response->fields);
  }
  state.SetItemsProcessed(state.iterations());
  const Histogram::Snapshot snap = latency.snapshot();
  // Bucket upper bounds (within 2x of the true value), averaged across the
  // client threads of the run.
  state.counters["p50_ms"] =
      benchmark::Counter(snap.PercentileMs(50), benchmark::Counter::kAvgThreads);
  state.counters["p95_ms"] =
      benchmark::Counter(snap.PercentileMs(95), benchmark::Counter::kAvgThreads);
  state.counters["p99_ms"] =
      benchmark::Counter(snap.PercentileMs(99), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_Server_Socket)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void BM_InProcess_CountBatch(benchmark::State& state) {
  Database db = MakeBenchDatabase();
  std::vector<ConjunctiveQuery> queries;
  for (std::size_t q = 0; q < kQueryCount; ++q) {
    std::string error;
    auto parsed = ParseQuery(kQueryTexts[q], nullptr, &error);
    SHARPCQ_CHECK(parsed.has_value());
    queries.push_back(*parsed);
  }
  EngineOptions options;
  options.batch_threads = static_cast<std::size_t>(state.range(0));
  CountingEngine engine(options);
  // A batch the size of one socket benchmark's round: 64 jobs round-robin
  // over the mix.
  std::vector<CountJob> jobs;
  for (int i = 0; i < 64; ++i) {
    jobs.push_back({queries[static_cast<std::size_t>(i) % kQueryCount], &db});
  }
  engine.CountBatch(jobs);  // warm plans + pool
  for (auto _ : state) {
    std::vector<CountResult> results = engine.CountBatch(jobs);
    SHARPCQ_CHECK(results.size() == jobs.size());
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs.size()));
  state.counters["batch_threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_InProcess_CountBatch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_InProcess_Sequential(benchmark::State& state) {
  Database db = MakeBenchDatabase();
  std::vector<ConjunctiveQuery> queries;
  for (std::size_t q = 0; q < kQueryCount; ++q) {
    std::string error;
    auto parsed = ParseQuery(kQueryTexts[q], nullptr, &error);
    SHARPCQ_CHECK(parsed.has_value());
    queries.push_back(*parsed);
  }
  CountingEngine engine;
  for (const ConjunctiveQuery& q : queries) engine.Count(q, db);  // warm
  std::size_t i = 0;
  for (auto _ : state) {
    CountResult result = engine.Count(queries[i++ % kQueryCount], db);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InProcess_Sequential)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sharpcq

SHARPCQ_BENCH_MAIN();
