// Cold-start cost of the three ways to get a database into a process
// (ISSUE 4): re-ingesting CSV, loading an owned snapshot (copy + verify
// checksums), and mapping a snapshot zero-copy. The snapshot's pitch is
// that cold-start becomes proportional to mmap cost instead of parse cost,
// so the CI gate asserts mapped load >= 5x faster than CSV ingest
// (.github/workflows/ci.yml).
//
//   - BM_ColdStart_CsvIngest      parse + intern + dedup from CSV text
//   - BM_ColdStart_OwnedSnapshot  LoadSnapshot(kOwned): checksum + copy
//   - BM_ColdStart_MmapSnapshot   LoadSnapshot(kMapped): O(header)
//   - BM_FirstCount_*             cold start + one Q1 count, end to end
//
// Baseline snapshot: BENCH_snapshot_load.json at the repository root
// (regenerate with --benchmark_format=json).

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "data/csv.h"
#include "engine/engine.h"
#include "gen/paper_queries.h"
#include "query/parser.h"
#include "storage/snapshot.h"
#include "util/check.h"

namespace sharpcq {
namespace {

// The workload: the square query Q1's four binary relations at a size
// where parsing dominates (64k tuples each, 256k total). The domain
// matches the tuple count so the average degree stays ~1 and the
// BM_FirstCount_* join sizes stay linear — cold-start is the subject here,
// not join blowup.
constexpr int kDomain = 65536;
constexpr int kTuplesPerRelation = 65536;

const std::vector<std::string>& RelationNames() {
  static const std::vector<std::string> names = {"s1", "s2", "s3", "s4"};
  return names;
}

Database MakeWorkload() {
  return MakeQ1Database(kDomain, kTuplesPerRelation, /*seed=*/7);
}

// One scratch setup shared by every benchmark: the CSV texts (in memory —
// the parse cost is what matters, not disk) and a snapshot file on disk.
struct Scratch {
  std::vector<std::string> csv_texts;
  std::string snapshot_path;

  Scratch() {
    Database db = MakeWorkload();
    for (const std::string& name : RelationNames()) {
      std::ostringstream out;
      WriteRelationCsv(db, name, out);
      csv_texts.push_back(out.str());
    }
    snapshot_path = "/tmp/sharpcq_bench_snapshot_" +
                    std::to_string(::getpid()) + ".sharpcq";
    Status error;
    auto stats = WriteSnapshot(db, nullptr, snapshot_path, &error);
    SHARPCQ_CHECK_MSG(stats.has_value(), error.message().c_str());
  }
  ~Scratch() { std::remove(snapshot_path.c_str()); }
};

Scratch& GetScratch() {
  static Scratch scratch;
  return scratch;
}

void BM_ColdStart_CsvIngest(benchmark::State& state) {
  Scratch& scratch = GetScratch();
  std::size_t tuples = 0;
  for (auto _ : state) {
    Database db;
    for (std::size_t i = 0; i < scratch.csv_texts.size(); ++i) {
      std::istringstream in(scratch.csv_texts[i]);
      CsvResult result = LoadRelationCsv(in, RelationNames()[i], &db);
      SHARPCQ_CHECK(result.ok());
    }
    db.DedupAll();
    tuples = db.TotalTuples();
    benchmark::DoNotOptimize(db);
  }
  state.counters["tuples"] = static_cast<double>(tuples);
}

void BM_ColdStart_OwnedSnapshot(benchmark::State& state) {
  Scratch& scratch = GetScratch();
  Status error;
  for (auto _ : state) {
    auto loaded =
        LoadSnapshot(scratch.snapshot_path, SnapshotLoadMode::kOwned, &error);
    SHARPCQ_CHECK_MSG(loaded.has_value(), error.message().c_str());
    benchmark::DoNotOptimize(loaded);
  }
}

void BM_ColdStart_MmapSnapshot(benchmark::State& state) {
  Scratch& scratch = GetScratch();
  Status error;
  for (auto _ : state) {
    auto loaded =
        LoadSnapshot(scratch.snapshot_path, SnapshotLoadMode::kMapped, &error);
    SHARPCQ_CHECK_MSG(loaded.has_value(), error.message().c_str());
    benchmark::DoNotOptimize(loaded);
  }
}

// End to end: cold start plus the first count, the latency a freshly
// spawned worker pays before its first answer. The query is the acyclic
// two-hop path over the loaded relations — linear in the data, so the
// measurement stays dominated by the load path under comparison (the full
// square query is O(m^2) under its width-2 decomposition and would bury
// the load cost).
void FirstCount(SnapshotLoadMode mode) {
  Scratch& scratch = GetScratch();
  Status error;
  auto loaded = LoadSnapshot(scratch.snapshot_path, mode, &error);
  SHARPCQ_CHECK_MSG(loaded.has_value(), error.message().c_str());
  CountingEngine engine;
  auto path = ParseQuery("Q(A,C) <- s1(A,B), s2(B,C)");
  SHARPCQ_CHECK(path.has_value());
  CountResult result = engine.Count(*path, loaded->db);
  benchmark::DoNotOptimize(result);
}

void BM_FirstCount_Owned(benchmark::State& state) {
  for (auto _ : state) FirstCount(SnapshotLoadMode::kOwned);
}

void BM_FirstCount_Mmap(benchmark::State& state) {
  for (auto _ : state) FirstCount(SnapshotLoadMode::kMapped);
}

BENCHMARK(BM_ColdStart_CsvIngest)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdStart_OwnedSnapshot)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdStart_MmapSnapshot)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FirstCount_Owned)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FirstCount_Mmap)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sharpcq

SHARPCQ_BENCH_MAIN();
