// E13 (DESIGN.md) — Example A.2 / Figure 11 / Theorem A.3: the chain
// family Q^n_1 separates quantified star size from #-hypertree width.
//
// Shape claims reproduced:
//   - qss(Q^n_1) = ceil(n/2) grows with n (counter qss);
//   - #-htw(Q^n_1) = 1 for every n (counter sharp_htw);
//   - counting through the colored core (Theorem 1.3) scales mildly with
//     n, while the frontier-materialization baseline (DM15-shaped, no
//     cores) blows up with the frontier size.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "count/enumeration.h"
#include "count/starsize.h"
#include "engine/engine.h"
#include "gen/paper_queries.h"
#include "util/check.h"

namespace sharpcq {
namespace {

Database ChainDb(int n) {
  return MakeQn1RandomDatabase(/*d=*/12, /*edges=*/36,
                               /*seed=*/1000u + static_cast<unsigned>(n));
}

void BM_Qn1_StructuralParameters(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQn1(n);
  int qss = 0, width = 0;
  for (auto _ : state) {
    qss = QuantifiedStarSize(q);
    width = SharpHypertreeWidth(q, 2).value_or(-1);
    benchmark::DoNotOptimize(qss + width);
  }
  SHARPCQ_CHECK(qss == (n + 1) / 2);
  SHARPCQ_CHECK(width == 1);
  state.counters["qss"] = qss;
  state.counters["sharp_htw"] = width;
}
BENCHMARK(BM_Qn1_StructuralParameters)->DenseRange(2, 6);

void BM_Qn1_SharpCount(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQn1(n);
  Database db = ChainDb(n);
  // Measurement-scope change vs. pre-engine baselines: planning amortizes
  // into the first iteration via the plan cache; steady-state iterations
  // measure execution only (cold planning lives in bench_plan_cache.cc).
  CountingEngine engine;
  CountInt answers = 0;
  for (auto _ : state) {
    CountResult result = engine.Count(q, db);
    SHARPCQ_CHECK(result.method.rfind("#-hypertree", 0) == 0);
    answers = result.count;
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Qn1_SharpCount)->DenseRange(2, 6);

void BM_Qn1_FrontierMaterialization(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQn1(n);
  Database db = ChainDb(n);
  CountInt answers = 0;
  for (auto _ : state) {
    answers = CountByFrontierMaterialization(q, db);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Qn1_FrontierMaterialization)->DenseRange(2, 6);

void BM_Qn1_Backtracking(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQn1(n);
  Database db = ChainDb(n);
  CountInt answers = 0;
  for (auto _ : state) {
    answers = CountByBacktracking(q, db);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Qn1_Backtracking)->DenseRange(2, 6);

// Database scaling at fixed n = 4: Theorem 1.3 says polynomial in ||D||.
void BM_Qn1_SharpCount_DbScaling(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeQn1(4);
  Database db = MakeQn1RandomDatabase(d, 3 * d, 5);
  CountingEngine engine;
  CountInt answers = 0;
  for (auto _ : state) {
    CountResult result = engine.Count(q, db);
    SHARPCQ_CHECK(result.method.rfind("#-hypertree", 0) == 0);
    answers = result.count;
    benchmark::DoNotOptimize(result);
  }
  state.counters["domain"] = d;
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Qn1_SharpCount_DbScaling)->RangeMultiplier(2)->Range(8, 64);

}  // namespace
}  // namespace sharpcq

SHARPCQ_BENCH_MAIN();
