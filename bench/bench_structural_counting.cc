// E8 (DESIGN.md) — Theorem 1.3: counting on a bounded-#-htw query is
// polynomial in the database. We scale Q0's database and compare the
// Theorem 1.3 counter (decomposition search + Theorem 3.7 pipeline) with
// the two enumeration baselines. The paper's claim is the *shape*: the
// structural counter grows polynomially with the database while staying
// exact; enumeration pays for every solution it visits.
//
// Counters: answers (the count), tuples (database size).

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "count/enumeration.h"
#include "engine/engine.h"
#include "gen/paper_queries.h"
#include "util/check.h"

namespace sharpcq {
namespace {

Q0DatabaseParams ScaledParams(int scale) {
  Q0DatabaseParams p;
  p.machines *= scale;
  p.workers *= scale;
  p.tasks *= scale;
  p.projects *= scale;
  p.subtasks *= scale;
  p.resources *= scale;
  p.mw_tuples *= scale;
  p.wt_tuples *= scale;
  p.pt_tuples *= scale;
  p.st_tuples *= scale;
  p.rr_tuples *= scale;
  p.seed = 1234;
  return p;
}

void BM_Q0_SharpCount(benchmark::State& state) {
  ConjunctiveQuery q = MakeQ0();
  Database db = MakeQ0Database(ScaledParams(static_cast<int>(state.range(0))));
  // Steady-state serving: the engine plans once (cold, first iteration) and
  // every further count reuses the cached decomposition.
  CountingEngine engine;
  CountInt answers = 0;
  for (auto _ : state) {
    CountResult result = engine.Count(q, db);
    SHARPCQ_CHECK(result.method.rfind("#-hypertree", 0) == 0);
    answers = result.count;
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["tuples"] = static_cast<double>(db.TotalTuples());
}
BENCHMARK(BM_Q0_SharpCount)->RangeMultiplier(2)->Range(1, 16);

void BM_Q0_Backtracking(benchmark::State& state) {
  ConjunctiveQuery q = MakeQ0();
  Database db = MakeQ0Database(ScaledParams(static_cast<int>(state.range(0))));
  CountInt answers = 0;
  for (auto _ : state) {
    answers = CountByBacktracking(q, db);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Q0_Backtracking)->RangeMultiplier(2)->Range(1, 16);

void BM_Q0_JoinProject(benchmark::State& state) {
  ConjunctiveQuery q = MakeQ0();
  Database db = MakeQ0Database(ScaledParams(static_cast<int>(state.range(0))));
  CountInt answers = 0;
  for (auto _ : state) {
    answers = CountByJoinProject(q, db);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Q0_JoinProject)->RangeMultiplier(2)->Range(1, 16);

// The same comparison on the square query Q1 (Example 4.1), where the
// database is dense and projections collapse many witnesses per answer.
void BM_Q1_SharpCount(benchmark::State& state) {
  ConjunctiveQuery q = MakeQ1();
  const int n = static_cast<int>(state.range(0));
  Database db = MakeQ1Database(n, n * n / 2, 99);
  CountingEngine engine;
  CountInt answers = 0;
  for (auto _ : state) {
    CountResult result = engine.Count(q, db);
    SHARPCQ_CHECK(result.method.rfind("#-hypertree", 0) == 0);
    answers = result.count;
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Q1_SharpCount)->RangeMultiplier(2)->Range(8, 64);

void BM_Q1_Backtracking(benchmark::State& state) {
  ConjunctiveQuery q = MakeQ1();
  const int n = static_cast<int>(state.range(0));
  Database db = MakeQ1Database(n, n * n / 2, 99);
  CountInt answers = 0;
  for (auto _ : state) {
    answers = CountByBacktracking(q, db);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Q1_Backtracking)->RangeMultiplier(2)->Range(8, 64);

}  // namespace
}  // namespace sharpcq

SHARPCQ_BENCH_MAIN();
