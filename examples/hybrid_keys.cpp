// Example 6.3/6.5: hybrid decompositions exploiting keys in the data.
//
// The family (Qbar^h_2, Dbar^m_2) has *unbounded* #-hypertree width — the
// frontier of the existential block is a clique over all free variables —
// so the purely structural method fails at any fixed width. But the data
// holds a functional dependency (X0 determines the Y block), and the hybrid
// #b-decomposition search (Theorem 6.7) discovers that treating Y0..Yh as
// pseudo-free yields a width-2 decomposition with degree bound 1, making
// counting polynomial (Theorem 6.6).

#include <chrono>
#include <cstdio>

#include "count/enumeration.h"
#include "engine/engine.h"
#include "gen/paper_queries.h"
#include "hybrid/hybrid_counting.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  sharpcq::CountingEngine engine;
  sharpcq::PlannerOptions options;
  options.max_width = 2;

  std::printf("%-4s %-22s %-18s %-12s %-12s %-12s\n", "h",
              "structural #-width", "hybrid (k, b)", "answers",
              "hybrid(ms)", "brute(ms)");
  for (int h : {2, 3, 4}) {
    sharpcq::ConjunctiveQuery q = sharpcq::MakeQbarh2(h);
    sharpcq::Database db = sharpcq::MakeQbarh2Database(h, /*z_domain=*/16);

    // The planner's structural attempt at width 2 must fail (frontier
    // clique), sending the plan to the hybrid #b strategy.
    sharpcq::CountingEngine::Planned planned = engine.Plan(q, options);
    bool structural_ok =
        planned.plan->strategy == sharpcq::PlanStrategy::kSharpHypertree;

    // The database-dependent half, through the engine: the #b-decomposition
    // search and Theorem 6.6 count run inside Count; the method string
    // carries the achieved (k, b).
    auto t0 = std::chrono::steady_clock::now();
    sharpcq::CountResult hybrid = engine.Count(q, db, options);
    double hybrid_ms = MillisSince(t0);

    auto t1 = std::chrono::steady_clock::now();
    sharpcq::CountInt brute = sharpcq::CountByBacktracking(q, db);
    double brute_ms = MillisSince(t1);

    if (hybrid.count != brute ||
        hybrid.method.rfind("#b-hypertree", 0) != 0) {
      std::fprintf(stderr, "MISMATCH at h=%d\n", h);
      return 1;
    }
    // method is "#b-hypertree(k=2,b=1)"; show the "(k=2,b=1)" part.
    std::string hybrid_desc = hybrid.method.substr(hybrid.method.find('('));
    std::printf("%-4d %-22s %-18s %-12s %-12.2f %-12.2f\n", h,
                structural_ok ? "<=2 (unexpected!)" : ">2 (fails)",
                hybrid_desc.c_str(),
                sharpcq::CountToString(hybrid.count).c_str(), hybrid_ms,
                brute_ms);

    // Display only: the pseudo-free set an equivalent search chooses
    // (Example 6.5's S-bar = free ∪ {Y block}). This deliberately re-runs
    // the #b search outside the timed path — the engine does not surface
    // the decomposition it used, only the (k, b) provenance above.
    sharpcq::SharpBOptions search_options;
    search_options.max_cores = options.max_cores;
    if (auto d = sharpcq::FindSharpBDecomposition(q, db, 2, search_options)) {
      std::printf("     pseudo-free S-bar = %s\n",
                  d->s_bar
                      .ToString(
                          [&q](std::uint32_t v) { return q.VarName(v); })
                      .c_str());
    }
  }
  return 0;
}
