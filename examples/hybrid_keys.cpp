// Example 6.3/6.5: hybrid decompositions exploiting keys in the data.
//
// The family (Qbar^h_2, Dbar^m_2) has *unbounded* #-hypertree width — the
// frontier of the existential block is a clique over all free variables —
// so the purely structural method fails at any fixed width. But the data
// holds a functional dependency (X0 determines the Y block), and the hybrid
// #b-decomposition search (Theorem 6.7) discovers that treating Y0..Yh as
// pseudo-free yields a width-2 decomposition with degree bound 1, making
// counting polynomial (Theorem 6.6).

#include <chrono>
#include <cstdio>

#include "core/sharp_counting.h"
#include "count/enumeration.h"
#include "gen/paper_queries.h"
#include "hybrid/hybrid_counting.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::printf("%-4s %-22s %-18s %-12s %-12s %-12s\n", "h",
              "structural #-width", "hybrid (k, b)", "answers",
              "hybrid(ms)", "brute(ms)");
  for (int h : {2, 3, 4}) {
    sharpcq::ConjunctiveQuery q = sharpcq::MakeQbarh2(h);
    sharpcq::Database db = sharpcq::MakeQbarh2Database(h, /*z_domain=*/16);

    // Structural attempt at width 2: must fail (frontier clique).
    bool structural_ok =
        sharpcq::FindSharpHypertreeDecomposition(q, 2).has_value();

    auto t0 = std::chrono::steady_clock::now();
    std::optional<sharpcq::SharpBDecomposition> d =
        sharpcq::FindSharpBDecomposition(q, db, 2);
    std::optional<sharpcq::CountResult> hybrid;
    if (d.has_value()) hybrid = sharpcq::CountViaSharpB(q, db, *d);
    double hybrid_ms = MillisSince(t0);

    auto t1 = std::chrono::steady_clock::now();
    sharpcq::CountInt brute = sharpcq::CountByBacktracking(q, db);
    double brute_ms = MillisSince(t1);

    if (!hybrid.has_value() || hybrid->count != brute) {
      std::fprintf(stderr, "MISMATCH at h=%d\n", h);
      return 1;
    }
    char hybrid_desc[32];
    std::snprintf(hybrid_desc, sizeof(hybrid_desc), "(k=%d, b=%zu)",
                  d->decomposition.width, d->bound);
    std::printf("%-4d %-22s %-18s %-12s %-12.2f %-12.2f\n", h,
                structural_ok ? "<=2 (unexpected!)" : ">2 (fails)",
                hybrid_desc, sharpcq::CountToString(hybrid->count).c_str(),
                hybrid_ms, brute_ms);

    // Show the pseudo-free set the search chose.
    std::printf("     pseudo-free S-bar = %s\n",
                d->s_bar
                    .ToString([&q](std::uint32_t v) { return q.VarName(v); })
                    .c_str());
  }
  return 0;
}
