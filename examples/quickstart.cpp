// Quickstart: parse a conjunctive query, load a database, count the answers
// without enumerating them.
//
//   $ ./example_quickstart
//
// The query asks for (advisor, student, course) triples with auditing
// conditions expressed through existentially quantified variables. Counting
// goes through the plan/execute engine: the structural classification
// (Theorem 1.3 et al.) runs once and is cached under the canonical query
// shape, then the plan is materialized against the database. The result is
// checked against brute force.

#include <cstdio>

#include "count/enumeration.h"
#include "data/database.h"
#include "engine/engine.h"
#include "query/parser.h"

int main() {
  // A small cyclic query: advisors A supervising students B enrolled in
  // courses C, where the student has a project P sharing a lab L with the
  // course.
  const char* text =
      "Q(A,B,C) <- advises(A,B), enrolled(B,C), project(B,P), "
      "lab(P,L), lab(C,L)";
  std::string error;
  std::optional<sharpcq::ConjunctiveQuery> q =
      sharpcq::ParseQuery(text, nullptr, &error);
  if (!q.has_value()) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }
  std::printf("query: %s\n", q->DebugString().c_str());

  sharpcq::Database db;
  // advises(advisor, student)
  db.AddTuple("advises", {1, 100});
  db.AddTuple("advises", {1, 101});
  db.AddTuple("advises", {2, 102});
  db.AddTuple("advises", {2, 100});
  // enrolled(student, course)
  db.AddTuple("enrolled", {100, 500});
  db.AddTuple("enrolled", {101, 500});
  db.AddTuple("enrolled", {102, 501});
  db.AddTuple("enrolled", {100, 501});
  // project(student, project_id)
  db.AddTuple("project", {100, 900});
  db.AddTuple("project", {101, 901});
  db.AddTuple("project", {102, 902});
  // lab(project_or_course, lab_id)
  db.AddTuple("lab", {900, 7});
  db.AddTuple("lab", {901, 7});
  db.AddTuple("lab", {902, 8});
  db.AddTuple("lab", {500, 7});
  db.AddTuple("lab", {501, 8});

  sharpcq::CountingEngine engine;

  // Planning is query-only; show what the engine decided before touching
  // the database.
  sharpcq::CountingEngine::Planned planned = engine.Plan(*q);
  std::printf("plan:\n%s\n", planned.plan->DebugString().c_str());

  sharpcq::CountResult result = engine.Count(*q, db);
  std::printf("answers: %s  (method: %s, width: %d, plan %s, %.3fms plan + "
              "%.3fms execute)\n",
              sharpcq::CountToString(result.count).c_str(),
              result.method.c_str(), result.width,
              result.cache_hit ? "cached" : "cold", result.planner_ms,
              result.execute_ms);

  sharpcq::CountInt brute = sharpcq::CountByBacktracking(*q, db);
  std::printf("brute-force check: %s  (%s)\n",
              sharpcq::CountToString(brute).c_str(),
              brute == result.count ? "match" : "MISMATCH");
  return brute == result.count ? 0 : 1;
}
