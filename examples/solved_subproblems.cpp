// Section 3's general tree-projection framework: counting through *solved
// subproblems* (named views) instead of structural V^k resources.
//
// A data engineer has already materialized four subquery results over the
// workforce database of Example 1.1 — exactly the view hypergraph HV0 of
// Figure 4. The library decides that Q0 is #-covered w.r.t. those views
// (Definition 1.4), picks the core that the views can support (the
// F-branch; Example 3.5 shows the symmetric G-branch core fails), and
// counts through the stored views alone (Corollary 3.8).

#include <cstdio>

#include "core/legality.h"
#include "core/sharp_counting.h"
#include "count/enumeration.h"
#include "data/var_relation.h"
#include "gen/paper_queries.h"
#include "query/atom_relation.h"

namespace {

using sharpcq::Atom;
using sharpcq::ConjunctiveQuery;
using sharpcq::Database;
using sharpcq::IdSet;
using sharpcq::Join;
using sharpcq::Project;
using sharpcq::Relation;
using sharpcq::VarRelation;
// Intersect/Union are friend functions of IdSet, found via ADL.

// Materializes the join of all atoms touching `vars`, projected onto
// `vars`, as the stored relation `name` (columns in ascending VarId order).
void StoreSubqueryView(const ConjunctiveQuery& q, Database* db,
                       const std::string& name, const IdSet& vars) {
  VarRelation acc = VarRelation::Unit();
  bool first = true;
  for (const Atom& a : q.atoms()) {
    if (!a.Vars().Intersects(vars)) continue;
    VarRelation rel = AtomToVarRelation(a, *db);
    acc = first ? std::move(rel) : Join(acc, rel);
    first = false;
  }
  VarRelation projected = Project(acc, Intersect(acc.vars(), vars));
  Relation& stored =
      db->DeclareRelation(name, static_cast<int>(projected.vars().size()));
  for (std::size_t i = 0; i < projected.size(); ++i) {
    stored.AddRow(projected.rel().Row(i));
  }
  std::printf("  stored view %-7s over %-9s (%zu tuples)\n", name.c_str(),
              vars.ToString([&q](std::uint32_t v) { return q.VarName(v); })
                  .c_str(),
              projected.size());
}

}  // namespace

int main() {
  ConjunctiveQuery q0 = sharpcq::MakeQ0();
  sharpcq::Q0DatabaseParams params;
  params.seed = 2026;
  Database db = sharpcq::MakeQ0Database(params);

  auto vars = [&q0](std::initializer_list<const char*> names) {
    IdSet out;
    for (const char* n : names) out.Insert(q0.VarByName(n));
    return out;
  };

  std::printf("materializing the views of Figure 4 (HV0):\n");
  std::vector<std::pair<std::string, IdSet>> named = {
      {"v_abi", vars({"A", "B", "I"})},
      {"v_be", vars({"B", "E"})},
      {"v_bcd", vars({"B", "C", "D"})},
      {"v_dfh", vars({"D", "F", "H"})}};
  for (const auto& [name, view_vars] : named) {
    StoreSubqueryView(q0, &db, name, view_vars);
  }
  sharpcq::ViewSet views = sharpcq::ViewsFromNamedRelations(named);

  std::string why;
  std::printf("\nlegality check: %s\n",
              sharpcq::IsLegalViewDatabase(q0, views, db, &why)
                  ? "views are legal w.r.t. Q0"
                  : ("ILLEGAL: " + why).c_str());

  auto d = sharpcq::FindSharpDecomposition(q0, views);
  if (!d.has_value()) {
    std::fprintf(stderr, "Q0 unexpectedly not #-covered w.r.t. V0\n");
    return 1;
  }
  std::printf("Q0 is #-covered w.r.t. V0; chosen core keeps %s\n",
              d->core.AllVars().Contains(q0.VarByName("F")) ? "F (as in the "
                                                              "paper)"
                                                            : "G");

  sharpcq::CountResult result = sharpcq::CountViaSharpDecomposition(q0, db, *d);
  sharpcq::CountInt brute = sharpcq::CountByBacktracking(q0, db);
  std::printf("answers via stored views: %s   brute force: %s   (%s)\n",
              sharpcq::CountToString(result.count).c_str(),
              sharpcq::CountToString(brute).c_str(),
              result.count == brute ? "match" : "MISMATCH");
  return result.count == brute ? 0 : 1;
}
