// Appendix A: quantified star size vs #-hypertree width on the chain
// family Q^n_1 (Example A.2, Figure 11).
//
// The quantified star size of Q^n_1 is ceil(n/2) — unbounded — so the
// Durand–Mengel criterion does not recognize the family as tractable. Its
// #-hypertree width is 1 for every n: the colored core collapses the Y
// chain onto the X chain, leaving a single pendant existential variable.
// Counting through the core is fast; the frontier-materialization baseline
// (which works on the raw query, without cores) pays for the big frontier.

#include <chrono>
#include <cstdio>

#include "count/enumeration.h"
#include "count/starsize.h"
#include "engine/engine.h"
#include "gen/paper_queries.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  sharpcq::CountingEngine engine;
  std::printf("%-4s %-6s %-8s %-10s %-14s %-18s\n", "n", "qss", "#-htw",
              "answers", "sharp (ms)", "frontier-mat (ms)");
  for (int n : {2, 3, 4, 5, 6}) {
    sharpcq::ConjunctiveQuery q = sharpcq::MakeQn1(n);
    sharpcq::Database db =
        sharpcq::MakeQn1RandomDatabase(/*d=*/12, /*edges=*/36, /*seed=*/7u * n);

    // The profile (star size, widths) comes with the plan for free.
    sharpcq::CountingEngine::Planned planned = engine.Plan(q);
    int qss = planned.plan->analysis.quantified_star_size;
    std::optional<int> width = planned.plan->analysis.sharp_hypertree_width;

    auto t0 = std::chrono::steady_clock::now();
    sharpcq::CountResult sharp = engine.Count(q, db);
    double sharp_ms = MillisSince(t0);

    auto t1 = std::chrono::steady_clock::now();
    sharpcq::CountInt frontier = sharpcq::CountByFrontierMaterialization(q, db);
    double frontier_ms = MillisSince(t1);

    if (sharp.count != frontier ||
        sharp.method.rfind("#-hypertree", 0) != 0) {
      std::fprintf(stderr, "MISMATCH at n=%d\n", n);
      return 1;
    }
    std::printf("%-4d %-6d %-8d %-10s %-14.2f %-18.2f\n", n, qss,
                width.value_or(-1),
                sharpcq::CountToString(sharp.count).c_str(), sharp_ms,
                frontier_ms);
  }
  std::printf(
      "\npaper claim: qss = ceil(n/2) grows, #-htw stays 1 (Example A.2)\n");
  return 0;
}
