// Example 1.1 end to end: the workforce query Q0.
//
// Reproduces the paper's running example: prints the frontier hypergraph
// (Figure 1(b)), the colored core (Figure 3(a)), the #-hypertree width
// (Figure 3(c)), then counts (machine, worker, project) answers on
// synthetic workforce databases of growing size, comparing the Theorem 1.3
// counter against the enumeration baseline.

#include <chrono>
#include <cstdio>

#include "count/enumeration.h"
#include "decomp/explain.h"
#include "engine/engine.h"
#include "gen/paper_queries.h"
#include "hypergraph/hypergraph.h"
#include "solver/core.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  sharpcq::ConjunctiveQuery q0 = sharpcq::MakeQ0();
  std::printf("Q0: %s\n\n", q0.DebugString().c_str());

  auto name = [&q0](std::uint32_t v) { return q0.VarName(v); };

  // Figure 1(b): the frontier hypergraph of the existential variables.
  sharpcq::Hypergraph hq0 = q0.BuildHypergraph();
  sharpcq::Hypergraph fh =
      sharpcq::FrontierHypergraph(hq0, q0.free_vars());
  std::printf("frontier hypergraph FH(Q0, {A,B,C}) [Figure 1(b)]:\n");
  for (const sharpcq::IdSet& e : fh.edges()) {
    std::printf("  %s\n", e.ToString(name).c_str());
  }

  // Figure 3(a): the colored core drops one subtask branch.
  sharpcq::ConjunctiveQuery core = sharpcq::ComputeColoredCore(q0);
  std::printf("\ncolored core (Figure 3(a)): %s\n",
              core.DebugString().c_str());

  // Figure 3(c): #-hypertree width 2. The engine's planner runs the width
  // search once; the same plan then serves every database below from its
  // cache.
  sharpcq::CountingEngine engine;
  sharpcq::CountingEngine::Planned planned = engine.Plan(q0);
  std::printf("#-hypertree width: %d  (paper: 2)\n",
              planned.plan->analysis.sharp_hypertree_width.value_or(-1));
  if (planned.plan->sharp.has_value()) {
    const sharpcq::SharpDecomposition& d = *planned.plan->sharp;
    std::printf("width-2 #-hypertree decomposition (cf. Figure 3(c)):\n%s",
                sharpcq::ExplainBagTree(d.tree, d.views, planned.plan->query)
                    .c_str());
    // Plans speak canonical variables; translate them back to the paper's.
    std::printf("  (canonical vars:");
    for (std::size_t c = 0; c < planned.canonical.to_original.size(); ++c) {
      std::printf(" v%zu=%s", c,
                  q0.VarName(planned.canonical.to_original[c]).c_str());
    }
    std::printf(")\n\n");
  }

  std::printf("%-10s %-12s %-14s %-12s %-14s\n", "db scale", "answers",
              "sharp (ms)", "baseline", "baseline(ms)");
  for (int scale : {1, 2, 4, 8}) {
    sharpcq::Q0DatabaseParams params;
    params.machines *= scale;
    params.workers *= scale;
    params.tasks *= scale;
    params.projects *= scale;
    params.subtasks *= scale;
    params.resources *= scale;
    params.mw_tuples *= scale;
    params.wt_tuples *= scale;
    params.pt_tuples *= scale;
    params.st_tuples *= scale;
    params.rr_tuples *= scale;
    params.seed = 42 + static_cast<std::uint64_t>(scale);
    sharpcq::Database db = sharpcq::MakeQ0Database(params);

    auto t0 = std::chrono::steady_clock::now();
    sharpcq::CountResult sharp = engine.Count(q0, db);
    double sharp_ms = MillisSince(t0);

    auto t1 = std::chrono::steady_clock::now();
    sharpcq::CountInt baseline = sharpcq::CountByBacktracking(q0, db);
    double baseline_ms = MillisSince(t1);

    if (sharp.method.rfind("#-hypertree", 0) != 0 ||
        sharp.count != baseline) {
      std::fprintf(stderr, "MISMATCH at scale %d\n", scale);
      return 1;
    }
    std::printf("%-10d %-12s %-14.2f %-12s %-14.2f\n", scale,
                sharpcq::CountToString(sharp.count).c_str(), sharp_ms,
                sharpcq::CountToString(baseline).c_str(), baseline_ms);
  }
  return 0;
}
