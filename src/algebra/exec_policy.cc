#include "algebra/exec_policy.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "algebra/simd.h"
#include "util/cpu.h"
#include "util/thread_pool.h"

namespace sharpcq {

namespace {

thread_local const ExecPolicy* current_policy = nullptr;
thread_local ExecStats* current_stats = nullptr;

// Installs a stats sink on a pool worker for the duration of one morsel.
class WorkerStatsScope {
 public:
  explicit WorkerStatsScope(ExecStats* stats) : previous_(current_stats) {
    if (stats != nullptr) current_stats = stats;
  }
  ~WorkerStatsScope() { current_stats = previous_; }

  WorkerStatsScope(const WorkerStatsScope&) = delete;
  WorkerStatsScope& operator=(const WorkerStatsScope&) = delete;

 private:
  ExecStats* previous_;
};

}  // namespace

ExecScope::ExecScope(ExecPolicy policy)
    : previous_(current_policy),
      previous_stats_(current_stats),
      policy_(std::move(policy)) {
  current_policy = &policy_;
  current_stats = policy_.stats;
}

ExecScope::~ExecScope() {
  current_policy = previous_;
  current_stats = previous_stats_;
}

const ExecPolicy* CurrentExecPolicy() { return current_policy; }

ExecStats* CurrentExecStats() { return current_stats; }

void CheckExecInterrupt() {
  const ExecPolicy* policy = current_policy;
  if (policy == nullptr || policy->cancel == nullptr) return;
  const CancelToken::StopReason reason = policy->cancel->ShouldStop();
  if (reason != CancelToken::StopReason::kNone) {
    throw ExecInterrupted{reason};
  }
}

void ChargeExecMemory(std::uint64_t bytes) {
  const ExecPolicy* policy = current_policy;
  if (policy == nullptr || bytes == 0) return;
  if (policy->query_memory != nullptr &&
      !policy->query_memory->TryCharge(bytes)) {
    throw ExecResourceExhausted{bytes};
  }
  if (policy->process_memory != nullptr &&
      !policy->process_memory->TryCharge(bytes)) {
    // Back out the query-side charge so the tracker matches what the
    // engine will release from the process budget at execution end.
    if (policy->query_memory != nullptr) policy->query_memory->Release(bytes);
    throw ExecResourceExhausted{bytes};
  }
}

namespace {

MorselPlan PlanMorselsWithThreshold(std::size_t rows, std::size_t threshold) {
  MorselPlan plan;
  plan.rows_per_chunk = rows;
  const ExecPolicy* policy = current_policy;
  if (policy == nullptr || rows < threshold || policy->morsel_rows == 0) {
    return plan;
  }
  // A cancel token without a pool still chunks: sequential executions then
  // check the token between morsels instead of only before and after one
  // monolithic probe loop.
  const bool has_pool = policy->pool != nullptr;
  if (!has_pool && policy->cancel == nullptr) return plan;
  plan.rows_per_chunk = policy->morsel_rows;
  // Align morsels to whole probe blocks so a morsel boundary never splits
  // a block of the vectorized probe driver into two partial (tail-lane)
  // blocks. Policies tuned below one block — tests forcing tiny morsels —
  // keep their exact size.
  if (plan.rows_per_chunk >= kProbeBlockRows) {
    plan.rows_per_chunk =
        (plan.rows_per_chunk + kProbeBlockRows - 1) / kProbeBlockRows *
        kProbeBlockRows;
  }
  plan.chunks = (rows + plan.rows_per_chunk - 1) / plan.rows_per_chunk;
  plan.parallel = has_pool && plan.chunks > 1;
  if (plan.chunks == 1) plan.rows_per_chunk = rows;
  return plan;
}

}  // namespace

MorselPlan PlanMorsels(std::size_t rows) {
  const ExecPolicy* policy = current_policy;
  return PlanMorselsWithThreshold(
      rows, policy != nullptr ? policy->row_threshold : rows + 1);
}

MorselPlan PlanMorsels(std::size_t rows, std::size_t build_groups) {
  const ExecPolicy* policy = current_policy;
  if (policy == nullptr || !policy->cost_model) return PlanMorsels(rows);
  // ~26 bytes of index structure touched per group on the probe path (slot
  // array at ~50% occupancy plus the group offset pair); once that
  // footprint spills out of L2, each probe is a likely cache miss and the
  // per-row cost is several times the in-cache case, so morselize earlier.
  constexpr std::size_t kApproxIndexBytesPerGroup = 26;
  const bool out_of_cache =
      build_groups > L2CacheBytes() / kApproxIndexBytesPerGroup;
  const std::size_t threshold =
      out_of_cache ? policy->row_threshold / 4 : policy->row_threshold;
  return PlanMorselsWithThreshold(rows, threshold);
}

void RunMorsels(const MorselPlan& plan, std::size_t rows,
                const std::function<void(std::size_t, std::size_t,
                                         std::size_t)>& body) {
  const ExecPolicy* policy = current_policy;
  const CancelToken* cancel = policy != nullptr ? policy->cancel : nullptr;
  if (plan.chunks > 1 && policy != nullptr && policy->stats != nullptr) {
    policy->stats->morsels.fetch_add(plan.chunks, std::memory_order_relaxed);
  }
  if (!plan.parallel) {
    for (std::size_t c = 0; c < plan.chunks; ++c) {
      if (cancel != nullptr && c != 0) CheckExecInterrupt();
      body(c, plan.ChunkBegin(c), plan.ChunkEnd(c, rows));
    }
    if (cancel != nullptr) CheckExecInterrupt();
    return;
  }
  ThreadPool* pool = policy != nullptr && policy->pool != nullptr
                         ? policy->pool()
                         : nullptr;
  if (pool == nullptr) {
    for (std::size_t c = 0; c < plan.chunks; ++c) {
      if (cancel != nullptr && c != 0) CheckExecInterrupt();
      body(c, plan.ChunkBegin(c), plan.ChunkEnd(c, rows));
    }
    if (cancel != nullptr) CheckExecInterrupt();
    return;
  }

  // Shared claim/complete state. Runners and the caller race on `next` to
  // claim chunks; `completed` (mutex-guarded so the caller's wait is
  // race-free under TSan) counts finished chunks. One drain loop serves
  // both: the caller invokes it directly and the pool runners hold it (and
  // the state) via shared_ptr, so a runner the pool only schedules after
  // the operation finished finds no chunk to claim and exits. `body` is
  // captured by pointer into this frame — safe because the caller does not
  // return until `completed == chunks`, i.e. until no claimed chunk can
  // still be executing it, and unclaimed chunks are never started.
  //
  // Once the cancel token trips, drainers keep claiming chunks but skip
  // their bodies — the claim loop converges in a few atomic increments
  // instead of finishing the remaining probe work, and the caller throws
  // below, discarding whatever the executed chunks produced.
  struct State {
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t completed = 0;
  };
  auto state = std::make_shared<State>();
  const std::size_t chunks = plan.chunks;
  ExecStats* stats = policy != nullptr ? policy->stats : nullptr;
  auto drain = [state, plan, rows, body = &body, chunks, cancel, stats] {
    WorkerStatsScope stats_scope(stats);
    for (;;) {
      // Claim before touching `cancel`: a runner the pool schedules only
      // after the caller returned exits on the exhausted cursor without
      // dereferencing caller-owned pointers.
      std::size_t c = state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      if (cancel == nullptr || !cancel->stop_requested()) {
        (*body)(c, plan.ChunkBegin(c), plan.ChunkEnd(c, rows));
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (++state->completed == chunks) state->done_cv.notify_one();
    }
  };
  const std::size_t runners =
      chunks - 1 < pool->num_threads() ? chunks - 1 : pool->num_threads();
  for (std::size_t r = 0; r < runners; ++r) pool->Submit(drain);
  drain();  // the caller claims chunks too: progress never depends on the pool
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->completed == chunks; });
  lock.unlock();
  if (cancel != nullptr) CheckExecInterrupt();
}

}  // namespace sharpcq
