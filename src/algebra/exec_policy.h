#ifndef SHARPCQ_ALGEBRA_EXEC_POLICY_H_
#define SHARPCQ_ALGEBRA_EXEC_POLICY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/cancel.h"
#include "util/mem_budget.h"

namespace sharpcq {

class ThreadPool;

// Intra-query execution policy for the kernel's large probe loops. The
// engine threads this through EngineOptions and installs it around
// ExecutePlan via an ExecScope; kernel operators (Semijoin, Join, the
// CountFullJoin aggregation loop) consult the current thread's policy when
// a probe side is large enough to morselize. With no scope installed every
// operator runs sequentially, so library users who never touch the engine
// see no threads.
// Morsel tuning defaults, shared with EngineOptions so the engine path and
// direct ExecScope users (tests, embedders) cannot drift apart.
inline constexpr std::size_t kDefaultMorselRows = 4096;
inline constexpr std::size_t kDefaultMorselRowThreshold = 16384;

// Per-execution outcome counters, owned by whoever installs the ExecScope
// (the engine allocates one per Count call). Atomics because morsel workers
// tally concurrently; probe drivers accumulate locally and add once per
// block, so the atomics are off the per-row path.
struct ExecStats {
  std::atomic<std::uint64_t> filter_hits{0};
  std::atomic<std::uint64_t> filter_passes{0};
  // Scheduling decisions the cost model changed: join-tree re-rootings /
  // child reorderings (OptimizeInstanceOrder) and priority-ordered
  // consistency worklists that deviated from FIFO. Provenance only.
  std::atomic<std::uint64_t> cost_reorders{0};
  // Morsel chunks dispatched by RunMorsels for this execution (counted only
  // when a loop actually chunked, so small sequential probes stay free).
  std::atomic<std::uint64_t> morsels{0};
  // Semijoin relaxations run by the pairwise-consistency worklist (cyclic
  // schemas only; the acyclic downgrade's two-pass reducer reports 0).
  std::atomic<std::uint64_t> worklist_iterations{0};
};

struct ExecPolicy {
  // Called (at most once per operator invocation) only when a probe loop
  // crosses row_threshold, so engines can create their pool lazily. A null
  // provider, or a provider returning null, means sequential execution.
  std::function<ThreadPool*()> pool;
  // Rows per morsel: the unit of work a probe loop hands to the pool.
  std::size_t morsel_rows = kDefaultMorselRows;
  // Probe loops below this many rows never dispatch (morsel setup costs
  // more than it saves on small inputs).
  std::size_t row_threshold = kDefaultMorselRowThreshold;
  // Cooperative stop signal for this execution, or null (never stops).
  // RunMorsels checks it once per morsel claim — workers stop claiming and
  // the calling thread raises ExecInterrupted once the loop drains — and
  // strategy code polls it at checkpoint sites via CheckExecInterrupt().
  // When a token is set, large loops are chunked into morsels even without
  // a pool, so single-threaded executions get the same check granularity.
  const CancelToken* cancel = nullptr;
  // Per-execution tally sink for probe-filter outcomes, or null (tallies
  // fall through to the process-wide counters). RunMorsels re-installs the
  // sink on pool workers around each claimed morsel, so tallies from
  // parallel probes land in their own query's stats — concurrent
  // executions never pollute each other's provenance.
  ExecStats* stats = nullptr;
  // Statistics-driven scheduling: join-tree rooting/child ordering, the
  // consistency worklist priority, and the build-size-aware morsel
  // threshold consult data stats when set. Scheduling only — counts are
  // identical either way (the differential suite runs both settings).
  bool cost_model = false;
  // Memory budgets for this execution, or null (unlimited). The same
  // thread-local channel the CancelToken uses: allocation sites on the
  // driving thread call ChargeExecMemory, which charges `query_memory`
  // (bytes allocated by this execution) and `process_memory` (bytes held
  // by all in-flight executions, shared daemon-wide). Pool workers run
  // scope-free and charge nothing — their buffers are morsel-bounded.
  MemoryBudget* query_memory = nullptr;
  MemoryBudget* process_memory = nullptr;
};

// Installs `policy` as the current thread's execution policy for the
// lifetime of the scope (scopes nest; destruction restores the previous
// policy). The policy applies only to operators invoked on this thread —
// morsel tasks themselves run scope-free, so a worker executing a morsel
// never re-dispatches.
class ExecScope {
 public:
  explicit ExecScope(ExecPolicy policy);
  ~ExecScope();

  ExecScope(const ExecScope&) = delete;
  ExecScope& operator=(const ExecScope&) = delete;

 private:
  const ExecPolicy* previous_;
  ExecStats* previous_stats_;
  ExecPolicy policy_;
};

// The policy installed on this thread, or nullptr (sequential).
const ExecPolicy* CurrentExecPolicy();

// The per-execution stats sink visible to this thread, or nullptr. Set by
// ExecScope (from ExecPolicy::stats) and re-installed on pool workers by
// RunMorsels for the duration of each morsel, so probe drivers can tally
// from any thread participating in the execution.
ExecStats* CurrentExecStats();

// Raised when an execution observes its CancelToken stopped: the strategy
// stack unwinds to CountingEngine::Count, which maps the reason onto
// CountResult::status. Never thrown from pool workers (morsel bodies must
// not throw) — only from checkpoints on the thread driving the execution.
struct ExecInterrupted {
  CancelToken::StopReason reason = CancelToken::StopReason::kCancelled;
};

// Checkpoint: throws ExecInterrupted if the current thread's policy carries
// a stopped token. Cheap when no token is installed (one thread-local
// read). Strategy loops outside the morselized kernel paths — the
// consistency worklist, the backtracking counter, the width searches —
// call this so deadline expiry surfaces even on small-table executions.
void CheckExecInterrupt();

// Raised by ChargeExecMemory when an execution's budget refuses a charge:
// unwinds like ExecInterrupted, and the engine maps it to
// CountResult::status == kResourceExhausted. Thrown only on the driving
// thread (workers never charge).
struct ExecResourceExhausted {
  std::uint64_t requested_bytes = 0;
};

// Charges `bytes` of table/index memory against the current thread's
// budgets (see ExecPolicy::query_memory). A no-op without an installed
// policy or budgets; throws ExecResourceExhausted when a budget refuses.
// Call at allocation granularity — one call per table/index/hash buffer,
// never per row.
void ChargeExecMemory(std::uint64_t bytes);

// Chunking decision for a probe loop over `rows` rows under the current
// thread's policy.
struct MorselPlan {
  std::size_t chunks = 1;        // number of morsels
  std::size_t rows_per_chunk = 0;  // == rows when chunks == 1
  bool parallel = false;           // whether RunMorsels may use the pool

  // Row range of morsel `chunk` (chunks partition [0, rows)).
  std::size_t ChunkBegin(std::size_t chunk) const {
    return chunk * rows_per_chunk;
  }
  std::size_t ChunkEnd(std::size_t chunk, std::size_t rows) const {
    std::size_t end = (chunk + 1) * rows_per_chunk;
    return end < rows ? end : rows;
  }
};
MorselPlan PlanMorsels(std::size_t rows);

// Build-side-aware variant: `build_groups` is the probed index's group
// count. Under a cost-model policy, probes into an index too big for the
// L2 cache morselize at a quarter of the usual row threshold — every probe
// is a likely cache miss, so the per-row work is heavy enough to amortize
// morsel setup much earlier. Without a cost-model policy this is exactly
// PlanMorsels(rows).
MorselPlan PlanMorsels(std::size_t rows, std::size_t build_groups);

// Runs body(chunk, begin, end) for every morsel of `plan` over [0, rows).
// Sequential plans run inline. Parallel plans submit runner tasks to the
// policy's pool and the calling thread participates, claiming morsels from
// the same atomic cursor — the loop completes even if every pool worker is
// busy (or the pool never schedules a runner), which is what makes it safe
// to dispatch onto the engine's batch pool from inside a batch job. `body`
// must be safe to invoke concurrently for disjoint chunks and must not
// throw.
//
// Cancellation: the claim loop checks the policy's CancelToken before every
// claim. Once stopped, remaining chunks are claimed but not executed (so
// the completion count still converges), and after the loop drains the
// CALLING thread throws ExecInterrupted — the partially-produced operator
// output never reaches a caller.
void RunMorsels(const MorselPlan& plan, std::size_t rows,
                const std::function<void(std::size_t, std::size_t,
                                         std::size_t)>& body);

}  // namespace sharpcq

#endif  // SHARPCQ_ALGEBRA_EXEC_POLICY_H_
