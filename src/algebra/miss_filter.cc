#include "algebra/miss_filter.h"

#include <atomic>

#include "algebra/exec_policy.h"
#include "algebra/simd.h"
#include "util/metrics.h"

namespace sharpcq {

namespace {

// Largest build cardinality served by the byte tag vector; beyond it the
// blocked bloom's per-key cost (2 bytes) beats the tag vector's shrinking
// accuracy.
constexpr std::size_t kMaxTagVectorGroups = 2048;

std::size_t Pow2AtLeast(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::atomic<int> filter_disable_count{0};

}  // namespace

MissFilter MissFilter::Build(std::span<const std::uint64_t> group_words) {
  MissFilter filter;
  const std::size_t n = group_words.size();
  if (n == 0) return filter;  // kAlwaysMiss

  // Hash in probe-block chunks through the dispatched batch primitive so
  // the filter's bits are derived from exactly the hashes probes compute.
  std::uint64_t hashes[kProbeBlockRows];
  if (n <= kMaxTagVectorGroups) {
    filter.kind_ = Kind::kTagVector;
    // >= 4 buckets per key: one-bit-of-eight occupancy stays ~3% per probe.
    const std::size_t buckets = Pow2AtLeast(n * 4 < 64 ? 64 : n * 4);
    filter.mask_ = buckets - 1;
    filter.bytes_.assign(buckets, 0);
    for (std::size_t begin = 0; begin < n; begin += kProbeBlockRows) {
      const std::size_t len =
          begin + kProbeBlockRows < n ? kProbeBlockRows : n - begin;
      HashWordsBatch(group_words.data() + begin, len, hashes);
      for (std::size_t i = 0; i < len; ++i) {
        const std::uint64_t h = hashes[i];
        filter.bytes_[(h >> 32) & filter.mask_] |=
            static_cast<std::uint8_t>(1u << ((h >> 29) & 7));
      }
    }
    return filter;
  }

  filter.kind_ = Kind::kBlockedBloom;
  // ~16 filter bits per key across 64-bit blocks, 2 probe bits each:
  // false-positive rate ~1.5% at 2 bytes per key.
  const std::size_t blocks = Pow2AtLeast((n + 3) / 4);
  filter.mask_ = blocks - 1;
  filter.blocks_.assign(blocks, 0);
  for (std::size_t begin = 0; begin < n; begin += kProbeBlockRows) {
    const std::size_t len =
        begin + kProbeBlockRows < n ? kProbeBlockRows : n - begin;
    HashWordsBatch(group_words.data() + begin, len, hashes);
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint64_t h = hashes[i];
      filter.blocks_[(h >> 32) & filter.mask_] |=
          (std::uint64_t{1} << ((h >> 26) & 63)) |
          (std::uint64_t{1} << ((h >> 20) & 63));
    }
  }
  return filter;
}

void MissFilter::MightContainBatch(const std::uint64_t* hashes, std::size_t n,
                                   std::uint8_t* out) const {
  switch (kind_) {
    case Kind::kAlwaysMiss:
      for (std::size_t i = 0; i < n; ++i) out[i] = 0;
      return;
    case Kind::kTagVector:
      // At most 8 KiB and L1-resident next to any probed index: a plain
      // loop beats a gather here.
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t h = hashes[i];
        out[i] = (bytes_[(h >> 32) & mask_] >> ((h >> 29) & 7)) & 1;
      }
      return;
    case Kind::kBlockedBloom:
      BloomMightContainBatch(blocks_.data(), mask_, hashes, n, out);
      return;
  }
}

bool MissFiltersEnabled() {
  return filter_disable_count.load(std::memory_order_relaxed) == 0;
}

MissFilterDisableScope::MissFilterDisableScope() {
  filter_disable_count.fetch_add(1, std::memory_order_relaxed);
}

MissFilterDisableScope::~MissFilterDisableScope() {
  filter_disable_count.fetch_sub(1, std::memory_order_relaxed);
}

namespace {

std::atomic<std::uint64_t> filter_hits_total{0};
std::atomic<std::uint64_t> filter_passes_total{0};

}  // namespace

ProbeFilterStats GlobalProbeFilterStats() {
  ProbeFilterStats stats;
  stats.hits = filter_hits_total.load(std::memory_order_relaxed);
  stats.passes = filter_passes_total.load(std::memory_order_relaxed);
  return stats;
}

void AddProbeFilterTallies(std::uint64_t hits, std::uint64_t passes) {
  if (hits == 0 && passes == 0) return;
  // Per-execution attribution first: when an ExecScope installed a stats
  // sink (the engine does, one per Count call; RunMorsels re-installs it on
  // pool workers), the tallies belong to that execution alone — concurrent
  // queries never see each other's probes. The process-wide counters keep
  // accumulating regardless, as the cross-execution total.
  if (ExecStats* stats = CurrentExecStats(); stats != nullptr) {
    if (hits != 0) {
      stats->filter_hits.fetch_add(hits, std::memory_order_relaxed);
    }
    if (passes != 0) {
      stats->filter_passes.fetch_add(passes, std::memory_order_relaxed);
    }
  }
  if (hits != 0) filter_hits_total.fetch_add(hits, std::memory_order_relaxed);
  if (passes != 0) {
    filter_passes_total.fetch_add(passes, std::memory_order_relaxed);
  }
  // Registry mirror for the Prometheus exposition. This call is already the
  // probe drivers' per-block flush point (they tally block-locally and land
  // here once per kProbeBlockRows rows), so the extra striped-counter adds
  // are off the per-row path — the cost the metrics-overhead bench gates.
  static Counter& hits_metric = MetricsRegistry::Instance().GetCounter(
      "sharpcq_probe_filter_hits_total");
  static Counter& passes_metric = MetricsRegistry::Instance().GetCounter(
      "sharpcq_probe_filter_passes_total");
  if (hits != 0) hits_metric.Add(hits);
  if (passes != 0) passes_metric.Add(passes);
}

}  // namespace sharpcq
