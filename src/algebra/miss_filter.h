#ifndef SHARPCQ_ALGEBRA_MISS_FILTER_H_
#define SHARPCQ_ALGEBRA_MISS_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sharpcq {

// A tiny per-(table, key-columns) membership filter attached to every
// TableIndex, consulted before the slot walk so probes whose key is absent
// from the build side — the dominant shape in full-reducer semijoin passes
// over already-reduced relations — never touch the open-addressing table or
// the CSR group structure. One-sided: MightContain never returns false for
// a stored key (no false negatives); a false positive just falls through to
// the slot walk, which resolves it exactly.
//
// The layout is chosen by build cardinality, ursadb's builder-by-scale
// idiom (BitmapIndexBuilder vs FlatIndexBuilder):
//
//   kTagVector     <= 2048 groups: a byte-per-bucket tag vector, each
//                  bucket accumulating (by OR) a 1-of-8 bit tag for every
//                  key hashing into it. One byte load per probe; the whole
//                  filter is at most 8 KiB — L1-resident next to any index.
//   kBlockedBloom  larger builds: a register-blocked bloom filter of
//                  64-bit blocks, two probe bits per key confined to one
//                  block. One 8-byte load per probe; ~2 bytes per key, so
//                  it stays cache-resident long after the slot table has
//                  spilled to L3 — which is exactly when it pays.
//
// All probe bits come from the same 64-bit splitmix hash of the packed key
// word that drives the slot table, but from disjoint bit ranges (slots use
// the low bits, the slot tag the top byte, the filter bits 20..45), so a
// filter pass and a slot-tag match stay nearly independent.
//
// Immutable after Build; safe to probe from any number of threads.
class MissFilter {
 public:
  enum class Kind : std::uint8_t { kAlwaysMiss, kTagVector, kBlockedBloom };

  // The empty filter: no keys, every probe is a definite miss.
  MissFilter() = default;

  // Filter over the hashes of `group_words` (one packed word per distinct
  // key of the index; duplicates are harmless).
  static MissFilter Build(std::span<const std::uint64_t> group_words);

  // False => no stored key has this hash (definite miss, skip the index).
  // True => a key might be present; walk the slots. `hash` must be the
  // full 64-bit splitmix hash of the packed probe word.
  bool MightContain(std::uint64_t hash) const {
    switch (kind_) {
      case Kind::kAlwaysMiss:
        return false;
      case Kind::kTagVector:
        return (bytes_[(hash >> 32) & mask_] >> ((hash >> 29) & 7)) & 1;
      case Kind::kBlockedBloom: {
        const std::uint64_t block = blocks_[(hash >> 32) & mask_];
        const std::uint64_t probe = (std::uint64_t{1} << ((hash >> 26) & 63)) |
                                    (std::uint64_t{1} << ((hash >> 20) & 63));
        return (block & probe) == probe;
      }
    }
    return true;
  }

  // Batch form for the probe driver's verdict pass: out[i] =
  // MightContain(hashes[i]) for a whole block. The bloom layout dispatches
  // to the SIMD gather kernel (scalar fallback prefetches ahead), so the
  // random filter loads overlap instead of stalling a per-row loop.
  void MightContainBatch(const std::uint64_t* hashes, std::size_t n,
                         std::uint8_t* out) const;

  Kind kind() const { return kind_; }
  std::size_t bytes() const {
    return bytes_.size() + blocks_.size() * sizeof(std::uint64_t);
  }

 private:
  Kind kind_ = Kind::kAlwaysMiss;
  std::uint64_t mask_ = 0;
  std::vector<std::uint8_t> bytes_;    // kTagVector buckets
  std::vector<std::uint64_t> blocks_;  // kBlockedBloom blocks
};

// --- process-wide filter controls and provenance counters --------------------

// Whether probe drivers consult miss filters right now. Filters are always
// built (they are a few bytes per key); only the probe-time consult is
// gated, so toggling never invalidates an index.
bool MissFiltersEnabled();

// Disables filter consults for the scope's lifetime (scopes nest and may
// overlap across threads — a process-wide disable count). The engine
// installs one around ExecutePlan when EngineOptions.enable_probe_filters
// is false; benchmarks use it to measure raw probe cost.
class MissFilterDisableScope {
 public:
  MissFilterDisableScope();
  ~MissFilterDisableScope();

  MissFilterDisableScope(const MissFilterDisableScope&) = delete;
  MissFilterDisableScope& operator=(const MissFilterDisableScope&) = delete;
};

// Cumulative process-wide filter outcomes: `hits` are probes the filter
// resolved as definite misses without touching the slot table (the saved
// work), `passes` are probes that went on to the slot walk (including the
// rare false positives). Probe drivers tally locally and add once per
// block, so the counters cost nothing on the per-row path.
//
// Attribution: when the current thread (or the morsel worker's enclosing
// RunMorsels) carries a per-execution ExecStats sink (algebra/
// exec_policy.h), tallies are ALSO added there — that is what the engine
// reads into CountResult::filter_hits/filter_passes, so each query reports
// exactly its own probes even under concurrent executions. The global
// counters below remain the process-wide total for kernel-level tests and
// diagnostics that run without a scope.
struct ProbeFilterStats {
  std::uint64_t hits = 0;
  std::uint64_t passes = 0;
};
ProbeFilterStats GlobalProbeFilterStats();
void AddProbeFilterTallies(std::uint64_t hits, std::uint64_t passes);

}  // namespace sharpcq

#endif  // SHARPCQ_ALGEBRA_MISS_FILTER_H_
