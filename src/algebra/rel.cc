#include "algebra/rel.h"

#include <algorithm>

#include "algebra/exec_policy.h"
#include "algebra/stats.h"

namespace sharpcq {

Rel::Rel(const VarRelation& legacy) : vars_(legacy.vars()) {
  TableBuilder builder(legacy.rel().arity());
  builder.ReserveRows(legacy.size());
  const std::size_t n = legacy.size();
  for (std::size_t i = 0; i < n; ++i) builder.AddRow(legacy.rel().Row(i));
  table_ = std::move(builder).Build();
}

Rel Rel::Unit() {
  TableBuilder builder(0);
  builder.AddRow(std::span<const Value>{});
  return Rel(IdSet{}, std::move(builder).Build(/*known_distinct=*/true));
}

int Rel::ColumnOf(std::uint32_t var) const {
  const auto& ids = vars_.ids();
  auto it = std::lower_bound(ids.begin(), ids.end(), var);
  SHARPCQ_CHECK_MSG(it != ids.end() && *it == var,
                    "variable not in relation schema");
  return static_cast<int>(it - ids.begin());
}

std::string Rel::DebugString() const {
  return vars_.ToString() + table_->DebugString();
}

std::vector<int> ColumnsOf(const Rel& r, const IdSet& vars) {
  std::vector<int> cols;
  cols.reserve(vars.size());
  for (std::uint32_t v : vars) cols.push_back(r.ColumnOf(v));
  return cols;
}

Rel Project(const Rel& r, const IdSet& onto) {
  SHARPCQ_CHECK_MSG(onto.IsSubsetOf(r.vars()), "Project: onto not a subset");
  if (onto == r.vars()) return r;  // identity: share the table
  std::vector<int> cols = ColumnsOf(r, onto);
  std::shared_ptr<const TableIndex> index = r.table()->IndexOn(cols);

  TableBuilder builder(static_cast<int>(cols.size()));
  builder.ReserveRows(index->num_groups());
  for (std::size_t g = 0; g < index->num_groups(); ++g) {
    builder.AddRow(index->group_key(g));
  }
  return Rel(onto, std::move(builder).Build(/*known_distinct=*/true));
}

Rel Join(const Rel& a, const Rel& b) {
  IdSet shared = Intersect(a.vars(), b.vars());
  IdSet out_vars = Union(a.vars(), b.vars());

  // Position of every output column in a (or b for b-only vars).
  std::vector<int> from_a(out_vars.size(), -1);
  std::vector<int> from_b(out_vars.size(), -1);
  {
    std::size_t i = 0;
    for (std::uint32_t v : out_vars) {
      if (a.vars().Contains(v)) {
        from_a[i] = a.ColumnOf(v);
      } else {
        from_b[i] = b.ColumnOf(v);
      }
      ++i;
    }
  }

  std::shared_ptr<const TableIndex> index =
      b.table()->IndexOn(ColumnsOf(b, shared));
  std::vector<int> a_shared_cols = ColumnsOf(a, shared);
  const Table& ta = *a.table();
  const Table& tb = *b.table();
  const std::size_t n = ta.rows();

  // Probe phase: per-morsel (a-row, b-row) id pair lists, via one packed
  // word per probe row. Morsels only append to their own chunk's vectors.
  MorselPlan plan = PlanMorsels(n, index->num_groups());
  std::vector<std::vector<std::uint32_t>> a_ids(plan.chunks);
  std::vector<std::vector<std::uint32_t>> b_ids(plan.chunks);
  RunMorsels(plan, n, [&](std::size_t chunk, std::size_t begin,
                          std::size_t end) {
    std::vector<std::uint32_t>& av = a_ids[chunk];
    std::vector<std::uint32_t>& bv = b_ids[chunk];
    ForEachProbeGroup(*index, ta, a_shared_cols, begin, end,
                      [&](std::size_t i, std::uint32_t group) {
                        if (group == TableIndex::kNoGroup) return;
                        for (std::uint32_t bid : index->group_rows(group)) {
                          av.push_back(static_cast<std::uint32_t>(i));
                          bv.push_back(bid);
                        }
                      });
  });

  // Materialize column-wise: one contiguous gather per output column from
  // whichever side owns it, chunks concatenated in probe order.
  std::size_t total = 0;
  for (const auto& chunk : a_ids) total += chunk.size();
  std::vector<std::vector<Value>> cols(out_vars.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    std::vector<Value>& out = cols[c];
    out.reserve(total);
    if (from_a[c] >= 0) {
      std::span<const Value> src = ta.Column(from_a[c]);
      for (const auto& chunk : a_ids) {
        for (std::uint32_t id : chunk) out.push_back(src[id]);
      }
    } else {
      std::span<const Value> src = tb.Column(from_b[c]);
      for (const auto& chunk : b_ids) {
        for (std::uint32_t id : chunk) out.push_back(src[id]);
      }
    }
  }
  // Distinct inputs produce distinct join rows: an output row determines
  // its (a-row, b-row) pair by projection, so no dedup pass is needed.
  return Rel(std::move(out_vars), Table::FromColumns(std::move(cols), total));
}

Rel Semijoin(const Rel& a, const Rel& b, bool* changed) {
  IdSet shared = Intersect(a.vars(), b.vars());
  std::shared_ptr<const TableIndex> index =
      b.table()->IndexOn(ColumnsOf(b, shared));
  std::vector<int> a_shared_cols = ColumnsOf(a, shared);
  const Table& ta = *a.table();
  const std::size_t n = ta.rows();

  // Per-morsel selection vectors, gathered once below. Each probe is one
  // packed-word lookup; a chunk that keeps every row is the common case in
  // fixpoint tails, so chunks stay cheap ascending id lists.
  MorselPlan plan = PlanMorsels(n, index->num_groups());
  std::vector<std::vector<std::uint32_t>> kept(plan.chunks);
  RunMorsels(plan, n, [&](std::size_t chunk, std::size_t begin,
                          std::size_t end) {
    std::vector<std::uint32_t>& out = kept[chunk];
    out.reserve(end - begin);
    ForEachProbeGroup(*index, ta, a_shared_cols, begin, end,
                      [&](std::size_t i, std::uint32_t group) {
                        if (group != TableIndex::kNoGroup) {
                          out.push_back(static_cast<std::uint32_t>(i));
                        }
                      });
  });

  std::size_t total = 0;
  for (const auto& chunk : kept) total += chunk.size();
  if (total == n) {
    if (changed != nullptr) *changed = false;
    return a;  // nothing removed: share the table and its cached indexes
  }
  if (changed != nullptr) *changed = true;
  if (plan.chunks == 1) {
    return Rel(a.vars(), Table::Gather(ta, kept[0]));
  }
  std::vector<std::uint32_t> selection;
  selection.reserve(total);
  for (const auto& chunk : kept) {
    selection.insert(selection.end(), chunk.begin(), chunk.end());
  }
  return Rel(a.vars(), Table::Gather(ta, selection));
}

Rel SelectEqual(const Rel& r, std::uint32_t var, Value value) {
  const int col = r.ColumnOf(var);
  std::shared_ptr<const TableIndex> index = r.table()->IndexOn({col});
  // Single-column fast path: no key-span construction, word == value.
  std::span<const std::uint32_t> matches = index->Lookup(value);
  if (matches.empty()) return Rel(r.vars());
  if (matches.size() == r.size()) return r;
  return Rel(r.vars(), Table::Gather(*r.table(), matches));
}

bool SameRel(const Rel& a, const Rel& b) {
  if (a.vars() != b.vars()) return false;
  if (a.size() != b.size()) return false;
  if (a.table() == b.table()) return true;
  std::vector<int> all(static_cast<std::size_t>(a.table()->arity()));
  for (std::size_t c = 0; c < all.size(); ++c) all[c] = static_cast<int>(c);
  std::shared_ptr<const TableIndex> index = b.table()->IndexOn(all);
  const Table& ta = *a.table();
  // Packed probes in blocks, bailing out after the block containing the
  // first non-member row (unequal sets usually diverge early).
  constexpr std::size_t kBlock = 512;
  bool contained = true;
  for (std::size_t begin = 0; begin < ta.rows() && contained;
       begin += kBlock) {
    std::size_t end = std::min(begin + kBlock, ta.rows());
    ForEachProbeGroup(*index, ta, all, begin, end,
                      [&](std::size_t, std::uint32_t group) {
                        if (group == TableIndex::kNoGroup) contained = false;
                      });
  }
  // Both sides are sets of equal cardinality, so containment is equality.
  return contained;
}

CountedProjection ProjectCounted(const Rel& r, const IdSet& onto) {
  SHARPCQ_CHECK_MSG(onto.IsSubsetOf(r.vars()),
                    "ProjectCounted: onto not a subset");
  std::vector<int> cols = ColumnsOf(r, onto);
  std::shared_ptr<const TableIndex> index = r.table()->IndexOn(cols);

  CountedProjection out;
  TableBuilder builder(static_cast<int>(cols.size()));
  builder.ReserveRows(index->num_groups());
  out.counts.reserve(index->num_groups());
  for (std::size_t g = 0; g < index->num_groups(); ++g) {
    builder.AddRow(index->group_key(g));
    out.counts.push_back(CountInt{index->group_rows(g).size()});
  }
  out.keys = Rel(onto, std::move(builder).Build(/*known_distinct=*/true));
  return out;
}

std::size_t DistinctCount(const Rel& r, const IdSet& onto) {
  SHARPCQ_CHECK_MSG(onto.IsSubsetOf(r.vars()),
                    "DistinctCount: onto not a subset");
  return r.table()->IndexOn(ColumnsOf(r, onto))->num_groups();
}

std::size_t MaxGroupSize(const Rel& r, const IdSet& onto) {
  if (r.empty()) return 0;
  IdSet key_vars = Intersect(r.vars(), onto);
  return r.table()->IndexOn(ColumnsOf(r, key_vars))->max_group_size();
}

std::size_t EstimatedDistinctCount(const Rel& r, const IdSet& onto) {
  const std::size_t rows = r.size();
  IdSet key_vars = Intersect(r.vars(), onto);
  if (key_vars.size() == 0) return rows == 0 ? 0 : 1;
  std::shared_ptr<const TableStats> stats = r.table()->StatsIfPresent();
  if (stats == nullptr) return rows;
  std::uint64_t est = 1;
  for (int c : ColumnsOf(r, key_vars)) {
    const std::uint64_t distinct =
        stats->columns[static_cast<std::size_t>(c)].distinct;
    if (distinct == 0) return 0;
    if (est >= rows / distinct + 1) return rows;  // product already >= rows
    est *= distinct;
  }
  return est < rows ? static_cast<std::size_t>(est) : rows;
}

VarRelation ToVarRelation(const Rel& r) {
  VarRelation out(r.vars());
  const Table& t = *r.table();
  std::vector<Value> row(static_cast<std::size_t>(t.arity()));
  for (std::size_t i = 0; i < t.rows(); ++i) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      row[c] = t.at(i, static_cast<int>(c));
    }
    out.rel().AddRow(row);
  }
  return out;
}

}  // namespace sharpcq
