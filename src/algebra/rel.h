#ifndef SHARPCQ_ALGEBRA_REL_H_
#define SHARPCQ_ALGEBRA_REL_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/table.h"
#include "data/var_relation.h"
#include "util/count_int.h"
#include "util/id_set.h"

namespace sharpcq {

// The kernel's variable-bound relation handle: an IdSet schema (columns in
// ascending variable id, like VarRelation) over an immutable shared Table.
// Copying a Rel copies a shared_ptr, never tuple data; operators that keep
// every row (e.g. a semijoin that removes nothing) return a handle to the
// *same* table, preserving its cached indexes. This is the storage layer
// under every counting strategy; data/var_relation.h remains the legacy
// by-value reference implementation that the differential tests arbitrate
// against.
//
// Invariant: the table is always a set of rows (deduplicated). Conversion
// from VarRelation dedups; every kernel operator preserves the invariant.
class Rel {
 public:
  Rel() : table_(Table::Empty(0)) {}
  explicit Rel(IdSet vars)
      : vars_(std::move(vars)),
        table_(Table::Empty(static_cast<int>(vars_.size()))) {}
  Rel(IdSet vars, std::shared_ptr<const Table> table)
      : vars_(std::move(vars)), table_(std::move(table)) {
    SHARPCQ_CHECK(table_ != nullptr &&
                  table_->arity() == static_cast<int>(vars_.size()));
  }
  // Bridge from the legacy representation (deduplicates). Intentionally
  // implicit: ported APIs keep accepting VarRelation arguments.
  Rel(const VarRelation& legacy);  // NOLINT(google-explicit-constructor)

  // The substitution with empty domain: the identity for Join.
  static Rel Unit();

  const IdSet& vars() const { return vars_; }
  const std::shared_ptr<const Table>& table() const { return table_; }
  std::size_t size() const { return table_->rows(); }
  bool empty() const { return table_->empty(); }

  // Column position of `var`, which must be in vars().
  int ColumnOf(std::uint32_t var) const;

  // Value of `var` in row `row_id`.
  Value At(std::size_t row_id, std::uint32_t var) const {
    return table_->at(row_id, ColumnOf(var));
  }

  std::string DebugString() const;

 private:
  IdSet vars_;
  std::shared_ptr<const Table> table_;
};

// Column positions in `r` of the variables in `vars` (all must be present,
// ascending var order — the canonical key order the index cache is keyed by).
std::vector<int> ColumnsOf(const Rel& r, const IdSet& vars);

// pi_onto(r). `onto` must be a subset of r.vars(). Deduplicated via the
// index cache (hash grouping), first-occurrence row order.
Rel Project(const Rel& r, const IdSet& onto);

// Natural join r1 |><| r2 on the shared variables, probing b's cached index
// with one packed key word per probe row (see KeyPacking). Large probe
// sides morselize onto the current ExecScope's pool (algebra/
// exec_policy.h); the output is materialized column-wise from the matched
// (a-row, b-row) id pairs in probe order, so parallel and sequential runs
// produce identical tables.
Rel Join(const Rel& a, const Rel& b);

// Semijoin a |>< b: the rows of `a` that join with at least one row of `b`.
// Sets *changed (if non-null) when rows were removed. When nothing is
// removed, returns a handle to a's table itself (no copy, cached indexes
// preserved) — the fixpoint loops in solver/ and count/ rely on this.
// Probes are packed-word lookups; large probe sides morselize like Join,
// writing per-morsel selection vectors gathered once.
Rel Semijoin(const Rel& a, const Rel& b, bool* changed = nullptr);

// sigma_{var=value}(r), via the cached single-column index.
Rel SelectEqual(const Rel& r, std::uint32_t var, Value value);

// Set equality (schemas must match).
bool SameRel(const Rel& a, const Rel& b);

// Counted projection (group-by-count): the distinct keys of pi_onto(r)
// with the number of source rows each key collapses, computed from the
// index groups without materializing a deduplicated intermediate.
struct CountedProjection {
  Rel keys;                      // schema = onto, one row per distinct key
  std::vector<CountInt> counts;  // parallel to keys' rows
};
CountedProjection ProjectCounted(const Rel& r, const IdSet& onto);

// |pi_onto(r)| without materializing the projection.
std::size_t DistinctCount(const Rel& r, const IdSet& onto);

// The degree of r w.r.t. the key variables `onto` ∩ vars(r): the largest
// number of rows agreeing on the key (Definition 6.1), streamed from the
// index groups.
std::size_t MaxGroupSize(const Rel& r, const IdSet& onto);

// Cheap estimate of |pi_{onto ∩ vars(r)}(r)| for scheduling decisions:
// the product of the per-column distinct counts from the table's cached
// stats (capped at the row count), or simply the row count when no stats
// are present. Never builds an index and never touches tuple data — unlike
// DistinctCount, which is exact but pays a grouping pass.
std::size_t EstimatedDistinctCount(const Rel& r, const IdSet& onto);

// Bridge back to the legacy representation (copies tuple data).
VarRelation ToVarRelation(const Rel& r);

}  // namespace sharpcq

#endif  // SHARPCQ_ALGEBRA_REL_H_
