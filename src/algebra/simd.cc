#include "algebra/simd.h"

#include <atomic>

#include "util/cpu.h"
#include "util/hash.h"

#if !defined(SHARPCQ_NO_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define SHARPCQ_SIMD_AVX2 1
#include <immintrin.h>
#else
#define SHARPCQ_SIMD_AVX2 0
#endif

namespace sharpcq {

namespace {

std::atomic<ProbeKernel> forced_kernel{ProbeKernel::kAuto};

// --- scalar reference implementations ----------------------------------------
//
// These ARE the semantics: the AVX2 paths below must reproduce them bit for
// bit (the differential suite forces both and compares).

void PackDenseDigitsScalar(const std::int64_t* col, std::size_t n,
                           std::uint64_t base, std::uint64_t range, int shift,
                           std::uint64_t* out) {
  constexpr std::uint64_t kPoison = std::uint64_t{1} << 63;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t diff = static_cast<std::uint64_t>(col[i]) - base;
    out[i] |= diff <= range ? diff << shift : kPoison;
  }
}

void HashWordsBatchScalar(const std::uint64_t* words, std::size_t n,
                          std::uint64_t* hashes) {
  for (std::size_t i = 0; i < n; ++i) hashes[i] = HashMix(words[i]);
}

void BloomMightContainBatchScalar(const std::uint64_t* blocks,
                                  std::uint64_t mask,
                                  const std::uint64_t* hashes, std::size_t n,
                                  std::uint8_t* out) {
  // Run the block loads a fixed distance ahead of the verdicts so the
  // random filter-line accesses overlap instead of serializing the loop.
  constexpr std::size_t kAhead = 16;
#if defined(__GNUC__) || defined(__clang__)
  const std::size_t prime = n < kAhead ? n : kAhead;
  for (std::size_t i = 0; i < prime; ++i) {
    __builtin_prefetch(blocks + ((hashes[i] >> 32) & mask));
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
#if defined(__GNUC__) || defined(__clang__)
    if (i + kAhead < n) {
      __builtin_prefetch(blocks + ((hashes[i + kAhead] >> 32) & mask));
    }
#endif
    const std::uint64_t h = hashes[i];
    const std::uint64_t block = blocks[(h >> 32) & mask];
    const std::uint64_t probe = (std::uint64_t{1} << ((h >> 26) & 63)) |
                                (std::uint64_t{1} << ((h >> 20) & 63));
    out[i] = (block & probe) == probe ? 1 : 0;
  }
}

#if SHARPCQ_SIMD_AVX2

// --- AVX2 implementations -----------------------------------------------------
//
// Four 64-bit lanes per __m256i, two registers in flight = 8-wide. AVX2 has
// no 64x64 multiply or unsigned 64-bit compare; both are synthesized below
// (the standard three-product multiply and the sign-flip compare), which
// keeps every lane's arithmetic identical to the scalar uint64 ops.

// Lane-wise a * b (low 64 bits), via 32x32 partial products.
__attribute__((target("avx2"))) inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo_lo = _mm256_mul_epu32(a, b);
  const __m256i lo_hi = _mm256_mul_epu32(a, b_hi);
  const __m256i hi_lo = _mm256_mul_epu32(a_hi, b);
  const __m256i cross = _mm256_add_epi64(lo_hi, hi_lo);
  return _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32));
}

// Lane-wise unsigned a > b: flip sign bits, compare signed.
__attribute__((target("avx2"))) inline __m256i CmpGtU64(__m256i a, __m256i b) {
  const __m256i flip = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  return _mm256_cmpgt_epi64(_mm256_xor_si256(a, flip),
                            _mm256_xor_si256(b, flip));
}

__attribute__((target("avx2"))) void PackDenseDigitsAvx2(
    const std::int64_t* col, std::size_t n, std::uint64_t base,
    std::uint64_t range, int shift, std::uint64_t* out) {
  const __m256i vbase = _mm256_set1_epi64x(static_cast<long long>(base));
  const __m256i vrange = _mm256_set1_epi64x(static_cast<long long>(range));
  const __m256i vpoison =
      _mm256_set1_epi64x(static_cast<long long>(std::uint64_t{1} << 63));
  const __m128i vshift = _mm_cvtsi32_si128(shift);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(col + i));
    const __m256i diff = _mm256_sub_epi64(v, vbase);
    const __m256i over = CmpGtU64(diff, vrange);  // all-ones on out-of-range
    const __m256i digit = _mm256_sll_epi64(diff, vshift);
    const __m256i bits = _mm256_blendv_epi8(digit, vpoison, over);
    const __m256i prev = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(out + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_or_si256(prev, bits));
  }
  if (i < n) PackDenseDigitsScalar(col + i, n - i, base, range, shift, out + i);
}

__attribute__((target("avx2"))) void HashWordsBatchAvx2(
    const std::uint64_t* words, std::size_t n, std::uint64_t* hashes) {
  const __m256i c1 =
      _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  const __m256i c2 =
      _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m256i c3 =
      _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + i));
    x = _mm256_add_epi64(x, c1);
    x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)), c2);
    x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)), c3);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes + i), x);
  }
  if (i < n) HashWordsBatchScalar(words + i, n - i, hashes + i);
}

#endif  // SHARPCQ_SIMD_AVX2

}  // namespace

bool SimdProbeAvailable() { return CpuSupportsAvx2(); }

ProbeKernel ActiveProbeKernel() {
  switch (forced_kernel.load(std::memory_order_relaxed)) {
    case ProbeKernel::kScalar:
      return ProbeKernel::kScalar;
    case ProbeKernel::kSimd:
    case ProbeKernel::kAuto:
      break;
  }
  return SimdProbeAvailable() ? ProbeKernel::kSimd : ProbeKernel::kScalar;
}

void SetProbeKernelForTesting(ProbeKernel kernel) {
  forced_kernel.store(kernel, std::memory_order_relaxed);
}

void PackDenseDigits(const std::int64_t* col, std::size_t n,
                     std::uint64_t base, std::uint64_t range, int shift,
                     std::uint64_t* out) {
#if SHARPCQ_SIMD_AVX2
  if (ActiveProbeKernel() == ProbeKernel::kSimd) {
    PackDenseDigitsAvx2(col, n, base, range, shift, out);
    return;
  }
#endif
  PackDenseDigitsScalar(col, n, base, range, shift, out);
}

void HashWordsBatch(const std::uint64_t* words, std::size_t n,
                    std::uint64_t* hashes) {
#if SHARPCQ_SIMD_AVX2
  if (ActiveProbeKernel() == ProbeKernel::kSimd) {
    HashWordsBatchAvx2(words, n, hashes);
    return;
  }
#endif
  HashWordsBatchScalar(words, n, hashes);
}

void BloomMightContainBatch(const std::uint64_t* blocks, std::uint64_t mask,
                            const std::uint64_t* hashes, std::size_t n,
                            std::uint8_t* out) {
  // One implementation on purpose: an AVX2 vpgatherqq variant measured
  // slower than this software-prefetched loop on the target parts (gather
  // hardware offers no more memory parallelism than the prefetch pipeline
  // and adds lane-marshalling overhead), and a single path keeps verdicts
  // trivially identical across kernels.
  BloomMightContainBatchScalar(blocks, mask, hashes, n, out);
}

}  // namespace sharpcq
