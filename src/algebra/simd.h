#ifndef SHARPCQ_ALGEBRA_SIMD_H_
#define SHARPCQ_ALGEBRA_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace sharpcq {

// Rows per probe block: the unit in which the probe driver packs, hashes,
// filters and resolves words, and the granule morsel sizes are aligned to
// (exec_policy.h) so a morsel boundary never splits a block. Sized so one
// block's scratch (words + hashes + verdicts) stays inside L1.
inline constexpr std::size_t kProbeBlockRows = 512;

// Which implementation the probe kernel's batch primitives run. kAuto
// resolves at first use: AVX2 when compiled in (x86-64 gcc/clang without
// SHARPCQ_NO_SIMD) and the CPU supports it, scalar otherwise. The two
// implementations compute bit-identical results — the differential suite
// forces each in turn and compares outputs byte for byte.
enum class ProbeKernel : std::uint8_t { kAuto, kScalar, kSimd };

// True when the AVX2 kernel can run in this process (compile-time gate and
// CPUID both pass).
bool SimdProbeAvailable();

// The kernel the dispatcher currently resolves to — never kAuto. Forcing
// kSimd on a machine without AVX2 support resolves to kScalar.
ProbeKernel ActiveProbeKernel();

// Test hook: pins the dispatcher to one implementation (kAuto restores the
// default). Takes effect on the next batch call; not for production use.
void SetProbeKernelForTesting(ProbeKernel kernel);

// --- batch primitives (dispatched) -------------------------------------------
//
// Each call resolves the active kernel once and streams the whole batch
// through it. All of them are exact drop-in replacements for the scalar
// loops they vectorize: same wraparound arithmetic, same poison semantics.

// One dense-packing digit column over a row block:
//   out[i] |= (col[i] - base) <= range ? (col[i] - base) << shift
//                                      : kPoison (bit 63)
// with the subtraction and comparison in uint64 arithmetic (two's
// complement, matching KeyPacking::Pack).
void PackDenseDigits(const std::int64_t* col, std::size_t n,
                     std::uint64_t base, std::uint64_t range, int shift,
                     std::uint64_t* out);

// hashes[i] = HashMix(words[i]) — the splitmix64 finalizer over a block,
// feeding slot indexes, slot tags, and the miss-filter probe bits.
void HashWordsBatch(const std::uint64_t* words, std::size_t n,
                    std::uint64_t* hashes);

// Blocked-bloom verdicts over a hash block (MissFilter's kBlockedBloom
// layout): out[i] = 1 iff block (hash>>32)&mask holds both probe bits
// (hash>>26)&63 and (hash>>20)&63. Runs the block loads a fixed prefetch
// distance ahead of the verdicts so the (random) filter loads overlap;
// one implementation for every kernel (see the definition for why not a
// gather).
void BloomMightContainBatch(const std::uint64_t* blocks, std::uint64_t mask,
                            const std::uint64_t* hashes, std::size_t n,
                            std::uint8_t* out);

}  // namespace sharpcq

#endif  // SHARPCQ_ALGEBRA_SIMD_H_
