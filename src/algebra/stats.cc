#include "algebra/stats.h"

#include <algorithm>
#include <bit>

#include "algebra/table.h"
#include "data/database.h"
#include "util/check.h"

namespace sharpcq {

std::size_t DegreeBucket(std::uint64_t group_size) {
  SHARPCQ_DCHECK(group_size >= 1);
  const std::size_t b = static_cast<std::size_t>(std::bit_width(group_size)) - 1;
  return b < kDegreeHistogramBuckets ? b : kDegreeHistogramBuckets - 1;
}

std::uint32_t SizeClass(std::uint64_t n) {
  return static_cast<std::uint32_t>(std::bit_width(n));
}

TableStats ComputeTableStats(const Table& table) {
  TableStats stats;
  stats.rows = table.rows();
  stats.columns.resize(static_cast<std::size_t>(table.arity()));
  if (table.rows() == 0) return stats;
  for (int c = 0; c < table.arity(); ++c) {
    std::shared_ptr<const TableIndex> index = table.IndexOn({c});
    ColumnStats& col = stats.columns[static_cast<std::size_t>(c)];
    col.distinct = index->num_groups();
    col.max_group = index->max_group_size();
    for (std::size_t g = 0; g < index->num_groups(); ++g) {
      ++col.histogram[DegreeBucket(index->group_rows(g).size())];
    }
  }
  return stats;
}

std::shared_ptr<const TableStats> PermuteStats(const TableStats& in,
                                               std::span<const int> perm) {
  auto out = std::make_shared<TableStats>();
  out->rows = in.rows;
  out->columns.reserve(perm.size());
  for (int p : perm) {
    SHARPCQ_CHECK(p >= 0 &&
                  static_cast<std::size_t>(p) < in.columns.size());
    out->columns.push_back(in.columns[static_cast<std::size_t>(p)]);
  }
  return out;
}

const RelationProfile* DataProfile::Find(std::string_view name) const {
  auto it = std::lower_bound(
      relations.begin(), relations.end(), name,
      [](const RelationProfile& r, std::string_view n) { return r.name < n; });
  if (it == relations.end() || it->name != name) return nullptr;
  return &*it;
}

std::string DataProfile::Fingerprint() const {
  std::string out;
  for (const RelationProfile& rel : relations) {
    if (!out.empty()) out.push_back(';');
    out += rel.name;
    out.push_back(':');
    out += std::to_string(SizeClass(rel.rows));
    if (rel.stats != nullptr) {
      for (const ColumnStats& col : rel.stats->columns) {
        out.push_back('.');
        out += std::to_string(SizeClass(col.distinct));
        out.push_back('g');
        out += std::to_string(SizeClass(col.max_group));
      }
    }
  }
  return out;
}

DataProfile BuildDataProfile(const Database& db,
                             std::span<const std::string> names) {
  std::vector<std::string> sorted(names.begin(), names.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  DataProfile profile;
  profile.relations.reserve(sorted.size());
  for (const std::string& name : sorted) {
    if (!db.HasRelation(name)) continue;
    RelationProfile rel;
    rel.name = name;
    if (std::shared_ptr<const Table> table = db.ColumnarBacking(name);
        table != nullptr) {
      rel.rows = table->rows();
      rel.stats = table->Stats();
    } else {
      rel.rows = db.relation(name).size();
    }
    profile.relations.push_back(std::move(rel));
  }
  return profile;
}

DataProfile BuildDataProfile(const Database& db) {
  return BuildDataProfile(db, db.SortedRelationNames());
}

}  // namespace sharpcq
