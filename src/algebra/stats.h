#ifndef SHARPCQ_ALGEBRA_STATS_H_
#define SHARPCQ_ALGEBRA_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sharpcq {

class Table;
class Database;

// ---------------------------------------------------------------------------
// Lightweight per-table data statistics — the raw material of the cost
// model. Everything here is derivable from the index group structure the
// kernel already builds (ProjectCounted / TableIndex), streamed once per
// table and then cached on the Table like its indexes, or loaded for free
// from a v2 snapshot's stats section (storage/snapshot.h).
//
// The consumers are scheduling decisions only: strategy tie-breaks in the
// planner, join-tree rooting and child ordering, the consistency worklist
// priority, and morsel thresholds. Every strategy stays exact, so a wrong
// estimate can cost time, never correctness — the differential suite runs
// cost-model-on against cost-model-off to prove it.
// ---------------------------------------------------------------------------

// Log-bucketed degree histogram width: bucket b counts the groups whose
// size lies in [2^b, 2^(b+1)), the last bucket absorbing everything larger.
inline constexpr std::size_t kDegreeHistogramBuckets = 16;

// Bucket of a group of `group_size` rows (group_size >= 1).
std::size_t DegreeBucket(std::uint64_t group_size);

// Coarse log2 size class for fingerprints: 0 for 0, else bit_width(n) — two
// cardinalities land in the same class iff they share a leading-bit
// position, so re-ingesting "about the same data" keeps the class stable
// while an order-of-magnitude change moves it.
std::uint32_t SizeClass(std::uint64_t n);

struct ColumnStats {
  std::uint64_t distinct = 0;   // |pi_c(table)|
  std::uint64_t max_group = 0;  // degree w.r.t. column c (Definition 6.1)
  std::array<std::uint32_t, kDegreeHistogramBuckets> histogram{};

  // Average rows per distinct value (0 for an empty column).
  double AvgGroup(std::uint64_t rows) const {
    return distinct == 0 ? 0.0
                         : static_cast<double>(rows) /
                               static_cast<double>(distinct);
  }

  bool operator==(const ColumnStats&) const = default;
};

struct TableStats {
  std::uint64_t rows = 0;
  std::vector<ColumnStats> columns;  // one per column

  bool operator==(const TableStats&) const = default;
};

// Streams the per-column statistics off the table's cached single-column
// index groups (building and caching those indexes if absent — they are
// the most commonly probed ones anyway).
TableStats ComputeTableStats(const Table& table);

// Column-permuted view: out.columns[c] = in.columns[perm[c]]. The atom
// bridge uses this to carry a stored relation's persisted stats onto the
// column-permuted alias it hands the executor.
std::shared_ptr<const TableStats> PermuteStats(const TableStats& in,
                                               std::span<const int> perm);

// Per-relation slice of a DataProfile. `stats` is null when only the row
// count is known (row-major relations, or columnar tables whose stats were
// not requested).
struct RelationProfile {
  std::string name;
  std::uint64_t rows = 0;
  std::shared_ptr<const TableStats> stats;
};

// A generation's data profile: per-relation stats plus a compact
// fingerprint of their coarse size classes. The engine appends the
// fingerprint (restricted to the query's relations) to the plan-cache key,
// turning "same shape => same plan" into "same shape + same data profile
// class => same plan" — a cached plan survives an ingest exactly when the
// profile class it was costed for still holds.
struct DataProfile {
  std::vector<RelationProfile> relations;  // ascending name

  bool empty() const { return relations.empty(); }
  const RelationProfile* Find(std::string_view name) const;

  // Deterministic, coarse: per relation the log2 class of its row count and
  // of each column's distinct count and max group size. Insensitive to row
  // order and to cardinality jitter within a class.
  std::string Fingerprint() const;
};

// Profiles the named relations of `db` (absent names are skipped). Columnar
// relations contribute full TableStats, computed lazily and cached on their
// Table — free when the table came from a v2 snapshot with persisted stats.
// Row-major relations contribute their row count only.
DataProfile BuildDataProfile(const Database& db,
                             std::span<const std::string> names);

// Profiles every relation of `db`.
DataProfile BuildDataProfile(const Database& db);

}  // namespace sharpcq

#endif  // SHARPCQ_ALGEBRA_STATS_H_
