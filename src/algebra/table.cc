#include "algebra/table.h"

#include <algorithm>

#include "util/hash.h"

namespace sharpcq {

namespace {

std::size_t SlotCapacityFor(std::size_t rows) {
  std::size_t capacity = 16;
  while (capacity < rows * 2 + 2) capacity <<= 1;
  return capacity;
}

}  // namespace

TableIndex::TableIndex(const Table& table, std::vector<int> key_columns)
    : key_columns_(std::move(key_columns)), width_(key_columns_.size()) {
  for (int c : key_columns_) SHARPCQ_CHECK(c >= 0 && c < table.arity());
  const std::size_t n = table.rows();
  const std::size_t capacity = SlotCapacityFor(n);
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;

  // Pass 1: assign every row a group id, appending each fresh key to the
  // flat key buffer. group_of and the per-group counts are the only scratch.
  std::vector<std::uint32_t> group_of(n);
  std::vector<std::uint32_t> counts;
  std::vector<Value> key(width_);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < width_; ++j) {
      key[j] = table.at(i, key_columns_[j]);
    }
    std::size_t slot = FindSlot(key);
    if (slots_[slot] == 0) {
      keys_.insert(keys_.end(), key.begin(), key.end());
      counts.push_back(0);
      slots_[slot] = static_cast<std::uint32_t>(++num_groups_);
    }
    std::uint32_t g = slots_[slot] - 1;
    group_of[i] = g;
    max_group_size_ = std::max(max_group_size_,
                               static_cast<std::size_t>(++counts[g]));
  }

  // Pass 2: CSR layout — prefix-sum the counts, then scatter row ids.
  offsets_.assign(num_groups_ + 1, 0);
  for (std::size_t g = 0; g < num_groups_; ++g) {
    offsets_[g + 1] = offsets_[g] + counts[g];
  }
  rows_.resize(n);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    rows_[cursor[group_of[i]]++] = static_cast<std::uint32_t>(i);
  }
}

std::size_t TableIndex::FindSlot(std::span<const Value> key) const {
  std::size_t h = HashRange(key.begin(), key.end()) & mask_;
  while (true) {
    std::uint32_t g = slots_[h];
    if (g == 0) return h;
    const Value* stored = keys_.data() + (g - 1) * width_;
    if (std::equal(key.begin(), key.end(), stored)) return h;
    h = (h + 1) & mask_;
  }
}

std::span<const std::uint32_t> TableIndex::Lookup(
    std::span<const Value> key) const {
  std::size_t slot = FindSlot(key);
  if (slots_[slot] == 0) return {};
  return group_rows(slots_[slot] - 1);
}

std::shared_ptr<const TableIndex> Table::IndexOn(
    std::vector<int> key_columns) const {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = index_cache_.find(key_columns);
    if (it != index_cache_.end()) return it->second;
  }
  // Build outside the lock so an O(n) build never blocks cache hits on
  // other key sets. Two threads missing on the same key both build; the
  // double-checked insert keeps the first and the loser adopts it.
  auto index = std::make_shared<const TableIndex>(*this, key_columns);
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto [it, inserted] =
      index_cache_.emplace(std::move(key_columns), std::move(index));
  return it->second;
}

bool Table::ContainsRow(std::span<const Value> row) const {
  SHARPCQ_CHECK(static_cast<int>(row.size()) == arity());
  if (arity() == 0) return rows_ > 0;
  std::vector<int> all(cols_.size());
  for (std::size_t c = 0; c < all.size(); ++c) all[c] = static_cast<int>(c);
  return !IndexOn(std::move(all))->Lookup(row).empty();
}

std::size_t Table::CachedIndexCount() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return index_cache_.size();
}

std::shared_ptr<const Table> Table::Empty(int arity) {
  SHARPCQ_CHECK(arity >= 0);
  return std::shared_ptr<const Table>(new Table(
      std::vector<std::vector<Value>>(static_cast<std::size_t>(arity)), 0));
}

std::shared_ptr<const Table> Table::FromExternal(
    std::vector<std::span<const Value>> cols, std::size_t rows,
    std::shared_ptr<const void> arena) {
  for (const auto& col : cols) SHARPCQ_CHECK(col.size() == rows);
  return std::shared_ptr<const Table>(
      new Table(std::move(cols), rows, std::move(arena)));
}

std::shared_ptr<const Table> Table::Gather(
    const Table& src, std::span<const std::uint32_t> row_ids) {
  std::vector<std::vector<Value>> cols(
      static_cast<std::size_t>(src.arity()));
  for (std::size_t c = 0; c < cols.size(); ++c) {
    std::span<const Value> in = src.Column(static_cast<int>(c));
    std::vector<Value>& out = cols[c];
    out.reserve(row_ids.size());
    for (std::uint32_t id : row_ids) out.push_back(in[id]);
  }
  return std::shared_ptr<const Table>(
      new Table(std::move(cols), row_ids.size()));
}

std::string Table::DebugString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < rows_; ++i) {
    if (i > 0) out += ", ";
    out += "(";
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      if (c > 0) out += ",";
      out += std::to_string(cols_[c][i]);
    }
    out += ")";
  }
  out += "}";
  return out;
}

std::shared_ptr<const Table> TableBuilder::Build(bool known_distinct) && {
  if (cols_.empty()) {
    // Arity 0: a set holds at most the empty row.
    std::size_t n = known_distinct ? rows_ : (rows_ > 0 ? 1 : 0);
    return std::shared_ptr<const Table>(new Table({}, n));
  }
  if (known_distinct || rows_ <= 1) {
    return std::shared_ptr<const Table>(
        new Table(std::move(cols_), rows_));
  }
  // Hash dedup keeping first occurrences in order, comparing rows in place
  // (no keys are materialized): open addressing over row ids.
  const std::size_t capacity = SlotCapacityFor(rows_);
  const std::size_t mask = capacity - 1;
  std::vector<std::uint32_t> slots(capacity, 0);
  std::vector<std::uint32_t> keep;
  keep.reserve(rows_);
  const std::size_t width = cols_.size();
  for (std::size_t i = 0; i < rows_; ++i) {
    std::size_t h = 0x9e3779b9u;
    for (std::size_t c = 0; c < width; ++c) {
      h = HashCombine(h, static_cast<std::size_t>(cols_[c][i]));
    }
    h &= mask;
    bool duplicate = false;
    while (true) {
      std::uint32_t other = slots[h];
      if (other == 0) {
        slots[h] = static_cast<std::uint32_t>(i + 1);
        keep.push_back(static_cast<std::uint32_t>(i));
        break;
      }
      const std::size_t o = other - 1;
      duplicate = true;
      for (std::size_t c = 0; c < width; ++c) {
        if (cols_[c][i] != cols_[c][o]) {
          duplicate = false;
          break;
        }
      }
      if (duplicate) break;
      h = (h + 1) & mask;
    }
  }
  if (keep.size() == rows_) {
    return std::shared_ptr<const Table>(
        new Table(std::move(cols_), rows_));
  }
  Table staged(std::move(cols_), rows_);
  return Table::Gather(staged, keep);  // keep is ascending: order preserved
}

}  // namespace sharpcq
