#include "algebra/table.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>
#include <numeric>

#include "algebra/stats.h"
#include "util/cpu.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/metrics.h"

namespace sharpcq {

namespace {

std::size_t SlotCapacityFor(std::size_t rows) {
  std::size_t capacity = 16;
  while (capacity < rows * 2 + 2) capacity <<= 1;
  return capacity;
}

// Test-only narrowing of kHashed words (see SetHashedWordBitsForTesting).
std::atomic<int> hashed_word_bits{0};

std::uint64_t HashedWordOf(std::span<const Value> key) {
  std::uint64_t word = 0x9e3779b97f4a7c15ULL;
  for (Value v : key) {
    word = HashMix(word ^ static_cast<std::uint64_t>(v));
  }
  int bits = hashed_word_bits.load(std::memory_order_relaxed);
  if (bits > 0 && bits < 64) word &= (std::uint64_t{1} << bits) - 1;
  return word;
}

// Test-only override of the radix build threshold (0 = L2-derived).
std::atomic<std::size_t> radix_threshold_override{0};

// Chooses the packing for `key_columns` of `table`: single-column keys pass
// the value through; multi-column keys bit-pack when the per-column ranges
// fit 62 bits (leaving the poison bit and one headroom bit untouched), and
// fall back to the collision-checked hash word otherwise.
KeyPacking ChoosePacking(const Table& table,
                         const std::vector<int>& key_columns) {
  KeyPacking packing;
  if (key_columns.size() <= 1) {
    packing.mode = KeyPacking::Mode::kSingle;
    return packing;
  }
  if (table.rows() == 0) {
    // No rows: every probe misses; the trivial dense packing (all ranges 0)
    // is exact and never matches anything in-range but absent.
    packing.mode = KeyPacking::Mode::kDense;
    packing.base.assign(key_columns.size(), 0);
    packing.range.assign(key_columns.size(), 0);
    packing.shift.assign(key_columns.size(), 0);
    return packing;
  }
  packing.base.reserve(key_columns.size());
  packing.range.reserve(key_columns.size());
  packing.shift.reserve(key_columns.size());
  int total_bits = 0;
  for (int c : key_columns) {
    std::span<const Value> col = table.Column(c);
    Value lo = col[0];
    Value hi = col[0];
    for (Value v : col) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    // Unsigned distance: correct for any int64 pair (two's complement).
    std::uint64_t range =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    packing.base.push_back(static_cast<std::uint64_t>(lo));
    packing.range.push_back(range);
    packing.shift.push_back(total_bits);
    total_bits += std::bit_width(range);
    if (total_bits > 62) {
      packing.mode = KeyPacking::Mode::kHashed;
      packing.base.clear();
      packing.range.clear();
      packing.shift.clear();
      return packing;
    }
  }
  packing.mode = KeyPacking::Mode::kDense;
  return packing;
}

}  // namespace

namespace probe_internal {

namespace {
// One scratch set per thread; the in_use flag hands nested probes (a probe
// issued from inside a probe callback) a nullptr so they fall back to
// plain locals instead of clobbering the outer call's buffers.
thread_local ProbeScratch tls_probe_scratch;
}  // namespace

ProbeScratch* AcquireProbeScratch() {
  ProbeScratch& scratch = tls_probe_scratch;
  if (scratch.in_use) return nullptr;
  scratch.in_use = true;
  return &scratch;
}

void ReleaseProbeScratch(ProbeScratch* scratch) { scratch->in_use = false; }

}  // namespace probe_internal

std::uint64_t KeyPacking::Pack(std::span<const Value> key) const {
  switch (mode) {
    case Mode::kSingle:
      return key.empty() ? 0 : static_cast<std::uint64_t>(key[0]);
    case Mode::kDense: {
      std::uint64_t word = 0;
      for (std::size_t j = 0; j < key.size(); ++j) {
        std::uint64_t diff =
            static_cast<std::uint64_t>(key[j]) - base[j];
        if (diff > range[j]) return kPoison;  // outside the packed box
        word |= diff << shift[j];
      }
      return word;
    }
    case Mode::kHashed:
      return HashedWordOf(key);
  }
  return 0;
}

void TableIndex::SetHashedWordBitsForTesting(int bits) {
  hashed_word_bits.store(bits, std::memory_order_relaxed);
}

std::size_t TableIndex::RadixRowThreshold() {
  const std::size_t forced =
      radix_threshold_override.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  // Partitioning pays for itself only once the slot arrays overflow the
  // LAST-level cache: below that, streaming inserts miss L2 but the LLC
  // absorbs them at a cost smaller than the radix build's extra scatter and
  // renumber passes (measured ~1.4x slower at LLC-resident sizes). The slot
  // arrays cost 13 bytes per slot and capacity is the first power of two
  // above 2n, so 26n bytes is their floor; LLC/13 rows puts the working set
  // at >= 2x the LLC, comfortably into the DRAM regime. The per-partition
  // span is sized from L2 separately (RadixBuild).
  return std::max<std::size_t>(65536, LastLevelCacheBytes() / 13);
}

void TableIndex::SetRadixRowThresholdForTesting(std::size_t rows) {
  radix_threshold_override.store(rows, std::memory_order_relaxed);
}

std::uint64_t TableIndex::HashWord(std::uint64_t word) {
  return HashMix(word);
}

TableIndex::TableIndex(const Table& table, std::vector<int> key_columns)
    : key_columns_(std::move(key_columns)), width_(key_columns_.size()) {
  for (int c : key_columns_) SHARPCQ_CHECK(c >= 0 && c < table.arity());
  packing_ = ChoosePacking(table, key_columns_);
  const std::size_t n = table.rows();
  const std::size_t capacity = SlotCapacityFor(n);
  // One budget charge covering the slot arrays (13 bytes/slot), the CSR,
  // and the group buffers, made before anything is allocated so an
  // over-budget build fails empty-handed. The failpoint doubles as the
  // allocation-failure path for tests.
  const std::uint64_t index_bytes =
      static_cast<std::uint64_t>(capacity) * 13 +
      static_cast<std::uint64_t>(n) * (8 * width_ + 24);
  if (SHARPCQ_FAILPOINT("index.build") != FailpointAction::kNone) {
    throw ExecResourceExhausted{index_bytes};
  }
  ChargeExecMemory(index_bytes);
  tags_.assign(capacity, 0);
  slot_words_ = std::make_unique_for_overwrite<std::uint64_t[]>(capacity);
  slots_ = std::make_unique_for_overwrite<std::uint32_t[]>(capacity);
  mask_ = capacity - 1;

  // Pre-size every growable buffer from the row count (the distinct-key
  // upper bound) so the build performs no regrow churn: one pass over the
  // rows, each appending into already-reserved storage.
  keys_.reserve(n * width_);
  group_words_.reserve(n);
  std::vector<std::uint32_t> group_of(n);
  std::vector<std::uint32_t> counts;
  counts.reserve(n);
  std::vector<std::uint32_t> first_row;
  first_row.reserve(n);

  if (n > 0) {
    if (n >= RadixRowThreshold()) {
      RadixBuild(table, &group_of, &counts, &first_row);
    } else {
      StreamingBuild(table, &group_of, &counts, &first_row);
    }
  }

  // Exact packings never compare key values during the build, so the flat
  // key buffer is gathered here in one pass, after the group numbering is
  // final: first_row is ascending in group order, so the row accesses
  // stream forward through the columns instead of jumping per insert.
  // (kHashed builds gathered keys inline — collision checks need them.)
  if (packing_.exact()) {
    keys_.resize(num_groups_ * width_);
    for (std::size_t g = 0; g < num_groups_; ++g) {
      for (std::size_t j = 0; j < width_; ++j) {
        keys_[g * width_ + j] = table.at(first_row[g], key_columns_[j]);
      }
    }
  }

  // CSR layout: prefix-sum the counts, then scatter row ids.
  offsets_.assign(num_groups_ + 1, 0);
  for (std::size_t g = 0; g < num_groups_; ++g) {
    offsets_[g + 1] = offsets_[g] + counts[g];
  }
  rows_.resize(n);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    rows_[cursor[group_of[i]]++] = static_cast<std::uint32_t>(i);
  }

  filter_ = MissFilter::Build(group_words_);
}

std::uint32_t TableIndex::InsertRow(const Table& table, std::size_t i,
                                    std::uint64_t word,
                                    std::vector<Value>* key_scratch,
                                    std::vector<std::uint32_t>* counts) {
  const bool exact = packing_.exact();
  Value* key = key_scratch->data();
  if (!exact) {
    // kHashed: a word collision between distinct keys must be resolved by
    // value, so the row's key is gathered up front.
    for (std::size_t j = 0; j < width_; ++j) {
      key[j] = table.at(i, key_columns_[j]);
    }
  }
  const std::uint64_t hash = HashWord(word);
  std::size_t h = static_cast<std::size_t>(hash) & mask_;
  const std::uint8_t tag = TagOfHash(hash);
  while (true) {
    const std::uint8_t t = tags_[h];
    if (t == 0) {
      // Fresh group. Exact packings defer the key gather to the ctor's
      // bulk fill — the build loop never touches the table's columns, so
      // repeated keys (the dictionary-dense common case) cost one tag+word
      // compare and nothing else.
      if (!exact) keys_.insert(keys_.end(), key, key + width_);
      group_words_.push_back(word);
      counts->push_back(0);
      tags_[h] = tag;
      slot_words_[h] = word;
      slots_[h] = static_cast<std::uint32_t>(++num_groups_);
      return static_cast<std::uint32_t>(num_groups_) - 1;
    }
    if (t == tag && slot_words_[h] == word) {
      const std::uint32_t g = slots_[h] - 1;
      if (exact) return g;
      const Value* stored = keys_.data() + g * width_;
      if (std::equal(key, key + width_, stored)) return g;
    }
    h = (h + 1) & mask_;
  }
}

void TableIndex::StreamingBuild(const Table& table,
                                std::vector<std::uint32_t>* group_of,
                                std::vector<std::uint32_t>* counts,
                                std::vector<std::uint32_t>* first_row) {
  // Fused single pass in probe-block units: pack a block of key words
  // (column-major, SIMD-dispatched), then insert its rows, so the words
  // never round-trip through an n-sized buffer.
  const std::size_t n = table.rows();
  const std::span<const int> cols(key_columns_.data(), width_);
  std::vector<Value> key(width_);
  std::uint64_t words[kProbeBlockRows];
  for (std::size_t begin = 0; begin < n; begin += kProbeBlockRows) {
    const std::size_t end =
        begin + kProbeBlockRows < n ? begin + kProbeBlockRows : n;
    PackProbeWords(packing_, table, cols, begin, end, words);
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t groups_before = num_groups_;
      const std::uint32_t g =
          InsertRow(table, i, words[i - begin], &key, counts);
      if (num_groups_ > groups_before) {
        first_row->push_back(static_cast<std::uint32_t>(i));
      }
      (*group_of)[i] = g;
      max_group_size_ = std::max(max_group_size_,
                                 static_cast<std::size_t>(++(*counts)[g]));
    }
  }
}

void TableIndex::RadixBuild(const Table& table,
                            std::vector<std::uint32_t>* group_of,
                            std::vector<std::uint32_t>* counts,
                            std::vector<std::uint32_t>* first_row) {
  built_with_radix_ = true;
  const std::size_t n = table.rows();
  const std::span<const int> cols(key_columns_.data(), width_);

  // Materialize all words and hashes, then partition rows by the top bits
  // of their slot index. Rows of one partition land in one contiguous span
  // of the slot arrays, so the insert pass walks the table partition by
  // partition with its slot span cache-resident instead of striding the
  // whole (out-of-cache) array. The scatter moves the words along with the
  // row ids, so the insert pass streams both sequentially — its only
  // scattered traffic is the partition's own slot span.
  std::vector<std::uint64_t> words(n);
  PackProbeWords(packing_, table, cols, 0, n, words.data());
  std::vector<std::uint64_t> hashes(n);
  HashWordsBatch(words.data(), n, hashes.data());

  const std::size_t capacity = mask_ + 1;
  const int cap_bits = std::countr_zero(capacity);
  const std::size_t slot_bytes =
      capacity * (sizeof(std::uint8_t) + sizeof(std::uint64_t) +
                  sizeof(std::uint32_t));
  const std::size_t target = std::max<std::size_t>(L2CacheBytes() / 2, 65536);
  int pbits = 1;  // at least two partitions: the path is only taken when
                  // the build is (or is forced) out of cache
  while ((slot_bytes >> pbits) > target && pbits < 10) ++pbits;
  if (pbits > cap_bits - 1) pbits = cap_bits - 1;
  const std::size_t parts = std::size_t{1} << pbits;
  const int part_shift = cap_bits - pbits;
  auto part_of = [&](std::uint64_t hash) {
    return (static_cast<std::size_t>(hash) & mask_) >> part_shift;
  };

  std::vector<std::uint32_t> part_counts(parts, 0);
  for (std::size_t i = 0; i < n; ++i) ++part_counts[part_of(hashes[i])];
  std::vector<std::uint32_t> part_start(parts, 0);
  for (std::size_t p = 1; p < parts; ++p) {
    part_start[p] = part_start[p - 1] + part_counts[p - 1];
  }
  std::vector<std::uint32_t> cursor = part_start;
  std::vector<std::uint64_t> part_words(n);
  const bool exact = packing_.exact();
  std::vector<std::uint32_t> order;
  if (!exact) order.resize(n);  // kHashed inserts gather keys by row id
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t c = cursor[part_of(hashes[i])]++;
    part_words[c] = words[i];
    if (!exact) order[c] = static_cast<std::uint32_t>(i);
  }

  // Insert in partition order. For exact packings the loop touches nothing
  // but the sequential word stream and the partition's (cache-resident)
  // slot span: keys are deferred to the ctor's bulk fill and group ids are
  // written to a sequential per-partition-position array, not scattered to
  // row order mid-loop (a random write stream would evict the slot span).
  std::vector<std::uint32_t> part_group(n);
  std::vector<Value> key(width_);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = exact ? std::size_t{0} : order[k];
    const std::uint32_t g = InsertRow(table, i, part_words[k], &key, counts);
    part_group[k] = g;
    max_group_size_ = std::max(max_group_size_,
                               static_cast<std::size_t>(++(*counts)[g]));
  }

  // Scatter group ids back to row order. The partition of row i is
  // recomputed from its hash, so the pass reads hashes and writes group_of
  // sequentially, consuming part_group through `parts` forward-moving
  // cursors (the kHashed path reuses the explicit order array instead).
  if (exact) {
    std::vector<std::uint32_t> take = part_start;
    for (std::size_t i = 0; i < n; ++i) {
      (*group_of)[i] = part_group[take[part_of(hashes[i])]++];
    }
  } else {
    for (std::size_t k = 0; k < n; ++k) (*group_of)[order[k]] = part_group[k];
  }

  // Canonicalize: renumber groups by first-occurrence row order, so the
  // group structure (ids, key order, CSR layout) is byte-identical to the
  // streaming build's. Only the physical slot placement may differ, and
  // that is invisible through the API. One row-order scan settles the
  // mapping, the remapped group_of, and each group's first row at once:
  // all rows of a group share a word — hence a hash, hence a partition —
  // and the scatter is stable, so the first row mentioning a group here is
  // also the first row its partition inserted.
  std::vector<std::uint32_t> old_to_new(num_groups_, kNoGroup);
  first_row->resize(num_groups_);
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t m = old_to_new[(*group_of)[i]];
    if (m == kNoGroup) {
      m = next;
      old_to_new[(*group_of)[i]] = m;
      (*first_row)[m] = static_cast<std::uint32_t>(i);
      ++next;
    }
    (*group_of)[i] = m;
  }

  std::vector<std::uint64_t> new_words(num_groups_);
  std::vector<std::uint32_t> new_counts(num_groups_);
  for (std::uint32_t old = 0; old < num_groups_; ++old) {
    const std::uint32_t g = old_to_new[old];
    new_words[g] = group_words_[old];
    new_counts[g] = (*counts)[old];
  }
  group_words_ = std::move(new_words);
  *counts = std::move(new_counts);
  if (!exact) {
    std::vector<Value> new_keys(keys_.size());
    for (std::uint32_t old = 0; old < num_groups_; ++old) {
      std::copy(keys_.begin() + old * width_,
                keys_.begin() + (old + 1) * width_,
                new_keys.begin() + old_to_new[old] * width_);
    }
    keys_ = std::move(new_keys);
  }
  for (std::size_t h = 0; h < capacity; ++h) {
    if (tags_[h] != 0) slots_[h] = old_to_new[slots_[h] - 1] + 1;
  }
}

std::uint32_t TableIndex::FindGroupWord(std::uint64_t word) const {
  return FindGroupWordHashed(word, HashWord(word));
}

void TableIndex::ResolveProbeWords(const std::uint64_t* words, std::size_t n,
                                   const std::uint8_t* skip,
                                   std::uint32_t* groups) const {
  if (skip != nullptr) {
    // Skipped rows are never emitted; give them their kNoGroup up front.
    for (std::size_t i = 0; i < n; ++i) {
      if (skip[i] != 0) groups[i] = kNoGroup;
    }
  }
  ResolveWordsFused(words, n, skip,
                    [groups](std::size_t i, std::uint32_t g) {
                      groups[i] = g;
                    });
}

std::span<const std::uint32_t> TableIndex::Lookup(
    std::span<const Value> key) const {
  SHARPCQ_DCHECK(key.size() == width_);
  const std::uint64_t word = packing_.Pack(key);
  if (packing_.exact()) return group_rows_or_empty(FindGroupWord(word));
  return group_rows_or_empty(
      FindGroupVerify(word, [&key](std::size_t j) { return key[j]; }));
}

void PackProbeWords(const KeyPacking& packing, const Table& probe,
                    std::span<const int> cols, std::size_t begin,
                    std::size_t end, std::uint64_t* out) {
  const std::size_t n = end - begin;
  switch (packing.mode) {
    case KeyPacking::Mode::kSingle: {
      if (cols.empty()) {
        std::fill(out, out + n, std::uint64_t{0});
        return;
      }
      std::span<const Value> col = probe.Column(cols[0]);
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::uint64_t>(col[begin + i]);
      }
      return;
    }
    case KeyPacking::Mode::kDense: {
      // Each column contributes its digit through the dispatched SIMD
      // primitive: out-of-range probes poison the word (bit 63); in-range
      // digits only ever touch bits < 62, so a poisoned word stays >= 2^63
      // and can never equal a stored word.
      std::fill(out, out + n, std::uint64_t{0});
      for (std::size_t j = 0; j < cols.size(); ++j) {
        std::span<const Value> col = probe.Column(cols[j]);
        PackDenseDigits(col.data() + begin, n, packing.base[j],
                        packing.range[j], packing.shift[j], out);
      }
      return;
    }
    case KeyPacking::Mode::kHashed: {
      std::fill(out, out + n, 0x9e3779b97f4a7c15ULL);
      for (std::size_t j = 0; j < cols.size(); ++j) {
        std::span<const Value> col = probe.Column(cols[j]);
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = HashMix(out[i] ^ static_cast<std::uint64_t>(col[begin + i]));
        }
      }
      int bits = hashed_word_bits.load(std::memory_order_relaxed);
      if (bits > 0 && bits < 64) {
        const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
        for (std::size_t i = 0; i < n; ++i) out[i] &= mask;
      }
      return;
    }
  }
}

std::shared_ptr<const TableIndex> Table::IndexOn(
    std::vector<int> key_columns) const {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = index_cache_.find(key_columns);
    if (it != index_cache_.end()) return it->second;
  }
  // Build outside the lock so an O(n) build never blocks cache hits on
  // other key sets. Two threads missing on the same key both build; the
  // double-checked insert keeps the first and the loser adopts it.
  static Counter& builds_metric =
      MetricsRegistry::Instance().GetCounter("sharpcq_index_builds_total");
  builds_metric.Add(1);
  auto index = std::make_shared<const TableIndex>(*this, key_columns);
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto [it, inserted] =
      index_cache_.emplace(std::move(key_columns), std::move(index));
  return it->second;
}

bool Table::ContainsRow(std::span<const Value> row) const {
  SHARPCQ_CHECK(static_cast<int>(row.size()) == arity());
  if (arity() == 0) return rows_ > 0;
  std::vector<int> all(cols_.size());
  for (std::size_t c = 0; c < all.size(); ++c) all[c] = static_cast<int>(c);
  return !IndexOn(std::move(all))->Lookup(row).empty();
}

std::size_t Table::CachedIndexCount() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return index_cache_.size();
}

std::shared_ptr<const TableStats> Table::Stats() const {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (stats_ != nullptr) return stats_;
  }
  // Compute outside the lock (the streaming pass goes through IndexOn,
  // which takes cache_mu_ itself). Concurrent first calls both compute
  // equal stats; the first insert wins and the loser adopts it.
  auto computed = std::make_shared<const TableStats>(ComputeTableStats(*this));
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (stats_ == nullptr) stats_ = std::move(computed);
  return stats_;
}

std::shared_ptr<const TableStats> Table::StatsIfPresent() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return stats_;
}

void Table::InstallStats(std::shared_ptr<const TableStats> stats) const {
  if (stats == nullptr) return;
  SHARPCQ_CHECK(stats->rows == rows_ &&
                stats->columns.size() == cols_.size());
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (stats_ == nullptr) stats_ = std::move(stats);
}

std::shared_ptr<const Table> Table::Empty(int arity) {
  SHARPCQ_CHECK(arity >= 0);
  return std::shared_ptr<const Table>(new Table(
      std::vector<std::vector<Value>>(static_cast<std::size_t>(arity)), 0));
}

std::shared_ptr<const Table> Table::FromExternal(
    std::vector<std::span<const Value>> cols, std::size_t rows,
    std::shared_ptr<const void> arena) {
  for (const auto& col : cols) SHARPCQ_CHECK(col.size() == rows);
  return std::shared_ptr<const Table>(
      new Table(std::move(cols), rows, std::move(arena)));
}

std::shared_ptr<const Table> Table::FromColumns(
    std::vector<std::vector<Value>> cols, std::size_t rows) {
  for (const auto& col : cols) SHARPCQ_CHECK(col.size() == rows);
  return std::shared_ptr<const Table>(new Table(std::move(cols), rows));
}

std::shared_ptr<const Table> Table::Gather(
    const Table& src, std::span<const std::uint32_t> row_ids) {
  ChargeExecMemory(static_cast<std::uint64_t>(row_ids.size()) *
                   static_cast<std::uint64_t>(src.arity()) * sizeof(Value));
  std::vector<std::vector<Value>> cols(
      static_cast<std::size_t>(src.arity()));
  for (std::size_t c = 0; c < cols.size(); ++c) {
    std::span<const Value> in = src.Column(static_cast<int>(c));
    std::vector<Value>& out = cols[c];
    out.reserve(row_ids.size());
    for (std::uint32_t id : row_ids) out.push_back(in[id]);
  }
  return std::shared_ptr<const Table>(
      new Table(std::move(cols), row_ids.size()));
}

std::string Table::DebugString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < rows_; ++i) {
    if (i > 0) out += ", ";
    out += "(";
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      if (c > 0) out += ",";
      out += std::to_string(cols_[c][i]);
    }
    out += ")";
  }
  out += "}";
  return out;
}

std::shared_ptr<const Table> TableBuilder::Build(bool known_distinct) && {
  if (cols_.empty()) {
    // Arity 0: a set holds at most the empty row.
    std::size_t n = known_distinct ? rows_ : (rows_ > 0 ? 1 : 0);
    return std::shared_ptr<const Table>(new Table({}, n));
  }
  if (known_distinct || rows_ <= 1) {
    return std::shared_ptr<const Table>(
        new Table(std::move(cols_), rows_));
  }
  // Hash dedup keeping first occurrences in order, comparing rows in place
  // (no keys are materialized): open addressing over row ids, fronted by a
  // 1-byte tag vector so only tag-matching slots pay the column-wise row
  // compare. Both arrays are sized from the reservation hint when one was
  // given, so a builder that reserved its input size up front allocates
  // the hash exactly once.
  const std::size_t capacity =
      SlotCapacityFor(std::max(rows_, reserved_rows_));
  const std::size_t mask = capacity - 1;
  ChargeExecMemory(static_cast<std::uint64_t>(capacity) * 5 +
                   static_cast<std::uint64_t>(rows_) * 4);
  std::vector<std::uint8_t> tags(capacity, 0);
  std::vector<std::uint32_t> slots(capacity, 0);
  std::vector<std::uint32_t> keep;
  keep.reserve(rows_);
  const std::size_t width = cols_.size();
  for (std::size_t i = 0; i < rows_; ++i) {
    std::uint64_t full = 0x9e3779b97f4a7c15ULL;
    for (std::size_t c = 0; c < width; ++c) {
      full = HashMix(full ^ static_cast<std::uint64_t>(cols_[c][i]));
    }
    std::size_t h = static_cast<std::size_t>(full) & mask;
    const std::uint8_t tag = static_cast<std::uint8_t>(full >> 56) | 0x80;
    bool duplicate = false;
    while (true) {
      const std::uint8_t t = tags[h];
      if (t == 0) {
        tags[h] = tag;
        slots[h] = static_cast<std::uint32_t>(i + 1);
        keep.push_back(static_cast<std::uint32_t>(i));
        break;
      }
      if (t == tag) {
        const std::size_t o = slots[h] - 1;
        duplicate = true;
        for (std::size_t c = 0; c < width; ++c) {
          if (cols_[c][i] != cols_[c][o]) {
            duplicate = false;
            break;
          }
        }
        if (duplicate) break;
      }
      h = (h + 1) & mask;
    }
  }
  if (keep.size() == rows_) {
    return std::shared_ptr<const Table>(
        new Table(std::move(cols_), rows_));
  }
  Table staged(std::move(cols_), rows_);
  return Table::Gather(staged, keep);  // keep is ascending: order preserved
}

}  // namespace sharpcq
