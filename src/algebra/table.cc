#include "algebra/table.h"

#include <algorithm>
#include <atomic>
#include <bit>

#include "util/hash.h"

namespace sharpcq {

namespace {

std::size_t SlotCapacityFor(std::size_t rows) {
  std::size_t capacity = 16;
  while (capacity < rows * 2 + 2) capacity <<= 1;
  return capacity;
}

// Test-only narrowing of kHashed words (see SetHashedWordBitsForTesting).
std::atomic<int> hashed_word_bits{0};

std::uint64_t HashedWordOf(std::span<const Value> key) {
  std::uint64_t word = 0x9e3779b97f4a7c15ULL;
  for (Value v : key) {
    word = HashMix(word ^ static_cast<std::uint64_t>(v));
  }
  int bits = hashed_word_bits.load(std::memory_order_relaxed);
  if (bits > 0 && bits < 64) word &= (std::uint64_t{1} << bits) - 1;
  return word;
}

// Chooses the packing for `key_columns` of `table`: single-column keys pass
// the value through; multi-column keys bit-pack when the per-column ranges
// fit 62 bits (leaving the poison bit and one headroom bit untouched), and
// fall back to the collision-checked hash word otherwise.
KeyPacking ChoosePacking(const Table& table,
                         const std::vector<int>& key_columns) {
  KeyPacking packing;
  if (key_columns.size() <= 1) {
    packing.mode = KeyPacking::Mode::kSingle;
    return packing;
  }
  if (table.rows() == 0) {
    // No rows: every probe misses; the trivial dense packing (all ranges 0)
    // is exact and never matches anything in-range but absent.
    packing.mode = KeyPacking::Mode::kDense;
    packing.base.assign(key_columns.size(), 0);
    packing.range.assign(key_columns.size(), 0);
    packing.shift.assign(key_columns.size(), 0);
    return packing;
  }
  packing.base.reserve(key_columns.size());
  packing.range.reserve(key_columns.size());
  packing.shift.reserve(key_columns.size());
  int total_bits = 0;
  for (int c : key_columns) {
    std::span<const Value> col = table.Column(c);
    Value lo = col[0];
    Value hi = col[0];
    for (Value v : col) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    // Unsigned distance: correct for any int64 pair (two's complement).
    std::uint64_t range =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    packing.base.push_back(static_cast<std::uint64_t>(lo));
    packing.range.push_back(range);
    packing.shift.push_back(total_bits);
    total_bits += std::bit_width(range);
    if (total_bits > 62) {
      packing.mode = KeyPacking::Mode::kHashed;
      packing.base.clear();
      packing.range.clear();
      packing.shift.clear();
      return packing;
    }
  }
  packing.mode = KeyPacking::Mode::kDense;
  return packing;
}

}  // namespace

std::uint64_t KeyPacking::Pack(std::span<const Value> key) const {
  switch (mode) {
    case Mode::kSingle:
      return key.empty() ? 0 : static_cast<std::uint64_t>(key[0]);
    case Mode::kDense: {
      std::uint64_t word = 0;
      for (std::size_t j = 0; j < key.size(); ++j) {
        std::uint64_t diff =
            static_cast<std::uint64_t>(key[j]) - base[j];
        if (diff > range[j]) return kPoison;  // outside the packed box
        word |= diff << shift[j];
      }
      return word;
    }
    case Mode::kHashed:
      return HashedWordOf(key);
  }
  return 0;
}

void TableIndex::SetHashedWordBitsForTesting(int bits) {
  hashed_word_bits.store(bits, std::memory_order_relaxed);
}

std::uint64_t TableIndex::HashWord(std::uint64_t word) {
  return HashMix(word);
}

TableIndex::TableIndex(const Table& table, std::vector<int> key_columns)
    : key_columns_(std::move(key_columns)), width_(key_columns_.size()) {
  for (int c : key_columns_) SHARPCQ_CHECK(c >= 0 && c < table.arity());
  packing_ = ChoosePacking(table, key_columns_);
  const std::size_t n = table.rows();
  const std::size_t capacity = SlotCapacityFor(n);
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;

  // Pack every row's key into its word, column-major (each key column is
  // streamed once). Build-side dense keys are inside the box by
  // construction, so no word is poisoned.
  std::vector<std::uint64_t> words(n);
  if (n > 0) {
    PackProbeWords(packing_, table,
                   std::span<const int>(key_columns_.data(), width_),
                   /*begin=*/0, /*end=*/n, words.data());
  }

  // Pass 1: assign every row a group id, appending each fresh key to the
  // flat key buffer. group_of and the per-group counts are the only
  // scratch. For exact packings the word alone decides equality, so the
  // key values are gathered only when a fresh group is inserted — repeated
  // keys (the dictionary-dense common case) cost one word compare, not a
  // width_-wide row gather.
  const bool exact = packing_.exact();
  std::vector<std::uint32_t> group_of(n);
  std::vector<std::uint32_t> counts;
  std::vector<Value> key(width_);
  for (std::size_t i = 0; i < n; ++i) {
    if (!exact) {
      for (std::size_t j = 0; j < width_; ++j) {
        key[j] = table.at(i, key_columns_[j]);
      }
    }
    std::size_t slot = FindSlotForInsert(words[i], key.data());
    if (slots_[slot] == 0) {
      if (exact) {
        for (std::size_t j = 0; j < width_; ++j) {
          key[j] = table.at(i, key_columns_[j]);
        }
      }
      keys_.insert(keys_.end(), key.begin(), key.end());
      group_words_.push_back(words[i]);
      counts.push_back(0);
      slots_[slot] = static_cast<std::uint32_t>(++num_groups_);
    }
    std::uint32_t g = slots_[slot] - 1;
    group_of[i] = g;
    max_group_size_ = std::max(max_group_size_,
                               static_cast<std::size_t>(++counts[g]));
  }

  // Pass 2: CSR layout — prefix-sum the counts, then scatter row ids.
  offsets_.assign(num_groups_ + 1, 0);
  for (std::size_t g = 0; g < num_groups_; ++g) {
    offsets_[g + 1] = offsets_[g] + counts[g];
  }
  rows_.resize(n);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    rows_[cursor[group_of[i]]++] = static_cast<std::uint32_t>(i);
  }
}

std::size_t TableIndex::FindSlotForInsert(std::uint64_t word,
                                          const Value* key) const {
  std::size_t h = static_cast<std::size_t>(HashWord(word)) & mask_;
  const bool exact = packing_.exact();
  while (true) {
    std::uint32_t g = slots_[h];
    if (g == 0) return h;
    if (group_words_[g - 1] == word) {
      if (exact) return h;
      // kHashed: a word collision between distinct keys occupies two
      // groups; compare the stored values to find ours.
      const Value* stored = keys_.data() + (g - 1) * width_;
      if (std::equal(key, key + width_, stored)) return h;
    }
    h = (h + 1) & mask_;
  }
}

std::uint32_t TableIndex::FindGroupWord(std::uint64_t word) const {
  std::size_t h = static_cast<std::size_t>(HashWord(word)) & mask_;
  while (true) {
    std::uint32_t g = slots_[h];
    if (g == 0) return kNoGroup;
    if (group_words_[g - 1] == word) return g - 1;
    h = (h + 1) & mask_;
  }
}

std::span<const std::uint32_t> TableIndex::Lookup(
    std::span<const Value> key) const {
  SHARPCQ_DCHECK(key.size() == width_);
  const std::uint64_t word = packing_.Pack(key);
  if (packing_.exact()) return group_rows_or_empty(FindGroupWord(word));
  return group_rows_or_empty(
      FindGroupVerify(word, [&key](std::size_t j) { return key[j]; }));
}

void PackProbeWords(const KeyPacking& packing, const Table& probe,
                    std::span<const int> cols, std::size_t begin,
                    std::size_t end, std::uint64_t* out) {
  const std::size_t n = end - begin;
  switch (packing.mode) {
    case KeyPacking::Mode::kSingle: {
      if (cols.empty()) {
        std::fill(out, out + n, std::uint64_t{0});
        return;
      }
      std::span<const Value> col = probe.Column(cols[0]);
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::uint64_t>(col[begin + i]);
      }
      return;
    }
    case KeyPacking::Mode::kDense: {
      std::fill(out, out + n, std::uint64_t{0});
      for (std::size_t j = 0; j < cols.size(); ++j) {
        std::span<const Value> col = probe.Column(cols[j]);
        const std::uint64_t base = packing.base[j];
        const std::uint64_t range = packing.range[j];
        const int shift = packing.shift[j];
        for (std::size_t i = 0; i < n; ++i) {
          std::uint64_t diff =
              static_cast<std::uint64_t>(col[begin + i]) - base;
          // Out-of-range probes poison the word (bit 63); in-range digits
          // only ever touch bits < 62, so a poisoned word stays >= 2^63
          // and can never equal a stored word.
          out[i] |= diff <= range ? diff << shift : KeyPacking::kPoison;
        }
      }
      return;
    }
    case KeyPacking::Mode::kHashed: {
      std::fill(out, out + n, 0x9e3779b97f4a7c15ULL);
      for (std::size_t j = 0; j < cols.size(); ++j) {
        std::span<const Value> col = probe.Column(cols[j]);
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = HashMix(out[i] ^ static_cast<std::uint64_t>(col[begin + i]));
        }
      }
      int bits = hashed_word_bits.load(std::memory_order_relaxed);
      if (bits > 0 && bits < 64) {
        const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
        for (std::size_t i = 0; i < n; ++i) out[i] &= mask;
      }
      return;
    }
  }
}

std::shared_ptr<const TableIndex> Table::IndexOn(
    std::vector<int> key_columns) const {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = index_cache_.find(key_columns);
    if (it != index_cache_.end()) return it->second;
  }
  // Build outside the lock so an O(n) build never blocks cache hits on
  // other key sets. Two threads missing on the same key both build; the
  // double-checked insert keeps the first and the loser adopts it.
  auto index = std::make_shared<const TableIndex>(*this, key_columns);
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto [it, inserted] =
      index_cache_.emplace(std::move(key_columns), std::move(index));
  return it->second;
}

bool Table::ContainsRow(std::span<const Value> row) const {
  SHARPCQ_CHECK(static_cast<int>(row.size()) == arity());
  if (arity() == 0) return rows_ > 0;
  std::vector<int> all(cols_.size());
  for (std::size_t c = 0; c < all.size(); ++c) all[c] = static_cast<int>(c);
  return !IndexOn(std::move(all))->Lookup(row).empty();
}

std::size_t Table::CachedIndexCount() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return index_cache_.size();
}

std::shared_ptr<const Table> Table::Empty(int arity) {
  SHARPCQ_CHECK(arity >= 0);
  return std::shared_ptr<const Table>(new Table(
      std::vector<std::vector<Value>>(static_cast<std::size_t>(arity)), 0));
}

std::shared_ptr<const Table> Table::FromExternal(
    std::vector<std::span<const Value>> cols, std::size_t rows,
    std::shared_ptr<const void> arena) {
  for (const auto& col : cols) SHARPCQ_CHECK(col.size() == rows);
  return std::shared_ptr<const Table>(
      new Table(std::move(cols), rows, std::move(arena)));
}

std::shared_ptr<const Table> Table::FromColumns(
    std::vector<std::vector<Value>> cols, std::size_t rows) {
  for (const auto& col : cols) SHARPCQ_CHECK(col.size() == rows);
  return std::shared_ptr<const Table>(new Table(std::move(cols), rows));
}

std::shared_ptr<const Table> Table::Gather(
    const Table& src, std::span<const std::uint32_t> row_ids) {
  std::vector<std::vector<Value>> cols(
      static_cast<std::size_t>(src.arity()));
  for (std::size_t c = 0; c < cols.size(); ++c) {
    std::span<const Value> in = src.Column(static_cast<int>(c));
    std::vector<Value>& out = cols[c];
    out.reserve(row_ids.size());
    for (std::uint32_t id : row_ids) out.push_back(in[id]);
  }
  return std::shared_ptr<const Table>(
      new Table(std::move(cols), row_ids.size()));
}

std::string Table::DebugString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < rows_; ++i) {
    if (i > 0) out += ", ";
    out += "(";
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      if (c > 0) out += ",";
      out += std::to_string(cols_[c][i]);
    }
    out += ")";
  }
  out += "}";
  return out;
}

std::shared_ptr<const Table> TableBuilder::Build(bool known_distinct) && {
  if (cols_.empty()) {
    // Arity 0: a set holds at most the empty row.
    std::size_t n = known_distinct ? rows_ : (rows_ > 0 ? 1 : 0);
    return std::shared_ptr<const Table>(new Table({}, n));
  }
  if (known_distinct || rows_ <= 1) {
    return std::shared_ptr<const Table>(
        new Table(std::move(cols_), rows_));
  }
  // Hash dedup keeping first occurrences in order, comparing rows in place
  // (no keys are materialized): open addressing over row ids. The table is
  // sized from the reservation hint when one was given, so a builder that
  // reserved its input size up front allocates the hash exactly once.
  const std::size_t capacity =
      SlotCapacityFor(std::max(rows_, reserved_rows_));
  const std::size_t mask = capacity - 1;
  std::vector<std::uint32_t> slots(capacity, 0);
  std::vector<std::uint32_t> keep;
  keep.reserve(rows_);
  const std::size_t width = cols_.size();
  for (std::size_t i = 0; i < rows_; ++i) {
    std::size_t h = 0x9e3779b9u;
    for (std::size_t c = 0; c < width; ++c) {
      h = HashCombine(h, static_cast<std::size_t>(cols_[c][i]));
    }
    h &= mask;
    bool duplicate = false;
    while (true) {
      std::uint32_t other = slots[h];
      if (other == 0) {
        slots[h] = static_cast<std::uint32_t>(i + 1);
        keep.push_back(static_cast<std::uint32_t>(i));
        break;
      }
      const std::size_t o = other - 1;
      duplicate = true;
      for (std::size_t c = 0; c < width; ++c) {
        if (cols_[c][i] != cols_[c][o]) {
          duplicate = false;
          break;
        }
      }
      if (duplicate) break;
      h = (h + 1) & mask;
    }
  }
  if (keep.size() == rows_) {
    return std::shared_ptr<const Table>(
        new Table(std::move(cols_), rows_));
  }
  Table staged(std::move(cols_), rows_);
  return Table::Gather(staged, keep);  // keep is ascending: order preserved
}

}  // namespace sharpcq
