#ifndef SHARPCQ_ALGEBRA_TABLE_H_
#define SHARPCQ_ALGEBRA_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "algebra/exec_policy.h"
#include "algebra/miss_filter.h"
#include "algebra/simd.h"
#include "data/value.h"
#include "util/check.h"
#include "util/cpu.h"

namespace sharpcq {

class Table;
struct TableStats;  // algebra/stats.h

// How a TableIndex packs a multi-column key into one uint64 word. Every
// probe compares one machine word per row instead of rebuilding and
// re-hashing a std::vector<Value> key; the mode decides what a word match
// means:
//
//   kSingle  width-1 keys: word = value, bijective. Word equality is key
//            equality. (Width-0 keys also use this mode: every word is 0.)
//   kDense   multi-column keys whose per-column value ranges bit-pack into
//            <= 62 bits (the dictionary-dense case: interned values are
//            small dense integers). word = sum_j (v_j - base_j) << shift_j,
//            injective over the in-range box; a probe value outside its
//            column's range sets the poison bit (bit 63), which no stored
//            word carries, so the lookup misses without special-casing.
//            Word equality is key equality.
//   kHashed  fallback for wide value ranges: word = 64-bit hash chain of
//            the key. Word equality is necessary but not sufficient — both
//            the index build and every probe re-verify the actual column
//            values on word match (collision-checked).
struct KeyPacking {
  enum class Mode : std::uint8_t { kSingle, kDense, kHashed };
  Mode mode = Mode::kSingle;
  // kDense only, one entry per key column.
  std::vector<std::uint64_t> base;   // two's-complement column minimum
  std::vector<std::uint64_t> range;  // max - min (unsigned distance)
  std::vector<int> shift;            // bit position of the column's digit

  // Word equality implies key equality (no value re-verification needed).
  bool exact() const { return mode != Mode::kHashed; }

  // The word of `key` under this packing. Dense keys outside the packed box
  // come back with the poison bit set and match nothing.
  std::uint64_t Pack(std::span<const Value> key) const;

  static constexpr std::uint64_t kPoison = std::uint64_t{1} << 63;
};

// Hash index over selected key columns of a Table: key -> row ids, plus the
// group structure (one group per distinct key) that counted projection and
// the PS13 initial partition read directly. Immutable after construction.
//
// Storage is flat and gather-free on the probe path: the open-addressing
// slot array carries, per slot, a 1-byte tag (top byte of the slot hash,
// high bit set; 0 = empty), the full packed key word, and the group id —
// so the compare loop reads the tag and the word straight out of the slot
// arrays instead of chasing the group id into a side table. Group keys
// live in one contiguous buffer and the row ids of all groups in one CSR
// array, so building the index performs no per-group allocations.
//
// Every index also carries a MissFilter over its distinct key hashes
// (algebra/miss_filter.h); the block probe driver consults it before the
// slot walk, so miss-heavy probe loops skip the slot arrays entirely.
//
// Builds over RadixRowThreshold() rows (cache-derived, override below)
// radix-partition their rows by slot-index prefix first, so each
// partition's inserts touch an L2-resident span of the slot arrays instead
// of striding the whole table. Group numbering is canonical either way:
// groups are numbered by first occurrence in row order, so the radix and
// streaming builds produce identical group structure (the differential
// suite asserts this).
class TableIndex {
 public:
  TableIndex(const Table& table, std::vector<int> key_columns);

  // Row ids whose key columns equal `key` (empty if none).
  std::span<const std::uint32_t> Lookup(std::span<const Value> key) const;

  // Single-column fast path: rows whose key equals `key`, without building
  // a one-element span at the call site. Requires key_columns().size() == 1.
  std::span<const std::uint32_t> Lookup(Value key) const {
    SHARPCQ_DCHECK(width_ == 1);
    return group_rows_or_empty(
        FindGroupWord(static_cast<std::uint64_t>(key)));
  }

  const std::vector<int>& key_columns() const { return key_columns_; }
  const KeyPacking& packing() const { return packing_; }

  // Group id sentinel for "no group with this key".
  static constexpr std::uint32_t kNoGroup = 0xFFFFFFFFu;

  // Group whose packed word is `word`, or kNoGroup. Exact packings only —
  // for kHashed packings a word match does not pin down the key, so callers
  // must use FindGroupVerify with the probe row's actual values. The raw
  // slot walk: no miss-filter consult (the probe drivers layer that on).
  std::uint32_t FindGroupWord(std::uint64_t word) const;

  // Group whose packed word is `word` AND whose key values equal
  // key_at(0..width-1) — the collision-checked probe for kHashed packings
  // (also correct, just redundant, for exact ones).
  template <typename KeyAt>
  std::uint32_t FindGroupVerify(std::uint64_t word, KeyAt&& key_at) const {
    return FindGroupVerifyHashed(word, HashWord(word),
                                 static_cast<KeyAt&&>(key_at));
  }

  // FindGroupVerify fronted by the miss filter (when `use_filter`):
  // definite misses return kNoGroup without touching the slots and bump
  // *filter_hits. The probe driver's kHashed path.
  template <typename KeyAt>
  std::uint32_t FindGroupVerifyFiltered(std::uint64_t word, bool use_filter,
                                        std::uint64_t* filter_hits,
                                        KeyAt&& key_at) const {
    const std::uint64_t hash = HashWord(word);
    if (use_filter && !filter_.MightContain(hash)) {
      ++*filter_hits;
      return kNoGroup;
    }
    return FindGroupVerifyHashed(word, hash, static_cast<KeyAt&&>(key_at));
  }

  // Rows of the group matching a pre-packed probe word (see
  // PackProbeWords); empty span on miss. Exact packings only.
  std::span<const std::uint32_t> LookupWord(std::uint64_t word) const {
    return group_rows_or_empty(FindGroupWord(word));
  }

  // The fused block probe driver (exact packings only): batch-hashes the
  // words (SIMD when available), consults the miss filter with an adaptive
  // bypass, prefetches surviving rows' slot lines when the slot arrays are
  // bigger than L2, walks the slots, and calls emit(i, group) inline for
  // every row i in [0, n) with skip[i] == 0 (skip may be null: no row
  // skipped). Filter use and prefetching are compile-time specialized per
  // block, so a hit-heavy probe runs the same tight loop it would without
  // a filter. The single integration point for the vectorized probe path —
  // every probe driver below lands here.
  template <typename Emit>
  void ResolveWordsFused(const std::uint64_t* words, std::size_t n,
                         const std::uint8_t* skip, Emit&& emit) const;

  // Array form of ResolveWordsFused for callers that want materialized
  // group ids: groups[i] = matching group or kNoGroup (skipped rows come
  // back kNoGroup).
  void ResolveProbeWords(const std::uint64_t* words, std::size_t n,
                         const std::uint8_t* skip,
                         std::uint32_t* groups) const;

  // Group view: one entry per distinct key, in first-occurrence row order.
  std::size_t num_groups() const { return num_groups_; }
  std::span<const Value> group_key(std::size_t g) const {
    return {keys_.data() + g * width_, width_};
  }
  std::span<const std::uint32_t> group_rows(std::size_t g) const {
    return {rows_.data() + offsets_[g],
            static_cast<std::size_t>(offsets_[g + 1] - offsets_[g])};
  }
  // Packed key word of each group, parallel to the group order.
  std::span<const std::uint64_t> group_words() const { return group_words_; }

  // Cardinality of the largest group (0 for an empty table): the degree of
  // the indexed relation w.r.t. the key columns (Definition 6.1).
  std::size_t max_group_size() const { return max_group_size_; }

  // The miss filter over this index's distinct key hashes (diagnostics).
  const MissFilter& miss_filter() const { return filter_; }
  // Filter verdict for a packed probe word (tests construct deliberate
  // false positives with this).
  bool FilterMightContainWord(std::uint64_t word) const {
    return filter_.MightContain(HashWord(word));
  }

  // Whether this index was built through the radix-partitioned path.
  bool built_with_radix() const { return built_with_radix_; }

  // Builds at or above this many rows radix-partition. Derived from the
  // cache hierarchy: engages where the slot arrays overflow the last-level
  // cache (the regime where partitioning beats streaming); each partition's
  // slot-array span is then sized to stay L2-resident.
  static std::size_t RadixRowThreshold();
  // Test hook: overrides the threshold (0 restores the cache-derived
  // value). Not for production use.
  static void SetRadixRowThresholdForTesting(std::size_t rows);

  // Test hook: masks kHashed words to the low `bits` bits (0 restores full
  // width) so word collisions between distinct keys become constructible.
  // The mask applies to hashed-word computation everywhere — index builds
  // AND probe-time packing — so set it before building any kHashed index
  // you will probe, and keep it unchanged until those indexes are dropped
  // (probing a full-width index with narrowed words misses). Not for
  // production use.
  static void SetHashedWordBitsForTesting(int bits);

 private:
  static std::uint64_t HashWord(std::uint64_t word);

  // Slot tag of a hash: the top byte with the high bit forced, so no
  // occupied slot's tag is 0 (the empty marker). Disjoint from the bits
  // driving the slot index (low) and the miss filter (20..45).
  static std::uint8_t TagOfHash(std::uint64_t hash) {
    return static_cast<std::uint8_t>(hash >> 56) | 0x80;
  }

  // The raw slot walk for a word whose hash is already known.
  std::uint32_t FindGroupWordHashed(std::uint64_t word,
                                    std::uint64_t hash) const {
    std::size_t h = static_cast<std::size_t>(hash) & mask_;
    const std::uint8_t tag = TagOfHash(hash);
    while (true) {
      const std::uint8_t t = tags_[h];
      if (t == 0) return kNoGroup;
      if (t == tag && slot_words_[h] == word) return slots_[h] - 1;
      h = (h + 1) & mask_;
    }
  }

  template <typename KeyAt>
  std::uint32_t FindGroupVerifyHashed(std::uint64_t word, std::uint64_t hash,
                                      KeyAt&& key_at) const {
    std::size_t h = static_cast<std::size_t>(hash) & mask_;
    const std::uint8_t tag = TagOfHash(hash);
    while (true) {
      const std::uint8_t t = tags_[h];
      if (t == 0) return kNoGroup;
      if (t == tag && slot_words_[h] == word) {
        const std::uint32_t g = slots_[h] - 1;
        const Value* stored = keys_.data() + g * width_;
        bool equal = true;
        for (std::size_t j = 0; j < width_; ++j) {
          if (stored[j] != key_at(j)) {
            equal = false;
            break;
          }
        }
        if (equal) return g;
      }
      h = (h + 1) & mask_;
    }
  }

  std::span<const std::uint32_t> group_rows_or_empty(std::uint32_t g) const {
    if (g == kNoGroup) return {};
    return group_rows(g);
  }

  // One probe block of ResolveWordsFused, with the filter decision and the
  // prefetch decision baked in at compile time (defined after the class).
  template <bool kUseFilter, bool kPrefetch, typename Emit>
  void ResolveBlockFused(const std::uint64_t* words, std::size_t begin,
                         std::size_t len, const std::uint64_t* hashes,
                         const std::uint8_t* might, const std::uint8_t* skip,
                         Emit&& emit, std::uint64_t* filter_hits,
                         std::uint64_t* filter_passes) const;

  // Inserts row `i` (packed word `word`, key values via `table` when a
  // fresh group must be gathered or a kHashed collision disambiguated)
  // into the slot arrays; returns the row's group id.
  std::uint32_t InsertRow(const Table& table, std::size_t i,
                          std::uint64_t word, std::vector<Value>* key_scratch,
                          std::vector<std::uint32_t>* counts);

  // Build paths: one streaming pass of fused pack+insert blocks, or the
  // radix-partitioned variant for out-of-cache builds. Both leave
  // group_of/counts describing a first-occurrence group numbering and
  // first_row holding each group's first row id (ascending), from which
  // the ctor bulk-gathers the key buffer for exact packings.
  void StreamingBuild(const Table& table, std::vector<std::uint32_t>* group_of,
                      std::vector<std::uint32_t>* counts,
                      std::vector<std::uint32_t>* first_row);
  void RadixBuild(const Table& table, std::vector<std::uint32_t>* group_of,
                  std::vector<std::uint32_t>* counts,
                  std::vector<std::uint32_t>* first_row);

  std::vector<int> key_columns_;
  std::size_t width_ = 0;        // = key_columns_.size()
  KeyPacking packing_;
  std::size_t num_groups_ = 0;
  std::vector<Value> keys_;      // group g's key at [g*width_, (g+1)*width_)
  std::vector<std::uint64_t> group_words_;  // group g's packed word
  // Slot arrays, all `capacity` long (open addressing, linear probing).
  // Only the tag vector is zero-initialized: slot_words_/slots_ entries are
  // read strictly after their slot's tag is set, so those 12 of the 13
  // bytes per slot are allocated uninitialized (a measurable share of small
  // index builds is otherwise pure memset).
  std::vector<std::uint8_t> tags_;           // 0 empty, else TagOfHash
  std::unique_ptr<std::uint64_t[]> slot_words_;  // packed word in the slot
  std::unique_ptr<std::uint32_t[]> slots_;       // group id + 1
  std::size_t mask_ = 0;
  std::vector<std::uint32_t> offsets_;  // CSR: group g rows at
  std::vector<std::uint32_t> rows_;     //   rows_[offsets_[g]..offsets_[g+1])
  std::size_t max_group_size_ = 0;
  MissFilter filter_;
  bool built_with_radix_ = false;
};

namespace probe_internal {

inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}

}  // namespace probe_internal

template <bool kUseFilter, bool kPrefetch, typename Emit>
void TableIndex::ResolveBlockFused(const std::uint64_t* words,
                                   std::size_t begin, std::size_t len,
                                   const std::uint64_t* hashes,
                                   const std::uint8_t* might,
                                   const std::uint8_t* skip, Emit&& emit,
                                   std::uint64_t* filter_hits,
                                   std::uint64_t* filter_passes) const {
  // Slot-line prefetch distance: far enough that a line is (mostly) in
  // flight by the time its row walks, near enough not to be evicted.
  constexpr std::size_t kAhead = 8;
  for (std::size_t i = 0; i < len; ++i) {
    if constexpr (kPrefetch) {
      if (i + kAhead < len) {
        const std::size_t j = i + kAhead;
        if ((!kUseFilter || might[j]) &&
            (skip == nullptr || skip[begin + j] == 0)) {
          const std::size_t h = static_cast<std::size_t>(hashes[j]) & mask_;
          probe_internal::PrefetchRead(tags_.data() + h);
          probe_internal::PrefetchRead(slot_words_.get() + h);
        }
      }
    }
    if (skip != nullptr && skip[begin + i] != 0) continue;
    if constexpr (kUseFilter) {
      if (!might[i]) {
        emit(begin + i, kNoGroup);
        ++*filter_hits;
        continue;
      }
      ++*filter_passes;
    }
    emit(begin + i, FindGroupWordHashed(words[begin + i], hashes[i]));
  }
}

template <typename Emit>
void TableIndex::ResolveWordsFused(const std::uint64_t* words, std::size_t n,
                                   const std::uint8_t* skip,
                                   Emit&& emit) const {
  SHARPCQ_DCHECK(packing_.exact());
  bool use_filter = MissFiltersEnabled();
  // Prefetching pays only when a slot line can actually miss cache; for an
  // L2-resident index the two prefetch instructions per row are dead cost.
  const bool prefetch =
      (mask_ + 1) * (sizeof(std::uint8_t) + sizeof(std::uint64_t) +
                     sizeof(std::uint32_t)) >
      L2CacheBytes();
  std::uint64_t hashes[kProbeBlockRows];
  std::uint8_t might[kProbeBlockRows];
  std::uint64_t filter_hits = 0;
  std::uint64_t filter_passes = 0;
  for (std::size_t begin = 0; begin < n; begin += kProbeBlockRows) {
    const std::size_t len =
        begin + kProbeBlockRows < n ? kProbeBlockRows : n - begin;
    HashWordsBatch(words + begin, len, hashes);
    if (use_filter) {
      // The batched (software-prefetched) verdicts settle every row's
      // might-contain bit before the resolve loop branches on them, so the
      // random filter loads overlap instead of stalling the loop in turn.
      filter_.MightContainBatch(hashes, len, might);
      ResolveBlockFused<true, true>(words, begin, len, hashes, might, skip,
                                    emit, &filter_hits, &filter_passes);
      // Adaptive bypass: a filter absorbs ~10ns of slot walk per definite
      // miss and costs ~1-2ns per consulted row, so it stops paying below
      // a ~20% miss rate. Once the consulted rows prove this probe
      // hit-heavy, later blocks run the unfiltered loop (the first block
      // always consults, so miss-heavy probes keep full protection).
      if (filter_hits * 4 < filter_hits + filter_passes) use_filter = false;
    } else if (prefetch) {
      ResolveBlockFused<false, true>(words, begin, len, hashes, nullptr, skip,
                                     emit, &filter_hits, &filter_passes);
    } else {
      ResolveBlockFused<false, false>(words, begin, len, hashes, nullptr,
                                      skip, emit, &filter_hits,
                                      &filter_passes);
    }
  }
  if (filter_hits != 0 || filter_passes != 0) {
    AddProbeFilterTallies(filter_hits, filter_passes);
  }
}

// Packs rows [begin, end) of `probe` over `cols` into words comparable with
// `packing` (the build side's), writing to out[0..end-begin). Column-major:
// each key column is streamed once, so the probe loops touch contiguous
// memory instead of gathering a Value vector per row; the kDense digit
// accumulation runs through the dispatched SIMD primitive. Dense keys
// outside the packed box come back poisoned and match nothing.
void PackProbeWords(const KeyPacking& packing, const Table& probe,
                    std::span<const int> cols, std::size_t begin,
                    std::size_t end, std::uint64_t* out);

// Immutable columnar tuple storage: each column is one contiguous buffer.
// Tables are created through TableBuilder (or the Gather helpers) and
// published as shared_ptr<const Table>; after publication nothing mutates
// the tuple data, which is what makes the lazy index cache safe to share
// across threads (see DESIGN.md, "Concurrency model").
//
// A table either owns its column buffers (TableBuilder/Gather) or aliases
// external memory kept alive by an arena handle (FromExternal) — the
// storage layer maps snapshot files and serves their column segments as
// tables without copying (see storage/snapshot.h). Readers cannot tell the
// difference: both forms are accessed through the same column views.
//
// Invariant: every published Table is a *set* of rows (no duplicates).
// TableBuilder::Build establishes it (hash dedup) and every kernel operator
// in algebra/rel.h preserves it; Join relies on it to skip output dedup.
// FromExternal trusts the caller (the snapshot writer canonicalizes rows
// before they ever reach a file).
class Table {
 public:
  std::size_t rows() const { return rows_; }
  int arity() const { return static_cast<int>(cols_.size()); }
  bool empty() const { return rows_ == 0; }

  std::span<const Value> Column(int c) const {
    return cols_[static_cast<std::size_t>(c)];
  }
  Value at(std::size_t row, int col) const {
    return cols_[static_cast<std::size_t>(col)][row];
  }

  // The hash index over `key_columns`, built on first use and cached for
  // the lifetime of the table. Thread-safe: the cache map is guarded by a
  // per-table mutex held only for lookup/insert (never during a build),
  // and the returned index is immutable and keeps itself alive through the
  // shared_ptr even if the table is dropped concurrently.
  std::shared_ptr<const TableIndex> IndexOn(std::vector<int> key_columns) const;

  // Membership of a full-width tuple, via the all-columns cached index.
  bool ContainsRow(std::span<const Value> row) const;

  // Per-column statistics (algebra/stats.h), computed on first use —
  // streamed off the single-column cached indexes — and cached for the
  // lifetime of the table under the same mutex discipline as IndexOn: the
  // lock is held only for lookup/insert, never during the computation, so
  // concurrent first calls both compute and the first insert wins.
  std::shared_ptr<const TableStats> Stats() const;
  // The cached stats if present (computed or installed), else nullptr.
  // Never computes — cheap enough for per-decision cost-model consults.
  std::shared_ptr<const TableStats> StatsIfPresent() const;
  // Primes the stats cache without a computation pass (the snapshot loader
  // installs persisted stats; the atom bridge installs permuted ones).
  // No-op when stats are already cached — first install wins.
  void InstallStats(std::shared_ptr<const TableStats> stats) const;

  // Number of indexes currently cached (diagnostics and tests).
  std::size_t CachedIndexCount() const;

  // The empty table of the given arity.
  static std::shared_ptr<const Table> Empty(int arity);

  // New table holding the given rows of `src`, in order. Row ids must be
  // valid; duplicates in `row_ids` would break the set invariant, so pass
  // distinct ids (the kernel's selections always do).
  static std::shared_ptr<const Table> Gather(
      const Table& src, std::span<const std::uint32_t> row_ids);

  // Adopts fully-built column buffers (all of length `rows`) without a
  // copy. The rows must already form a set — callers are kernel operators
  // whose outputs are distinct by construction (Join of two sets).
  static std::shared_ptr<const Table> FromColumns(
      std::vector<std::vector<Value>> cols, std::size_t rows);

  // External-arena construction: the table's columns alias caller-provided
  // memory that `arena` keeps alive (a mapped snapshot, or another table
  // whose columns are being re-ordered). Every span must hold exactly
  // `rows` values, and the rows must already form a set — the snapshot
  // writer guarantees both for mapped segments.
  static std::shared_ptr<const Table> FromExternal(
      std::vector<std::span<const Value>> cols, std::size_t rows,
      std::shared_ptr<const void> arena);

  // True when the column buffers alias external memory (diagnostics).
  bool is_external() const { return arena_ != nullptr; }

  std::string DebugString() const;

 private:
  friend class TableBuilder;
  Table(std::vector<std::vector<Value>> cols, std::size_t rows)
      : owned_(std::move(cols)), rows_(rows) {
    cols_.reserve(owned_.size());
    for (const auto& col : owned_) cols_.emplace_back(col.data(), rows_);
  }
  Table(std::vector<std::span<const Value>> views, std::size_t rows,
        std::shared_ptr<const void> arena)
      : cols_(std::move(views)), rows_(rows), arena_(std::move(arena)) {}

  std::vector<std::vector<Value>> owned_;     // empty for external tables
  std::vector<std::span<const Value>> cols_;  // views into owned_ or arena
  std::size_t rows_;  // tracked separately so arity-0 tables can hold a row
  std::shared_ptr<const void> arena_;  // keeps external storage alive

  mutable std::mutex cache_mu_;
  mutable std::map<std::vector<int>, std::shared_ptr<const TableIndex>>
      index_cache_;
  mutable std::shared_ptr<const TableStats> stats_;  // guarded by cache_mu_
};

namespace probe_internal {

// Statically-known "skip nothing" predicate: lets the unified driver elide
// the skip mask entirely for plain ForEachProbeGroup calls.
struct NeverSkip {
  bool operator()(std::size_t) const { return false; }
};

// Per-thread reusable probe buffers. Fixpoint passes call the probe driver
// thousands of times with transient word/group arrays big enough that a
// fresh vector each call means an mmap round trip and page faults from the
// allocator; reusing one high-water-mark buffer per thread removes that
// from the hot path. Acquire returns nullptr when the thread's scratch is
// already in use (a probe issued from inside a probe callback) — callers
// then fall back to plain locals.
struct ProbeScratch {
  std::vector<std::uint64_t> words;
  std::vector<std::uint8_t> skip_mask;
  bool in_use = false;
};
ProbeScratch* AcquireProbeScratch();
void ReleaseProbeScratch(ProbeScratch* scratch);

// RAII over Acquire/Release; exposes locals as the fallback store.
class ProbeScratchLease {
 public:
  ProbeScratchLease() : scratch_(AcquireProbeScratch()) {}
  ~ProbeScratchLease() {
    if (scratch_ != nullptr) ReleaseProbeScratch(scratch_);
  }
  ProbeScratchLease(const ProbeScratchLease&) = delete;
  ProbeScratchLease& operator=(const ProbeScratchLease&) = delete;

  ProbeScratch& get() { return scratch_ != nullptr ? *scratch_ : local_; }

 private:
  ProbeScratch* scratch_;
  ProbeScratch local_;
};

}  // namespace probe_internal

// The one probe driver: calls fn(row, group) for every non-skipped probe
// row in [begin, end), where group is the id of the index group matching
// the row's key columns, or TableIndex::kNoGroup. Packs the range's probe
// words once (column-major, SIMD-dispatched), then:
//
//   - exact packings resolve through TableIndex::ResolveProbeWords — the
//     batched hash + miss-filter + prefetched tag/word compare block
//     kernel;
//   - kHashed packings probe row-at-a-time through the filter-fronted
//     collision-checked walk (values must be re-verified, so there is no
//     batch form).
//
// Rows where skip(row) is true are neither filtered, probed, nor reported;
// their words are still packed (packing is bulk and branch-free). Safe to
// call concurrently from morsel workers over disjoint ranges — the index
// is immutable and scratch is per-thread (reused across calls; see
// ProbeScratch).
template <typename Skip, typename Fn>
void ForEachProbeGroupImpl(const TableIndex& index, const Table& probe,
                           std::span<const int> cols, std::size_t begin,
                           std::size_t end, Skip&& skip, Fn&& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  probe_internal::ProbeScratchLease lease;
  probe_internal::ProbeScratch& scratch = lease.get();
  std::vector<std::uint64_t>& words = scratch.words;
  if (words.size() < n) words.resize(n);
  PackProbeWords(index.packing(), probe, cols, begin, end, words.data());

  constexpr bool kNeverSkips =
      std::is_same_v<std::remove_cvref_t<Skip>, probe_internal::NeverSkip>;

  if (index.packing().exact()) {
    std::vector<std::uint8_t>& skip_mask = scratch.skip_mask;
    const std::uint8_t* skip_ptr = nullptr;
    if constexpr (!kNeverSkips) {
      if (skip_mask.size() < n) skip_mask.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        skip_mask[i] = skip(begin + i) ? 1 : 0;
      }
      skip_ptr = skip_mask.data();
    }
    index.ResolveWordsFused(words.data(), n, skip_ptr,
                            [&](std::size_t i, std::uint32_t group) {
                              fn(begin + i, group);
                            });
    return;
  }

  const bool use_filter = MissFiltersEnabled();
  std::uint64_t filter_hits = 0;
  std::uint64_t probed = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if constexpr (!kNeverSkips) {
      if (skip(i)) continue;
    }
    ++probed;
    fn(i, index.FindGroupVerifyFiltered(
              words[i - begin], use_filter, &filter_hits,
              [&](std::size_t j) { return probe.at(i, cols[j]); }));
  }
  if (use_filter) AddProbeFilterTallies(filter_hits, probed - filter_hits);
}

template <typename Fn>
void ForEachProbeGroup(const TableIndex& index, const Table& probe,
                       std::span<const int> cols, std::size_t begin,
                       std::size_t end, Fn&& fn) {
  ForEachProbeGroupImpl(index, probe, cols, begin, end,
                        probe_internal::NeverSkip{}, static_cast<Fn&&>(fn));
}

// Variant with a skip predicate: rows where skip(row) is true are neither
// probed nor reported, saving the filter consult and slot walk (the
// cache-missing part of a probe) when a caller can rule rows out cheaply
// (e.g. CountFullJoin's zero-weight rows).
template <typename Skip, typename Fn>
void ForEachProbeGroupUnless(const TableIndex& index, const Table& probe,
                             std::span<const int> cols, std::size_t begin,
                             std::size_t end, Skip&& skip, Fn&& fn) {
  ForEachProbeGroupImpl(index, probe, cols, begin, end,
                        static_cast<Skip&&>(skip), static_cast<Fn&&>(fn));
}

// Mutable row accumulator; Build() dedups and publishes the immutable Table.
class TableBuilder {
 public:
  explicit TableBuilder(int arity) : cols_(static_cast<std::size_t>(arity)) {
    SHARPCQ_CHECK(arity >= 0);
  }

  int arity() const { return static_cast<int>(cols_.size()); }
  std::size_t rows() const { return rows_; }

  // Capacity hint from a known input row count: reserves every column
  // buffer, and Build sizes its dedup hash — the slot vector AND its
  // 1-byte tag vector — from the hint up front instead of from however
  // many rows actually arrived. One allocation each, no regrow/rehash
  // churn on ingest.
  void ReserveRows(std::size_t n) {
    if (n > reserved_rows_) {
      // Budget charge at reservation granularity: the column buffers this
      // hint commits to, net of any earlier reservation.
      ChargeExecMemory(static_cast<std::uint64_t>(n - reserved_rows_) *
                       cols_.size() * sizeof(Value));
      reserved_rows_ = n;
    }
    for (auto& col : cols_) col.reserve(n);
  }

  void AddRow(std::span<const Value> row) {
    SHARPCQ_DCHECK(row.size() == cols_.size());
    for (std::size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(row[c]);
    ++rows_;
  }

  // Publishes the accumulated rows as an immutable, deduplicated table.
  // `known_distinct` skips the dedup pass when the caller can prove the
  // rows are already a set (e.g. a join of two sets).
  std::shared_ptr<const Table> Build(bool known_distinct = false) &&;

 private:
  std::vector<std::vector<Value>> cols_;
  std::size_t rows_ = 0;
  std::size_t reserved_rows_ = 0;
};

}  // namespace sharpcq

#endif  // SHARPCQ_ALGEBRA_TABLE_H_
