#ifndef SHARPCQ_ALGEBRA_TABLE_H_
#define SHARPCQ_ALGEBRA_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "data/value.h"
#include "util/check.h"

namespace sharpcq {

class Table;

// How a TableIndex packs a multi-column key into one uint64 word. Every
// probe compares one machine word per row instead of rebuilding and
// re-hashing a std::vector<Value> key; the mode decides what a word match
// means:
//
//   kSingle  width-1 keys: word = value, bijective. Word equality is key
//            equality. (Width-0 keys also use this mode: every word is 0.)
//   kDense   multi-column keys whose per-column value ranges bit-pack into
//            <= 62 bits (the dictionary-dense case: interned values are
//            small dense integers). word = sum_j (v_j - base_j) << shift_j,
//            injective over the in-range box; a probe value outside its
//            column's range sets the poison bit (bit 63), which no stored
//            word carries, so the lookup misses without special-casing.
//            Word equality is key equality.
//   kHashed  fallback for wide value ranges: word = 64-bit hash chain of
//            the key. Word equality is necessary but not sufficient — both
//            the index build and every probe re-verify the actual column
//            values on word match (collision-checked).
struct KeyPacking {
  enum class Mode : std::uint8_t { kSingle, kDense, kHashed };
  Mode mode = Mode::kSingle;
  // kDense only, one entry per key column.
  std::vector<std::uint64_t> base;   // two's-complement column minimum
  std::vector<std::uint64_t> range;  // max - min (unsigned distance)
  std::vector<int> shift;            // bit position of the column's digit

  // Word equality implies key equality (no value re-verification needed).
  bool exact() const { return mode != Mode::kHashed; }

  // The word of `key` under this packing. Dense keys outside the packed box
  // come back with the poison bit set and match nothing.
  std::uint64_t Pack(std::span<const Value> key) const;

  static constexpr std::uint64_t kPoison = std::uint64_t{1} << 63;
};

// Hash index over selected key columns of a Table: key -> row ids, plus the
// group structure (one group per distinct key) that counted projection and
// the PS13 initial partition read directly. Immutable after construction.
//
// Storage is flat: group keys live in one contiguous buffer, each group's
// packed key word in a contiguous uint64 column, and the row ids of all
// groups in one CSR array, so building the index performs no per-group
// allocations — it is the inner loop of every semijoin. The open-addressing
// table is keyed by packed words: a probe costs one word comparison per
// visited slot (plus a value re-check in kHashed mode only).
class TableIndex {
 public:
  TableIndex(const Table& table, std::vector<int> key_columns);

  // Row ids whose key columns equal `key` (empty if none).
  std::span<const std::uint32_t> Lookup(std::span<const Value> key) const;

  // Single-column fast path: rows whose key equals `key`, without building
  // a one-element span at the call site. Requires key_columns().size() == 1.
  std::span<const std::uint32_t> Lookup(Value key) const {
    SHARPCQ_DCHECK(width_ == 1);
    return group_rows_or_empty(
        FindGroupWord(static_cast<std::uint64_t>(key)));
  }

  const std::vector<int>& key_columns() const { return key_columns_; }
  const KeyPacking& packing() const { return packing_; }

  // Group id sentinel for "no group with this key".
  static constexpr std::uint32_t kNoGroup = 0xFFFFFFFFu;

  // Group whose packed word is `word`, or kNoGroup. Exact packings only —
  // for kHashed packings a word match does not pin down the key, so callers
  // must use LookupGroupVerify with the probe row's actual values.
  std::uint32_t FindGroupWord(std::uint64_t word) const;

  // Group whose packed word is `word` AND whose key values equal
  // key_at(0..width-1) — the collision-checked probe for kHashed packings
  // (also correct, just redundant, for exact ones).
  template <typename KeyAt>
  std::uint32_t FindGroupVerify(std::uint64_t word, KeyAt&& key_at) const {
    std::size_t h = static_cast<std::size_t>(HashWord(word)) & mask_;
    while (true) {
      std::uint32_t g = slots_[h];
      if (g == 0) return kNoGroup;
      if (group_words_[g - 1] == word) {
        const Value* stored = keys_.data() + (g - 1) * width_;
        bool equal = true;
        for (std::size_t j = 0; j < width_; ++j) {
          if (stored[j] != key_at(j)) {
            equal = false;
            break;
          }
        }
        if (equal) return g - 1;
      }
      h = (h + 1) & mask_;
    }
  }

  // Rows of the group matching a pre-packed probe word (see
  // PackProbeWords); empty span on miss. Exact packings only.
  std::span<const std::uint32_t> LookupWord(std::uint64_t word) const {
    return group_rows_or_empty(FindGroupWord(word));
  }

  // Group view: one entry per distinct key, in first-occurrence row order.
  std::size_t num_groups() const { return num_groups_; }
  std::span<const Value> group_key(std::size_t g) const {
    return {keys_.data() + g * width_, width_};
  }
  std::span<const std::uint32_t> group_rows(std::size_t g) const {
    return {rows_.data() + offsets_[g],
            static_cast<std::size_t>(offsets_[g + 1] - offsets_[g])};
  }
  // Packed key word of each group, parallel to the group order.
  std::span<const std::uint64_t> group_words() const { return group_words_; }

  // Cardinality of the largest group (0 for an empty table): the degree of
  // the indexed relation w.r.t. the key columns (Definition 6.1).
  std::size_t max_group_size() const { return max_group_size_; }

  // Test hook: masks kHashed words to the low `bits` bits (0 restores full
  // width) so word collisions between distinct keys become constructible.
  // The mask applies to hashed-word computation everywhere — index builds
  // AND probe-time packing — so set it before building any kHashed index
  // you will probe, and keep it unchanged until those indexes are dropped
  // (probing a full-width index with narrowed words misses). Not for
  // production use.
  static void SetHashedWordBitsForTesting(int bits);

 private:
  static std::uint64_t HashWord(std::uint64_t word);

  std::span<const std::uint32_t> group_rows_or_empty(std::uint32_t g) const {
    if (g == kNoGroup) return {};
    return group_rows(g);
  }

  // Slot of the build-side row with packed word `word` and key starting at
  // `key`: either its group's slot or the empty slot where it belongs.
  std::size_t FindSlotForInsert(std::uint64_t word, const Value* key) const;

  std::vector<int> key_columns_;
  std::size_t width_ = 0;        // = key_columns_.size()
  KeyPacking packing_;
  std::size_t num_groups_ = 0;
  std::vector<Value> keys_;      // group g's key at [g*width_, (g+1)*width_)
  std::vector<std::uint64_t> group_words_;  // group g's packed word
  std::vector<std::uint32_t> slots_;    // open addressing -> group id + 1
  std::size_t mask_ = 0;
  std::vector<std::uint32_t> offsets_;  // CSR: group g rows at
  std::vector<std::uint32_t> rows_;     //   rows_[offsets_[g]..offsets_[g+1])
  std::size_t max_group_size_ = 0;
};

// Packs rows [begin, end) of `probe` over `cols` into words comparable with
// `packing` (the build side's), writing to out[0..end-begin). Column-major:
// each key column is streamed once, so the probe loops touch contiguous
// memory instead of gathering a Value vector per row. Dense keys outside
// the packed box come back poisoned and match nothing.
void PackProbeWords(const KeyPacking& packing, const Table& probe,
                    std::span<const int> cols, std::size_t begin,
                    std::size_t end, std::uint64_t* out);

// Calls fn(row, group) for every probe row in [begin, end), where group is
// the id of the index group matching the row's key columns, or
// TableIndex::kNoGroup. Packs the range's probe words once (see
// PackProbeWords), then probes one word per row; kHashed packings re-verify
// values on word match. Safe to call concurrently from morsel workers over
// disjoint ranges — the index is immutable and all scratch is local.
template <typename Fn>
void ForEachProbeGroup(const TableIndex& index, const Table& probe,
                       std::span<const int> cols, std::size_t begin,
                       std::size_t end, Fn&& fn);

// Immutable columnar tuple storage: each column is one contiguous buffer.
// Tables are created through TableBuilder (or the Gather helpers) and
// published as shared_ptr<const Table>; after publication nothing mutates
// the tuple data, which is what makes the lazy index cache safe to share
// across threads (see DESIGN.md, "Concurrency model").
//
// A table either owns its column buffers (TableBuilder/Gather) or aliases
// external memory kept alive by an arena handle (FromExternal) — the
// storage layer maps snapshot files and serves their column segments as
// tables without copying (see storage/snapshot.h). Readers cannot tell the
// difference: both forms are accessed through the same column views.
//
// Invariant: every published Table is a *set* of rows (no duplicates).
// TableBuilder::Build establishes it (hash dedup) and every kernel operator
// in algebra/rel.h preserves it; Join relies on it to skip output dedup.
// FromExternal trusts the caller (the snapshot writer canonicalizes rows
// before they ever reach a file).
class Table {
 public:
  std::size_t rows() const { return rows_; }
  int arity() const { return static_cast<int>(cols_.size()); }
  bool empty() const { return rows_ == 0; }

  std::span<const Value> Column(int c) const {
    return cols_[static_cast<std::size_t>(c)];
  }
  Value at(std::size_t row, int col) const {
    return cols_[static_cast<std::size_t>(col)][row];
  }

  // The hash index over `key_columns`, built on first use and cached for
  // the lifetime of the table. Thread-safe: the cache map is guarded by a
  // per-table mutex held only for lookup/insert (never during a build),
  // and the returned index is immutable and keeps itself alive through the
  // shared_ptr even if the table is dropped concurrently.
  std::shared_ptr<const TableIndex> IndexOn(std::vector<int> key_columns) const;

  // Membership of a full-width tuple, via the all-columns cached index.
  bool ContainsRow(std::span<const Value> row) const;

  // Number of indexes currently cached (diagnostics and tests).
  std::size_t CachedIndexCount() const;

  // The empty table of the given arity.
  static std::shared_ptr<const Table> Empty(int arity);

  // New table holding the given rows of `src`, in order. Row ids must be
  // valid; duplicates in `row_ids` would break the set invariant, so pass
  // distinct ids (the kernel's selections always do).
  static std::shared_ptr<const Table> Gather(
      const Table& src, std::span<const std::uint32_t> row_ids);

  // Adopts fully-built column buffers (all of length `rows`) without a
  // copy. The rows must already form a set — callers are kernel operators
  // whose outputs are distinct by construction (Join of two sets).
  static std::shared_ptr<const Table> FromColumns(
      std::vector<std::vector<Value>> cols, std::size_t rows);

  // External-arena construction: the table's columns alias caller-provided
  // memory that `arena` keeps alive (a mapped snapshot, or another table
  // whose columns are being re-ordered). Every span must hold exactly
  // `rows` values, and the rows must already form a set — the snapshot
  // writer guarantees both for mapped segments.
  static std::shared_ptr<const Table> FromExternal(
      std::vector<std::span<const Value>> cols, std::size_t rows,
      std::shared_ptr<const void> arena);

  // True when the column buffers alias external memory (diagnostics).
  bool is_external() const { return arena_ != nullptr; }

  std::string DebugString() const;

 private:
  friend class TableBuilder;
  Table(std::vector<std::vector<Value>> cols, std::size_t rows)
      : owned_(std::move(cols)), rows_(rows) {
    cols_.reserve(owned_.size());
    for (const auto& col : owned_) cols_.emplace_back(col.data(), rows_);
  }
  Table(std::vector<std::span<const Value>> views, std::size_t rows,
        std::shared_ptr<const void> arena)
      : cols_(std::move(views)), rows_(rows), arena_(std::move(arena)) {}

  std::vector<std::vector<Value>> owned_;     // empty for external tables
  std::vector<std::span<const Value>> cols_;  // views into owned_ or arena
  std::size_t rows_;  // tracked separately so arity-0 tables can hold a row
  std::shared_ptr<const void> arena_;  // keeps external storage alive

  mutable std::mutex cache_mu_;
  mutable std::map<std::vector<int>, std::shared_ptr<const TableIndex>>
      index_cache_;
};

// Variant with a skip predicate: rows where skip(row) is true are neither
// probed nor reported. Their words are still packed — packing is bulk and
// branch-free — but the slot walk (the cache-missing part of a probe) is
// saved, which matters when a caller can rule rows out cheaply (e.g.
// CountFullJoin's zero-weight rows).
template <typename Skip, typename Fn>
void ForEachProbeGroupUnless(const TableIndex& index, const Table& probe,
                             std::span<const int> cols, std::size_t begin,
                             std::size_t end, Skip&& skip, Fn&& fn) {
  if (begin >= end) return;
  std::vector<std::uint64_t> words(end - begin);
  PackProbeWords(index.packing(), probe, cols, begin, end, words.data());
  if (index.packing().exact()) {
    for (std::size_t i = begin; i < end; ++i) {
      if (skip(i)) continue;
      fn(i, index.FindGroupWord(words[i - begin]));
    }
    return;
  }
  for (std::size_t i = begin; i < end; ++i) {
    if (skip(i)) continue;
    fn(i, index.FindGroupVerify(words[i - begin], [&](std::size_t j) {
      return probe.at(i, cols[j]);
    }));
  }
}

template <typename Fn>
void ForEachProbeGroup(const TableIndex& index, const Table& probe,
                       std::span<const int> cols, std::size_t begin,
                       std::size_t end, Fn&& fn) {
  ForEachProbeGroupUnless(index, probe, cols, begin, end,
                          [](std::size_t) { return false; },
                          static_cast<Fn&&>(fn));
}

// Mutable row accumulator; Build() dedups and publishes the immutable Table.
class TableBuilder {
 public:
  explicit TableBuilder(int arity) : cols_(static_cast<std::size_t>(arity)) {
    SHARPCQ_CHECK(arity >= 0);
  }

  int arity() const { return static_cast<int>(cols_.size()); }
  std::size_t rows() const { return rows_; }

  // Capacity hint from a known input row count: reserves every column
  // buffer, and Build sizes its dedup hash from the hint up front instead
  // of from however many rows actually arrived — one allocation each, no
  // regrow/rehash churn on ingest.
  void ReserveRows(std::size_t n) {
    for (auto& col : cols_) col.reserve(n);
    if (n > reserved_rows_) reserved_rows_ = n;
  }

  void AddRow(std::span<const Value> row) {
    SHARPCQ_DCHECK(row.size() == cols_.size());
    for (std::size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(row[c]);
    ++rows_;
  }

  // Publishes the accumulated rows as an immutable, deduplicated table.
  // `known_distinct` skips the dedup pass when the caller can prove the
  // rows are already a set (e.g. a join of two sets).
  std::shared_ptr<const Table> Build(bool known_distinct = false) &&;

 private:
  std::vector<std::vector<Value>> cols_;
  std::size_t rows_ = 0;
  std::size_t reserved_rows_ = 0;
};

}  // namespace sharpcq

#endif  // SHARPCQ_ALGEBRA_TABLE_H_
