#ifndef SHARPCQ_ALGEBRA_TABLE_H_
#define SHARPCQ_ALGEBRA_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "data/value.h"
#include "util/check.h"

namespace sharpcq {

class Table;

// Hash index over selected key columns of a Table: key -> row ids, plus the
// group structure (one group per distinct key) that counted projection and
// the PS13 initial partition read directly. Immutable after construction.
//
// Storage is flat: group keys live in one contiguous buffer and the row ids
// of all groups in one CSR array, so building the index performs no
// per-group allocations — it is the inner loop of every semijoin.
class TableIndex {
 public:
  TableIndex(const Table& table, std::vector<int> key_columns);

  // Row ids whose key columns equal `key` (empty if none).
  std::span<const std::uint32_t> Lookup(std::span<const Value> key) const;

  const std::vector<int>& key_columns() const { return key_columns_; }

  // Group view: one entry per distinct key, in first-occurrence row order.
  std::size_t num_groups() const { return num_groups_; }
  std::span<const Value> group_key(std::size_t g) const {
    return {keys_.data() + g * width_, width_};
  }
  std::span<const std::uint32_t> group_rows(std::size_t g) const {
    return {rows_.data() + offsets_[g],
            static_cast<std::size_t>(offsets_[g + 1] - offsets_[g])};
  }

  // Cardinality of the largest group (0 for an empty table): the degree of
  // the indexed relation w.r.t. the key columns (Definition 6.1).
  std::size_t max_group_size() const { return max_group_size_; }

 private:
  // Slot of `key` in the open-addressing table: either its group's slot or
  // the empty slot where it belongs.
  std::size_t FindSlot(std::span<const Value> key) const;

  std::vector<int> key_columns_;
  std::size_t width_ = 0;        // = key_columns_.size()
  std::size_t num_groups_ = 0;
  std::vector<Value> keys_;      // group g's key at [g*width_, (g+1)*width_)
  std::vector<std::uint32_t> slots_;    // open addressing -> group id + 1
  std::size_t mask_ = 0;
  std::vector<std::uint32_t> offsets_;  // CSR: group g rows at
  std::vector<std::uint32_t> rows_;     //   rows_[offsets_[g]..offsets_[g+1])
  std::size_t max_group_size_ = 0;
};

// Immutable columnar tuple storage: each column is one contiguous buffer.
// Tables are created through TableBuilder (or the Gather helpers) and
// published as shared_ptr<const Table>; after publication nothing mutates
// the tuple data, which is what makes the lazy index cache safe to share
// across threads (see DESIGN.md, "Concurrency model").
//
// A table either owns its column buffers (TableBuilder/Gather) or aliases
// external memory kept alive by an arena handle (FromExternal) — the
// storage layer maps snapshot files and serves their column segments as
// tables without copying (see storage/snapshot.h). Readers cannot tell the
// difference: both forms are accessed through the same column views.
//
// Invariant: every published Table is a *set* of rows (no duplicates).
// TableBuilder::Build establishes it (hash dedup) and every kernel operator
// in algebra/rel.h preserves it; Join relies on it to skip output dedup.
// FromExternal trusts the caller (the snapshot writer canonicalizes rows
// before they ever reach a file).
class Table {
 public:
  std::size_t rows() const { return rows_; }
  int arity() const { return static_cast<int>(cols_.size()); }
  bool empty() const { return rows_ == 0; }

  std::span<const Value> Column(int c) const {
    return cols_[static_cast<std::size_t>(c)];
  }
  Value at(std::size_t row, int col) const {
    return cols_[static_cast<std::size_t>(col)][row];
  }

  // The hash index over `key_columns`, built on first use and cached for
  // the lifetime of the table. Thread-safe: the cache map is guarded by a
  // per-table mutex held only for lookup/insert (never during a build),
  // and the returned index is immutable and keeps itself alive through the
  // shared_ptr even if the table is dropped concurrently.
  std::shared_ptr<const TableIndex> IndexOn(std::vector<int> key_columns) const;

  // Membership of a full-width tuple, via the all-columns cached index.
  bool ContainsRow(std::span<const Value> row) const;

  // Number of indexes currently cached (diagnostics and tests).
  std::size_t CachedIndexCount() const;

  // The empty table of the given arity.
  static std::shared_ptr<const Table> Empty(int arity);

  // New table holding the given rows of `src`, in order. Row ids must be
  // valid; duplicates in `row_ids` would break the set invariant, so pass
  // distinct ids (the kernel's selections always do).
  static std::shared_ptr<const Table> Gather(
      const Table& src, std::span<const std::uint32_t> row_ids);

  // External-arena construction: the table's columns alias caller-provided
  // memory that `arena` keeps alive (a mapped snapshot, or another table
  // whose columns are being re-ordered). Every span must hold exactly
  // `rows` values, and the rows must already form a set — the snapshot
  // writer guarantees both for mapped segments.
  static std::shared_ptr<const Table> FromExternal(
      std::vector<std::span<const Value>> cols, std::size_t rows,
      std::shared_ptr<const void> arena);

  // True when the column buffers alias external memory (diagnostics).
  bool is_external() const { return arena_ != nullptr; }

  std::string DebugString() const;

 private:
  friend class TableBuilder;
  Table(std::vector<std::vector<Value>> cols, std::size_t rows)
      : owned_(std::move(cols)), rows_(rows) {
    cols_.reserve(owned_.size());
    for (const auto& col : owned_) cols_.emplace_back(col.data(), rows_);
  }
  Table(std::vector<std::span<const Value>> views, std::size_t rows,
        std::shared_ptr<const void> arena)
      : cols_(std::move(views)), rows_(rows), arena_(std::move(arena)) {}

  std::vector<std::vector<Value>> owned_;     // empty for external tables
  std::vector<std::span<const Value>> cols_;  // views into owned_ or arena
  std::size_t rows_;  // tracked separately so arity-0 tables can hold a row
  std::shared_ptr<const void> arena_;  // keeps external storage alive

  mutable std::mutex cache_mu_;
  mutable std::map<std::vector<int>, std::shared_ptr<const TableIndex>>
      index_cache_;
};

// Mutable row accumulator; Build() dedups and publishes the immutable Table.
class TableBuilder {
 public:
  explicit TableBuilder(int arity) : cols_(static_cast<std::size_t>(arity)) {
    SHARPCQ_CHECK(arity >= 0);
  }

  int arity() const { return static_cast<int>(cols_.size()); }
  std::size_t rows() const { return rows_; }

  void ReserveRows(std::size_t n) {
    for (auto& col : cols_) col.reserve(n);
  }

  void AddRow(std::span<const Value> row) {
    SHARPCQ_DCHECK(row.size() == cols_.size());
    for (std::size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(row[c]);
    ++rows_;
  }

  // Publishes the accumulated rows as an immutable, deduplicated table.
  // `known_distinct` skips the dedup pass when the caller can prove the
  // rows are already a set (e.g. a join of two sets).
  std::shared_ptr<const Table> Build(bool known_distinct = false) &&;

 private:
  std::vector<std::vector<Value>> cols_;
  std::size_t rows_ = 0;
};

}  // namespace sharpcq

#endif  // SHARPCQ_ALGEBRA_TABLE_H_
