#include "core/analyze.h"

#include "core/sharp_decomposition.h"
#include "count/starsize.h"
#include "decomp/hypertree.h"
#include "hypergraph/acyclic.h"
#include "hypergraph/hypergraph.h"
#include "solver/core.h"

namespace sharpcq {

QueryAnalysis AnalyzeQuery(const ConjunctiveQuery& q, int k_max) {
  return AnalyzeQuery(q, k_max, /*max_cores=*/8, nullptr);
}

QueryAnalysis AnalyzeQuery(const ConjunctiveQuery& q, int k_max,
                           std::size_t max_cores,
                           AnalysisArtifacts* artifacts) {
  QueryAnalysis a;
  a.num_atoms = q.NumAtoms();
  a.num_vars = q.AllVars().size();
  a.num_free = q.free_vars().size();
  a.is_simple = q.IsSimple();
  a.is_acyclic = IsAcyclic(q.BuildHypergraph());
  a.quantified_star_size = QuantifiedStarSize(q);
  a.hypertree_width = HypertreeWidth(q, k_max);

  // The single #-hypertree width search: the smallest k admitting a width-k
  // decomposition, with the witness kept for reuse instead of being
  // recomputed by every downstream counting call.
  std::optional<SharpDecomposition> sharp;
  for (int k = 1; k <= k_max && !sharp.has_value(); ++k) {
    sharp = FindSharpHypertreeDecomposition(q, k, max_cores);
    if (sharp.has_value()) a.sharp_hypertree_width = k;
  }

  ConjunctiveQuery core = ComputeColoredCore(q);
  a.core_atoms = core.NumAtoms();
  a.core_is_acyclic = IsAcyclic(core.BuildHypergraph());

  Hypergraph fh = FrontierHypergraph(core.BuildHypergraph(), q.free_vars());
  a.frontier_edges = fh.num_edges();
  for (const IdSet& e : fh.edges()) {
    a.max_frontier_size = std::max(a.max_frontier_size, e.size());
  }
  if (artifacts != nullptr) {
    artifacts->colored_core = std::move(core);
    artifacts->sharp = std::move(sharp);
  }
  return a;
}

std::string QueryAnalysis::ToString() const {
  auto width = [](const std::optional<int>& w) {
    return w.has_value() ? std::to_string(*w) : std::string("> budget");
  };
  std::string out;
  out += "atoms: " + std::to_string(num_atoms) +
         ", vars: " + std::to_string(num_vars) +
         " (free: " + std::to_string(num_free) + ")";
  out += is_simple ? ", simple" : ", self-joins present";
  out += "\nhypergraph: ";
  out += is_acyclic ? "acyclic" : "cyclic";
  out += ", htw = " + width(hypertree_width);
  out += "\ncolored core: " + std::to_string(core_atoms) + " atoms, ";
  out += core_is_acyclic ? "acyclic" : "cyclic";
  out += "\nfrontier hypergraph: " + std::to_string(frontier_edges) +
         " edges, largest frontier " + std::to_string(max_frontier_size);
  out += "\nquantified star size: " + std::to_string(quantified_star_size);
  out += "\n#-hypertree width: " + width(sharp_hypertree_width);
  out += "\n";
  return out;
}

}  // namespace sharpcq
