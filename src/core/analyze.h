#ifndef SHARPCQ_CORE_ANALYZE_H_
#define SHARPCQ_CORE_ANALYZE_H_

#include <optional>
#include <string>

#include "core/sharp_decomposition.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// A one-call structural profile of a query: every parameter the paper's
// tractability landscape speaks about, for diagnostics and planning.
struct QueryAnalysis {
  std::size_t num_atoms = 0;
  std::size_t num_vars = 0;
  std::size_t num_free = 0;
  bool is_simple = false;       // distinct relation symbols (Section 2)
  bool is_acyclic = false;      // alpha-acyclicity of HQ
  std::size_t core_atoms = 0;   // size of the colored core Q'
  bool core_is_acyclic = false;
  int quantified_star_size = 0;                 // DM15 (Appendix A)
  std::optional<int> hypertree_width;           // htw(HQ), up to k_max
  std::optional<int> sharp_hypertree_width;     // Definition 1.2, up to k_max
  std::size_t frontier_edges = 0;  // hyperedges of FH(Q', free(Q))
  std::size_t max_frontier_size = 0;

  // A short multi-line report.
  std::string ToString() const;
};

// Reusable by-products of the analysis: the expensive query-only artifacts
// the profile was computed from, handed to callers (the engine planner) so
// width searches and core computation run exactly once per query shape.
struct AnalysisArtifacts {
  // The paper's Q': a core of color(Q) with the colors stripped.
  ConjunctiveQuery colored_core;
  // The width-minimal #-hypertree decomposition found within the budget
  // (the k achieving sharp_hypertree_width), if any.
  std::optional<SharpDecomposition> sharp;
};

// Computes the profile, searching widths up to `k_max`. Cost is FPT in the
// query (core computation + width searches); the database is not involved.
QueryAnalysis AnalyzeQuery(const ConjunctiveQuery& q, int k_max = 4);

// Same, with `max_cores` substructure cores tried per width and the
// artifacts exported (pass nullptr to discard them).
QueryAnalysis AnalyzeQuery(const ConjunctiveQuery& q, int k_max,
                           std::size_t max_cores,
                           AnalysisArtifacts* artifacts);

}  // namespace sharpcq

#endif  // SHARPCQ_CORE_ANALYZE_H_
