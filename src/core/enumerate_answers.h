#ifndef SHARPCQ_CORE_ENUMERATE_ANSWERS_H_
#define SHARPCQ_CORE_ENUMERATE_ANSWERS_H_

#include <functional>
#include <optional>
#include <vector>

#include "core/sharp_decomposition.h"
#include "data/database.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// Answer enumeration with polynomial delay (Greco & Scarcello, GS13 — the
// companion problem the paper contrasts counting against, Section 1.1).
//
// Given a #-decomposition, the Theorem 3.7 pipeline produces a full-reduced
// acyclic instance over the free variables whose join is exactly the answer
// set; enumerating that join over the join tree yields each answer once,
// with delay polynomial in the instance.

// One answer: values for the free variables in ascending VarId order.
using AnswerCallback =
    std::function<bool(const std::vector<Value>&)>;  // return false to stop

// Enumerates pi_free(Q)(D) through a width-k #-hypertree decomposition.
// Returns the number of answers emitted (equals the count when the callback
// never stops), or nullopt when q has no width-k #-hypertree decomposition.
std::optional<std::size_t> EnumerateAnswers(const ConjunctiveQuery& q,
                                            const Database& db, int k,
                                            const AnswerCallback& callback);

// Convenience: materializes up to `limit` answers.
std::optional<std::vector<std::vector<Value>>> EnumerateAnswersToVector(
    const ConjunctiveQuery& q, const Database& db, int k,
    std::size_t limit = static_cast<std::size_t>(-1));

}  // namespace sharpcq

#endif  // SHARPCQ_CORE_ENUMERATE_ANSWERS_H_
