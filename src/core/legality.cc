#include "core/legality.h"

#include "core/materialize.h"
#include "data/var_relation.h"
#include "query/atom_relation.h"
#include "util/check.h"

namespace sharpcq {

namespace {

// Full evaluation of q on db by join-project (diagnostic path).
VarRelation EvaluateFull(const ConjunctiveQuery& q, const Database& db) {
  std::vector<VarRelation> rels;
  rels.reserve(q.NumAtoms());
  for (const Atom& a : q.atoms()) rels.push_back(AtomToVarRelation(a, db));
  SHARPCQ_CHECK(!rels.empty());
  VarRelation acc = std::move(rels.back());
  rels.pop_back();
  while (!rels.empty()) {
    std::size_t pick = 0;
    for (std::size_t i = 0; i < rels.size(); ++i) {
      if (rels[i].vars().Intersects(acc.vars())) {
        pick = i;
        break;
      }
    }
    acc = Join(acc, rels[pick]);
    rels.erase(rels.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return acc;
}

}  // namespace

bool IsLegalViewDatabase(const ConjunctiveQuery& q, const ViewSet& views,
                         const Database& db, std::string* why) {
  VarRelation solutions = EvaluateFull(q, db);
  for (std::size_t v = 0; v < views.size(); ++v) {
    IdSet view_vars = Intersect(views.vars[v], solutions.vars());
    VarRelation required = Project(solutions, view_vars);
    VarRelation provided = MaterializeView(views, v, q, db);
    // required must be a subset of the view (projected to shared vars).
    bool changed = false;
    VarRelation kept = Semijoin(required, provided, &changed);
    if (changed) {
      if (why != nullptr) {
        *why = "view " + std::to_string(v) + " is more restrictive than Q";
      }
      return false;
    }
  }
  return true;
}

}  // namespace sharpcq
