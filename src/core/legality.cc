#include "core/legality.h"

#include "algebra/rel.h"
#include "core/materialize.h"
#include "query/atom_relation.h"
#include "util/check.h"

namespace sharpcq {

namespace {

// Full evaluation of q on db by join-project (diagnostic path).
Rel EvaluateFull(const ConjunctiveQuery& q, const Database& db) {
  std::vector<Rel> rels;
  rels.reserve(q.NumAtoms());
  for (const Atom& a : q.atoms()) rels.push_back(AtomToRel(a, db));
  SHARPCQ_CHECK(!rels.empty());
  Rel acc = std::move(rels.back());
  rels.pop_back();
  while (!rels.empty()) {
    std::size_t pick = 0;
    for (std::size_t i = 0; i < rels.size(); ++i) {
      if (rels[i].vars().Intersects(acc.vars())) {
        pick = i;
        break;
      }
    }
    acc = Join(acc, rels[pick]);
    rels.erase(rels.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return acc;
}

}  // namespace

bool IsLegalViewDatabase(const ConjunctiveQuery& q, const ViewSet& views,
                         const Database& db, std::string* why) {
  Rel solutions = EvaluateFull(q, db);
  for (std::size_t v = 0; v < views.size(); ++v) {
    IdSet view_vars = Intersect(views.vars[v], solutions.vars());
    Rel required = Project(solutions, view_vars);
    Rel provided = MaterializeViewRel(views, v, q, db);
    // required must be a subset of the view (projected to shared vars).
    bool changed = false;
    Rel kept = Semijoin(required, provided, &changed);
    if (changed) {
      if (why != nullptr) {
        *why = "view " + std::to_string(v) + " is more restrictive than Q";
      }
      return false;
    }
  }
  return true;
}

}  // namespace sharpcq
