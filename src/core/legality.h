#ifndef SHARPCQ_CORE_LEGALITY_H_
#define SHARPCQ_CORE_LEGALITY_H_

#include <string>

#include "data/database.h"
#include "decomp/views.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// Legality of a view database (Section 3): a database is legal on V w.r.t.
// Q when every view relation contains at least the projection of Q's
// solutions onto the view's variables — views must not be more restrictive
// than the query, or answers would be lost. (V^k views materialized by this
// library are legal by construction: they are joins of subsets of Q's
// atoms.)
//
// Diagnostic/test utility: evaluates Q by join-project, so it costs as much
// as answering the query; use it to validate hand-supplied named views, not
// in production paths.
bool IsLegalViewDatabase(const ConjunctiveQuery& q, const ViewSet& views,
                         const Database& db, std::string* why = nullptr);

}  // namespace sharpcq

#endif  // SHARPCQ_CORE_LEGALITY_H_
