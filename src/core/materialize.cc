#include "core/materialize.h"

#include "query/atom_relation.h"
#include "util/check.h"

namespace sharpcq {

Rel MaterializeViewRel(const ViewSet& views, std::size_t view_id,
                       const ConjunctiveQuery& guard_query,
                       const Database& db) {
  const std::vector<int>& guard = views.guards[view_id];
  if (guard.empty()) {
    SHARPCQ_CHECK_MSG(views.HasName(view_id),
                      "abstract view has neither guards nor a relation");
    const Relation& stored = db.relation(views.names[view_id]);
    SHARPCQ_CHECK_MSG(
        stored.arity() == static_cast<int>(views.vars[view_id].size()),
        "named view arity mismatch");
    TableBuilder builder(stored.arity());
    builder.ReserveRows(stored.size());
    for (std::size_t i = 0; i < stored.size(); ++i) {
      builder.AddRow(stored.Row(i));
    }
    return Rel(views.vars[view_id], std::move(builder).Build());
  }
  Rel joined = AtomToRel(
      guard_query.atoms()[static_cast<std::size_t>(guard[0])], db);
  for (std::size_t g = 1; g < guard.size(); ++g) {
    joined = Join(joined,
                  AtomToRel(
                      guard_query.atoms()[static_cast<std::size_t>(guard[g])],
                      db));
  }
  return joined;
}

VarRelation MaterializeView(const ViewSet& views, std::size_t view_id,
                            const ConjunctiveQuery& guard_query,
                            const Database& db) {
  return ToVarRelation(MaterializeViewRel(views, view_id, guard_query, db));
}

JoinTreeInstance MaterializeBags(const ConjunctiveQuery& core,
                                 const ConjunctiveQuery& guard_query,
                                 const Database& db, const BagTree& tree,
                                 const ViewSet& views) {
  JoinTreeInstance instance;
  instance.shape = tree.shape;
  instance.nodes.reserve(tree.bags.size());

  for (std::size_t v = 0; v < tree.bags.size(); ++v) {
    Rel view_rel = MaterializeViewRel(
        views, static_cast<std::size_t>(tree.view_ids[v]), guard_query, db);
    SHARPCQ_CHECK_MSG(tree.bags[v].IsSubsetOf(view_rel.vars()),
                      "bag not guarded by its view");
    instance.nodes.push_back(Project(view_rel, tree.bags[v]));
  }

  // Assign every core atom to the first bag covering it and enforce it
  // there (the decomposition completion of the Theorem 6.2 proof).
  for (const Atom& atom : core.atoms()) {
    IdSet vars = atom.Vars();
    bool assigned = false;
    for (std::size_t v = 0; v < tree.bags.size() && !assigned; ++v) {
      if (!vars.IsSubsetOf(tree.bags[v])) continue;
      instance.nodes[v] =
          Semijoin(instance.nodes[v], AtomToRel(atom, db));
      assigned = true;
    }
    SHARPCQ_CHECK_MSG(assigned, "core atom not covered by any bag");
  }
  return instance;
}

}  // namespace sharpcq
