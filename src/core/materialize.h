#ifndef SHARPCQ_CORE_MATERIALIZE_H_
#define SHARPCQ_CORE_MATERIALIZE_H_

#include "count/join_tree_instance.h"
#include "data/database.h"
#include "decomp/tree_projection.h"
#include "decomp/views.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// The relation of one view over `db`: the join of its guard atoms (from
// `guard_query`) for V^k-style views, or the stored relation for named
// views (columns in ascending-VarId order). Aborts on purely abstract views.
// The kernel form is primary; MaterializeView is the legacy by-value shim.
Rel MaterializeViewRel(const ViewSet& views, std::size_t view_id,
                       const ConjunctiveQuery& guard_query,
                       const Database& db);
VarRelation MaterializeView(const ViewSet& views, std::size_t view_id,
                            const ConjunctiveQuery& guard_query,
                            const Database& db);

// Materializes the bags of a decomposition into an acyclic instance whose
// solutions are exactly those of `core` on `db`:
//
//   bag relation r_v = pi_{chi(v)}( view relation of v's guard )
//                      semijoined with every core atom assigned to v.
//
// Guard atom indices refer to `guard_query` (the original query Q the views
// were built from; its joins are legal for the colored core — see
// DESIGN.md); named views read their relation from `db`, which must be
// legal w.r.t. the query (core/legality.h). Every atom of `core` must be
// covered by some bag; each is assigned to the first covering bag and
// enforced there via a semijoin, so the instance is a *complete*
// decomposition of `core`.
JoinTreeInstance MaterializeBags(const ConjunctiveQuery& core,
                                 const ConjunctiveQuery& guard_query,
                                 const Database& db, const BagTree& tree,
                                 const ViewSet& views);

}  // namespace sharpcq

#endif  // SHARPCQ_CORE_MATERIALIZE_H_
