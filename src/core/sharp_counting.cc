#include "core/sharp_counting.h"

#include "core/materialize.h"
#include "count/enumeration.h"
#include "count/join_tree_instance.h"
#include "util/trace.h"

namespace sharpcq {

const char* CountStatusName(CountStatus status) {
  switch (status) {
    case CountStatus::kOk:
      return "OK";
    case CountStatus::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case CountStatus::kCancelled:
      return "CANCELLED";
    case CountStatus::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

CountResult CountViaSharpDecomposition(const ConjunctiveQuery& q,
                                       const Database& db,
                                       const SharpDecomposition& d) {
  CountResult result;
  result.method = "#-decomposition";
  result.width = d.width;

  JoinTreeInstance instance;
  {
    TraceSpan span("materialize_bags");
    instance = MaterializeBags(d.core, q, db, d.tree, d.views);
    span.NoteCount("bags", instance.nodes.size());
  }
  // Cost-model rewrite (no-op without a cost_model policy); both branches
  // below — the root-count-only DP and the FullReduce pipeline — are exact
  // for any rooting and child order of the materialized tree.
  OptimizeInstanceOrder(&instance);
  if (instance.AllVars().IsSubsetOf(q.free_vars())) {
    // No existential variables to project away: only the root count is
    // needed, and CountFullJoin's zero-weight rows already neutralize
    // dangling tuples — the FullReduce semijoin materializations would be
    // pure overhead.
    result.count = CountFullJoin(instance);
    return result;
  }
  // With existential variables the bags must be globally consistent BEFORE
  // the projection (a dangling tuple could otherwise survive projection and
  // join into a spurious free-variable assignment), so the full reducer
  // stays on this path.
  if (!FullReduce(&instance)) {
    result.count = 0;
    return result;
  }
  JoinTreeInstance restricted;
  {
    TraceSpan span("restrict_to_free_vars");
    restricted = RestrictToVars(instance, q.free_vars());
  }
  result.count = CountFullJoin(restricted);
  return result;
}

std::optional<CountResult> CountBySharpHypertree(const ConjunctiveQuery& q,
                                                 const Database& db, int k,
                                                 std::size_t max_cores) {
  std::optional<SharpDecomposition> d =
      FindSharpHypertreeDecomposition(q, k, max_cores);
  if (!d.has_value()) return std::nullopt;
  CountResult result = CountViaSharpDecomposition(q, db, *d);
  result.method = "#-hypertree(k=" + std::to_string(k) + ")";
  return result;
}

// CountAnswers is defined in engine/legacy_facades.cc: it delegates to the
// engine layer, which sits above this one.

}  // namespace sharpcq
