#ifndef SHARPCQ_CORE_SHARP_COUNTING_H_
#define SHARPCQ_CORE_SHARP_COUNTING_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/sharp_decomposition.h"
#include "data/database.h"
#include "query/conjunctive_query.h"
#include "util/count_int.h"

namespace sharpcq {

// How a counting call ended. Only the engine layer produces non-kOk
// values: a Count given a CancelToken whose deadline expired (or that was
// cancelled outright) stops at the next morsel boundary or strategy
// checkpoint, and a Count whose memory budget refused an allocation stops
// at the allocation site — either way `count` is then meaningless.
enum class CountStatus : std::uint8_t {
  kOk,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
};

const char* CountStatusName(CountStatus status);

// Outcome of a counting call, with provenance for diagnostics and the
// experiment harness.
struct CountResult {
  CountInt count = 0;
  std::string method;  // e.g. "#-hypertree(k=2)", "backtracking"
  int width = 0;       // decomposition width used (0 for brute force)
  CountStatus status = CountStatus::kOk;
  bool ok() const { return status == CountStatus::kOk; }

  // Engine provenance (filled by the src/engine/ layer; zero elsewhere):
  // wall time spent choosing the strategy vs. materializing the count, and
  // whether planning was answered from the plan cache.
  double planner_ms = 0.0;
  double execute_ms = 0.0;
  bool cache_hit = false;

  // Sharded plan-cache provenance: the shard this call's lookup hashed to,
  // and that shard's cumulative hit/miss counters snapshotted under the
  // shard lock immediately after the lookup (engine/plan_cache.h).
  std::size_t cache_shard = 0;
  std::size_t cache_shard_hits = 0;
  std::size_t cache_shard_misses = 0;

  // Cost-model provenance (engine layer): whether the executed plan or any
  // runtime scheduling decision was steered by data statistics —
  // `cost_model_steered` is true when the planner's strategy tie-break
  // fired or `cost_reorders` (join-tree re-rootings, child reorderings,
  // non-FIFO consistency scheduling) is nonzero. Both zero/false when
  // EngineOptions::enable_cost_model is off. Counts never depend on it.
  bool cost_model_steered = false;
  std::uint64_t cost_reorders = 0;

  // Miss-filter provenance (engine layer): of the probes this execution
  // issued, how many the per-index miss filters resolved as definite misses
  // without touching a slot table (`filter_hits`) and how many went on to
  // the slot walk (`filter_passes`). Accumulated in the execution's own
  // ExecStats sink (algebra/exec_policy.h), so concurrent executions each
  // report exactly their own probes. Both zero when
  // EngineOptions::enable_probe_filters is false.
  std::uint64_t filter_hits = 0;
  std::uint64_t filter_passes = 0;

  // Scheduling provenance (engine layer): morsel chunks the kernel's probe
  // loops dispatched, and semijoin relaxations the pairwise-consistency
  // worklist ran (0 on acyclic schemas, which take the two-pass reducer).
  std::uint64_t morsels = 0;
  std::uint64_t worklist_iterations = 0;

  // Memory-budget provenance (engine layer): bytes the execution charged
  // against its budget (0 when no budget was configured). On
  // kResourceExhausted, the size of the refused allocation.
  std::uint64_t mem_charged_bytes = 0;
  std::uint64_t mem_refused_bytes = 0;
};

// The Theorem 3.7 algorithm, given a #-decomposition: materializes the
// decomposition's bags over db, runs the full reducer (local consistency on
// the acyclic instance = global consistency), restricts the bags to the
// free variables, and counts the resulting full acyclic join. Polynomial in
// ||Q||, ||D||, ||Ha|| for fixed width. Correct because the tree covers the
// frontier hypergraph — see DESIGN.md for the equivalence with the paper's
// construction.
CountResult CountViaSharpDecomposition(const ConjunctiveQuery& q,
                                       const Database& db,
                                       const SharpDecomposition& d);

// Theorem 1.3 for a concrete width: computes a colored core, searches a
// width-k #-hypertree decomposition, and counts. Returns nullopt when q has
// no width-k #-hypertree decomposition (promise violated).
std::optional<CountResult> CountBySharpHypertree(const ConjunctiveQuery& q,
                                                 const Database& db, int k,
                                                 std::size_t max_cores = 8);

struct CountOptions {
  int max_width = 3;          // largest #-hypertree width to attempt
  std::size_t max_cores = 8;  // substructure cores to try per width
};

// DEPRECATED legacy facade: tries #-hypertree decompositions of width 1..
// max_width and falls back to the backtracking baseline when the query has
// no bounded-width decomposition. Always returns the exact count.
//
// This is now a thin wrapper over the unified plan/execute engine
// (engine/engine.h), sharing its process-wide plan cache; new code should
// construct a CountingEngine directly, which also unlocks the acyclic-PS13
// and hybrid #b strategies this facade keeps disabled for compatibility.
CountResult CountAnswers(const ConjunctiveQuery& q, const Database& db,
                         const CountOptions& options = {});

}  // namespace sharpcq

#endif  // SHARPCQ_CORE_SHARP_COUNTING_H_
