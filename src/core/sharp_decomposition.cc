#include "core/sharp_decomposition.h"

#include "hypergraph/hypergraph.h"
#include "solver/core.h"

namespace sharpcq {

std::vector<IdSet> SharpCoverEdges(const ConjunctiveQuery& core,
                                   const IdSet& w) {
  Hypergraph hq = core.BuildHypergraph();
  Hypergraph fh = FrontierHypergraph(hq, w);

  Hypergraph combined = hq;
  for (const IdSet& e : fh.edges()) combined.AddEdge(e);
  // The color atoms of the colored core contribute singleton edges {X} for
  // every colored variable; they guarantee every output variable occurs in
  // some bag.
  for (std::uint32_t x : w) combined.AddEdge(IdSet{x});
  combined.DedupEdges();
  return combined.edges();
}

namespace {

std::optional<SharpDecomposition> TryCore(ConjunctiveQuery core,
                                          const IdSet& free,
                                          const ViewSet& views) {
  std::vector<IdSet> cover = SharpCoverEdges(core, free);
  auto projection = FindTreeProjection(cover, views);
  if (!projection.has_value()) return std::nullopt;
  SharpDecomposition d;
  d.core = std::move(core);
  d.tree = std::move(projection->tree);
  d.views = views;
  d.width = d.tree.Width(views);
  return d;
}

}  // namespace

std::optional<SharpDecomposition> FindSharpDecomposition(
    const ConjunctiveQuery& q, const ViewSet& views, std::size_t max_cores) {
  // Fast path: the greedy core usually works; full core enumeration (which
  // is exponential in the query) only runs when the first core fails
  // against the views (Example 3.5).
  std::optional<SharpDecomposition> first =
      TryCore(ComputeColoredCore(q), q.free_vars(), views);
  if (first.has_value() || max_cores <= 1) return first;

  bool skipped_first = false;
  for (ConjunctiveQuery& core : EnumerateColoredCores(q, max_cores)) {
    if (!skipped_first) {
      // The first enumerated core is the greedy one, already tried.
      skipped_first = true;
      continue;
    }
    std::optional<SharpDecomposition> d =
        TryCore(std::move(core), q.free_vars(), views);
    if (d.has_value()) return d;
  }
  return std::nullopt;
}

std::optional<SharpDecomposition> FindSharpHypertreeDecomposition(
    const ConjunctiveQuery& q, int k, std::size_t max_cores) {
  return FindSharpDecomposition(q, BuildVk(q, k), max_cores);
}

std::optional<int> SharpHypertreeWidth(const ConjunctiveQuery& q, int k_max) {
  for (int k = 1; k <= k_max; ++k) {
    if (FindSharpHypertreeDecomposition(q, k).has_value()) return k;
  }
  return std::nullopt;
}

}  // namespace sharpcq
