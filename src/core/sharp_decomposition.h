#ifndef SHARPCQ_CORE_SHARP_DECOMPOSITION_H_
#define SHARPCQ_CORE_SHARP_DECOMPOSITION_H_

#include <optional>
#include <vector>

#include "decomp/tree_projection.h"
#include "decomp/views.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// The paper's primary structural notion.
//
// A #-decomposition of Q w.r.t. a view set V (Definition 1.4) is a tree
// projection Ha with HQ' <= Ha <= HV that also covers the frontier
// hypergraph FH(Q', free(Q)), where Q' is *some* core of color(Q).
// A #-hypertree decomposition of width k (Definition 1.2) is the special
// case V = V^k_Q.

// The combined hypergraph H' of Theorem 3.6: the hyperedges of the core's
// hypergraph, the frontier hyperedges FH(core, w), and a singleton {X} for
// every X in w (the color atoms' edges). Covering H' is equivalent to
// covering both HQ' and the frontier hypergraph.
std::vector<IdSet> SharpCoverEdges(const ConjunctiveQuery& core,
                                   const IdSet& w);

struct SharpDecomposition {
  // The uncolored core Q' of color(Q) that the decomposition is based on.
  ConjunctiveQuery core;
  // The tree projection (bags + guard views) covering HQ' and FH.
  BagTree tree;
  // The views used; guards index into the *original* query's atoms.
  ViewSet views;
  // max guard size (= k for V^k views; 1 for abstract views).
  int width = 0;
};

// Definition 1.4 / Theorem 3.6: #-decomposition w.r.t. an arbitrary view
// set. Different substructure cores behave differently w.r.t. views
// (Example 3.5), so up to `max_cores` cores are tried. Returns nullopt if
// no tried core admits a tree projection.
std::optional<SharpDecomposition> FindSharpDecomposition(
    const ConjunctiveQuery& q, const ViewSet& views,
    std::size_t max_cores = 8);

// Definition 1.2: width-k #-hypertree decomposition (views V^k_Q).
std::optional<SharpDecomposition> FindSharpHypertreeDecomposition(
    const ConjunctiveQuery& q, int k, std::size_t max_cores = 8);

// The #-hypertree width of q, searched up to k_max (the smallest k
// admitting a width-k #-hypertree decomposition); nullopt if none exists
// within the budget. Width is measured in the normal-form search of
// decomp/tree_projection.h.
std::optional<int> SharpHypertreeWidth(const ConjunctiveQuery& q, int k_max);

}  // namespace sharpcq

#endif  // SHARPCQ_CORE_SHARP_DECOMPOSITION_H_
