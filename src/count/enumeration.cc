#include "count/enumeration.h"

#include <algorithm>
#include <memory>

#include "algebra/exec_policy.h"
#include "algebra/rel.h"
#include "data/var_relation.h"
#include "query/atom_relation.h"
#include "util/check.h"

namespace sharpcq {

namespace {

// Joins the given relations in a connectivity-aware order: always prefer a
// relation sharing variables with the accumulated result (avoiding
// accidental cartesian products when possible).
Rel JoinAll(std::vector<Rel> rels) {
  SHARPCQ_CHECK(!rels.empty());
  Rel acc = std::move(rels.back());
  rels.pop_back();
  while (!rels.empty()) {
    std::size_t pick = rels.size();
    for (std::size_t i = 0; i < rels.size(); ++i) {
      if (rels[i].vars().Intersects(acc.vars())) {
        pick = i;
        break;
      }
    }
    if (pick == rels.size()) pick = 0;  // disconnected: cartesian product
    acc = Join(acc, rels[pick]);
    rels.erase(rels.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return acc;
}

// Variable-oriented backtracking counter. Deliberately stays on the legacy
// VarRelation representation: this is the independent oracle the kernel's
// differential tests are judged against.
class BacktrackCounter {
 public:
  BacktrackCounter(const ConjunctiveQuery& q, const Database& db) : q_(q) {
    for (const Atom& a : q.atoms()) {
      atom_rels_.push_back(AtomToVarRelation(a, db));
    }
    // Variable order: free variables first, then existential; within each
    // group, ascending id.
    for (VarId v : q.free_vars()) order_.push_back(v);
    num_free_ = order_.size();
    for (VarId v : q.ExistentialVars()) order_.push_back(v);

    // Per-variable: atoms containing it.
    for (std::size_t i = 0; i < atom_rels_.size(); ++i) {
      for (VarId v : atom_rels_[i].vars()) {
        atoms_of_[v].push_back(i);
      }
    }
    bound_.assign(q.name_table()->names.size(), false);
    value_.assign(q.name_table()->names.size(), 0);
  }

  CountInt Count() {
    for (const VarRelation& r : atom_rels_) {
      if (r.empty()) return 0;
    }
    CountInt count = 0;
    Recurse(0, &count);
    return count;
  }

 private:
  // True if atom `i` has a row consistent with the current partial
  // assignment (checking only bound variables).
  bool AtomConsistent(std::size_t i) const {
    const VarRelation& r = atom_rels_[i];
    for (std::size_t row = 0; row < r.size(); ++row) {
      if (RowMatches(r, row)) return true;
    }
    return false;
  }

  bool RowMatches(const VarRelation& r, std::size_t row) const {
    auto tuple = r.rel().Row(row);
    std::size_t c = 0;
    for (VarId v : r.vars()) {
      if (bound_[v] && tuple[c] != value_[v]) return false;
      ++c;
    }
    return true;
  }

  // Deadline/cancellation checkpoint, amortized: the backtracking search
  // can run for seconds without ever touching a morselized probe loop, so
  // it polls the execution's cancel token itself every 4096 tree nodes.
  void MaybeCheckInterrupt() {
    if ((++interrupt_tick_ & 0xFFFu) == 0) CheckExecInterrupt();
  }

  // Counts answers below the current partial assignment of order_[0..pos).
  // Only called with pos <= num_free_.
  void Recurse(std::size_t pos, CountInt* count) {
    MaybeCheckInterrupt();
    if (pos == num_free_) {
      // All free variables bound: this is an answer iff the existential
      // suffix has at least one witness (found with early exit).
      if (ExistsExtension(pos)) ++*count;
      return;
    }
    VarId v = order_[pos];
    for (Value candidate : Candidates(v)) {
      bound_[v] = true;
      value_[v] = candidate;
      if (ConsistentAround(v)) Recurse(pos + 1, count);
      bound_[v] = false;
    }
  }

  bool ExistsExtension(std::size_t pos) {
    MaybeCheckInterrupt();
    if (pos == order_.size()) return true;
    VarId v = order_[pos];
    for (Value candidate : Candidates(v)) {
      bound_[v] = true;
      value_[v] = candidate;
      bool ok = ConsistentAround(v) && ExistsExtension(pos + 1);
      bound_[v] = false;
      if (ok) return true;
    }
    return false;
  }

  // Candidate values for `v`: distinct values in the smallest atom relation
  // containing v, filtered by the current assignment.
  std::vector<Value> Candidates(VarId v) const {
    auto it = atoms_of_.find(v);
    SHARPCQ_CHECK_MSG(it != atoms_of_.end(),
                      "variable occurs in no atom");
    std::size_t best = it->second[0];
    for (std::size_t i : it->second) {
      if (atom_rels_[i].size() < atom_rels_[best].size()) best = i;
    }
    const VarRelation& r = atom_rels_[best];
    int col = r.ColumnOf(v);
    std::vector<Value> values;
    for (std::size_t row = 0; row < r.size(); ++row) {
      if (RowMatches(r, row)) {
        values.push_back(r.rel().Row(row)[static_cast<std::size_t>(col)]);
      }
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    return values;
  }

  // Forward check: every atom containing `v` must still have a consistent
  // row.
  bool ConsistentAround(VarId v) const {
    for (std::size_t i : atoms_of_.at(v)) {
      if (!AtomConsistent(i)) return false;
    }
    return true;
  }

  const ConjunctiveQuery& q_;
  std::vector<VarRelation> atom_rels_;
  std::vector<VarId> order_;
  std::size_t num_free_ = 0;
  std::unordered_map<VarId, std::vector<std::size_t>> atoms_of_;
  std::vector<bool> bound_;
  std::vector<Value> value_;
  std::uint32_t interrupt_tick_ = 0;
};

}  // namespace

CountInt CountByJoinProject(const ConjunctiveQuery& q, const Database& db) {
  std::vector<Rel> rels;
  rels.reserve(q.NumAtoms());
  for (const Atom& a : q.atoms()) rels.push_back(AtomToRel(a, db));
  SHARPCQ_CHECK_MSG(!rels.empty(), "query has no atoms");
  Rel joined = JoinAll(std::move(rels));
  // Counted projection: the distinct-key count streams off the group index,
  // never materializing the deduplicated projection.
  return DistinctCount(joined, Intersect(joined.vars(), q.free_vars()));
}

CountInt CountByBacktracking(const ConjunctiveQuery& q, const Database& db) {
  BacktrackCounter counter(q, db);
  return counter.Count();
}

}  // namespace sharpcq
