#ifndef SHARPCQ_COUNT_ENUMERATION_H_
#define SHARPCQ_COUNT_ENUMERATION_H_

#include "data/database.h"
#include "query/conjunctive_query.h"
#include "util/count_int.h"

namespace sharpcq {

// Baseline counters (Section 1.1: "the straightforward approach ... incurs
// an exponential cost"). Used as ground truth in property tests and as the
// comparison baselines in the benchmarks.

// Materializes the full join of all atom relations, then counts the
// projection onto the free variables. Time and memory exponential in the
// query size in the worst case.
CountInt CountByJoinProject(const ConjunctiveQuery& q, const Database& db);

// Backtracking over variables, free variables first; counts distinct free
// assignments, searching only one witness extension over the existential
// variables per answer (the enumerate-with-projection baseline of GS13).
CountInt CountByBacktracking(const ConjunctiveQuery& q, const Database& db);

}  // namespace sharpcq

#endif  // SHARPCQ_COUNT_ENUMERATION_H_
