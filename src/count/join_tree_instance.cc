#include "count/join_tree_instance.h"

#include "algebra/exec_policy.h"
#include "util/check.h"

namespace sharpcq {

bool FullReduce(JoinTreeInstance* instance) {
  std::vector<int> order = instance->shape.TopoOrder();
  // Upward pass: parents semijoined with children, leaves first. The
  // per-node checkpoint covers deadline expiry on trees whose individual
  // semijoins are below the morsel threshold.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::size_t v = static_cast<std::size_t>(*it);
    CheckExecInterrupt();
    for (int c : instance->shape.children[v]) {
      instance->nodes[v] = Semijoin(instance->nodes[v],
                                    instance->nodes[static_cast<std::size_t>(c)]);
    }
    if (instance->nodes[v].empty()) return false;
  }
  // Downward pass: children semijoined with parents, root first.
  for (int v : order) {
    CheckExecInterrupt();
    for (int c : instance->shape.children[static_cast<std::size_t>(v)]) {
      instance->nodes[static_cast<std::size_t>(c)] =
          Semijoin(instance->nodes[static_cast<std::size_t>(c)],
                   instance->nodes[static_cast<std::size_t>(v)]);
      if (instance->nodes[static_cast<std::size_t>(c)].empty()) return false;
    }
  }
  return true;
}

CountInt CountFullJoin(const JoinTreeInstance& instance) {
  if (instance.nodes.empty()) return 1;  // the empty join has one solution

  std::vector<int> order = instance.shape.TopoOrder();
  // weights[v][row] = number of distinct extensions of that row to the
  // variables occurring strictly below v. Rows with no extension carry
  // weight 0, which is why the instance does not need a FullReduce first:
  // dangling tuples contribute nothing to any sum.
  std::vector<std::vector<CountInt>> weights(instance.nodes.size());

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::size_t v = static_cast<std::size_t>(*it);
    const Rel& rel = instance.nodes[v];
    std::vector<CountInt>& w = weights[v];
    w.assign(rel.size(), CountInt{1});

    for (int child : instance.shape.children[v]) {
      std::size_t c = static_cast<std::size_t>(child);
      const Rel& crel = instance.nodes[c];
      IdSet shared = Intersect(rel.vars(), crel.vars());

      // Aggregate child weights per shared-key via the child's cached
      // index: each parent row probes one packed word, and large parent
      // sides are morselized (each morsel writes disjoint w[row] slots, so
      // the only shared state is read-only).
      std::shared_ptr<const TableIndex> index =
          crel.table()->IndexOn(ColumnsOf(crel, shared));
      std::vector<int> parent_cols = ColumnsOf(rel, shared);
      const Table& parent_table = *rel.table();
      const std::vector<CountInt>& cw = weights[c];

      MorselPlan plan = PlanMorsels(rel.size());
      RunMorsels(plan, rel.size(), [&](std::size_t, std::size_t begin,
                                       std::size_t end) {
        ForEachProbeGroupUnless(
            *index, parent_table, parent_cols, begin, end,
            // Rows an earlier child already zeroed skip the probe itself —
            // on unreduced instances (the FullReduce-skip path) most rows
            // of a selective chain die at the first child.
            [&](std::size_t row) { return w[row] == 0; },
            [&](std::size_t row, std::uint32_t group) {
              if (group == TableIndex::kNoGroup) {
                w[row] = 0;
                return;
              }
              CountInt sum = 0;
              for (std::uint32_t crow : index->group_rows(group)) {
                sum += cw[crow];
              }
              w[row] *= sum;
            });
      });
      weights[c].clear();  // release
      weights[c].shrink_to_fit();
    }
  }

  CountInt total = 0;
  std::size_t root = static_cast<std::size_t>(instance.shape.root);
  for (CountInt w : weights[root]) total += w;
  return total;
}

JoinTreeInstance RestrictToVars(const JoinTreeInstance& instance,
                                const IdSet& keep) {
  JoinTreeInstance out;
  out.shape = instance.shape;
  out.nodes.reserve(instance.nodes.size());
  for (const Rel& n : instance.nodes) {
    out.nodes.push_back(Project(n, Intersect(n.vars(), keep)));
  }
  return out;
}

}  // namespace sharpcq
