#include "count/join_tree_instance.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "algebra/exec_policy.h"
#include "util/check.h"
#include "util/trace.h"

namespace sharpcq {

namespace {

// Summed child-side row counts of the tree rooted at `root`, writing the
// orientation into *parent (-1 for the root). BFS over the undirected
// adjacency; the instance's shape is always connected (TopoOrder asserts
// it), so every vertex is reached.
//
// Why the child side: FullReduce charges an edge (p, c) roughly
// size(p) upward probes + size(c) child index build + size(c) downward
// probes.  Summed over all edges, the size(p) + size(c) part is the same
// for every orientation, so rootings differ only in the extra size(child)
// term — the best root keeps big relations on the parent (probe) side and
// small ones on the child (build) side.
std::uint64_t RootingCost(const std::vector<std::vector<int>>& adj,
                          const std::vector<Rel>& nodes, int root,
                          std::vector<int>* parent) {
  parent->assign(nodes.size(), -2);
  (*parent)[static_cast<std::size_t>(root)] = -1;
  std::vector<int> queue{root};
  std::uint64_t cost = 0;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const int v = queue[i];
    for (int u : adj[static_cast<std::size_t>(v)]) {
      if ((*parent)[static_cast<std::size_t>(u)] != -2) continue;
      (*parent)[static_cast<std::size_t>(u)] = v;
      cost += nodes[static_cast<std::size_t>(u)].size();
      queue.push_back(u);
    }
  }
  return cost;
}

}  // namespace

void OptimizeInstanceOrder(JoinTreeInstance* instance) {
  const ExecPolicy* policy = CurrentExecPolicy();
  if (policy == nullptr || !policy->cost_model) return;
  const std::size_t n = instance->nodes.size();
  if (n < 2) return;

  std::vector<std::vector<int>> adj(n);
  for (std::size_t v = 0; v < n; ++v) {
    const int p = instance->shape.parent[v];
    if (p < 0) continue;
    adj[v].push_back(p);
    adj[static_cast<std::size_t>(p)].push_back(static_cast<int>(v));
  }

  // Exact best rooting, seeded with the current root so ties never move
  // anything (deterministic, and a uniform instance stays untouched).
  const int old_root = instance->shape.root;
  std::vector<int> parent;
  std::vector<int> best_parent;
  std::uint64_t best_cost =
      RootingCost(adj, instance->nodes, old_root, &best_parent);
  int best_root = old_root;
  for (std::size_t r = 0; r < n; ++r) {
    if (static_cast<int>(r) == old_root) continue;
    const std::uint64_t cost =
        RootingCost(adj, instance->nodes, static_cast<int>(r), &parent);
    if (cost < best_cost) {
      best_cost = cost;
      best_root = static_cast<int>(r);
      best_parent = parent;
    }
  }

  bool changed = best_root != old_root;
  if (changed) instance->shape = TreeShape::FromParents(best_parent);

  // Most-selective child first: ascending estimated shared-key distinct
  // count, child index breaking ties (FromParents emits ascending index
  // order, so the comparison below is stable across runs).
  std::vector<std::pair<std::uint64_t, int>> keyed;
  for (std::size_t v = 0; v < n; ++v) {
    std::vector<int>& kids = instance->shape.children[v];
    if (kids.size() < 2) continue;
    keyed.clear();
    for (int c : kids) {
      const Rel& child = instance->nodes[static_cast<std::size_t>(c)];
      const IdSet shared = Intersect(instance->nodes[v].vars(), child.vars());
      keyed.emplace_back(EstimatedDistinctCount(child, shared), c);
    }
    std::sort(keyed.begin(), keyed.end());
    for (std::size_t i = 0; i < kids.size(); ++i) {
      if (kids[i] != keyed[i].second) changed = true;
      kids[i] = keyed[i].second;
    }
  }

  if (changed) {
    if (ExecStats* stats = CurrentExecStats()) {
      stats->cost_reorders.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool FullReduce(JoinTreeInstance* instance) {
  TraceSpan span("full_reduce");
  span.NoteCount("nodes", instance->nodes.size());
  std::vector<int> order = instance->shape.TopoOrder();
  // Upward pass: parents semijoined with children, leaves first. The
  // per-node checkpoint covers deadline expiry on trees whose individual
  // semijoins are below the morsel threshold.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::size_t v = static_cast<std::size_t>(*it);
    CheckExecInterrupt();
    for (int c : instance->shape.children[v]) {
      instance->nodes[v] = Semijoin(instance->nodes[v],
                                    instance->nodes[static_cast<std::size_t>(c)]);
    }
    if (instance->nodes[v].empty()) return false;
  }
  // Downward pass: children semijoined with parents, root first.
  for (int v : order) {
    CheckExecInterrupt();
    for (int c : instance->shape.children[static_cast<std::size_t>(v)]) {
      instance->nodes[static_cast<std::size_t>(c)] =
          Semijoin(instance->nodes[static_cast<std::size_t>(c)],
                   instance->nodes[static_cast<std::size_t>(v)]);
      if (instance->nodes[static_cast<std::size_t>(c)].empty()) return false;
    }
  }
  return true;
}

CountInt CountFullJoin(const JoinTreeInstance& instance) {
  TraceSpan span("count_full_join");
  span.NoteCount("nodes", instance.nodes.size());
  if (instance.nodes.empty()) return 1;  // the empty join has one solution

  std::vector<int> order = instance.shape.TopoOrder();
  // weights[v][row] = number of distinct extensions of that row to the
  // variables occurring strictly below v. Rows with no extension carry
  // weight 0, which is why the instance does not need a FullReduce first:
  // dangling tuples contribute nothing to any sum.
  std::vector<std::vector<CountInt>> weights(instance.nodes.size());

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::size_t v = static_cast<std::size_t>(*it);
    const Rel& rel = instance.nodes[v];
    std::vector<CountInt>& w = weights[v];
    w.assign(rel.size(), CountInt{1});

    for (int child : instance.shape.children[v]) {
      std::size_t c = static_cast<std::size_t>(child);
      const Rel& crel = instance.nodes[c];
      IdSet shared = Intersect(rel.vars(), crel.vars());

      // Aggregate child weights per shared-key via the child's cached
      // index: each parent row probes one packed word, and large parent
      // sides are morselized (each morsel writes disjoint w[row] slots, so
      // the only shared state is read-only).
      std::shared_ptr<const TableIndex> index =
          crel.table()->IndexOn(ColumnsOf(crel, shared));
      std::vector<int> parent_cols = ColumnsOf(rel, shared);
      const Table& parent_table = *rel.table();
      const std::vector<CountInt>& cw = weights[c];

      MorselPlan plan = PlanMorsels(rel.size(), index->num_groups());
      RunMorsels(plan, rel.size(), [&](std::size_t, std::size_t begin,
                                       std::size_t end) {
        ForEachProbeGroupUnless(
            *index, parent_table, parent_cols, begin, end,
            // Rows an earlier child already zeroed skip the probe itself —
            // on unreduced instances (the FullReduce-skip path) most rows
            // of a selective chain die at the first child.
            [&](std::size_t row) { return w[row] == 0; },
            [&](std::size_t row, std::uint32_t group) {
              if (group == TableIndex::kNoGroup) {
                w[row] = 0;
                return;
              }
              CountInt sum = 0;
              for (std::uint32_t crow : index->group_rows(group)) {
                sum += cw[crow];
              }
              w[row] *= sum;
            });
      });
      weights[c].clear();  // release
      weights[c].shrink_to_fit();
    }
  }

  CountInt total = 0;
  std::size_t root = static_cast<std::size_t>(instance.shape.root);
  for (CountInt w : weights[root]) total += w;
  return total;
}

JoinTreeInstance RestrictToVars(const JoinTreeInstance& instance,
                                const IdSet& keep) {
  JoinTreeInstance out;
  out.shape = instance.shape;
  out.nodes.reserve(instance.nodes.size());
  for (const Rel& n : instance.nodes) {
    out.nodes.push_back(Project(n, Intersect(n.vars(), keep)));
  }
  return out;
}

}  // namespace sharpcq
