#ifndef SHARPCQ_COUNT_JOIN_TREE_INSTANCE_H_
#define SHARPCQ_COUNT_JOIN_TREE_INSTANCE_H_

#include <vector>

#include "algebra/rel.h"
#include "hypergraph/tree_shape.h"
#include "util/count_int.h"
#include "util/id_set.h"

namespace sharpcq {

// A materialized acyclic instance: a join tree whose vertices carry bag
// relations. All counting engines in this library operate on this shape —
// the structural (Thm 3.7), degree-bounded (Thm 6.2), and hybrid (Thm 6.6)
// pipelines differ only in how they produce one.
//
// Bags are kernel Rel handles (algebra/rel.h): copies share tuple storage,
// and the full reducer's semijoins reuse each bag's cached hash indexes
// instead of rebuilding them per pass.
struct JoinTreeInstance {
  TreeShape shape;
  std::vector<Rel> nodes;

  // The union of all bag variable sets.
  IdSet AllVars() const {
    IdSet all;
    for (const Rel& n : nodes) all = Union(all, n.vars());
    return all;
  }
};

// Statistics-driven scheduling pass, run before FullReduce / CountFullJoin
// when the current ExecPolicy carries cost_model (no-op otherwise, and on
// instances of < 2 nodes). Two rewrites, both pure re-orderings of the
// same undirected join tree, so every consumer's count is unchanged —
// FullReduce, CountFullJoin, and Ps13Count are exact for ANY rooting and
// child order of a valid join tree:
//
//   1. Re-root at the orientation minimizing the summed parent-side row
//      counts over all tree edges (exact O(n^2) scan) — parent rows are
//      what the per-edge semijoin/aggregation probes iterate, so a huge
//      relation should hang below small ones, not above them.
//   2. Sort every node's children by ascending estimated distinct count on
//      the shared variables (EstimatedDistinctCount): the most selective
//      child is semijoined/probed first, so later, more expensive children
//      see an already-shrunken parent (CountFullJoin additionally skips
//      zero-weight parent rows per child).
//
// Tallies one ExecStats::cost_reorders when anything actually changed.
void OptimizeInstanceOrder(JoinTreeInstance* instance);

// Yannakakis' full reducer: one upward and one downward semijoin pass.
// Afterwards the relations are pairwise consistent along tree edges, which
// on acyclic instances equals global consistency (Beeri–Fagin–Maier–
// Yannakakis): every remaining tuple participates in some solution of the
// acyclic join. Returns false iff some relation became empty.
bool FullReduce(JoinTreeInstance* instance);

// The number of solutions of the full acyclic join (distinct assignments to
// all variables), by dynamic programming over the tree: no solution is ever
// materialized. Bag relations must be deduplicated (the kernel invariant
// guarantees this). The instance does NOT need to be full-reduced first:
// rows without an extension below carry weight 0 and contribute nothing,
// so root-count-only callers skip the FullReduce semijoin
// materializations entirely. Run FullReduce only when the reduced
// relations themselves are consumed afterwards (projection pipelines, the
// PS13 partition, enumeration).
CountInt CountFullJoin(const JoinTreeInstance& instance);

// Projects every bag onto bag ∩ keep (deduplicating). The tree shape is
// preserved; running intersection survives uniform variable removal.
JoinTreeInstance RestrictToVars(const JoinTreeInstance& instance,
                                const IdSet& keep);

}  // namespace sharpcq

#endif  // SHARPCQ_COUNT_JOIN_TREE_INSTANCE_H_
