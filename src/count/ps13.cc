#include "count/ps13.h"

#include <algorithm>
#include <map>
#include <vector>

#include "algebra/exec_policy.h"
#include "util/check.h"
#include "util/hash.h"
#include "util/trace.h"

namespace sharpcq {

namespace {

// A #-relation: sets of row ids of the vertex relation, each with a
// coefficient counting the distinct combinations of free-variable
// assignments (in the processed subtree) compatible with exactly that set.
struct SharpSet {
  std::vector<std::uint32_t> rows;  // sorted
  CountInt coeff = 0;
};
using SharpRelation = std::vector<SharpSet>;

// Initial #-relation of a vertex: the partition of its rows by the
// projection onto the free variables present in the bag, coefficient 1.
// This is a counted projection in kernel terms, so it reads the groups of
// the bag's cached index instead of sorting keys into a map.
SharpRelation InitialSharpRelation(const Rel& rel, const IdSet& free_vars) {
  IdSet bag_free = Intersect(rel.vars(), free_vars);
  std::shared_ptr<const TableIndex> index =
      rel.table()->IndexOn(ColumnsOf(rel, bag_free));
  SharpRelation out;
  out.reserve(index->num_groups());
  for (std::size_t g = 0; g < index->num_groups(); ++g) {
    std::span<const std::uint32_t> rows = index->group_rows(g);
    out.push_back(SharpSet{{rows.begin(), rows.end()}, CountInt{1}});
  }
  return out;
}

}  // namespace

CountInt Ps13Count(const JoinTreeInstance& instance, const IdSet& free_vars,
                   Ps13Stats* stats) {
  TraceSpan span("ps13_count");
  span.NoteCount("nodes", instance.nodes.size());
  span.NoteCount("free_vars", free_vars.size());
  if (instance.nodes.empty()) return 1;
  Ps13Stats local;
  Ps13Stats* st = stats != nullptr ? stats : &local;
  *st = Ps13Stats{};

  const std::size_t n = instance.nodes.size();
  std::vector<SharpRelation> sharp(n);

  // Per-vertex: key of each row over the variables shared with the parent,
  // as a dense key id (computed lazily per (parent, child) pair below).
  std::vector<int> order = instance.shape.TopoOrder();

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::size_t p = static_cast<std::size_t>(*it);
    CheckExecInterrupt();  // per-node deadline/cancellation checkpoint
    const Rel& rp = instance.nodes[p];
    SharpRelation rel_p = InitialSharpRelation(rp, free_vars);
    // The initial partition is where the degree bound h of Theorem 6.2
    // shows up: every set is a sigma_theta(r_p) group of size <= h.
    st->max_sets = std::max(st->max_sets, rel_p.size());
    for (const SharpSet& s : rel_p) {
      st->max_set_size = std::max(st->max_set_size, s.rows.size());
    }

    for (int child : instance.shape.children[p]) {
      std::size_t q = static_cast<std::size_t>(child);
      const Rel& rq = instance.nodes[q];
      const SharpRelation& rel_q = sharp[q];

      // Dense join-key ids over the shared variables: the group ids of q's
      // cached index. q rows read their id straight off the group
      // structure; p rows probe one packed word each, and a p key absent
      // from q maps to the kNoGroup sentinel, which no q key set contains
      // — so the old vector<Value>-keyed id map (one hash + deep compare
      // per row) disappears entirely.
      IdSet shared = Intersect(rp.vars(), rq.vars());
      std::vector<int> p_cols = ColumnsOf(rp, shared);
      std::vector<int> q_cols = ColumnsOf(rq, shared);
      std::shared_ptr<const TableIndex> q_index =
          rq.table()->IndexOn(q_cols);
      std::vector<std::uint32_t> q_keys(rq.size());
      for (std::size_t g = 0; g < q_index->num_groups(); ++g) {
        for (std::uint32_t row : q_index->group_rows(g)) {
          q_keys[row] = static_cast<std::uint32_t>(g);
        }
      }
      std::vector<std::uint32_t> p_keys(rp.size());
      ForEachProbeGroup(*q_index, *rp.table(), p_cols, 0, rp.size(),
                        [&p_keys](std::size_t row, std::uint32_t group) {
                          p_keys[row] = group;
                        });

      // R^alpha_p := R^(alpha-1)_p ⋉ R_q with coefficient accumulation
      // (collapsing identical result sets). Membership of a child #-set's
      // key ids is an epoch-stamped array over q's dense group ids: set s
      // stamps its keys with epoch s+1 and a p row survives iff its key id
      // carries the current epoch — one array indexed twice per row, no
      // hash sets and no clearing between sets. The accumulation is
      // commutative, so iterating s outermost changes no result. p keys
      // absent from q are kNoGroup and guarded explicitly (they are in no
      // set).
      std::vector<std::uint32_t> member_epoch(q_index->num_groups(), 0);
      std::map<std::vector<std::uint32_t>, CountInt> accum;
      for (std::size_t s = 0; s < rel_q.size(); ++s) {
        const std::uint32_t epoch = static_cast<std::uint32_t>(s) + 1;
        for (std::uint32_t row : rel_q[s].rows) {
          member_epoch[q_keys[row]] = epoch;
        }
        for (const SharpSet& sp : rel_p) {
          ++st->semijoin_ops;
          std::vector<std::uint32_t> kept;
          for (std::uint32_t row : sp.rows) {
            const std::uint32_t k = p_keys[row];
            if (k != TableIndex::kNoGroup && member_epoch[k] == epoch) {
              kept.push_back(row);
            }
          }
          if (kept.empty()) continue;
          accum[std::move(kept)] += sp.coeff * rel_q[s].coeff;
        }
      }
      SharpRelation next;
      next.reserve(accum.size());
      for (auto& [rows, coeff] : accum) {
        next.push_back(SharpSet{rows, coeff});
      }
      rel_p = std::move(next);
      if (rel_p.empty()) break;  // no solutions below this vertex
    }

    st->max_sets = std::max(st->max_sets, rel_p.size());
    for (const SharpSet& s : rel_p) {
      st->max_set_size = std::max(st->max_set_size, s.rows.size());
    }
    sharp[p] = std::move(rel_p);
    // Children's #-relations are no longer needed.
    for (int child : instance.shape.children[p]) {
      sharp[static_cast<std::size_t>(child)].clear();
      sharp[static_cast<std::size_t>(child)].shrink_to_fit();
    }
  }

  CountInt total = 0;
  for (const SharpSet& s :
       sharp[static_cast<std::size_t>(instance.shape.root)]) {
    total += s.coeff;
  }
  return total;
}

}  // namespace sharpcq
