#ifndef SHARPCQ_COUNT_PS13_H_
#define SHARPCQ_COUNT_PS13_H_

#include <cstddef>

#include "count/join_tree_instance.h"
#include "util/count_int.h"
#include "util/id_set.h"

namespace sharpcq {

// Workload counters for the Figure 13 algorithm, exposing the quantities
// the Theorem 6.2 bound O(|vertices(T)| * m^2k * 4^h) speaks about.
struct Ps13Stats {
  // Largest number of sets in any #-relation R^alpha_p (bounded by m^k 2^h).
  std::size_t max_sets = 0;
  // Largest cardinality of any set S (bounded by the degree h).
  std::size_t max_set_size = 0;
  // Total number of set-pair semijoins performed.
  std::size_t semijoin_ops = 0;
};

// The Pichler–Skritek counting algorithm (Figure 13), generalized exactly as
// in the Theorem 6.2 proof: counts |pi_free(join of the instance)| — the
// number of distinct assignments of the free variables extendable to a
// solution of the acyclic instance.
//
// Each vertex's relation is partitioned into a #-relation by the projection
// onto the free variables; #-relations are combined bottom-up with the set
// semijoin R ⋉ R' = { S ⋉ S' != empty } while coefficients count the
// distinct free-assignment combinations below. Runtime is exponential only
// in the degree bound h = bound(D, HD) (Definition 6.1), not in the
// database size.
CountInt Ps13Count(const JoinTreeInstance& instance, const IdSet& free_vars,
                   Ps13Stats* stats = nullptr);

}  // namespace sharpcq

#endif  // SHARPCQ_COUNT_PS13_H_
