#include "count/starsize.h"

#include <algorithm>
#include <unordered_map>

#include "algebra/rel.h"
#include "hypergraph/hypergraph.h"
#include "query/atom_relation.h"
#include "util/check.h"

namespace sharpcq {

namespace {

// Maximum independent set inside `candidates` under `adjacency` (by node
// id), simple branch and bound.
int MaxIndependentSet(const IdSet& candidates,
                      const std::unordered_map<std::uint32_t, IdSet>& adjacency) {
  std::vector<std::uint32_t> nodes(candidates.begin(), candidates.end());
  int best = 0;
  auto rec = [&](auto&& self, std::size_t i, IdSet chosen) -> void {
    if (static_cast<int>(chosen.size() + (nodes.size() - i)) <= best) return;
    if (i == nodes.size()) {
      best = std::max(best, static_cast<int>(chosen.size()));
      return;
    }
    std::uint32_t v = nodes[i];
    // Include v if independent of everything chosen.
    auto it = adjacency.find(v);
    bool independent = true;
    if (it != adjacency.end()) {
      for (std::uint32_t u : chosen) {
        if (it->second.Contains(u)) {
          independent = false;
          break;
        }
      }
    }
    if (independent) {
      IdSet with = chosen;
      with.Insert(v);
      self(self, i + 1, std::move(with));
    }
    self(self, i + 1, std::move(chosen));
  };
  rec(rec, 0, IdSet{});
  return best;
}

}  // namespace

int QuantifiedStarSize(const ConjunctiveQuery& q) {
  Hypergraph h = q.BuildHypergraph();
  WComponents comps = ComputeWComponents(h, q.free_vars());

  // Primal adjacency by node id.
  std::unordered_map<std::uint32_t, IdSet> adjacency;
  for (const IdSet& e : h.edges()) {
    for (std::uint32_t v : e) {
      IdSet others = e;
      others.Remove(v);
      auto [it, inserted] = adjacency.emplace(v, others);
      if (!inserted) it->second = Union(it->second, others);
    }
  }

  int star_size = 0;
  // All variables of a component share one frontier; iterate components.
  for (const IdSet& frontier : comps.frontiers) {
    star_size = std::max(star_size, MaxIndependentSet(frontier, adjacency));
  }
  return star_size;
}

CountInt CountByFrontierMaterialization(const ConjunctiveQuery& q,
                                        const Database& db) {
  Hypergraph h = q.BuildHypergraph();
  WComponents comps = ComputeWComponents(h, q.free_vars());

  std::vector<IdSet> atom_vars;
  for (const Atom& a : q.atoms()) atom_vars.push_back(a.Vars());

  std::vector<Rel> residual;
  // Frontier relations, one per component of existential variables. Atoms
  // are joined with early projection (variable elimination): after each
  // join, variables that appear neither in the frontier nor in a remaining
  // atom are projected away, so the intermediate width tracks the frontier
  // size rather than the whole component.
  for (std::size_t c = 0; c < comps.components.size(); ++c) {
    std::vector<std::size_t> pending;
    for (std::size_t a = 0; a < q.NumAtoms(); ++a) {
      if (atom_vars[a].Intersects(comps.components[c])) pending.push_back(a);
    }
    SHARPCQ_CHECK(!pending.empty());
    Rel joined = AtomToRel(q.atoms()[pending[0]], db);
    pending.erase(pending.begin());
    while (!pending.empty()) {
      // Prefer an atom sharing variables with the accumulated relation.
      std::size_t pick = 0;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (atom_vars[pending[i]].Intersects(joined.vars())) {
          pick = i;
          break;
        }
      }
      std::size_t a = pending[pick];
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
      joined = Join(joined, AtomToRel(q.atoms()[a], db));
      IdSet needed = comps.frontiers[c];
      for (std::size_t rest : pending) {
        needed = Union(needed, atom_vars[rest]);
      }
      joined = Project(joined, Intersect(joined.vars(), needed));
    }
    residual.push_back(Project(joined, comps.frontiers[c]));
  }
  // Free-only atoms.
  for (std::size_t a = 0; a < q.NumAtoms(); ++a) {
    if (atom_vars[a].IsSubsetOf(q.free_vars())) {
      residual.push_back(AtomToRel(q.atoms()[a], db));
    }
  }

  // Count the residual by join-project over the free variables.
  Rel acc = Rel::Unit();
  std::vector<bool> used(residual.size(), false);
  for (std::size_t step = 0; step < residual.size(); ++step) {
    std::size_t pick = residual.size();
    for (std::size_t i = 0; i < residual.size(); ++i) {
      if (used[i]) continue;
      if (pick == residual.size() ||
          residual[i].vars().Intersects(acc.vars())) {
        if (pick == residual.size()) pick = i;
        if (residual[i].vars().Intersects(acc.vars())) {
          pick = i;
          break;
        }
      }
    }
    used[pick] = true;
    acc = Join(acc, residual[pick]);
    // Project away nothing: all residual vars are free variables already.
  }
  return DistinctCount(acc, Intersect(acc.vars(), q.free_vars()));
}

}  // namespace sharpcq
