#ifndef SHARPCQ_COUNT_STARSIZE_H_
#define SHARPCQ_COUNT_STARSIZE_H_

#include "data/database.h"
#include "query/conjunctive_query.h"
#include "util/count_int.h"

namespace sharpcq {

// The quantified star size of Durand & Mengel (Appendix A): the maximum,
// over existential variables Y, of the size of a maximum independent set
// (in the primal graph of HQ) inside the frontier Fr(Y, free(Q), HQ).
// Exact via branch and bound; frontiers at paper scale are small.
int QuantifiedStarSize(const ConjunctiveQuery& q);

// The DM15-shaped counting baseline (no cores, per Remark 4.5): for each
// [free(Q)]-component C_i of the existential variables, materializes the
// frontier relation pi_{F_i}( join of C_i's atoms ), then counts the
// residual query (free-only atoms + frontier relations) by join-project.
// Polynomial when quantified star size and width are bounded; exponential
// in the frontier size otherwise — exactly the separation Example A.2 is
// about.
CountInt CountByFrontierMaterialization(const ConjunctiveQuery& q,
                                        const Database& db);

}  // namespace sharpcq

#endif  // SHARPCQ_COUNT_STARSIZE_H_
