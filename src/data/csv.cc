#include "data/csv.h"

#include <charconv>
#include <fstream>
#include <string_view>

#include "util/string_util.h"

namespace sharpcq {

namespace {

// Fields arrive as views into the current line; numeric parsing and
// dictionary interning both work without copying the field.
bool ParseField(std::string_view field, ValueDict* dict, Value* out,
                std::string* error) {
  if (!field.empty() &&
      (field[0] == '-' || (field[0] >= '0' && field[0] <= '9'))) {
    long long v = 0;
    auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(),
                                     v, 10);
    if (ec == std::errc{} && ptr == field.data() + field.size()) {
      *out = static_cast<Value>(v);
      return true;
    }
  }
  if (dict == nullptr) {
    if (error != nullptr) {
      *error = "non-numeric field '" + std::string(field) +
               "' needs a ValueDict";
    }
    return false;
  }
  *out = dict->Intern(field);
  return true;
}

}  // namespace

std::optional<std::size_t> LoadRelationCsv(std::istream& in,
                                           const std::string& relation,
                                           Database* db, ValueDict* dict,
                                           std::string* error) {
  std::size_t loaded = 0;
  int arity = -1;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::vector<std::string_view> fields = SplitAndTrimViews(stripped, ',');
    if (arity == -1) {
      arity = static_cast<int>(fields.size());
    } else if (static_cast<int>(fields.size()) != arity) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) +
                 ": arity mismatch (expected " + std::to_string(arity) + ")";
      }
      return std::nullopt;
    }
    std::vector<Value> row(fields.size());
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (!ParseField(fields[i], dict, &row[i], error)) return std::nullopt;
    }
    db->AddTuple(relation, std::span<const Value>(row));
    ++loaded;
  }
  if (arity == -1) {
    if (error != nullptr) *error = "no tuples in input";
    return std::nullopt;
  }
  return loaded;
}

std::optional<std::size_t> LoadRelationCsvFile(const std::string& path,
                                               const std::string& relation,
                                               Database* db, ValueDict* dict,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return LoadRelationCsv(in, relation, db, dict, error);
}

void WriteRelationCsv(const Database& db, const std::string& relation,
                      std::ostream& out, const ValueDict* dict) {
  const Relation& rel = db.relation(relation);
  for (std::size_t i = 0; i < rel.size(); ++i) {
    auto row = rel.Row(i);
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      if (dict != nullptr) {
        out << dict->NameOf(row[c]);
      } else {
        out << row[c];
      }
    }
    out << '\n';
  }
}

}  // namespace sharpcq
