#include "data/csv.h"

#include <sys/stat.h>

#include <charconv>
#include <fstream>
#include <string_view>

#include "util/failpoint.h"
#include "util/string_util.h"

namespace sharpcq {

namespace {

CsvResult Fail(CsvStatus status, std::string message) {
  CsvResult result;
  result.status = status;
  result.message = std::move(message);
  return result;
}

// Fields arrive as views into the current line; numeric parsing and
// dictionary interning both work without copying the field.
bool ParseField(std::string_view field, ValueDict* dict, Value* out,
                std::string* error) {
  if (!field.empty() &&
      (field[0] == '-' || (field[0] >= '0' && field[0] <= '9'))) {
    long long v = 0;
    auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(),
                                     v, 10);
    if (ec == std::errc{} && ptr == field.data() + field.size()) {
      *out = static_cast<Value>(v);
      return true;
    }
  }
  if (dict == nullptr) {
    *error = "non-numeric field '" + std::string(field) +
             "' needs a ValueDict";
    return false;
  }
  *out = dict->Intern(field);
  return true;
}

// The shared parse loop; `emit` receives each parsed row.
CsvResult ParseCsv(std::istream& in, ValueDict* dict,
                   const CsvRowSink& emit) {
  CsvResult result;
  int arity = -1;
  std::string line;
  std::string error;
  std::size_t line_number = 0;
  std::vector<Value> row;
  while (std::getline(in, line)) {
    ++line_number;
    if (SHARPCQ_FAILPOINT("csv.row") != FailpointAction::kNone) {
      return Fail(CsvStatus::kIoError,
                  "line " + std::to_string(line_number) + ": injected fault");
    }
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::vector<std::string_view> fields = SplitAndTrimViews(stripped, ',');
    if (arity == -1) {
      arity = static_cast<int>(fields.size());
    } else if (static_cast<int>(fields.size()) != arity) {
      return Fail(CsvStatus::kParseError,
                  "line " + std::to_string(line_number) +
                      ": arity mismatch (expected " + std::to_string(arity) +
                      ")");
    }
    row.resize(fields.size());
    for (std::size_t i = 0; i < fields.size(); ++i) {
      // Empty fields are rejected rather than silently dropped: before the
      // split preserved them, a row like "1,,3" parsed as two fields and
      // either locked the relation's arity wrong (first line) or shifted
      // values into the wrong columns with no error.
      if (fields[i].empty()) {
        return Fail(CsvStatus::kParseError,
                    "line " + std::to_string(line_number) + ", column " +
                        std::to_string(i + 1) + ": empty field");
      }
      if (!ParseField(fields[i], dict, &row[i], &error)) {
        return Fail(CsvStatus::kParseError,
                    "line " + std::to_string(line_number) + ": " + error);
      }
    }
    emit(std::span<const Value>(row));
    ++result.tuples;
  }
  if (arity == -1) {
    return Fail(CsvStatus::kParseError, "no tuples in input");
  }
  return result;
}

// Open with the file-missing / unreadable distinction surfaced.
CsvResult OpenCsvFile(const std::string& path, std::ifstream* in) {
  if (SHARPCQ_FAILPOINT("csv.open") != FailpointAction::kNone) {
    return Fail(CsvStatus::kIoError, "open " + path + ": injected fault");
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Fail(CsvStatus::kFileMissing, "no such file: " + path);
  }
  in->open(path);
  if (!*in) {
    return Fail(CsvStatus::kIoError, "cannot read " + path);
  }
  CsvResult ok;
  return ok;
}

}  // namespace

CsvResult LoadRelationCsv(std::istream& in, const std::string& relation,
                          Database* db, ValueDict* dict) {
  return ParseCsv(in, dict, [db, &relation](std::span<const Value> row) {
    db->AddTuple(relation, row);
  });
}

CsvResult LoadRelationCsvFile(const std::string& path,
                              const std::string& relation, Database* db,
                              ValueDict* dict) {
  std::ifstream in;
  if (CsvResult opened = OpenCsvFile(path, &in); !opened.ok()) return opened;
  return LoadRelationCsv(in, relation, db, dict);
}

CsvResult ParseCsvToSink(std::istream& in, const CsvRowSink& sink,
                         ValueDict* dict) {
  return ParseCsv(in, dict, sink);
}

CsvResult ParseCsvFileToSink(const std::string& path, const CsvRowSink& sink,
                             ValueDict* dict) {
  std::ifstream in;
  if (CsvResult opened = OpenCsvFile(path, &in); !opened.ok()) return opened;
  return ParseCsv(in, dict, sink);
}

void WriteRelationCsv(const Database& db, const std::string& relation,
                      std::ostream& out, const ValueDict* dict) {
  const Relation& rel = db.relation(relation);
  for (std::size_t i = 0; i < rel.size(); ++i) {
    auto row = rel.Row(i);
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      if (dict != nullptr) {
        out << dict->NameOf(row[c]);
      } else {
        out << row[c];
      }
    }
    out << '\n';
  }
}

}  // namespace sharpcq
