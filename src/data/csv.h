#ifndef SHARPCQ_DATA_CSV_H_
#define SHARPCQ_DATA_CSV_H_

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "data/database.h"
#include "data/value.h"

namespace sharpcq {

// Minimal CSV ingestion for examples and tooling: one tuple per line,
// comma-separated fields, no quoting. Fields that parse as integers become
// their numeric value; anything else is interned through `dict` (required
// if such fields appear). Blank lines and lines starting with '#' are
// skipped.
//
// Returns the number of tuples loaded, or nullopt on malformed input
// (inconsistent arity, bad field), with a reason in *error.
std::optional<std::size_t> LoadRelationCsv(std::istream& in,
                                           const std::string& relation,
                                           Database* db,
                                           ValueDict* dict = nullptr,
                                           std::string* error = nullptr);

// Convenience: loads from a file path.
std::optional<std::size_t> LoadRelationCsvFile(const std::string& path,
                                               const std::string& relation,
                                               Database* db,
                                               ValueDict* dict = nullptr,
                                               std::string* error = nullptr);

// Writes a relation as CSV (values rendered through `dict` when provided).
void WriteRelationCsv(const Database& db, const std::string& relation,
                      std::ostream& out, const ValueDict* dict = nullptr);

}  // namespace sharpcq

#endif  // SHARPCQ_DATA_CSV_H_
