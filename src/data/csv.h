#ifndef SHARPCQ_DATA_CSV_H_
#define SHARPCQ_DATA_CSV_H_

#include <cstddef>
#include <functional>
#include <istream>
#include <ostream>
#include <span>
#include <string>

#include "data/database.h"
#include "data/value.h"

namespace sharpcq {

// Minimal CSV ingestion for examples and tooling: one tuple per line,
// comma-separated fields, no quoting. Fields that parse as integers become
// their numeric value; anything else is interned through `dict` (required
// if such fields appear). Blank lines and lines starting with '#' are
// skipped.

// Why a load failed. The distinction between a missing file and a
// malformed one matters to callers (the sharpcq CLI maps them to different
// exit codes: a missing file is an operator typo, a parse error is bad
// data).
enum class CsvStatus {
  kOk,
  kFileMissing,  // the path does not exist
  kIoError,      // the path exists but cannot be read
  kParseError,   // malformed content (bad field, arity mismatch, empty)
};

struct CsvResult {
  CsvStatus status = CsvStatus::kOk;
  std::size_t tuples = 0;   // tuples loaded (0 unless kOk)
  std::string message;      // human-readable reason when !ok()

  bool ok() const { return status == CsvStatus::kOk; }
  explicit operator bool() const { return ok(); }
};

// Loads one relation into `db`.
CsvResult LoadRelationCsv(std::istream& in, const std::string& relation,
                          Database* db, ValueDict* dict = nullptr);

// Convenience: loads from a file path (kFileMissing when absent).
CsvResult LoadRelationCsvFile(const std::string& path,
                              const std::string& relation, Database* db,
                              ValueDict* dict = nullptr);

// The generic form: each parsed row goes to `sink` instead of a Database.
// Higher layers stream rows wherever they like without this module
// knowing about them — storage/snapshot.h builds its CSV -> snapshot
// ingest on this (data/ stays at the bottom of the layering).
using CsvRowSink = std::function<void(std::span<const Value>)>;
CsvResult ParseCsvToSink(std::istream& in, const CsvRowSink& sink,
                         ValueDict* dict = nullptr);
CsvResult ParseCsvFileToSink(const std::string& path, const CsvRowSink& sink,
                             ValueDict* dict = nullptr);

// Writes a relation as CSV (values rendered through `dict` when provided).
void WriteRelationCsv(const Database& db, const std::string& relation,
                      std::ostream& out, const ValueDict* dict = nullptr);

}  // namespace sharpcq

#endif  // SHARPCQ_DATA_CSV_H_
