#include "data/database.h"

#include <algorithm>

#include "algebra/table.h"
#include "util/check.h"

namespace sharpcq {

Relation& Database::DeclareRelation(const std::string& name, int arity) {
  auto columnar = columnar_.find(name);
  if (columnar != columnar_.end()) {
    Relation& rel = const_cast<Relation&>(  // cache entry we own
        Materialize(name, *columnar->second));
    columnar_.erase(columnar);
    SHARPCQ_CHECK_MSG(rel.arity() == arity, name.c_str());
    return rel;
  }
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    it = relations_.emplace(name, Relation(arity)).first;
  }
  SHARPCQ_CHECK_MSG(it->second.arity() == arity, name.c_str());
  return it->second;
}

void Database::AdoptColumnar(const std::string& name,
                             std::shared_ptr<const Table> table) {
  SHARPCQ_CHECK(table != nullptr);
  relations_.erase(name);
  columnar_[name] = std::move(table);
}

std::shared_ptr<const Table> Database::ColumnarBacking(
    const std::string& name) const {
  auto it = columnar_.find(name);
  return it == columnar_.end() ? nullptr : it->second;
}

const Relation& Database::Materialize(const std::string& name,
                                      const Table& table) const {
  std::lock_guard<std::mutex> lock(materialize_mu_);
  auto it = relations_.find(name);
  if (it != relations_.end()) return it->second;
  Relation rel(table.arity());
  std::vector<Value> row(static_cast<std::size_t>(table.arity()));
  for (std::size_t i = 0; i < table.rows(); ++i) {
    for (int c = 0; c < table.arity(); ++c) {
      row[static_cast<std::size_t>(c)] = table.at(i, c);
    }
    rel.AddRow(row);
  }
  return relations_.emplace(name, std::move(rel)).first->second;
}

const Relation& Database::relation(const std::string& name) const {
  {
    // Locked even for the plain lookup: a concurrent relation() call may be
    // materializing (inserting) right now, and unordered_map rehash would
    // invalidate an unlocked find. References stay valid across inserts, so
    // callers keep their refs lock-free.
    std::lock_guard<std::mutex> lock(materialize_mu_);
    auto it = relations_.find(name);
    if (it != relations_.end()) return it->second;
  }
  auto columnar = columnar_.find(name);
  SHARPCQ_CHECK_MSG(columnar != columnar_.end(), name.c_str());
  return Materialize(name, *columnar->second);
}

Relation& Database::mutable_relation(const std::string& name) {
  auto columnar = columnar_.find(name);
  if (columnar != columnar_.end()) {
    Relation& rel =
        const_cast<Relation&>(Materialize(name, *columnar->second));
    columnar_.erase(columnar);
    return rel;
  }
  auto it = relations_.find(name);
  SHARPCQ_CHECK_MSG(it != relations_.end(), name.c_str());
  return it->second;
}

void Database::DedupAll() {
  for (const std::string& name : SortedRelationNames()) {
    if (columnar_.count(name) > 0) continue;  // tables are sets already
    relations_.at(name).Dedup();
  }
}

std::size_t Database::MaxRelationSize() const {
  std::lock_guard<std::mutex> lock(materialize_mu_);
  std::size_t m = 0;
  for (const auto& [name, rel] : relations_) {
    if (columnar_.count(name) > 0) continue;  // counted below
    m = std::max(m, rel.size());
  }
  for (const auto& [name, table] : columnar_) m = std::max(m, table->rows());
  return m;
}

std::size_t Database::TotalTuples() const {
  std::lock_guard<std::mutex> lock(materialize_mu_);
  std::size_t total = 0;
  for (const auto& [name, rel] : relations_) {
    if (columnar_.count(name) > 0) continue;  // the backing is authoritative
    total += rel.size();
  }
  for (const auto& [name, table] : columnar_) total += table->rows();
  return total;
}

bool Database::HasRelation(const std::string& name) const {
  if (columnar_.count(name) > 0) return true;
  std::lock_guard<std::mutex> lock(materialize_mu_);
  return relations_.count(name) > 0;
}

std::vector<std::string> Database::SortedRelationNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(materialize_mu_);
    names.reserve(relations_.size() + columnar_.size());
    for (const auto& [name, rel] : relations_) names.push_back(name);
    for (const auto& [name, table] : columnar_) {
      if (relations_.count(name) == 0) names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

int Database::RelationArity(const std::string& name) const {
  auto columnar = columnar_.find(name);
  if (columnar != columnar_.end()) return columnar->second->arity();
  std::lock_guard<std::mutex> lock(materialize_mu_);
  auto it = relations_.find(name);
  SHARPCQ_CHECK_MSG(it != relations_.end(), name.c_str());
  return it->second.arity();
}

const std::unordered_map<std::string, Relation>& Database::relations() const {
  for (const auto& [name, table] : columnar_) Materialize(name, *table);
  return relations_;
}

}  // namespace sharpcq
