#include "data/database.h"

#include "util/check.h"

namespace sharpcq {

Relation& Database::DeclareRelation(const std::string& name, int arity) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    it = relations_.emplace(name, Relation(arity)).first;
  }
  SHARPCQ_CHECK_MSG(it->second.arity() == arity, name.c_str());
  return it->second;
}

const Relation& Database::relation(const std::string& name) const {
  auto it = relations_.find(name);
  SHARPCQ_CHECK_MSG(it != relations_.end(), name.c_str());
  return it->second;
}

Relation& Database::mutable_relation(const std::string& name) {
  auto it = relations_.find(name);
  SHARPCQ_CHECK_MSG(it != relations_.end(), name.c_str());
  return it->second;
}

void Database::DedupAll() {
  for (auto& [name, rel] : relations_) rel.Dedup();
}

std::size_t Database::MaxRelationSize() const {
  std::size_t m = 0;
  for (const auto& [name, rel] : relations_) m = std::max(m, rel.size());
  return m;
}

std::size_t Database::TotalTuples() const {
  std::size_t total = 0;
  for (const auto& [name, rel] : relations_) total += rel.size();
  return total;
}

}  // namespace sharpcq
