#ifndef SHARPCQ_DATA_DATABASE_H_
#define SHARPCQ_DATA_DATABASE_H_

#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/relation.h"
#include "data/value.h"

namespace sharpcq {

class Table;

// A database instance: a finite structure mapping relation symbols to
// relation instances (Section 2, "Relational Databases").
//
// Relations come in two physical forms. Row-major `Relation`s are the
// mutable build-time form (AddTuple, CSV ingest, the random generators).
// Columnar `algebra::Table`s are the immutable serving form installed by
// the storage layer (AdoptColumnar): a database loaded from a mapped
// snapshot holds only column views into the file's pages and shares them
// across processes. The counting bridge (query/atom_relation.cc) reads the
// columnar form directly; anything that asks for the row-major view of a
// columnar relation (relation(), relations()) gets a lazily materialized
// copy — built once under a mutex, like the kernel's index caches — so
// legacy consumers keep working unchanged.
class Database {
 public:
  Database() = default;

  // Copies and moves transfer both physical forms but never the
  // materialization mutex (spelled out because std::mutex is neither
  // copyable nor movable). Columnar backings are immutable and shared.
  // Copying locks the source: copying a const Database is a const access,
  // and another thread may be lazily materializing into its relations_
  // map right now. Moving requires exclusive access to the source, like
  // any mutation.
  Database(const Database& other) {
    std::lock_guard<std::mutex> lock(other.materialize_mu_);
    relations_ = other.relations_;
    columnar_ = other.columnar_;
  }
  Database& operator=(const Database& other) {
    if (this != &other) {
      std::lock_guard<std::mutex> lock(other.materialize_mu_);
      relations_ = other.relations_;
      columnar_ = other.columnar_;
    }
    return *this;
  }
  Database(Database&& other) noexcept
      : relations_(std::move(other.relations_)),
        columnar_(std::move(other.columnar_)) {}
  Database& operator=(Database&& other) noexcept {
    if (this != &other) {
      relations_ = std::move(other.relations_);
      columnar_ = std::move(other.columnar_);
    }
    return *this;
  }

  // Declares `name` with `arity` (idempotent; arity mismatch aborts). A
  // columnar relation of that name is materialized first and its backing
  // dropped — the caller received a mutable handle, so the immutable
  // columnar copy can no longer be trusted to match.
  Relation& DeclareRelation(const std::string& name, int arity);

  // Adds a tuple, declaring the relation on first use.
  void AddTuple(const std::string& name, std::initializer_list<Value> row) {
    DeclareRelation(name, static_cast<int>(row.size())).AddRow(row);
  }
  void AddTuple(const std::string& name, std::span<const Value> row) {
    DeclareRelation(name, static_cast<int>(row.size())).AddRow(row);
  }

  // Installs an immutable columnar table as relation `name`, replacing any
  // existing relation of that name. The table must be a set of rows (every
  // published Table is; see algebra/table.h).
  void AdoptColumnar(const std::string& name,
                     std::shared_ptr<const Table> table);

  // The columnar backing of `name`, or nullptr when the relation is
  // row-major only (or absent). The fast path of the atom bridge.
  std::shared_ptr<const Table> ColumnarBacking(const std::string& name) const;

  bool HasRelation(const std::string& name) const;

  // The row-major view of `name`; aborts if absent (query evaluation treats
  // a missing relation as a configuration error, not an empty relation).
  // Columnar relations are materialized on first access.
  const Relation& relation(const std::string& name) const;
  // Mutable access materializes and drops the columnar backing (see
  // DeclareRelation).
  Relation& mutable_relation(const std::string& name);

  // Deduplicates every relation (databases are sets of ground atoms), in
  // sorted name order. Columnar relations are sets already and are skipped.
  void DedupAll();

  // Number of tuples in the largest relation (the paper's `m`).
  std::size_t MaxRelationSize() const;

  // Total number of tuples across relations.
  std::size_t TotalTuples() const;

  // Every relation name (both physical forms), sorted: the iteration order
  // for snapshots, CSV exports, and debug dumps, so output is byte-stable
  // across runs regardless of hash-map layout.
  std::vector<std::string> SortedRelationNames() const;

  // The arity of `name`, from whichever physical form holds it; aborts if
  // absent. Does not materialize.
  int RelationArity(const std::string& name) const;

  // The row-major map. Materializes every columnar relation first so
  // iterator-based consumers (e.g. solver/hom_target.cc) see the complete
  // database; after this call the map is stable until the next mutation.
  const std::unordered_map<std::string, Relation>& relations() const;

 private:
  // Returns the materialized row-major copy of a columnar relation,
  // building and caching it under materialize_mu_ on first use.
  const Relation& Materialize(const std::string& name,
                              const Table& table) const;

  // Invariant: a name present in both maps has identical contents in both
  // (the relations_ entry is the cached materialization of the columnar_
  // one). Mutable access breaks the tie by dropping the columnar_ entry.
  mutable std::unordered_map<std::string, Relation> relations_;
  std::unordered_map<std::string, std::shared_ptr<const Table>> columnar_;
  mutable std::mutex materialize_mu_;  // guards lazy inserts into relations_
};

}  // namespace sharpcq

#endif  // SHARPCQ_DATA_DATABASE_H_
