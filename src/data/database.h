#ifndef SHARPCQ_DATA_DATABASE_H_
#define SHARPCQ_DATA_DATABASE_H_

#include <initializer_list>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/relation.h"
#include "data/value.h"

namespace sharpcq {

// A database instance: a finite structure mapping relation symbols to
// relation instances (Section 2, "Relational Databases").
class Database {
 public:
  Database() = default;

  // Declares `name` with `arity` (idempotent; arity mismatch aborts).
  Relation& DeclareRelation(const std::string& name, int arity);

  // Adds a tuple, declaring the relation on first use.
  void AddTuple(const std::string& name, std::initializer_list<Value> row) {
    DeclareRelation(name, static_cast<int>(row.size())).AddRow(row);
  }
  void AddTuple(const std::string& name, std::span<const Value> row) {
    DeclareRelation(name, static_cast<int>(row.size())).AddRow(row);
  }

  bool HasRelation(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  // The relation for `name`; aborts if absent (query evaluation treats a
  // missing relation as a configuration error, not an empty relation).
  const Relation& relation(const std::string& name) const;
  Relation& mutable_relation(const std::string& name);

  // Deduplicates every relation (databases are sets of ground atoms).
  void DedupAll();

  // Number of tuples in the largest relation (the paper's `m`).
  std::size_t MaxRelationSize() const;

  // Total number of tuples across relations.
  std::size_t TotalTuples() const;

  const std::unordered_map<std::string, Relation>& relations() const {
    return relations_;
  }

 private:
  std::unordered_map<std::string, Relation> relations_;
};

}  // namespace sharpcq

#endif  // SHARPCQ_DATA_DATABASE_H_
