#include "data/relation.h"

#include <algorithm>
#include <numeric>

#include "util/hash.h"

namespace sharpcq {

namespace {

// Sorts row ids of `rel` lexicographically and returns the permutation.
std::vector<std::uint32_t> SortedRowIds(const Relation& rel) {
  std::vector<std::uint32_t> ids(rel.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::sort(ids.begin(), ids.end(), [&rel](std::uint32_t a, std::uint32_t b) {
    auto ra = rel.Row(a);
    auto rb = rel.Row(b);
    return std::lexicographical_compare(ra.begin(), ra.end(), rb.begin(),
                                        rb.end());
  });
  return ids;
}

}  // namespace

void Relation::SortRows() {
  if (arity_ == 0 || size() <= 1) return;
  InvalidateMembershipIndex();
  std::vector<std::uint32_t> ids = SortedRowIds(*this);
  std::vector<Value> sorted;
  sorted.reserve(data_.size());
  for (std::uint32_t id : ids) {
    auto row = Row(id);
    sorted.insert(sorted.end(), row.begin(), row.end());
  }
  data_ = std::move(sorted);
}

void Relation::Dedup() {
  InvalidateMembershipIndex();
  if (arity_ == 0) {
    zero_arity_rows_ = zero_arity_rows_ > 0 ? 1 : 0;
    return;
  }
  if (size() <= 1) return;
  SortRows();
  std::vector<Value> deduped;
  deduped.reserve(data_.size());
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    auto row = Row(i);
    if (i > 0) {
      auto prev = Row(i - 1);
      if (std::equal(row.begin(), row.end(), prev.begin())) continue;
    }
    deduped.insert(deduped.end(), row.begin(), row.end());
  }
  data_ = std::move(deduped);
}

bool Relation::ContainsRow(std::span<const Value> row) const {
  SHARPCQ_CHECK(static_cast<int>(row.size()) == arity_);
  if (arity_ == 0) return zero_arity_rows_ > 0;
  std::shared_ptr<const RowIndex> index;
  {
    std::lock_guard<std::mutex> lock(membership_mu_);
    if (membership_index_ == nullptr) {
      std::vector<int> all(static_cast<std::size_t>(arity_));
      for (std::size_t c = 0; c < all.size(); ++c) {
        all[c] = static_cast<int>(c);
      }
      membership_index_ = std::make_shared<const RowIndex>(*this, all);
    }
    index = membership_index_;
  }
  return index->Lookup(row) != nullptr;
}

bool Relation::HasCachedMembershipIndex() const {
  std::lock_guard<std::mutex> lock(membership_mu_);
  return membership_index_ != nullptr;
}

bool SameRowSet(const Relation& a, const Relation& b) {
  if (a.arity() != b.arity()) return false;
  Relation ca = a;
  Relation cb = b;
  ca.Dedup();
  cb.Dedup();
  if (ca.size() != cb.size()) return false;
  return ca.raw_data() == cb.raw_data();
}

std::string Relation::DebugString() const {
  std::string out = "{";
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += "(";
    auto row = Row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(row[j]);
    }
    out += ")";
  }
  out += "}";
  return out;
}

RowIndex::RowIndex(const Relation& rel, std::vector<int> key_columns)
    : key_columns_(std::move(key_columns)) {
  for (int c : key_columns_) SHARPCQ_CHECK(c >= 0 && c < rel.arity());
  std::size_t capacity = 16;
  while (capacity < rel.size() * 2 + 2) capacity <<= 1;
  table_.assign(capacity, 0);
  mask_ = capacity - 1;
  const std::size_t n = rel.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<Value> key = KeyOf(rel.Row(i));
    std::size_t slot = FindSlot(key);
    if (table_[slot] == 0) {
      buckets_.push_back(Bucket{std::move(key), {}});
      table_[slot] = static_cast<std::uint32_t>(buckets_.size());
    }
    buckets_[table_[slot] - 1].rows.push_back(static_cast<std::uint32_t>(i));
  }
}

std::vector<Value> RowIndex::KeyOf(std::span<const Value> row) const {
  std::vector<Value> key;
  key.reserve(key_columns_.size());
  for (int c : key_columns_) key.push_back(row[static_cast<std::size_t>(c)]);
  return key;
}

std::size_t RowIndex::FindSlot(std::span<const Value> key) const {
  std::size_t h = HashRange(key.begin(), key.end()) & mask_;
  while (true) {
    std::uint32_t b = table_[h];
    if (b == 0) return h;
    const Bucket& bucket = buckets_[b - 1];
    if (bucket.key.size() == key.size() &&
        std::equal(key.begin(), key.end(), bucket.key.begin())) {
      return h;
    }
    h = (h + 1) & mask_;
  }
}

const std::vector<std::uint32_t>* RowIndex::Lookup(
    std::span<const Value> key) const {
  std::size_t slot = FindSlot(key);
  if (table_[slot] == 0) return nullptr;
  return &buckets_[table_[slot] - 1].rows;
}

}  // namespace sharpcq
