#ifndef SHARPCQ_DATA_RELATION_H_
#define SHARPCQ_DATA_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "data/value.h"
#include "util/check.h"

namespace sharpcq {

class RowIndex;

// A finite relation instance: a set of fixed-arity tuples stored row-major
// in one flat buffer. Rows are *not* automatically deduplicated on insert;
// call Dedup() (the algebra in var_relation.cc does this after projections).
//
// Membership checks (ContainsRow) go through a lazily built full-row hash
// index, cached until the next mutation — the same design as the kernel's
// per-table index cache (algebra/table.h), adapted to a mutable container
// by invalidation. Thread safety follows standard container semantics:
// concurrent const access is safe (the lazy build is mutex-guarded);
// mutation requires exclusive access.
class Relation {
 public:
  explicit Relation(int arity) : arity_(arity) { SHARPCQ_CHECK(arity >= 0); }

  // Copies and moves transfer tuple data but never the cached membership
  // index (it is rebuilt on demand); spelled out because std::mutex is
  // neither copyable nor movable. The moved-from relation's cache is also
  // dropped — its index would describe rows that left with the move.
  Relation(const Relation& other)
      : arity_(other.arity_),
        data_(other.data_),
        zero_arity_rows_(other.zero_arity_rows_) {}
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      arity_ = other.arity_;
      data_ = other.data_;
      zero_arity_rows_ = other.zero_arity_rows_;
      membership_index_.reset();
    }
    return *this;
  }
  Relation(Relation&& other) noexcept
      : arity_(other.arity_),
        data_(std::move(other.data_)),
        zero_arity_rows_(other.zero_arity_rows_) {
    other.membership_index_.reset();
  }
  Relation& operator=(Relation&& other) noexcept {
    if (this != &other) {
      arity_ = other.arity_;
      data_ = std::move(other.data_);
      zero_arity_rows_ = other.zero_arity_rows_;
      membership_index_.reset();
      other.membership_index_.reset();
    }
    return *this;
  }

  int arity() const { return arity_; }
  std::size_t size() const {
    return arity_ == 0 ? zero_arity_rows_ : data_.size() / arity_;
  }
  bool empty() const { return size() == 0; }

  // Read-only view of row `i`.
  std::span<const Value> Row(std::size_t i) const {
    SHARPCQ_DCHECK(i < size());
    return {data_.data() + i * static_cast<std::size_t>(arity_),
            static_cast<std::size_t>(arity_)};
  }

  void AddRow(std::span<const Value> row) {
    SHARPCQ_CHECK(static_cast<int>(row.size()) == arity_);
    InvalidateMembershipIndex();
    if (arity_ == 0) {
      ++zero_arity_rows_;
      return;
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
  void AddRow(std::initializer_list<Value> row) {
    AddRow(std::span<const Value>(row.begin(), row.size()));
  }

  // Removes duplicate rows (sorts the relation as a side effect).
  void Dedup();

  // Sorts rows lexicographically (canonical order; used for equality tests).
  void SortRows();

  // True if an identical row is present, via the cached full-row hash index
  // (built on first use, dropped on mutation).
  bool ContainsRow(std::span<const Value> row) const;

  // Structural equality as *sets* of rows (both sides get sorted copies).
  friend bool SameRowSet(const Relation& a, const Relation& b);

  std::string DebugString() const;

  const std::vector<Value>& raw_data() const { return data_; }

  // True if the membership index is currently built (tests only).
  bool HasCachedMembershipIndex() const;

 private:
  // Called by every mutator; cheap when no index is cached.
  void InvalidateMembershipIndex() { membership_index_.reset(); }

  int arity_;
  std::vector<Value> data_;
  std::size_t zero_arity_rows_ = 0;  // row multiplicity for arity-0 relations

  mutable std::mutex membership_mu_;
  mutable std::shared_ptr<const RowIndex> membership_index_;
};

// Hash index over selected key columns of a relation: key -> row ids.
class RowIndex {
 public:
  RowIndex(const Relation& rel, std::vector<int> key_columns);

  // Row ids whose key columns equal `key` (nullptr if none).
  const std::vector<std::uint32_t>* Lookup(std::span<const Value> key) const;

  // Extracts the key of `row` under this index's key columns.
  std::vector<Value> KeyOf(std::span<const Value> row) const;

 private:
  std::vector<int> key_columns_;
  // Keys stored inline; buckets map hashed key -> row id list.
  struct Bucket {
    std::vector<Value> key;
    std::vector<std::uint32_t> rows;
  };
  std::vector<Bucket> buckets_;
  std::vector<std::uint32_t> table_;  // open addressing into buckets_ (+1)
  std::size_t mask_ = 0;

  std::size_t FindSlot(std::span<const Value> key) const;
};

}  // namespace sharpcq

#endif  // SHARPCQ_DATA_RELATION_H_
