#ifndef SHARPCQ_DATA_VALUE_H_
#define SHARPCQ_DATA_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace sharpcq {

// Domain values are 64-bit integers. Symbolic constants (worker names,
// project codes, ...) are interned through a ValueDict so that examples can
// speak strings while the engines stay integer-only.
using Value = std::int64_t;

// Bidirectional string <-> Value dictionary. Values handed out are dense
// non-negative integers in insertion order.
class ValueDict {
 public:
  ValueDict() = default;

  // Returns the Value for `name`, interning it on first use.
  Value Intern(const std::string& name) {
    auto [it, inserted] = index_.emplace(name, static_cast<Value>(names_.size()));
    if (inserted) names_.push_back(name);
    return it->second;
  }

  // Returns the Value for `name` if already interned.
  std::optional<Value> Find(const std::string& name) const {
    auto it = index_.find(name);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  // Name of an interned value; falls back to the decimal rendering.
  std::string NameOf(Value v) const {
    if (v >= 0 && static_cast<std::size_t>(v) < names_.size()) {
      return names_[static_cast<std::size_t>(v)];
    }
    return std::to_string(v);
  }

  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Value> index_;
};

}  // namespace sharpcq

#endif  // SHARPCQ_DATA_VALUE_H_
