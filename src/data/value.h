#ifndef SHARPCQ_DATA_VALUE_H_
#define SHARPCQ_DATA_VALUE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sharpcq {

// Domain values are 64-bit integers. Symbolic constants (worker names,
// project codes, ...) are interned through a ValueDict so that examples can
// speak strings while the engines stay integer-only.
using Value = std::int64_t;

// Transparent hash so the dictionary supports heterogeneous lookup:
// string_view (and char*) keys probe without constructing a std::string.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

// Bidirectional string <-> Value dictionary. Values handed out are dense
// non-negative integers in insertion order. Lookup and interning accept
// string_view, so CSV ingest and parsing probe field slices without a
// per-call string copy (a copy is made only when a new name is stored).
class ValueDict {
 public:
  ValueDict() = default;

  // Returns the Value for `name`, interning it on first use.
  Value Intern(std::string_view name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    Value value = static_cast<Value>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), value);
    return value;
  }

  // Returns the Value for `name` if already interned.
  std::optional<Value> Find(std::string_view name) const {
    auto it = index_.find(name);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  // Name of an interned value; falls back to the decimal rendering.
  std::string NameOf(Value v) const {
    if (v >= 0 && static_cast<std::size_t>(v) < names_.size()) {
      return names_[static_cast<std::size_t>(v)];
    }
    return std::to_string(v);
  }

  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Value, StringHash, std::equal_to<>> index_;
};

}  // namespace sharpcq

#endif  // SHARPCQ_DATA_VALUE_H_
