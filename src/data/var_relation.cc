#include "data/var_relation.h"

#include <algorithm>

namespace sharpcq {

namespace {

// Column positions in `r` of the variables in `vars` (all must be present).
std::vector<int> ColumnsOf(const VarRelation& r, const IdSet& vars) {
  std::vector<int> cols;
  cols.reserve(vars.size());
  for (std::uint32_t v : vars) cols.push_back(r.ColumnOf(v));
  return cols;
}

}  // namespace

int VarRelation::ColumnOf(std::uint32_t var) const {
  const auto& ids = vars_.ids();
  auto it = std::lower_bound(ids.begin(), ids.end(), var);
  SHARPCQ_CHECK_MSG(it != ids.end() && *it == var,
                    "variable not in relation schema");
  return static_cast<int>(it - ids.begin());
}

VarRelation VarRelation::Unit() {
  VarRelation unit{IdSet{}};
  unit.rel().AddRow(std::span<const Value>{});
  return unit;
}

std::string VarRelation::DebugString() const {
  return vars_.ToString() + rel_.DebugString();
}

VarRelation Project(const VarRelation& r, const IdSet& onto) {
  SHARPCQ_CHECK_MSG(onto.IsSubsetOf(r.vars()), "Project: onto not a subset");
  VarRelation out(onto);
  std::vector<int> cols = ColumnsOf(r, onto);
  std::vector<Value> row(onto.size());
  const std::size_t n = r.size();
  for (std::size_t i = 0; i < n; ++i) {
    auto src = r.rel().Row(i);
    for (std::size_t j = 0; j < cols.size(); ++j) {
      row[j] = src[static_cast<std::size_t>(cols[j])];
    }
    out.rel().AddRow(row);
  }
  out.rel().Dedup();
  return out;
}

VarRelation Join(const VarRelation& a, const VarRelation& b) {
  IdSet shared = Intersect(a.vars(), b.vars());
  IdSet out_vars = Union(a.vars(), b.vars());
  VarRelation out(out_vars);

  // Build once: position of every output column in a (or b for b-only vars).
  std::vector<int> from_a(out_vars.size(), -1);
  std::vector<int> from_b(out_vars.size(), -1);
  {
    std::size_t i = 0;
    for (std::uint32_t v : out_vars) {
      if (a.vars().Contains(v)) {
        from_a[i] = a.ColumnOf(v);
      } else {
        from_b[i] = b.ColumnOf(v);
      }
      ++i;
    }
  }

  RowIndex index(b.rel(), ColumnsOf(b, shared));
  std::vector<int> a_shared_cols = ColumnsOf(a, shared);
  std::vector<Value> key(shared.size());
  std::vector<Value> row(out_vars.size());
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    auto ra = a.rel().Row(i);
    for (std::size_t j = 0; j < a_shared_cols.size(); ++j) {
      key[j] = ra[static_cast<std::size_t>(a_shared_cols[j])];
    }
    const std::vector<std::uint32_t>* matches = index.Lookup(key);
    if (matches == nullptr) continue;
    for (std::uint32_t bid : *matches) {
      auto rb = b.rel().Row(bid);
      for (std::size_t c = 0; c < row.size(); ++c) {
        row[c] = from_a[c] >= 0 ? ra[static_cast<std::size_t>(from_a[c])]
                                : rb[static_cast<std::size_t>(from_b[c])];
      }
      out.rel().AddRow(row);
    }
  }
  out.rel().Dedup();
  return out;
}

VarRelation Semijoin(const VarRelation& a, const VarRelation& b,
                     bool* changed) {
  IdSet shared = Intersect(a.vars(), b.vars());
  VarRelation out(a.vars());
  RowIndex index(b.rel(), ColumnsOf(b, shared));
  std::vector<int> a_shared_cols = ColumnsOf(a, shared);
  std::vector<Value> key(shared.size());
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    auto ra = a.rel().Row(i);
    for (std::size_t j = 0; j < a_shared_cols.size(); ++j) {
      key[j] = ra[static_cast<std::size_t>(a_shared_cols[j])];
    }
    if (index.Lookup(key) != nullptr) out.rel().AddRow(ra);
  }
  if (changed != nullptr) *changed = out.size() != a.size();
  return out;
}

VarRelation SelectEqual(const VarRelation& r, std::uint32_t var, Value value) {
  VarRelation out(r.vars());
  const int col = r.ColumnOf(var);
  const std::size_t n = r.size();
  for (std::size_t i = 0; i < n; ++i) {
    auto row = r.rel().Row(i);
    if (row[static_cast<std::size_t>(col)] == value) out.rel().AddRow(row);
  }
  return out;
}

bool SameVarRelation(const VarRelation& a, const VarRelation& b) {
  if (a.vars() != b.vars()) return false;
  return SameRowSet(a.rel(), b.rel());
}

}  // namespace sharpcq
