#ifndef SHARPCQ_DATA_VAR_RELATION_H_
#define SHARPCQ_DATA_VAR_RELATION_H_

#include <optional>
#include <string>

#include "data/relation.h"
#include "util/id_set.h"

namespace sharpcq {

// A relation whose columns are bound to variables: the set-of-substitutions
// view of Section 2 ("Relational Algebra"). Columns are ordered by ascending
// variable id, which makes the schema canonical and joins positional.
//
// Rows are substitutions theta : vars -> Values. All algebra operations
// produce deduplicated results when their inputs are deduplicated, except
// Project, which dedups explicitly.
class VarRelation {
 public:
  VarRelation() : rel_(0) {}
  explicit VarRelation(IdSet vars)
      : vars_(std::move(vars)), rel_(static_cast<int>(vars_.size())) {}

  const IdSet& vars() const { return vars_; }
  Relation& rel() { return rel_; }
  const Relation& rel() const { return rel_; }
  std::size_t size() const { return rel_.size(); }
  bool empty() const { return rel_.empty(); }

  // Column position of `var`, which must be in vars().
  int ColumnOf(std::uint32_t var) const;

  // The substitution with empty domain: the identity for Join. Contains one
  // (empty) row.
  static VarRelation Unit();

  std::string DebugString() const;

  // Value of `var` in row `row_id`.
  Value At(std::size_t row_id, std::uint32_t var) const {
    return rel_.Row(row_id)[static_cast<std::size_t>(ColumnOf(var))];
  }

 private:
  IdSet vars_;
  Relation rel_;
};

// pi_onto(r). `onto` must be a subset of r.vars(). Result is deduplicated.
VarRelation Project(const VarRelation& r, const IdSet& onto);

// Natural join r1 |><| r2 on the shared variables.
VarRelation Join(const VarRelation& a, const VarRelation& b);

// Semijoin a |>< b: the rows of `a` that join with at least one row of `b`.
// Sets *changed (if non-null) when rows were removed.
VarRelation Semijoin(const VarRelation& a, const VarRelation& b,
                     bool* changed = nullptr);

// sigma_{var=value}(r).
VarRelation SelectEqual(const VarRelation& r, std::uint32_t var, Value value);

// Set equality of two variable-bound relations (schemas must match).
bool SameVarRelation(const VarRelation& a, const VarRelation& b);

}  // namespace sharpcq

#endif  // SHARPCQ_DATA_VAR_RELATION_H_
