#include "decomp/explain.h"

#include <functional>

namespace sharpcq {

namespace {

std::string NamedVars(const IdSet& vars, const ConjunctiveQuery& q) {
  return vars.ToString([&q](std::uint32_t v) { return q.VarName(v); });
}

// Renders a rooted tree with per-vertex label function.
std::string RenderTree(const TreeShape& shape,
                       const std::function<std::string(std::size_t)>& label) {
  std::string out;
  if (shape.parent.empty()) return out;
  auto rec = [&](auto&& self, int vertex, int depth) -> void {
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += label(static_cast<std::size_t>(vertex));
    out += '\n';
    for (int child : shape.children[static_cast<std::size_t>(vertex)]) {
      self(self, child, depth + 1);
    }
  };
  rec(rec, shape.root, 0);
  return out;
}

}  // namespace

std::string ExplainHypertree(const Hypertree& ht, const ConjunctiveQuery& q) {
  return RenderTree(ht.shape, [&](std::size_t v) {
    std::string label = NamedVars(ht.chi[v], q) + " [";
    for (std::size_t g = 0; g < ht.lambda[v].size(); ++g) {
      if (g > 0) label += ", ";
      label +=
          q.atoms()[static_cast<std::size_t>(ht.lambda[v][g])].relation;
    }
    label += "]";
    return label;
  });
}

std::string ExplainBagTree(const BagTree& tree, const ViewSet& views,
                           const ConjunctiveQuery& q) {
  return RenderTree(tree.shape, [&](std::size_t v) {
    std::string label = NamedVars(tree.bags[v], q) + " [";
    std::size_t view_id = static_cast<std::size_t>(tree.view_ids[v]);
    const std::vector<int>& guard = views.guards[view_id];
    if (!guard.empty()) {
      for (std::size_t g = 0; g < guard.size(); ++g) {
        if (g > 0) label += ", ";
        label += q.atoms()[static_cast<std::size_t>(guard[g])].relation;
      }
    } else if (views.HasName(view_id)) {
      label += views.names[view_id];
    } else {
      label += "view " + NamedVars(views.vars[view_id], q);
    }
    label += "]";
    return label;
  });
}

}  // namespace sharpcq
