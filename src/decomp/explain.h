#ifndef SHARPCQ_DECOMP_EXPLAIN_H_
#define SHARPCQ_DECOMP_EXPLAIN_H_

#include <string>

#include "decomp/hypertree.h"
#include "decomp/tree_projection.h"
#include "decomp/views.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// Human-readable decomposition rendering, in the style of the paper's
// decomposition figures (Figures 2, 8(e), 10(b), 12(c)): one vertex per
// line, indentation for tree depth, chi as named variable sets, lambda as
// the guard atoms. Diagnostic/EXPLAIN-style output for examples and logs.
//
//   {A,B,I} [mw]
//     {B,E} [wi]
//     {B,C,D} [wt, pt]
//       {D,F,H} [rr, rr]
std::string ExplainHypertree(const Hypertree& ht, const ConjunctiveQuery& q);

// Same for a raw BagTree (guards resolved through the view set; named and
// abstract views are rendered by their name or variable set).
std::string ExplainBagTree(const BagTree& tree, const ViewSet& views,
                           const ConjunctiveQuery& q);

}  // namespace sharpcq

#endif  // SHARPCQ_DECOMP_EXPLAIN_H_
