#include "decomp/hypertree.h"

#include <algorithm>

#include "hypergraph/acyclic.h"
#include "util/check.h"

namespace sharpcq {

namespace {

bool Fail(std::string* why, const std::string& reason) {
  if (why != nullptr) *why = reason;
  return false;
}

}  // namespace

Hypertree HypertreeFromBagTree(const BagTree& tree, const ViewSet& views) {
  Hypertree ht;
  ht.shape = tree.shape;
  ht.chi = tree.bags;
  ht.lambda.reserve(tree.view_ids.size());
  for (int v : tree.view_ids) {
    SHARPCQ_CHECK_MSG(!views.guards[static_cast<std::size_t>(v)].empty(),
                      "view has no guard atoms");
    ht.lambda.push_back(views.guards[static_cast<std::size_t>(v)]);
  }
  return ht;
}

bool IsGeneralizedHypertreeDecomposition(const Hypertree& ht,
                                         const ConjunctiveQuery& q,
                                         std::string* why) {
  if (ht.chi.size() != ht.shape.size() || ht.lambda.size() != ht.chi.size()) {
    return Fail(why, "inconsistent vertex counts");
  }
  // (1) every atom covered by some chi.
  for (const Atom& a : q.atoms()) {
    if (!CoveredBySome(ht.chi, a.Vars())) {
      return Fail(why, "atom not covered: " + a.relation);
    }
  }
  // (2) connectedness.
  if (!SatisfiesRunningIntersection(ht.chi, ht.shape)) {
    return Fail(why, "chi labels violate running intersection");
  }
  // (3) chi(p) inside vars(lambda(p)).
  for (std::size_t p = 0; p < ht.chi.size(); ++p) {
    IdSet guard_vars;
    for (int ai : ht.lambda[p]) {
      guard_vars =
          Union(guard_vars, q.atoms()[static_cast<std::size_t>(ai)].Vars());
    }
    if (!ht.chi[p].IsSubsetOf(guard_vars)) {
      return Fail(why, "chi not guarded at vertex " + std::to_string(p));
    }
  }
  return true;
}

bool SatisfiesDescendantCondition(const Hypertree& ht,
                                  const ConjunctiveQuery& q) {
  // chi(T_p) bottom-up, then check vars(lambda(p)) cap chi(T_p) in chi(p).
  std::vector<int> order = ht.shape.TopoOrder();
  std::vector<IdSet> subtree_chi(ht.chi.size());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::size_t p = static_cast<std::size_t>(*it);
    subtree_chi[p] = ht.chi[p];
    for (int c : ht.shape.children[p]) {
      subtree_chi[p] =
          Union(subtree_chi[p], subtree_chi[static_cast<std::size_t>(c)]);
    }
  }
  for (std::size_t p = 0; p < ht.chi.size(); ++p) {
    IdSet guard_vars;
    for (int ai : ht.lambda[p]) {
      guard_vars =
          Union(guard_vars, q.atoms()[static_cast<std::size_t>(ai)].Vars());
    }
    if (!Intersect(guard_vars, subtree_chi[p]).IsSubsetOf(ht.chi[p])) {
      return false;
    }
  }
  return true;
}

bool IsCompleteDecomposition(const Hypertree& ht, const ConjunctiveQuery& q) {
  std::vector<bool> used(q.NumAtoms(), false);
  for (const auto& l : ht.lambda) {
    for (int ai : l) used[static_cast<std::size_t>(ai)] = true;
  }
  return std::all_of(used.begin(), used.end(), [](bool b) { return b; });
}

Hypertree MakeComplete(Hypertree ht, const ConjunctiveQuery& q) {
  std::vector<bool> used(q.NumAtoms(), false);
  for (const auto& l : ht.lambda) {
    for (int ai : l) used[static_cast<std::size_t>(ai)] = true;
  }
  std::vector<int> parent(ht.shape.parent);
  for (std::size_t a = 0; a < q.NumAtoms(); ++a) {
    if (used[a]) continue;
    IdSet vars = q.atoms()[a].Vars();
    int host = -1;
    for (std::size_t p = 0; p < ht.chi.size(); ++p) {
      if (vars.IsSubsetOf(ht.chi[p])) {
        host = static_cast<int>(p);
        break;
      }
    }
    SHARPCQ_CHECK_MSG(host >= 0, "MakeComplete: atom not covered by any chi");
    ht.chi.push_back(vars);
    ht.lambda.push_back({static_cast<int>(a)});
    parent.push_back(host);
  }
  ht.shape = TreeShape::FromParents(std::move(parent));
  return ht;
}

std::optional<int> HypergraphHypertreeWidth(const std::vector<IdSet>& edges,
                                            int k_max) {
  // Edges as pseudo-atoms: reuse BuildVk by constructing a throwaway query.
  ConjunctiveQuery q;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    std::vector<Term> terms;
    for (std::uint32_t v : edges[i]) {
      // Fabricate variable names "v<N>" stable across edges.
      terms.push_back(Term::Var(q.InternVar("v" + std::to_string(v))));
    }
    q.AddAtom("e" + std::to_string(i), std::move(terms));
  }
  // Variable ids inside q are remapped; rebuild edges in q's id space.
  std::vector<IdSet> remapped;
  remapped.reserve(q.NumAtoms());
  for (const Atom& a : q.atoms()) remapped.push_back(a.Vars());

  for (int k = 1; k <= k_max; ++k) {
    ViewSet views = BuildVk(q, k);
    if (FindTreeProjection(remapped, views).has_value()) return k;
  }
  return std::nullopt;
}

std::optional<int> HypertreeWidth(const ConjunctiveQuery& q, int k_max) {
  std::vector<IdSet> edges = q.BuildHypergraph().edges();
  for (int k = 1; k <= k_max; ++k) {
    ViewSet views = BuildVk(q, k);
    if (FindTreeProjection(edges, views).has_value()) return k;
  }
  return std::nullopt;
}

std::optional<Hypertree> FindHypertreeDecomposition(const ConjunctiveQuery& q,
                                                    int k_max) {
  std::vector<IdSet> edges = q.BuildHypergraph().edges();
  for (int k = 1; k <= k_max; ++k) {
    ViewSet views = BuildVk(q, k);
    auto result = FindTreeProjection(edges, views);
    if (result.has_value()) {
      return HypertreeFromBagTree(result->tree, views);
    }
  }
  return std::nullopt;
}

}  // namespace sharpcq
