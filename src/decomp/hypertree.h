#ifndef SHARPCQ_DECOMP_HYPERTREE_H_
#define SHARPCQ_DECOMP_HYPERTREE_H_

#include <optional>
#include <string>
#include <vector>

#include "decomp/tree_projection.h"
#include "decomp/views.h"
#include "hypergraph/tree_shape.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// A hypertree <T, chi, lambda> for a query (Appendix C): a rooted tree whose
// vertices carry a variable set chi(p) and a guard set lambda(p) of query
// atoms.
struct Hypertree {
  TreeShape shape;
  std::vector<IdSet> chi;
  std::vector<std::vector<int>> lambda;  // atom indices into the query

  int width() const {
    std::size_t w = 1;
    for (const auto& l : lambda) w = std::max(w, l.size());
    return static_cast<int>(w);
  }
  std::size_t num_vertices() const { return chi.size(); }
};

// Converts a BagTree produced by FindTreeProjection into a hypertree, using
// the view guards as lambda labels. Views must carry guards (V^k views do;
// abstract views do not).
Hypertree HypertreeFromBagTree(const BagTree& tree, const ViewSet& views);

// Checks the generalized hypertree decomposition conditions (1)-(3) for `q`:
// every atom covered by some chi, connectedness of every variable, and
// chi(p) inside vars(lambda(p)). On failure, stores a reason in *why.
bool IsGeneralizedHypertreeDecomposition(const Hypertree& ht,
                                         const ConjunctiveQuery& q,
                                         std::string* why = nullptr);

// Condition (4) of full hypertree decompositions (the descendant
// condition): vars(lambda(p)) that appear in the chi labels of the subtree
// rooted at p must appear in chi(p).
bool SatisfiesDescendantCondition(const Hypertree& ht,
                                  const ConjunctiveQuery& q);

// True when every atom of `q` appears in some lambda label.
bool IsCompleteDecomposition(const Hypertree& ht, const ConjunctiveQuery& q);

// Completes a decomposition in the manner of the Theorem 6.2 proof: every
// atom missing from all lambda labels gets a fresh child vertex
// (chi = vars(atom), lambda = {atom}) under a vertex covering it.
Hypertree MakeComplete(Hypertree ht, const ConjunctiveQuery& q);

// The (normal-form) generalized hypertree width of q's hypergraph, searched
// up to `k_max`: the smallest k such that a width-k decomposition exists.
// Returns nullopt if none exists within the budget. Bounded-arity classes:
// this is the classical hypertree width used throughout Section 5.
std::optional<int> HypertreeWidth(const ConjunctiveQuery& q, int k_max);

// Same, for an arbitrary hypergraph (edges are treated as atoms).
std::optional<int> HypergraphHypertreeWidth(const std::vector<IdSet>& edges,
                                            int k_max);

// The width-k decomposition itself (smallest k <= k_max), if any.
std::optional<Hypertree> FindHypertreeDecomposition(const ConjunctiveQuery& q,
                                                    int k_max);

}  // namespace sharpcq

#endif  // SHARPCQ_DECOMP_HYPERTREE_H_
