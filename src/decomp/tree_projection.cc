#include "decomp/tree_projection.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "hypergraph/acyclic.h"
#include "util/check.h"

namespace sharpcq {

int BagTree::Width(const ViewSet& views) const {
  std::size_t w = 0;
  for (int v : view_ids) {
    w = std::max(w, std::max<std::size_t>(
                        std::size_t{1},
                        views.guards[static_cast<std::size_t>(v)].size()));
  }
  return static_cast<int>(w);
}

namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

// Normal-form recursive decomposition with memoization over
// (component, connector) pairs. See tree_projection.h for the contract.
class TreeProjector {
 public:
  TreeProjector(const std::vector<IdSet>& cover_edges, const ViewSet& views,
                const TreeProjectionOptions& options)
      : views_(views), options_(options) {
    for (const IdSet& e : cover_edges) {
      if (!e.empty()) edges_.push_back(e);
    }
    for (const IdSet& e : edges_) all_vars_ = Union(all_vars_, e);
  }

  std::optional<TreeProjectionResult> Run() {
    TreeProjectionResult result;
    if (edges_.empty()) return result;  // nothing to cover: empty tree

    std::vector<IdSet> roots = ComponentsWithin(all_vars_, IdSet{});
    std::vector<Key> root_keys;
    for (const IdSet& c : roots) {
      Key key{c, IdSet{}};
      const Entry& e = Solve(key);
      if (e.cost == kInfeasible) return std::nullopt;
      result.total_cost += e.cost;
      root_keys.push_back(std::move(key));
    }

    // Emit nodes; stitch multiple component roots under the first root.
    std::vector<int> parent;
    for (std::size_t i = 0; i < root_keys.size(); ++i) {
      Emit(root_keys[i], i == 0 ? -1 : 0, &result.tree, &parent);
    }
    result.tree.shape = TreeShape::FromParents(std::move(parent));
    SHARPCQ_DCHECK(IsTreeProjection(result.tree, edges_, views_));
    return result;
  }

 private:
  using Key = std::pair<IdSet, IdSet>;  // (component, connector)

  struct Entry {
    double cost = kInfeasible;
    IdSet bag;
    int view_id = -1;
    std::vector<Key> child_keys;
  };

  // Connected components of `region` \ `bag`, where two variables are
  // adjacent if a cover edge meeting `region` contains both outside `bag`.
  std::vector<IdSet> ComponentsWithin(const IdSet& region,
                                      const IdSet& bag) const {
    // Union-find over the remaining variables.
    std::unordered_map<std::uint32_t, std::uint32_t> parent;
    std::function<std::uint32_t(std::uint32_t)> find =
        [&](std::uint32_t x) -> std::uint32_t {
      auto it = parent.find(x);
      if (it == parent.end()) {
        parent.emplace(x, x);
        return x;
      }
      if (it->second == x) return x;
      std::uint32_t root = find(it->second);
      parent[x] = root;
      return root;
    };
    IdSet remaining = Difference(region, bag);
    for (std::uint32_t v : remaining) find(v);
    for (const IdSet& e : edges_) {
      if (!e.Intersects(region)) continue;
      IdSet rest = Difference(e, bag);
      for (std::size_t i = 1; i < rest.size(); ++i) {
        parent[find(rest[0])] = find(rest[i]);
      }
    }
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> groups;
    for (std::uint32_t v : remaining) groups[find(v)].push_back(v);
    std::vector<IdSet> components;
    components.reserve(groups.size());
    for (auto& [root, members] : groups) {
      components.push_back(IdSet::FromVector(std::move(members)));
    }
    std::sort(components.begin(), components.end());
    return components;
  }

  // Connector of a child component: bag variables touched by its edges.
  IdSet ConnectorOf(const IdSet& component, const IdSet& bag) const {
    IdSet touched;
    for (const IdSet& e : edges_) {
      if (e.Intersects(component)) touched = Union(touched, e);
    }
    return Intersect(bag, touched);
  }

  // Evaluates candidate bag `bag` (guarded by view `view_id`) for
  // (component, conn); returns its cost and child keys or infeasible.
  double TryCandidate(const IdSet& component, const IdSet& bag, int view_id,
                      std::vector<Key>* child_keys) {
    double cost = options_.bag_cost ? options_.bag_cost(bag, view_id) : 1.0;
    if (cost == kInfeasible) return kInfeasible;
    child_keys->clear();
    for (IdSet& child : ComponentsWithin(component, bag)) {
      IdSet connector = ConnectorOf(child, bag);
      Key key{std::move(child), std::move(connector)};
      SHARPCQ_CHECK(!key.first.empty());
      const Entry& e = Solve(key);
      if (e.cost == kInfeasible) return kInfeasible;
      cost += e.cost;
      child_keys->push_back(std::move(key));
    }
    return cost;
  }

  const Entry& Solve(const Key& key) {
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    // Insert a placeholder first so recursive self-lookups (impossible by
    // strict component shrinkage, but cheap to guard) see "infeasible".
    Entry& entry = memo_.emplace(key, Entry{}).first->second;

    const IdSet& component = key.first;
    const IdSet& conn = key.second;
    IdSet scope = Union(component, conn);

    std::unordered_set<IdSet, IdSetHash> tried;
    std::vector<Key> child_keys;
    for (std::size_t v = 0; v < views_.size(); ++v) {
      IdSet maximal = Intersect(views_.vars[v], scope);
      if (!conn.IsSubsetOf(maximal)) continue;
      if (!maximal.Intersects(component)) continue;

      std::vector<IdSet> candidates;
      if (!options_.exhaustive_bags) {
        candidates.push_back(std::move(maximal));
      } else {
        // All subsets of (maximal \ conn) joined with conn, intersecting
        // the component. Reference mode for tests; sizes stay small there.
        IdSet optional_vars = Difference(maximal, conn);
        SHARPCQ_CHECK_MSG(optional_vars.size() <= 20,
                          "exhaustive_bags on too large a view");
        const std::size_t n = optional_vars.size();
        for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
          IdSet bag = conn;
          for (std::size_t b = 0; b < n; ++b) {
            if (mask & (std::size_t{1} << b)) bag.Insert(optional_vars[b]);
          }
          if (bag.Intersects(component)) candidates.push_back(std::move(bag));
        }
      }

      for (IdSet& bag : candidates) {
        if (options_.bag_cost == nullptr && !tried.insert(bag).second) {
          continue;  // same bag from another view: same cost, skip
        }
        double cost = TryCandidate(component, bag, static_cast<int>(v),
                                   &child_keys);
        if (cost < entry.cost) {
          entry.cost = cost;
          entry.bag = bag;
          entry.view_id = static_cast<int>(v);
          entry.child_keys = child_keys;
        }
      }
    }
    return entry;
  }

  // Appends the subtree for `key` to the output tree; returns nothing, the
  // node ids are implicit in emission order.
  void Emit(const Key& key, int parent_id, BagTree* tree,
            std::vector<int>* parent) {
    const Entry& e = memo_.at(key);
    SHARPCQ_CHECK(e.cost != kInfeasible);
    int id = static_cast<int>(tree->bags.size());
    tree->bags.push_back(e.bag);
    tree->view_ids.push_back(e.view_id);
    parent->push_back(parent_id);
    for (const Key& child : e.child_keys) Emit(child, id, tree, parent);
  }

  const ViewSet& views_;
  const TreeProjectionOptions& options_;
  std::vector<IdSet> edges_;
  IdSet all_vars_;
  std::unordered_map<Key, Entry, IdSetPairHash> memo_;
};

}  // namespace

std::optional<TreeProjectionResult> FindTreeProjection(
    const std::vector<IdSet>& cover_edges, const ViewSet& views,
    const TreeProjectionOptions& options) {
  TreeProjector projector(cover_edges, views, options);
  return projector.Run();
}

bool IsTreeProjection(const BagTree& tree,
                      const std::vector<IdSet>& cover_edges,
                      const ViewSet& views) {
  if (tree.bags.size() != tree.shape.size() ||
      tree.view_ids.size() != tree.bags.size()) {
    return false;
  }
  for (std::size_t i = 0; i < tree.bags.size(); ++i) {
    int v = tree.view_ids[i];
    if (v < 0 || static_cast<std::size_t>(v) >= views.size()) return false;
    if (!tree.bags[i].IsSubsetOf(views.vars[static_cast<std::size_t>(v)])) {
      return false;
    }
  }
  for (const IdSet& e : cover_edges) {
    if (e.empty()) continue;
    if (!CoveredBySome(tree.bags, e)) return false;
  }
  return SatisfiesRunningIntersection(tree.bags, tree.shape);
}

}  // namespace sharpcq
