#ifndef SHARPCQ_DECOMP_TREE_PROJECTION_H_
#define SHARPCQ_DECOMP_TREE_PROJECTION_H_

#include <functional>
#include <optional>
#include <vector>

#include "decomp/views.h"
#include "hypergraph/tree_shape.h"
#include "util/id_set.h"

namespace sharpcq {

// A decomposition tree: bags (the chi labels, equivalently the hyperedges of
// the sandwich hypergraph Ha) arranged in a join tree, each guarded by a
// view. Produced by FindTreeProjection; consumed by the counting pipelines.
struct BagTree {
  TreeShape shape;
  std::vector<IdSet> bags;
  std::vector<int> view_ids;  // guard view per bag (index into the ViewSet)

  // Decomposition width: the largest guard size over bags (1 for abstract
  // views).
  int Width(const ViewSet& views) const;
};

struct TreeProjectionOptions {
  // Optional per-bag cost; the search minimizes the total cost over bags.
  // Default: pure existence (all bags cost 1, minimizing vertex count).
  // Used by the D-optimal weighted decompositions of Theorem C.5.
  std::function<double(const IdSet& bag, int view_id)> bag_cost;

  // When true, candidate bags range over *all* subsets of
  // view ∩ (component ∪ connector) instead of only the maximal one.
  // Exponentially slower; used as the completeness reference in tests.
  bool exhaustive_bags = false;
};

struct TreeProjectionResult {
  BagTree tree;
  double total_cost = 0.0;
};

// Searches for a tree projection: an acyclic hypergraph Ha (the bags) with
// cover_edges <= Ha <= views (Section 2, "Tree Projections"). The search is
// the normal-form recursive decomposition over [bag]-components with
// memoization (det-k-decomp style): candidate bags are
// view ∩ (component ∪ connector). This is sound unconditionally and
// complete for decompositions in normal form; see DESIGN.md ("Key design
// decisions") for the relation to exact GHD search, which is NP-hard.
//
// Empty cover edges are ignored. Returns nullopt when no (normal-form) tree
// projection exists — in particular whenever some cover edge is not
// contained in any view.
std::optional<TreeProjectionResult> FindTreeProjection(
    const std::vector<IdSet>& cover_edges, const ViewSet& views,
    const TreeProjectionOptions& options = {});

// Validates that `tree` is an acyclic sandwich for (cover_edges, views):
// bags form a join tree, every cover edge is inside some bag, and every bag
// is inside its guard view. Used by tests and internal CHECKs.
bool IsTreeProjection(const BagTree& tree,
                      const std::vector<IdSet>& cover_edges,
                      const ViewSet& views);

}  // namespace sharpcq

#endif  // SHARPCQ_DECOMP_TREE_PROJECTION_H_
