#include "decomp/views.h"

#include <map>

namespace sharpcq {

ViewSet BuildVk(const ConjunctiveQuery& q, int k) {
  // Collect candidate (var set, guard) pairs; keep the smallest guard per
  // variable set.
  std::map<IdSet, std::vector<int>> best;
  std::vector<IdSet> atom_vars;
  atom_vars.reserve(q.NumAtoms());
  for (const Atom& a : q.atoms()) atom_vars.push_back(a.Vars());

  std::vector<int> stack;
  IdSet current;
  auto rec = [&](auto&& self, std::size_t start, const IdSet& vars) -> void {
    if (!stack.empty()) {
      auto it = best.find(vars);
      if (it == best.end() || it->second.size() > stack.size()) {
        best[vars] = stack;
      }
    }
    if (static_cast<int>(stack.size()) == k) return;
    for (std::size_t i = start; i < atom_vars.size(); ++i) {
      stack.push_back(static_cast<int>(i));
      self(self, i + 1, Union(vars, atom_vars[i]));
      stack.pop_back();
    }
  };
  rec(rec, 0, IdSet{});

  ViewSet out;
  out.vars.reserve(best.size());
  out.guards.reserve(best.size());
  for (auto& [vars, guard] : best) {
    out.vars.push_back(vars);
    out.guards.push_back(std::move(guard));
  }
  return out;
}

ViewSet ViewsFromEdges(const std::vector<IdSet>& edges) {
  ViewSet out;
  out.vars = edges;
  out.guards.assign(edges.size(), {});
  return out;
}

ViewSet ViewsFromNamedRelations(
    const std::vector<std::pair<std::string, IdSet>>& views) {
  ViewSet out;
  out.vars.reserve(views.size());
  out.names.reserve(views.size());
  for (const auto& [name, vars] : views) {
    out.vars.push_back(vars);
    out.names.push_back(name);
  }
  out.guards.assign(views.size(), {});
  return out;
}

}  // namespace sharpcq
