#ifndef SHARPCQ_DECOMP_VIEWS_H_
#define SHARPCQ_DECOMP_VIEWS_H_

#include <vector>

#include "query/conjunctive_query.h"
#include "util/id_set.h"

namespace sharpcq {

// A view set (Section 3): the available "resources" a decomposition may use.
// Every structural method differs only in how this set is built; V^k_Q
// (Section 4) takes one view per subset of at most k query atoms. Views in
// the general tree-projection framework may instead be *named*: their
// relations are stored in the database (columns in ascending-VarId order)
// and must be legal w.r.t. the query (see IsLegalViewDatabase).
struct ViewSet {
  // Variable set of each view.
  std::vector<IdSet> vars;
  // Atom indices (into the generating query) whose join defines the view.
  // Empty for abstract or named views.
  std::vector<std::vector<int>> guards;
  // Relation names for named views ("" when the view is guard-defined or
  // purely abstract). Parallel to `vars` when non-empty.
  std::vector<std::string> names;

  std::size_t size() const { return vars.size(); }
  bool HasName(std::size_t i) const {
    return i < names.size() && !names[i].empty();
  }
};

// V^k_Q: one view per subset C of atoms(Q) with 1 <= |C| <= k, deduplicated
// by variable set (keeping a smallest guard). Includes the query views
// (k = 1 subsets).
ViewSet BuildVk(const ConjunctiveQuery& q, int k);

// Abstract views from explicit variable sets (e.g. the paper's hand-drawn
// view hypergraphs like HV0 of Figure 4). Guards are left empty.
ViewSet ViewsFromEdges(const std::vector<IdSet>& edges);

// Named views: each (name, variable set) pair refers to a database relation
// holding the view's tuples, columns ordered by ascending VarId.
ViewSet ViewsFromNamedRelations(
    const std::vector<std::pair<std::string, IdSet>>& views);

}  // namespace sharpcq

#endif  // SHARPCQ_DECOMP_VIEWS_H_
