#include "engine/engine.h"

#include <utility>

#include "algebra/exec_policy.h"
#include "algebra/miss_filter.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/metrics.h"

namespace sharpcq {

namespace {

SlowQueryLog::Options SlowLogOptions(const EngineOptions& options) {
  SlowQueryLog::Options o;
  o.capacity = options.slow_query_log_capacity;
  o.threshold_ms = options.slow_query_threshold_ms;
  o.sample_every = options.slow_query_sample_every == 0
                       ? 1u
                       : static_cast<std::uint32_t>(
                             options.slow_query_sample_every);
  return o;
}

}  // namespace

std::optional<PlannerOptions> PlannerOptionsForStrategy(
    std::string_view name, const PlannerOptions& base) {
  PlannerOptions options = base;
  if (name == "auto") return options;
  if (name == "sharp") {
    options.enable_acyclic_ps13 = false;
    options.enable_hybrid = false;
    return options;
  }
  if (name == "ps13") {
    options.max_width = 0;  // no width budget: the #-hypertree search is off
    options.enable_acyclic_ps13 = true;
    options.enable_hybrid = false;
    return options;
  }
  if (name == "hybrid") {
    options.enable_acyclic_ps13 = false;
    options.enable_hybrid = true;
    return options;
  }
  if (name == "backtracking") {
    options.max_width = 0;
    options.enable_acyclic_ps13 = false;
    options.enable_hybrid = false;
    return options;
  }
  return std::nullopt;
}

CountingEngine::CountingEngine(EngineOptions options)
    : options_(options),
      cache_(options.plan_cache_capacity, options.plan_cache_shards),
      slow_log_(SlowLogOptions(options)) {}

CountingEngine::Planned CountingEngine::Plan(const ConjunctiveQuery& q) {
  return Plan(q, options_.planner);
}

CountingEngine::Planned CountingEngine::Plan(const ConjunctiveQuery& q,
                                             const PlannerOptions& options) {
  return Plan(q, options, /*profile=*/nullptr);
}

CountingEngine::Planned CountingEngine::Plan(const ConjunctiveQuery& q,
                                             const PlannerOptions& options,
                                             const DataProfile* profile) {
  const MonotonicClock::time_point start = MonotonicNow();
  Planned out;
  out.canonical = CanonicalizeQuery(q);
  // The key is (query shape, planner policy, data-profile class): a plan
  // tie-broken by statistics must not serve a database in a different
  // class, and a profile-free plan must not serve a profiled call.
  const std::string key =
      out.canonical.key + "$" + options.CacheFingerprint() + "#" +
      (profile != nullptr ? profile->Fingerprint() : std::string("off"));
  PlanCache::Lookup lookup = cache_.FindWithStats(key);
  out.cache_shard = lookup.shard;
  out.cache_shard_hits = lookup.shard_hits;
  out.cache_shard_misses = lookup.shard_misses;
  if (lookup.plan != nullptr) {
    out.plan = std::move(lookup.plan);
    out.cache_hit = true;
  } else {
    // Plan against the canonical query so the artifacts are valid for every
    // query with this shape, whatever its variable names or atom order.
    // Two threads missing on the same key both plan and both insert; the
    // duplicate work is tolerated (plans for equal keys are equivalent and
    // the second insert just replaces the first) — see DESIGN.md.
    out.plan = std::make_shared<const CountingPlan>(
        MakePlan(out.canonical.query, options, profile));
    cache_.Insert(key, out.plan);
  }
  out.planner_ms = ElapsedMs(start);
  return out;
}

CountResult CountingEngine::Count(const ConjunctiveQuery& q,
                                  const Database& db) {
  return Count(q, db, options_.planner);
}

CountResult CountingEngine::Count(const ConjunctiveQuery& q,
                                  const Database& db,
                                  const PlannerOptions& options) {
  return Count(q, db, options, /*cancel=*/nullptr);
}

CountResult CountingEngine::Count(const ConjunctiveQuery& q,
                                  const Database& db,
                                  const PlannerOptions& options,
                                  const CancelToken* cancel) {
  return Count(q, db, options, cancel, /*trace=*/nullptr);
}

CountResult CountingEngine::Count(const ConjunctiveQuery& q,
                                  const Database& db,
                                  const PlannerOptions& options,
                                  const CancelToken* cancel, Trace* trace) {
  const MonotonicClock::time_point start = MonotonicNow();
  // Install the caller's trace for the duration of the call; with no trace
  // every TraceSpan below (and in the strategies) is the null sink.
  std::optional<TraceScope> trace_scope;
  if (trace != nullptr) trace_scope.emplace(trace);

  // Profile the query's relations for the cost model. Stats are computed
  // lazily once per table and cached (or preloaded from a v2 snapshot), so
  // per-call cost is a few map lookups; the fingerprint keys the plan
  // cache per data-profile class.
  DataProfile profile;
  const DataProfile* profile_ptr = nullptr;
  if (options_.enable_cost_model) {
    TraceSpan span("profile");
    std::vector<std::string> names;
    names.reserve(q.NumAtoms());
    for (const Atom& atom : q.atoms()) names.push_back(atom.relation);
    span.NoteCount("relations", names.size());
    profile = BuildDataProfile(db, names);
    profile_ptr = &profile;
  }
  Planned planned;
  {
    TraceSpan span("plan");
    planned = Plan(q, options, profile_ptr);
    span.Note("strategy", PlanStrategyName(planned.plan->strategy));
    span.Note("cache", planned.cache_hit ? "hit" : "miss");
    span.NoteCount("cache_shard", planned.cache_shard);
    if (planned.plan->cost_model_steered) {
      span.Note("cost_model", "steered");
    }
  }
  // Install this engine's execution policy for the duration of the
  // execution: kernel probe loops above the row threshold morselize onto
  // the engine pool (created lazily on the first such probe), the cancel
  // token reaches the morsel claim loops and checkpoint sites, and filter
  // tallies land in this execution's own stats sink (so concurrent counts
  // never pollute each other's provenance).
  ExecPolicy policy;
  if (options_.enable_morsel_parallelism) {
    policy.pool = [this] { return &Pool(); };
  }
  policy.morsel_rows = options_.morsel_rows;
  policy.row_threshold = options_.morsel_row_threshold;
  policy.cancel = cancel;
  policy.cost_model = options_.enable_cost_model;
  ExecStats stats;
  policy.stats = &stats;
  // Memory budgets: a fresh per-execution budget tracks the bytes this
  // Count allocates (and enforces max_query_bytes when set); the shared
  // process budget accumulates in-flight totals across engines. The tracker
  // exists whenever either budget is configured — its used() is what gets
  // released from the process budget when this execution ends.
  std::optional<MemoryBudget> query_budget;
  MemoryBudget* process_budget = options_.total_budget.get();
  if (options_.max_query_bytes > 0 || process_budget != nullptr) {
    query_budget.emplace(options_.max_query_bytes);
    policy.query_memory = &*query_budget;
    policy.process_memory = process_budget;
  }
  ExecScope scope(std::move(policy));
  // Disable probe-filter consults when the engine is configured without
  // them (results never change; only the consult is gated).
  std::optional<MissFilterDisableScope> no_filters;
  if (!options_.enable_probe_filters) no_filters.emplace();
  CountResult result;
  {
    TraceSpan span("execute");
    try {
      CheckExecInterrupt();  // expired before execution: fail without a probe
      result = ExecutePlan(*planned.plan, db);
    } catch (const ExecInterrupted& interrupted) {
      result = CountResult{};
      result.status = interrupted.reason == CancelToken::StopReason::kDeadline
                          ? CountStatus::kDeadlineExceeded
                          : CountStatus::kCancelled;
      result.method = "interrupted";
    } catch (const ExecResourceExhausted& exhausted) {
      result = CountResult{};
      result.status = CountStatus::kResourceExhausted;
      result.method = "interrupted";
      result.mem_refused_bytes = exhausted.requested_bytes;
    }
    // Pool workers contribute through the ExecStats atomics, never the
    // trace; their totals are annotated here, when the span closes.
    span.Note("method", result.method);
    span.Note("status", CountStatusName(result.status));
    if (result.width > 0) {
      span.NoteCount("width", static_cast<std::uint64_t>(result.width));
    }
    span.NoteCount("morsels", stats.morsels.load(std::memory_order_relaxed));
    span.NoteCount("worklist_iterations",
                   stats.worklist_iterations.load(std::memory_order_relaxed));
    span.NoteCount("filter_hits",
                   stats.filter_hits.load(std::memory_order_relaxed));
    span.NoteCount("filter_passes",
                   stats.filter_passes.load(std::memory_order_relaxed));
    span.NoteCount("cost_reorders",
                   stats.cost_reorders.load(std::memory_order_relaxed));
  }
  result.filter_hits = stats.filter_hits.load(std::memory_order_relaxed);
  result.filter_passes = stats.filter_passes.load(std::memory_order_relaxed);
  result.cost_reorders = stats.cost_reorders.load(std::memory_order_relaxed);
  result.morsels = stats.morsels.load(std::memory_order_relaxed);
  result.worklist_iterations =
      stats.worklist_iterations.load(std::memory_order_relaxed);
  result.cost_model_steered =
      planned.plan->cost_model_steered || result.cost_reorders > 0;
  if (query_budget.has_value()) {
    result.mem_charged_bytes = query_budget->used();
    // The execution is over: whatever it charged into the shared process
    // budget is no longer held (tables scoped to the execution are freed as
    // the strategies unwind; index builds cached past it are a documented
    // approximation).
    if (process_budget != nullptr) {
      process_budget->Release(query_budget->used());
    }
  }
  result.planner_ms = planned.planner_ms;
  result.cache_hit = planned.cache_hit;
  result.cache_shard = planned.cache_shard;
  result.cache_shard_hits = planned.cache_shard_hits;
  result.cache_shard_misses = planned.cache_shard_misses;
  if (trace != nullptr) trace->Finish();

  const double total_ms = ElapsedMs(start);
  {
    MetricsRegistry& registry = MetricsRegistry::Instance();
    static Counter& ok_total =
        registry.GetCounter("sharpcq_counts_total", "{status=\"ok\"}");
    static Counter& deadline_total = registry.GetCounter(
        "sharpcq_counts_total", "{status=\"deadline_exceeded\"}");
    static Counter& cancelled_total =
        registry.GetCounter("sharpcq_counts_total", "{status=\"cancelled\"}");
    static Counter& exhausted_total = registry.GetCounter(
        "sharpcq_counts_total", "{status=\"resource_exhausted\"}");
    static Histogram& latency =
        registry.GetHistogram("sharpcq_count_latency_ms");
    switch (result.status) {
      case CountStatus::kOk:
        ok_total.Add(1);
        break;
      case CountStatus::kDeadlineExceeded:
        deadline_total.Add(1);
        break;
      case CountStatus::kCancelled:
        cancelled_total.Add(1);
        break;
      case CountStatus::kResourceExhausted:
        exhausted_total.Add(1);
        break;
    }
    latency.Record(total_ms);
    // Per-strategy counter: one locked map lookup per Count — off the
    // kernel hot path, so simplicity beats caching the four refs.
    registry
        .GetCounter("sharpcq_counts_by_strategy_total",
                    std::string("{strategy=\"") +
                        PlanStrategyName(planned.plan->strategy) + "\"}")
        .Add(1);
  }
  if (slow_log_.enabled() && slow_log_.ShouldRecord(total_ms)) {
    SlowQueryEntry entry;
    entry.wall_time = WallTimestamp();
    entry.query = planned.canonical.key;
    entry.method = result.method;
    entry.planner_ms = result.planner_ms;
    entry.execute_ms = result.execute_ms;
    if (trace != nullptr) entry.trace = SerializeTraceNode(trace->root());
    slow_log_.Record(std::move(entry));
    MetricsRegistry::Instance()
        .GetCounter("sharpcq_slow_queries_total")
        .Add(1);
  }
  return result;
}

ThreadPool& CountingEngine::Pool() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.batch_threads);
  }
  return *pool_;
}

std::vector<CountResult> CountingEngine::CountBatch(
    const std::vector<CountJob>& jobs) {
  return CountBatch(jobs, options_.planner);
}

std::vector<CountResult> CountingEngine::CountBatch(
    const std::vector<CountJob>& jobs, const PlannerOptions& options) {
  std::vector<CountResult> results(jobs.size());
  std::vector<std::future<void>> done;
  done.reserve(jobs.size());
  ThreadPool& pool = Pool();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SHARPCQ_CHECK_MSG(jobs[i].db != nullptr, "CountJob.db must be set");
    auto task = std::make_shared<std::packaged_task<void()>>(
        [this, &jobs, &results, &options, i] {
          results[i] = Count(jobs[i].query, *jobs[i].db, options);
        });
    done.push_back(task->get_future());
    pool.Submit([task] { (*task)(); });
  }
  // Wait for every job before touching any future's result: the tasks
  // capture jobs/results/options by reference, so no exception may unwind
  // this frame while a sibling task can still run.
  for (std::future<void>& f : done) f.wait();
  for (std::future<void>& f : done) f.get();
  return results;
}

std::future<CountResult> CountingEngine::CountAsync(const ConjunctiveQuery& q,
                                                    const Database& db) {
  return CountAsync(q, db, options_.planner);
}

std::future<CountResult> CountingEngine::CountAsync(
    const ConjunctiveQuery& q, const Database& db,
    const PlannerOptions& options) {
  auto task = std::make_shared<std::packaged_task<CountResult()>>(
      [this, query = q, &db, options] { return Count(query, db, options); });
  std::future<CountResult> future = task->get_future();
  Pool().Submit([task] { (*task)(); });
  return future;
}

CountingEngine& CountingEngine::Shared() {
  static CountingEngine* engine = new CountingEngine();
  return *engine;
}

}  // namespace sharpcq
