#include "engine/engine.h"

#include <chrono>

namespace sharpcq {

CountingEngine::CountingEngine(EngineOptions options)
    : options_(options), cache_(options.plan_cache_capacity) {}

CountingEngine::Planned CountingEngine::Plan(const ConjunctiveQuery& q) {
  return Plan(q, options_.planner);
}

CountingEngine::Planned CountingEngine::Plan(const ConjunctiveQuery& q,
                                             const PlannerOptions& options) {
  auto start = std::chrono::steady_clock::now();
  Planned out;
  out.canonical = CanonicalizeQuery(q);
  const std::string key = out.canonical.key + "$" + options.CacheFingerprint();
  out.plan = cache_.Find(key);
  if (out.plan != nullptr) {
    out.cache_hit = true;
  } else {
    // Plan against the canonical query so the artifacts are valid for every
    // query with this shape, whatever its variable names or atom order.
    out.plan = std::make_shared<const CountingPlan>(
        MakePlan(out.canonical.query, options));
    cache_.Insert(key, out.plan);
  }
  out.planner_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return out;
}

CountResult CountingEngine::Count(const ConjunctiveQuery& q,
                                  const Database& db) {
  return Count(q, db, options_.planner);
}

CountResult CountingEngine::Count(const ConjunctiveQuery& q,
                                  const Database& db,
                                  const PlannerOptions& options) {
  Planned planned = Plan(q, options);
  CountResult result = ExecutePlan(*planned.plan, db);
  result.planner_ms = planned.planner_ms;
  result.cache_hit = planned.cache_hit;
  return result;
}

CountingEngine& CountingEngine::Shared() {
  static CountingEngine* engine = new CountingEngine();
  return *engine;
}

}  // namespace sharpcq
