#ifndef SHARPCQ_ENGINE_ENGINE_H_
#define SHARPCQ_ENGINE_ENGINE_H_

#include <memory>

#include "core/sharp_counting.h"
#include "data/database.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "engine/plan_cache.h"
#include "engine/planner.h"
#include "query/canonical.h"

namespace sharpcq {

struct EngineOptions {
  PlannerOptions planner;
  std::size_t plan_cache_capacity = 1024;
};

// The unified counting engine: canonicalize -> plan (cached) -> execute.
//
// Planning (structural classification, core computation, width searches) is
// query-only and FPT, so the engine caches plans under the canonical query
// shape: a production service answering millions of repeated query shapes
// pays the Chen–Mengel-style classification once per shape, not once per
// count. Execution materializes the chosen strategy against a concrete
// database and is always exact.
//
// The legacy facades CountAnswers (core/sharp_counting.h) and
// CountAnswersWithHybrid (hybrid/hybrid_counting.h) are thin wrappers over
// the process-wide Shared() engine with their historical strategy gates.
class CountingEngine {
 public:
  explicit CountingEngine(EngineOptions options = {});

  // Plan + execute with the engine's default planner options.
  CountResult Count(const ConjunctiveQuery& q, const Database& db);
  // Same with per-call planner options (cached separately per policy).
  CountResult Count(const ConjunctiveQuery& q, const Database& db,
                    const PlannerOptions& options);

  // A planning outcome: the (possibly cached) plan plus this call's
  // canonicalization of q, whose variable mapping callers need to translate
  // plan artifacts back to the original variables (e.g. for enumeration).
  struct Planned {
    std::shared_ptr<const CountingPlan> plan;
    CanonicalForm canonical;
    bool cache_hit = false;
    double planner_ms = 0.0;  // time this call spent planning (≈0 on a hit)
  };
  Planned Plan(const ConjunctiveQuery& q);
  Planned Plan(const ConjunctiveQuery& q, const PlannerOptions& options);

  const EngineOptions& options() const { return options_; }
  PlanCache::Stats cache_stats() const { return cache_.stats(); }
  void ClearCache() { cache_.Clear(); }

  // The process-wide engine used by the legacy facades and the enumeration
  // path; all of them share one plan cache.
  static CountingEngine& Shared();

 private:
  EngineOptions options_;
  PlanCache cache_;
};

}  // namespace sharpcq

#endif  // SHARPCQ_ENGINE_ENGINE_H_
