#ifndef SHARPCQ_ENGINE_ENGINE_H_
#define SHARPCQ_ENGINE_ENGINE_H_

#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "algebra/exec_policy.h"
#include "algebra/stats.h"
#include "core/sharp_counting.h"
#include "data/database.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "engine/plan_cache.h"
#include "engine/planner.h"
#include "query/canonical.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace sharpcq {

struct EngineOptions {
  PlannerOptions planner;
  std::size_t plan_cache_capacity = 1024;
  // Requested plan-cache shard count; clamped by capacity so every shard
  // holds at least PlanCache::kMinShardCapacity plans (small caches keep
  // one shard and exact LRU order).
  std::size_t plan_cache_shards = 8;
  // Worker threads behind CountBatch/CountAsync; 0 = hardware concurrency.
  // The pool is created lazily: on the first batch/async call, or on the
  // first probe loop big enough to morselize (below). A synchronous engine
  // on small data never starts threads; to guarantee no threads ever, also
  // set enable_morsel_parallelism = false.
  std::size_t batch_threads = 0;
  // Intra-query morsel parallelism: large probe loops inside an execution
  // (Semijoin/Join probes, the CountFullJoin weight aggregation) split
  // their probe side into row-range morsels dispatched on the same thread
  // pool, with the calling thread participating (so a batch job morselizing
  // on a saturated pool still finishes on its own). Probe sides below
  // morsel_row_threshold rows never dispatch — small queries stay
  // single-threaded and allocation-free. Set enable_morsel_parallelism =
  // false to force every operator sequential (the differential tests
  // compare both settings).
  bool enable_morsel_parallelism = true;
  std::size_t morsel_rows = kDefaultMorselRows;
  std::size_t morsel_row_threshold = kDefaultMorselRowThreshold;
  // Per-index miss filters on the probe path: probes whose key the filter
  // rules out skip the slot walk entirely. On by default (the filters are
  // one-sided, so results never change); set false to measure raw probe
  // cost or to sidestep the filters' few bytes of cache pressure on
  // hit-heavy workloads. Filter outcomes are reported per query in
  // CountResult::filter_hits / filter_passes.
  bool enable_probe_filters = true;
  // Statistics-driven cost model (algebra/stats.h). When on, each Count
  // profiles the query's relations (lazily computed and cached per table —
  // free for tables loaded from v2 snapshots), hands the profile to the
  // planner for strategy tie-breaks, appends its coarse fingerprint to the
  // plan-cache key ("same shape + same data class => same plan"; an ingest
  // that changes a relation's class re-plans, one that does not keeps the
  // cache warm), and enables the runtime scheduling heuristics: join-tree
  // rooting/child ordering, consistency-worklist priority, and the
  // build-size-aware morsel threshold. Scheduling only — counts are
  // identical with it off (the differential suite checks exactly that).
  bool enable_cost_model = true;
  // Slow-query ring buffer (util/trace.h): every Count whose planner +
  // execute time crosses the threshold is a candidate, every
  // `slow_query_sample_every`-th candidate is retained (deterministically),
  // and the ring keeps the most recent `slow_query_log_capacity` entries —
  // with the full span tree when the call was traced. Capacity 0 or a
  // negative threshold disables recording entirely.
  std::size_t slow_query_log_capacity = 32;
  double slow_query_threshold_ms = 100.0;
  std::size_t slow_query_sample_every = 1;
  // Memory budgets (graceful degradation, not precise accounting: charges
  // are allocation-granularity estimates of table/index memory).
  //
  // max_query_bytes caps the bytes one Count may allocate during its
  // execution; an over-budget Count unwinds at the refusing allocation and
  // returns status kResourceExhausted — the engine stays fully usable for
  // subsequent calls. 0 = unlimited.
  std::uint64_t max_query_bytes = 0;
  // A process-wide budget shared across engines (the daemon installs one
  // over every database's engine): tracks bytes held by all in-flight
  // executions; each execution's total is released when it ends. Null =
  // unlimited. Shared because several engines (one per database) must
  // drain into one daemon-wide cap.
  std::shared_ptr<MemoryBudget> total_budget;
};

// Named planner policies, for tools that take a strategy by name (the
// sharpcq CLI's --strategy flag, the storage catalog's config). Returns the
// planner gates that force the strategy, derived from `base`:
//
//   "auto"          base unchanged (the planner's preference order)
//   "sharp"         structural #-hypertree only, backtracking fallback
//   "ps13"          acyclic PS13 only, backtracking fallback
//   "hybrid"        hybrid #b gates (PS13 disabled; a width-k #-hypertree
//                   still wins if one exists — the planner's fixed order)
//   "backtracking"  brute force
//
// nullopt for an unknown name.
std::optional<PlannerOptions> PlannerOptionsForStrategy(
    std::string_view name, const PlannerOptions& base = {});

// One unit of batch work: count `query` over `*db`. The database is
// referenced, not copied — it must outlive the CountBatch/CountAsync call.
struct CountJob {
  ConjunctiveQuery query;
  const Database* db = nullptr;
};

// The unified counting engine: canonicalize -> plan (cached) -> execute.
//
// Planning (structural classification, core computation, width searches) is
// query-only and FPT, so the engine caches plans under the canonical query
// shape: a production service answering millions of repeated query shapes
// pays the Chen–Mengel-style classification once per shape, not once per
// count. Execution materializes the chosen strategy against a concrete
// database and is always exact.
//
// One engine may be shared freely across threads: the plan cache is
// sharded and internally locked, plans are immutable once built, and every
// execution path is a pure function of (plan, database) — see the
// "Concurrency model" section of DESIGN.md. CountBatch/CountAsync run jobs
// on the engine's work-stealing thread pool.
//
// The legacy facades CountAnswers (core/sharp_counting.h) and
// CountAnswersWithHybrid (hybrid/hybrid_counting.h) are thin wrappers over
// the process-wide Shared() engine with their historical strategy gates.
class CountingEngine {
 public:
  explicit CountingEngine(EngineOptions options = {});

  // Plan + execute with the engine's default planner options.
  CountResult Count(const ConjunctiveQuery& q, const Database& db);
  // Same with per-call planner options (cached separately per policy).
  CountResult Count(const ConjunctiveQuery& q, const Database& db,
                    const PlannerOptions& options);
  // Same with a cooperative stop signal: the token is threaded into the
  // kernel's morsel claim loops (checked once per morsel) and the
  // strategies' checkpoint sites, so a deadline expiring — or an explicit
  // Cancel(), e.g. the daemon noticing the client disconnected — stops the
  // execution within one morsel of probe work and returns a CountResult
  // whose status is kDeadlineExceeded/kCancelled (count is meaningless
  // then). `cancel` may be null (never stops) and must outlive the call.
  CountResult Count(const ConjunctiveQuery& q, const Database& db,
                    const PlannerOptions& options,
                    const CancelToken* cancel);
  // Same with a trace sink: when `trace` is non-null it is installed as the
  // calling thread's current trace for the duration of the call, the engine
  // records profile/plan/execute phase spans (strategy chosen, cache and
  // cost-model provenance, per-phase steady-clock timings, kernel tallies),
  // and the strategies add their own nested spans. trace->Finish() is
  // called before returning. Null behaves exactly like the overload above —
  // the spans' null-sink fast path keeps untraced calls free.
  CountResult Count(const ConjunctiveQuery& q, const Database& db,
                    const PlannerOptions& options, const CancelToken* cancel,
                    Trace* trace);

  // Counts every job on the batch pool and blocks until all are done;
  // results are positionally aligned with `jobs`. Jobs sharing a canonical
  // shape share one cached plan, whichever thread plans it first.
  std::vector<CountResult> CountBatch(const std::vector<CountJob>& jobs);
  std::vector<CountResult> CountBatch(const std::vector<CountJob>& jobs,
                                      const PlannerOptions& options);

  // Fire-and-collect: one job on the batch pool. The query is copied into
  // the task; `db` is referenced and must outlive the returned future.
  std::future<CountResult> CountAsync(const ConjunctiveQuery& q,
                                      const Database& db);
  std::future<CountResult> CountAsync(const ConjunctiveQuery& q,
                                      const Database& db,
                                      const PlannerOptions& options);

  // A planning outcome: the (possibly cached) plan plus this call's
  // canonicalization of q, whose variable mapping callers need to translate
  // plan artifacts back to the original variables (e.g. for enumeration).
  struct Planned {
    std::shared_ptr<const CountingPlan> plan;
    CanonicalForm canonical;
    bool cache_hit = false;
    double planner_ms = 0.0;  // time this call spent planning (≈0 on a hit)
    // Shard provenance, copied into CountResult by Count.
    std::size_t cache_shard = 0;
    std::size_t cache_shard_hits = 0;
    std::size_t cache_shard_misses = 0;
  };
  Planned Plan(const ConjunctiveQuery& q);
  Planned Plan(const ConjunctiveQuery& q, const PlannerOptions& options);
  // With a data profile: the profile joins the planner's strategy choice
  // AND the cache key (via DataProfile::Fingerprint, so a cached plan is
  // only reused for databases in the same profile class). Null behaves
  // like the two-argument overload — cached under the "off" class.
  Planned Plan(const ConjunctiveQuery& q, const PlannerOptions& options,
               const DataProfile* profile);

  const EngineOptions& options() const { return options_; }
  PlanCache::Stats cache_stats() const { return cache_.stats(); }
  void ClearCache() { cache_.Clear(); }

  // The engine's slow-query ring (internally locked); see the
  // slow_query_* options above. The daemon's `inspect slowlog=1` reads it.
  SlowQueryLog& slow_query_log() { return slow_log_; }

  // The process-wide engine used by the legacy facades and the enumeration
  // path; all of them share one plan cache.
  static CountingEngine& Shared();

 private:
  ThreadPool& Pool();

  EngineOptions options_;
  PlanCache cache_;
  SlowQueryLog slow_log_;

  std::mutex pool_mu_;                // guards lazy pool construction
  std::unique_ptr<ThreadPool> pool_;  // created on first batch/async call
};

}  // namespace sharpcq

#endif  // SHARPCQ_ENGINE_ENGINE_H_
