// Declared in core/enumerate_answers.h; defined here because enumeration
// plans through the engine layer (shared plan cache), which sits above
// core/.

#include "core/enumerate_answers.h"

#include <unordered_map>

#include "core/materialize.h"
#include "count/join_tree_instance.h"
#include "engine/engine.h"
#include "util/check.h"

namespace sharpcq {

namespace {

// DFS over the join tree of a full-reduced, free-variables-only instance.
// Global consistency guarantees every consistent prefix extends to a full
// answer, so the delay between answers is polynomial in the instance.
class Enumerator {
 public:
  Enumerator(const JoinTreeInstance& instance, const IdSet& free,
             const AnswerCallback& callback)
      : instance_(instance), free_(free), callback_(callback) {
    order_ = instance_.shape.TopoOrder();
  }

  std::size_t Run() {
    if (instance_.nodes.empty()) return 0;
    Recurse(0);
    return emitted_;
  }

 private:
  bool Recurse(std::size_t depth) {
    if (stopped_) return false;
    if (depth == order_.size()) {
      std::vector<Value> answer;
      answer.reserve(free_.size());
      for (std::uint32_t v : free_) {
        auto it = assignment_.find(v);
        SHARPCQ_CHECK_MSG(it != assignment_.end(),
                          "free variable missing from instance");
        answer.push_back(it->second);
      }
      ++emitted_;
      if (!callback_(answer)) stopped_ = true;
      return !stopped_;
    }
    const Rel& rel =
        instance_.nodes[static_cast<std::size_t>(order_[depth])];
    const auto& vars = rel.vars();
    const Table& table = *rel.table();
    for (std::size_t row = 0; row < rel.size() && !stopped_; ++row) {
      std::vector<std::uint32_t> bound_here;
      bool ok = true;
      int c = 0;
      for (std::uint32_t v : vars) {
        Value value = table.at(row, c);
        auto [it, inserted] = assignment_.emplace(v, value);
        if (inserted) {
          bound_here.push_back(v);
        } else if (it->second != value) {
          ok = false;
        }
        ++c;
        if (!ok) break;
      }
      if (ok) Recurse(depth + 1);
      for (std::uint32_t v : bound_here) assignment_.erase(v);
    }
    return !stopped_;
  }

  const JoinTreeInstance& instance_;
  const IdSet& free_;
  const AnswerCallback& callback_;
  std::vector<int> order_;
  std::unordered_map<std::uint32_t, Value> assignment_;
  std::size_t emitted_ = 0;
  bool stopped_ = false;
};

}  // namespace

std::optional<std::size_t> EnumerateAnswers(const ConjunctiveQuery& q,
                                            const Database& db, int k,
                                            const AnswerCallback& callback) {
  // Plan through the shared engine so repeated enumerations of the same
  // query shape reuse the cached decomposition instead of re-searching.
  PlannerOptions planner;
  planner.max_width = k;
  planner.enable_acyclic_ps13 = false;
  planner.enable_hybrid = false;
  planner.full_profile = false;
  CountingEngine::Planned planned = CountingEngine::Shared().Plan(q, planner);
  if (planned.plan->strategy != PlanStrategy::kSharpHypertree) {
    return std::nullopt;  // no width-k #-hypertree decomposition
  }
  const CountingPlan& plan = *planned.plan;
  const ConjunctiveQuery& canon = plan.query;

  JoinTreeInstance instance =
      MaterializeBags(plan.sharp->core, canon, db, plan.sharp->tree,
                      plan.sharp->views);
  if (!FullReduce(&instance)) return 0;
  JoinTreeInstance restricted = RestrictToVars(instance, canon.free_vars());
  // Re-reduce: projections can expose tuples whose witnesses were shared;
  // the restricted instance stays globally consistent because each bag is
  // an exact projection of the answer-participating tuples, but a reduce
  // pass is cheap and keeps the no-dead-end property explicit.
  if (!FullReduce(&restricted)) return 0;

  // The plan's instance speaks canonical variables; answers must come back
  // in the original query's ascending-VarId order. perm[j] = position of
  // the j-th original free variable's canonical id among the canonical free
  // variables.
  std::vector<std::size_t> perm;
  perm.reserve(q.free_vars().size());
  const IdSet& canon_free = canon.free_vars();
  bool identity = true;
  for (std::uint32_t v : q.free_vars()) {
    VarId c = planned.canonical.to_canonical.at(v);
    std::size_t pos = 0;
    while (canon_free[pos] != c) ++pos;
    identity = identity && pos == perm.size();
    perm.push_back(pos);
  }
  if (identity) {
    Enumerator enumerator(restricted, canon_free, callback);
    return enumerator.Run();
  }
  std::vector<Value> original(perm.size());
  AnswerCallback remapping = [&callback, &perm,
                              &original](const std::vector<Value>& answer) {
    for (std::size_t j = 0; j < perm.size(); ++j) {
      original[j] = answer[perm[j]];
    }
    return callback(original);
  };
  Enumerator enumerator(restricted, canon_free, remapping);
  return enumerator.Run();
}

std::optional<std::vector<std::vector<Value>>> EnumerateAnswersToVector(
    const ConjunctiveQuery& q, const Database& db, int k, std::size_t limit) {
  std::vector<std::vector<Value>> answers;
  std::optional<std::size_t> emitted = EnumerateAnswers(
      q, db, k, [&answers, limit](const std::vector<Value>& answer) {
        answers.push_back(answer);
        return answers.size() < limit;
      });
  if (!emitted.has_value()) return std::nullopt;
  return answers;
}

}  // namespace sharpcq
