#include "engine/executor.h"

#include "algebra/exec_policy.h"
#include "count/enumeration.h"
#include "count/join_tree_instance.h"
#include "count/ps13.h"
#include "hybrid/hybrid_counting.h"
#include "hypergraph/acyclic.h"
#include "query/atom_relation.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/trace.h"

namespace sharpcq {

namespace {

CountResult ExecuteSharpHypertree(const CountingPlan& plan,
                                  const Database& db) {
  CountResult result =
      CountViaSharpDecomposition(plan.query, db, *plan.sharp);
  result.method = "#-hypertree(k=" + std::to_string(plan.width_budget) + ")";
  return result;
}

CountResult ExecuteSharpB(const CountingPlan& plan, const Database& db) {
  SharpBOptions options;
  options.max_b = plan.options.hybrid_max_b;
  options.max_cores = plan.options.max_cores;
  options.max_subsets = plan.options.hybrid_max_subsets;
  for (int k = 2; k <= plan.options.max_width; ++k) {
    CheckExecInterrupt();
    TraceSpan span("sharp_b_width");
    span.NoteCount("k", static_cast<std::uint64_t>(k));
    std::optional<CountResult> result =
        CountBySharpBDecomposition(plan.query, db, k, options);
    span.Note("decomposed", result.has_value() ? "yes" : "no");
    if (result.has_value()) return *result;
  }
  TraceSpan span("backtracking");
  CountResult result;
  result.method = "backtracking";
  result.count = CountByBacktracking(plan.query, db);
  return result;
}

}  // namespace

CountResult CountByAcyclicPs13(const ConjunctiveQuery& q, const Database& db) {
  CountResult result;
  result.method = "acyclic-ps13";
  result.width = 1;

  std::vector<IdSet> edges;
  edges.reserve(q.NumAtoms());
  for (const Atom& atom : q.atoms()) edges.push_back(atom.Vars());
  std::optional<TreeShape> shape = BuildJoinTree(edges);
  SHARPCQ_CHECK_MSG(shape.has_value(),
                    "CountByAcyclicPs13 requires an acyclic query");

  JoinTreeInstance instance;
  instance.shape = std::move(*shape);
  instance.nodes.reserve(q.NumAtoms());
  {
    TraceSpan span("materialize_atoms");
    span.NoteCount("atoms", q.NumAtoms());
    for (const Atom& atom : q.atoms()) {
      instance.nodes.push_back(AtomToRel(atom, db));
    }
  }
  // Cost-model rewrite (no-op without a cost_model policy): root below the
  // big relations, most-selective children first. PS13 is exact for any
  // rooting of the join tree.
  OptimizeInstanceOrder(&instance);
  if (!FullReduce(&instance)) {
    result.count = 0;
    return result;
  }
  result.count = Ps13Count(instance, q.free_vars());
  return result;
}

CountResult ExecutePlan(const CountingPlan& plan, const Database& db) {
  const MonotonicClock::time_point start = MonotonicNow();
  CountResult result;
  switch (plan.strategy) {
    case PlanStrategy::kSharpHypertree:
      result = ExecuteSharpHypertree(plan, db);
      break;
    case PlanStrategy::kAcyclicPs13:
      result = CountByAcyclicPs13(plan.query, db);
      break;
    case PlanStrategy::kSharpB:
      result = ExecuteSharpB(plan, db);
      break;
    case PlanStrategy::kBacktracking: {
      TraceSpan span("backtracking");
      result.method = "backtracking";
      result.count = CountByBacktracking(plan.query, db);
      break;
    }
  }
  result.execute_ms = ElapsedMs(start);
  return result;
}

}  // namespace sharpcq
