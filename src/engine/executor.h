#ifndef SHARPCQ_ENGINE_EXECUTOR_H_
#define SHARPCQ_ENGINE_EXECUTOR_H_

#include "core/sharp_counting.h"
#include "data/database.h"
#include "engine/plan.h"

namespace sharpcq {

// The executor: the database-dependent half of counting. Materializes a
// CountingPlan against a concrete database and returns the exact count with
// provenance (method string, width, execute_ms).
//
// Thread safety: ExecutePlan is a pure function of (plan, db) — every
// scratch structure (materialized bags, join-tree instances, the hybrid
// degree oracle and memo tables) is call-local, and no reachable code
// mutates the plan, its query's shared variable NameTable, or the
// database. Any number of threads may execute one shared plan
// concurrently; see the "Concurrency model" section of DESIGN.md.
//
// Strategy semantics:
//   kSharpHypertree  Theorem 3.7 over the plan's stored decomposition.
//   kAcyclicPs13     PS13 over the join tree of the plan's query itself.
//   kSharpB          per-database #b-decomposition search (widths
//                    2..max_width), Theorem 6.6 counting on success,
//                    backtracking fallback otherwise — mirroring the legacy
//                    hybrid facade.
//   kBacktracking    the enumerate-with-projection baseline.
CountResult ExecutePlan(const CountingPlan& plan, const Database& db);

// The kAcyclicPs13 primitive, exposed for tests and benchmarks: builds the
// join tree of q's own atoms (q must be alpha-acyclic), materializes each
// atom relation, full-reduces, and runs the Figure 13 counter on the free
// variables. Exact for every acyclic query; cost exponential only in the
// instance's degree bound.
CountResult CountByAcyclicPs13(const ConjunctiveQuery& q, const Database& db);

}  // namespace sharpcq

#endif  // SHARPCQ_ENGINE_EXECUTOR_H_
