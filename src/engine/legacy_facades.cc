// The deprecated counting facades. Their declarations live in
// core/sharp_counting.h and hybrid/hybrid_counting.h for source
// compatibility, but the definitions belong to the engine layer: each is a
// policy preset over the shared engine, and defining them here keeps core/
// and hybrid/ translation units free of upward engine dependencies.

#include "core/sharp_counting.h"
#include "engine/engine.h"
#include "hybrid/hybrid_counting.h"

namespace sharpcq {

namespace {

PlannerOptions LegacyPlannerOptions(const CountOptions& options,
                                    bool enable_hybrid) {
  PlannerOptions planner;
  planner.max_width = options.max_width;
  planner.max_cores = options.max_cores;
  planner.enable_acyclic_ps13 = false;
  planner.enable_hybrid = enable_hybrid;
  // One-shot callers: skip the diagnostic profile the facades never exposed.
  planner.full_profile = false;
  return planner;
}

}  // namespace

CountResult CountAnswers(const ConjunctiveQuery& q, const Database& db,
                         const CountOptions& options) {
  // Historical strategy order: #-hypertree widths 1..max_width, then
  // backtracking.
  return CountingEngine::Shared().Count(
      q, db, LegacyPlannerOptions(options, /*enable_hybrid=*/false));
}

CountResult CountAnswersWithHybrid(const ConjunctiveQuery& q,
                                   const Database& db,
                                   const CountOptions& options) {
  // Historical strategy order: #-hypertree widths 1..max_width, then #b
  // widths 2..max_width, then backtracking.
  return CountingEngine::Shared().Count(
      q, db, LegacyPlannerOptions(options, /*enable_hybrid=*/true));
}

}  // namespace sharpcq
