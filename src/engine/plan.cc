#include "engine/plan.h"

namespace sharpcq {

const char* PlanStrategyName(PlanStrategy strategy) {
  switch (strategy) {
    case PlanStrategy::kSharpHypertree:
      return "sharp-hypertree";
    case PlanStrategy::kAcyclicPs13:
      return "acyclic-ps13";
    case PlanStrategy::kSharpB:
      return "sharp-b";
    case PlanStrategy::kBacktracking:
      return "backtracking";
  }
  return "unknown";
}

std::string PlannerOptions::CacheFingerprint() const {
  return "w" + std::to_string(max_width) + ";c" + std::to_string(max_cores) +
         ";a" + (enable_acyclic_ps13 ? "1" : "0") + ";h" +
         (enable_hybrid ? "1" : "0") + ";p" + (full_profile ? "1" : "0") +
         ";b" + std::to_string(hybrid_max_b) + ";s" +
         std::to_string(hybrid_max_subsets);
}

namespace {

std::string Short(double value) {
  std::string s = std::to_string(value);
  std::size_t dot = s.find('.');
  if (dot != std::string::npos) {
    std::size_t last = s.find_last_not_of('0');
    s.erase(last == dot ? dot : last + 1);
  }
  return s;
}

}  // namespace

std::string CountingPlan::DebugString() const {
  std::string out = "strategy: ";
  out += PlanStrategyName(strategy);
  if (strategy == PlanStrategy::kSharpHypertree) {
    out += " (k=" + std::to_string(width_budget) + ")";
  }
  out += "\ncost: ~" + Short(cost.query_factor) + " * m^" +
         Short(cost.db_exponent);
  if (!cost.note.empty()) out += " " + cost.note;
  out += "\n" + analysis.ToString();
  return out;
}

}  // namespace sharpcq
