#ifndef SHARPCQ_ENGINE_PLAN_H_
#define SHARPCQ_ENGINE_PLAN_H_

#include <optional>
#include <string>

#include "core/analyze.h"
#include "core/sharp_decomposition.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// The strategies of the paper's tractability landscape, in the order the
// default policy prefers them.
enum class PlanStrategy {
  // Theorem 1.3: width-k #-hypertree decomposition found; counting is
  // polynomial in the database for the fixed width.
  kSharpHypertree,
  // PS13 / Theorem 6.2 on the query's own join tree: exact for every
  // acyclic query, cost exponential only in the instance's degree bound.
  kAcyclicPs13,
  // Theorems 6.6/6.7: hybrid #b-generalized hypertree decompositions. The
  // decomposition search is database-dependent and therefore runs at
  // execution time; the executor falls back to backtracking when no
  // pseudo-free set qualifies.
  kSharpB,
  // The GS13 enumerate-with-projection baseline; always applicable.
  kBacktracking,
};

const char* PlanStrategyName(PlanStrategy strategy);

// Planner policy knobs. All query-only; part of the plan-cache key.
struct PlannerOptions {
  int max_width = 3;          // largest width attempted (#-htw and #b)
  std::size_t max_cores = 8;  // substructure cores tried per width
  // Strategy gates. The legacy facades disable the strategies they predate.
  bool enable_acyclic_ps13 = true;
  bool enable_hybrid = true;
  // With full_profile the plan carries the complete QueryAnalysis (htw,
  // star size, core/frontier shape) for diagnostics. Without it planning
  // computes only what strategy selection needs — acyclicity and the
  // #-hypertree search — which keeps one-shot cold planning (the legacy
  // facades, enumeration) as cheap as the pre-engine code paths.
  bool full_profile = true;
  // Pass-through for the hybrid search (hybrid/sharp_b.h).
  std::size_t hybrid_max_b = static_cast<std::size_t>(-1);
  std::size_t hybrid_max_subsets = 4096;

  // Deterministic rendering of every field, appended to the canonical query
  // key so plans are cached per (query shape, policy).
  std::string CacheFingerprint() const;
};

// A query-only cost sketch: the count runs in roughly
// O(query_factor * m^db_exponent * strategy-specific blowup), m the largest
// relation. Good enough to explain the planner's choice; not a database
// cardinality estimator.
struct CostEstimate {
  double db_exponent = 0.0;
  double query_factor = 0.0;
  std::string note;  // e.g. "x 4^h in the degree bound h"
};

// The output of planning: everything about counting that depends on the
// query alone, computed once and reusable against any database.
struct CountingPlan {
  // The (canonicalized, when produced via the engine) query the artifacts
  // below refer to. Executing the plan counts THIS query; by construction
  // its count equals the original query's on every database.
  ConjunctiveQuery query;

  PlanStrategy strategy = PlanStrategy::kBacktracking;
  PlannerOptions options;

  // Structural profile (core size, widths, star size, frontier shape).
  QueryAnalysis analysis;

  // The paper's Q' — reused by diagnostics; also embedded in `sharp`.
  ConjunctiveQuery colored_core;

  // kSharpHypertree: the witness decomposition and the width budget k at
  // which the search succeeded (the method string reports k; the tree's own
  // width may be smaller).
  std::optional<SharpDecomposition> sharp;
  int width_budget = 0;

  CostEstimate cost;
  double planning_ms = 0.0;  // wall time MakePlan spent building this plan

  // True when the data profile handed to MakePlan moved the strategy away
  // from the structural default (currently: PS13 -> #b on heavy-degree
  // instances). Purely provenance — every strategy is exact.
  bool cost_model_steered = false;

  std::string DebugString() const;
};

}  // namespace sharpcq

#endif  // SHARPCQ_ENGINE_PLAN_H_
