#include "engine/plan_cache.h"

#include "util/check.h"

namespace sharpcq {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  SHARPCQ_CHECK_MSG(capacity > 0, "plan cache capacity must be positive");
}

std::shared_ptr<const CountingPlan> PlanCache::Find(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CountingPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(plan));
  index_[key] = lru_.begin();
  ++stats_.insertions;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.size = lru_.size();
  return out;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_ = Stats{};
}

}  // namespace sharpcq
