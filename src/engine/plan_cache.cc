#include "engine/plan_cache.h"

#include <functional>

#include "util/check.h"
#include "util/hash.h"
#include "util/metrics.h"

namespace sharpcq {

namespace {

// Process-wide mirrors of the per-shard counters, for the daemon's
// Prometheus exposition: scrapes see every PlanCache in the process without
// holding any shard lock.
Counter& CacheHits() {
  static Counter& c =
      MetricsRegistry::Instance().GetCounter("sharpcq_plan_cache_hits_total");
  return c;
}
Counter& CacheMisses() {
  static Counter& c = MetricsRegistry::Instance().GetCounter(
      "sharpcq_plan_cache_misses_total");
  return c;
}
Counter& CacheInsertions() {
  static Counter& c = MetricsRegistry::Instance().GetCounter(
      "sharpcq_plan_cache_insertions_total");
  return c;
}
Counter& CacheEvictions() {
  static Counter& c = MetricsRegistry::Instance().GetCounter(
      "sharpcq_plan_cache_evictions_total");
  return c;
}

}  // namespace

std::size_t PlanCache::EffectiveShards(std::size_t capacity,
                                       std::size_t requested) {
  if (requested == 0) requested = 1;
  std::size_t max_shards = capacity / kMinShardCapacity;
  if (max_shards == 0) max_shards = 1;
  return requested < max_shards ? requested : max_shards;
}

PlanCache::PlanCache(std::size_t capacity, std::size_t num_shards) {
  SHARPCQ_CHECK_MSG(capacity > 0, "plan cache capacity must be positive");
  const std::size_t n = EffectiveShards(capacity, num_shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    // Split the capacity evenly, first shards taking the remainder, so the
    // shard capacities always sum to the requested total.
    shard->capacity = capacity / n + (i < capacity % n ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

std::size_t PlanCache::ShardOf(const std::string& key) const {
  // Re-mix std::hash: libstdc++'s string hash is fine, but mixing guards
  // against shard-count-aliased lower bits.
  return HashMix(std::hash<std::string>()(key)) % shards_.size();
}

PlanCache::Lookup PlanCache::FindWithStats(const std::string& key) {
  Lookup out;
  out.shard = ShardOf(key);
  Shard& shard = *shards_[out.shard];
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.stats.lookups;
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    CacheMisses().Add(1);
  } else {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.stats.hits;
    CacheHits().Add(1);
    out.plan = it->second->second;
  }
  out.shard_hits = shard.stats.hits;
  out.shard_misses = shard.stats.misses;
  return out;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CountingPlan> plan) {
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(plan));
  shard.index[key] = shard.lru.begin();
  ++shard.stats.insertions;
  CacheInsertions().Add(1);
  if (shard.lru.size() > shard.capacity) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.stats.evictions;
    CacheEvictions().Add(1);
  }
}

PlanCache::Stats PlanCache::stats() const {
  Stats out;
  out.shards.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    ShardStats s = shard->stats;
    s.size = shard->lru.size();
    out.lookups += s.lookups;
    out.hits += s.hits;
    out.misses += s.misses;
    out.insertions += s.insertions;
    out.evictions += s.evictions;
    out.size += s.size;
    out.shards.push_back(s);
  }
  return out;
}

void PlanCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->stats = ShardStats{};
  }
}

}  // namespace sharpcq
