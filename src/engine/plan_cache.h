#ifndef SHARPCQ_ENGINE_PLAN_CACHE_H_
#define SHARPCQ_ENGINE_PLAN_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/plan.h"

namespace sharpcq {

// An LRU cache of counting plans keyed by canonical query shape plus
// planner-policy fingerprint (query/canonical.h). Planning is FPT in the
// query but pays core computation and width searches; a service answering
// repeated query shapes should pay that once, which is the point of the
// engine split.
//
// The cache is sharded by canonical-form hash so concurrent planners touch
// disjoint mutexes: each shard is an independent LRU with its own lock and
// its own hit/miss/insert/evict counters (mutated only under that lock, so
// the statistics are race-free by construction). Total capacity is divided
// across the shards; small caches collapse to one shard to keep exact
// global LRU semantics (see EffectiveShards). Plans are immutable once
// inserted and shared by reference, so a plan evicted while another thread
// executes it stays alive through the shared_ptr.
class PlanCache {
 public:
  // Statistics for one shard, all mutated under that shard's mutex.
  // lookups == hits + misses is an invariant the concurrency tests assert.
  struct ShardStats {
    std::size_t lookups = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
    std::size_t size = 0;
  };

  // Aggregate over the shards, plus the per-shard breakdown.
  struct Stats {
    std::size_t lookups = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
    std::size_t size = 0;
    std::vector<ShardStats> shards;
  };

  explicit PlanCache(std::size_t capacity = 1024, std::size_t num_shards = 8);

  // A lookup outcome with provenance: which shard served it and that
  // shard's counters immediately after the lookup (snapshotted under the
  // shard lock, so hits+misses == lookups holds in every snapshot).
  struct Lookup {
    std::shared_ptr<const CountingPlan> plan;  // nullptr on miss
    std::size_t shard = 0;
    std::size_t shard_hits = 0;
    std::size_t shard_misses = 0;
  };
  Lookup FindWithStats(const std::string& key);

  // The cached plan for `key`, refreshing its LRU position; nullptr on miss.
  std::shared_ptr<const CountingPlan> Find(const std::string& key) {
    return FindWithStats(key).plan;
  }

  // Inserts (or replaces) the plan for `key`, evicting the shard's least
  // recently used entry when the shard is over capacity.
  void Insert(const std::string& key,
              std::shared_ptr<const CountingPlan> plan);

  Stats stats() const;

  std::size_t num_shards() const { return shards_.size(); }
  // The shard `key` maps to (stable across calls; exposed for tests).
  std::size_t ShardOf(const std::string& key) const;

  void Clear();

  // How many shards a cache of `capacity` actually gets: `requested`
  // clamped so every shard holds at least kMinShardCapacity entries.
  // Sharding buys lock spreading only when the cache is large; a small
  // cache keeps one shard and therefore exact global LRU order.
  static std::size_t EffectiveShards(std::size_t capacity,
                                     std::size_t requested);
  static constexpr std::size_t kMinShardCapacity = 16;

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const CountingPlan>>;

  // One independent LRU. unique_ptr keeps Shard addresses stable in the
  // vector (std::mutex is immovable).
  struct Shard {
    mutable std::mutex mu;
    std::size_t capacity = 0;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    ShardStats stats;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sharpcq

#endif  // SHARPCQ_ENGINE_PLAN_CACHE_H_
