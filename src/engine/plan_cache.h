#ifndef SHARPCQ_ENGINE_PLAN_CACHE_H_
#define SHARPCQ_ENGINE_PLAN_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "engine/plan.h"

namespace sharpcq {

// An LRU cache of counting plans keyed by canonical query shape plus
// planner-policy fingerprint (query/canonical.h). Planning is FPT in the
// query but pays core computation and width searches; a service answering
// repeated query shapes should pay that once, which is the point of the
// engine split. Thread-safe; plans are immutable once inserted and shared
// by reference.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 1024);

  // The cached plan for `key`, refreshing its LRU position; nullptr on miss.
  std::shared_ptr<const CountingPlan> Find(const std::string& key);

  // Inserts (or replaces) the plan for `key`, evicting the least recently
  // used entry when over capacity.
  void Insert(const std::string& key,
              std::shared_ptr<const CountingPlan> plan);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
    std::size_t size = 0;
  };
  Stats stats() const;

  void Clear();

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const CountingPlan>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace sharpcq

#endif  // SHARPCQ_ENGINE_PLAN_CACHE_H_
