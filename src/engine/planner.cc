#include "engine/planner.h"

#include <algorithm>

#include "algebra/stats.h"
#include "hypergraph/acyclic.h"
#include "util/clock.h"

namespace sharpcq {

namespace {

// Degree above which PS13's 4^h blowup is judged worse than the hybrid #b
// route's per-database decomposition search. 256 = 4 histogram doublings
// past the "uniformly small groups" regime; well clear of the key-like
// degrees (1..8) that dominate benign instances.
constexpr std::uint64_t kDegreeSteerThreshold = 256;

// The largest per-column group size the profile reports across the query's
// relations — the profile's upper bound on the instance degree h that
// drives PS13's cost. Relations without stats (row-major, unknown) report
// 0 and never steer.
std::uint64_t MaxQueryDegree(const ConjunctiveQuery& q,
                             const DataProfile& profile) {
  std::uint64_t degree = 0;
  for (const Atom& atom : q.atoms()) {
    const RelationProfile* rel = profile.Find(atom.relation);
    if (rel == nullptr || rel->stats == nullptr) continue;
    for (const ColumnStats& col : rel->stats->columns) {
      degree = std::max(degree, col.max_group);
    }
  }
  return degree;
}

// Eligibility for counting over the query's own join tree: every atom must
// contribute a non-empty hyperedge and every free variable must occur in
// some atom, so the materialized instance carries all output columns.
bool AcyclicPs13Eligible(const ConjunctiveQuery& q, const QueryAnalysis& a) {
  if (!a.is_acyclic || q.NumAtoms() == 0) return false;
  for (const Atom& atom : q.atoms()) {
    if (atom.Vars().empty()) return false;
  }
  return q.free_vars().IsSubsetOf(q.AllVars());
}

CostEstimate EstimateCost(const CountingPlan& plan) {
  CostEstimate cost;
  cost.query_factor = static_cast<double>(plan.query.NumAtoms());
  switch (plan.strategy) {
    case PlanStrategy::kSharpHypertree:
      // Theorem 3.7: materialize V^k views (m^k), join-tree passes.
      cost.db_exponent = static_cast<double>(plan.width_budget) + 1.0;
      break;
    case PlanStrategy::kAcyclicPs13:
      cost.db_exponent = 2.0;
      cost.note = "x 4^h in the instance degree bound h (Theorem 6.2)";
      break;
    case PlanStrategy::kSharpB:
      cost.db_exponent = static_cast<double>(plan.options.max_width) + 1.0;
      cost.note = "x 4^b in the achieved degree b, plus the per-database "
                  "#b-decomposition search (Theorem 6.7)";
      break;
    case PlanStrategy::kBacktracking:
      // One witness search per candidate answer; worst case exponential in
      // the number of variables.
      cost.db_exponent = static_cast<double>(plan.analysis.num_free);
      cost.note = "x witness search over existential variables";
      break;
  }
  return cost;
}

}  // namespace

CountingPlan MakePlan(const ConjunctiveQuery& q, const PlannerOptions& options,
                      const DataProfile* profile) {
  const MonotonicClock::time_point start = MonotonicNow();

  CountingPlan plan;
  plan.query = q;
  plan.options = options;

  std::optional<SharpDecomposition> sharp;
  if (options.full_profile) {
    AnalysisArtifacts artifacts;
    plan.analysis =
        AnalyzeQuery(q, options.max_width, options.max_cores, &artifacts);
    plan.colored_core = std::move(artifacts.colored_core);
    sharp = std::move(artifacts.sharp);
  } else {
    // Minimal classification: only what the policy below consumes.
    plan.analysis.num_atoms = q.NumAtoms();
    plan.analysis.num_vars = q.AllVars().size();
    plan.analysis.num_free = q.free_vars().size();
    plan.analysis.is_acyclic = IsAcyclic(q.BuildHypergraph());
    for (int k = 1; k <= options.max_width && !sharp.has_value(); ++k) {
      sharp = FindSharpHypertreeDecomposition(q, k, options.max_cores);
      if (sharp.has_value()) plan.analysis.sharp_hypertree_width = k;
    }
  }

  if (sharp.has_value()) {
    plan.strategy = PlanStrategy::kSharpHypertree;
    plan.sharp = std::move(sharp);
    plan.width_budget = plan.analysis.sharp_hypertree_width.value_or(0);
  } else if (options.enable_acyclic_ps13 &&
             AcyclicPs13Eligible(q, plan.analysis)) {
    plan.strategy = PlanStrategy::kAcyclicPs13;
    // Data-aware tie-break: when the profile shows a relation with groups
    // past the degree threshold and the hybrid gate is open, route to #b —
    // its cost grows with the achieved degree b of a fresh decomposition,
    // not with the instance's raw degree bound h.
    if (profile != nullptr && options.enable_hybrid &&
        options.max_width >= 2 &&
        MaxQueryDegree(q, *profile) > kDegreeSteerThreshold) {
      plan.strategy = PlanStrategy::kSharpB;
      plan.cost_model_steered = true;
    }
  } else if (options.enable_hybrid && options.max_width >= 2) {
    plan.strategy = PlanStrategy::kSharpB;
  } else {
    plan.strategy = PlanStrategy::kBacktracking;
  }
  plan.cost = EstimateCost(plan);

  plan.planning_ms = ElapsedMs(start);
  return plan;
}

}  // namespace sharpcq
