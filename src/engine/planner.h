#ifndef SHARPCQ_ENGINE_PLANNER_H_
#define SHARPCQ_ENGINE_PLANNER_H_

#include "engine/plan.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// The planner: the query-only, FPT half of counting. Runs the structural
// classification (AnalyzeQuery — acyclicity, cores, htw, #-htw, star size)
// and the width searches exactly once, then selects a strategy by an
// explicit policy:
//
//   1. kSharpHypertree  if some k <= max_width admits a width-k
//                       #-hypertree decomposition (Theorem 1.3);
//   2. kAcyclicPs13     if enabled and HQ is acyclic with every free
//                       variable occurring in some atom (Theorem 6.2 on the
//                       query's own join tree);
//   3. kSharpB          if enabled and max_width >= 2 (Theorems 6.6/6.7;
//                       the database-dependent decomposition search runs at
//                       execution time);
//   4. kBacktracking    otherwise.
//
// The returned plan is valid for every database and is what the engine's
// PlanCache stores. MakePlan touches no shared state (concurrent calls are
// safe, even on the same query); a finished plan is immutable — published
// as shared_ptr<const CountingPlan> and safe to execute from any thread.
//
// `profile` (optional) is the current generation's data statistics
// (algebra/stats.h). It only breaks ties the structural policy leaves open
// — today: an acyclic query over a heavy-degree instance routes to kSharpB
// instead of kAcyclicPs13, since PS13's 4^h factor is exponential in the
// degree bound while #b re-decomposes around it. A plan built with a
// profile is only valid for databases in the same profile class, which is
// why the engine folds the profile fingerprint into its cache key.
struct DataProfile;
CountingPlan MakePlan(const ConjunctiveQuery& q,
                      const PlannerOptions& options = {},
                      const DataProfile* profile = nullptr);

}  // namespace sharpcq

#endif  // SHARPCQ_ENGINE_PLANNER_H_
