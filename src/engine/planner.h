#ifndef SHARPCQ_ENGINE_PLANNER_H_
#define SHARPCQ_ENGINE_PLANNER_H_

#include "engine/plan.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// The planner: the query-only, FPT half of counting. Runs the structural
// classification (AnalyzeQuery — acyclicity, cores, htw, #-htw, star size)
// and the width searches exactly once, then selects a strategy by an
// explicit policy:
//
//   1. kSharpHypertree  if some k <= max_width admits a width-k
//                       #-hypertree decomposition (Theorem 1.3);
//   2. kAcyclicPs13     if enabled and HQ is acyclic with every free
//                       variable occurring in some atom (Theorem 6.2 on the
//                       query's own join tree);
//   3. kSharpB          if enabled and max_width >= 2 (Theorems 6.6/6.7;
//                       the database-dependent decomposition search runs at
//                       execution time);
//   4. kBacktracking    otherwise.
//
// The returned plan is valid for every database and is what the engine's
// PlanCache stores. MakePlan touches no shared state (concurrent calls are
// safe, even on the same query); a finished plan is immutable — published
// as shared_ptr<const CountingPlan> and safe to execute from any thread.
CountingPlan MakePlan(const ConjunctiveQuery& q,
                      const PlannerOptions& options = {});

}  // namespace sharpcq

#endif  // SHARPCQ_ENGINE_PLANNER_H_
