#include "gen/paper_queries.h"

#include <random>
#include <set>
#include <string>
#include <vector>

#include "util/check.h"

namespace sharpcq {

namespace {

// Disjoint id ranges per entity type so accidental joins are impossible.
constexpr Value kMachineBase = 1000;
constexpr Value kWorkerBase = 2000;
constexpr Value kTaskBase = 3000;
constexpr Value kProjectBase = 4000;
constexpr Value kSubtaskBase = 5000;
constexpr Value kResourceBase = 6000;
constexpr Value kInfoBase = 7000;

// Adds `count` distinct random pairs (a_pick(), b_pick()) to `rel`.
template <typename FnA, typename FnB>
void AddRandomPairs(Database* db, const std::string& rel, int count,
                    std::mt19937_64* rng, const FnA& a_pick,
                    const FnB& b_pick) {
  std::set<std::pair<Value, Value>> seen;
  int attempts = 0;
  while (static_cast<int>(seen.size()) < count && attempts < count * 20) {
    ++attempts;
    Value a = a_pick(rng);
    Value b = b_pick(rng);
    if (seen.emplace(a, b).second) db->AddTuple(rel, {a, b});
  }
}

std::string Xi(int i) { return "X" + std::to_string(i); }
std::string Yi(int i) { return "Y" + std::to_string(i); }

}  // namespace

ConjunctiveQuery MakeQ0() {
  ConjunctiveQuery q;
  q.AddAtomVars("mw", {"A", "B", "I"});
  q.AddAtomVars("wt", {"B", "D"});
  q.AddAtomVars("wi", {"B", "E"});
  q.AddAtomVars("pt", {"C", "D"});
  q.AddAtomVars("st", {"D", "F"});
  q.AddAtomVars("st", {"D", "G"});
  q.AddAtomVars("rr", {"G", "H"});
  q.AddAtomVars("rr", {"F", "H"});
  q.AddAtomVars("rr", {"D", "H"});
  q.SetFreeByName({"A", "B", "C"});
  return q;
}

Database MakeQ0Database(const Q0DatabaseParams& p) {
  std::mt19937_64 rng(p.seed);
  auto pick = [](Value base, int n) {
    return [base, n](std::mt19937_64* r) {
      return base + static_cast<Value>((*r)() % static_cast<std::uint64_t>(n));
    };
  };
  Database db;
  // mw(machine, worker, hours)
  {
    std::set<std::pair<Value, Value>> seen;
    int attempts = 0;
    while (static_cast<int>(seen.size()) < p.mw_tuples &&
           attempts < p.mw_tuples * 20) {
      ++attempts;
      Value m = pick(kMachineBase, p.machines)(&rng);
      Value w = pick(kWorkerBase, p.workers)(&rng);
      if (seen.emplace(m, w).second) {
        db.AddTuple("mw", {m, w, static_cast<Value>(1 + rng() % 40)});
      }
    }
  }
  // wi(worker, info): one info row per worker.
  for (int w = 0; w < p.workers; ++w) {
    db.AddTuple("wi", {kWorkerBase + w, kInfoBase + w});
  }
  AddRandomPairs(&db, "wt", p.wt_tuples, &rng, pick(kWorkerBase, p.workers),
                 pick(kTaskBase, p.tasks));
  AddRandomPairs(&db, "pt", p.pt_tuples, &rng, pick(kProjectBase, p.projects),
                 pick(kTaskBase, p.tasks));
  // st(task, subtask) over tasks and subtasks; rr over tasks *and* subtasks
  // on the first column so that rr(D,H) and rr(F,H) both find tuples.
  AddRandomPairs(&db, "st", p.st_tuples, &rng, pick(kTaskBase, p.tasks),
                 pick(kSubtaskBase, p.subtasks));
  auto task_or_subtask = [&p](std::mt19937_64* r) {
    if ((*r)() % 2 == 0) {
      return kTaskBase +
             static_cast<Value>((*r)() % static_cast<std::uint64_t>(p.tasks));
    }
    return kSubtaskBase + static_cast<Value>(
                              (*r)() % static_cast<std::uint64_t>(p.subtasks));
  };
  AddRandomPairs(&db, "rr", p.rr_tuples, &rng, task_or_subtask,
                 pick(kResourceBase, p.resources));
  db.DedupAll();
  return db;
}

ConjunctiveQuery MakeQ1() {
  ConjunctiveQuery q;
  q.AddAtomVars("s1", {"A", "B"});
  q.AddAtomVars("s2", {"B", "C"});
  q.AddAtomVars("s3", {"C", "D"});
  q.AddAtomVars("s4", {"D", "A"});
  q.SetFreeByName({"A", "C"});
  return q;
}

Database MakeQ1Database(int n, int tuples, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Database db;
  auto any = [n](std::mt19937_64* r) {
    return static_cast<Value>((*r)() % static_cast<std::uint64_t>(n));
  };
  for (const char* rel : {"s1", "s2", "s3", "s4"}) {
    db.DeclareRelation(rel, 2);
    AddRandomPairs(&db, rel, tuples, &rng, any, any);
  }
  db.DedupAll();
  return db;
}

ConjunctiveQuery MakeQh2(int h) {
  SHARPCQ_CHECK(h >= 1);
  ConjunctiveQuery q;
  std::vector<std::string> r_vars = {"X0"};
  for (int i = 1; i <= h; ++i) r_vars.push_back(Yi(i));
  q.AddAtomVars("r", r_vars);
  std::vector<std::string> s_vars = {"Y0"};
  for (int i = 1; i <= h; ++i) s_vars.push_back(Yi(i));
  q.AddAtomVars("s", s_vars);
  std::vector<std::string> free = {"X0"};
  for (int i = 1; i <= h; ++i) {
    q.AddAtomVars("w" + std::to_string(i), {Xi(i), Yi(i)});
    free.push_back(Xi(i));
  }
  q.SetFreeByName(free);
  return q;
}

Database MakeQh2Database(int h) {
  SHARPCQ_CHECK(h >= 1 && h <= 24);
  const std::int64_t m = std::int64_t{1} << h;
  Database db;
  constexpr Value kABase = 1000000;
  constexpr Value kB = 10;
  constexpr Value kC = 11;
  for (std::int64_t j = 0; j < m; ++j) {
    std::vector<Value> r_row = {kABase + j};
    std::vector<Value> s_row;
    int parity = 0;
    for (int i = 1; i <= h; ++i) {
      Value bit = (j >> (i - 1)) & 1;
      parity ^= static_cast<int>(bit);
      r_row.push_back(bit);
    }
    s_row.push_back(parity);
    s_row.insert(s_row.end(), r_row.begin() + 1, r_row.end());
    db.AddTuple("r", std::span<const Value>(r_row));
    db.AddTuple("s", std::span<const Value>(s_row));
  }
  for (int i = 1; i <= h; ++i) {
    db.AddTuple("w" + std::to_string(i), {kB, 0});
    db.AddTuple("w" + std::to_string(i), {kC, 1});
  }
  return db;
}

Hypertree MakeQh2NaiveHypertree(const ConjunctiveQuery& q, int h) {
  // Atom order in MakeQh2: 0 = r, 1 = s, 2..h+1 = w_i.
  Hypertree ht;
  std::vector<int> parent;
  // Root: {X0, Y1..Yh} guarded by r.
  IdSet root_chi{q.VarByName("X0")};
  for (int i = 1; i <= h; ++i) root_chi.Insert(q.VarByName(Yi(i)));
  ht.chi.push_back(root_chi);
  ht.lambda.push_back({0});
  parent.push_back(-1);
  // Child: {Y0..Yh} guarded by s.
  IdSet s_chi{q.VarByName("Y0")};
  for (int i = 1; i <= h; ++i) s_chi.Insert(q.VarByName(Yi(i)));
  ht.chi.push_back(s_chi);
  ht.lambda.push_back({1});
  parent.push_back(0);
  // Children: {Xi, Yi} guarded by w_i.
  for (int i = 1; i <= h; ++i) {
    ht.chi.push_back(IdSet{q.VarByName(Xi(i)), q.VarByName(Yi(i))});
    ht.lambda.push_back({1 + i});
    parent.push_back(0);
  }
  ht.shape = TreeShape::FromParents(std::move(parent));
  return ht;
}

Hypertree MakeQh2MergedHypertree(const ConjunctiveQuery& q, int h) {
  Hypertree ht;
  std::vector<int> parent;
  // Root: {X0, Y0, Y1..Yh} guarded by {r, s}.
  IdSet root_chi{q.VarByName("X0"), q.VarByName("Y0")};
  for (int i = 1; i <= h; ++i) root_chi.Insert(q.VarByName(Yi(i)));
  ht.chi.push_back(root_chi);
  ht.lambda.push_back({0, 1});
  parent.push_back(-1);
  for (int i = 1; i <= h; ++i) {
    ht.chi.push_back(IdSet{q.VarByName(Xi(i)), q.VarByName(Yi(i))});
    ht.lambda.push_back({1 + i});
    parent.push_back(0);
  }
  ht.shape = TreeShape::FromParents(std::move(parent));
  return ht;
}

ConjunctiveQuery MakeQbarh2(int h) {
  SHARPCQ_CHECK(h >= 1);
  ConjunctiveQuery q;
  std::vector<std::string> r_vars = {"X0"};
  for (int i = 1; i <= h; ++i) r_vars.push_back(Yi(i));
  r_vars.push_back("Z");
  q.AddAtomVars("rbar", r_vars);
  std::vector<std::string> s_vars = {"Y0"};
  for (int i = 1; i <= h; ++i) s_vars.push_back(Yi(i));
  q.AddAtomVars("s", s_vars);
  std::vector<std::string> free = {"X0"};
  for (int i = 1; i <= h; ++i) {
    q.AddAtomVars("w" + std::to_string(i), {Xi(i), Yi(i)});
    free.push_back(Xi(i));
  }
  q.AddAtomVars("v", {"Z", "X1"});
  q.SetFreeByName(free);
  return q;
}

Database MakeQbarh2Database(int h, int z_domain) {
  SHARPCQ_CHECK(h >= 1 && h <= 20 && z_domain >= 1);
  const std::int64_t m = std::int64_t{1} << h;
  Database db;
  constexpr Value kABase = 1000000;
  constexpr Value kZBase = 2000000;
  constexpr Value kB = 10;
  constexpr Value kC = 11;
  for (std::int64_t j = 0; j < m; ++j) {
    std::vector<Value> enc;
    int parity = 0;
    for (int i = 1; i <= h; ++i) {
      Value bit = (j >> (i - 1)) & 1;
      parity ^= static_cast<int>(bit);
      enc.push_back(bit);
    }
    std::vector<Value> s_row = {parity};
    s_row.insert(s_row.end(), enc.begin(), enc.end());
    db.AddTuple("s", std::span<const Value>(s_row));
    for (int z = 0; z < z_domain; ++z) {
      std::vector<Value> r_row = {kABase + j};
      r_row.insert(r_row.end(), enc.begin(), enc.end());
      r_row.push_back(kZBase + z);
      db.AddTuple("rbar", std::span<const Value>(r_row));
    }
  }
  for (int i = 1; i <= h; ++i) {
    db.AddTuple("w" + std::to_string(i), {kB, 0});
    db.AddTuple("w" + std::to_string(i), {kC, 1});
  }
  for (int z = 0; z < z_domain; ++z) {
    db.AddTuple("v", {kZBase + z, kB});
    db.AddTuple("v", {kZBase + z, kC});
  }
  return db;
}

ConjunctiveQuery MakeQn1(int n) {
  SHARPCQ_CHECK(n >= 1);
  ConjunctiveQuery q;
  std::vector<std::string> free;
  for (int i = 1; i <= n; ++i) {
    q.AddAtomVars("r", {Xi(i), Yi(i)});
    free.push_back(Xi(i));
  }
  for (int i = 1; i < n; ++i) q.AddAtomVars("r", {Xi(i), Xi(i + 1)});
  for (int i = 1; i < n; ++i) q.AddAtomVars("r", {Yi(i), Yi(i + 1)});
  q.SetFreeByName(free);
  return q;
}

Database MakeQn1CycleDatabase(int d) {
  Database db;
  for (int i = 0; i < d; ++i) db.AddTuple("r", {i, (i + 1) % d});
  return db;
}

Database MakeQn1RandomDatabase(int d, int edges, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Database db;
  db.DeclareRelation("r", 2);
  auto any = [d](std::mt19937_64* r) {
    return static_cast<Value>((*r)() % static_cast<std::uint64_t>(d));
  };
  AddRandomPairs(&db, "r", edges, &rng, any, any);
  db.DedupAll();
  return db;
}

ConjunctiveQuery MakeQn2(int n) {
  SHARPCQ_CHECK(n >= 1);
  ConjunctiveQuery q;
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      q.AddAtomVars("r", {Xi(i), Yi(j)});
    }
  }
  q.SetFree(IdSet{});
  return q;
}

ConjunctiveQuery MakeCliqueQuery(int k) {
  SHARPCQ_CHECK(k >= 2);
  ConjunctiveQuery q;
  std::vector<std::string> free;
  for (int i = 1; i <= k; ++i) free.push_back("V" + std::to_string(i));
  for (int i = 1; i <= k; ++i) {
    for (int j = i + 1; j <= k; ++j) {
      q.AddAtomVars("e",
                    {"V" + std::to_string(i), "V" + std::to_string(j)});
    }
  }
  q.SetFreeByName(free);
  return q;
}

Database MakeRandomGraphDatabase(int n, double p, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Database db;
  db.DeclareRelation("e", 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (coin(rng) < p) {
        db.AddTuple("e", {i, j});
        db.AddTuple("e", {j, i});
      }
    }
  }
  return db;
}

}  // namespace sharpcq
