#ifndef SHARPCQ_GEN_PAPER_QUERIES_H_
#define SHARPCQ_GEN_PAPER_QUERIES_H_

#include <cstdint>

#include "data/database.h"
#include "decomp/hypertree.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// Every worked example of the paper, as constructors. Variable names match
// the paper's figures so test output reads against the text.

// --- Example 1.1 / Figures 1-5,7: the workforce query Q0 -------------------
//
//   Q0(A,B,C) <- mw(A,B,I), wt(B,D), wi(B,E), pt(C,D),
//                st(D,F), st(D,G), rr(G,H), rr(F,H), rr(D,H)
ConjunctiveQuery MakeQ0();

struct Q0DatabaseParams {
  int machines = 8;
  int workers = 12;
  int tasks = 10;
  int projects = 5;
  int subtasks = 12;
  int resources = 8;
  int mw_tuples = 24;   // machine-worker assignments
  int wt_tuples = 20;   // worker-task assignments
  int pt_tuples = 12;   // project-task requirements
  int st_tuples = 24;   // task-subtask pairs
  int rr_tuples = 30;   // task/subtask-resource requirements
  std::uint64_t seed = 1;
};
// A synthetic workforce database for Q0. Entity ids live in disjoint ranges
// so joins are only possible along the intended columns. st/rr tuples are
// drawn over tasks *and* subtasks so that the rr(D,H) and rr(F,H)/rr(G,H)
// atoms interact as in the paper's schema.
Database MakeQ0Database(const Q0DatabaseParams& params);

// --- Example 4.1 / Figure 8: the square query Q1 ---------------------------
//
//   Q1(A,C) <- s1(A,B), s2(B,C), s3(C,D), s4(D,A)
ConjunctiveQuery MakeQ1();
// Random binary relations s1..s4 over a domain of size n (tuple count per
// relation = tuples).
Database MakeQ1Database(int n, int tuples, std::uint64_t seed);

// --- Example C.1/C.2 / Figure 12: the family Q^h_2 -------------------------
//
//   Q^h_2(X0,...,Xh) <- r(X0,Y1,...,Yh), s(Y0,Y1,...,Yh),
//                       w1(X1,Y1), ..., wh(Xh,Yh)
ConjunctiveQuery MakeQh2(int h);
// The database D_2 (m = 2^h): r pairs a_j with the binary encoding of j,
// s enumerates all encodings (Y0 = parity), w_i maps {b, c} to {0, 1}.
// The number of answers is exactly m.
Database MakeQh2Database(int h);
// Figure 12(c): the natural width-1 hypertree decomposition HD_2, whose
// degree value bound(D_2, HD_2) is m = 2^h (the s-vertex covers no free
// variable).
Hypertree MakeQh2NaiveHypertree(const ConjunctiveQuery& q, int h);
// Example C.2: HD'_2 — r and s merged into one width-2 root; X0 then acts
// as a key, so bound(D_2, HD'_2) = 1.
Hypertree MakeQh2MergedHypertree(const ConjunctiveQuery& q, int h);

// --- Example 6.3/6.5 / Figures 9-10: the hybrid family Qbar^h_2 ------------
//
//   Qbar^h_2(X0,...,Xh) <- rbar(X0,Y1,...,Yh,Z), s(Y0,...,Yh),
//                          w1(X1,Y1), ..., wh(Xh,Yh), v(Z,X1)
ConjunctiveQuery MakeQbarh2(int h);
// Dbar^m_2: like D_2, but rbar extends every (a_j, enc(j)) with every value
// of Z (domain size z_domain, the paper's m) and v is the full cross
// product — Z extends every answer in z_domain ways, defeating pure degree
// arguments while the Y variables stay functionally determined.
Database MakeQbarh2Database(int h, int z_domain);

// --- Example A.2 / Figure 11: the chain family Q^n_1 -----------------------
//
//   Q^n_1(X1,...,Xn) <- r(X1,Y1), ..., r(Xn,Yn),
//                       r(X1,X2), ..., r(X_{n-1},X_n),
//                       r(Y1,Y2), ..., r(Y_{n-1},Y_n)
// Quantified star size ceil(n/2), #-hypertree width 1 (the colored core is
// the X-chain plus one pendant edge).
ConjunctiveQuery MakeQn1(int n);
// A cycle digraph r = {(i, i+1 mod d)}: the count is exactly d.
Database MakeQn1CycleDatabase(int d);
// A random digraph with `edges` arcs over domain d.
Database MakeQn1RandomDatabase(int d, int edges, std::uint64_t seed);

// --- Theorem A.3: the biclique family Q^n_2 --------------------------------
//
//   Q^n_2() <- r(Xi,Yj) for all i,j in [n]   (Boolean: all vars quantified)
// Generalized hypertree width n, #-hypertree width 1 (core = one atom).
ConjunctiveQuery MakeQn2(int n);

// --- Theorem 1.6 shape: counting k-cliques as #CQ --------------------------
//
//   Clique_k(V1,...,Vk) <- e(Vi,Vj) for all i<j
// Over a symmetric edge relation each k-clique is counted k! times.
ConjunctiveQuery MakeCliqueQuery(int k);
// G(n, p) with a symmetric edge relation (no self-loops).
Database MakeRandomGraphDatabase(int n, double p, std::uint64_t seed);

}  // namespace sharpcq

#endif  // SHARPCQ_GEN_PAPER_QUERIES_H_
