#include "gen/random_gen.h"

#include <algorithm>
#include <random>
#include <set>

#include "util/check.h"

namespace sharpcq {

ConjunctiveQuery MakeRandomQuery(const RandomQueryParams& p) {
  SHARPCQ_CHECK(p.num_vars >= 1 && p.num_atoms >= 1 && p.max_arity >= 1);
  std::mt19937_64 rng(p.seed);
  ConjunctiveQuery q;
  std::vector<VarId> vars;
  vars.reserve(static_cast<std::size_t>(p.num_vars));
  for (int i = 0; i < p.num_vars; ++i) {
    vars.push_back(q.InternVar("V" + std::to_string(i)));
  }
  // One fixed arity per relation symbol (relational vocabularies give each
  // symbol a single arity).
  std::vector<int> rel_arity(static_cast<std::size_t>(p.num_relations));
  for (int& a : rel_arity) {
    a = 1 + static_cast<int>(rng() % static_cast<std::uint64_t>(p.max_arity));
  }

  std::vector<IdSet> atom_vars;  // for acyclic construction
  for (int a = 0; a < p.num_atoms; ++a) {
    std::size_t rel =
        rng() % static_cast<std::uint64_t>(p.num_relations);
    int arity = rel_arity[rel];
    std::vector<Term> terms;
    if (!p.force_acyclic || atom_vars.empty()) {
      for (int t = 0; t < arity; ++t) {
        terms.push_back(Term::Var(
            vars[rng() % static_cast<std::uint64_t>(vars.size())]));
      }
    } else {
      // Share a prefix with a random earlier atom, then fresh-ish vars not
      // used by any earlier atom (guaranteeing a join-tree construction).
      const IdSet& parent =
          atom_vars[rng() % static_cast<std::uint64_t>(atom_vars.size())];
      std::vector<std::uint32_t> shared(parent.begin(), parent.end());
      std::shuffle(shared.begin(), shared.end(), rng);
      std::size_t keep = shared.empty() ? 0 : rng() % (shared.size() + 1);
      IdSet used_anywhere;
      for (const IdSet& s : atom_vars) used_anywhere = Union(used_anywhere, s);
      std::vector<VarId> fresh;
      for (VarId v : vars) {
        if (!used_anywhere.Contains(v)) fresh.push_back(v);
      }
      std::shuffle(fresh.begin(), fresh.end(), rng);
      for (int t = 0; t < arity; ++t) {
        if (static_cast<std::size_t>(t) < keep) {
          terms.push_back(Term::Var(shared[static_cast<std::size_t>(t)]));
        } else if (!fresh.empty()) {
          terms.push_back(Term::Var(fresh.back()));
          fresh.pop_back();
        } else {
          // Fall back to repeating a shared variable (keeps acyclicity).
          terms.push_back(Term::Var(
              shared.empty() ? vars[0]
                             : shared[rng() % shared.size()]));
        }
      }
    }
    IdSet this_vars;
    for (const Term& t : terms) this_vars.Insert(t.var);
    atom_vars.push_back(this_vars);
    q.AddAtom("r" + std::to_string(rel), std::move(terms));
  }

  // Free variables among those actually used.
  IdSet used = q.AllVars();
  std::vector<std::uint32_t> pool(used.begin(), used.end());
  std::shuffle(pool.begin(), pool.end(), rng);
  IdSet free;
  for (int i = 0; i < p.num_free && static_cast<std::size_t>(i) < pool.size();
       ++i) {
    free.Insert(pool[static_cast<std::size_t>(i)]);
  }
  q.SetFree(free);
  return q;
}

Database MakeRandomDatabase(const ConjunctiveQuery& q,
                            const RandomDatabaseParams& p) {
  SHARPCQ_CHECK(p.domain >= 1);
  std::mt19937_64 rng(p.seed);
  Database db;
  std::set<std::string> declared;
  for (const Atom& a : q.atoms()) {
    db.DeclareRelation(a.relation, a.arity());
    if (!declared.insert(a.relation).second) continue;
    std::vector<Value> row(static_cast<std::size_t>(a.arity()));
    for (int t = 0; t < p.tuples_per_relation; ++t) {
      for (Value& v : row) {
        v = static_cast<Value>(rng() % static_cast<std::uint64_t>(p.domain));
      }
      db.AddTuple(a.relation, std::span<const Value>(row));
    }
  }
  db.DedupAll();
  return db;
}

}  // namespace sharpcq
