#ifndef SHARPCQ_GEN_RANDOM_GEN_H_
#define SHARPCQ_GEN_RANDOM_GEN_H_

#include <cstdint>

#include "data/database.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// Random instance generators for the property-test suites: every counting
// engine must agree with brute force on whatever these produce.

struct RandomQueryParams {
  int num_vars = 6;
  int num_atoms = 5;
  int max_arity = 3;
  int num_free = 2;       // clamped to the variables actually used
  int num_relations = 3;  // relation symbols are reused (non-simple queries)
  bool force_acyclic = false;
  std::uint64_t seed = 1;
};

// A random conjunctive query. With force_acyclic, atoms are generated along
// a random tree (each atom shares a subset of its parent's variables and
// adds fresh ones), so the hypergraph is alpha-acyclic by construction.
ConjunctiveQuery MakeRandomQuery(const RandomQueryParams& params);

struct RandomDatabaseParams {
  int domain = 4;
  int tuples_per_relation = 12;
  std::uint64_t seed = 1;
};

// A random database for q's vocabulary (arities read off q's atoms).
Database MakeRandomDatabase(const ConjunctiveQuery& q,
                            const RandomDatabaseParams& params);

}  // namespace sharpcq

#endif  // SHARPCQ_GEN_RANDOM_GEN_H_
