#include "hybrid/degree.h"

#include <unordered_map>

#include "query/atom_relation.h"
#include "util/check.h"
#include "util/hash.h"

namespace sharpcq {

std::size_t DegreeOfRelation(const VarRelation& rel, const IdSet& free) {
  if (rel.empty()) return 0;
  IdSet key_vars = Intersect(rel.vars(), free);
  std::vector<int> cols;
  cols.reserve(key_vars.size());
  for (std::uint32_t v : key_vars) cols.push_back(rel.ColumnOf(v));

  std::unordered_map<std::vector<Value>, std::size_t, VectorHash<Value>>
      multiplicity;
  std::vector<Value> key(cols.size());
  std::size_t degree = 0;
  for (std::size_t row = 0; row < rel.size(); ++row) {
    auto tuple = rel.rel().Row(row);
    for (std::size_t j = 0; j < cols.size(); ++j) {
      key[j] = tuple[static_cast<std::size_t>(cols[j])];
    }
    std::size_t count = ++multiplicity[key];
    degree = std::max(degree, count);
  }
  return degree;
}

std::size_t BoundOfInstance(const JoinTreeInstance& instance,
                            const IdSet& free) {
  std::size_t bound = 0;
  for (const VarRelation& rel : instance.nodes) {
    bound = std::max(bound, DegreeOfRelation(rel, free));
  }
  return bound;
}

JoinTreeInstance MaterializeHypertree(const ConjunctiveQuery& q,
                                      const Database& db,
                                      const Hypertree& ht) {
  JoinTreeInstance instance;
  instance.shape = ht.shape;
  instance.nodes.reserve(ht.chi.size());
  for (std::size_t v = 0; v < ht.chi.size(); ++v) {
    SHARPCQ_CHECK_MSG(!ht.lambda[v].empty(), "vertex without guard atoms");
    VarRelation joined = AtomToVarRelation(
        q.atoms()[static_cast<std::size_t>(ht.lambda[v][0])], db);
    for (std::size_t g = 1; g < ht.lambda[v].size(); ++g) {
      joined = Join(joined,
                    AtomToVarRelation(
                        q.atoms()[static_cast<std::size_t>(ht.lambda[v][g])],
                        db));
    }
    SHARPCQ_CHECK_MSG(ht.chi[v].IsSubsetOf(joined.vars()),
                      "chi not contained in vars(lambda)");
    instance.nodes.push_back(Project(joined, ht.chi[v]));
  }
  return instance;
}

std::size_t HypertreeBound(const ConjunctiveQuery& q, const Database& db,
                           const Hypertree& ht) {
  return BoundOfInstance(MaterializeHypertree(q, db, ht), q.free_vars());
}

}  // namespace sharpcq
