#include "hybrid/degree.h"

#include "query/atom_relation.h"
#include "util/check.h"

namespace sharpcq {

std::size_t DegreeOfRelation(const Rel& rel, const IdSet& free) {
  // MaxGroupSize indexes on vars(rel) ∩ free and returns the largest group
  // (0 for the empty relation), which is exactly Definition 6.1. The index
  // is the packed-key one the semijoin probes share, so a degree check on a
  // relation the reducer already probed costs a cache hit — and a degree
  // check that builds the index leaves it warm for the PS13 partition.
  return MaxGroupSize(rel, free);
}

std::size_t BoundOfInstance(const JoinTreeInstance& instance,
                            const IdSet& free) {
  std::size_t bound = 0;
  for (const Rel& rel : instance.nodes) {
    bound = std::max(bound, DegreeOfRelation(rel, free));
  }
  return bound;
}

JoinTreeInstance MaterializeHypertree(const ConjunctiveQuery& q,
                                      const Database& db,
                                      const Hypertree& ht) {
  JoinTreeInstance instance;
  instance.shape = ht.shape;
  instance.nodes.reserve(ht.chi.size());
  for (std::size_t v = 0; v < ht.chi.size(); ++v) {
    SHARPCQ_CHECK_MSG(!ht.lambda[v].empty(), "vertex without guard atoms");
    Rel joined = AtomToRel(
        q.atoms()[static_cast<std::size_t>(ht.lambda[v][0])], db);
    for (std::size_t g = 1; g < ht.lambda[v].size(); ++g) {
      joined = Join(joined,
                    AtomToRel(
                        q.atoms()[static_cast<std::size_t>(ht.lambda[v][g])],
                        db));
    }
    SHARPCQ_CHECK_MSG(ht.chi[v].IsSubsetOf(joined.vars()),
                      "chi not contained in vars(lambda)");
    instance.nodes.push_back(Project(joined, ht.chi[v]));
  }
  return instance;
}

std::size_t HypertreeBound(const ConjunctiveQuery& q, const Database& db,
                           const Hypertree& ht) {
  return BoundOfInstance(MaterializeHypertree(q, db, ht), q.free_vars());
}

}  // namespace sharpcq
