#ifndef SHARPCQ_HYBRID_DEGREE_H_
#define SHARPCQ_HYBRID_DEGREE_H_

#include "count/join_tree_instance.h"
#include "data/database.h"
#include "data/var_relation.h"
#include "decomp/hypertree.h"
#include "query/conjunctive_query.h"
#include "util/id_set.h"

namespace sharpcq {

// Degrees (Definition 6.1). The degree of a relation w.r.t. a set of output
// variables F is the largest number of rows sharing one projection onto F:
// how many ways a partial answer extends inside this relation. Keys give
// degree 1; "quasi-keys" give small degrees. Streamed off the relation's
// cached group index (legacy VarRelations convert implicitly).
std::size_t DegreeOfRelation(const Rel& rel, const IdSet& free);

// bound(D, HD) over a materialized instance: the maximum degree over its
// bag relations.
std::size_t BoundOfInstance(const JoinTreeInstance& instance,
                            const IdSet& free);

// bound(D, HD) of a hypertree for q over db: materializes
// r_v = pi_{chi(v)}(join of lambda(v)) per vertex and takes the maximum
// degree w.r.t. free(q).
std::size_t HypertreeBound(const ConjunctiveQuery& q, const Database& db,
                           const Hypertree& ht);

// Materializes the vertex relations of a hypertree (no consistency
// enforcement): r_v = pi_{chi(v)}(join of lambda(v) over db).
JoinTreeInstance MaterializeHypertree(const ConjunctiveQuery& q,
                                      const Database& db, const Hypertree& ht);

}  // namespace sharpcq

#endif  // SHARPCQ_HYBRID_DEGREE_H_
