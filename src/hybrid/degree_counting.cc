#include "hybrid/degree_counting.h"

#include "hybrid/degree.h"

namespace sharpcq {

CountResult CountByPs13OnHypertree(const ConjunctiveQuery& q,
                                   const Database& db, const Hypertree& ht,
                                   Ps13Stats* stats) {
  Hypertree complete = MakeComplete(ht, q);
  JoinTreeInstance instance = MaterializeHypertree(q, db, complete);

  // Filter the completion vertices by their host, as in the Theorem 6.2
  // proof: the fresh vertex for an uncovered atom inherits the degree bound
  // from its parent only after dropping tuples the parent rules out.
  for (std::size_t v = ht.chi.size(); v < complete.chi.size(); ++v) {
    int parent = complete.shape.parent[v];
    instance.nodes[v] =
        Semijoin(instance.nodes[v],
                 instance.nodes[static_cast<std::size_t>(parent)]);
  }

  CountResult result;
  result.method = "ps13(k=" + std::to_string(complete.width()) + ")";
  result.width = complete.width();
  result.count = Ps13Count(instance, q.free_vars(), stats);
  return result;
}

}  // namespace sharpcq
