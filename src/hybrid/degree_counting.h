#ifndef SHARPCQ_HYBRID_DEGREE_COUNTING_H_
#define SHARPCQ_HYBRID_DEGREE_COUNTING_H_

#include "core/sharp_counting.h"
#include "count/ps13.h"
#include "data/database.h"
#include "decomp/hypertree.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// Theorem 6.2: counting via a width-k hypertree decomposition with the
// Figure 13 algorithm — cost O(|vertices(T)| * m^{2k} * 4^h) where
// h = bound(D, HD). The decomposition is completed first (every atom gets a
// lambda home, fresh vertices are filtered by their host as in the proof).
CountResult CountByPs13OnHypertree(const ConjunctiveQuery& q,
                                   const Database& db, const Hypertree& ht,
                                   Ps13Stats* stats = nullptr);

}  // namespace sharpcq

#endif  // SHARPCQ_HYBRID_DEGREE_COUNTING_H_
