#include "hybrid/hybrid_counting.h"

#include "core/materialize.h"
#include "count/enumeration.h"
#include "count/join_tree_instance.h"
#include "util/trace.h"

namespace sharpcq {

CountResult CountViaSharpB(const ConjunctiveQuery& q, const Database& db,
                           const SharpBDecomposition& d, Ps13Stats* stats) {
  CountResult result;
  result.width = d.decomposition.width;
  result.method = "#b-hypertree(k=" + std::to_string(result.width) +
                  ",b=" + std::to_string(d.bound) + ")";

  JoinTreeInstance instance;
  {
    TraceSpan span("materialize_bags");
    instance = MaterializeBags(d.decomposition.core, q, db,
                               d.decomposition.tree, d.decomposition.views);
    span.NoteCount("bags", instance.nodes.size());
  }
  if (!FullReduce(&instance)) {
    result.count = 0;
    return result;
  }
  // chi_{S-bar} labels: drop the structurally-handled existential variables.
  JoinTreeInstance restricted;
  {
    TraceSpan span("restrict_to_s_bar");
    restricted = RestrictToVars(instance, d.s_bar);
  }
  result.count = Ps13Count(restricted, q.free_vars(), stats);
  return result;
}

std::optional<CountResult> CountBySharpBDecomposition(
    const ConjunctiveQuery& q, const Database& db, int k,
    const SharpBOptions& options) {
  std::optional<SharpBDecomposition> d =
      FindSharpBDecomposition(q, db, k, options);
  if (!d.has_value()) return std::nullopt;
  return CountViaSharpB(q, db, *d);
}

// CountAnswersWithHybrid is defined in engine/legacy_facades.cc: it
// delegates to the engine layer, which sits above this one.

}  // namespace sharpcq
