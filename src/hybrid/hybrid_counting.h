#ifndef SHARPCQ_HYBRID_HYBRID_COUNTING_H_
#define SHARPCQ_HYBRID_HYBRID_COUNTING_H_

#include <optional>

#include "core/sharp_counting.h"
#include "count/ps13.h"
#include "data/database.h"
#include "hybrid/sharp_b.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// Theorem 6.6: counting with a width-k #b-generalized hypertree
// decomposition in polynomial time (for fixed k and b).
//
// Pipeline: the Theorem 3.7 machinery applied to Q[S-bar] eliminates the
// purely structural existential variables (those outside S-bar), yielding
// an acyclic instance over the pseudo-free variables whose full join equals
// pi_{S-bar}(Q(D)); the Figure 13 algorithm (Theorem 6.2) then counts the
// projection onto the *original* free variables, with cost exponential only
// in the degree bound b.
CountResult CountViaSharpB(const ConjunctiveQuery& q, const Database& db,
                           const SharpBDecomposition& d,
                           Ps13Stats* stats = nullptr);

// Search + count: Theorem 6.7 followed by Theorem 6.6. Returns nullopt when
// q has no width-k #b-decomposition within the options' bound cap.
std::optional<CountResult> CountBySharpBDecomposition(
    const ConjunctiveQuery& q, const Database& db, int k,
    const SharpBOptions& options = {});

// DEPRECATED legacy facade: purely structural #-hypertree decompositions
// first (widths 1..max_width), then hybrid #b-decompositions (same width
// budget), then the backtracking baseline. Always exact; the method string
// records which engine answered.
//
// Now a thin wrapper over the unified plan/execute engine (engine/engine.h)
// sharing its process-wide plan cache; new code should construct a
// CountingEngine directly.
CountResult CountAnswersWithHybrid(const ConjunctiveQuery& q,
                                   const Database& db,
                                   const CountOptions& options = {});

}  // namespace sharpcq

#endif  // SHARPCQ_HYBRID_HYBRID_COUNTING_H_
