#include "hybrid/min_degree_search.h"

#include <limits>
#include <map>
#include <unordered_map>

#include "core/materialize.h"
#include "hybrid/degree.h"
#include "util/check.h"

namespace sharpcq {

namespace {

// Lazy view materialization + per-(view, bag) degree cache.
class DegreeOracle {
 public:
  DegreeOracle(const ViewSet& views, const ConjunctiveQuery& guard_query,
               const Database& db, const IdSet& free, const IdSet& project_to)
      : views_(views),
        guard_query_(guard_query),
        db_(db),
        free_(free),
        project_to_(project_to) {}

  std::size_t DegreeOf(const IdSet& bag, int view_id) {
    IdSet projected = Intersect(bag, project_to_);
    auto key = std::make_pair(view_id, projected);
    auto it = degree_cache_.find(key);
    if (it != degree_cache_.end()) return it->second;
    const Rel& rel = ViewRelation(view_id);
    std::size_t degree =
        DegreeOfRelation(Project(rel, Intersect(projected, rel.vars())),
                         free_);
    degree_cache_.emplace(std::move(key), degree);
    return degree;
  }

 private:
  const Rel& ViewRelation(int view_id) {
    auto it = view_cache_.find(view_id);
    if (it != view_cache_.end()) return it->second;
    Rel joined = MaterializeViewRel(
        views_, static_cast<std::size_t>(view_id), guard_query_, db_);
    return view_cache_.emplace(view_id, std::move(joined)).first->second;
  }

  const ViewSet& views_;
  const ConjunctiveQuery& guard_query_;
  const Database& db_;
  IdSet free_;
  IdSet project_to_;
  std::unordered_map<int, Rel> view_cache_;
  std::map<std::pair<int, IdSet>, std::size_t> degree_cache_;
};

// The maximum bag degree of a concrete tree.
std::size_t AchievedBound(const BagTree& tree, DegreeOracle* oracle) {
  std::size_t bound = 0;
  for (std::size_t v = 0; v < tree.bags.size(); ++v) {
    bound = std::max(bound, oracle->DegreeOf(tree.bags[v], tree.view_ids[v]));
  }
  return bound;
}

}  // namespace

std::optional<MinDegreeResult> FindMinDegreeTreeProjection(
    const std::vector<IdSet>& cover, const ViewSet& views,
    const ConjunctiveQuery& guard_query, const Database& db,
    const IdSet& free, const IdSet& project_to, std::size_t max_b) {
  DegreeOracle oracle(views, guard_query, db, free, project_to);

  // Unfiltered existence first; its achieved bound seeds the search.
  auto unfiltered = FindTreeProjection(cover, views);
  if (!unfiltered.has_value()) return std::nullopt;

  MinDegreeResult best;
  best.tree = std::move(unfiltered->tree);
  best.bound = AchievedBound(best.tree, &oracle);

  // Parametric search: the smallest b such that a tree projection exists
  // using only bags of degree <= b.
  auto feasible_at = [&](std::size_t b) -> std::optional<BagTree> {
    TreeProjectionOptions options;
    options.bag_cost = [&oracle, b](const IdSet& bag, int view_id) -> double {
      return oracle.DegreeOf(bag, view_id) <= b
                 ? 1.0
                 : std::numeric_limits<double>::infinity();
    };
    auto result = FindTreeProjection(cover, views, options);
    if (!result.has_value()) return std::nullopt;
    return std::move(result->tree);
  };

  std::size_t lo = 1;
  std::size_t hi = best.bound;  // degrees of the unfiltered solution
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    std::optional<BagTree> tree = feasible_at(mid);
    if (tree.has_value()) {
      best.tree = std::move(*tree);
      best.bound = AchievedBound(best.tree, &oracle);
      hi = std::min(mid, best.bound);
    } else {
      lo = mid + 1;
    }
  }
  if (best.bound > max_b) return std::nullopt;
  return best;
}

}  // namespace sharpcq
