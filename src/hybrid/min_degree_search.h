#ifndef SHARPCQ_HYBRID_MIN_DEGREE_SEARCH_H_
#define SHARPCQ_HYBRID_MIN_DEGREE_SEARCH_H_

#include <optional>
#include <vector>

#include "data/database.h"
#include "decomp/tree_projection.h"
#include "decomp/views.h"
#include "query/conjunctive_query.h"
#include "util/id_set.h"

namespace sharpcq {

struct MinDegreeResult {
  BagTree tree;
  std::size_t bound = 0;  // the achieved bound(D, HD)
};

// Finds a tree projection of `cover` w.r.t. `views` whose *maximum bag
// degree* is minimal: the degree of a bag is
// DegreeOfRelation(pi_{bag ∩ project_to}(view relation), free), the
// quantity of Definitions 6.1/6.4. Views are materialized lazily over `db`
// by joining their guard atoms from `guard_query`; degrees are cached per
// (view, projected bag).
//
// This is the optimization core shared by the D-optimal decompositions of
// Theorem C.5 (project_to = all variables) and the #b-decomposition search
// of Theorem 6.7 (project_to = the pseudo-free set S-bar). The paper
// minimizes the weighted aggregate F_{Q,D} = sum (w+1)^deg, whose minimizer
// is exactly the min-max-degree decomposition; we compute that minimizer by
// a parametric scan (existence searches with a degree cap), avoiding the
// astronomically large weights.
//
// Returns nullopt if no tree projection exists at all, or none achieves a
// bound <= max_b (pass SIZE_MAX for "no cap").
std::optional<MinDegreeResult> FindMinDegreeTreeProjection(
    const std::vector<IdSet>& cover, const ViewSet& views,
    const ConjunctiveQuery& guard_query, const Database& db,
    const IdSet& free, const IdSet& project_to, std::size_t max_b);

}  // namespace sharpcq

#endif  // SHARPCQ_HYBRID_MIN_DEGREE_SEARCH_H_
