#include "hybrid/optimal_decomp.h"

#include "hybrid/min_degree_search.h"

namespace sharpcq {

std::optional<DOptimalResult> FindDOptimalDecomposition(
    const ConjunctiveQuery& q, const Database& db, int k) {
  ViewSet views = BuildVk(q, k);
  std::vector<IdSet> cover = q.BuildHypergraph().edges();
  IdSet all_vars = q.AllVars();
  std::optional<MinDegreeResult> found = FindMinDegreeTreeProjection(
      cover, views, q, db, q.free_vars(), /*project_to=*/all_vars,
      /*max_b=*/static_cast<std::size_t>(-1));
  if (!found.has_value()) return std::nullopt;
  DOptimalResult result;
  result.hypertree = HypertreeFromBagTree(found->tree, views);
  result.bound = found->bound;
  return result;
}

}  // namespace sharpcq
