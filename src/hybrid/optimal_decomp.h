#ifndef SHARPCQ_HYBRID_OPTIMAL_DECOMP_H_
#define SHARPCQ_HYBRID_OPTIMAL_DECOMP_H_

#include <optional>

#include "data/database.h"
#include "decomp/hypertree.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

struct DOptimalResult {
  Hypertree hypertree;
  std::size_t bound = 0;  // bound(D, HD) of the returned decomposition
};

// D-optimal decompositions (Definition C.3, Theorem C.5): a width-<=k
// hypertree decomposition of q minimizing bound(D, HD) over the normal-form
// class C^nf_k. The paper obtains the minimizer through the weighted
// aggregate F_{Q,D}(HD) = sum_p (w+1)^{deg_D(free, p)}; we compute the same
// minimizer with a parametric min-max-degree search (see
// min_degree_search.h), which avoids the astronomically large weights.
//
// Example C.2's separation — the natural width-1 decomposition of Q^h_2 has
// bound 2^h while merging two vertices yields bound 1 at width 2 — is found
// automatically by this search at k = 2.
std::optional<DOptimalResult> FindDOptimalDecomposition(
    const ConjunctiveQuery& q, const Database& db, int k);

}  // namespace sharpcq

#endif  // SHARPCQ_HYBRID_OPTIMAL_DECOMP_H_
