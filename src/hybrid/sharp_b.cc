#include "hybrid/sharp_b.h"

#include <algorithm>
#include <functional>

#include "hybrid/min_degree_search.h"
#include "solver/core.h"
#include "util/check.h"
#include "util/trace.h"

namespace sharpcq {

namespace {

// Enumerates subsets of `candidates` by increasing size, invoking
// fn(subset) until it returns true (stop) or `max_subsets` are visited.
void ForEachSubsetBySize(const IdSet& candidates, std::size_t max_subsets,
                         const std::function<bool(const IdSet&)>& fn) {
  std::vector<std::uint32_t> pool(candidates.begin(), candidates.end());
  std::size_t visited = 0;
  bool stop = false;
  std::vector<std::uint32_t> chosen;
  auto rec = [&](auto&& self, std::size_t start,
                 std::size_t remaining) -> void {
    if (stop) return;
    if (remaining == 0) {
      if (visited++ >= max_subsets || fn(IdSet::FromVector(chosen))) {
        stop = true;
      }
      return;
    }
    for (std::size_t i = start; i + remaining <= pool.size() && !stop; ++i) {
      chosen.push_back(pool[i]);
      self(self, i + 1, remaining - 1);
      chosen.pop_back();
    }
  };
  for (std::size_t size = 0; size <= pool.size() && !stop; ++size) {
    rec(rec, 0, size);
  }
}

}  // namespace

std::optional<SharpBDecomposition> FindSharpBDecomposition(
    const ConjunctiveQuery& q, const Database& db, int k,
    const SharpBOptions& options) {
  ViewSet views = BuildVk(q, k);
  IdSet existential = q.ExistentialVars();

  TraceSpan span("sharp_b_search");
  span.NoteCount("k", static_cast<std::uint64_t>(k));
  span.NoteCount("existential", existential.size());

  std::optional<SharpBDecomposition> best;

  auto try_s_bar = [&](const IdSet& extra) -> bool {
    if (best.has_value() && best->bound <= 1) return true;  // can't improve
    IdSet s_bar = Union(q.free_vars(), extra);
    ConjunctiveQuery q_s = q.WithFree(s_bar);
    std::size_t cap = best.has_value() ? best->bound - 1 : options.max_b;

    auto try_core = [&](ConjunctiveQuery core) -> bool {
      std::vector<IdSet> cover = SharpCoverEdges(core, s_bar);
      std::optional<MinDegreeResult> found = FindMinDegreeTreeProjection(
          cover, views, q, db, q.free_vars(), s_bar, cap);
      if (!found.has_value()) return false;
      SharpBDecomposition d;
      d.s_bar = s_bar;
      d.decomposition.core = std::move(core);
      d.decomposition.tree = std::move(found->tree);
      d.decomposition.views = views;
      d.decomposition.width = d.decomposition.tree.Width(views);
      d.bound = std::max<std::size_t>(found->bound, 1);
      if (!best.has_value() || d.bound < best->bound) best = std::move(d);
      return true;
    };

    // Greedy core first; enumerate alternatives only when it fails against
    // the views (Example 3.5's situation).
    if (!try_core(ComputeColoredCore(q_s)) && options.max_cores > 1) {
      bool skipped_first = false;
      for (ConjunctiveQuery& core :
           EnumerateColoredCores(q_s, options.max_cores)) {
        if (!skipped_first) {
          skipped_first = true;  // the greedy core, already tried
          continue;
        }
        if (try_core(std::move(core))) break;
      }
    }
    return best.has_value() && best->bound <= 1;
  };

  ForEachSubsetBySize(existential, options.max_subsets, try_s_bar);
  if (best.has_value()) {
    span.NoteCount("b", best->bound);
  } else {
    span.Note("found", "no");
  }
  return best;
}

}  // namespace sharpcq
