#ifndef SHARPCQ_HYBRID_SHARP_B_H_
#define SHARPCQ_HYBRID_SHARP_B_H_

#include <optional>

#include "core/sharp_decomposition.h"
#include "data/database.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// A width-k #b-generalized hypertree decomposition of Q w.r.t. D
// (Definition 6.4): a pseudo-free set S-bar ⊇ free(Q) and a width-k
// #-generalized hypertree decomposition of Q[S-bar] whose chi_{S-bar}
// relations have degree at most b w.r.t. the *original* free variables.
struct SharpBDecomposition {
  IdSet s_bar;
  // #-decomposition of Q[S-bar]; its core is a core of color(Q[S-bar]).
  SharpDecomposition decomposition;
  // The achieved degree value b = bound_free(D, <T, chi_{S-bar}, lambda>).
  std::size_t bound = 0;
};

struct SharpBOptions {
  // Reject decompositions with bound > max_b (SIZE_MAX = any bound).
  std::size_t max_b = static_cast<std::size_t>(-1);
  // Substructure cores tried per pseudo-free set.
  std::size_t max_cores = 4;
  // Cap on the number of pseudo-free sets enumerated (FPT in ||Q||, still
  // exponential: 2^|existential vars|). Sets are tried by increasing size,
  // so S-bar = free(Q) — the purely structural case — always comes first.
  std::size_t max_subsets = 4096;
};

// Theorem 6.7: computes a width-k #b-generalized hypertree decomposition
// with the minimum achievable degree value b over the enumerated
// pseudo-free sets (and over the normal-form decomposition class — see
// min_degree_search.h). Returns nullopt when no pseudo-free set admits a
// width-k decomposition within the bound cap.
std::optional<SharpBDecomposition> FindSharpBDecomposition(
    const ConjunctiveQuery& q, const Database& db, int k,
    const SharpBOptions& options = {});

}  // namespace sharpcq

#endif  // SHARPCQ_HYBRID_SHARP_B_H_
