#include "hypergraph/acyclic.h"

#include <unordered_map>

namespace sharpcq {

std::optional<TreeShape> BuildJoinTree(const std::vector<IdSet>& edges) {
  const std::size_t n = edges.size();
  if (n == 0) return TreeShape{};

  std::vector<IdSet> work = edges;  // working copies shrink during GYO
  std::vector<bool> alive(n, true);
  std::vector<int> parent(n, -2);  // -2 = undecided
  std::size_t alive_count = n;

  bool progress = true;
  while (progress && alive_count > 1) {
    progress = false;

    // Ear vertices: nodes occurring in exactly one alive edge.
    std::unordered_map<std::uint32_t, int> occurrences;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      for (std::uint32_t v : work[i]) ++occurrences[v];
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      IdSet kept;
      for (std::uint32_t v : work[i]) {
        if (occurrences[v] > 1) kept.Insert(v);
      }
      if (kept.size() != work[i].size()) {
        work[i] = std::move(kept);
        progress = true;
      }
    }

    // Subsumed edges: attach i under j when work[i] is a subset of work[j].
    for (std::size_t i = 0; i < n && alive_count > 1; ++i) {
      if (!alive[i]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j || !alive[j]) continue;
        if (!work[i].IsSubsetOf(work[j])) continue;
        // Equal working edges: remove the larger index only, so exactly one
        // survives.
        if (work[i] == work[j] && i < j) continue;
        alive[i] = false;
        parent[i] = static_cast<int>(j);
        --alive_count;
        progress = true;
        break;
      }
    }
  }

  // Acyclic iff at most one edge survived (its working copy is whatever is
  // left; a single edge is always a valid join tree root).
  if (alive_count > 1) return std::nullopt;

  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i]) parent[i] = -1;
  }

  // Parents may point to dead edges whose own parent was decided later;
  // this is fine (they point to alive-at-the-time edges, which form a valid
  // join tree inductively). Just sanity-check all parents were decided.
  for (std::size_t i = 0; i < n; ++i) SHARPCQ_CHECK(parent[i] != -2);

  TreeShape shape = TreeShape::FromParents(std::move(parent));
  SHARPCQ_DCHECK(SatisfiesRunningIntersection(edges, shape));
  return shape;
}

bool IsAcyclic(const std::vector<IdSet>& edges) {
  return BuildJoinTree(edges).has_value();
}

bool SatisfiesRunningIntersection(const std::vector<IdSet>& bags,
                                  const TreeShape& shape) {
  if (bags.size() != shape.size()) return false;
  if (bags.empty()) return true;
  // For each node x, the bags containing x must induce a connected subtree.
  // The induced subgraph of a tree is connected iff it has exactly one
  // "local root": a bag containing x whose parent does not contain x.
  std::unordered_map<std::uint32_t, std::vector<int>> bags_with;
  for (std::size_t i = 0; i < bags.size(); ++i) {
    for (std::uint32_t x : bags[i]) bags_with[x].push_back(static_cast<int>(i));
  }
  for (const auto& [x, vs] : bags_with) {
    int roots = 0;
    for (int v : vs) {
      int p = shape.parent[static_cast<std::size_t>(v)];
      if (p < 0 || !bags[static_cast<std::size_t>(p)].Contains(x)) ++roots;
    }
    if (roots != 1) return false;
  }
  return true;
}

}  // namespace sharpcq
