#ifndef SHARPCQ_HYPERGRAPH_ACYCLIC_H_
#define SHARPCQ_HYPERGRAPH_ACYCLIC_H_

#include <optional>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "hypergraph/tree_shape.h"
#include "util/id_set.h"

namespace sharpcq {

// alpha-acyclicity via GYO reduction (Section 2): a hypergraph is acyclic
// iff repeated ear-vertex removal (a node occurring in exactly one edge) and
// subsumed-edge removal empties it.

// Builds a join tree whose vertex i is edges[i]; returns nullopt when the
// edge set is not alpha-acyclic. For disconnected hypergraphs the component
// trees are stitched under one root (valid: no shared nodes across
// components). The empty edge set yields an empty tree.
std::optional<TreeShape> BuildJoinTree(const std::vector<IdSet>& edges);

bool IsAcyclic(const std::vector<IdSet>& edges);
inline bool IsAcyclic(const Hypergraph& h) { return IsAcyclic(h.edges()); }

// The join tree/running intersection property: for every node, the set of
// bags containing it induces a connected subtree. Used to validate every
// tree this library produces.
bool SatisfiesRunningIntersection(const std::vector<IdSet>& bags,
                                  const TreeShape& shape);

}  // namespace sharpcq

#endif  // SHARPCQ_HYPERGRAPH_ACYCLIC_H_
