#include "hypergraph/hypergraph.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/check.h"

namespace sharpcq {

namespace {

// Union-find over arbitrary (non-dense) node ids.
class UnionFind {
 public:
  void Ensure(std::uint32_t x) { parent_.try_emplace(x, x); }

  std::uint32_t Find(std::uint32_t x) {
    Ensure(x);
    std::uint32_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      std::uint32_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  void Merge(std::uint32_t a, std::uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> parent_;
};

}  // namespace

Hypergraph::Hypergraph(IdSet nodes, std::vector<IdSet> edges)
    : nodes_(std::move(nodes)), edges_(std::move(edges)) {
  for (const IdSet& e : edges_) nodes_ = Union(nodes_, e);
}

void Hypergraph::AddEdge(IdSet edge) {
  nodes_ = Union(nodes_, edge);
  edges_.push_back(std::move(edge));
}

void Hypergraph::DedupEdges() {
  std::vector<IdSet> unique;
  for (const IdSet& e : edges_) {
    if (std::find(unique.begin(), unique.end(), e) == unique.end()) {
      unique.push_back(e);
    }
  }
  edges_ = std::move(unique);
}

void Hypergraph::RemoveSubsumedEdges() {
  DedupEdges();
  std::vector<IdSet> kept;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    bool subsumed = false;
    for (std::size_t j = 0; j < edges_.size(); ++j) {
      if (i == j) continue;
      if (edges_[i].IsSubsetOf(edges_[j]) &&
          (edges_[i] != edges_[j] || j < i)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(edges_[i]);
  }
  edges_ = std::move(kept);
}

std::string Hypergraph::ToString() const {
  return ToString([](std::uint32_t v) { return std::to_string(v); });
}

bool CoveredBySome(const std::vector<IdSet>& edges, const IdSet& edge) {
  for (const IdSet& e : edges) {
    if (edge.IsSubsetOf(e)) return true;
  }
  return false;
}

bool CoversEdges(const std::vector<IdSet>& covering_edges,
                 const std::vector<IdSet>& covered_edges) {
  for (const IdSet& e : covered_edges) {
    if (!CoveredBySome(covering_edges, e)) return false;
  }
  return true;
}

bool Covers(const Hypergraph& h2, const Hypergraph& h1) {
  return CoversEdges(h2.edges(), h1.edges());
}

WComponents ComputeWComponents(const Hypergraph& h, const IdSet& w) {
  UnionFind uf;
  IdSet outside = Difference(h.nodes(), w);
  for (std::uint32_t v : outside) uf.Ensure(v);
  for (const IdSet& e : h.edges()) {
    IdSet rest = Difference(e, w);
    for (std::size_t i = 1; i < rest.size(); ++i) uf.Merge(rest[0], rest[i]);
  }

  // Group nodes by representative.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> groups;
  for (std::uint32_t v : outside) groups[uf.Find(v)].push_back(v);

  WComponents out;
  for (auto& [rep, members] : groups) {
    out.components.push_back(IdSet::FromVector(std::move(members)));
  }
  // Deterministic order (components sorted by their smallest node).
  std::sort(out.components.begin(), out.components.end());

  out.edge_ids.resize(out.components.size());
  out.frontiers.resize(out.components.size());
  for (std::size_t c = 0; c < out.components.size(); ++c) {
    IdSet touched;  // nodes(edges(C))
    for (std::size_t e = 0; e < h.edges().size(); ++e) {
      if (h.edges()[e].Intersects(out.components[c])) {
        out.edge_ids[c].push_back(static_cast<int>(e));
        touched = Union(touched, h.edges()[e]);
      }
    }
    out.frontiers[c] = Intersect(w, touched);
  }
  return out;
}

IdSet Frontier(const Hypergraph& h, std::uint32_t y, const IdSet& w) {
  SHARPCQ_CHECK(h.nodes().Contains(y));
  if (w.Contains(y)) return IdSet{};
  WComponents comps = ComputeWComponents(h, w);
  for (std::size_t c = 0; c < comps.components.size(); ++c) {
    if (comps.components[c].Contains(y)) return comps.frontiers[c];
  }
  // y outside W but in no component: impossible (singleton components exist).
  SHARPCQ_CHECK(false);
  return IdSet{};
}

Hypergraph FrontierHypergraph(const Hypergraph& h, const IdSet& w) {
  Hypergraph fh(Union(h.nodes(), w), {});
  WComponents comps = ComputeWComponents(h, w);
  for (const IdSet& fr : comps.frontiers) {
    if (!fr.empty()) fh.AddEdge(fr);
  }
  for (const IdSet& e : h.edges()) {
    if (e.IsSubsetOf(w)) fh.AddEdge(e);
  }
  fh.DedupEdges();
  return fh;
}

std::vector<IdSet> PrimalGraphAdjacency(const Hypergraph& h) {
  std::unordered_map<std::uint32_t, IdSet> adj;
  for (std::uint32_t v : h.nodes()) adj.emplace(v, IdSet{});
  for (const IdSet& e : h.edges()) {
    for (std::uint32_t v : e) adj[v] = Union(adj[v], e);
  }
  std::vector<IdSet> out;
  out.reserve(h.nodes().size());
  for (std::uint32_t v : h.nodes()) {
    IdSet neighbors = adj[v];
    neighbors.Remove(v);
    out.push_back(std::move(neighbors));
  }
  return out;
}

std::vector<IdSet> ConnectedComponents(const Hypergraph& h) {
  return ComputeWComponents(h, IdSet{}).components;
}

}  // namespace sharpcq
