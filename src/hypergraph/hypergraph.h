#ifndef SHARPCQ_HYPERGRAPH_HYPERGRAPH_H_
#define SHARPCQ_HYPERGRAPH_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "util/id_set.h"

namespace sharpcq {

// A hypergraph H = (V, H) over dense node ids (Section 2). Nodes are kept
// explicitly because subqueries/cores drop variables: the node set is not
// derivable from the edges alone (isolated nodes matter for components).
class Hypergraph {
 public:
  Hypergraph() = default;
  Hypergraph(IdSet nodes, std::vector<IdSet> edges);

  const IdSet& nodes() const { return nodes_; }
  const std::vector<IdSet>& edges() const { return edges_; }
  std::size_t num_edges() const { return edges_.size(); }

  // Adds an edge (its nodes are added to the node set).
  void AddEdge(IdSet edge);

  // Removes duplicate edges (order-preserving on first occurrences).
  void DedupEdges();

  // Drops edges that are subsets of other edges (the "reduction" of H).
  // Irrelevant for tree-projection existence; useful for display.
  void RemoveSubsumedEdges();

  std::string ToString() const;
  template <typename NameFn>
  std::string ToString(NameFn name) const {
    std::string out = "nodes=" + nodes_.ToString(name) + " edges=[";
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      if (i > 0) out += ", ";
      out += edges_[i].ToString(name);
    }
    out += "]";
    return out;
  }

 private:
  IdSet nodes_;
  std::vector<IdSet> edges_;
};

// H1 <= H2: every edge of `h1` is contained in some edge of `h2` (Section 2,
// "Tree Projections").
bool Covers(const Hypergraph& h2, const Hypergraph& h1);
bool CoversEdges(const std::vector<IdSet>& covering_edges,
                 const std::vector<IdSet>& covered_edges);
// True if `edge` is a subset of some member of `edges`.
bool CoveredBySome(const std::vector<IdSet>& edges, const IdSet& edge);

// The [W]-components of H (Section 3.1): maximal [W]-connected sets of
// nodes(H) \ W, where X,Y are [W]-adjacent if some edge contains both
// outside W. For each component C the struct also records edges(C) (ids of
// edges meeting C) and the frontier Fr(C, W) = W  intersect  nodes(edges(C)).
struct WComponents {
  std::vector<IdSet> components;
  std::vector<std::vector<int>> edge_ids;
  std::vector<IdSet> frontiers;
};
WComponents ComputeWComponents(const Hypergraph& h, const IdSet& w);

// Fr(Y, W, H) per Section 3.1: empty if Y is in W; otherwise the frontier of
// the [W]-component containing Y. Y must be a node of H.
IdSet Frontier(const Hypergraph& h, std::uint32_t y, const IdSet& w);

// The frontier hypergraph FH(Q', W) of Definition 3.3, computed from the
// hypergraph `h` of Q'. Nodes: nodes(h) union W. Edges: the frontiers of all
// nodes of h plus the edges of h contained in W. Empty frontiers (of nodes
// inside W) are dropped; duplicates are removed.
Hypergraph FrontierHypergraph(const Hypergraph& h, const IdSet& w);

// Adjacency lists of the primal (Gaifman) graph of H over nodes(H).
std::vector<IdSet> PrimalGraphAdjacency(const Hypergraph& h);

// Connected components of H (equivalently its [empty set]-components).
std::vector<IdSet> ConnectedComponents(const Hypergraph& h);

}  // namespace sharpcq

#endif  // SHARPCQ_HYPERGRAPH_HYPERGRAPH_H_
