#ifndef SHARPCQ_HYPERGRAPH_TREE_SHAPE_H_
#define SHARPCQ_HYPERGRAPH_TREE_SHAPE_H_

#include <vector>

#include "util/check.h"

namespace sharpcq {

// A rooted tree over vertices 0..n-1, shared by join trees, hypertrees, and
// materialized join-tree instances.
struct TreeShape {
  int root = -1;
  std::vector<int> parent;                 // -1 for the root
  std::vector<std::vector<int>> children;  // derived from parent

  std::size_t size() const { return parent.size(); }

  static TreeShape FromParents(std::vector<int> parents) {
    TreeShape t;
    t.parent = std::move(parents);
    t.children.assign(t.parent.size(), {});
    for (std::size_t i = 0; i < t.parent.size(); ++i) {
      if (t.parent[i] < 0) {
        SHARPCQ_CHECK_MSG(t.root == -1, "multiple roots");
        t.root = static_cast<int>(i);
      } else {
        t.children[static_cast<std::size_t>(t.parent[i])].push_back(
            static_cast<int>(i));
      }
    }
    SHARPCQ_CHECK_MSG(t.root >= 0 || t.parent.empty(), "no root");
    return t;
  }

  // Vertices in an order where every parent precedes its children.
  std::vector<int> TopoOrder() const {
    std::vector<int> order;
    if (parent.empty()) return order;
    order.reserve(size());
    order.push_back(root);
    for (std::size_t i = 0; i < order.size(); ++i) {
      for (int c : children[static_cast<std::size_t>(order[i])]) {
        order.push_back(c);
      }
    }
    SHARPCQ_CHECK_MSG(order.size() == size(), "tree is not connected");
    return order;
  }
};

}  // namespace sharpcq

#endif  // SHARPCQ_HYPERGRAPH_TREE_SHAPE_H_
