#ifndef SHARPCQ_QUERY_ATOM_H_
#define SHARPCQ_QUERY_ATOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/value.h"
#include "util/id_set.h"

namespace sharpcq {

// Variables are interned per ConjunctiveQuery into dense ids.
using VarId = std::uint32_t;

// A term: a variable or a constant.
struct Term {
  enum class Kind { kVar, kConst };
  Kind kind = Kind::kVar;
  VarId var = 0;
  Value value = 0;

  static Term Var(VarId v) { return Term{Kind::kVar, v, 0}; }
  static Term Const(Value c) { return Term{Kind::kConst, 0, c}; }
  bool is_var() const { return kind == Kind::kVar; }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.kind != b.kind) return false;
    return a.is_var() ? a.var == b.var : a.value == b.value;
  }
};

// An atom r(u1, ..., u_rho).
struct Atom {
  std::string relation;
  std::vector<Term> terms;

  // The set of variables occurring in the atom.
  IdSet Vars() const {
    IdSet vars;
    for (const Term& t : terms) {
      if (t.is_var()) vars.Insert(t.var);
    }
    return vars;
  }

  int arity() const { return static_cast<int>(terms.size()); }

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.relation == b.relation && a.terms == b.terms;
  }
};

}  // namespace sharpcq

#endif  // SHARPCQ_QUERY_ATOM_H_
