#include "query/atom_relation.h"

#include "util/check.h"

namespace sharpcq {

namespace {

// Shared filtering loop: emits the variable-projected row of every tuple of
// the atom's stored relation that satisfies the constant and
// repeated-variable constraints.
template <typename Emit>
void ForEachSatisfyingRow(const Atom& atom, const Database& db,
                          const IdSet& vars, Emit&& emit) {
  const Relation& rel = db.relation(atom.relation);
  SHARPCQ_CHECK_MSG(rel.arity() == atom.arity(), atom.relation.c_str());

  // For each output column (sorted var), the first atom position holding it.
  std::vector<int> first_pos(vars.size(), -1);
  // For each atom position holding a variable, that variable's output column.
  std::vector<int> col_of_pos(atom.terms.size(), -1);
  {
    std::size_t c = 0;
    for (VarId v : vars) {
      for (std::size_t p = 0; p < atom.terms.size(); ++p) {
        if (atom.terms[p].is_var() && atom.terms[p].var == v) {
          if (first_pos[c] == -1) first_pos[c] = static_cast<int>(p);
          col_of_pos[p] = static_cast<int>(c);
        }
      }
      ++c;
    }
  }

  std::vector<Value> row(vars.size());
  const std::size_t n = rel.size();
  for (std::size_t i = 0; i < n; ++i) {
    auto tuple = rel.Row(i);
    bool ok = true;
    for (std::size_t p = 0; p < atom.terms.size() && ok; ++p) {
      const Term& t = atom.terms[p];
      if (!t.is_var()) {
        ok = tuple[p] == t.value;
      } else {
        // Repeated-variable consistency against the first occurrence.
        std::size_t c = static_cast<std::size_t>(col_of_pos[p]);
        ok = tuple[static_cast<std::size_t>(first_pos[c])] == tuple[p];
      }
    }
    if (!ok) continue;
    for (std::size_t c = 0; c < row.size(); ++c) {
      row[c] = tuple[static_cast<std::size_t>(first_pos[c])];
    }
    emit(std::span<const Value>(row));
  }
}

}  // namespace

Rel AtomToRel(const Atom& atom, const Database& db) {
  IdSet vars = atom.Vars();
  TableBuilder builder(static_cast<int>(vars.size()));
  builder.ReserveRows(db.relation(atom.relation).size());
  ForEachSatisfyingRow(atom, db, vars,
                       [&builder](std::span<const Value> row) {
                         builder.AddRow(row);
                       });
  return Rel(std::move(vars), std::move(builder).Build());
}

VarRelation AtomToVarRelation(const Atom& atom, const Database& db) {
  IdSet vars = atom.Vars();
  VarRelation out(vars);
  ForEachSatisfyingRow(atom, db, vars, [&out](std::span<const Value> row) {
    out.rel().AddRow(row);
  });
  out.rel().Dedup();
  return out;
}

}  // namespace sharpcq
