#include "query/atom_relation.h"

#include "algebra/stats.h"
#include "algebra/table.h"
#include "util/check.h"

namespace sharpcq {

namespace {

// Column layout of an atom's output relation: the output columns are the
// atom's variables in ascending id order; first_pos[c] is the first atom
// position holding output column c's variable, col_of_pos[p] the output
// column of position p (-1 for constants).
struct AtomLayout {
  std::vector<int> first_pos;
  std::vector<int> col_of_pos;
  bool plain = true;  // no constants, no repeated variables
};

AtomLayout LayoutOf(const Atom& atom, const IdSet& vars) {
  AtomLayout layout;
  layout.first_pos.assign(vars.size(), -1);
  layout.col_of_pos.assign(atom.terms.size(), -1);
  std::size_t c = 0;
  for (VarId v : vars) {
    for (std::size_t p = 0; p < atom.terms.size(); ++p) {
      if (atom.terms[p].is_var() && atom.terms[p].var == v) {
        if (layout.first_pos[c] == -1) {
          layout.first_pos[c] = static_cast<int>(p);
        } else {
          layout.plain = false;  // repeated variable
        }
        layout.col_of_pos[p] = static_cast<int>(c);
      }
    }
    ++c;
  }
  for (const Term& t : atom.terms) {
    if (!t.is_var()) layout.plain = false;  // constant position
  }
  return layout;
}

// Shared filtering loop over any row source (row-major Relation or columnar
// Table, abstracted as at(i, p)): emits the variable-projected row of every
// tuple that satisfies the constant and repeated-variable constraints.
template <typename GetAt, typename Emit>
void ForEachSatisfyingRow(const Atom& atom, const AtomLayout& layout,
                          std::size_t n, GetAt&& at, Emit&& emit) {
  std::vector<Value> row(layout.first_pos.size());
  for (std::size_t i = 0; i < n; ++i) {
    bool ok = true;
    for (std::size_t p = 0; p < atom.terms.size() && ok; ++p) {
      const Term& t = atom.terms[p];
      if (!t.is_var()) {
        ok = at(i, p) == t.value;
      } else {
        // Repeated-variable consistency against the first occurrence.
        std::size_t c = static_cast<std::size_t>(layout.col_of_pos[p]);
        std::size_t first = static_cast<std::size_t>(layout.first_pos[c]);
        ok = at(i, first) == at(i, p);
      }
    }
    if (!ok) continue;
    for (std::size_t c = 0; c < row.size(); ++c) {
      row[c] = at(i, static_cast<std::size_t>(layout.first_pos[c]));
    }
    emit(std::span<const Value>(row));
  }
}

template <typename Emit>
void EmitSatisfyingRows(const Atom& atom, const Database& db,
                        const IdSet& vars, Emit&& emit) {
  AtomLayout layout = LayoutOf(atom, vars);
  if (std::shared_ptr<const Table> stored = db.ColumnarBacking(atom.relation);
      stored != nullptr) {
    SHARPCQ_CHECK_MSG(stored->arity() == atom.arity(),
                      atom.relation.c_str());
    ForEachSatisfyingRow(
        atom, layout, stored->rows(),
        [&stored](std::size_t i, std::size_t p) {
          return stored->at(i, static_cast<int>(p));
        },
        emit);
    return;
  }
  const Relation& rel = db.relation(atom.relation);
  SHARPCQ_CHECK_MSG(rel.arity() == atom.arity(), atom.relation.c_str());
  ForEachSatisfyingRow(
      atom, layout, rel.size(),
      [&rel](std::size_t i, std::size_t p) { return rel.Row(i)[p]; }, emit);
}

std::size_t StoredSize(const Atom& atom, const Database& db) {
  if (auto stored = db.ColumnarBacking(atom.relation); stored != nullptr) {
    return stored->rows();
  }
  return db.relation(atom.relation).size();
}

}  // namespace

Rel AtomToRel(const Atom& atom, const Database& db) {
  IdSet vars = atom.Vars();
  if (std::shared_ptr<const Table> stored = db.ColumnarBacking(atom.relation);
      stored != nullptr) {
    SHARPCQ_CHECK_MSG(stored->arity() == atom.arity(),
                      atom.relation.c_str());
    AtomLayout layout = LayoutOf(atom, vars);
    if (layout.plain) {
      bool identity = true;
      for (std::size_t c = 0; c < layout.first_pos.size(); ++c) {
        if (layout.first_pos[c] != static_cast<int>(c)) {
          identity = false;
          break;
        }
      }
      if (identity) {
        // The variable order already matches the stored column order:
        // share the stored table itself rather than an alias. The stored
        // table outlives any single count, so indexes built while probing
        // it stay cached across queries — on catalog-served snapshots this
        // turns the per-count index build (the dominant cost of semijoins
        // against large relations) into a one-time cost.
        return Rel(std::move(vars), std::move(stored));
      }
      // Every tuple satisfies a plain atom and the projection onto vars is
      // a column permutation, so alias the stored columns directly: the
      // returned relation shares the snapshot's pages (zero copy), and the
      // permutation of a row set is still a row set.
      std::vector<std::span<const Value>> cols;
      cols.reserve(vars.size());
      for (int p : layout.first_pos) cols.push_back(stored->Column(p));
      std::shared_ptr<const Table> aliased =
          Table::FromExternal(std::move(cols), stored->rows(), stored);
      // The alias is a column permutation, so the stored table's cached
      // stats carry over verbatim (permuted) — the cost model sees base
      // relation statistics without ever recomputing them per query.
      if (std::shared_ptr<const TableStats> stats = stored->StatsIfPresent()) {
        aliased->InstallStats(PermuteStats(*stats, layout.first_pos));
      }
      return Rel(std::move(vars), std::move(aliased));
    }
  }
  TableBuilder builder(static_cast<int>(vars.size()));
  builder.ReserveRows(StoredSize(atom, db));
  EmitSatisfyingRows(atom, db, vars, [&builder](std::span<const Value> row) {
    builder.AddRow(row);
  });
  return Rel(std::move(vars), std::move(builder).Build());
}

VarRelation AtomToVarRelation(const Atom& atom, const Database& db) {
  IdSet vars = atom.Vars();
  VarRelation out(vars);
  EmitSatisfyingRows(atom, db, vars, [&out](std::span<const Value> row) {
    out.rel().AddRow(row);
  });
  out.rel().Dedup();
  return out;
}

}  // namespace sharpcq
