#include "query/atom_relation.h"

#include "util/check.h"

namespace sharpcq {

VarRelation AtomToVarRelation(const Atom& atom, const Database& db) {
  const Relation& rel = db.relation(atom.relation);
  SHARPCQ_CHECK_MSG(rel.arity() == atom.arity(), atom.relation.c_str());

  IdSet vars = atom.Vars();
  VarRelation out(vars);

  // For each output column (sorted var), the first atom position holding it.
  std::vector<int> first_pos(vars.size(), -1);
  {
    std::size_t c = 0;
    for (VarId v : vars) {
      for (std::size_t p = 0; p < atom.terms.size(); ++p) {
        if (atom.terms[p].is_var() && atom.terms[p].var == v) {
          first_pos[c] = static_cast<int>(p);
          break;
        }
      }
      ++c;
    }
  }

  std::vector<Value> row(vars.size());
  const std::size_t n = rel.size();
  for (std::size_t i = 0; i < n; ++i) {
    auto tuple = rel.Row(i);
    bool ok = true;
    for (std::size_t p = 0; p < atom.terms.size() && ok; ++p) {
      const Term& t = atom.terms[p];
      if (!t.is_var()) {
        ok = tuple[p] == t.value;
      } else {
        // Repeated-variable consistency against the first occurrence.
        std::size_t c = static_cast<std::size_t>(out.ColumnOf(t.var));
        ok = tuple[static_cast<std::size_t>(first_pos[c])] == tuple[p];
      }
    }
    if (!ok) continue;
    for (std::size_t c = 0; c < row.size(); ++c) {
      row[c] = tuple[static_cast<std::size_t>(first_pos[c])];
    }
    out.rel().AddRow(row);
  }
  out.rel().Dedup();
  return out;
}

}  // namespace sharpcq
