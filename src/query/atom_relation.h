#ifndef SHARPCQ_QUERY_ATOM_RELATION_H_
#define SHARPCQ_QUERY_ATOM_RELATION_H_

#include "algebra/rel.h"
#include "data/database.h"
#include "data/var_relation.h"
#include "query/atom.h"

namespace sharpcq {

// The substitutions over Vars(atom) that satisfy `atom` on `db`: rows of the
// atom's relation filtered by constant positions and repeated-variable
// equality, projected onto the variable positions. Deduplicated.
//
// This is the bridge from the positional world (Database) to the
// variable-bound world used by every counting engine. AtomToRel produces a
// kernel handle (algebra/rel.h) — the form all ported strategies consume;
// AtomToVarRelation produces the legacy by-value representation and is kept
// for the reference algebra and the differential tests.
Rel AtomToRel(const Atom& atom, const Database& db);
VarRelation AtomToVarRelation(const Atom& atom, const Database& db);

}  // namespace sharpcq

#endif  // SHARPCQ_QUERY_ATOM_RELATION_H_
