#ifndef SHARPCQ_QUERY_ATOM_RELATION_H_
#define SHARPCQ_QUERY_ATOM_RELATION_H_

#include "data/database.h"
#include "data/var_relation.h"
#include "query/atom.h"

namespace sharpcq {

// The substitutions over Vars(atom) that satisfy `atom` on `db`: rows of the
// atom's relation filtered by constant positions and repeated-variable
// equality, projected onto the variable positions. Deduplicated.
//
// This is the bridge from the positional world (Database) to the
// variable-bound world (VarRelation) used by every counting engine.
VarRelation AtomToVarRelation(const Atom& atom, const Database& db);

}  // namespace sharpcq

#endif  // SHARPCQ_QUERY_ATOM_RELATION_H_
