#include "query/canonical.h"

#include <algorithm>
#include <map>

namespace sharpcq {

namespace {

// Name-independent signature of a variable: its free/existential role plus
// the sorted multiset of (relation, arity, position) occurrences. Variables
// that play interchangeable roles get equal signatures; everything else is
// separated, which is what makes the later atom sort stable under renaming.
std::unordered_map<VarId, std::string> VarSignatures(
    const ConjunctiveQuery& q) {
  std::unordered_map<VarId, std::vector<std::string>> occurrences;
  for (const Atom& atom : q.atoms()) {
    for (std::size_t pos = 0; pos < atom.terms.size(); ++pos) {
      const Term& t = atom.terms[pos];
      if (!t.is_var()) continue;
      occurrences[t.var].push_back(atom.relation + "/" +
                                   std::to_string(atom.terms.size()) + "@" +
                                   std::to_string(pos));
    }
  }
  std::unordered_map<VarId, std::string> sig;
  for (VarId v : q.AllVars()) {
    std::vector<std::string>& occ = occurrences[v];
    std::sort(occ.begin(), occ.end());
    std::string s = q.free_vars().Contains(v) ? "f;" : "e;";
    for (const std::string& o : occ) s += o + ";";
    sig[v] = std::move(s);
  }
  for (VarId v : q.free_vars()) {
    if (sig.count(v) == 0) sig[v] = "f;";  // head-only free variable
  }
  return sig;
}

// Name-independent rendering of an atom: constants verbatim, variables by
// local first-occurrence index plus their global signature.
std::string AtomSignature(const Atom& atom,
                          const std::unordered_map<VarId, std::string>& sig) {
  std::string out = atom.relation + "(";
  std::vector<VarId> locals;
  for (std::size_t pos = 0; pos < atom.terms.size(); ++pos) {
    if (pos > 0) out += ",";
    const Term& t = atom.terms[pos];
    if (!t.is_var()) {
      out += "c" + std::to_string(static_cast<long long>(t.value));
      continue;
    }
    auto it = std::find(locals.begin(), locals.end(), t.var);
    std::size_t local = static_cast<std::size_t>(it - locals.begin());
    if (it == locals.end()) locals.push_back(t.var);
    out += "v" + std::to_string(local) + "#" + sig.at(t.var);
  }
  out += ")";
  return out;
}

std::string RenderAtom(const Atom& atom,
                       const std::unordered_map<VarId, VarId>& rename) {
  std::string out = atom.relation + "(";
  for (std::size_t pos = 0; pos < atom.terms.size(); ++pos) {
    if (pos > 0) out += ",";
    const Term& t = atom.terms[pos];
    if (t.is_var()) {
      out += "v" + std::to_string(rename.at(t.var));
    } else {
      out += "c" + std::to_string(static_cast<long long>(t.value));
    }
  }
  out += ")";
  return out;
}

}  // namespace

CanonicalForm CanonicalizeQuery(const ConjunctiveQuery& q) {
  std::unordered_map<VarId, std::string> sig = VarSignatures(q);

  // Sort atom indices by their name-independent signature (stable: tied,
  // 1-WL-indistinguishable atoms keep input order).
  std::vector<std::size_t> atom_order(q.atoms().size());
  for (std::size_t i = 0; i < atom_order.size(); ++i) atom_order[i] = i;
  std::vector<std::string> atom_sigs(q.atoms().size());
  for (std::size_t i = 0; i < q.atoms().size(); ++i) {
    atom_sigs[i] = AtomSignature(q.atoms()[i], sig);
  }
  std::stable_sort(atom_order.begin(), atom_order.end(),
                   [&atom_sigs](std::size_t a, std::size_t b) {
                     return atom_sigs[a] < atom_sigs[b];
                   });

  // Assign canonical ids by first occurrence over the sorted atoms, then
  // head-only free variables (ordered by signature for determinism; such
  // variables are mutually symmetric, so ties are harmless).
  CanonicalForm form;
  auto assign = [&form](VarId original) {
    if (form.to_canonical.count(original) > 0) return;
    VarId id = static_cast<VarId>(form.to_original.size());
    form.to_canonical.emplace(original, id);
    form.to_original.push_back(original);
  };
  for (std::size_t i : atom_order) {
    for (const Term& t : q.atoms()[i].terms) {
      if (t.is_var()) assign(t.var);
    }
  }
  std::vector<VarId> head_only;
  for (VarId v : q.free_vars()) {
    if (form.to_canonical.count(v) == 0) head_only.push_back(v);
  }
  std::stable_sort(head_only.begin(), head_only.end(),
                   [&sig](VarId a, VarId b) { return sig[a] < sig[b]; });
  for (VarId v : head_only) assign(v);

  // Final atom order: lexicographic on the renamed rendering, which depends
  // only on canonical content.
  std::vector<std::pair<std::string, std::size_t>> rendered;
  rendered.reserve(atom_order.size());
  for (std::size_t i : atom_order) {
    rendered.emplace_back(RenderAtom(q.atoms()[i], form.to_canonical), i);
  }
  std::stable_sort(rendered.begin(), rendered.end());

  // Build the canonical query. Interning v0..vN in ascending order makes
  // canonical VarId i literally equal to i.
  for (std::size_t i = 0; i < form.to_original.size(); ++i) {
    form.query.InternVar("v" + std::to_string(i));
  }
  for (const auto& [text, index] : rendered) {
    const Atom& atom = q.atoms()[index];
    std::vector<Term> terms;
    terms.reserve(atom.terms.size());
    for (const Term& t : atom.terms) {
      terms.push_back(t.is_var() ? Term::Var(form.to_canonical.at(t.var)) : t);
    }
    form.query.AddAtom(atom.relation, std::move(terms));
  }
  IdSet free;
  for (VarId v : q.free_vars()) free.Insert(form.to_canonical.at(v));
  form.query.SetFree(free);

  form.key = "free:" + free.ToString() + "|";
  for (std::size_t i = 0; i < rendered.size(); ++i) {
    if (i > 0) form.key += ",";
    form.key += rendered[i].first;
  }
  return form;
}

std::string CanonicalQueryKey(const ConjunctiveQuery& q) {
  return CanonicalizeQuery(q).key;
}

}  // namespace sharpcq
