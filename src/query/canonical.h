#ifndef SHARPCQ_QUERY_CANONICAL_H_
#define SHARPCQ_QUERY_CANONICAL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "query/conjunctive_query.h"

namespace sharpcq {

// A canonical form of a conjunctive query: variable names replaced by
// v0, v1, ... and atoms brought into a deterministic order, so that queries
// differing only in variable names or atom order map to the same form. The
// textual key identifies the query shape and is what the engine's plan
// cache is keyed on (engine/plan_cache.h).
//
// Canonicalization is a cheap structural refinement (per-variable occurrence
// signatures, one round), not full graph canonization: two isomorphic
// queries with highly symmetric, 1-WL-indistinguishable structure may still
// receive different keys. That only costs a cache miss — equal keys always
// imply isomorphic queries, so a cache hit is always sound.
struct CanonicalForm {
  // The rewritten query. Variable ids are dense: canonical variable i is
  // named "v<i>" and interned with VarId i.
  ConjunctiveQuery query;

  // The cache key: free-variable ids plus the ordered atom renderings.
  std::string key;

  // canonical VarId -> VarId in the original query (indexed by canonical
  // id; covers head-only free variables too).
  std::vector<VarId> to_original;

  // original VarId -> canonical VarId.
  std::unordered_map<VarId, VarId> to_canonical;
};

CanonicalForm CanonicalizeQuery(const ConjunctiveQuery& q);

// Convenience: just the key.
std::string CanonicalQueryKey(const ConjunctiveQuery& q);

}  // namespace sharpcq

#endif  // SHARPCQ_QUERY_CANONICAL_H_
