#include "query/conjunctive_query.h"

#include <algorithm>

#include "util/check.h"

namespace sharpcq {

namespace {
constexpr const char kColorPrefix[] = "#color_";
}  // namespace

ConjunctiveQuery::ConjunctiveQuery() : names_(std::make_shared<NameTable>()) {}

VarId ConjunctiveQuery::InternVar(const std::string& name) {
  auto [it, inserted] =
      names_->index.emplace(name, static_cast<VarId>(names_->names.size()));
  if (inserted) names_->names.push_back(name);
  return it->second;
}

void ConjunctiveQuery::AddAtom(const std::string& relation,
                               std::vector<Term> terms) {
  atoms_.push_back(Atom{relation, std::move(terms)});
}

void ConjunctiveQuery::AddAtomVars(const std::string& relation,
                                   const std::vector<std::string>& var_names) {
  std::vector<Term> terms;
  terms.reserve(var_names.size());
  for (const std::string& n : var_names) terms.push_back(Term::Var(InternVar(n)));
  AddAtom(relation, std::move(terms));
}

void ConjunctiveQuery::SetFreeByName(const std::vector<std::string>& names) {
  IdSet free;
  for (const std::string& n : names) free.Insert(InternVar(n));
  free_ = std::move(free);
}

void ConjunctiveQuery::SetFree(IdSet free) { free_ = std::move(free); }

IdSet ConjunctiveQuery::AllVars() const {
  IdSet vars;
  for (const Atom& a : atoms_) vars = Union(vars, a.Vars());
  return vars;
}

IdSet ConjunctiveQuery::ExistentialVars() const {
  return Difference(AllVars(), free_);
}

std::string ConjunctiveQuery::VarName(VarId v) const {
  SHARPCQ_CHECK(v < names_->names.size());
  return names_->names[v];
}

VarId ConjunctiveQuery::VarByName(const std::string& name) const {
  auto it = names_->index.find(name);
  SHARPCQ_CHECK_MSG(it != names_->index.end(), name.c_str());
  return it->second;
}

Hypergraph ConjunctiveQuery::BuildHypergraph() const {
  Hypergraph h(AllVars(), {});
  for (const Atom& a : atoms_) h.AddEdge(a.Vars());
  h.DedupEdges();
  return h;
}

std::size_t ConjunctiveQuery::Size() const {
  std::size_t s = free_.size();
  for (const Atom& a : atoms_) s += 1 + a.terms.size();
  return s;
}

bool ConjunctiveQuery::IsSimple() const {
  std::vector<std::string> rels;
  for (const Atom& a : atoms_) rels.push_back(a.relation);
  std::sort(rels.begin(), rels.end());
  return std::adjacent_find(rels.begin(), rels.end()) == rels.end();
}

std::string ConjunctiveQuery::DebugString() const {
  std::string out = "Q(";
  bool first = true;
  for (VarId v : free_) {
    if (!first) out += ",";
    first = false;
    out += VarName(v);
  }
  out += ") <- ";
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms_[i].relation + "(";
    for (std::size_t j = 0; j < atoms_[i].terms.size(); ++j) {
      if (j > 0) out += ",";
      const Term& t = atoms_[i].terms[j];
      out += t.is_var() ? VarName(t.var) : std::to_string(t.value);
    }
    out += ")";
  }
  return out;
}

ConjunctiveQuery ConjunctiveQuery::CloneShell() const {
  ConjunctiveQuery q;
  q.names_ = names_;
  q.free_ = free_;
  return q;
}

ConjunctiveQuery ConjunctiveQuery::Colored() const {
  ConjunctiveQuery q = *this;
  for (VarId v : free_) {
    q.AddAtom(ColorRelationName(VarName(v)), {Term::Var(v)});
  }
  return q;
}

ConjunctiveQuery ConjunctiveQuery::FullColored() const {
  ConjunctiveQuery q = *this;
  for (VarId v : AllVars()) {
    q.AddAtom(ColorRelationName(VarName(v)), {Term::Var(v)});
  }
  return q;
}

ConjunctiveQuery ConjunctiveQuery::WithFree(IdSet s) const {
  ConjunctiveQuery q = *this;
  q.free_ = std::move(s);
  return q;
}

ConjunctiveQuery ConjunctiveQuery::WithoutAtom(std::size_t index) const {
  SHARPCQ_CHECK(index < atoms_.size());
  ConjunctiveQuery q = CloneShell();
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (i != index) q.atoms_.push_back(atoms_[i]);
  }
  return q;
}

ConjunctiveQuery ConjunctiveQuery::KeepAtoms(
    const std::vector<std::size_t>& keep) const {
  ConjunctiveQuery q = CloneShell();
  for (std::size_t i : keep) {
    SHARPCQ_CHECK(i < atoms_.size());
    q.atoms_.push_back(atoms_[i]);
  }
  return q;
}

ConjunctiveQuery ConjunctiveQuery::Uncolored() const {
  ConjunctiveQuery q = CloneShell();
  for (const Atom& a : atoms_) {
    if (!IsColorRelation(a.relation)) q.atoms_.push_back(a);
  }
  return q;
}

bool ConjunctiveQuery::IsColorRelation(const std::string& relation) {
  return relation.rfind(kColorPrefix, 0) == 0;
}

std::string ConjunctiveQuery::ColorRelationName(const std::string& var_name) {
  return kColorPrefix + var_name;
}

}  // namespace sharpcq
