#ifndef SHARPCQ_QUERY_CONJUNCTIVE_QUERY_H_
#define SHARPCQ_QUERY_CONJUNCTIVE_QUERY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "query/atom.h"
#include "util/id_set.h"

namespace sharpcq {

// A conjunctive query (Section 2): a conjunction of atoms with a designated
// set of free (output) variables; all other variables are existentially
// quantified.
//
// Variable names are interned into dense VarIds through a *shared* name
// table, so that derived queries (colorings, cores, requantifications
// Q[S-bar]) keep the same VarIds as the query they came from — the
// hypergraph/decomposition machinery can mix their variable sets freely.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery();

  // --- construction -------------------------------------------------------

  // Interns a variable name (idempotent).
  VarId InternVar(const std::string& name);

  // Adds r(terms...); terms given as Term values.
  void AddAtom(const std::string& relation, std::vector<Term> terms);

  // Convenience: adds an atom whose arguments are variable names.
  void AddAtomVars(const std::string& relation,
                   const std::vector<std::string>& var_names);

  // Declares the free (output) variables. Variables are interned if new.
  void SetFreeByName(const std::vector<std::string>& names);
  void SetFree(IdSet free);

  // --- inspection ----------------------------------------------------------

  const std::vector<Atom>& atoms() const { return atoms_; }
  const IdSet& free_vars() const { return free_; }

  // vars(Q): every variable occurring in some atom (free variables that
  // occur in no atom are not included, matching vars(atoms(Q))).
  IdSet AllVars() const;

  // Existential variables: AllVars() minus free.
  IdSet ExistentialVars() const;

  std::string VarName(VarId v) const;
  // Looks up a variable id by name; aborts if unknown (test convenience).
  VarId VarByName(const std::string& name) const;

  // The query hypergraph HQ: one hyperedge per atom (constants ignored).
  Hypergraph BuildHypergraph() const;

  // Number of atoms / a simple size measure ||Q||.
  std::size_t NumAtoms() const { return atoms_.size(); }
  std::size_t Size() const;

  // True if every atom uses a distinct relation symbol.
  bool IsSimple() const;

  std::string DebugString() const;

  // --- derived queries (share this query's name table) --------------------

  // color(Q): adds a fresh unary atom `#color_X(X)` for every free variable
  // X (Section 3.1). Color relations never exist in databases; they matter
  // only for the query-as-structure view used in core computation.
  ConjunctiveQuery Colored() const;

  // fullcolor(Q): a color atom for *every* variable (Section 5.3).
  ConjunctiveQuery FullColored() const;

  // Q[S-bar]: same atoms, free variables replaced by `s` (Section 6).
  ConjunctiveQuery WithFree(IdSet s) const;

  // The subquery obtained by deleting atom `index` (free set unchanged).
  ConjunctiveQuery WithoutAtom(std::size_t index) const;

  // The subquery keeping exactly the atoms in `keep` (by index).
  ConjunctiveQuery KeepAtoms(const std::vector<std::size_t>& keep) const;

  // Removes all color atoms (inverse of Colored / FullColored on atoms).
  ConjunctiveQuery Uncolored() const;

  // True if `relation` is a color relation symbol.
  static bool IsColorRelation(const std::string& relation);

  // Color relation symbol for a variable name.
  static std::string ColorRelationName(const std::string& var_name);

  // --- name table ----------------------------------------------------------

  // Shared so VarIds stay stable across derived queries.
  struct NameTable {
    std::vector<std::string> names;
    std::unordered_map<std::string, VarId> index;
  };
  const std::shared_ptr<const NameTable> name_table() const { return names_; }

 private:
  ConjunctiveQuery CloneShell() const;  // same name table, no atoms

  std::shared_ptr<NameTable> names_;
  std::vector<Atom> atoms_;
  IdSet free_;
};

}  // namespace sharpcq

#endif  // SHARPCQ_QUERY_CONJUNCTIVE_QUERY_H_
