#include "query/parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "util/string_util.h"

namespace sharpcq {

namespace {

bool SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses "name(arg1,...,argN)" from `text`; returns false on syntax error.
bool ParseAtomText(std::string_view text, std::string* name,
                   std::vector<std::string>* args, std::string* error) {
  text = StripWhitespace(text);
  std::size_t open = text.find('(');
  if (open == std::string_view::npos || text.back() != ')') {
    return SetError(error, "malformed atom: " + std::string(text));
  }
  *name = std::string(StripWhitespace(text.substr(0, open)));
  if (name->empty()) return SetError(error, "atom with empty relation name");
  for (char c : *name) {
    if (!IsIdentChar(c) && c != '#') {
      return SetError(error, "bad relation name: " + *name);
    }
  }
  std::string_view inner = text.substr(open + 1, text.size() - open - 2);
  args->clear();
  // "r()" is a nullary atom; anything else splits positionally, and an
  // empty position ("r(X,,Y)", "r(X,)") is a syntax error rather than a
  // silently narrower atom.
  if (!StripWhitespace(inner).empty()) {
    for (const std::string& piece : SplitAndTrim(inner, ',')) {
      if (piece.empty()) {
        return SetError(error,
                        "empty argument position in atom: " + std::string(text));
      }
      args->push_back(piece);
    }
  }
  return true;
}

// Classifies an argument string into a Term.
bool ParseTerm(const std::string& arg, ConjunctiveQuery* q, ValueDict* dict,
               Term* out, std::string* error) {
  if (arg.empty()) return SetError(error, "empty term");
  char c = arg[0];
  if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
    for (char ch : arg) {
      if (!IsIdentChar(ch)) return SetError(error, "bad variable: " + arg);
    }
    *out = Term::Var(q->InternVar(arg));
    return true;
  }
  if (c == '\'') {
    if (arg.size() < 2 || arg.back() != '\'') {
      return SetError(error, "unterminated string constant: " + arg);
    }
    if (dict == nullptr) {
      return SetError(error, "string constant requires a ValueDict: " + arg);
    }
    *out = Term::Const(
        dict->Intern(std::string_view(arg).substr(1, arg.size() - 2)));
    return true;
  }
  if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
    char* end = nullptr;
    errno = 0;
    long long v = std::strtoll(arg.c_str(), &end, 10);
    if (errno != 0 || end != arg.c_str() + arg.size()) {
      return SetError(error, "bad integer constant: " + arg);
    }
    *out = Term::Const(static_cast<Value>(v));
    return true;
  }
  // Bare lowercase identifiers are symbolic constants.
  if (dict == nullptr) {
    return SetError(error, "symbolic constant requires a ValueDict: " + arg);
  }
  for (char ch : arg) {
    if (!IsIdentChar(ch)) return SetError(error, "bad constant: " + arg);
  }
  *out = Term::Const(dict->Intern(arg));
  return true;
}

// Splits the body on commas that are not inside parentheses.
std::vector<std::string> SplitAtoms(std::string_view body) {
  std::vector<std::string> out;
  int depth = 0;
  std::string current;
  for (char c : body) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!StripWhitespace(current).empty() || !out.empty()) {
    out.push_back(current);
  }
  return out;
}

}  // namespace

std::optional<ConjunctiveQuery> ParseQuery(std::string_view text,
                                           ValueDict* dict,
                                           std::string* error) {
  std::size_t arrow = text.find("<-");
  if (arrow == std::string_view::npos) arrow = text.find(":-");
  if (arrow == std::string_view::npos) {
    SetError(error, "missing '<-' between head and body");
    return std::nullopt;
  }
  std::string_view head = text.substr(0, arrow);
  std::string_view body = text.substr(arrow + 2);

  std::string head_name;
  std::vector<std::string> head_args;
  if (!ParseAtomText(head, &head_name, &head_args, error)) return std::nullopt;

  ConjunctiveQuery q;
  std::vector<std::string> free_names;
  for (const std::string& arg : head_args) {
    if (arg.empty() || !(std::isupper(static_cast<unsigned char>(arg[0])) ||
                         arg[0] == '_')) {
      SetError(error, "head arguments must be variables: " + arg);
      return std::nullopt;
    }
    free_names.push_back(arg);
  }

  std::vector<std::string> atom_texts = SplitAtoms(body);
  if (atom_texts.empty()) {
    SetError(error, "query body is empty");
    return std::nullopt;
  }
  for (const std::string& atom_text : atom_texts) {
    std::string name;
    std::vector<std::string> args;
    if (!ParseAtomText(atom_text, &name, &args, error)) return std::nullopt;
    std::vector<Term> terms;
    terms.reserve(args.size());
    for (const std::string& arg : args) {
      Term t;
      if (!ParseTerm(arg, &q, dict, &t, error)) return std::nullopt;
      terms.push_back(t);
    }
    q.AddAtom(name, std::move(terms));
  }
  q.SetFreeByName(free_names);

  // Free variables must occur in the body (otherwise their domain would be
  // undefined).
  IdSet body_vars = q.AllVars();
  for (VarId v : q.free_vars()) {
    if (!body_vars.Contains(v)) {
      SetError(error, "free variable not used in body: " + q.VarName(v));
      return std::nullopt;
    }
  }
  return q;
}

}  // namespace sharpcq
