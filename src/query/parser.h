#ifndef SHARPCQ_QUERY_PARSER_H_
#define SHARPCQ_QUERY_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "data/value.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// Parses a datalog-style conjunctive query:
//
//   Q(A,B,C) <- mw(A,B,I), wt(B,D), pt(C,D), st(D,F), rr(F,H)
//
// Head variables are the free variables. Tokens starting with an uppercase
// letter or '_' are variables; integer literals are constants; single-quoted
// strings are symbolic constants interned through `dict` (required if any
// appear). ":-" is accepted as a synonym for "<-". A query with no free
// variables is written "Q() <- ...".
//
// Returns nullopt on malformed input and, if `error` is non-null, stores a
// human-readable reason.
std::optional<ConjunctiveQuery> ParseQuery(std::string_view text,
                                           ValueDict* dict = nullptr,
                                           std::string* error = nullptr);

}  // namespace sharpcq

#endif  // SHARPCQ_QUERY_PARSER_H_
