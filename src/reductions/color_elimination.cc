#include "reductions/color_elimination.h"

#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "count/enumeration.h"
#include "solver/core.h"
#include "solver/hom_target.h"
#include "solver/homomorphism.h"
#include "util/check.h"

namespace sharpcq {

namespace {

using Int = __int128;

Int AbsInt(Int x) { return x < 0 ? -x : x; }

Int GcdInt(Int a, Int b) {
  a = AbsInt(a);
  b = AbsInt(b);
  while (b != 0) {
    Int t = a % b;
    a = b;
    b = t;
  }
  return a == 0 ? 1 : a;
}

// Exact rational arithmetic for the (f+1)x(f+1) Vandermonde solve. Small
// dimensions; numerators carry oracle counts.
struct Frac {
  Int n = 0;
  Int d = 1;

  void Normalize() {
    if (d < 0) {
      n = -n;
      d = -d;
    }
    Int g = GcdInt(n, d);
    n /= g;
    d /= g;
  }
  static Frac Of(Int value) { return Frac{value, 1}; }

  friend Frac operator+(Frac a, Frac b) {
    Frac r{a.n * b.d + b.n * a.d, a.d * b.d};
    r.Normalize();
    return r;
  }
  friend Frac operator-(Frac a, Frac b) {
    Frac r{a.n * b.d - b.n * a.d, a.d * b.d};
    r.Normalize();
    return r;
  }
  friend Frac operator*(Frac a, Frac b) {
    Frac r{a.n * b.n, a.d * b.d};
    r.Normalize();
    return r;
  }
  friend Frac operator/(Frac a, Frac b) {
    SHARPCQ_CHECK(b.n != 0);
    Frac r{a.n * b.d, a.d * b.n};
    r.Normalize();
    return r;
  }
  bool IsZero() const { return n == 0; }
};

// Solves M x = rhs by Gaussian elimination over exact rationals.
std::vector<Frac> SolveLinearSystem(std::vector<std::vector<Frac>> m,
                                    std::vector<Frac> rhs) {
  const std::size_t n = rhs.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && m[pivot][col].IsZero()) ++pivot;
    SHARPCQ_CHECK_MSG(pivot < n, "singular interpolation system");
    std::swap(m[pivot], m[col]);
    std::swap(rhs[pivot], rhs[col]);
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col || m[row][col].IsZero()) continue;
      Frac factor = m[row][col] / m[col][col];
      for (std::size_t c = col; c < n; ++c) {
        m[row][c] = m[row][c] - factor * m[col][c];
      }
      rhs[row] = rhs[row] - factor * rhs[col];
    }
  }
  std::vector<Frac> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = rhs[i] / m[i][i];
  return x;
}

// Element codes of the product structure D: dense ids for pairs (X, b).
class PairCoder {
 public:
  Value CodeOf(VarId var, Value b) {
    auto [it, inserted] = codes_.emplace(std::make_pair(var, b),
                                         static_cast<Value>(codes_.size()));
    return it->second;
  }

 private:
  std::map<std::pair<VarId, Value>, Value> codes_;
};

// Per-variable domains r_X^B read from the color relations of `b`.
// Returns false if some variable has no color relation.
bool ReadColorDomains(const ConjunctiveQuery& q, const Database& b,
                      std::map<VarId, std::vector<Value>>* domains) {
  for (VarId v : q.AllVars()) {
    std::string rel = ConjunctiveQuery::ColorRelationName(q.VarName(v));
    if (!b.HasRelation(rel)) return false;
    const Relation& r = b.relation(rel);
    SHARPCQ_CHECK(r.arity() == 1);
    std::vector<Value>& dom = (*domains)[v];
    for (std::size_t i = 0; i < r.size(); ++i) dom.push_back(r.Row(i)[0]);
    std::sort(dom.begin(), dom.end());
    dom.erase(std::unique(dom.begin(), dom.end()), dom.end());
  }
  return true;
}

}  // namespace

std::size_t CountFreeAutomorphismRestrictions(const ConjunctiveQuery& q) {
  QueryTarget target(q);
  IdSet vars = q.AllVars();
  std::set<std::vector<std::int64_t>> restrictions;
  ForEachHomomorphism(q, target, [&](const Homomorphism& h) {
    // Automorphism test: the map must permute the variables (finite
    // bijective endomorphisms of finite structures are automorphisms).
    std::set<std::int64_t> image;
    bool bijective = true;
    for (VarId v : vars) {
      auto it = h.find(v);
      if (it == h.end() || !QueryTarget::IsVarCode(it->second) ||
          !image.insert(it->second).second) {
        bijective = false;
        break;
      }
    }
    if (bijective) {
      // I contains maps free(Q) -> free(Q): discard automorphisms whose
      // restriction leaves the free set.
      std::vector<std::int64_t> restriction;
      bool into_free = true;
      for (VarId v : q.free_vars()) {
        std::int64_t image = h.at(v);
        if (!q.free_vars().Contains(QueryTarget::VarOfCode(image))) {
          into_free = false;
          break;
        }
        restriction.push_back(image);
      }
      if (into_free) restrictions.insert(std::move(restriction));
    }
    return true;
  });
  return restrictions.size();
}

CountInt CountFullColorDirect(const ConjunctiveQuery& q, const Database& b) {
  return CountByBacktracking(q.FullColored(), b);
}

std::optional<CountInt> CountFullColorViaOracle(const ConjunctiveQuery& q,
                                                const Database& b,
                                                const CountOracle& oracle) {
  // Lemma 5.10's hypothesis: color(Q) is a core.
  ConjunctiveQuery colored = q.Colored();
  if (ComputeCoreSubquery(colored).NumAtoms() != colored.NumAtoms()) {
    return std::nullopt;
  }
  // The construction views Q as a structure over variables only.
  for (const Atom& a : q.atoms()) {
    for (const Term& t : a.terms) {
      if (!t.is_var()) return std::nullopt;
    }
  }
  std::map<VarId, std::vector<Value>> domains;
  if (!ReadColorDomains(q, b, &domains)) return std::nullopt;

  std::vector<VarId> free(q.free_vars().begin(), q.free_vars().end());
  const std::size_t f = free.size();

  // D_{j,T} builder: elements (X, b) for X outside T; j copies (X, b, k)
  // for X in T. Relations: all copy-combinations of the product tuples.
  auto build_djt = [&](const IdSet& t, std::size_t j) {
    Database d;
    PairCoder coder;
    auto codes_of = [&](VarId var, Value value) {
      std::vector<Value> out;
      if (t.Contains(var)) {
        for (std::size_t k = 0; k < j; ++k) {
          // Distinct codes per copy: fold k into the value space.
          out.push_back(coder.CodeOf(var, value * static_cast<Value>(j + 1) +
                                              static_cast<Value>(k + 1)));
        }
      } else {
        out.push_back(coder.CodeOf(var, value * static_cast<Value>(j + 1)));
      }
      return out;
    };

    for (const Atom& a : q.atoms()) {
      const Relation& rb = b.relation(a.relation);
      d.DeclareRelation(a.relation, a.arity());
      for (std::size_t row = 0; row < rb.size(); ++row) {
        auto tuple = rb.Row(row);
        // Check (Xi, bi) in D, i.e. bi in dom(Xi); handle repeated
        // variables by the same per-position pairing as the lemma's
        // product structure.
        bool ok = true;
        std::vector<std::vector<Value>> position_codes(a.terms.size());
        for (std::size_t p = 0; p < a.terms.size() && ok; ++p) {
          VarId var = a.terms[p].var;
          const std::vector<Value>& dom = domains[var];
          ok = std::binary_search(dom.begin(), dom.end(), tuple[p]);
          if (ok) position_codes[p] = codes_of(var, tuple[p]);
        }
        if (!ok) continue;
        // Cross product of the per-position copy choices.
        std::vector<Value> out(a.terms.size());
        auto emit = [&](auto&& self, std::size_t p) -> void {
          if (p == a.terms.size()) {
            d.AddTuple(a.relation, std::span<const Value>(out));
            return;
          }
          for (Value code : position_codes[p]) {
            out[p] = code;
            self(self, p + 1);
          }
        };
        emit(emit, 0);
      }
    }
    d.DedupAll();
    return d;
  };

  // For each T: interpolate N_{T,i} (i = 0..f) from |Q(D_{j,T})| at
  // j = 1..f+1, then keep N_T = N_{T,f}.
  std::vector<CountInt> n_t_values;
  std::vector<IdSet> subsets;
  // Enumerate subsets of free (2^f of them).
  SHARPCQ_CHECK_MSG(f <= 20, "too many free variables for the reduction");
  for (std::size_t mask = 0; mask < (std::size_t{1} << f); ++mask) {
    IdSet t;
    for (std::size_t i = 0; i < f; ++i) {
      if (mask & (std::size_t{1} << i)) t.Insert(free[i]);
    }
    subsets.push_back(std::move(t));
  }

  for (const IdSet& t : subsets) {
    std::vector<std::vector<Frac>> m(f + 1, std::vector<Frac>(f + 1));
    std::vector<Frac> rhs(f + 1);
    for (std::size_t j = 1; j <= f + 1; ++j) {
      Database djt = build_djt(t, j);
      CountInt count = oracle(q, djt);
      rhs[j - 1] = Frac::Of(static_cast<Int>(count));
      Int power = 1;
      for (std::size_t i = 0; i <= f; ++i) {
        m[j - 1][i] = Frac::Of(power);
        power *= static_cast<Int>(j);
      }
    }
    std::vector<Frac> solution = SolveLinearSystem(std::move(m),
                                                   std::move(rhs));
    Frac n_t = solution[f];
    SHARPCQ_CHECK_MSG(n_t.d == 1 && n_t.n >= 0,
                      "interpolation produced a non-integer N_T");
    n_t_values.push_back(static_cast<CountInt>(n_t.n));
  }

  // Inclusion-exclusion: |N'| = sum over T of (-1)^{f - |T|} N_T.
  Int n_prime = 0;
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    Int sign = ((f - subsets[i].size()) % 2 == 0) ? 1 : -1;
    n_prime += sign * static_cast<Int>(n_t_values[i]);
  }
  SHARPCQ_CHECK_MSG(n_prime >= 0, "inclusion-exclusion went negative");

  std::size_t aut = CountFreeAutomorphismRestrictions(q);
  SHARPCQ_CHECK(aut > 0);
  SHARPCQ_CHECK_MSG(n_prime % static_cast<Int>(aut) == 0,
                    "automorphism count does not divide |N'|");
  return static_cast<CountInt>(n_prime / static_cast<Int>(aut));
}

}  // namespace sharpcq
