#ifndef SHARPCQ_REDUCTIONS_COLOR_ELIMINATION_H_
#define SHARPCQ_REDUCTIONS_COLOR_ELIMINATION_H_

#include <functional>
#include <optional>

#include "data/database.h"
#include "query/conjunctive_query.h"
#include "util/count_int.h"

namespace sharpcq {

// Executable case-complexity machinery (Section 5.3, Lemma 5.10).
//
// The lemma's counting slice reduction shows that unary "color" relations —
// per-variable domain restrictions — add no counting power when color(Q) is
// a core: the count of fullcolor(Q) on B can be recovered from #CQ oracle
// calls on plain (Q, D') instances. The construction is the engine room of
// the trichotomy's hardness proofs (it lets the lower bounds tell variables
// apart), and it is fully effective: product structures D = vars(Q) x B,
// variable-copy databases D_{j,T} for interpolation, a Vandermonde solve
// per subset T of the free variables, inclusion-exclusion across subsets,
// and division by the automorphism count |I|.

// A #CQ oracle: given (Q, D), returns |pi_free(Q)(D)|. Any counter from
// core/ or count/ qualifies.
using CountOracle =
    std::function<CountInt(const ConjunctiveQuery&, const Database&)>;

// The number of answers of fullcolor(Q) on `b`: assignments theta of the
// free variables, extendable to homomorphisms h with h(X) in the unary
// relation `#color_<X>` of `b` for *every* variable X. The database `b`
// must provide those unary relations (use ColorRelationName) alongside Q's
// relations.
//
// Computed exclusively through `oracle` calls on constructed plain
// instances, per Lemma 5.10. Requires color(Q) to be a core (the lemma's
// hypothesis); returns nullopt otherwise.
//
// This is exponential in |free(Q)| (2^f subsets, f+1 interpolation points
// each) and therefore FPT in the query — exactly the lemma's budget.
std::optional<CountInt> CountFullColorViaOracle(const ConjunctiveQuery& q,
                                                const Database& b,
                                                const CountOracle& oracle);

// Reference implementation (direct evaluation of the colored instance),
// used to validate the reduction in tests and benchmarks.
CountInt CountFullColorDirect(const ConjunctiveQuery& q, const Database& b);

// |I|: the number of distinct restrictions to free(Q) of automorphisms of
// Q's structure (exposed for tests).
std::size_t CountFreeAutomorphismRestrictions(const ConjunctiveQuery& q);

}  // namespace sharpcq

#endif  // SHARPCQ_REDUCTIONS_COLOR_ELIMINATION_H_
