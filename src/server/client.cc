#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace sharpcq {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

bool Client::Connect(const std::string& host, int port, std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad address: " + host;
    Close();
    return false;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect " + host + ":" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    Close();
    return false;
  }
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Response> Client::Call(const Request& request,
                                     std::string* error) {
  if (!Send(request, error)) return std::nullopt;
  return Receive(error);
}

bool Client::Send(const Request& request, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  return SendFrame(fd_, SerializeRequest(request), error);
}

std::optional<Response> Client::Receive(std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return std::nullopt;
  }
  std::string payload;
  FrameStatus status =
      RecvFrame(fd_, kDefaultMaxFrameBytes, &payload, error);
  if (status != FrameStatus::kOk) {
    if (status == FrameStatus::kClosed && error != nullptr) {
      *error = "server closed the connection";
    }
    return std::nullopt;
  }
  return ParseResponse(payload, error);
}

bool Client::SendRaw(std::string_view bytes, std::string* error) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::SendFramed(std::string_view payload, std::string* error) {
  return SendFrame(fd_, payload, error);
}

}  // namespace sharpcq
