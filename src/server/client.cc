#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "util/clock.h"
#include "util/hash.h"

namespace sharpcq {

bool IsRetrySafeCommand(std::string_view command) {
  return command == "count" || command == "status" ||
         command == "inspect" || command == "metrics";
}

namespace {

// Deterministic-per-process jitter: hash the steady clock's ticks with the
// attempt number. Good enough to decorrelate independent clients; no
// global RNG state, no wall clock.
double JitterFactor(int attempt, double jitter) {
  const auto ticks = MonotonicNow().time_since_epoch().count();
  const std::uint64_t h =
      HashCombine(static_cast<std::size_t>(ticks),
                  static_cast<std::size_t>(attempt) * 0x9e3779b97f4a7c15ULL);
  const double unit = static_cast<double>(h % 10000) / 10000.0;  // [0, 1)
  return 1.0 + jitter * (2.0 * unit - 1.0);                      // 1 +/- j
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), host_(std::move(other.host_)), port_(other.port_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    host_ = std::move(other.host_);
    port_ = other.port_;
  }
  return *this;
}

bool Client::Connect(const std::string& host, int port, std::string* error) {
  Close();
  host_ = host;
  port_ = port;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad address: " + host;
    Close();
    return false;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect " + host + ":" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    Close();
    return false;
  }
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Response> Client::Call(const Request& request,
                                     std::string* error) {
  if (!Send(request, error)) return std::nullopt;
  return Receive(error);
}

std::optional<Response> Client::CallWithRetry(const Request& request,
                                              const RetryPolicy& policy,
                                              std::string* error,
                                              int* attempts_out) {
  const bool retry_safe = IsRetrySafeCommand(request.command);
  const int max_attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  double delay_ms =
      static_cast<double>(policy.initial_backoff.count());
  std::string attempt_error;
  for (int attempt = 1;; ++attempt) {
    if (attempts_out != nullptr) *attempts_out = attempt;
    bool retryable = false;
    if (!connected() && !Connect(host_, port_, &attempt_error)) {
      // Nothing was delivered, so even a non-retry-safe request may try
      // again (the connect-refused window of a restarting daemon).
      retryable = true;
    } else {
      std::optional<Response> response = Call(request, &attempt_error);
      if (response.has_value()) {
        if (response->ok || response->code != wire::kOverloaded) {
          return response;
        }
        attempt_error = "server overloaded: " + response->message;
        retryable = retry_safe;
      } else {
        // Transport failure after the request may have been sent: the
        // outcome is ambiguous, so only read-only requests retry.
        Close();
        retryable = retry_safe;
      }
    }
    if (!retryable || attempt >= max_attempts) {
      if (error != nullptr) *error = attempt_error;
      return std::nullopt;
    }
    if (delay_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          delay_ms * JitterFactor(attempt, policy.jitter)));
    }
    delay_ms *= policy.multiplier;
  }
}

bool Client::Send(const Request& request, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  return SendFrame(fd_, SerializeRequest(request), error);
}

std::optional<Response> Client::Receive(std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return std::nullopt;
  }
  std::string payload;
  FrameStatus status =
      RecvFrame(fd_, kDefaultMaxFrameBytes, &payload, error);
  if (status != FrameStatus::kOk) {
    if (status == FrameStatus::kClosed && error != nullptr) {
      *error = "server closed the connection";
    }
    return std::nullopt;
  }
  return ParseResponse(payload, error);
}

bool Client::SendRaw(std::string_view bytes, std::string* error) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::SendFramed(std::string_view payload, std::string* error) {
  return SendFrame(fd_, payload, error);
}

}  // namespace sharpcq
