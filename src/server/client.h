#ifndef SHARPCQ_SERVER_CLIENT_H_
#define SHARPCQ_SERVER_CLIENT_H_

#include <chrono>
#include <optional>
#include <string>
#include <string_view>

#include "server/protocol.h"

namespace sharpcq {

// Bounded-retry policy for CallWithRetry: exponential backoff with
// deterministic jitter (derived from the steady clock, no global RNG
// state). Attempt n sleeps ~initial_backoff * multiplier^(n-1), spread by
// +/- jitter to decorrelate clients hammering a recovering daemon.
struct RetryPolicy {
  int max_attempts = 3;  // total tries, including the first
  std::chrono::milliseconds initial_backoff{50};
  double multiplier = 2.0;
  double jitter = 0.2;  // fraction of the delay, +/-
};

// True for commands a client may safely re-send after a transport failure:
// they are read-only, so executing twice (or once after an ambiguous
// failure) changes nothing. `ingest` is deliberately absent — a mid-call
// disconnect leaves "did generation N+1 commit?" unknowable, and blind
// re-send would double-append.
bool IsRetrySafeCommand(std::string_view command);

// Blocking client for the sharpcqd protocol: one TCP connection, strictly
// request-response. Used by the `sharpcqd send` subcommand, the server
// tests, and the throughput benchmark. Not thread-safe; use one Client per
// thread.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  bool Connect(const std::string& host, int port, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // Send + Receive. nullopt with *error set on transport failure; protocol
  // errors come back as a Response with ok == false.
  std::optional<Response> Call(const Request& request, std::string* error);

  // Call with bounded retries: reconnects (to the host/port of the last
  // Connect) and retries on connect failure and on OVERLOADED responses.
  // Retry after the request was actually sent — a mid-call transport
  // failure or an OVERLOADED rejection — happens only for retry-safe
  // (read-only) commands; a non-retry-safe command (ingest) is retried
  // only while connecting, i.e. while provably never delivered.
  // *attempts_out (optional) reports how many tries ran.
  std::optional<Response> CallWithRetry(const Request& request,
                                        const RetryPolicy& policy,
                                        std::string* error,
                                        int* attempts_out = nullptr);

  // Split halves, for tests that disconnect between them.
  bool Send(const Request& request, std::string* error);
  std::optional<Response> Receive(std::string* error);

  // Writes raw bytes (an arbitrary frame payload, or deliberately broken
  // framing) — for protocol robustness tests.
  bool SendRaw(std::string_view bytes, std::string* error);
  bool SendFramed(std::string_view payload, std::string* error);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  // Reconnect target for CallWithRetry (stamped by Connect).
  std::string host_;
  int port_ = 0;
};

}  // namespace sharpcq

#endif  // SHARPCQ_SERVER_CLIENT_H_
