#ifndef SHARPCQ_SERVER_CLIENT_H_
#define SHARPCQ_SERVER_CLIENT_H_

#include <optional>
#include <string>
#include <string_view>

#include "server/protocol.h"

namespace sharpcq {

// Blocking client for the sharpcqd protocol: one TCP connection, strictly
// request-response. Used by the `sharpcqd send` subcommand, the server
// tests, and the throughput benchmark. Not thread-safe; use one Client per
// thread.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  bool Connect(const std::string& host, int port, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // Send + Receive. nullopt with *error set on transport failure; protocol
  // errors come back as a Response with ok == false.
  std::optional<Response> Call(const Request& request, std::string* error);

  // Split halves, for tests that disconnect between them.
  bool Send(const Request& request, std::string* error);
  std::optional<Response> Receive(std::string* error);

  // Writes raw bytes (an arbitrary frame payload, or deliberately broken
  // framing) — for protocol robustness tests.
  bool SendRaw(std::string_view bytes, std::string* error);
  bool SendFramed(std::string_view payload, std::string* error);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace sharpcq

#endif  // SHARPCQ_SERVER_CLIENT_H_
