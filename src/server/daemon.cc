#include "server/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "data/csv.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "util/count_int.h"
#include "util/failpoint.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace sharpcq {

namespace {

// Database names become directory names under the catalog root, so they
// are restricted to a filesystem-safe alphabet (and cannot start with '.',
// which also rules out traversal).
bool ValidDbName(const std::string& name) {
  if (name.empty() || name[0] == '.') return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

std::string FormatMs(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

// Maps a storage-layer Status onto the wire's error codes. Most codes
// mirror StatusCodeName 1:1 (the taxonomy was designed for that); the two
// exceptions keep historical client expectations stable.
Response CatalogError(const Status& status) {
  const char* code = wire::kInternal;
  switch (status.code()) {
    case StatusCode::kNotFound:
      code = wire::kNotFound;
      break;
    case StatusCode::kInvalidArgument:
      code = wire::kBadRequest;
      break;
    case StatusCode::kCorruptData:
      code = wire::kCorruptData;
      break;
    case StatusCode::kIoError:
      code = wire::kIoError;
      break;
    default:
      break;
  }
  return ErrorResponse(code, status.message());
}

// Installs the daemon-level memory budgets into the engine options every
// per-database engine is built from: the per-query cap rides as a plain
// limit, the daemon-wide cap as one shared MemoryBudget (all engines
// charge the same pool).
DaemonOptions ApplyMemoryBudgets(DaemonOptions options) {
  options.catalog.engine.max_query_bytes = options.max_query_bytes;
  if (options.max_total_bytes > 0) {
    options.catalog.engine.total_budget =
        std::make_shared<MemoryBudget>(options.max_total_bytes);
  }
  return options;
}

// RAII registration with the disconnect watcher.
class DisconnectWatch {
 public:
  DisconnectWatch(Daemon* daemon, void (Daemon::*watch)(int, CancelToken*),
                  void (Daemon::*unwatch)(int), int fd, CancelToken* token)
      : daemon_(daemon), unwatch_(unwatch), fd_(fd) {
    (daemon_->*watch)(fd_, token);
  }
  ~DisconnectWatch() { (daemon_->*unwatch_)(fd_); }

 private:
  Daemon* daemon_;
  void (Daemon::*unwatch_)(int);
  int fd_;
};

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(ApplyMemoryBudgets(std::move(options))),
      catalog_(options_.catalog_root, options_.catalog) {}

Daemon::~Daemon() { Stop(); }

bool Daemon::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad listen address: " + options_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    if (error != nullptr) *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = static_cast<int>(ntohs(bound.sin_port));

  start_time_ = MonotonicNow();
  started_at_ = WallTimestamp();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  watch_thread_ = std::thread([this] { WatchLoop(); });
  return true;
}

void Daemon::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
}

void Daemon::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // A second Stop still waits for the first to have joined; joining
    // happens below only on the first call, so just signal waiters.
    std::lock_guard<std::mutex> lock(mu_);
    stop_cv_.notify_all();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
    stop_cv_.notify_all();
    // Kick every open connection out of its blocking recv. The fds stay
    // owned (and closed) by their connection threads.
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  {
    // Cancel inflight executions directly; faster than waiting for the
    // watcher to notice the shut-down sockets.
    std::lock_guard<std::mutex> lock(watch_mu_);
    for (auto& [fd, token] : watched_) token->Cancel();
  }
  admission_cv_.notify_all();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (watch_thread_.joinable()) watch_thread_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connection_threads_);
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
}

DaemonStats Daemon::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Daemon::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop (or fatal; either way, stop)
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    if (SHARPCQ_FAILPOINT("daemon.accept") != FailpointAction::kNone) {
      ::close(fd);  // injected accept failure: drop, keep listening
      continue;
    }
    // Request/response round trips are latency-bound; without this, Nagle
    // can couple small frames to the peer's delayed ACK.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.connections_accepted;
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Daemon::WatchLoop() {
  while (!stopping_.load()) {
    {
      std::lock_guard<std::mutex> lock(watch_mu_);
      for (auto& [fd, token] : watched_) {
        // The protocol is request-response, so a well-behaved client sends
        // nothing while its request executes; readable data here is either
        // EOF (client gone — cancel) or junk (ignored, the connection loop
        // deals with it after the response).
        char byte;
        ssize_t n = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
        if (n == 0) {
          token->Cancel();
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          token->Cancel();
        }
      }
    }
    std::this_thread::sleep_for(options_.watch_interval);
  }
}

void Daemon::ServeConnection(int fd) {
  for (;;) {
    std::string payload;
    std::string error;
    if (SHARPCQ_FAILPOINT("daemon.recv") != FailpointAction::kNone) break;
    FrameStatus status =
        RecvFrame(fd, options_.max_frame_bytes, &payload, &error);
    if (status == FrameStatus::kClosed || status == FrameStatus::kError) break;
    if (status == FrameStatus::kTooLarge) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.frames_too_large;
        ++stats_.responses_error;
      }
      // The oversized payload was never read, so the stream cannot be
      // resynchronized: answer and drop the connection.
      SendFrame(fd, SerializeResponse(
                        ErrorResponse(wire::kFrameTooLarge, error)),
                &error);
      break;
    }

    Response response;
    std::optional<Request> request = ParseRequest(payload, &error);
    bool is_shutdown = false;
    if (!request.has_value()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.requests;
      ++stats_.malformed_requests;
      response = ErrorResponse(wire::kBadRequest, error);
    } else {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.requests;
      }
      is_shutdown = request->command == "shutdown";
      response = Dispatch(*request, fd);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (response.ok) {
        ++stats_.responses_ok;
      } else {
        ++stats_.responses_error;
      }
    }
    if (SHARPCQ_FAILPOINT("daemon.send") != FailpointAction::kNone) break;
    if (!SendFrame(fd, SerializeResponse(response), &error)) break;
    if (is_shutdown) {
      std::lock_guard<std::mutex> lock(mu_);
      stop_requested_ = true;
      stop_cv_.notify_all();
      // Keep serving until the client hangs up or Stop() shuts the socket;
      // Stop() itself must come from the Wait() caller (joining this
      // thread from inside itself would deadlock).
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    connection_fds_.erase(
        std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
        connection_fds_.end());
  }
  ::close(fd);
}

Response Daemon::Dispatch(const Request& request, int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (request.command == "count") ++stats_.cmd_count;
    else if (request.command == "ingest") ++stats_.cmd_ingest;
    else if (request.command == "status") ++stats_.cmd_status;
    else if (request.command == "inspect") ++stats_.cmd_inspect;
    else if (request.command == "metrics") ++stats_.cmd_metrics;
    else if (request.command == "shutdown") ++stats_.cmd_shutdown;
  }
  // status/inspect/metrics/shutdown bypass admission: health checks and
  // scrapes must answer even when every count slot is busy.
  if (request.command == "status") return HandleStatus();
  if (request.command == "inspect") return HandleInspect(request);
  if (request.command == "metrics") return HandleMetrics();
  if (request.command == "shutdown") return OkResponse();
  if (request.command == "count" || request.command == "ingest") {
    if (!EnterAdmission()) {
      if (stopping_.load()) {
        return ErrorResponse(wire::kShuttingDown, "daemon is shutting down");
      }
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected_overload;
      return ErrorResponse(
          wire::kOverloaded,
          "admission queue full (" + std::to_string(options_.max_inflight) +
              " inflight, " + std::to_string(options_.max_queued) +
              " queued)");
    }
    const MonotonicClock::time_point start = MonotonicNow();
    Response response = request.command == "count" ? HandleCount(request, fd)
                                                   : HandleIngest(request);
    LeaveAdmission();
    (request.command == "count" ? count_latency_ : ingest_latency_)
        .Record(ElapsedMs(start));
    return response;
  }
  return ErrorResponse(wire::kUnknownCommand,
                       "unknown command: " + request.command);
}

bool Daemon::EnterAdmission() {
  std::unique_lock<std::mutex> lock(admission_mu_);
  if (inflight_ < options_.max_inflight) {
    ++inflight_;
    return true;
  }
  if (queued_ >= options_.max_queued) return false;
  ++queued_;
  admission_cv_.wait(lock, [this] {
    return stopping_.load() || inflight_ < options_.max_inflight;
  });
  --queued_;
  if (stopping_.load()) return false;
  ++inflight_;
  return true;
}

void Daemon::LeaveAdmission() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --inflight_;
  }
  admission_cv_.notify_one();
}

void Daemon::WatchDisconnect(int fd, CancelToken* token) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  watched_[fd] = token;
}

void Daemon::UnwatchDisconnect(int fd) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  watched_.erase(fd);
}

Response Daemon::HandleCount(const Request& request, int fd) {
  const std::string* db_name = request.Arg("db");
  if (db_name == nullptr || !ValidDbName(*db_name)) {
    return ErrorResponse(wire::kBadRequest, "count requires db=<name>");
  }
  if (request.body.empty()) {
    return ErrorResponse(wire::kBadRequest,
                         "count requires the query text as the request body");
  }
  std::string error;
  Status open_status;
  std::shared_ptr<const Catalog::Entry> entry =
      catalog_.Open(*db_name, &open_status);
  if (entry == nullptr) return CatalogError(open_status);

  const std::string* strategy = request.Arg("strategy");
  std::optional<PlannerOptions> planner = PlannerOptionsForStrategy(
      strategy != nullptr ? *strategy : "auto", entry->engine->options().planner);
  if (!planner.has_value()) {
    return ErrorResponse(wire::kBadRequest, "unknown strategy: " + *strategy);
  }

  // Query constants may intern names the snapshot dictionary lacks, so the
  // parse works on a private copy; the underlying data never changes.
  ValueDict parse_dict = *entry->dict;
  std::optional<ConjunctiveQuery> query =
      ParseQuery(request.body, &parse_dict, &error);
  if (!query.has_value()) return ErrorResponse(wire::kParseError, error);

  CancelToken token;
  std::chrono::milliseconds deadline = options_.default_deadline;
  if (const std::string* arg = request.Arg("deadline_ms"); arg != nullptr) {
    char* end = nullptr;
    long long ms = std::strtoll(arg->c_str(), &end, 10);
    if (end != arg->c_str() + arg->size() || ms < 0) {
      return ErrorResponse(wire::kBadRequest, "bad deadline_ms: " + *arg);
    }
    deadline = std::chrono::milliseconds(ms);
  }
  if (deadline.count() > 0) token.SetDeadlineAfter(deadline);

  // trace=1: record the span tree and return it as the response body.
  std::optional<Trace> trace;
  if (const std::string* arg = request.Arg("trace");
      arg != nullptr && *arg == "1") {
    trace.emplace();
  }

  CountResult result;
  {
    DisconnectWatch watch(this, &Daemon::WatchDisconnect,
                          &Daemon::UnwatchDisconnect, fd, &token);
    result = entry->engine->Count(*query, *entry->db, *planner, &token,
                                  trace.has_value() ? &*trace : nullptr);
  }

  Response response;
  if (result.status == CountStatus::kDeadlineExceeded) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.deadline_exceeded;
    }
    response = ErrorResponse(wire::kDeadlineExceeded,
                             "deadline of " + std::to_string(deadline.count()) +
                                 "ms expired during execution");
  } else if (result.status == CountStatus::kCancelled) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.cancelled_disconnect;
    }
    response = ErrorResponse(wire::kCancelled, "request cancelled");
  } else if (result.status == CountStatus::kResourceExhausted) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.resource_exhausted;
    }
    response = ErrorResponse(
        wire::kResourceExhausted,
        "memory budget exhausted (refused an allocation of " +
            std::to_string(result.mem_refused_bytes) + " bytes)");
  } else {
    response = OkResponse();
    response.Add("count", CountToString(result.count));
  }

  // Provenance travels on every outcome — an expired request still tells
  // the operator which strategy and cache shard it was on.
  response.Add("db", entry->name);
  response.Add("generation", std::to_string(entry->generation));
  response.Add("method", result.method);
  response.Add("width", std::to_string(result.width));
  response.Add("cache", result.cache_hit ? "hit" : "miss");
  response.Add("cache_shard", std::to_string(result.cache_shard));
  response.Add("cache_shard_hits", std::to_string(result.cache_shard_hits));
  response.Add("cache_shard_misses",
               std::to_string(result.cache_shard_misses));
  response.Add("filter_hits", std::to_string(result.filter_hits));
  response.Add("filter_passes", std::to_string(result.filter_passes));
  response.Add("planner_ms", FormatMs(result.planner_ms));
  response.Add("execute_ms", FormatMs(result.execute_ms));
  response.Add("cost_model", result.cost_model_steered ? "steered" : "off-path");
  response.Add("cost_reorders", std::to_string(result.cost_reorders));
  response.Add("morsels", std::to_string(result.morsels));
  response.Add("worklist_iterations",
               std::to_string(result.worklist_iterations));
  if (trace.has_value()) {
    response.body = SerializeTraceNode(trace->root());
  }
  return response;
}

Response Daemon::HandleIngest(const Request& request) {
  const std::string* db_name = request.Arg("db");
  const std::string* relation = request.Arg("relation");
  if (db_name == nullptr || !ValidDbName(*db_name)) {
    return ErrorResponse(wire::kBadRequest, "ingest requires db=<name>");
  }
  if (relation == nullptr || relation->empty()) {
    return ErrorResponse(wire::kBadRequest, "ingest requires relation=<name>");
  }

  // Read-copy-swap under the ingest lock: counts keep serving the pinned
  // old generation throughout (ingest-while-serving).
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  Status status;
  Database db;
  ValueDict dict;
  if (catalog_.CurrentGeneration(*db_name, &status).has_value()) {
    std::shared_ptr<const Catalog::Entry> entry =
        catalog_.Open(*db_name, &status);
    if (entry == nullptr) return CatalogError(status);
    db = *entry->db;
    dict = *entry->dict;
  }

  std::istringstream body(request.body);
  CsvResult loaded = LoadRelationCsv(body, *relation, &db, &dict);
  if (!loaded.ok()) {
    return ErrorResponse(wire::kParseError,
                         "relation " + *relation + ": " + loaded.message);
  }
  std::optional<std::uint64_t> generation =
      catalog_.Ingest(*db_name, db, &dict, &status);
  if (!generation.has_value()) {
    return CatalogError(status);
  }
  Response response = OkResponse();
  response.Add("db", *db_name);
  response.Add("generation", std::to_string(*generation));
  response.Add("relation", *relation);
  response.Add("tuples", std::to_string(loaded.tuples));
  return response;
}

Response Daemon::HandleStatus() {
  Response response = OkResponse();
  DaemonStats snapshot = stats();
  std::size_t inflight;
  std::size_t queued;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    inflight = inflight_;
    queued = queued_;
  }
  response.Add("connections_accepted",
               std::to_string(snapshot.connections_accepted));
  response.Add("requests", std::to_string(snapshot.requests));
  response.Add("responses_ok", std::to_string(snapshot.responses_ok));
  response.Add("responses_error", std::to_string(snapshot.responses_error));
  response.Add("rejected_overload",
               std::to_string(snapshot.rejected_overload));
  response.Add("deadline_exceeded",
               std::to_string(snapshot.deadline_exceeded));
  response.Add("cancelled_disconnect",
               std::to_string(snapshot.cancelled_disconnect));
  response.Add("resource_exhausted",
               std::to_string(snapshot.resource_exhausted));
  response.Add("frames_too_large", std::to_string(snapshot.frames_too_large));
  response.Add("malformed_requests",
               std::to_string(snapshot.malformed_requests));
  response.Add("cmd_count", std::to_string(snapshot.cmd_count));
  response.Add("cmd_ingest", std::to_string(snapshot.cmd_ingest));
  response.Add("cmd_status", std::to_string(snapshot.cmd_status));
  response.Add("cmd_inspect", std::to_string(snapshot.cmd_inspect));
  response.Add("cmd_metrics", std::to_string(snapshot.cmd_metrics));
  response.Add("cmd_shutdown", std::to_string(snapshot.cmd_shutdown));
  response.Add("inflight", std::to_string(inflight));
  response.Add("queued", std::to_string(queued));
  response.Add("uptime_s",
               FormatMs(ElapsedMs(start_time_) / 1000.0));
  response.Add("started_at", started_at_);
#ifdef NDEBUG
  response.Add("build_type", "optimized");
#else
  response.Add("build_type", "debug");
#endif
  response.Add("cost_model",
               options_.catalog.engine.enable_cost_model ? "on" : "off");
  response.Add("max_query_bytes", std::to_string(options_.max_query_bytes));
  response.Add("max_total_bytes", std::to_string(options_.max_total_bytes));
  if (const MemoryBudget* budget =
          options_.catalog.engine.total_budget.get();
      budget != nullptr) {
    response.Add("mem_inflight_bytes", std::to_string(budget->used()));
  }
  std::vector<std::string> names = catalog_.ListDatabases();
  response.Add("databases", JoinStrings(names, ","));
  return response;
}

Response Daemon::HandleMetrics() {
  Response response = OkResponse();
  // Process-wide families first (engine counts, plan cache, probe filters,
  // index builds), then this daemon instance's own sharpcqd_* section.
  std::string body = MetricsRegistry::Instance().RenderPrometheus();
  DaemonStats s = stats();
  std::size_t inflight;
  std::size_t queued;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    inflight = inflight_;
    queued = queued_;
  }
  body += "# TYPE sharpcqd_uptime_seconds gauge\n";
  AppendPrometheusLine(&body, "sharpcqd_uptime_seconds", "",
                       ElapsedMs(start_time_) / 1000.0);
  body += "# TYPE sharpcqd_connections_total counter\n";
  AppendPrometheusLine(&body, "sharpcqd_connections_total", "",
                       s.connections_accepted);
  body += "# TYPE sharpcqd_requests_total counter\n";
  AppendPrometheusLine(&body, "sharpcqd_requests_total",
                       "{command=\"count\"}", s.cmd_count);
  AppendPrometheusLine(&body, "sharpcqd_requests_total",
                       "{command=\"ingest\"}", s.cmd_ingest);
  AppendPrometheusLine(&body, "sharpcqd_requests_total",
                       "{command=\"inspect\"}", s.cmd_inspect);
  AppendPrometheusLine(&body, "sharpcqd_requests_total",
                       "{command=\"metrics\"}", s.cmd_metrics);
  AppendPrometheusLine(&body, "sharpcqd_requests_total",
                       "{command=\"status\"}", s.cmd_status);
  AppendPrometheusLine(&body, "sharpcqd_requests_total",
                       "{command=\"shutdown\"}", s.cmd_shutdown);
  body += "# TYPE sharpcqd_responses_total counter\n";
  AppendPrometheusLine(&body, "sharpcqd_responses_total",
                       "{result=\"ok\"}", s.responses_ok);
  AppendPrometheusLine(&body, "sharpcqd_responses_total",
                       "{result=\"error\"}", s.responses_error);
  body += "# TYPE sharpcqd_rejected_overload_total counter\n";
  AppendPrometheusLine(&body, "sharpcqd_rejected_overload_total", "",
                       s.rejected_overload);
  body += "# TYPE sharpcqd_deadline_exceeded_total counter\n";
  AppendPrometheusLine(&body, "sharpcqd_deadline_exceeded_total", "",
                       s.deadline_exceeded);
  body += "# TYPE sharpcqd_cancelled_disconnect_total counter\n";
  AppendPrometheusLine(&body, "sharpcqd_cancelled_disconnect_total", "",
                       s.cancelled_disconnect);
  body += "# TYPE sharpcqd_resource_exhausted_total counter\n";
  AppendPrometheusLine(&body, "sharpcqd_resource_exhausted_total", "",
                       s.resource_exhausted);
  if (const MemoryBudget* budget =
          options_.catalog.engine.total_budget.get();
      budget != nullptr) {
    body += "# TYPE sharpcqd_memory_budget_bytes gauge\n";
    AppendPrometheusLine(&body, "sharpcqd_memory_budget_bytes", "",
                         budget->limit());
    body += "# TYPE sharpcqd_memory_inflight_bytes gauge\n";
    AppendPrometheusLine(&body, "sharpcqd_memory_inflight_bytes", "",
                         budget->used());
  }
  body += "# TYPE sharpcqd_frames_too_large_total counter\n";
  AppendPrometheusLine(&body, "sharpcqd_frames_too_large_total", "",
                       s.frames_too_large);
  body += "# TYPE sharpcqd_malformed_requests_total counter\n";
  AppendPrometheusLine(&body, "sharpcqd_malformed_requests_total", "",
                       s.malformed_requests);
  body += "# TYPE sharpcqd_inflight_requests gauge\n";
  AppendPrometheusLine(&body, "sharpcqd_inflight_requests", "",
                       static_cast<std::uint64_t>(inflight));
  body += "# TYPE sharpcqd_queued_requests gauge\n";
  AppendPrometheusLine(&body, "sharpcqd_queued_requests", "",
                       static_cast<std::uint64_t>(queued));
  body += "# TYPE sharpcqd_request_latency_ms histogram\n";
  count_latency_.snapshot().AppendPrometheus(
      &body, "sharpcqd_request_latency_ms", "{command=\"count\"}");
  ingest_latency_.snapshot().AppendPrometheus(
      &body, "sharpcqd_request_latency_ms", "{command=\"ingest\"}");
  response.body = std::move(body);
  return response;
}

Response Daemon::HandleInspect(const Request& request) {
  const std::string* db_name = request.Arg("db");
  if (db_name == nullptr || !ValidDbName(*db_name)) {
    return ErrorResponse(wire::kBadRequest, "inspect requires db=<name>");
  }
  Status open_status;
  std::shared_ptr<const Catalog::Entry> entry =
      catalog_.Open(*db_name, &open_status);
  if (entry == nullptr) return CatalogError(open_status);
  Response response = OkResponse();
  response.Add("db", entry->name);
  response.Add("generation", std::to_string(entry->generation));
  response.Add("relations", std::to_string(entry->info.relations.size()));
  response.Add("tuples", std::to_string(entry->info.TotalTuples()));
  response.Add("profile", entry->profile.Fingerprint());
  // Body: one "name arity rows [colN=distinct/max-group...]" line per
  // relation; the per-column profile is present for v2 snapshots (and for
  // v1 generations, whose stats were computed lazily at open).
  for (const SnapshotRelationInfo& rel : entry->info.relations) {
    response.body += rel.name + " " + std::to_string(rel.arity) + " " +
                     std::to_string(rel.rows);
    if (const RelationProfile* profile = entry->profile.Find(rel.name);
        profile != nullptr && profile->stats != nullptr) {
      for (std::size_t c = 0; c < profile->stats->columns.size(); ++c) {
        const ColumnStats& stats = profile->stats->columns[c];
        response.body += " col" + std::to_string(c) + "=" +
                         std::to_string(stats.distinct) + "/" +
                         std::to_string(stats.max_group);
      }
    }
    response.body += "\n";
  }
  // slowlog=1: append the engine's slow-query ring, oldest first. Each
  // entry is one "slow ..." header line; a traced entry's span tree
  // follows, indented by two spaces per depth starting at one level deep
  // (so headers remain greppable at column zero).
  if (const std::string* arg = request.Arg("slowlog");
      arg != nullptr && *arg == "1") {
    SlowQueryLog& log = entry->engine->slow_query_log();
    std::vector<SlowQueryEntry> entries = log.Entries();
    response.Add("slow_total", std::to_string(log.total_slow()));
    response.Add("slow_threshold_ms", FormatMs(log.threshold_ms()));
    response.Add("slow_entries", std::to_string(entries.size()));
    for (const SlowQueryEntry& e : entries) {
      response.body += "slow " + std::to_string(e.sequence) + " [" +
                       e.wall_time + "] planner_ms=" + FormatMs(e.planner_ms) +
                       " execute_ms=" + FormatMs(e.execute_ms) +
                       " method=" + e.method + " query=" + e.query + "\n";
      if (!e.trace.empty()) {
        std::istringstream lines(e.trace);
        std::string line;
        while (std::getline(lines, line)) {
          response.body += "  " + line + "\n";
        }
      }
    }
  }
  return response;
}

}  // namespace sharpcq
