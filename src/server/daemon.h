#ifndef SHARPCQ_SERVER_DAEMON_H_
#define SHARPCQ_SERVER_DAEMON_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/protocol.h"
#include "storage/catalog.h"
#include "util/cancel.h"
#include "util/clock.h"
#include "util/metrics.h"

namespace sharpcq {

// Cumulative daemon counters, readable while serving (`status` returns
// them over the wire; tests poll them in-process).
struct DaemonStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_error = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t cancelled_disconnect = 0;
  std::uint64_t resource_exhausted = 0;
  std::uint64_t frames_too_large = 0;
  std::uint64_t malformed_requests = 0;
  // Per-command request totals (unknown commands count toward none).
  std::uint64_t cmd_count = 0;
  std::uint64_t cmd_ingest = 0;
  std::uint64_t cmd_status = 0;
  std::uint64_t cmd_inspect = 0;
  std::uint64_t cmd_metrics = 0;
  std::uint64_t cmd_shutdown = 0;
};

struct DaemonOptions {
  // Catalog root directory; created by Catalog::Ingest on first write.
  std::string catalog_root;
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; the bound port is Daemon::port()
  // Admission control: at most max_inflight count/ingest requests execute
  // concurrently; up to max_queued more wait for a slot; anything beyond
  // that is rejected immediately with OVERLOADED. Cheap commands (status,
  // inspect, shutdown) bypass the gate so health checks work under load.
  std::size_t max_inflight = 4;
  std::size_t max_queued = 16;
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Applied to count requests that carry no deadline_ms argument; zero
  // means no deadline.
  std::chrono::milliseconds default_deadline{0};
  // How often the disconnect watcher polls executing requests' sockets.
  std::chrono::milliseconds watch_interval{5};
  // Memory budgets (graceful degradation): max_query_bytes caps what one
  // count may allocate; max_total_bytes caps the sum across all in-flight
  // counts over every database (one shared MemoryBudget installed into
  // each per-database engine). An over-budget count gets a
  // RESOURCE_EXHAUSTED response; the daemon keeps serving. 0 = unlimited.
  std::uint64_t max_query_bytes = 0;
  std::uint64_t max_total_bytes = 0;
  Catalog::Options catalog;
};

// The sharpcqd network daemon: serves a Catalog of durable databases over
// TCP with the length-framed protocol of server/protocol.h.
//
//   count   db=<name> [strategy=<s>] [deadline_ms=<n>] [trace=1]
//                                                        body: query text
//                                                        (trace=1: response
//                                                        body carries the
//                                                        serialized span
//                                                        tree)
//   ingest  db=<name> relation=<rel>                     body: CSV rows
//   status                                               counters + db list
//   inspect db=<name> [slowlog=1]                        schema + sizes
//                                                        (+ slow-query ring)
//   metrics                                              Prometheus text
//   shutdown                                             ack, then Wait() returns
//
// Request lifecycle: the connection thread parses the frame, passes the
// admission gate, and builds a CancelToken carrying the request deadline.
// While the count executes, the disconnect watcher polls the connection's
// socket and cancels the token if the client vanished; the token is also
// checked once per morsel inside the kernel (algebra/exec_policy.h), so a
// deadline expiring mid-join stops the execution within one morsel of
// probe work and the client gets a DEADLINE_EXCEEDED (or CANCELLED)
// response instead of a hang.
//
// Threading: one accept thread, one watcher thread, one thread per
// connection. Stop() (or the `shutdown` command followed by Stop()) closes
// the listener, shuts down every open connection socket, cancels inflight
// tokens, and joins everything; the destructor calls Stop().
class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Binds, listens, and starts the accept + watcher threads. False with
  // *error set if the address cannot be bound.
  bool Start(std::string* error);

  // The bound port (valid after Start; useful with options.port == 0).
  int port() const { return port_; }

  // Blocks until Stop() is called or a client sends `shutdown`.
  void Wait();

  // Idempotent full shutdown: stop accepting, cancel and drain inflight
  // requests, join all threads.
  void Stop();

  DaemonStats stats() const;

 private:
  void AcceptLoop();
  void WatchLoop();
  void ServeConnection(int fd);

  Response Dispatch(const Request& request, int fd);
  Response HandleCount(const Request& request, int fd);
  Response HandleIngest(const Request& request);
  Response HandleStatus();
  Response HandleInspect(const Request& request);
  Response HandleMetrics();

  // Admission gate for count/ingest. False = reject with OVERLOADED.
  bool EnterAdmission();
  void LeaveAdmission();

  // Disconnect watcher registry: while a request executes, its connection
  // fd maps to the request's cancel token.
  void WatchDisconnect(int fd, CancelToken* token);
  void UnwatchDisconnect(int fd);

  DaemonOptions options_;
  Catalog catalog_;
  int listen_fd_ = -1;
  int port_ = 0;

  // Uptime anchor (steady) and human start time (wall, log/status only),
  // both stamped in Start().
  MonotonicClock::time_point start_time_{};
  std::string started_at_;

  // Per-instance request latency histograms: tests run several daemons in
  // one process, and each must see exactly its own requests (the
  // process-wide registry would conflate them).
  Histogram count_latency_;
  Histogram ingest_latency_;

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::thread watch_thread_;

  mutable std::mutex mu_;  // connections, stats, stop signal
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::vector<std::thread> connection_threads_;
  std::vector<int> connection_fds_;
  DaemonStats stats_;

  std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  std::size_t inflight_ = 0;
  std::size_t queued_ = 0;

  std::mutex watch_mu_;
  std::unordered_map<int, CancelToken*> watched_;

  // Serializes ingest's read-copy-swap against concurrent ingests of the
  // same catalog; counts are unaffected (they pin their generation).
  std::mutex ingest_mu_;
};

}  // namespace sharpcq

#endif  // SHARPCQ_SERVER_DAEMON_H_
