#include "server/protocol.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace sharpcq {

namespace {

bool SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

// Splits a header line on runs of spaces; no empty tokens.
std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

}  // namespace

const std::string* Request::Arg(std::string_view key) const {
  for (const auto& [k, v] : args) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string SerializeRequest(const Request& request) {
  std::string out = request.command;
  for (const auto& [k, v] : request.args) {
    out.push_back(' ');
    out.append(k);
    out.push_back('=');
    out.append(v);
  }
  out.push_back('\n');
  out.append(request.body);
  return out;
}

std::optional<Request> ParseRequest(std::string_view payload,
                                    std::string* error) {
  std::size_t newline = payload.find('\n');
  std::string_view header =
      newline == std::string_view::npos ? payload : payload.substr(0, newline);
  Request request;
  if (newline != std::string_view::npos) {
    request.body = std::string(payload.substr(newline + 1));
  }
  std::vector<std::string_view> tokens = SplitTokens(header);
  if (tokens.empty()) {
    SetError(error, "empty request header");
    return std::nullopt;
  }
  request.command = std::string(tokens[0]);
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::size_t eq = tokens[i].find('=');
    if (eq == std::string_view::npos || eq == 0) {
      SetError(error,
               "malformed argument (want key=value): " + std::string(tokens[i]));
      return std::nullopt;
    }
    request.args.emplace_back(std::string(tokens[i].substr(0, eq)),
                              std::string(tokens[i].substr(eq + 1)));
  }
  return request;
}

void Response::Add(std::string key, std::string value) {
  fields.emplace_back(std::move(key), std::move(value));
}

const std::string* Response::Field(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

Response OkResponse() {
  Response response;
  response.ok = true;
  return response;
}

Response ErrorResponse(std::string code, std::string message) {
  Response response;
  response.ok = false;
  response.code = std::move(code);
  response.message = std::move(message);
  return response;
}

std::string SerializeResponse(const Response& response) {
  std::string out;
  if (response.ok) {
    out = "ok\n";
  } else {
    out = "error " + response.code + " " + response.message + "\n";
  }
  for (const auto& [k, v] : response.fields) {
    out.append(k);
    out.append(": ");
    out.append(v);
    out.push_back('\n');
  }
  if (!response.body.empty()) {
    out.push_back('\n');
    out.append(response.body);
  }
  return out;
}

std::optional<Response> ParseResponse(std::string_view payload,
                                      std::string* error) {
  std::size_t newline = payload.find('\n');
  if (newline == std::string_view::npos) {
    SetError(error, "response missing status line terminator");
    return std::nullopt;
  }
  std::string_view status = payload.substr(0, newline);
  Response response;
  if (status == "ok") {
    response.ok = true;
  } else if (status.rfind("error ", 0) == 0) {
    std::string_view rest = status.substr(6);
    std::size_t space = rest.find(' ');
    response.code = std::string(rest.substr(0, space));
    if (space != std::string_view::npos) {
      response.message = std::string(rest.substr(space + 1));
    }
    if (response.code.empty()) {
      SetError(error, "error status with empty code");
      return std::nullopt;
    }
  } else {
    SetError(error, "bad status line: " + std::string(status));
    return std::nullopt;
  }
  std::string_view rest = payload.substr(newline + 1);
  while (!rest.empty()) {
    std::size_t line_end = rest.find('\n');
    std::string_view line =
        line_end == std::string_view::npos ? rest : rest.substr(0, line_end);
    if (line.empty()) {
      // Blank separator: everything after it is the body.
      response.body = std::string(
          line_end == std::string_view::npos ? "" : rest.substr(line_end + 1));
      break;
    }
    std::size_t colon = line.find(": ");
    if (colon == std::string_view::npos || colon == 0) {
      SetError(error, "bad field line: " + std::string(line));
      return std::nullopt;
    }
    response.fields.emplace_back(std::string(line.substr(0, colon)),
                                 std::string(line.substr(colon + 2)));
    if (line_end == std::string_view::npos) break;
    rest = rest.substr(line_end + 1);
  }
  return response;
}

// --- fd framing --------------------------------------------------------------

namespace {

bool SendAll(int fd, const char* data, std::size_t size, std::string* error) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SetError(error, std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// 1 = ok, 0 = EOF before any byte, -1 = error/EOF mid-read.
int RecvAll(int fd, char* data, std::size_t size, std::string* error) {
  std::size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      SetError(error, std::string("recv: ") + std::strerror(errno));
      return -1;
    }
    if (n == 0) {
      if (got == 0) return 0;
      SetError(error, "connection closed mid-frame");
      return -1;
    }
    got += static_cast<std::size_t>(n);
  }
  return 1;
}

}  // namespace

bool SendFrame(int fd, std::string_view payload, std::string* error) {
  // One buffer, one send: writing the 4-byte header separately lets Nagle
  // hold the payload until the peer's delayed ACK (~40ms per direction),
  // turning sub-millisecond request/response round trips into ~80ms ones.
  std::string frame;
  frame.reserve(4 + payload.size());
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<char>(size >> 24));
  frame.push_back(static_cast<char>(size >> 16));
  frame.push_back(static_cast<char>(size >> 8));
  frame.push_back(static_cast<char>(size));
  frame.append(payload);
  return SendAll(fd, frame.data(), frame.size(), error);
}

FrameStatus RecvFrame(int fd, std::uint32_t max_bytes, std::string* payload,
                      std::string* error) {
  unsigned char header[4];
  int got = RecvAll(fd, reinterpret_cast<char*>(header), 4, error);
  if (got == 0) return FrameStatus::kClosed;
  if (got < 0) return FrameStatus::kError;
  const std::uint32_t size = (static_cast<std::uint32_t>(header[0]) << 24) |
                             (static_cast<std::uint32_t>(header[1]) << 16) |
                             (static_cast<std::uint32_t>(header[2]) << 8) |
                             static_cast<std::uint32_t>(header[3]);
  if (size > max_bytes) {
    SetError(error, "frame of " + std::to_string(size) +
                        " bytes exceeds limit of " + std::to_string(max_bytes));
    return FrameStatus::kTooLarge;
  }
  payload->resize(size);
  if (size > 0 && RecvAll(fd, payload->data(), size, error) != 1) {
    return FrameStatus::kError;
  }
  return FrameStatus::kOk;
}

}  // namespace sharpcq
