#ifndef SHARPCQ_SERVER_PROTOCOL_H_
#define SHARPCQ_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sharpcq {

// Wire format of the sharpcqd daemon (server/daemon.h).
//
// Every message — request or response — travels as one frame:
//
//   frame   = length payload
//   length  = 4-byte big-endian payload size (bytes)
//
// A request payload is a header line plus an optional body:
//
//   request = command [SP key=value]... LF body
//
// The body's meaning is per command: the query text for `count`, CSV rows
// for `ingest`, empty otherwise. A response payload is a status line,
// `key: value` provenance fields one per line, and an optional body
// separated by a blank line:
//
//   response = ("ok" | "error" SP code SP message) LF
//              (key ": " value LF)...
//              [LF body]
//
// The protocol is strictly request-response per connection: a client sends
// one frame and reads one frame back. Parsing and serialization here are
// pure (testable without sockets); SendFrame/RecvFrame do the fd I/O.

// Frames above this size are rejected with kFrameTooLarge before any
// payload is read; the daemon then drops the connection, since the unread
// payload makes resynchronization impossible.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 16u << 20;

// Error codes carried in the response status line. Strings, not an enum,
// so clients in other languages compare them without a shared header.
namespace wire {
inline constexpr const char kBadRequest[] = "BAD_REQUEST";
inline constexpr const char kUnknownCommand[] = "UNKNOWN_COMMAND";
inline constexpr const char kNotFound[] = "NOT_FOUND";
inline constexpr const char kParseError[] = "PARSE_ERROR";
inline constexpr const char kDeadlineExceeded[] = "DEADLINE_EXCEEDED";
inline constexpr const char kCancelled[] = "CANCELLED";
// A memory budget refused the request's allocations (distinct from
// OVERLOADED: the daemon is healthy and keeps serving; retrying the same
// query will exhaust the same budget unless the budget was process-wide
// and other queries have since finished).
inline constexpr const char kResourceExhausted[] = "RESOURCE_EXHAUSTED";
// Storage-layer failures surfaced over the wire; mirror StatusCodeName
// (util/status.h) so the daemon maps Status codes 1:1.
inline constexpr const char kCorruptData[] = "CORRUPT_DATA";
inline constexpr const char kIoError[] = "IO_ERROR";
inline constexpr const char kOverloaded[] = "OVERLOADED";
inline constexpr const char kFrameTooLarge[] = "FRAME_TOO_LARGE";
inline constexpr const char kShuttingDown[] = "SHUTTING_DOWN";
inline constexpr const char kInternal[] = "INTERNAL";
}  // namespace wire

struct Request {
  std::string command;
  // Header arguments in wire order. Keys and values must not contain
  // whitespace; values may contain '=' (the split is on the first one).
  std::vector<std::pair<std::string, std::string>> args;
  std::string body;

  // First value for `key`, or nullptr.
  const std::string* Arg(std::string_view key) const;
};

std::string SerializeRequest(const Request& request);

// nullopt with *error set on an empty header line, a bare argument with no
// '=', or an empty argument key.
std::optional<Request> ParseRequest(std::string_view payload,
                                    std::string* error);

struct Response {
  bool ok = false;
  std::string code;     // one of wire::*, empty when ok
  std::string message;  // human-readable, empty when ok
  std::vector<std::pair<std::string, std::string>> fields;
  std::string body;

  void Add(std::string key, std::string value);
  // First value for `key`, or nullptr.
  const std::string* Field(std::string_view key) const;
};

Response OkResponse();
Response ErrorResponse(std::string code, std::string message);

std::string SerializeResponse(const Response& response);
std::optional<Response> ParseResponse(std::string_view payload,
                                      std::string* error);

// --- fd framing --------------------------------------------------------------

enum class FrameStatus {
  kOk,
  kClosed,    // orderly EOF at a frame boundary
  kTooLarge,  // header announced more than max_bytes; payload unread
  kError,     // socket error or EOF mid-frame
};

// Writes the length header and payload. Uses MSG_NOSIGNAL, so a peer that
// vanished yields false (with *error set), never SIGPIPE.
bool SendFrame(int fd, std::string_view payload, std::string* error);

// Reads one frame into *payload. kClosed only when EOF lands exactly
// between frames; a disconnect mid-frame is kError.
FrameStatus RecvFrame(int fd, std::uint32_t max_bytes, std::string* payload,
                      std::string* error);

}  // namespace sharpcq

#endif  // SHARPCQ_SERVER_PROTOCOL_H_
