#include "solver/consistency.h"

namespace sharpcq {

bool EnforcePairwiseConsistency(std::vector<Rel>* views) {
  const std::size_t n = views->size();
  // Precompute which pairs interact.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && (*views)[i].vars().Intersects((*views)[j].vars())) {
        pairs.emplace_back(i, j);
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto [i, j] : pairs) {
      bool local = false;
      (*views)[i] = Semijoin((*views)[i], (*views)[j], &local);
      if (local) {
        changed = true;
        if ((*views)[i].empty()) return false;
      }
    }
  }
  for (const Rel& v : *views) {
    if (v.empty()) return false;
  }
  return true;
}

bool EnforcePairwiseConsistency(std::vector<VarRelation>* views) {
  std::vector<Rel> kernel(views->begin(), views->end());
  bool ok = EnforcePairwiseConsistency(&kernel);
  for (std::size_t i = 0; i < views->size(); ++i) {
    (*views)[i] = ToVarRelation(kernel[i]);
  }
  return ok;
}

}  // namespace sharpcq
