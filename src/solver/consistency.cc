#include "solver/consistency.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <utility>

#include "algebra/exec_policy.h"
#include "count/join_tree_instance.h"
#include "hypergraph/acyclic.h"

namespace sharpcq {

bool EnforcePairwiseConsistency(std::vector<Rel>* views) {
  const std::size_t n = views->size();
  for (const Rel& v : *views) {
    if (v.empty()) return false;
  }

  // Acyclic downgrade: when the view schemas form an alpha-acyclic
  // hypergraph, the greatest pairwise-consistent subinstance equals the
  // globally consistent one (Beeri–Fagin–Maier–Yannakakis), and the
  // two-pass join-tree full reducer computes it with O(n) semijoins
  // instead of a fixpoint.
  {
    std::vector<IdSet> edges;
    edges.reserve(n);
    for (const Rel& v : *views) edges.push_back(v.vars());
    if (std::optional<TreeShape> shape = BuildJoinTree(edges);
        shape.has_value()) {
      JoinTreeInstance instance;
      instance.shape = std::move(*shape);
      instance.nodes = std::move(*views);
      bool ok = FullReduce(&instance);
      *views = std::move(instance.nodes);
      return ok;
    }
  }

  // Cyclic schemas: worklist propagation to the fixpoint. A pair (i, j)
  // needs re-running only when its right side j shrank since the pair last
  // ran — a semijoin never un-removes rows, so shrinking i alone cannot
  // change any (i, j') outcome. Compared to the old full-rescan fixpoint
  // (every pair, every round, until a clean round) this skips the O(pairs)
  // confirming rescans entirely.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::vector<std::vector<std::size_t>> pairs_with_right(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && (*views)[i].vars().Intersects((*views)[j].vars())) {
        pairs_with_right[j].push_back(pairs.size());
        pairs.emplace_back(i, j);
      }
    }
  }
  // Seed the worklist by ascending right-side size: small build sides go
  // first, so by the time the big semijoins run, their left sides have
  // already been trimmed by every cheap filter — fewer rows probed where a
  // probe is most expensive. Pure scheduling: the fixpoint is confluent, so
  // the result is order-independent (and the stable sort keeps runs
  // deterministic).
  std::vector<std::size_t> seed(pairs.size());
  for (std::size_t p = 0; p < pairs.size(); ++p) seed[p] = p;
  std::stable_sort(seed.begin(), seed.end(),
                   [&](std::size_t a, std::size_t b) {
                     return (*views)[pairs[a].second].size() <
                            (*views)[pairs[b].second].size();
                   });
  std::deque<std::size_t> worklist;
  std::vector<char> queued(pairs.size(), 1);
  for (std::size_t p : seed) worklist.push_back(p);

  while (!worklist.empty()) {
    // Deadline/cancellation checkpoint: the fixpoint can run thousands of
    // semijoins whose probe sides are each too small to morselize, so the
    // per-morsel checks alone would never fire here.
    CheckExecInterrupt();
    const std::size_t p = worklist.front();
    worklist.pop_front();
    queued[p] = 0;
    auto [i, j] = pairs[p];
    bool shrank = false;
    (*views)[i] = Semijoin((*views)[i], (*views)[j], &shrank);
    if (!shrank) continue;
    if ((*views)[i].empty()) return false;
    for (std::size_t q : pairs_with_right[i]) {
      if (!queued[q]) {
        queued[q] = 1;
        worklist.push_back(q);
      }
    }
  }
  return true;
}

bool EnforcePairwiseConsistency(std::vector<VarRelation>* views) {
  std::vector<Rel> kernel(views->begin(), views->end());
  bool ok = EnforcePairwiseConsistency(&kernel);
  for (std::size_t i = 0; i < views->size(); ++i) {
    (*views)[i] = ToVarRelation(kernel[i]);
  }
  return ok;
}

}  // namespace sharpcq
