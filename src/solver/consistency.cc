#include "solver/consistency.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <queue>
#include <utility>

#include "algebra/exec_policy.h"
#include "count/join_tree_instance.h"
#include "hypergraph/acyclic.h"
#include "util/trace.h"

namespace sharpcq {

bool EnforcePairwiseConsistency(std::vector<Rel>* views) {
  TraceSpan span("pairwise_consistency");
  const std::size_t n = views->size();
  span.NoteCount("views", n);
  for (const Rel& v : *views) {
    if (v.empty()) return false;
  }

  // Acyclic downgrade: when the view schemas form an alpha-acyclic
  // hypergraph, the greatest pairwise-consistent subinstance equals the
  // globally consistent one (Beeri–Fagin–Maier–Yannakakis), and the
  // two-pass join-tree full reducer computes it with O(n) semijoins
  // instead of a fixpoint.
  {
    std::vector<IdSet> edges;
    edges.reserve(n);
    for (const Rel& v : *views) edges.push_back(v.vars());
    if (std::optional<TreeShape> shape = BuildJoinTree(edges);
        shape.has_value()) {
      span.Note("regime", "join_tree");
      JoinTreeInstance instance;
      instance.shape = std::move(*shape);
      instance.nodes = std::move(*views);
      bool ok = FullReduce(&instance);
      *views = std::move(instance.nodes);
      return ok;
    }
  }

  // Cyclic schemas: worklist propagation to the fixpoint. A pair (i, j)
  // needs re-running only when its right side j shrank since the pair last
  // ran — a semijoin never un-removes rows, so shrinking i alone cannot
  // change any (i, j') outcome. Compared to the old full-rescan fixpoint
  // (every pair, every round, until a clean round) this skips the O(pairs)
  // confirming rescans entirely.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::vector<std::vector<std::size_t>> pairs_with_right(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && (*views)[i].vars().Intersects((*views)[j].vars())) {
        pairs_with_right[j].push_back(pairs.size());
        pairs.emplace_back(i, j);
      }
    }
  }
  std::vector<char> queued(pairs.size(), 1);
  // Runs pair p once; false when the left view emptied (global failure).
  // Newly dirty pairs — right side p.first shrank — go through `enqueue`.
  auto relax = [&](std::size_t p, auto&& enqueue) -> bool {
    auto [i, j] = pairs[p];
    bool shrank = false;
    (*views)[i] = Semijoin((*views)[i], (*views)[j], &shrank);
    if (!shrank) return true;
    if ((*views)[i].empty()) return false;
    for (std::size_t q : pairs_with_right[i]) {
      if (!queued[q]) {
        queued[q] = 1;
        enqueue(q);
      }
    }
    return true;
  };

  // Relaxations run by either regime below, flushed on every exit path
  // (including an ExecInterrupted unwind) into the execution's stats sink
  // and the span — the trace's "consistency-worklist iterations" figure.
  struct RelaxTally {
    std::uint64_t count = 0;
    TraceSpan* span;
    ~RelaxTally() {
      if (ExecStats* stats = CurrentExecStats()) {
        stats->worklist_iterations.fetch_add(count,
                                             std::memory_order_relaxed);
      }
      span->NoteCount("relaxations", count);
    }
  } tally{0, &span};

  // The fixpoint is confluent — semijoins only remove rows and the greatest
  // pairwise-consistent subinstance is unique — so scheduling order is pure
  // performance. Both regimes below compute the same views.
  const ExecPolicy* exec_policy = CurrentExecPolicy();
  if (exec_policy != nullptr && exec_policy->cost_model) {
    // Cost-model regime: a priority queue ordered by each pair's estimated
    // shrink, size(left) / est-distinct(right on shared vars) — the pairs
    // expected to delete the most rows run first, so later, bigger
    // semijoins probe already-trimmed left sides. Scores are computed at
    // enqueue time (cheap: cached stats or row counts, never an index
    // build); staleness only costs priority accuracy, never correctness.
    auto score = [&](std::size_t p) -> std::uint64_t {
      const auto& [i, j] = pairs[p];
      const Rel& right = (*views)[j];
      const IdSet shared = Intersect((*views)[i].vars(), right.vars());
      std::size_t keys = EstimatedDistinctCount(right, shared);
      if (keys == 0) keys = 1;
      return static_cast<std::uint64_t>((*views)[i].size()) / keys;
    };
    using Entry = std::pair<std::uint64_t, std::size_t>;  // (score, pair)
    auto later = [](const Entry& a, const Entry& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;  // ties: lowest pair index first
    };
    std::priority_queue<Entry, std::vector<Entry>, decltype(later)> worklist(
        later);
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      worklist.emplace(score(p), p);
    }
    if (!pairs.empty()) {
      if (ExecStats* stats = CurrentExecStats()) {
        stats->cost_reorders.fetch_add(1, std::memory_order_relaxed);
      }
    }
    span.Note("regime", "priority");
    while (!worklist.empty()) {
      CheckExecInterrupt();
      const std::size_t p = worklist.top().second;
      worklist.pop();
      queued[p] = 0;
      ++tally.count;
      if (!relax(p, [&](std::size_t q) { worklist.emplace(score(q), q); })) {
        return false;
      }
    }
    return true;
  }
  span.Note("regime", "fifo");

  // Default regime: FIFO, seeded by ascending right-side size — small build
  // sides go first, so by the time the big semijoins run, their left sides
  // have already been trimmed by every cheap filter (and the stable sort
  // keeps runs deterministic).
  std::vector<std::size_t> seed(pairs.size());
  for (std::size_t p = 0; p < pairs.size(); ++p) seed[p] = p;
  std::stable_sort(seed.begin(), seed.end(),
                   [&](std::size_t a, std::size_t b) {
                     return (*views)[pairs[a].second].size() <
                            (*views)[pairs[b].second].size();
                   });
  std::deque<std::size_t> worklist;
  for (std::size_t p : seed) worklist.push_back(p);

  while (!worklist.empty()) {
    // Deadline/cancellation checkpoint: the fixpoint can run thousands of
    // semijoins whose probe sides are each too small to morselize, so the
    // per-morsel checks alone would never fire here.
    CheckExecInterrupt();
    const std::size_t p = worklist.front();
    worklist.pop_front();
    queued[p] = 0;
    ++tally.count;
    if (!relax(p, [&](std::size_t q) { worklist.push_back(q); })) {
      return false;
    }
  }
  return true;
}

bool EnforcePairwiseConsistency(std::vector<VarRelation>* views) {
  std::vector<Rel> kernel(views->begin(), views->end());
  bool ok = EnforcePairwiseConsistency(&kernel);
  for (std::size_t i = 0; i < views->size(); ++i) {
    (*views)[i] = ToVarRelation(kernel[i]);
  }
  return ok;
}

}  // namespace sharpcq
