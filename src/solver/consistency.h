#ifndef SHARPCQ_SOLVER_CONSISTENCY_H_
#define SHARPCQ_SOLVER_CONSISTENCY_H_

#include <vector>

#include "algebra/rel.h"
#include "data/var_relation.h"

namespace sharpcq {

// Enforces pairwise consistency on a set of views to fixpoint (Sections 3.2
// and 4): repeatedly semijoins every view with every other view sharing
// variables until nothing changes. Returns false iff some view became empty
// (no solution can exist).
//
// This is the local-consistency engine behind Lemma 4.3 (polynomial core
// computation) and the reference implementation for the Theorem 3.7
// pipeline (which uses the cheaper join-tree full reducer in count/).
//
// The kernel overload is the primary implementation. Acyclic view schemas
// are detected up front and downgraded to the two-pass join-tree full
// reducer (Beeri–Fagin–Maier–Yannakakis: pairwise consistency equals
// global consistency there, and the reducer reaches it in O(n) semijoins).
// Cyclic schemas run a worklist propagator instead of the old full-rescan
// fixpoint: a pair (i, j) is re-enqueued only when its right side j
// shrank, so the confirming rescans over every pair disappear. Both paths
// reuse the right-hand views' cached hash indexes, and semijoins that
// remove nothing return the unchanged handle (no materialization).
bool EnforcePairwiseConsistency(std::vector<Rel>* views);

// Legacy shim over the kernel implementation, preserved so callers holding
// by-value VarRelations (and the tests arbitrating old vs new semantics)
// keep working. Views come back deduplicated.
bool EnforcePairwiseConsistency(std::vector<VarRelation>* views);

}  // namespace sharpcq

#endif  // SHARPCQ_SOLVER_CONSISTENCY_H_
