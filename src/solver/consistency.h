#ifndef SHARPCQ_SOLVER_CONSISTENCY_H_
#define SHARPCQ_SOLVER_CONSISTENCY_H_

#include <vector>

#include "data/var_relation.h"

namespace sharpcq {

// Enforces pairwise consistency on a set of views to fixpoint (Sections 3.2
// and 4): repeatedly semijoins every view with every other view sharing
// variables until nothing changes. Returns false iff some view became empty
// (no solution can exist).
//
// This is the local-consistency engine behind Lemma 4.3 (polynomial core
// computation) and the reference implementation for the Theorem 3.7
// pipeline (which uses the cheaper join-tree full reducer in count/).
bool EnforcePairwiseConsistency(std::vector<VarRelation>* views);

}  // namespace sharpcq

#endif  // SHARPCQ_SOLVER_CONSISTENCY_H_
