#include "solver/core.h"

#include <set>
#include <unordered_map>

#include "data/database.h"
#include "query/atom_relation.h"
#include "solver/consistency.h"
#include "solver/homomorphism.h"
#include "util/check.h"

namespace sharpcq {

namespace {

// True if atom `i` of `q` can be dropped: q still maps homomorphically into
// q minus that atom.
bool AtomDeletable(const ConjunctiveQuery& q, std::size_t i) {
  ConjunctiveQuery reduced = q.WithoutAtom(i);
  QueryTarget target(reduced);
  return HomomorphismExists(q, target);
}

// Recodes (src, target) into a query/database pair over a shared coding of
// terms: variable v -> v (shared name table), constant c -> offset + index.
// Evaluating the coded src on the coded database decides src -> target.
struct CodedInstance {
  ConjunctiveQuery query;
  Database db;
};

CodedInstance CodeForHomomorphism(const ConjunctiveQuery& src,
                                  const ConjunctiveQuery& target) {
  constexpr std::int64_t kConstOffset = std::int64_t{1} << 40;
  std::unordered_map<Value, std::int64_t> codes;
  auto code_of = [&codes](Value c) {
    auto [it, inserted] = codes.emplace(
        c, kConstOffset + static_cast<std::int64_t>(codes.size()));
    return it->second;
  };

  CodedInstance out;
  out.query = src.KeepAtoms({});  // shell with src's name table and free set
  for (const Atom& a : src.atoms()) {
    std::vector<Term> terms;
    terms.reserve(a.terms.size());
    for (const Term& t : a.terms) {
      terms.push_back(t.is_var() ? t : Term::Const(code_of(t.value)));
    }
    out.query.AddAtom(a.relation, std::move(terms));
    // Declare all of src's relations so absent ones read as empty.
    out.db.DeclareRelation(a.relation, a.arity());
  }
  for (const Atom& a : target.atoms()) {
    std::vector<Value> row;
    row.reserve(a.terms.size());
    for (const Term& t : a.terms) {
      row.push_back(t.is_var() ? static_cast<std::int64_t>(t.var)
                               : code_of(t.value));
    }
    out.db.AddTuple(a.relation, std::span<const Value>(row));
  }
  return out;
}

// Calls fn(indices) for every subset of {0..m-1} of size 1..k.
template <typename Fn>
void ForEachAtomSubset(std::size_t m, int k, const Fn& fn) {
  std::vector<std::size_t> stack;
  // Iterative DFS over combinations.
  auto rec = [&](auto&& self, std::size_t start) -> void {
    if (!stack.empty()) fn(stack);
    if (static_cast<int>(stack.size()) == k) return;
    for (std::size_t i = start; i < m; ++i) {
      stack.push_back(i);
      self(self, i + 1);
      stack.pop_back();
    }
  };
  rec(rec, 0);
}

// Greedy core loop parameterized on the deletability oracle.
template <typename DeletableFn>
ConjunctiveQuery GreedyCore(ConjunctiveQuery q, const DeletableFn& deletable) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < q.NumAtoms(); ++i) {
      if (deletable(q, i)) {
        q = q.WithoutAtom(i);
        progress = true;
        break;
      }
    }
  }
  return q;
}

}  // namespace

ConjunctiveQuery ComputeCoreSubquery(const ConjunctiveQuery& q) {
  return GreedyCore(q, AtomDeletable);
}

ConjunctiveQuery ComputeColoredCore(const ConjunctiveQuery& q) {
  return ComputeCoreSubquery(q.Colored()).Uncolored();
}

bool HomomorphismExistsViaConsistency(const ConjunctiveQuery& src,
                                      const ConjunctiveQuery& target, int k) {
  CodedInstance coded = CodeForHomomorphism(src, target);

  // Build the standard view extension of V^k: one view per (<=k)-subset of
  // src's atoms, initialized with the join of the member atoms. Kernel
  // handles keep the subset joins cheap: the singleton views share the atom
  // relations' tables instead of copying them.
  std::vector<Rel> atom_rels;
  atom_rels.reserve(coded.query.NumAtoms());
  for (const Atom& a : coded.query.atoms()) {
    atom_rels.push_back(AtomToRel(a, coded.db));
    if (atom_rels.back().empty()) return false;
  }

  std::vector<Rel> views;
  bool some_empty = false;
  ForEachAtomSubset(
      atom_rels.size(), k, [&](const std::vector<std::size_t>& subset) {
        Rel joined = atom_rels[subset[0]];
        for (std::size_t i = 1; i < subset.size(); ++i) {
          joined = Join(joined, atom_rels[subset[i]]);
        }
        if (joined.empty()) some_empty = true;
        views.push_back(std::move(joined));
      });
  if (some_empty) return false;
  return EnforcePairwiseConsistency(&views);
}

ConjunctiveQuery ComputeColoredCoreViaConsistency(const ConjunctiveQuery& q,
                                                  int k) {
  ConjunctiveQuery colored = q.Colored();
  auto deletable = [k](const ConjunctiveQuery& current, std::size_t i) {
    return HomomorphismExistsViaConsistency(current, current.WithoutAtom(i),
                                            k);
  };
  return GreedyCore(colored, deletable).Uncolored();
}

std::vector<ConjunctiveQuery> EnumerateColoredCores(const ConjunctiveQuery& q,
                                                    std::size_t max_cores) {
  constexpr std::size_t kStateBudget = 20000;
  ConjunctiveQuery colored = q.Colored();

  std::vector<ConjunctiveQuery> cores;
  std::set<std::vector<std::size_t>> seen_states;
  std::set<std::vector<std::size_t>> core_states;
  std::size_t states_explored = 0;

  std::vector<std::size_t> all(colored.NumAtoms());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  auto rec = [&](auto&& self, const std::vector<std::size_t>& kept) -> void {
    if (cores.size() >= max_cores || states_explored >= kStateBudget) return;
    if (!seen_states.insert(kept).second) return;
    ++states_explored;

    ConjunctiveQuery current = colored.KeepAtoms(kept);
    std::vector<std::size_t> deletable;
    for (std::size_t local = 0; local < kept.size(); ++local) {
      if (AtomDeletable(current, local)) deletable.push_back(local);
    }
    if (deletable.empty()) {
      if (core_states.insert(kept).second) {
        cores.push_back(current.Uncolored());
      }
      return;
    }
    for (std::size_t local : deletable) {
      if (cores.size() >= max_cores) return;
      std::vector<std::size_t> next = kept;
      next.erase(next.begin() + static_cast<std::ptrdiff_t>(local));
      self(self, next);
    }
  };
  rec(rec, all);
  SHARPCQ_CHECK(!cores.empty());
  return cores;
}

}  // namespace sharpcq
