#ifndef SHARPCQ_SOLVER_CORE_H_
#define SHARPCQ_SOLVER_CORE_H_

#include <cstddef>
#include <vector>

#include "query/conjunctive_query.h"

namespace sharpcq {

// Core computation (Section 2, Lemma 4.3). A core of Q is a minimal
// substructure homomorphically equivalent to Q; the paper works with cores
// of the *colored* query color(Q), which pin the free variables.

// Greedy minimization with the exact homomorphism oracle (Chandra–Merlin):
// repeatedly drops an atom when the remaining query still receives a
// homomorphism from the current one. Exponential in the worst case, like
// every exact core algorithm; instant at paper scale.
ConjunctiveQuery ComputeCoreSubquery(const ConjunctiveQuery& q);

// The paper's Q': a core of color(Q) with the color atoms stripped. It
// contains every free variable and satisfies
// pi_free(Q')(D) = pi_free(Q)(D) for every database D.
ConjunctiveQuery ComputeColoredCore(const ConjunctiveQuery& q);

// Lemma 4.3: the same computation with the homomorphism oracle replaced by
// pairwise consistency over the view set V^k (polynomial for fixed k).
// Correct whenever the cores of color(Q) have generalized hypertree width
// at most k; tested against the exact oracle.
ConjunctiveQuery ComputeColoredCoreViaConsistency(const ConjunctiveQuery& q,
                                                  int k);

// The pairwise-consistency homomorphism oracle itself (exposed for tests
// and benchmarks): decides whether src -> target has a homomorphism by
// enforcing pairwise consistency on the views over all <=k-subsets of
// src's atoms, evaluated on target-as-database. Sound and complete when the
// cores of src have generalized hypertree width <= k.
bool HomomorphismExistsViaConsistency(const ConjunctiveQuery& src,
                                      const ConjunctiveQuery& target, int k);

// Enumerates the distinct substructure cores of color(Q), colors stripped.
// Cores are isomorphic to one another, but as substructures they can behave
// differently with respect to a view set (Example 3.5), so #-decomposition
// search must try several. Exploration is capped at `max_cores` results
// (and an internal state budget); the first result equals
// ComputeColoredCore(q).
std::vector<ConjunctiveQuery> EnumerateColoredCores(const ConjunctiveQuery& q,
                                                    std::size_t max_cores);

}  // namespace sharpcq

#endif  // SHARPCQ_SOLVER_CORE_H_
