#include "solver/hom_target.h"

namespace sharpcq {

QueryTarget::QueryTarget(const ConjunctiveQuery& q) {
  for (const Atom& a : q.atoms()) {
    std::vector<std::int64_t> tuple;
    tuple.reserve(a.terms.size());
    for (const Term& t : a.terms) {
      if (t.is_var()) {
        tuple.push_back(static_cast<std::int64_t>(t.var));
      } else {
        auto [it, inserted] = const_codes_.emplace(
            t.value, kConstOffset + static_cast<std::int64_t>(
                                        const_codes_.size()));
        tuple.push_back(it->second);
      }
    }
    relations_[a.relation].push_back(std::move(tuple));
  }
}

const std::vector<std::vector<std::int64_t>>* QueryTarget::TuplesOf(
    const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

std::optional<std::int64_t> QueryTarget::ConstCode(Value c) const {
  auto it = const_codes_.find(c);
  if (it == const_codes_.end()) return std::nullopt;
  return it->second;
}

DatabaseTarget::DatabaseTarget(const Database& db) {
  for (const auto& [name, rel] : db.relations()) {
    auto& tuples = relations_[name];
    tuples.reserve(rel.size());
    for (std::size_t i = 0; i < rel.size(); ++i) {
      auto row = rel.Row(i);
      tuples.emplace_back(row.begin(), row.end());
    }
  }
}

const std::vector<std::vector<std::int64_t>>* DatabaseTarget::TuplesOf(
    const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

}  // namespace sharpcq
