#ifndef SHARPCQ_SOLVER_HOM_TARGET_H_
#define SHARPCQ_SOLVER_HOM_TARGET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/database.h"
#include "query/conjunctive_query.h"

namespace sharpcq {

// A homomorphism target: a finite relational structure presented as lists of
// element-coded tuples per relation symbol. Elements are int64 codes; the
// two implementations are a query viewed as a structure (Section 2,
// "Conjunctive Queries": tuples of terms) and a plain database.
class HomTarget {
 public:
  virtual ~HomTarget() = default;

  // Tuples of relation `name`, or nullptr if the relation is absent (absent
  // means empty: no homomorphism can map an atom over it).
  virtual const std::vector<std::vector<std::int64_t>>* TuplesOf(
      const std::string& name) const = 0;

  // Element code of constant `c`, or nullopt if `c` is not in the universe.
  virtual std::optional<std::int64_t> ConstCode(Value c) const = 0;
};

// A conjunctive query viewed as a structure: universe = terms; relation r
// holds the tuple of terms of every atom over r. Codes: variable v -> v;
// constant c -> kConstOffset + dense index.
class QueryTarget : public HomTarget {
 public:
  static constexpr std::int64_t kConstOffset = std::int64_t{1} << 40;

  explicit QueryTarget(const ConjunctiveQuery& q);

  const std::vector<std::vector<std::int64_t>>* TuplesOf(
      const std::string& name) const override;
  std::optional<std::int64_t> ConstCode(Value c) const override;

  // True if `code` encodes a variable.
  static bool IsVarCode(std::int64_t code) { return code < kConstOffset; }
  // The variable encoded by `code` (must be a var code).
  static VarId VarOfCode(std::int64_t code) {
    return static_cast<VarId>(code);
  }

 private:
  std::unordered_map<std::string, std::vector<std::vector<std::int64_t>>>
      relations_;
  std::unordered_map<Value, std::int64_t> const_codes_;
};

// A database viewed as a target: elements are the values themselves.
class DatabaseTarget : public HomTarget {
 public:
  explicit DatabaseTarget(const Database& db);

  const std::vector<std::vector<std::int64_t>>* TuplesOf(
      const std::string& name) const override;
  std::optional<std::int64_t> ConstCode(Value c) const override {
    return c;  // identity: databases contain every value they mention
  }

 private:
  std::unordered_map<std::string, std::vector<std::vector<std::int64_t>>>
      relations_;
};

}  // namespace sharpcq

#endif  // SHARPCQ_SOLVER_HOM_TARGET_H_
