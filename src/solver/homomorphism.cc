#include "solver/homomorphism.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/check.h"

namespace sharpcq {

namespace {

// Atom-oriented backtracking: repeatedly pick the unmatched atom with the
// most bound variables (fewest remaining choices first in spirit), scan the
// target tuples of its relation, bind, recurse.
class HomSearch {
 public:
  HomSearch(const ConjunctiveQuery& src, const HomTarget& target)
      : src_(src), target_(target) {}

  bool Run(Homomorphism* assignment) {
    matched_.assign(src_.atoms().size(), false);
    // Fail fast: every relation must exist in the target.
    for (const Atom& a : src_.atoms()) {
      if (target_.TuplesOf(a.relation) == nullptr) return false;
    }
    if (!Backtrack(assignment, 0)) return false;
    return true;
  }

  // Enumeration mode: visits every complete assignment; `visit` returns
  // false to stop. Returns true if stopped early.
  bool RunAll(Homomorphism* assignment,
              const std::function<bool(const Homomorphism&)>& visit) {
    matched_.assign(src_.atoms().size(), false);
    for (const Atom& a : src_.atoms()) {
      if (target_.TuplesOf(a.relation) == nullptr) return false;
    }
    visit_ = &visit;
    bool stopped = Backtrack(assignment, 0);
    visit_ = nullptr;
    return stopped;
  }

 private:
  // Number of already-bound variables in atom i, or -1 if matched.
  int BoundScore(const Homomorphism& assignment, std::size_t i) const {
    if (matched_[i]) return -1;
    int bound = 0;
    for (const Term& t : src_.atoms()[i].terms) {
      if (!t.is_var() || assignment.count(t.var) > 0) ++bound;
    }
    return bound;
  }

  // In find-one mode, returns true when a homomorphism was found. In
  // enumeration mode, returns true when the visitor asked to stop.
  bool Backtrack(Homomorphism* assignment, std::size_t matched_count) {
    if (matched_count == src_.atoms().size()) {
      if (visit_ == nullptr) return true;
      return !(*visit_)(*assignment);  // false from visitor = stop = true
    }

    // Pick the unmatched atom with the highest bound-variable count;
    // tie-break toward fewer target tuples.
    std::size_t best = src_.atoms().size();
    int best_score = -1;
    std::size_t best_tuples = 0;
    for (std::size_t i = 0; i < src_.atoms().size(); ++i) {
      if (matched_[i]) continue;
      int score = BoundScore(*assignment, i);
      std::size_t tuples = target_.TuplesOf(src_.atoms()[i].relation)->size();
      if (score > best_score ||
          (score == best_score && tuples < best_tuples)) {
        best = i;
        best_score = score;
        best_tuples = tuples;
      }
    }
    SHARPCQ_CHECK(best < src_.atoms().size());

    const Atom& atom = src_.atoms()[best];
    const auto* tuples = target_.TuplesOf(atom.relation);
    matched_[best] = true;
    for (const auto& tuple : *tuples) {
      if (tuple.size() != atom.terms.size()) continue;
      // Try to extend the assignment with this tuple.
      std::vector<VarId> newly_bound;
      bool ok = true;
      for (std::size_t p = 0; p < atom.terms.size() && ok; ++p) {
        const Term& t = atom.terms[p];
        if (!t.is_var()) {
          std::optional<std::int64_t> code = target_.ConstCode(t.value);
          ok = code.has_value() && *code == tuple[p];
          continue;
        }
        auto it = assignment->find(t.var);
        if (it != assignment->end()) {
          ok = it->second == tuple[p];
        } else {
          assignment->emplace(t.var, tuple[p]);
          newly_bound.push_back(t.var);
        }
      }
      if (ok && Backtrack(assignment, matched_count + 1)) return true;
      for (VarId v : newly_bound) assignment->erase(v);
    }
    matched_[best] = false;
    return false;
  }

  const ConjunctiveQuery& src_;
  const HomTarget& target_;
  std::vector<bool> matched_;
  const std::function<bool(const Homomorphism&)>* visit_ = nullptr;
};

}  // namespace

std::optional<Homomorphism> FindHomomorphism(const ConjunctiveQuery& src,
                                             const HomTarget& target,
                                             const Homomorphism& forced) {
  Homomorphism assignment = forced;
  HomSearch search(src, target);
  if (!search.Run(&assignment)) return std::nullopt;
  // Variables not occurring in any atom (possible for degenerate queries)
  // stay unassigned; callers treat the map as partial on those.
  return assignment;
}

bool HomomorphismExists(const ConjunctiveQuery& src, const HomTarget& target,
                        const Homomorphism& forced) {
  return FindHomomorphism(src, target, forced).has_value();
}

std::size_t ForEachHomomorphism(
    const ConjunctiveQuery& src, const HomTarget& target,
    const std::function<bool(const Homomorphism&)>& callback) {
  // The DFS revisits an assignment only when the target holds literally
  // duplicated tuples; deduplicate to present each homomorphism once.
  std::set<std::vector<std::pair<VarId, std::int64_t>>> seen;
  std::size_t visited = 0;
  Homomorphism assignment;
  HomSearch search(src, target);
  search.RunAll(&assignment, [&](const Homomorphism& h) {
    std::vector<std::pair<VarId, std::int64_t>> canonical(h.begin(), h.end());
    std::sort(canonical.begin(), canonical.end());
    if (!seen.insert(std::move(canonical)).second) return true;
    ++visited;
    return callback(h);
  });
  return visited;
}

bool MapsInto(const ConjunctiveQuery& from, const ConjunctiveQuery& to) {
  QueryTarget target(to);
  return HomomorphismExists(from, target);
}

bool HomEquivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return MapsInto(a, b) && MapsInto(b, a);
}

}  // namespace sharpcq
