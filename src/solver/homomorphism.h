#ifndef SHARPCQ_SOLVER_HOMOMORPHISM_H_
#define SHARPCQ_SOLVER_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "query/conjunctive_query.h"
#include "solver/hom_target.h"

namespace sharpcq {

// A homomorphism from the structure of `src` to a target: an assignment of
// src variables to target element codes such that every atom maps into the
// target's relation and constants are fixed (Section 2).
using Homomorphism = std::unordered_map<VarId, std::int64_t>;

// Backtracking search (most-constrained-atom-first ordering). Returns a
// witness or nullopt. `forced` pre-binds variables (used for colored-core
// reasoning and tests).
std::optional<Homomorphism> FindHomomorphism(
    const ConjunctiveQuery& src, const HomTarget& target,
    const Homomorphism& forced = {});

bool HomomorphismExists(const ConjunctiveQuery& src, const HomTarget& target,
                        const Homomorphism& forced = {});

// Enumerates every homomorphism from `src` into `target`; the callback
// returns false to stop early. Returns the number of homomorphisms visited.
// (Used by the Section 5 reduction machinery to compute automorphism
// groups; exponential in general, fine at query scale.)
std::size_t ForEachHomomorphism(
    const ConjunctiveQuery& src, const HomTarget& target,
    const std::function<bool(const Homomorphism&)>& callback);

// Convenience: does `from` map homomorphically into `to` (query-to-query)?
// Colors (if present in `from`) constrain the mapping as usual.
bool MapsInto(const ConjunctiveQuery& from, const ConjunctiveQuery& to);

// True iff `a` and `b` are homomorphically equivalent as structures.
bool HomEquivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

}  // namespace sharpcq

#endif  // SHARPCQ_SOLVER_HOMOMORPHISM_H_
