#include "storage/catalog.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace sharpcq {

namespace {

constexpr std::string_view kManifestHeader = "sharpcq-manifest v1";

void SetStatus(Status* status, StatusCode code, std::string message) {
  if (status != nullptr) *status = Status(code, std::move(message));
}

bool EnsureDir(const std::string& path, Status* status) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return true;
  SetStatus(status, StatusCode::kIoError,
            "cannot create directory " + path + ": " + std::strerror(errno));
  return false;
}

// Database names become directory names; restrict them to a safe alphabet
// rather than letting "../evil" escape the root.
bool ValidName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return name != "." && name != "..";
}

std::string GenerationFile(std::uint64_t generation) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snapshot-%06llu.sharpcq",
                static_cast<unsigned long long>(generation));
  return buf;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// Cross-process ingest serialization: an exclusive flock on
// <dbdir>/LOCK held for the whole read-manifest -> write-snapshot ->
// swap-manifest sequence. Without it two processes could both read
// current=N and both install N+1, silently losing one writer.
class IngestLock {
 public:
  explicit IngestLock(const std::string& db_dir) {
    fd_ = ::open((db_dir + "/LOCK").c_str(), O_CREAT | O_RDWR, 0644);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~IngestLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  bool ok() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace

Catalog::Catalog(std::string root) : Catalog(std::move(root), Options()) {}

Catalog::Catalog(std::string root, Options options)
    : root_(std::move(root)), options_(std::move(options)) {}

std::string Catalog::DatabaseDir(const std::string& name) const {
  return root_ + "/" + name;
}

std::string Catalog::ManifestPath(const std::string& name) const {
  return DatabaseDir(name) + "/MANIFEST";
}

std::string Catalog::SnapshotPath(const std::string& name,
                                  std::uint64_t generation) const {
  return DatabaseDir(name) + "/" + GenerationFile(generation);
}

bool Catalog::WriteManifest(const std::string& name, std::uint64_t current,
                            const std::vector<std::uint64_t>& generations,
                            Status* status) {
  std::ostringstream out;
  out << kManifestHeader << "\n";
  out << "current " << current << "\n";
  for (std::uint64_t gen : generations) {
    out << "snapshot " << gen << " " << GenerationFile(gen) << "\n";
  }
  std::string text = out.str();
  return AtomicWriteFile(
      ManifestPath(name),
      {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()},
      status);
}

std::optional<std::vector<std::uint64_t>> Catalog::ReadGenerations(
    const std::string& name, std::uint64_t* current, Status* status) const {
  std::ifstream in(ManifestPath(name));
  if (!in) {
    SetStatus(status, StatusCode::kNotFound,
              "no database '" + name + "' under " + root_ +
                  " (missing manifest)");
    return std::nullopt;
  }
  std::string line;
  if (!std::getline(in, line) || StripWhitespace(line) != kManifestHeader) {
    SetStatus(status, StatusCode::kCorruptData,
              "malformed manifest for database '" + name + "'");
    return std::nullopt;
  }
  bool have_current = false;
  std::vector<std::uint64_t> generations;
  while (std::getline(in, line)) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    std::istringstream fields{std::string(stripped)};
    std::string kind;
    fields >> kind;
    if (kind == "current") {
      unsigned long long gen = 0;
      fields >> gen;
      *current = gen;
      have_current = true;
    } else if (kind == "snapshot") {
      unsigned long long gen = 0;
      fields >> gen;
      generations.push_back(gen);
    }
  }
  if (!have_current) {
    SetStatus(status, StatusCode::kCorruptData,
              "manifest for '" + name + "' has no current generation");
    return std::nullopt;
  }
  return generations;
}

std::optional<std::uint64_t> Catalog::CurrentGeneration(
    const std::string& name, Status* status) const {
  if (!ValidName(name)) {
    SetStatus(status, StatusCode::kInvalidArgument,
              "invalid database name '" + name + "'");
    return std::nullopt;
  }
  std::uint64_t current = 0;
  if (!ReadGenerations(name, &current, status).has_value()) {
    return std::nullopt;
  }
  return current;
}

void Catalog::ScavengeTmpFiles(const std::string& name) const {
  const std::string dir = DatabaseDir(name);
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (struct dirent* e = ::readdir(d)) {
    const std::string base = e->d_name;
    if (base.find(".tmp.") == std::string::npos) continue;
    ::unlink((dir + "/" + base).c_str());
  }
  ::closedir(d);
}

bool Catalog::VerifyGeneration(const std::string& name,
                               std::uint64_t generation, Status* status) {
  const std::string key = name + "#" + std::to_string(generation);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (verified_.count(key) != 0) return true;
  }
  if (!VerifySnapshot(SnapshotPath(name, generation), status)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  verified_.insert(key);
  return true;
}

void Catalog::QuarantineGeneration(const std::string& name,
                                   std::uint64_t generation) const {
  const std::string src = SnapshotPath(name, generation);
  if (!FileExists(src)) return;  // manifest pointed at a missing file
  const std::string dir = DatabaseDir(name) + "/corrupt";
  ::mkdir(dir.c_str(), 0755);
  const std::string dst = dir + "/" + GenerationFile(generation);
  if (::rename(src.c_str(), dst.c_str()) != 0) {
    // Quarantine is best-effort evidence preservation; what matters is
    // that the generation stops being served, which the manifest
    // rollback guarantees. Remove it so a later re-ingest of the same
    // generation number cannot resurrect the corrupt bytes.
    ::unlink(src.c_str());
  }
}

std::optional<std::uint64_t> Catalog::Ingest(const std::string& name,
                                             const Database& db,
                                             const ValueDict* dict,
                                             Status* status) {
  if (!ValidName(name)) {
    SetStatus(status, StatusCode::kInvalidArgument,
              "invalid database name '" + name + "'");
    return std::nullopt;
  }
  if (!EnsureDir(root_, status) || !EnsureDir(DatabaseDir(name), status)) {
    return std::nullopt;
  }
  // One ingest at a time per database: in-process via mu_-independent
  // file lock semantics — the flock also serializes ingests from other
  // processes sharing the catalog root.
  IngestLock lock(DatabaseDir(name));
  if (!lock.ok()) {
    SetStatus(status, StatusCode::kIoError,
              "cannot lock database '" + name + "' for ingest");
    return std::nullopt;
  }
  // No writer can be in flight while we hold the lock, so any temp file is
  // a crash leftover. Removing them here (not just in Open) also clears a
  // stale `.tmp.<pid>` whose pid the OS recycled to us — otherwise our own
  // O_EXCL open below would fail on a file we never wrote.
  ScavengeTmpFiles(name);
  std::uint64_t current = 0;
  std::vector<std::uint64_t> generations;
  if (FileExists(ManifestPath(name))) {
    // A present-but-unreadable manifest must fail the ingest: falling back
    // to generation 1 would rename over an existing immutable snapshot a
    // reader may be mapping. Only a missing manifest means "fresh".
    auto existing = ReadGenerations(name, &current, status);
    if (!existing.has_value()) return std::nullopt;
    generations = std::move(*existing);
  }
  const std::uint64_t next = current + 1;
  // The snapshot lands first; the manifest swap is the commit point. A
  // crash in between leaves an unreferenced snapshot file, never a
  // manifest pointing at a missing or partial one.
  if (!WriteSnapshot(db, dict, SnapshotPath(name, next), status)
           .has_value()) {
    return std::nullopt;
  }
  generations.push_back(next);
  if (SHARPCQ_FAILPOINT("catalog.manifest_swap") != FailpointAction::kNone) {
    SetStatus(status, StatusCode::kIoError,
              "manifest swap for '" + name + "': injected fault");
    return std::nullopt;
  }
  if (!WriteManifest(name, next, generations, status)) return std::nullopt;
  return next;
}

std::shared_ptr<const Catalog::Entry> Catalog::Open(const std::string& name,
                                                    Status* status) {
  if (!ValidName(name)) {
    SetStatus(status, StatusCode::kInvalidArgument,
              "invalid database name '" + name + "'");
    return nullptr;
  }
  // First open of this name in this process: clear crash leftovers. Under
  // the ingest flock so a live writer's temp file is never touched.
  bool scavenge = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    scavenge = scavenged_.insert(name).second;
  }
  if (scavenge && FileExists(DatabaseDir(name))) {
    IngestLock lock(DatabaseDir(name));
    if (lock.ok()) ScavengeTmpFiles(name);
  }

  std::uint64_t current = 0;
  std::optional<std::vector<std::uint64_t>> generations =
      ReadGenerations(name, &current, status);
  if (!generations.has_value()) return nullptr;

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = open_.find(name);
    if (it != open_.end() && it->second->generation == current) {
      return it->second;
    }
  }

  // Candidate generations, newest first: the manifest's current, then
  // every older retained generation. A generation that fails its checksum
  // pass is quarantined and the next older one is tried — serving known-
  // good data beats failing the open (graceful degradation).
  std::vector<std::uint64_t> candidates = *generations;
  candidates.push_back(current);
  std::sort(candidates.begin(), candidates.end(),
            std::greater<std::uint64_t>());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  candidates.erase(
      std::remove_if(candidates.begin(), candidates.end(),
                     [current](std::uint64_t g) { return g > current; }),
      candidates.end());

  std::vector<std::uint64_t> quarantined;
  for (std::uint64_t gen : candidates) {
    Status verify_status;
    if (!VerifyGeneration(name, gen, &verify_status)) {
      QuarantineGeneration(name, gen);
      quarantined.push_back(gen);
      continue;
    }

    std::optional<LoadedSnapshot> loaded =
        LoadSnapshot(SnapshotPath(name, gen), options_.load_mode, status);
    if (!loaded.has_value()) return nullptr;  // verified then unreadable: I/O

    if (!quarantined.empty()) {
      // Roll the manifest back to this generation so the next open (and
      // other processes) skip the dead ones. Under the ingest lock, and
      // only if no ingest advanced the manifest meanwhile.
      IngestLock lock(DatabaseDir(name));
      if (lock.ok()) {
        std::uint64_t now_current = 0;
        Status ignored;
        auto now = ReadGenerations(name, &now_current, &ignored);
        if (now.has_value() && now_current == current) {
          std::vector<std::uint64_t> keep;
          for (std::uint64_t g : *now) {
            if (std::find(quarantined.begin(), quarantined.end(), g) ==
                quarantined.end()) {
              keep.push_back(g);
            }
          }
          Status rollback_status;
          WriteManifest(name, gen, keep, &rollback_status);
        }
      }
    }

    auto entry = std::make_shared<Entry>();
    entry->name = name;
    entry->generation = gen;
    entry->db = std::make_shared<const Database>(std::move(loaded->db));
    entry->dict = std::make_shared<const ValueDict>(std::move(loaded->dict));
    entry->info = std::move(loaded->info);
    entry->mode = options_.load_mode;
    entry->profile = BuildDataProfile(*entry->db);

    std::lock_guard<std::mutex> lock(mu_);
    // The engine outlives generations on purpose: plans depend only on the
    // query shape, so a data swap must not cold-start the plan cache.
    auto [engine_it, inserted] = engines_.emplace(name, nullptr);
    if (inserted) {
      engine_it->second = std::make_shared<CountingEngine>(options_.engine);
    }
    entry->engine = engine_it->second;
    // Two threads may have loaded the same generation concurrently; last
    // one wins, both entries are equivalent and immutable.
    open_[name] = entry;
    return entry;
  }

  SetStatus(status, StatusCode::kCorruptData,
            "no retained generation of '" + name +
                "' passes verification (all quarantined under " +
                DatabaseDir(name) + "/corrupt)");
  return nullptr;
}

std::vector<std::string> Catalog::ListDatabases() const {
  std::vector<std::string> names;
  DIR* dir = ::opendir(root_.c_str());
  if (dir == nullptr) return names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (!ValidName(name)) continue;
    struct stat st;
    if (::stat(ManifestPath(name).c_str(), &st) == 0) {
      names.push_back(std::move(name));
    }
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace sharpcq
