#include "storage/catalog.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/string_util.h"

namespace sharpcq {

namespace {

constexpr std::string_view kManifestHeader = "sharpcq-manifest v1";

bool EnsureDir(const std::string& path, std::string* error) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return true;
  if (error != nullptr) {
    *error = "cannot create directory " + path + ": " + std::strerror(errno);
  }
  return false;
}

// Database names become directory names; restrict them to a safe alphabet
// rather than letting "../evil" escape the root.
bool ValidName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return name != "." && name != "..";
}

std::string GenerationFile(std::uint64_t generation) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snapshot-%06llu.sharpcq",
                static_cast<unsigned long long>(generation));
  return buf;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// Cross-process ingest serialization: an exclusive flock on
// <dbdir>/LOCK held for the whole read-manifest -> write-snapshot ->
// swap-manifest sequence. Without it two processes could both read
// current=N and both install N+1, silently losing one writer.
class IngestLock {
 public:
  explicit IngestLock(const std::string& db_dir) {
    fd_ = ::open((db_dir + "/LOCK").c_str(), O_CREAT | O_RDWR, 0644);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~IngestLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  bool ok() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace

Catalog::Catalog(std::string root) : Catalog(std::move(root), Options()) {}

Catalog::Catalog(std::string root, Options options)
    : root_(std::move(root)), options_(std::move(options)) {}

std::string Catalog::DatabaseDir(const std::string& name) const {
  return root_ + "/" + name;
}

std::string Catalog::ManifestPath(const std::string& name) const {
  return DatabaseDir(name) + "/MANIFEST";
}

std::string Catalog::SnapshotPath(const std::string& name,
                                  std::uint64_t generation) const {
  return DatabaseDir(name) + "/" + GenerationFile(generation);
}

bool Catalog::WriteManifest(const std::string& name, std::uint64_t current,
                            const std::vector<std::uint64_t>& generations,
                            std::string* error) {
  std::ostringstream out;
  out << kManifestHeader << "\n";
  out << "current " << current << "\n";
  for (std::uint64_t gen : generations) {
    out << "snapshot " << gen << " " << GenerationFile(gen) << "\n";
  }
  std::string text = out.str();
  return AtomicWriteFile(
      ManifestPath(name),
      {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()},
      error);
}

std::optional<std::vector<std::uint64_t>> Catalog::ReadGenerations(
    const std::string& name, std::uint64_t* current,
    std::string* error) const {
  std::ifstream in(ManifestPath(name));
  if (!in) {
    if (error != nullptr) {
      *error = "no database '" + name + "' under " + root_ +
               " (missing manifest)";
    }
    return std::nullopt;
  }
  std::string line;
  if (!std::getline(in, line) || StripWhitespace(line) != kManifestHeader) {
    if (error != nullptr) {
      *error = "malformed manifest for database '" + name + "'";
    }
    return std::nullopt;
  }
  bool have_current = false;
  std::vector<std::uint64_t> generations;
  while (std::getline(in, line)) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    std::istringstream fields{std::string(stripped)};
    std::string kind;
    fields >> kind;
    if (kind == "current") {
      unsigned long long gen = 0;
      fields >> gen;
      *current = gen;
      have_current = true;
    } else if (kind == "snapshot") {
      unsigned long long gen = 0;
      fields >> gen;
      generations.push_back(gen);
    }
  }
  if (!have_current) {
    if (error != nullptr) {
      *error = "manifest for '" + name + "' has no current generation";
    }
    return std::nullopt;
  }
  return generations;
}

std::optional<std::uint64_t> Catalog::CurrentGeneration(
    const std::string& name, std::string* error) const {
  if (!ValidName(name)) {
    if (error != nullptr) *error = "invalid database name '" + name + "'";
    return std::nullopt;
  }
  std::uint64_t current = 0;
  if (!ReadGenerations(name, &current, error).has_value()) {
    return std::nullopt;
  }
  return current;
}

std::optional<std::uint64_t> Catalog::Ingest(const std::string& name,
                                             const Database& db,
                                             const ValueDict* dict,
                                             std::string* error) {
  if (!ValidName(name)) {
    if (error != nullptr) *error = "invalid database name '" + name + "'";
    return std::nullopt;
  }
  if (!EnsureDir(root_, error) || !EnsureDir(DatabaseDir(name), error)) {
    return std::nullopt;
  }
  // One ingest at a time per database: in-process via mu_-independent
  // file lock semantics — the flock also serializes ingests from other
  // processes sharing the catalog root.
  IngestLock lock(DatabaseDir(name));
  if (!lock.ok()) {
    if (error != nullptr) {
      *error = "cannot lock database '" + name + "' for ingest";
    }
    return std::nullopt;
  }
  std::uint64_t current = 0;
  std::vector<std::uint64_t> generations;
  if (FileExists(ManifestPath(name))) {
    // A present-but-unreadable manifest must fail the ingest: falling back
    // to generation 1 would rename over an existing immutable snapshot a
    // reader may be mapping. Only a missing manifest means "fresh".
    auto existing = ReadGenerations(name, &current, error);
    if (!existing.has_value()) return std::nullopt;
    generations = std::move(*existing);
  }
  const std::uint64_t next = current + 1;
  // The snapshot lands first; the manifest swap is the commit point. A
  // crash in between leaves an unreferenced snapshot file, never a
  // manifest pointing at a missing or partial one.
  if (!WriteSnapshot(db, dict, SnapshotPath(name, next), error).has_value()) {
    return std::nullopt;
  }
  generations.push_back(next);
  if (!WriteManifest(name, next, generations, error)) return std::nullopt;
  return next;
}

std::shared_ptr<const Catalog::Entry> Catalog::Open(const std::string& name,
                                                    std::string* error) {
  if (!ValidName(name)) {
    if (error != nullptr) *error = "invalid database name '" + name + "'";
    return nullptr;
  }
  std::uint64_t current = 0;
  if (!ReadGenerations(name, &current, error).has_value()) return nullptr;

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = open_.find(name);
    if (it != open_.end() && it->second->generation == current) {
      return it->second;
    }
  }

  std::optional<LoadedSnapshot> loaded =
      LoadSnapshot(SnapshotPath(name, current), options_.load_mode, error);
  if (!loaded.has_value()) return nullptr;

  auto entry = std::make_shared<Entry>();
  entry->name = name;
  entry->generation = current;
  entry->db = std::make_shared<const Database>(std::move(loaded->db));
  entry->dict = std::make_shared<const ValueDict>(std::move(loaded->dict));
  entry->info = std::move(loaded->info);
  entry->mode = options_.load_mode;
  entry->profile = BuildDataProfile(*entry->db);

  std::lock_guard<std::mutex> lock(mu_);
  // The engine outlives generations on purpose: plans depend only on the
  // query shape, so a data swap must not cold-start the plan cache.
  auto [engine_it, inserted] = engines_.emplace(name, nullptr);
  if (inserted) {
    engine_it->second = std::make_shared<CountingEngine>(options_.engine);
  }
  entry->engine = engine_it->second;
  // Two threads may have loaded the same generation concurrently; last one
  // wins, both entries are equivalent and immutable.
  open_[name] = entry;
  return entry;
}

std::vector<std::string> Catalog::ListDatabases() const {
  std::vector<std::string> names;
  DIR* dir = ::opendir(root_.c_str());
  if (dir == nullptr) return names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (!ValidName(name)) continue;
    struct stat st;
    if (::stat(ManifestPath(name).c_str(), &st) == 0) {
      names.push_back(std::move(name));
    }
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace sharpcq
