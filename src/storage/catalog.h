#ifndef SHARPCQ_STORAGE_CATALOG_H_
#define SHARPCQ_STORAGE_CATALOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/engine.h"
#include "storage/snapshot.h"
#include "util/status.h"

namespace sharpcq {

// Durable, named databases on disk. Each database is a directory
//
//   <root>/<name>/MANIFEST                    current + retained generations
//   <root>/<name>/snapshot-<gen>.sharpcq      immutable snapshot files
//   <root>/<name>/corrupt/                    quarantined generations
//
// Generations are immutable once written; ingest writes generation N+1 and
// then swaps the manifest atomically (AtomicWriteFile), so a reader either
// sees the old generation or the new one — never a torn state — and
// requests already serving the old generation keep their shared_ptr alive
// until they finish (ingest-while-serving).
//
// Crash recovery (see DESIGN.md "Failure model & recovery"): both Open and
// Ingest scavenge stale `*.tmp.*` files left by crashed writers (under the
// per-database flock, so an in-flight writer's temp file is never
// touched — this also defuses the recycled-pid O_EXCL collision). Open
// verifies a generation's checksums before first serving it (cached per
// (name, generation), so the full pass runs once per process); a
// generation that fails verification is moved to corrupt/ and the catalog
// rolls the manifest back to the newest generation that verifies. Only
// when no generation verifies does Open fail, with kCorruptData.
//
// Open() hands out the current generation as an immutable Entry: the
// database (columnar, mapped by default), its dictionary, its data profile
// (per-relation statistics, from the snapshot's persisted stats section),
// and the per-database CountingEngine. The engine is shared across
// generations of the same name, so the plan cache stays warm over data
// swaps that keep the same statistical shape; a swap that changes a
// relation's size class or distinct-count class changes the profile
// fingerprint and re-plans on first use (see engine/planner.h).
class Catalog {
 public:
  struct Options {
    SnapshotLoadMode load_mode = SnapshotLoadMode::kMapped;
    EngineOptions engine;
  };

  explicit Catalog(std::string root);  // default Options
  Catalog(std::string root, Options options);

  struct Entry {
    std::string name;
    std::uint64_t generation = 0;
    std::shared_ptr<const Database> db;
    std::shared_ptr<const ValueDict> dict;
    std::shared_ptr<CountingEngine> engine;
    SnapshotInfo info;
    SnapshotLoadMode mode = SnapshotLoadMode::kMapped;
    // This generation's data profile over all relations. Free for v2
    // snapshots (stats ride in the file); v1 generations pay one lazy
    // stats pass on open. The engine keys cached plans on the profile's
    // fingerprint, so a swap to a different data class re-plans while an
    // equivalent re-ingest keeps the cache warm.
    DataProfile profile;
  };

  // Writes `db` as the next generation of `name` and swaps the manifest.
  // Returns the new generation number, or nullopt with *status set:
  // kInvalidArgument (bad name), kIoError (write/lock failure, including
  // injected faults at the storage.* / catalog.manifest_swap sites), or
  // kCorruptData (existing manifest unreadable).
  std::optional<std::uint64_t> Ingest(const std::string& name,
                                      const Database& db,
                                      const ValueDict* dict,
                                      Status* status);

  // The current generation of `name`, loading it on first access or after
  // an ingest moved the manifest. Entries are cached per (name, generation)
  // so repeated opens are O(manifest read). Failure codes: kNotFound (no
  // such database), kCorruptData (manifest unreadable, or no retained
  // generation passes verification), kIoError, kInvalidArgument.
  std::shared_ptr<const Entry> Open(const std::string& name, Status* status);

  // Database names present under the root (directories with a MANIFEST).
  std::vector<std::string> ListDatabases() const;

  // The manifest's current generation without loading data (kNotFound when
  // the database does not exist).
  std::optional<std::uint64_t> CurrentGeneration(const std::string& name,
                                                 Status* status) const;

  std::string SnapshotPath(const std::string& name,
                           std::uint64_t generation) const;
  const std::string& root() const { return root_; }

 private:
  std::string DatabaseDir(const std::string& name) const;
  std::string ManifestPath(const std::string& name) const;
  bool WriteManifest(const std::string& name, std::uint64_t current,
                     const std::vector<std::uint64_t>& generations,
                     Status* status);
  std::optional<std::vector<std::uint64_t>> ReadGenerations(
      const std::string& name, std::uint64_t* current, Status* status) const;
  // Deletes every `*.tmp.*` under the database directory. Callers must
  // hold the per-database ingest flock: under it no writer is in flight,
  // so every temp file is an orphan from a crash (or from an earlier
  // incarnation of this pid — the O_EXCL collision this fixes).
  void ScavengeTmpFiles(const std::string& name) const;
  // Full checksum pass over a generation, memoized per (name, generation)
  // so a mapped-mode catalog pays the page-touching verify once.
  bool VerifyGeneration(const std::string& name, std::uint64_t generation,
                        Status* status);
  // Moves a failed generation's snapshot into <dbdir>/corrupt/ so the
  // evidence survives rollback without ever being served again.
  void QuarantineGeneration(const std::string& name,
                            std::uint64_t generation) const;

  std::string root_;
  Options options_;

  mutable std::mutex mu_;  // guards the caches below
  std::unordered_map<std::string, std::shared_ptr<const Entry>> open_;
  std::unordered_map<std::string, std::shared_ptr<CountingEngine>> engines_;
  // Names already scavenged by Open this process (Ingest re-scavenges
  // every time — it holds the lock anyway).
  std::unordered_set<std::string> scavenged_;
  // "<name>#<generation>" keys that passed VerifySnapshot.
  std::unordered_set<std::string> verified_;
};

}  // namespace sharpcq

#endif  // SHARPCQ_STORAGE_CATALOG_H_
