#include "storage/mem_map.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sharpcq {

namespace {

void SetErrno(Status* status, const std::string& what,
              const std::string& path) {
  if (status == nullptr) return;
  const StatusCode code =
      errno == ENOENT ? StatusCode::kNotFound : StatusCode::kIoError;
  *status = Status(code, what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

std::shared_ptr<const MemMap> MemMap::Open(const std::string& path,
                                           Status* status) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetErrno(status, "cannot open", path);
    return nullptr;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    SetErrno(status, "cannot stat", path);
    ::close(fd);
    return nullptr;
  }
  std::size_t size = static_cast<std::size_t>(st.st_size);
  const std::uint8_t* data = nullptr;
  if (size > 0) {
    void* ptr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (ptr == MAP_FAILED) {
      SetErrno(status, "cannot mmap", path);
      ::close(fd);
      return nullptr;
    }
    data = static_cast<const std::uint8_t*>(ptr);
  }
  // The mapping survives the descriptor; closing keeps the fd table small
  // no matter how many snapshots a catalog serves.
  ::close(fd);
  return std::shared_ptr<const MemMap>(new MemMap(data, size));
}

MemMap::~MemMap() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

}  // namespace sharpcq
