#ifndef SHARPCQ_STORAGE_MEM_MAP_H_
#define SHARPCQ_STORAGE_MEM_MAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace sharpcq {

// Read-only memory mapping of a file. The mapping lives as long as the
// MemMap object; the storage layer shares it through shared_ptr so tables
// aliasing the mapped pages (Table::FromExternal) keep the file resident
// for exactly as long as any table handle does — the mmap lifetime rule of
// DESIGN.md's Storage section. Pages are shared (MAP_SHARED read-only), so
// several processes serving the same snapshot use one physical copy.
class MemMap {
 public:
  // Maps `path` read-only; returns nullptr with the reason in *status on
  // failure — kNotFound when the file does not exist, kIoError otherwise.
  // An empty file maps to a valid zero-length MemMap.
  static std::shared_ptr<const MemMap> Open(const std::string& path,
                                            Status* status);

  ~MemMap();
  MemMap(const MemMap&) = delete;
  MemMap& operator=(const MemMap&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  MemMap(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  const std::uint8_t* data_;
  std::size_t size_;
};

}  // namespace sharpcq

#endif  // SHARPCQ_STORAGE_MEM_MAP_H_
