#include "storage/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cstring>
#include <numeric>
#include <unordered_map>

#include "algebra/table.h"
#include "storage/mem_map.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/hash.h"

namespace sharpcq {

namespace {

// The header checksum sits in the last 8 header bytes, so its offset moved
// when v2 appended the stats-section triple (offset/bytes/checksum) to the
// header.
constexpr std::size_t kHeaderChecksumOffsetV1 = 0x60;
constexpr std::size_t kHeaderChecksumOffsetV2 = 0x78;

std::size_t Align8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

bool HostIsLittleEndian() {
  return std::endian::native == std::endian::little;
}

void SetStatus(Status* status, StatusCode code, std::string message) {
  if (status != nullptr) *status = Status(code, std::move(message));
}

// --- serialization helpers -------------------------------------------------

void AppendU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void AppendU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PokeU64(std::vector<std::uint8_t>* out, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*out)[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void PokeU32(std::vector<std::uint8_t>* out, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*out)[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void PadTo8(std::vector<std::uint8_t>* out) {
  while (out->size() % 8 != 0) out->push_back(0);
}

// Bounds-checked cursor over the mapped bytes: every read is validated, so
// truncated or foreign files fail with an error, never with UB.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t offset() const { return offset_; }
  bool ok() const { return ok_; }

  std::uint32_t ReadU32() { return static_cast<std::uint32_t>(ReadLE(4)); }
  std::uint64_t ReadU64() { return ReadLE(8); }

  std::span<const std::uint8_t> ReadBytes(std::size_t n) {
    if (!Ensure(n)) return {};
    std::span<const std::uint8_t> out(data_ + offset_, n);
    offset_ += n;
    return out;
  }

  void SeekTo(std::size_t offset) {
    if (offset > size_) {
      ok_ = false;
      return;
    }
    offset_ = offset;
  }

 private:
  bool Ensure(std::size_t n) {
    if (!ok_ || size_ - offset_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::uint64_t ReadLE(std::size_t n) {
    if (!Ensure(n)) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[offset_ + i]) << (8 * i);
    }
    offset_ += n;
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
  bool ok_ = true;
};

std::uint64_t ChecksumBytes(std::span<const std::uint8_t> bytes) {
  return HashRange(bytes.begin(), bytes.end(), /*seed=*/0x53515243u);
}

std::uint64_t ChecksumValues(std::span<const Value> values) {
  return HashRange(values.begin(), values.end(), /*seed=*/0x53515243u);
}

// Value load that tolerates any alignment (owned mode copies; checksum
// verification streams) without aliasing games.
Value LoadValueAt(const std::uint8_t* p) {
  Value v;
  std::memcpy(&v, p, sizeof(Value));
  return v;
}

std::uint64_t ChecksumRawColumn(const std::uint8_t* p, std::uint64_t rows) {
  std::uint64_t h = 0x53515243u;
  for (std::uint64_t i = 0; i < rows; ++i) {
    h = HashCombine(h, static_cast<std::size_t>(LoadValueAt(p + i * 8)));
  }
  return h;
}

// --- atomic install --------------------------------------------------------

std::string DirOf(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool FsyncPath(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

// Streaming write-to-temp + fsync + rename: a crash (or an abandoned,
// uncommitted writer) leaves either the old file or nothing new, never a
// torn mix. The O_EXCL temp open (ursadb's ExclusiveFile) stops two
// writers *in one process* from interleaving on one temp file; temp names
// are pid-suffixed, so cross-process mutual exclusion is the caller's job
// (the catalog holds a per-database flock during ingest). Streaming keeps
// the snapshot writer's peak memory at the staging columns alone — the
// file is never fully buffered.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(const std::string& path)
      : path_(path), tmp_(path + ".tmp." + std::to_string(::getpid())) {
    if (SHARPCQ_FAILPOINT("storage.tmp_open") != FailpointAction::kNone) {
      errno = EIO;  // fd_ stays -1: callers report a failed open
      return;
    }
    fd_ = ::open(tmp_.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  }

  ~AtomicFileWriter() {
    if (fd_ >= 0) {
      ::close(fd_);
      ::unlink(tmp_.c_str());
    }
  }

  bool ok() const { return fd_ >= 0; }

  bool Append(std::span<const std::uint8_t> bytes, Status* status) {
    const FailpointAction injected = SHARPCQ_FAILPOINT("storage.write");
    if (injected == FailpointAction::kShortWrite) {
      // Persist a prefix, then fail — the torn shape a power cut leaves in
      // the temp file. The commit never runs, so the torn bytes stay on the
      // uncommitted side of the rename barrier.
      WriteAll(bytes.subspan(0, bytes.size() / 2), nullptr);
      SetStatus(status, StatusCode::kIoError,
                "write " + tmp_ + ": injected short write");
      return false;
    }
    if (injected != FailpointAction::kNone) {
      SetStatus(status, StatusCode::kIoError,
                "write " + tmp_ + ": injected fault");
      return false;
    }
    return WriteAll(bytes, status);
  }

  bool WriteAll(std::span<const std::uint8_t> bytes, Status* status) {
    std::size_t written = 0;
    while (written < bytes.size()) {
      ssize_t n = ::write(fd_, bytes.data() + written,
                          bytes.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        SetStatus(status, StatusCode::kIoError, "write " + tmp_ + ": " + std::strerror(errno));
        return false;
      }
      written += static_cast<std::size_t>(n);
    }
    return true;
  }

  // fsync + rename over the destination; the rename is the commit point.
  bool Commit(Status* status) {
    if (SHARPCQ_FAILPOINT("storage.fsync") != FailpointAction::kNone) {
      SetStatus(status, StatusCode::kIoError,
                "fsync " + tmp_ + ": injected fault");
      return false;
    }
    if (::fsync(fd_) != 0) {
      SetStatus(status, StatusCode::kIoError, "fsync " + tmp_ + ": " + std::strerror(errno));
      return false;
    }
    ::close(fd_);
    fd_ = -1;  // past this point the dtor must not close or unlink
    if (SHARPCQ_FAILPOINT("storage.rename") != FailpointAction::kNone) {
      SetStatus(status, StatusCode::kIoError,
                "rename " + tmp_ + " -> " + path_ + ": injected fault");
      ::unlink(tmp_.c_str());
      return false;
    }
    if (::rename(tmp_.c_str(), path_.c_str()) != 0) {
      SetStatus(status, StatusCode::kIoError, "rename " + tmp_ + " -> " + path_ + ": " +
                          std::strerror(errno));
      ::unlink(tmp_.c_str());
      return false;
    }
    FsyncPath(DirOf(path_));  // persist the rename itself
    return true;
  }

 private:
  std::string path_;
  std::string tmp_;
  int fd_ = -1;
};

}  // namespace

bool AtomicWriteFile(const std::string& path,
                     std::span<const std::uint8_t> bytes,
                     Status* status) {
  AtomicFileWriter writer(path);
  if (!writer.ok()) {
    SetStatus(status, StatusCode::kIoError, "cannot create temp file for " + path + ": " +
                        std::strerror(errno));
    return false;
  }
  return writer.Append(bytes, status) && writer.Commit(status);
}

// --- SnapshotWriter --------------------------------------------------------

void SnapshotWriter::DeclareRelation(const std::string& relation, int arity) {
  SHARPCQ_CHECK(arity >= 0);
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    Pending pending;
    pending.arity = arity;
    pending.cols.resize(static_cast<std::size_t>(arity));
    relations_.emplace(relation, std::move(pending));
    return;
  }
  SHARPCQ_CHECK_MSG(it->second.arity == arity, relation.c_str());
}

void SnapshotWriter::AddRow(const std::string& relation,
                            std::span<const Value> row) {
  DeclareRelation(relation, static_cast<int>(row.size()));
  Pending& pending = relations_[relation];
  for (std::size_t c = 0; c < row.size(); ++c) {
    pending.cols[c].push_back(row[c]);
  }
  ++pending.rows;
}

void SnapshotWriter::AddRelation(const std::string& name,
                                 const Relation& rel) {
  DeclareRelation(name, rel.arity());
  for (std::size_t i = 0; i < rel.size(); ++i) AddRow(name, rel.Row(i));
}

void SnapshotWriter::AddDatabase(const Database& db) {
  std::vector<Value> row;
  for (const std::string& name : db.SortedRelationNames()) {
    std::shared_ptr<const Table> table = db.ColumnarBacking(name);
    if (table == nullptr) {
      AddRelation(name, db.relation(name));
      continue;
    }
    DeclareRelation(name, table->arity());
    row.resize(static_cast<std::size_t>(table->arity()));
    for (std::size_t i = 0; i < table->rows(); ++i) {
      for (int c = 0; c < table->arity(); ++c) {
        row[static_cast<std::size_t>(c)] = table->at(i, c);
      }
      AddRow(name, row);
    }
  }
}

void SnapshotWriter::set_format_version(std::uint32_t version) {
  SHARPCQ_CHECK(version == kSnapshotVersion || version == kSnapshotVersionV1);
  format_version_ = version;
}

std::optional<int> SnapshotWriter::RelationArity(
    const std::string& relation) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return std::nullopt;
  return it->second.arity;
}

std::size_t SnapshotWriter::pending_rows() const {
  std::size_t total = 0;
  for (const auto& [name, pending] : relations_) total += pending.rows;
  return total;
}

std::optional<SnapshotWriteStats> SnapshotWriter::Finish(
    const std::string& path, const ValueDict* dict, Status* status) {
  SHARPCQ_CHECK_MSG(HostIsLittleEndian(),
                    "snapshot writing requires a little-endian host");
  // Canonicalize every relation: rows sorted lexicographically and
  // deduplicated. Snapshots of the same logical database are byte-stable
  // no matter the insertion order.
  for (auto& [name, pending] : relations_) {
    if (pending.arity == 0) {
      pending.rows = pending.rows > 0 ? 1 : 0;  // a set holds <= 1 empty row
      continue;
    }
    std::vector<std::uint32_t> order(pending.rows);
    std::iota(order.begin(), order.end(), 0);
    const auto& cols = pending.cols;
    auto row_less = [&cols](std::uint32_t a, std::uint32_t b) {
      for (const auto& col : cols) {
        if (col[a] != col[b]) return col[a] < col[b];
      }
      return false;
    };
    auto row_eq = [&cols](std::uint32_t a, std::uint32_t b) {
      for (const auto& col : cols) {
        if (col[a] != col[b]) return false;
      }
      return true;
    };
    std::sort(order.begin(), order.end(), row_less);
    order.erase(std::unique(order.begin(), order.end(), row_eq), order.end());
    std::vector<std::vector<Value>> canonical(cols.size());
    for (std::size_t c = 0; c < cols.size(); ++c) {
      canonical[c].reserve(order.size());
      for (std::uint32_t id : order) canonical[c].push_back(cols[c][id]);
    }
    pending.cols = std::move(canonical);
    pending.rows = order.size();
  }

  // Serialize: header placeholder, dict arena, toc, stats (v2), column
  // data. Offsets are poked into the header and toc once known.
  const bool with_stats = format_version_ == kSnapshotVersion;
  const std::size_t header_bytes =
      with_stats ? kSnapshotHeaderBytes : kSnapshotHeaderBytesV1;
  std::vector<std::uint8_t> out;
  out.resize(header_bytes, 0);

  const std::size_t dict_offset = out.size();
  const std::size_t dict_count = dict != nullptr ? dict->size() : 0;
  for (std::size_t v = 0; v < dict_count; ++v) {
    std::string name = dict->NameOf(static_cast<Value>(v));
    AppendU32(&out, static_cast<std::uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
  }
  const std::size_t dict_bytes = out.size() - dict_offset;
  const std::uint64_t dict_checksum =
      ChecksumBytes({out.data() + dict_offset, dict_bytes});
  PadTo8(&out);

  // Column segments start after the toc; the toc stores absolute offsets,
  // so lay out the data region first.
  const std::size_t toc_offset = out.size();
  std::size_t toc_bytes = 0;
  for (const auto& [name, pending] : relations_) {
    toc_bytes += 4 + 4 + 8 +
                 static_cast<std::size_t>(pending.arity) * 16 + name.size();
  }
  const std::size_t stats_offset = Align8(toc_offset + toc_bytes);
  std::size_t stats_bytes = 0;
  if (with_stats) {
    for (const auto& [name, pending] : relations_) {
      stats_bytes += static_cast<std::size_t>(pending.arity) *
                     kSnapshotStatsBytesPerColumn;
    }
  }
  // kSnapshotStatsBytesPerColumn is a multiple of 8, so the data region
  // stays aligned; for v1 this degenerates to the historical
  // Align8(toc end) and the layout is byte-identical to old writers.
  const std::size_t data_offset = stats_offset + stats_bytes;
  std::size_t cursor = data_offset;
  std::map<std::string, std::vector<std::uint64_t>> col_offsets;
  for (const auto& [name, pending] : relations_) {
    auto& offsets = col_offsets[name];
    for (int c = 0; c < pending.arity; ++c) {
      offsets.push_back(cursor);
      cursor += pending.rows * 8;
    }
  }
  const std::uint64_t file_bytes = cursor;

  for (const auto& [name, pending] : relations_) {
    AppendU32(&out, static_cast<std::uint32_t>(name.size()));
    AppendU32(&out, static_cast<std::uint32_t>(pending.arity));
    AppendU64(&out, pending.rows);
    const auto& offsets = col_offsets[name];
    for (int c = 0; c < pending.arity; ++c) {
      AppendU64(&out, offsets[static_cast<std::size_t>(c)]);
      AppendU64(&out, ChecksumValues(pending.cols[static_cast<std::size_t>(c)]));
    }
    out.insert(out.end(), name.begin(), name.end());
  }
  SHARPCQ_CHECK(out.size() - toc_offset == toc_bytes);
  const std::uint64_t toc_checksum =
      ChecksumBytes({out.data() + toc_offset, toc_bytes});
  PadTo8(&out);
  SHARPCQ_CHECK(out.size() == stats_offset);

  // Stats section: per relation (toc order), per column, the TableStats
  // fields. The value-count map iterates in hash order, but every emitted
  // quantity (distinct count, max group, histogram tallies) is an
  // order-independent aggregate, so the section — like the rest of the
  // file — is a pure function of the logical database.
  std::uint64_t stats_checksum = 0;
  if (with_stats) {
    std::unordered_map<Value, std::uint64_t> counts;
    for (const auto& [name, pending] : relations_) {
      for (int c = 0; c < pending.arity; ++c) {
        counts.clear();
        for (Value v : pending.cols[static_cast<std::size_t>(c)]) {
          ++counts[v];
        }
        std::uint64_t max_group = 0;
        std::array<std::uint32_t, kDegreeHistogramBuckets> histogram{};
        for (const auto& [value, group] : counts) {
          max_group = std::max(max_group, group);
          ++histogram[DegreeBucket(group)];
        }
        AppendU64(&out, counts.size());
        AppendU64(&out, max_group);
        for (std::uint32_t bucket : histogram) AppendU32(&out, bucket);
      }
    }
    SHARPCQ_CHECK(out.size() - stats_offset == stats_bytes);
    stats_checksum = ChecksumBytes({out.data() + stats_offset, stats_bytes});
  }
  SHARPCQ_CHECK(out.size() == data_offset);

  SnapshotWriteStats stats;
  stats.relations = relations_.size();
  for (const auto& [name, pending] : relations_) stats.tuples += pending.rows;
  stats.bytes = file_bytes;

  PokeU64(&out, 0x00, kSnapshotMagic);
  PokeU32(&out, 0x08, format_version_);
  PokeU32(&out, 0x0c, kSnapshotFlagLittleEndian);
  PokeU64(&out, 0x10, relations_.size());
  PokeU64(&out, 0x18, dict_count);
  PokeU64(&out, 0x20, dict_offset);
  PokeU64(&out, 0x28, dict_bytes);
  PokeU64(&out, 0x30, dict_checksum);
  PokeU64(&out, 0x38, toc_offset);
  PokeU64(&out, 0x40, toc_bytes);
  PokeU64(&out, 0x48, toc_checksum);
  PokeU64(&out, 0x50, data_offset);
  PokeU64(&out, 0x58, file_bytes);
  if (with_stats) {
    PokeU64(&out, 0x60, stats_offset);
    PokeU64(&out, 0x68, stats_bytes);
    PokeU64(&out, 0x70, stats_checksum);
    PokeU64(&out, kHeaderChecksumOffsetV2,
            ChecksumBytes({out.data(), kHeaderChecksumOffsetV2}));
  } else {
    PokeU64(&out, kHeaderChecksumOffsetV1,
            ChecksumBytes({out.data(), kHeaderChecksumOffsetV1}));
  }

  // Stream: front matter first, then each column, releasing its staging
  // buffer as it lands — peak memory stays at the staging columns alone,
  // never the whole serialized file.
  AtomicFileWriter writer(path);
  if (!writer.ok()) {
    SetStatus(status, StatusCode::kIoError, "cannot create temp file for " + path + ": " +
                        std::strerror(errno));
    return std::nullopt;
  }
  if (!writer.Append(out, status)) return std::nullopt;
  for (auto& [name, pending] : relations_) {
    for (auto& col : pending.cols) {
      if (!writer.Append({reinterpret_cast<const std::uint8_t*>(col.data()),
                          col.size() * sizeof(Value)},
                         status)) {
        return std::nullopt;
      }
      std::vector<Value>().swap(col);
    }
  }
  if (!writer.Commit(status)) return std::nullopt;
  relations_.clear();
  return stats;
}

// --- reading ---------------------------------------------------------------

std::uint64_t SnapshotInfo::TotalTuples() const {
  std::uint64_t total = 0;
  for (const SnapshotRelationInfo& rel : relations) total += rel.rows;
  return total;
}

namespace {

// Validates everything cheap (header + dict + toc, their checksums, all
// section bounds) against the mapped bytes. Column data is untouched.
std::optional<SnapshotInfo> ParseFrontMatter(const std::uint8_t* data,
                                             std::size_t size,
                                             Status* status) {
  if (size < kSnapshotHeaderBytesV1) {
    SetStatus(status, StatusCode::kCorruptData, "not a sharpcq snapshot (file shorter than the header)");
    return std::nullopt;
  }
  ByteReader header(data, size);
  const std::uint64_t magic = header.ReadU64();
  if (magic != kSnapshotMagic) {
    SetStatus(status, StatusCode::kCorruptData, "not a sharpcq snapshot (bad magic)");
    return std::nullopt;
  }
  SnapshotInfo info;
  info.version = header.ReadU32();
  info.flags = header.ReadU32();
  if (info.version != kSnapshotVersion &&
      info.version != kSnapshotVersionV1) {
    SetStatus(status, StatusCode::kCorruptData, "unsupported snapshot version " +
                        std::to_string(info.version));
    return std::nullopt;
  }
  const bool with_stats = info.version >= 2;
  const std::size_t header_bytes =
      with_stats ? kSnapshotHeaderBytes : kSnapshotHeaderBytesV1;
  if (size < header_bytes) {
    SetStatus(status, StatusCode::kCorruptData, "not a sharpcq snapshot (file shorter than the header)");
    return std::nullopt;
  }
  if ((info.flags & kSnapshotFlagLittleEndian) == 0 ||
      !HostIsLittleEndian()) {
    SetStatus(status, StatusCode::kCorruptData, "snapshot byte order does not match this host");
    return std::nullopt;
  }
  const std::uint64_t relation_count = header.ReadU64();
  info.dict_count = header.ReadU64();
  const std::uint64_t dict_offset = header.ReadU64();
  const std::uint64_t dict_bytes = header.ReadU64();
  const std::uint64_t dict_checksum = header.ReadU64();
  const std::uint64_t toc_offset = header.ReadU64();
  const std::uint64_t toc_bytes = header.ReadU64();
  const std::uint64_t toc_checksum = header.ReadU64();
  const std::uint64_t data_offset = header.ReadU64();
  info.file_bytes = header.ReadU64();
  std::uint64_t stats_offset = 0;
  std::uint64_t stats_bytes = 0;
  std::uint64_t stats_checksum = 0;
  if (with_stats) {
    stats_offset = header.ReadU64();
    stats_bytes = header.ReadU64();
    stats_checksum = header.ReadU64();
  }
  const std::uint64_t header_checksum = header.ReadU64();
  const std::size_t checksum_offset =
      with_stats ? kHeaderChecksumOffsetV2 : kHeaderChecksumOffsetV1;
  SHARPCQ_CHECK(header.ok() && header.offset() == header_bytes);
  if (ChecksumBytes({data, checksum_offset}) != header_checksum) {
    SetStatus(status, StatusCode::kCorruptData, "header checksum mismatch (corrupt snapshot)");
    return std::nullopt;
  }
  if (info.file_bytes != size) {
    SetStatus(status, StatusCode::kCorruptData, "snapshot truncated: header records " +
                        std::to_string(info.file_bytes) + " bytes, file has " +
                        std::to_string(size));
    return std::nullopt;
  }
  auto section_ok = [size](std::uint64_t offset, std::uint64_t bytes) {
    return offset <= size && bytes <= size - offset;
  };
  if (!section_ok(dict_offset, dict_bytes) ||
      !section_ok(toc_offset, toc_bytes) || data_offset > size ||
      (with_stats && !section_ok(stats_offset, stats_bytes))) {
    SetStatus(status, StatusCode::kCorruptData, "section bounds exceed the file (corrupt snapshot)");
    return std::nullopt;
  }
  if (ChecksumBytes({data + dict_offset, dict_bytes}) != dict_checksum) {
    SetStatus(status, StatusCode::kCorruptData, "dictionary checksum mismatch (corrupt snapshot)");
    return std::nullopt;
  }
  if (ChecksumBytes({data + toc_offset, toc_bytes}) != toc_checksum) {
    SetStatus(status, StatusCode::kCorruptData, "toc checksum mismatch (corrupt snapshot)");
    return std::nullopt;
  }
  if (with_stats &&
      ChecksumBytes({data + stats_offset, stats_bytes}) != stats_checksum) {
    SetStatus(status, StatusCode::kCorruptData, "stats section checksum mismatch (corrupt snapshot)");
    return std::nullopt;
  }

  // Each toc entry occupies at least 16 bytes, so a header-supplied count
  // beyond toc_bytes/16 cannot be satisfied; reject it before reserve()
  // can throw on a hostile value (the checksums are not cryptographic).
  if (relation_count > toc_bytes / 16) {
    SetStatus(status, StatusCode::kCorruptData, "relation count exceeds toc size (corrupt snapshot)");
    return std::nullopt;
  }
  ByteReader toc(data, static_cast<std::size_t>(toc_offset + toc_bytes));
  toc.SeekTo(toc_offset);
  info.relations.reserve(relation_count);
  for (std::uint64_t r = 0; r < relation_count; ++r) {
    SnapshotRelationInfo rel;
    const std::uint32_t name_len = toc.ReadU32();
    rel.arity = static_cast<int>(toc.ReadU32());
    rel.rows = toc.ReadU64();
    if (!toc.ok() || rel.arity < 0 || rel.arity > 1 << 16 ||
        rel.rows > size / 8) {
      SetStatus(status, StatusCode::kCorruptData, "toc entry out of range (corrupt snapshot)");
      return std::nullopt;
    }
    rel.columns.resize(static_cast<std::size_t>(rel.arity));
    for (SnapshotColumnInfo& col : rel.columns) {
      col.offset = toc.ReadU64();
      col.checksum = toc.ReadU64();
      if (!toc.ok() || col.offset % 8 != 0 ||
          !section_ok(col.offset, rel.rows * 8) || col.offset < data_offset) {
        SetStatus(status, StatusCode::kCorruptData, "column segment out of bounds (corrupt snapshot)");
        return std::nullopt;
      }
    }
    std::span<const std::uint8_t> name = toc.ReadBytes(name_len);
    if (!toc.ok()) {
      SetStatus(status, StatusCode::kCorruptData, "toc truncated (corrupt snapshot)");
      return std::nullopt;
    }
    rel.name.assign(name.begin(), name.end());
    info.relations.push_back(std::move(rel));
  }
  if (toc.offset() != toc_offset + toc_bytes) {
    SetStatus(status, StatusCode::kCorruptData, "toc size mismatch (corrupt snapshot)");
    return std::nullopt;
  }

  // Stats section (v2): exactly one fixed-size record per column, in toc
  // order. The extent must match the toc-derived column count, and every
  // persisted quantity must be consistent with the relation's row count —
  // a stale or foreign section fails the load, it never mis-steers the
  // cost model silently.
  if (with_stats) {
    std::uint64_t expected_bytes = 0;
    for (const SnapshotRelationInfo& rel : info.relations) {
      expected_bytes += static_cast<std::uint64_t>(rel.arity) *
                        kSnapshotStatsBytesPerColumn;
    }
    if (stats_bytes != expected_bytes) {
      SetStatus(status, StatusCode::kCorruptData, "stats section size mismatch (corrupt snapshot)");
      return std::nullopt;
    }
    ByteReader stats(data,
                     static_cast<std::size_t>(stats_offset + stats_bytes));
    stats.SeekTo(stats_offset);
    for (SnapshotRelationInfo& rel : info.relations) {
      rel.stats.resize(static_cast<std::size_t>(rel.arity));
      for (ColumnStats& col : rel.stats) {
        col.distinct = stats.ReadU64();
        col.max_group = stats.ReadU64();
        for (std::uint32_t& bucket : col.histogram) bucket = stats.ReadU32();
        if (!stats.ok() || col.distinct > rel.rows ||
            col.max_group > rel.rows) {
          SetStatus(status, StatusCode::kCorruptData, "stats entry out of range (corrupt snapshot)");
          return std::nullopt;
        }
      }
    }
  }

  // Dictionary entries must cover exactly the recorded arena.
  ByteReader arena(data, static_cast<std::size_t>(dict_offset + dict_bytes));
  arena.SeekTo(dict_offset);
  for (std::uint64_t v = 0; v < info.dict_count; ++v) {
    std::uint32_t len = arena.ReadU32();
    arena.ReadBytes(len);
    if (!arena.ok()) {
      SetStatus(status, StatusCode::kCorruptData, "dictionary arena truncated (corrupt snapshot)");
      return std::nullopt;
    }
  }
  if (arena.offset() != dict_offset + dict_bytes) {
    SetStatus(status, StatusCode::kCorruptData, "dictionary size mismatch (corrupt snapshot)");
    return std::nullopt;
  }
  return info;
}

std::optional<ValueDict> ParseDict(const std::uint8_t* data,
                                   const SnapshotInfo& info,
                                   std::uint64_t dict_offset,
                                   std::uint64_t dict_bytes,
                                   Status* status) {
  ValueDict dict;
  // Bounded by the arena's own extent: this walk must not rely on having
  // mirrored ParseFrontMatter's validation exactly.
  ByteReader arena(data, static_cast<std::size_t>(dict_offset + dict_bytes));
  arena.SeekTo(dict_offset);
  for (std::uint64_t v = 0; v < info.dict_count; ++v) {
    std::uint32_t len = arena.ReadU32();
    std::span<const std::uint8_t> bytes = arena.ReadBytes(len);
    if (!arena.ok()) {
      SetStatus(status, StatusCode::kCorruptData, "dictionary arena truncated (corrupt snapshot)");
      return std::nullopt;
    }
    std::string_view name(reinterpret_cast<const char*>(bytes.data()),
                          bytes.size());
    Value assigned = dict.Intern(name);
    if (assigned != static_cast<Value>(v)) {
      // A duplicated string passes the arena checksum (the writer never
      // emits one, but foreign files exist); it must reject the load, not
      // kill a serving process.
      SetStatus(status, StatusCode::kCorruptData, "duplicate dictionary entry '" + std::string(name) +
                          "' (corrupt snapshot)");
      return std::nullopt;
    }
  }
  return dict;
}

// Hands a relation's persisted stats (v2 snapshots) to its freshly built
// table, so the first BuildDataProfile over a loaded generation computes
// nothing. First-install-wins semantics make this a no-op if someone
// already forced lazy computation.
void InstallPersistedStats(const SnapshotRelationInfo& rel,
                           const Table& table) {
  if (rel.stats.size() != static_cast<std::size_t>(rel.arity)) return;
  auto stats = std::make_shared<TableStats>();
  stats->rows = rel.rows;
  stats->columns = rel.stats;
  table.InstallStats(std::move(stats));
}

}  // namespace

std::optional<SnapshotInfo> ReadSnapshotInfo(const std::string& path,
                                             Status* status) {
  std::shared_ptr<const MemMap> map = MemMap::Open(path, status);
  if (map == nullptr) return std::nullopt;
  return ParseFrontMatter(map->data(), map->size(), status);
}

std::optional<LoadedSnapshot> LoadSnapshot(const std::string& path,
                                           SnapshotLoadMode mode,
                                           Status* status) {
  std::shared_ptr<const MemMap> map = MemMap::Open(path, status);
  if (map == nullptr) return std::nullopt;
  std::optional<SnapshotInfo> info =
      ParseFrontMatter(map->data(), map->size(), status);
  if (!info.has_value()) return std::nullopt;

  LoadedSnapshot loaded;
  loaded.mode = mode;
  // The dict extent is re-read from the (already validated) header.
  ByteReader header(map->data(), map->size());
  header.SeekTo(0x20);
  const std::uint64_t dict_offset = header.ReadU64();
  const std::uint64_t dict_bytes = header.ReadU64();
  std::optional<ValueDict> dict =
      ParseDict(map->data(), *info, dict_offset, dict_bytes, status);
  if (!dict.has_value()) return std::nullopt;
  loaded.dict = std::move(*dict);

  for (const SnapshotRelationInfo& rel : info->relations) {
    if (mode == SnapshotLoadMode::kMapped) {
      // Zero copy: column segments become the table's storage and the
      // shared mapping is the arena that keeps the pages alive.
      std::vector<std::span<const Value>> cols;
      cols.reserve(rel.columns.size());
      for (const SnapshotColumnInfo& col : rel.columns) {
        cols.emplace_back(
            reinterpret_cast<const Value*>(map->data() + col.offset),
            rel.rows);
      }
      std::shared_ptr<const Table> table = Table::FromExternal(
          std::move(cols), static_cast<std::size_t>(rel.rows), map);
      InstallPersistedStats(rel, *table);
      loaded.db.AdoptColumnar(rel.name, std::move(table));
      continue;
    }
    // Owned: verify each column checksum and copy into a TableBuilder. The
    // writer canonicalized rows (sorted + distinct), so Build can skip the
    // dedup pass.
    TableBuilder builder(rel.arity);
    builder.ReserveRows(static_cast<std::size_t>(rel.rows));
    for (const SnapshotColumnInfo& col : rel.columns) {
      if (ChecksumRawColumn(map->data() + col.offset, rel.rows) !=
          col.checksum) {
        SetStatus(status, StatusCode::kCorruptData, "column checksum mismatch in relation '" + rel.name +
                            "' (corrupt snapshot)");
        return std::nullopt;
      }
    }
    std::vector<Value> row(static_cast<std::size_t>(rel.arity));
    for (std::uint64_t i = 0; i < rel.rows; ++i) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        row[c] = LoadValueAt(map->data() + rel.columns[c].offset + i * 8);
      }
      builder.AddRow(row);
    }
    std::shared_ptr<const Table> table =
        std::move(builder).Build(/*known_distinct=*/true);
    InstallPersistedStats(rel, *table);
    loaded.db.AdoptColumnar(rel.name, std::move(table));
  }
  loaded.info = std::move(*info);
  return loaded;
}

bool VerifySnapshot(const std::string& path, Status* status) {
  std::shared_ptr<const MemMap> map = MemMap::Open(path, status);
  if (map == nullptr) return false;
  std::optional<SnapshotInfo> info =
      ParseFrontMatter(map->data(), map->size(), status);
  if (!info.has_value()) return false;
  for (const SnapshotRelationInfo& rel : info->relations) {
    for (std::size_t c = 0; c < rel.columns.size(); ++c) {
      if (ChecksumRawColumn(map->data() + rel.columns[c].offset, rel.rows) !=
          rel.columns[c].checksum) {
        SetStatus(status, StatusCode::kCorruptData, "column " + std::to_string(c) + " of relation '" +
                            rel.name + "' fails its checksum");
        return false;
      }
    }
  }
  return true;
}

std::optional<SnapshotWriteStats> WriteSnapshot(const Database& db,
                                                const ValueDict* dict,
                                                const std::string& path,
                                                Status* status) {
  SnapshotWriter writer;
  writer.AddDatabase(db);
  return writer.Finish(path, dict, status);
}

namespace {

// The sink for CSV -> writer ingest. Two input files feeding one relation
// with different arities is bad data, not a programming error: the sink
// detects it (ParseCsvToSink guarantees a uniform arity within one file,
// so the first row decides) and the wrapper turns it into kParseError
// instead of letting DeclareRelation's invariant check abort.
struct WriterSink {
  SnapshotWriter* writer;
  const std::string& relation;
  std::optional<int> conflicting_arity;

  void operator()(std::span<const Value> row) {
    if (conflicting_arity.has_value()) return;
    std::optional<int> declared = writer->RelationArity(relation);
    if (declared.has_value() && *declared != static_cast<int>(row.size())) {
      conflicting_arity = static_cast<int>(row.size());
      return;
    }
    writer->AddRow(relation, row);
  }

  CsvResult Resolve(CsvResult result) const {
    if (result.ok() && conflicting_arity.has_value()) {
      result.status = CsvStatus::kParseError;
      result.tuples = 0;
      result.message = "relation '" + relation + "' already has arity " +
                       std::to_string(*writer->RelationArity(relation)) +
                       ", input has arity " +
                       std::to_string(*conflicting_arity);
    }
    return result;
  }
};

}  // namespace

CsvResult LoadRelationCsvIntoWriter(std::istream& in,
                                    const std::string& relation,
                                    SnapshotWriter* writer, ValueDict* dict) {
  WriterSink sink{writer, relation, std::nullopt};
  return sink.Resolve(
      ParseCsvToSink(in, [&sink](std::span<const Value> row) { sink(row); },
                     dict));
}

CsvResult LoadRelationCsvFileIntoWriter(const std::string& path,
                                        const std::string& relation,
                                        SnapshotWriter* writer,
                                        ValueDict* dict) {
  WriterSink sink{writer, relation, std::nullopt};
  return sink.Resolve(
      ParseCsvFileToSink(path,
                         [&sink](std::span<const Value> row) { sink(row); },
                         dict));
}

}  // namespace sharpcq
