#ifndef SHARPCQ_STORAGE_SNAPSHOT_H_
#define SHARPCQ_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "algebra/stats.h"
#include "data/csv.h"
#include "data/database.h"
#include "data/relation.h"
#include "data/value.h"
#include "util/status.h"

namespace sharpcq {

// ---------------------------------------------------------------------------
// The sharpcq snapshot format, version 2. One file per database generation:
//
//   header          fixed 128 bytes: magic "SHARPCQ1", version, flags,
//                   section offsets/sizes, section checksums, total file
//                   size, and a checksum over the header bytes themselves
//   dict arena      the ValueDict in value-id order (id order IS the
//                   semantics: tuples store the ids), each entry a u32
//                   length + raw bytes
//   toc             one entry per relation, sorted by name: name, arity,
//                   row count, and per-column {absolute offset, checksum}
//   stats           per relation (toc order), per column: u64 distinct
//                   count, u64 max group size, 16 x u32 log2 degree
//                   histogram — the TableStats of algebra/stats.h, so a
//                   loaded generation's data profile costs zero index
//                   builds in both owned and mapped modes
//   column data     per relation, per column: rows * 8 bytes of int64
//                   values, every segment 8-byte aligned
//
// Version 1 files (104-byte header, no stats section) still load: the
// reader branches on the version field and leaves stats to be recomputed
// lazily on first use. Version 2 readers reject versions above their own.
//
// All integers are little-endian; a flags bit records the byte order and
// loading refuses a mismatch. Section checksums use the same splitmix64
// machinery as the in-memory hash indexes (util/hash.h).
//
// The writer is deterministic — relations sorted by name, rows sorted
// lexicographically and deduplicated, dictionary in id order — so the same
// logical database always produces byte-identical snapshots. Files are
// installed atomically: written to an exclusive temp file, fsynced, then
// renamed over the destination (the ursadb ExclusiveFile pattern), so a
// reader never observes a half-written snapshot.
// ---------------------------------------------------------------------------

inline constexpr std::uint64_t kSnapshotMagic =
    0x3151435052414853ULL;  // "SHARPCQ1" read as little-endian u64
inline constexpr std::uint32_t kSnapshotVersion = 2;
inline constexpr std::uint32_t kSnapshotVersionV1 = 1;
inline constexpr std::uint32_t kSnapshotFlagLittleEndian = 1u << 0;
inline constexpr std::size_t kSnapshotHeaderBytes = 128;    // current (v2)
inline constexpr std::size_t kSnapshotHeaderBytesV1 = 104;
// Serialized bytes per column in the stats section: distinct (u64),
// max_group (u64), and the log2 degree histogram (16 x u32).
inline constexpr std::size_t kSnapshotStatsBytesPerColumn =
    8 + 8 + kDegreeHistogramBuckets * 4;

struct SnapshotWriteStats {
  std::size_t relations = 0;
  std::size_t tuples = 0;       // after canonicalization (dedup)
  std::uint64_t bytes = 0;      // total file size
};

// Accumulates relations (columnar, in memory) and writes them as one
// snapshot file. Rows may be streamed in one at a time — CSV ingest pipes
// straight into AddRow without building a Database first (data/csv.h).
class SnapshotWriter {
 public:
  SnapshotWriter() = default;

  // Declares `relation` with `arity` (idempotent; arity mismatch aborts).
  void DeclareRelation(const std::string& relation, int arity);

  // Appends one row, declaring the relation on first use.
  void AddRow(const std::string& relation, std::span<const Value> row);

  // Copies a whole relation / database (columnar backings are read
  // directly, without materializing a row-major copy).
  void AddRelation(const std::string& name, const Relation& rel);
  void AddDatabase(const Database& db);

  std::size_t relation_count() const { return relations_.size(); }
  std::size_t pending_rows() const;

  // The declared arity of `relation`, if declared (lets ingest surface an
  // arity conflict between two input files as an error instead of
  // tripping DeclareRelation's invariant check).
  std::optional<int> RelationArity(const std::string& relation) const;

  // Target format version: kSnapshotVersion (default) or kSnapshotVersionV1
  // for the pre-stats layout (round-trip tests, downgrade escapes). Any
  // other value aborts.
  void set_format_version(std::uint32_t version);

  // Canonicalizes (rows sorted + deduplicated per relation), serializes,
  // and installs the snapshot at `path` atomically. The writer is spent
  // afterwards. Returns nullopt with kIoError in *status on I/O failure
  // (including injected faults at the storage.* failpoint sites).
  std::optional<SnapshotWriteStats> Finish(const std::string& path,
                                           const ValueDict* dict,
                                           Status* status);

 private:
  struct Pending {
    int arity = 0;
    std::size_t rows = 0;
    std::vector<std::vector<Value>> cols;
  };
  // std::map: relations serialize in sorted name order by construction.
  std::map<std::string, Pending> relations_;
  std::uint32_t format_version_ = kSnapshotVersion;
};

// Parsed header + table of contents (no tuple data touched beyond the
// front matter). The `inspect` subcommand prints this.
struct SnapshotColumnInfo {
  std::uint64_t offset = 0;    // absolute file offset, 8-byte aligned
  std::uint64_t checksum = 0;  // over the column's `rows` values
};

struct SnapshotRelationInfo {
  std::string name;
  int arity = 0;
  std::uint64_t rows = 0;
  std::vector<SnapshotColumnInfo> columns;
  // Persisted per-column statistics (v2 snapshots; empty for v1). Size is
  // either 0 or exactly `arity`.
  std::vector<ColumnStats> stats;
};

struct SnapshotInfo {
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t dict_count = 0;
  std::vector<SnapshotRelationInfo> relations;

  std::uint64_t TotalTuples() const;
};

// Validates magic, version, byte order, the header/dict/toc checksums, and
// every section bound, then returns the parsed front matter. Column data is
// not read. Returns nullopt on any mismatch — truncated files, foreign
// files, and flipped front-matter bytes all fail here (kCorruptData), and
// unreadable paths fail as kIoError/kNotFound — never as UB later.
std::optional<SnapshotInfo> ReadSnapshotInfo(const std::string& path,
                                             Status* status);

// How LoadSnapshot turns column segments into algebra::Table storage.
enum class SnapshotLoadMode {
  // Copy every column into process-owned buffers (TableBuilder) and verify
  // the per-column checksums on the way: cold-start cost O(data), fully
  // private memory, corruption detected at load.
  kOwned,
  // Alias the mapped file directly (Table::FromExternal over the shared
  // MemMap): cold-start cost O(header), pages shared across processes and
  // faulted in on first touch. Column checksums are NOT verified — that
  // would fault in every page; run VerifySnapshot when integrity matters
  // more than latency.
  kMapped,
};

struct LoadedSnapshot {
  Database db;      // every relation columnar (Database::AdoptColumnar)
  ValueDict dict;   // empty if the snapshot carried no dictionary
  SnapshotInfo info;
  SnapshotLoadMode mode = SnapshotLoadMode::kOwned;
};

std::optional<LoadedSnapshot> LoadSnapshot(const std::string& path,
                                           SnapshotLoadMode mode,
                                           Status* status);

// Full integrity pass: ReadSnapshotInfo plus every per-column checksum
// (touches all pages). True when the file is pristine; false with
// kCorruptData (validation failed) or kIoError (could not read) in *status.
bool VerifySnapshot(const std::string& path, Status* status);

// Convenience: snapshots `db` (+ optional dict) at `path` atomically.
std::optional<SnapshotWriteStats> WriteSnapshot(const Database& db,
                                                const ValueDict* dict,
                                                const std::string& path,
                                                Status* status);

// Streams one CSV relation straight into a snapshot writer via the
// data-layer row sink: CSV -> snapshot ingest never materializes a
// Database, so the peak footprint is the writer's columnar staging buffer
// alone (the sharpcq CLI's --out ingest path).
CsvResult LoadRelationCsvIntoWriter(std::istream& in,
                                    const std::string& relation,
                                    SnapshotWriter* writer,
                                    ValueDict* dict = nullptr);
CsvResult LoadRelationCsvFileIntoWriter(const std::string& path,
                                        const std::string& relation,
                                        SnapshotWriter* writer,
                                        ValueDict* dict = nullptr);

// The snapshot installer's primitive, reusable for small metadata files
// (the catalog manifest): write to an O_EXCL temp file, fsync, rename over
// `path`, fsync the directory. A crash leaves the old file or the new one,
// never a torn mix. Failpoint sites: storage.tmp_open, storage.write,
// storage.fsync, storage.rename.
bool AtomicWriteFile(const std::string& path,
                     std::span<const std::uint8_t> bytes, Status* status);

}  // namespace sharpcq

#endif  // SHARPCQ_STORAGE_SNAPSHOT_H_
