// The sharpcq command-line tool: durable databases end to end.
//
//   sharpcq ingest  --out FILE rel=data.csv...            CSV -> snapshot
//   sharpcq ingest  --catalog DIR --name DB rel=csv...    CSV -> catalog gen
//   sharpcq inspect FILE [--verify]                       header/stats dump
//   sharpcq count   --snapshot FILE [options] 'QUERY'     count answers
//   sharpcq count   --catalog DIR --name DB [options] 'QUERY'
//   sharpcq bench-load --snapshot FILE [rel=csv...]       cold-start timing
//
// Exit codes: 0 success, 1 runtime error (corrupt snapshot, bad query),
// 2 usage error, 3 input file missing, 4 CSV parse error. The distinction
// between 3 and 4 exists because an operator typo and bad data need
// different fixes (the CsvStatus satellite of ISSUE 4).

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "data/csv.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "storage/catalog.h"
#include "storage/snapshot.h"
#include "util/clock.h"
#include "util/failpoint.h"
#include "util/count_int.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace sharpcq {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitFileMissing = 3;
constexpr int kExitParseError = 4;

int Usage() {
  std::fprintf(stderr, R"(usage:
  sharpcq ingest  --out FILE rel=data.csv [rel=data.csv...]
  sharpcq ingest  --catalog DIR --name DB rel=data.csv [rel=data.csv...]
  sharpcq inspect FILE [--verify]
  sharpcq count   (--snapshot FILE | --catalog DIR --name DB)
                  [--mode owned|mmap] [--strategy auto|sharp|ps13|hybrid|backtracking]
                  [--max-query-bytes N] [--trace] [--json]
                  'Q(X,Y) <- r(X,Z), s(Z,Y)'
  sharpcq bench-load --snapshot FILE [--iters N] [rel=data.csv...]
)");
  return kExitUsage;
}

int CsvExitCode(const CsvResult& result) {
  switch (result.status) {
    case CsvStatus::kFileMissing:
      return kExitFileMissing;
    case CsvStatus::kParseError:
      return kExitParseError;
    default:
      return kExitRuntime;
  }
}

struct RelationCsvArg {
  std::string relation;
  std::string path;
};

// Parses trailing rel=path.csv arguments.
std::optional<std::vector<RelationCsvArg>> ParseRelationArgs(
    const std::vector<std::string>& args) {
  std::vector<RelationCsvArg> out;
  for (const std::string& arg : args) {
    std::size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) {
      std::fprintf(stderr, "sharpcq: expected rel=path.csv, got '%s'\n",
                   arg.c_str());
      return std::nullopt;
    }
    out.push_back({arg.substr(0, eq), arg.substr(eq + 1)});
  }
  return out;
}

// Streams every CSV into `writer`; returns an exit code (kExitOk on
// success) and prints the offending file otherwise.
int IngestCsvs(const std::vector<RelationCsvArg>& csvs, SnapshotWriter* writer,
               ValueDict* dict) {
  for (const RelationCsvArg& csv : csvs) {
    CsvResult result =
        LoadRelationCsvFileIntoWriter(csv.path, csv.relation, writer, dict);
    if (!result.ok()) {
      std::fprintf(stderr, "sharpcq: ingest %s (relation %s): %s\n",
                   csv.path.c_str(), csv.relation.c_str(),
                   result.message.c_str());
      return CsvExitCode(result);
    }
    std::printf("ingested %s: %zu tuples from %s\n", csv.relation.c_str(),
                result.tuples, csv.path.c_str());
  }
  return kExitOk;
}

int CmdIngest(const std::string& out_path, const std::string& catalog_root,
              const std::string& db_name,
              const std::vector<std::string>& rest) {
  auto csvs = ParseRelationArgs(rest);
  if (!csvs.has_value() || csvs->empty()) return Usage();

  ValueDict dict;
  Status error;
  if (!out_path.empty()) {
    SnapshotWriter writer;
    if (int code = IngestCsvs(*csvs, &writer, &dict); code != kExitOk) {
      return code;
    }
    auto stats = writer.Finish(out_path, &dict, &error);
    if (!stats.has_value()) {
      std::fprintf(stderr, "sharpcq: %s\n", error.ToString().c_str());
      return kExitRuntime;
    }
    std::printf("snapshot %s: %zu relations, %zu tuples, %llu bytes\n",
                out_path.c_str(), stats->relations, stats->tuples,
                static_cast<unsigned long long>(stats->bytes));
    return kExitOk;
  }

  // Catalog mode: ingest into the next generation of a named database.
  // The writer-canonicalized database is rebuilt owned so the catalog's
  // WriteSnapshot sees a Database; streaming through a Database here is
  // fine — the direct --out path is the memory-lean one.
  Database db;
  for (const RelationCsvArg& csv : *csvs) {
    CsvResult result = LoadRelationCsvFile(csv.path, csv.relation, &db, &dict);
    if (!result.ok()) {
      std::fprintf(stderr, "sharpcq: ingest %s (relation %s): %s\n",
                   csv.path.c_str(), csv.relation.c_str(),
                   result.message.c_str());
      return CsvExitCode(result);
    }
    std::printf("ingested %s: %zu tuples from %s\n", csv.relation.c_str(),
                result.tuples, csv.path.c_str());
  }
  Catalog catalog(catalog_root);
  auto generation = catalog.Ingest(db_name, db, &dict, &error);
  if (!generation.has_value()) {
    std::fprintf(stderr, "sharpcq: %s\n", error.ToString().c_str());
    return kExitRuntime;
  }
  std::printf("database %s: generation %llu installed under %s\n",
              db_name.c_str(),
              static_cast<unsigned long long>(*generation),
              catalog_root.c_str());
  return kExitOk;
}

int CmdInspect(const std::string& path, bool verify) {
  Status error;
  auto info = ReadSnapshotInfo(path, &error);
  if (!info.has_value()) {
    std::fprintf(stderr, "sharpcq: %s\n", error.ToString().c_str());
    return kExitRuntime;
  }
  std::printf("snapshot %s\n", path.c_str());
  std::printf("  version: %u\n", info->version);
  std::printf("  bytes: %llu\n",
              static_cast<unsigned long long>(info->file_bytes));
  std::printf("  dictionary entries: %llu\n",
              static_cast<unsigned long long>(info->dict_count));
  std::printf("  relations: %zu (%llu tuples)\n", info->relations.size(),
              static_cast<unsigned long long>(info->TotalTuples()));
  for (const SnapshotRelationInfo& rel : info->relations) {
    std::printf("    %-20s arity %-2d rows %-8llu first-column offset %llu\n",
                rel.name.c_str(), rel.arity,
                static_cast<unsigned long long>(rel.rows),
                static_cast<unsigned long long>(
                    rel.columns.empty() ? 0 : rel.columns[0].offset));
    // v2 snapshots carry a per-column data profile; v1 files have none
    // (stats are recomputed lazily at load time instead).
    for (std::size_t c = 0; c < rel.stats.size(); ++c) {
      const ColumnStats& stats = rel.stats[c];
      std::printf("      col %zu: distinct %llu max-group %llu avg-group %.2f\n",
                  c, static_cast<unsigned long long>(stats.distinct),
                  static_cast<unsigned long long>(stats.max_group),
                  stats.AvgGroup(rel.rows));
    }
  }
  if (verify) {
    if (!VerifySnapshot(path, &error)) {
      std::fprintf(stderr, "sharpcq: verify FAILED: %s\n", error.ToString().c_str());
      return kExitRuntime;
    }
    std::printf("  verify: all checksums OK\n");
  }
  return kExitOk;
}

int RunCount(const Database& db, const ValueDict& dict,
             CountingEngine* engine, const std::string& strategy,
             const std::string& query_text, bool with_trace, bool as_json) {
  auto options =
      PlannerOptionsForStrategy(strategy, engine->options().planner);
  if (!options.has_value()) {
    std::fprintf(stderr, "sharpcq: unknown strategy '%s'\n", strategy.c_str());
    return kExitUsage;
  }
  std::string error;
  ValueDict parse_dict = dict;  // query constants may intern new names
  auto query = ParseQuery(query_text, &parse_dict, &error);
  if (!query.has_value()) {
    std::fprintf(stderr, "sharpcq: bad query: %s\n", error.c_str());
    return kExitUsage;
  }
  std::optional<Trace> trace;
  if (with_trace) trace.emplace();
  CountResult result = engine->Count(*query, db, *options, /*cancel=*/nullptr,
                                     trace.has_value() ? &*trace : nullptr);
  if (as_json) {
    std::string out = "{\"count\":\"" + CountToString(result.count) + "\"";
    out += ",\"status\":\"";
    AppendJsonEscaped(&out, CountStatusName(result.status));
    out += "\",\"method\":\"";
    AppendJsonEscaped(&out, result.method);
    out += "\",\"width\":" + std::to_string(result.width);
    char ms[64];
    std::snprintf(ms, sizeof(ms), ",\"planner_ms\":%.3f,\"execute_ms\":%.3f",
                  result.planner_ms, result.execute_ms);
    out += ms;
    out += ",\"cache\":\"";
    out += result.cache_hit ? "hit" : "miss";
    out += "\",\"cost_model\":\"";
    out += result.cost_model_steered ? "steered" : "off-path";
    out += "\",\"cost_reorders\":" + std::to_string(result.cost_reorders);
    out += ",\"filter_hits\":" + std::to_string(result.filter_hits);
    out += ",\"filter_passes\":" + std::to_string(result.filter_passes);
    out += ",\"morsels\":" + std::to_string(result.morsels);
    out += ",\"worklist_iterations\":" +
           std::to_string(result.worklist_iterations);
    if (trace.has_value()) {
      out += ",\"trace\":" + RenderTraceJson(trace->root());
    }
    out += "}";
    std::printf("%s\n", out.c_str());
    // The JSON carries the status either way; the exit code still tells
    // scripts an aborted count from a successful one.
    return result.ok() ? kExitOk : kExitRuntime;
  }
  if (!result.ok()) {
    std::fprintf(stderr, "sharpcq: count aborted: %s",
                 CountStatusName(result.status));
    if (result.status == CountStatus::kResourceExhausted) {
      std::fprintf(stderr, " (refused allocation of %llu bytes)",
                   static_cast<unsigned long long>(result.mem_refused_bytes));
    }
    std::fprintf(stderr, "\n");
    return kExitRuntime;
  }
  std::printf("count: %s\n", CountToString(result.count).c_str());
  std::printf("method: %s\n", result.method.c_str());
  std::printf("planner_ms: %.3f execute_ms: %.3f cache: %s\n",
              result.planner_ms, result.execute_ms,
              result.cache_hit ? "hit" : "miss");
  std::printf("cost_model: %s reorders: %llu\n",
              result.cost_model_steered ? "steered" : "off-path",
              static_cast<unsigned long long>(result.cost_reorders));
  if (trace.has_value()) {
    std::printf("trace:\n%s", SerializeTraceNode(trace->root()).c_str());
  }
  return kExitOk;
}

int CmdCount(const std::string& snapshot_path, const std::string& catalog_root,
             const std::string& db_name, const std::string& mode_name,
             const std::string& strategy, const std::string& query_text,
             bool with_trace, bool as_json,
             std::uint64_t max_query_bytes) {
  SnapshotLoadMode mode = SnapshotLoadMode::kMapped;
  if (mode_name == "owned") {
    mode = SnapshotLoadMode::kOwned;
  } else if (!mode_name.empty() && mode_name != "mmap") {
    std::fprintf(stderr, "sharpcq: unknown --mode '%s'\n", mode_name.c_str());
    return kExitUsage;
  }
  Status error;
  if (!snapshot_path.empty()) {
    auto loaded = LoadSnapshot(snapshot_path, mode, &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "sharpcq: %s\n", error.ToString().c_str());
      return kExitRuntime;
    }
    EngineOptions engine_options;
    engine_options.max_query_bytes = max_query_bytes;
    CountingEngine engine(engine_options);
    return RunCount(loaded->db, loaded->dict, &engine, strategy, query_text,
                    with_trace, as_json);
  }
  Catalog::Options catalog_options;
  catalog_options.load_mode = mode;
  catalog_options.engine.max_query_bytes = max_query_bytes;
  Catalog catalog(catalog_root, catalog_options);
  auto entry = catalog.Open(db_name, &error);
  if (entry == nullptr) {
    std::fprintf(stderr, "sharpcq: %s\n", error.ToString().c_str());
    return kExitRuntime;
  }
  if (!as_json) {
    std::printf("database: %s generation: %llu\n", entry->name.c_str(),
                static_cast<unsigned long long>(entry->generation));
  }
  return RunCount(*entry->db, *entry->dict, entry->engine.get(), strategy,
                  query_text, with_trace, as_json);
}

int CmdBenchLoad(const std::string& snapshot_path, int iters,
                 const std::vector<std::string>& rest) {
  auto csvs = ParseRelationArgs(rest);
  if (!csvs.has_value()) return Usage();
  Status error;

  double owned_ms = 0.0;
  double mapped_ms = 0.0;
  std::uint64_t tuples = 0;
  for (int i = 0; i < iters; ++i) {
    MonotonicClock::time_point start = MonotonicNow();
    auto owned = LoadSnapshot(snapshot_path, SnapshotLoadMode::kOwned, &error);
    if (!owned.has_value()) {
      std::fprintf(stderr, "sharpcq: %s\n", error.ToString().c_str());
      return kExitRuntime;
    }
    owned_ms += ElapsedMs(start);
    tuples = owned->info.TotalTuples();

    start = MonotonicNow();
    auto mapped =
        LoadSnapshot(snapshot_path, SnapshotLoadMode::kMapped, &error);
    if (!mapped.has_value()) {
      std::fprintf(stderr, "sharpcq: %s\n", error.ToString().c_str());
      return kExitRuntime;
    }
    mapped_ms += ElapsedMs(start);
  }
  std::printf("snapshot %s: %llu tuples, %d iterations\n",
              snapshot_path.c_str(), static_cast<unsigned long long>(tuples),
              iters);
  std::printf("owned_load_ms:  %.3f\n", owned_ms / iters);
  std::printf("mapped_load_ms: %.3f\n", mapped_ms / iters);

  if (!csvs->empty()) {
    double csv_ms = 0.0;
    for (int i = 0; i < iters; ++i) {
      MonotonicClock::time_point start = MonotonicNow();
      Database db;
      ValueDict dict;
      for (const RelationCsvArg& csv : *csvs) {
        CsvResult result =
            LoadRelationCsvFile(csv.path, csv.relation, &db, &dict);
        if (!result.ok()) {
          std::fprintf(stderr, "sharpcq: %s: %s\n", csv.path.c_str(),
                       result.message.c_str());
          return CsvExitCode(result);
        }
      }
      db.DedupAll();
      csv_ms += ElapsedMs(start);
    }
    std::printf("csv_ingest_ms:  %.3f\n", csv_ms / iters);
    if (mapped_ms > 0.0) {
      std::printf("mmap_speedup_vs_csv: %.1fx\n", csv_ms / mapped_ms);
    }
  }
  return kExitOk;
}

int Main(int argc, char** argv) {
  failpoint::ArmFromEnv();  // SHARPCQ_FAILPOINTS, for fault-injection runs
  if (argc < 2) return Usage();
  std::string command = argv[1];

  // Shared flag scan: --flag value pairs anywhere after the command;
  // everything else is positional.
  std::string out_path, catalog_root, db_name, snapshot_path, mode, strategy;
  bool verify = false;
  bool with_trace = false;
  bool as_json = false;
  int iters = 5;
  std::uint64_t max_query_bytes = 0;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--out") {
      auto v = next();
      if (!v) return Usage();
      out_path = *v;
    } else if (arg == "--catalog") {
      auto v = next();
      if (!v) return Usage();
      catalog_root = *v;
    } else if (arg == "--name") {
      auto v = next();
      if (!v) return Usage();
      db_name = *v;
    } else if (arg == "--snapshot") {
      auto v = next();
      if (!v) return Usage();
      snapshot_path = *v;
    } else if (arg == "--mode") {
      auto v = next();
      if (!v) return Usage();
      mode = *v;
    } else if (arg == "--strategy") {
      auto v = next();
      if (!v) return Usage();
      strategy = *v;
    } else if (arg == "--iters") {
      auto v = next();
      if (!v) return Usage();
      iters = std::atoi(v->c_str());
      if (iters <= 0) return Usage();
    } else if (arg == "--max-query-bytes") {
      auto v = next();
      if (!v) return Usage();
      max_query_bytes = std::strtoull(v->c_str(), nullptr, 10);
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--trace") {
      with_trace = true;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "sharpcq: unknown flag '%s'\n",
                   std::string(arg).c_str());
      return Usage();
    } else {
      positional.emplace_back(arg);
    }
  }
  if (strategy.empty()) strategy = "auto";

  if (command == "ingest") {
    if (out_path.empty() == (catalog_root.empty() || db_name.empty())) {
      return Usage();  // exactly one of --out / (--catalog + --name)
    }
    return CmdIngest(out_path, catalog_root, db_name, positional);
  }
  if (command == "inspect") {
    if (positional.size() != 1) return Usage();
    return CmdInspect(positional[0], verify);
  }
  if (command == "count") {
    if (positional.size() != 1) return Usage();
    bool from_snapshot = !snapshot_path.empty();
    bool from_catalog = !catalog_root.empty() && !db_name.empty();
    if (from_snapshot == from_catalog) return Usage();
    return CmdCount(snapshot_path, catalog_root, db_name, mode, strategy,
                    positional[0], with_trace, as_json, max_query_bytes);
  }
  if (command == "bench-load") {
    if (snapshot_path.empty()) return Usage();
    return CmdBenchLoad(snapshot_path, iters, positional);
  }
  return Usage();
}

}  // namespace
}  // namespace sharpcq

int main(int argc, char** argv) { return sharpcq::Main(argc, argv); }
