// The sharpcqd daemon: serves a catalog of durable databases over TCP with
// the length-framed request protocol of server/protocol.h.
//
//   sharpcqd serve --root DIR [--host H] [--port N] [--max-inflight N]
//                  [--max-queued N] [--default-deadline-ms N]
//                  [--slow-query-ms MS] [--slow-query-capacity N]
//                  [--slow-query-sample N] [--max-query-bytes N]
//                  [--max-total-bytes N]
//   sharpcqd send  --port N [--host H] [--body TEXT] [--retries N]
//                  [--backoff-ms N] 'HEADER'
//
// `serve` prints "sharpcqd listening on HOST:PORT" once ready (with
// --port 0 the kernel-assigned port; CI's smoke job scrapes it) and blocks
// until a client sends `shutdown`.
//
// `send` is a one-shot client: HEADER is a protocol header line, e.g.
// 'count db=demo deadline_ms=500'; the request body comes from --body or,
// when stdin is not a terminal, from stdin (so `echo 'Q(X) <- r(X,Y)' |
// sharpcqd send --port N 'count db=demo'` works). Exits 0 on an ok
// response, 1 on an error response, 2 on usage errors, 3 on transport
// failure. --retries enables bounded reconnect/backoff retries; retries
// after the request may have been delivered happen only for read-only
// commands (never ingest).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "server/client.h"
#include "server/daemon.h"
#include "util/failpoint.h"

namespace sharpcq {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitTransport = 3;

int Usage() {
  std::fprintf(stderr, R"(usage:
  sharpcqd serve --root DIR [--host H] [--port N] [--max-inflight N]
                 [--max-queued N] [--default-deadline-ms N]
                 [--slow-query-ms MS] [--slow-query-capacity N]
                 [--slow-query-sample N] [--max-query-bytes N]
                 [--max-total-bytes N]
  sharpcqd send  --port N [--host H] [--body TEXT] [--retries N]
                 [--backoff-ms N] 'HEADER LINE'
)");
  return kExitUsage;
}

int CmdServe(const DaemonOptions& options) {
  Daemon daemon(options);
  std::string error;
  if (!daemon.Start(&error)) {
    std::fprintf(stderr, "sharpcqd: %s\n", error.c_str());
    return kExitError;
  }
  std::printf("sharpcqd listening on %s:%d\n", options.host.c_str(),
              daemon.port());
  std::fflush(stdout);
  daemon.Wait();
  daemon.Stop();
  DaemonStats stats = daemon.stats();
  std::printf("sharpcqd exiting: %llu requests (%llu ok, %llu error)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.responses_ok),
              static_cast<unsigned long long>(stats.responses_error));
  return kExitOk;
}

int CmdSend(const std::string& host, int port, const std::string& header,
            const std::optional<std::string>& body_flag,
            const RetryPolicy& retry) {
  std::string body;
  if (body_flag.has_value()) {
    body = *body_flag;
  } else if (!::isatty(STDIN_FILENO)) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    body = buffer.str();
  }
  std::string error;
  std::optional<Request> request = ParseRequest(header + "\n" + body, &error);
  if (!request.has_value()) {
    std::fprintf(stderr, "sharpcqd: bad request: %s\n", error.c_str());
    return kExitUsage;
  }
  Client client;
  std::optional<Response> response;
  if (retry.max_attempts > 1) {
    // CallWithRetry handles the initial connect itself; the retry target
    // must be stamped first, so do a throwaway Connect attempt (its
    // failure is retried inside CallWithRetry).
    client.Connect(host, port, &error);
    if (!client.connected()) client.Close();
    int attempts = 0;
    response = client.CallWithRetry(*request, retry, &error, &attempts);
    if (!response.has_value()) {
      std::fprintf(stderr, "sharpcqd: %s (after %d attempts)\n", error.c_str(),
                   attempts);
      return kExitTransport;
    }
  } else {
    if (!client.Connect(host, port, &error)) {
      std::fprintf(stderr, "sharpcqd: %s\n", error.c_str());
      return kExitTransport;
    }
    response = client.Call(*request, &error);
    if (!response.has_value()) {
      std::fprintf(stderr, "sharpcqd: %s\n", error.c_str());
      return kExitTransport;
    }
  }
  if (response->ok) {
    std::printf("ok\n");
  } else {
    std::printf("error %s %s\n", response->code.c_str(),
                response->message.c_str());
  }
  for (const auto& [key, value] : response->fields) {
    std::printf("%s: %s\n", key.c_str(), value.c_str());
  }
  if (!response->body.empty()) {
    std::printf("\n%s", response->body.c_str());
  }
  return response->ok ? kExitOk : kExitError;
}

int Main(int argc, char** argv) {
  failpoint::ArmFromEnv();
  if (argc < 2) return Usage();
  std::string command = argv[1];

  std::string root;
  std::string host = "127.0.0.1";
  int port = 0;
  bool have_port = false;
  std::size_t max_inflight = 4;
  std::size_t max_queued = 16;
  long long default_deadline_ms = 0;
  // Slow-query ring defaults mirror EngineOptions; the flags below thread
  // through Catalog::Options into every database's engine.
  EngineOptions engine_defaults;
  double slow_query_ms = engine_defaults.slow_query_threshold_ms;
  std::size_t slow_query_capacity = engine_defaults.slow_query_log_capacity;
  std::size_t slow_query_sample = engine_defaults.slow_query_sample_every;
  unsigned long long max_query_bytes = 0;
  unsigned long long max_total_bytes = 0;
  int retries = 1;
  long long backoff_ms = 50;
  std::optional<std::string> body;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--root") {
      auto v = next();
      if (!v) return Usage();
      root = *v;
    } else if (arg == "--host") {
      auto v = next();
      if (!v) return Usage();
      host = *v;
    } else if (arg == "--port") {
      auto v = next();
      if (!v) return Usage();
      port = std::atoi(v->c_str());
      have_port = true;
    } else if (arg == "--max-inflight") {
      auto v = next();
      if (!v) return Usage();
      max_inflight = static_cast<std::size_t>(std::atoll(v->c_str()));
    } else if (arg == "--max-queued") {
      auto v = next();
      if (!v) return Usage();
      max_queued = static_cast<std::size_t>(std::atoll(v->c_str()));
    } else if (arg == "--default-deadline-ms") {
      auto v = next();
      if (!v) return Usage();
      default_deadline_ms = std::atoll(v->c_str());
    } else if (arg == "--slow-query-ms") {
      auto v = next();
      if (!v) return Usage();
      slow_query_ms = std::atof(v->c_str());
    } else if (arg == "--slow-query-capacity") {
      auto v = next();
      if (!v) return Usage();
      slow_query_capacity = static_cast<std::size_t>(std::atoll(v->c_str()));
    } else if (arg == "--slow-query-sample") {
      auto v = next();
      if (!v) return Usage();
      slow_query_sample = static_cast<std::size_t>(std::atoll(v->c_str()));
      if (slow_query_sample == 0) return Usage();
    } else if (arg == "--max-query-bytes") {
      auto v = next();
      if (!v) return Usage();
      max_query_bytes = std::strtoull(v->c_str(), nullptr, 10);
    } else if (arg == "--max-total-bytes") {
      auto v = next();
      if (!v) return Usage();
      max_total_bytes = std::strtoull(v->c_str(), nullptr, 10);
    } else if (arg == "--retries") {
      auto v = next();
      if (!v) return Usage();
      retries = std::atoi(v->c_str());
      if (retries < 1) return Usage();
    } else if (arg == "--backoff-ms") {
      auto v = next();
      if (!v) return Usage();
      backoff_ms = std::atoll(v->c_str());
      if (backoff_ms < 0) return Usage();
    } else if (arg == "--body") {
      auto v = next();
      if (!v) return Usage();
      body = *v;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "sharpcqd: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }

  if (command == "serve") {
    if (root.empty() || !positional.empty()) return Usage();
    if (max_inflight == 0 || default_deadline_ms < 0) return Usage();
    DaemonOptions options;
    options.catalog_root = root;
    options.host = host;
    options.port = port;
    options.max_inflight = max_inflight;
    options.max_queued = max_queued;
    options.default_deadline = std::chrono::milliseconds(default_deadline_ms);
    options.catalog.engine.slow_query_threshold_ms = slow_query_ms;
    options.catalog.engine.slow_query_log_capacity = slow_query_capacity;
    options.catalog.engine.slow_query_sample_every = slow_query_sample;
    options.max_query_bytes = max_query_bytes;
    options.max_total_bytes = max_total_bytes;
    return CmdServe(options);
  }
  if (command == "send") {
    if (!have_port || port <= 0 || positional.size() != 1) return Usage();
    RetryPolicy retry;
    retry.max_attempts = retries;
    retry.initial_backoff = std::chrono::milliseconds(backoff_ms);
    return CmdSend(host, port, positional[0], body, retry);
  }
  return Usage();
}

}  // namespace
}  // namespace sharpcq

int main(int argc, char** argv) { return sharpcq::Main(argc, argv); }
