#ifndef SHARPCQ_UTIL_CANCEL_H_
#define SHARPCQ_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace sharpcq {

// Cooperative cancellation + deadline for one request/execution.
//
// The daemon creates one token per request, arms it with the request's
// deadline (and cancels it outright when the client disconnects), and the
// engine threads it through the execution policy into the kernel's morsel
// claim loops and the strategies' checkpoint sites. Checks are pull-based:
// nothing is interrupted preemptively, loops poll ShouldStop() at morsel
// granularity, so a stopped execution unwinds at the next checkpoint —
// bounded by one morsel (~4K rows) of probe work on the hot paths.
//
// Thread safety: Cancel() and ShouldStop() may race freely from any number
// of threads. SetDeadline() must happen-before the token is shared with the
// execution (the daemon arms it before submitting the request).
class CancelToken {
 public:
  enum class StopReason : std::uint8_t { kNone, kCancelled, kDeadline };

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Requests cancellation; idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  // Arms the deadline. Call before sharing the token (not thread-safe
  // against concurrent ShouldStop).
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void SetDeadlineAfter(std::chrono::nanoseconds budget) {
    SetDeadline(std::chrono::steady_clock::now() + budget);
  }

  // Why the execution should stop, or kNone. Explicit cancellation wins
  // over an expired deadline (the client is gone; no point reporting the
  // deadline to nobody). The deadline verdict latches: once observed
  // expired it stays expired, so every checkpoint after the first agrees.
  StopReason ShouldStop() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return StopReason::kCancelled;
    }
    if (has_deadline_) {
      if (deadline_hit_.load(std::memory_order_relaxed)) {
        return StopReason::kDeadline;
      }
      if (std::chrono::steady_clock::now() >= deadline_) {
        deadline_hit_.store(true, std::memory_order_relaxed);
        return StopReason::kDeadline;
      }
    }
    return StopReason::kNone;
  }

  bool stop_requested() const { return ShouldStop() != StopReason::kNone; }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> deadline_hit_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace sharpcq

#endif  // SHARPCQ_UTIL_CANCEL_H_
