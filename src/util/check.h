#ifndef SHARPCQ_UTIL_CHECK_H_
#define SHARPCQ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal invariant checking. SHARPCQ_CHECK is always on (counting
// correctness is the whole point of this library and the checks are cheap);
// SHARPCQ_DCHECK compiles out of release builds.

#define SHARPCQ_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SHARPCQ_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define SHARPCQ_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SHARPCQ_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define SHARPCQ_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define SHARPCQ_DCHECK(cond) SHARPCQ_CHECK(cond)
#endif

#endif  // SHARPCQ_UTIL_CHECK_H_
