#include "util/clock.h"

#include <cstdio>
#include <ctime>

namespace sharpcq {

std::string WallTimestamp() {
  // The one permitted system_clock use (see clock.h).
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm utc{};
  ::gmtime_r(&now, &utc);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02d %02d:%02d:%02d",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec);
  return buffer;
}

}  // namespace sharpcq
