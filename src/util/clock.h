#ifndef SHARPCQ_UTIL_CLOCK_H_
#define SHARPCQ_UTIL_CLOCK_H_

#include <chrono>
#include <string>

namespace sharpcq {

// The clock discipline, in one place:
//
//   - Every duration the system measures — planner/execute timings, request
//     latencies, deadlines, benchmark intervals — uses MonotonicClock
//     (steady_clock): it never jumps on NTP slew or a manual date change,
//     so a latency can never come out negative or absurdly large.
//   - Wall-clock time exists ONLY for log/record timestamps a human reads
//     next to other systems' logs, via WallTimestamp() below. Nothing is
//     ever subtracted from it.
//
// CI enforces the split with a grep guard: `system_clock` may appear in the
// tree only inside this pair of files (.github/workflows/ci.yml).
using MonotonicClock = std::chrono::steady_clock;

inline MonotonicClock::time_point MonotonicNow() {
  return MonotonicClock::now();
}

// Milliseconds elapsed since `start` (fractional).
inline double ElapsedMs(MonotonicClock::time_point start) {
  return std::chrono::duration<double, std::milli>(MonotonicClock::now() -
                                                   start)
      .count();
}

// "YYYY-MM-DD HH:MM:SS" in UTC — a log timestamp, never a measurement.
std::string WallTimestamp();

}  // namespace sharpcq

#endif  // SHARPCQ_UTIL_CLOCK_H_
