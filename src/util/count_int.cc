#include "util/count_int.h"

#include <algorithm>

namespace sharpcq {

std::string CountToString(CountInt value) {
  if (value == 0) return "0";
  std::string digits;
  while (value > 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(value % 10)));
    value /= 10;
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

bool ParseCount(const std::string& text, CountInt* out) {
  if (text.empty()) return false;
  // Overflow is checked before the multiply: the old `next < value` test
  // after the fact misses 128-bit wraps that still land above the previous
  // value (e.g. 2^128 + 6 wraps to 6 only after value already wrapped
  // through a larger intermediate on longer inputs, and value * 10 can
  // wrap to something >= value).
  constexpr CountInt kMax = ~CountInt{0};
  CountInt value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const CountInt digit = static_cast<CountInt>(c - '0');
    if (value > kMax / 10) return false;       // value * 10 would wrap
    value *= 10;
    if (digit > kMax - value) return false;    // + digit would wrap
    value += digit;
  }
  *out = value;
  return true;
}

}  // namespace sharpcq
