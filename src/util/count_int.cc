#include "util/count_int.h"

#include <algorithm>

namespace sharpcq {

std::string CountToString(CountInt value) {
  if (value == 0) return "0";
  std::string digits;
  while (value > 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(value % 10)));
    value /= 10;
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

bool ParseCount(const std::string& text, CountInt* out) {
  if (text.empty()) return false;
  CountInt value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    CountInt next = value * 10 + static_cast<CountInt>(c - '0');
    if (next < value) return false;  // overflow
    value = next;
  }
  *out = value;
  return true;
}

}  // namespace sharpcq
