#ifndef SHARPCQ_UTIL_COUNT_INT_H_
#define SHARPCQ_UTIL_COUNT_INT_H_

#include <cstdint>
#include <string>

namespace sharpcq {

// Answer counts. The paper assumes unit-cost arithmetic; 128 bits is ample
// for every workload generated in this repository (property tests check for
// overflow in debug builds).
using CountInt = unsigned __int128;

// Decimal rendering of a 128-bit count (no std::to_string overload exists).
std::string CountToString(CountInt value);

// Parses a non-negative decimal string; returns false on malformed input.
bool ParseCount(const std::string& text, CountInt* out);

}  // namespace sharpcq

#endif  // SHARPCQ_UTIL_COUNT_INT_H_
