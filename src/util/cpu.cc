#include "util/cpu.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace sharpcq {

namespace {

std::size_t QueryL2CacheBytes() {
#if defined(_SC_LEVEL2_CACHE_SIZE)
  long bytes = sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (bytes > 0) return static_cast<std::size_t>(bytes);
#endif
  return std::size_t{2} << 20;
}

std::size_t QueryLastLevelCacheBytes() {
#if defined(_SC_LEVEL4_CACHE_SIZE)
  long l4 = sysconf(_SC_LEVEL4_CACHE_SIZE);
  if (l4 > 0) return static_cast<std::size_t>(l4);
#endif
#if defined(_SC_LEVEL3_CACHE_SIZE)
  long l3 = sysconf(_SC_LEVEL3_CACHE_SIZE);
  if (l3 > 0) return static_cast<std::size_t>(l3);
#endif
  return L2CacheBytes() * 8;
}

bool QueryAvx2() {
#if !defined(SHARPCQ_NO_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

std::size_t L2CacheBytes() {
  static const std::size_t bytes = QueryL2CacheBytes();
  return bytes;
}

std::size_t LastLevelCacheBytes() {
  static const std::size_t bytes = QueryLastLevelCacheBytes();
  return bytes;
}

bool CpuSupportsAvx2() {
  static const bool supported = QueryAvx2();
  return supported;
}

}  // namespace sharpcq
