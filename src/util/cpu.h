#ifndef SHARPCQ_UTIL_CPU_H_
#define SHARPCQ_UTIL_CPU_H_

#include <cstddef>

namespace sharpcq {

// Size of the (unified) L2 data cache in bytes, queried once from the OS.
// Falls back to 2 MiB when the platform does not report one — the common
// size on the x86 server parts this targets. The radix-partitioned index
// build sizes its partitions from this (algebra/table.cc).
std::size_t L2CacheBytes();

// Size of the last-level cache in bytes, queried once from the OS. Falls
// back to 8x L2 when the platform does not report one (LLCs on current
// server parts run 4-32x the per-core L2). The radix build's engage
// threshold derives from this: partitioning only pays once the slot
// arrays overflow the LLC and streaming inserts go to DRAM.
std::size_t LastLevelCacheBytes();

// Whether this process can execute the AVX2 probe kernel: compiled in
// (x86-64 gcc/clang without SHARPCQ_NO_SIMD) and supported by the CPU.
// Resolved once; the answer never changes over a process lifetime.
bool CpuSupportsAvx2();

}  // namespace sharpcq

#endif  // SHARPCQ_UTIL_CPU_H_
