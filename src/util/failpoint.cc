#include "util/failpoint.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace sharpcq {
namespace failpoint {

namespace internal {
std::atomic<int> armed_sites{0};
}  // namespace internal

namespace {

struct SiteState {
  Trigger trigger;
  bool armed = false;
  std::uint64_t hits = 0;    // hits since the site was first armed
  std::int64_t fired = 0;    // firings so far
};

// Registry of sites that have ever been armed. Guarded by a mutex: the
// macro's fast path never reaches here, and sites live on cold paths
// (storage I/O, connection handling), so contention is irrelevant.
std::mutex registry_mu;
std::unordered_map<std::string, SiteState>& Registry() {
  static auto* registry = new std::unordered_map<std::string, SiteState>();
  return *registry;
}

bool ParseOne(const std::string& item, std::string* error) {
  const std::size_t eq = item.find('=');
  if (eq == std::string::npos || eq == 0) {
    if (error != nullptr) *error = "missing '=' in '" + item + "'";
    return false;
  }
  std::string site = item.substr(0, eq);
  std::string rest = item.substr(eq + 1);
  Trigger trigger;
  // Split off :DELAYms, then xM, then @N, leaving the action name.
  const std::size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    std::string delay = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
    if (delay.size() < 3 || delay.substr(delay.size() - 2) != "ms") {
      if (error != nullptr) *error = "bad delay '" + delay + "' (want Nms)";
      return false;
    }
    trigger.delay_ms = static_cast<std::uint32_t>(
        std::strtoul(delay.c_str(), nullptr, 10));
  }
  const std::size_t x = rest.find('x');
  if (x != std::string::npos) {
    trigger.fire_count = std::strtoll(rest.c_str() + x + 1, nullptr, 10);
    if (trigger.fire_count <= 0) {
      if (error != nullptr) *error = "bad fire count in '" + item + "'";
      return false;
    }
    rest = rest.substr(0, x);
  }
  const std::size_t at = rest.find('@');
  if (at != std::string::npos) {
    trigger.after_hits = std::strtoull(rest.c_str() + at + 1, nullptr, 10);
    rest = rest.substr(0, at);
  }
  if (rest == "error") {
    trigger.action = FailpointAction::kError;
  } else if (rest == "crash") {
    trigger.action = FailpointAction::kCrash;
  } else if (rest == "short-write") {
    trigger.action = FailpointAction::kShortWrite;
  } else if (rest == "delay") {
    trigger.action = FailpointAction::kDelay;
  } else {
    if (error != nullptr) *error = "unknown action '" + rest + "'";
    return false;
  }
  Arm(site, trigger);
  return true;
}

}  // namespace

namespace internal {

FailpointAction Hit(const char* site) {
  Trigger trigger;
  {
    std::lock_guard<std::mutex> lock(registry_mu);
    auto it = Registry().find(site);
    if (it == Registry().end() || !it->second.armed) {
      return FailpointAction::kNone;
    }
    SiteState& state = it->second;
    const std::uint64_t hit = ++state.hits;
    if (hit <= state.trigger.after_hits) return FailpointAction::kNone;
    if (state.trigger.fire_count >= 0 &&
        state.fired >= state.trigger.fire_count) {
      return FailpointAction::kNone;
    }
    ++state.fired;
    trigger = state.trigger;
  }
  switch (trigger.action) {
    case FailpointAction::kCrash:
      // Simulated power-cut: no destructors, no atexit, no stream flushes.
      // Whatever the process had (or had not) persisted stays exactly as
      // the kernel saw it, which is the state recovery must handle.
      ::_exit(kFailpointCrashExit);
    case FailpointAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(trigger.delay_ms));
      return FailpointAction::kNone;
    default:
      return trigger.action;
  }
}

}  // namespace internal

void Arm(const std::string& site, Trigger trigger) {
  std::lock_guard<std::mutex> lock(registry_mu);
  SiteState& state = Registry()[site];
  if (!state.armed) {
    internal::armed_sites.fetch_add(1, std::memory_order_relaxed);
  }
  state.armed = true;
  state.trigger = trigger;
  state.hits = 0;
  state.fired = 0;
}

void Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mu);
  auto it = Registry().find(site);
  if (it == Registry().end() || !it->second.armed) return;
  it->second.armed = false;
  internal::armed_sites.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(registry_mu);
  for (auto& [site, state] : Registry()) {
    if (state.armed) {
      state.armed = false;
      internal::armed_sites.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

std::uint64_t HitCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mu);
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.hits;
}

bool ArmFromSpec(const std::string& spec, std::string* error) {
  std::size_t begin = 0;
  while (begin < spec.size()) {
    std::size_t end = spec.find_first_of(";,", begin);
    if (end == std::string::npos) end = spec.size();
    std::string item = spec.substr(begin, end - begin);
    if (!item.empty() && !ParseOne(item, error)) return false;
    begin = end + 1;
  }
  return true;
}

void ArmFromEnv() {
  const char* spec = std::getenv("SHARPCQ_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return;
  std::string error;
  if (!ArmFromSpec(spec, &error)) {
    std::fprintf(stderr, "sharpcq: bad SHARPCQ_FAILPOINTS: %s\n",
                 error.c_str());
  }
}

}  // namespace failpoint
}  // namespace sharpcq
