#ifndef SHARPCQ_UTIL_FAILPOINT_H_
#define SHARPCQ_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace sharpcq {

// Fault-injection sites. Production code marks its failure-prone steps with
//
//   switch (SHARPCQ_FAILPOINT("storage.write")) { ... }
//
// and tests (or the SHARPCQ_FAILPOINTS environment variable) program a site
// to fire on its Nth hit with an injected error, a simulated crash, a short
// write, or a delay. When nothing is armed anywhere in the process — the
// only state production ever runs in — the macro is one relaxed atomic load
// and an untaken branch, cheap enough to leave compiled into release
// binaries (CI gates the hot path at <= 1.03x).
//
// Wired sites:
//   storage.tmp_open       AtomicFileWriter: O_EXCL open of the .tmp file
//   storage.write          AtomicFileWriter: each Append (honors short-write)
//   storage.fsync          AtomicFileWriter: the pre-rename fsync
//   storage.rename         AtomicFileWriter: the tmp -> final rename
//   catalog.manifest_swap  Catalog::Ingest: before the manifest rewrite
//   csv.open               CSV ingest: file open
//   csv.row                CSV ingest: once per parsed row
//   index.build            TableIndex build (fires as allocation failure)
//   daemon.accept          Daemon accept loop
//   daemon.recv            Daemon request read
//   daemon.send            Daemon response write
enum class FailpointAction : std::uint8_t {
  kNone = 0,
  kError,       // the site should fail with an injected error
  kCrash,       // handled inside Hit(): _exit(kFailpointCrashExit), no cleanup
  kShortWrite,  // write sites persist a prefix then fail; others treat as kError
  kDelay,       // handled inside Hit(): sleep, then proceed normally
};

// Exit code of a kCrash firing; crash-matrix tests assert it from waitpid
// to prove the injected site actually fired in the forked child.
inline constexpr int kFailpointCrashExit = 134;

namespace failpoint {

// What an armed site does. Fires on hits (after_hits, after_hits +
// fire_count]; fire_count -1 means every hit from there on.
struct Trigger {
  FailpointAction action = FailpointAction::kNone;
  std::uint64_t after_hits = 0;  // skip this many hits before firing
  std::int64_t fire_count = -1;  // firings before auto-disarm (-1 = forever)
  std::uint32_t delay_ms = 0;    // kDelay sleep duration
};

namespace internal {
extern std::atomic<int> armed_sites;
// Slow path: registry lookup, hit accounting, crash/delay handling.
FailpointAction Hit(const char* site);
}  // namespace internal

inline bool AnyArmed() {
  return internal::armed_sites.load(std::memory_order_relaxed) != 0;
}

void Arm(const std::string& site, Trigger trigger);
void Disarm(const std::string& site);
void DisarmAll();

// Hits observed at `site` since it was armed (0 if never armed).
std::uint64_t HitCount(const std::string& site);

// Parses and arms a spec: `site=action[@N][xM][:DELAYms]` joined by ';'
// or ','. `action` is error|crash|short-write|delay; `@N` skips the first
// N hits (fire on hit N+1); `xM` limits firings to M. Examples:
//   storage.fsync=error            every fsync fails
//   storage.rename=crash@1         crash on the second rename
//   daemon.recv=delay:50ms x1      (spaces not allowed; shown split only)
// Returns false with a reason in *error on a malformed spec.
bool ArmFromSpec(const std::string& spec, std::string* error);

// Arms from $SHARPCQ_FAILPOINTS when set (malformed specs are reported on
// stderr and skipped). Called by the daemon and CLI mains so operators can
// inject faults into a live binary without a test harness.
void ArmFromEnv();

}  // namespace failpoint
}  // namespace sharpcq

#define SHARPCQ_FAILPOINT(site)                            \
  (__builtin_expect(sharpcq::failpoint::AnyArmed(), 0)     \
       ? sharpcq::failpoint::internal::Hit(site)           \
       : sharpcq::FailpointAction::kNone)

#endif  // SHARPCQ_UTIL_FAILPOINT_H_
