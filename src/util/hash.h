#ifndef SHARPCQ_UTIL_HASH_H_
#define SHARPCQ_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace sharpcq {

// 64-bit mix/combine helpers used by the hash indexes in data/ and the
// memoization tables in decomp/. Based on the splitmix64 finalizer.
inline std::uint64_t HashMix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline std::size_t HashCombine(std::size_t seed, std::size_t value) {
  return static_cast<std::size_t>(
      HashMix(static_cast<std::uint64_t>(seed) * 0x100000001b3ULL +
              static_cast<std::uint64_t>(value)));
}

// Hashes a contiguous range of integral values.
template <typename It>
std::size_t HashRange(It first, It last, std::size_t seed = 0x9e3779b9u) {
  std::size_t h = seed;
  for (It it = first; it != last; ++it) {
    h = HashCombine(h, static_cast<std::size_t>(*it));
  }
  return h;
}

template <typename T>
struct VectorHash {
  std::size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

template <typename A, typename B>
struct PairHash {
  std::size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine(std::hash<A>()(p.first), std::hash<B>()(p.second));
  }
};

struct VectorPairHash {
  template <typename T>
  std::size_t operator()(
      const std::pair<std::vector<T>, std::vector<T>>& p) const {
    return HashCombine(HashRange(p.first.begin(), p.first.end()),
                       HashRange(p.second.begin(), p.second.end()));
  }
};

}  // namespace sharpcq

#endif  // SHARPCQ_UTIL_HASH_H_
