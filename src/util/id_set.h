#ifndef SHARPCQ_UTIL_ID_SET_H_
#define SHARPCQ_UTIL_ID_SET_H_

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/hash.h"

namespace sharpcq {

// A small set of dense ids (variables, nodes, atom indexes), stored as a
// sorted unique vector. This is the workhorse set type of the library:
// hypergraph nodes, decomposition bags, and relation schemas are all IdSets.
// At decomposition scale (tens of ids) sorted vectors beat bitsets and hash
// sets on every operation we need, and make debugging output deterministic.
class IdSet {
 public:
  using value_type = std::uint32_t;
  using const_iterator = std::vector<value_type>::const_iterator;

  IdSet() = default;
  IdSet(std::initializer_list<value_type> ids)
      : ids_(ids) {
    Normalize();
  }
  // Takes an arbitrary (possibly unsorted, possibly duplicated) vector.
  static IdSet FromVector(std::vector<value_type> ids) {
    IdSet s;
    s.ids_ = std::move(ids);
    s.Normalize();
    return s;
  }
  // Builds {0, 1, ..., n-1}.
  static IdSet Range(value_type n) {
    IdSet s;
    s.ids_.reserve(n);
    for (value_type i = 0; i < n; ++i) s.ids_.push_back(i);
    return s;
  }

  bool empty() const { return ids_.empty(); }
  std::size_t size() const { return ids_.size(); }
  const_iterator begin() const { return ids_.begin(); }
  const_iterator end() const { return ids_.end(); }
  value_type operator[](std::size_t i) const { return ids_[i]; }
  const std::vector<value_type>& ids() const { return ids_; }

  bool Contains(value_type id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }

  void Insert(value_type id) {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it == ids_.end() || *it != id) ids_.insert(it, id);
  }

  void Remove(value_type id) {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it != ids_.end() && *it == id) ids_.erase(it);
  }

  bool IsSubsetOf(const IdSet& other) const {
    return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                         ids_.end());
  }

  bool Intersects(const IdSet& other) const {
    auto a = ids_.begin();
    auto b = other.ids_.begin();
    while (a != ids_.end() && b != other.ids_.end()) {
      if (*a < *b) {
        ++a;
      } else if (*b < *a) {
        ++b;
      } else {
        return true;
      }
    }
    return false;
  }

  friend IdSet Union(const IdSet& a, const IdSet& b) {
    IdSet out;
    out.ids_.reserve(a.size() + b.size());
    std::set_union(a.ids_.begin(), a.ids_.end(), b.ids_.begin(), b.ids_.end(),
                   std::back_inserter(out.ids_));
    return out;
  }

  friend IdSet Intersect(const IdSet& a, const IdSet& b) {
    IdSet out;
    std::set_intersection(a.ids_.begin(), a.ids_.end(), b.ids_.begin(),
                          b.ids_.end(), std::back_inserter(out.ids_));
    return out;
  }

  friend IdSet Difference(const IdSet& a, const IdSet& b) {
    IdSet out;
    std::set_difference(a.ids_.begin(), a.ids_.end(), b.ids_.begin(),
                        b.ids_.end(), std::back_inserter(out.ids_));
    return out;
  }

  friend bool operator==(const IdSet& a, const IdSet& b) {
    return a.ids_ == b.ids_;
  }
  friend bool operator!=(const IdSet& a, const IdSet& b) {
    return a.ids_ != b.ids_;
  }
  friend bool operator<(const IdSet& a, const IdSet& b) {
    return a.ids_ < b.ids_;
  }

  // Renders as "{0,3,7}"; with a name function, "{A,D,H}".
  template <typename NameFn>
  std::string ToString(NameFn name) const {
    std::string out = "{";
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      if (i > 0) out += ",";
      out += name(ids_[i]);
    }
    out += "}";
    return out;
  }
  std::string ToString() const {
    return ToString([](value_type v) { return std::to_string(v); });
  }

 private:
  void Normalize() {
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  }

  std::vector<value_type> ids_;
};

struct IdSetHash {
  std::size_t operator()(const IdSet& s) const {
    return HashRange(s.begin(), s.end());
  }
};

struct IdSetPairHash {
  std::size_t operator()(const std::pair<IdSet, IdSet>& p) const {
    return HashCombine(IdSetHash()(p.first), IdSetHash()(p.second));
  }
};

}  // namespace sharpcq

#endif  // SHARPCQ_UTIL_ID_SET_H_
