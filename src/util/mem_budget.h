#ifndef SHARPCQ_UTIL_MEM_BUDGET_H_
#define SHARPCQ_UTIL_MEM_BUDGET_H_

#include <atomic>
#include <cstdint>

namespace sharpcq {

// A concurrent byte budget. Charges are estimates made at allocation
// granularity (a table's columns, an index's slot arrays) — never per row —
// so accounting stays off the probe kernel's inner loops. 0 = unlimited.
//
// Two budgets exist in practice: a per-execution one created by the engine
// for each Count call (tracking bytes allocated during that execution), and
// an optional process-wide one shared by every engine in a daemon. The
// engine releases an execution's total from the process budget when the
// execution ends, so the process budget tracks the bytes of all in-flight
// queries — the quantity that decides whether one more oversized join OOMs
// the daemon.
class MemoryBudget {
 public:
  explicit MemoryBudget(std::uint64_t limit_bytes = 0) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  // Adds `bytes`; backs the charge out and returns false if it would push
  // usage past the limit. Unlimited budgets always succeed (they still
  // count, so a tracker budget reports what to release elsewhere).
  bool TryCharge(std::uint64_t bytes) {
    const std::uint64_t now =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limit_ != 0 && now > limit_) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  void Release(std::uint64_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  std::uint64_t limit() const { return limit_; }

 private:
  std::atomic<std::uint64_t> used_{0};
  const std::uint64_t limit_;
};

}  // namespace sharpcq

#endif  // SHARPCQ_UTIL_MEM_BUDGET_H_
