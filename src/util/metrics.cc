#include "util/metrics.h"

#include <bit>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace sharpcq {

namespace metrics_internal {

std::atomic<bool> g_enabled{true};

std::size_t ThreadStripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace metrics_internal

void SetMetricsEnabled(bool enabled) {
  metrics_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

std::size_t Histogram::BucketIndex(std::uint64_t micros) {
  if (micros == 0) return 0;
  const std::size_t width = static_cast<std::size_t>(std::bit_width(micros));
  return width < kBuckets - 1 ? width : kBuckets - 1;
}

double Histogram::BucketUpperMs(std::size_t bucket) {
  if (bucket + 1 >= kBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  // Bucket 0: samples below 1us, upper bound 1us. Bucket i >= 1 holds
  // [2^(i-1), 2^i) us, upper bound 2^i us.
  const std::uint64_t upper_micros = std::uint64_t{1} << bucket;
  return static_cast<double>(upper_micros) / 1000.0;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    out.count += out.buckets[i];
  }
  out.sum_ms =
      static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
      1000.0;
  return out;
}

double Histogram::Snapshot::PercentileMs(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // The rank-th sample in cumulative order (1-based, ceil).
  std::uint64_t rank =
      static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      if (i + 1 >= kBuckets) {
        // Unbounded last bucket: report twice the previous upper bound
        // rather than infinity, so dashboards stay plottable.
        return BucketUpperMs(kBuckets - 2) * 2.0;
      }
      return BucketUpperMs(i);
    }
  }
  return BucketUpperMs(kBuckets - 2) * 2.0;
}

namespace {

std::string FormatValue(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

// Merges an extra label into a "" / `{k="v"}` label group.
std::string MergeLabel(std::string_view labels, const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  std::string out(labels.substr(0, labels.size() - 1));  // drop '}'
  out += ",";
  out += extra;
  out += "}";
  return out;
}

}  // namespace

void AppendPrometheusLine(std::string* out, std::string_view name,
                          std::string_view labels, std::uint64_t value) {
  out->append(name);
  out->append(labels);
  out->append(" ");
  out->append(std::to_string(value));
  out->append("\n");
}

void AppendPrometheusLine(std::string* out, std::string_view name,
                          std::string_view labels, double value) {
  out->append(name);
  out->append(labels);
  out->append(" ");
  out->append(FormatValue(value));
  out->append("\n");
}

void Histogram::Snapshot::AppendPrometheus(std::string* out,
                                           std::string_view name,
                                           std::string_view labels) const {
  // Cumulative bucket series, truncated after the bucket that reaches the
  // total (the all-zero tail adds nothing a quantile query can use), always
  // closed with the mandatory +Inf bucket.
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i + 1 < kBuckets; ++i) {
    cumulative += buckets[i];
    AppendPrometheusLine(
        out, std::string(name) + "_bucket",
        MergeLabel(labels, "le=\"" + FormatValue(BucketUpperMs(i)) + "\""),
        cumulative);
    if (cumulative == count) break;
  }
  AppendPrometheusLine(out, std::string(name) + "_bucket",
                       MergeLabel(labels, "le=\"+Inf\""), count);
  AppendPrometheusLine(out, std::string(name) + "_sum", labels, sum_ms);
  AppendPrometheusLine(out, std::string(name) + "_count", labels, count);
}

// --- registry ----------------------------------------------------------------

struct MetricsRegistry::Impl {
  using Key = std::pair<std::string, std::string>;  // (name, labels)
  std::mutex mu;
  // std::map: iteration order == exposition order, and node stability
  // keeps returned references valid across later registrations.
  std::map<Key, std::unique_ptr<Counter>> counters;
  std::map<Key, std::unique_ptr<Gauge>> gauges;
  std::map<Key, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();  // leaked: metrics outlive static dtors
  return *impl;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view labels) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto& slot = i.counters[{std::string(name), std::string(labels)}];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view labels) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto& slot = i.gauges[{std::string(name), std::string(labels)}];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view labels) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto& slot = i.histograms[{std::string(name), std::string(labels)}];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::RenderPrometheus() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  std::string out;
  const std::string* last_family = nullptr;
  for (const auto& [key, counter] : i.counters) {
    if (last_family == nullptr || *last_family != key.first) {
      out += "# TYPE " + key.first + " counter\n";
      last_family = &key.first;
    }
    AppendPrometheusLine(&out, key.first, key.second, counter->Value());
  }
  last_family = nullptr;
  for (const auto& [key, gauge] : i.gauges) {
    if (last_family == nullptr || *last_family != key.first) {
      out += "# TYPE " + key.first + " gauge\n";
      last_family = &key.first;
    }
    const std::int64_t v = gauge->Value();
    if (v >= 0) {
      AppendPrometheusLine(&out, key.first, key.second,
                           static_cast<std::uint64_t>(v));
    } else {
      AppendPrometheusLine(&out, key.first, key.second,
                           static_cast<double>(v));
    }
  }
  last_family = nullptr;
  for (const auto& [key, histogram] : i.histograms) {
    if (last_family == nullptr || *last_family != key.first) {
      out += "# TYPE " + key.first + " histogram\n";
      last_family = &key.first;
    }
    histogram->snapshot().AppendPrometheus(&out, key.first, key.second);
  }
  return out;
}

}  // namespace sharpcq
