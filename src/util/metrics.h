#ifndef SHARPCQ_UTIL_METRICS_H_
#define SHARPCQ_UTIL_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace sharpcq {

// Process-wide metrics: named counters, gauges, and log-bucketed latency
// histograms, registered once and incremented from any thread without
// locks. The design splits the cost three ways:
//
//   - Registration (GetCounter/GetGauge/GetHistogram) takes the registry
//     mutex and returns a stable reference; call sites cache it in a
//     function-local static, so a steady-state increment never sees the
//     registry at all.
//   - Increments are striped relaxed atomics: each thread hashes to one of
//     a few cache-line-padded cells, so concurrent counts never bounce a
//     shared line. Hot loops flush in blocks on top of that — the probe
//     drivers tally into locals and Add() once per block (the "periodic
//     flush" protocol; see algebra/miss_filter.h), keeping even the atomic
//     off the per-row path.
//   - Reads (Value()/Snapshot()/RenderPrometheus) sum the stripes; they are
//     monotone and race-free but not a consistent cut across metrics,
//     which is all a scrape needs.
//
// SetMetricsEnabled(false) turns every increment into a relaxed load + no
// write — the benchmarked metrics-off configuration. Enabled by default.

bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

namespace metrics_internal {
extern std::atomic<bool> g_enabled;
// Stable small integer per thread, assigned on first use; stripes cells.
std::size_t ThreadStripe();
}  // namespace metrics_internal

inline bool MetricsEnabled() {
  return metrics_internal::g_enabled.load(std::memory_order_relaxed);
}

// Monotone counter. ~1KiB per instance (16 padded stripes) — register few,
// increment often.
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    cells_[metrics_internal::ThreadStripe() & (kStripes - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  std::uint64_t Value() const {
    std::uint64_t sum = 0;
    for (const Cell& cell : cells_) {
      sum += cell.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kStripes];
};

// Last-write-wins instantaneous value (queue depths, pool sizes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Log-bucketed latency histogram. Bucket 0 holds sub-microsecond samples;
// bucket i >= 1 holds [2^(i-1), 2^i) microseconds, so 40 buckets span one
// microsecond to ~6.4 days — every latency this system can produce — with
// one bit-scan per record and no per-bucket configuration to get wrong.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void RecordMicros(std::uint64_t micros) {
    if (!MetricsEnabled()) return;
    buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  }
  void Record(double ms) {
    if (ms < 0.0) ms = 0.0;
    RecordMicros(static_cast<std::uint64_t>(ms * 1000.0));
  }

  // Which bucket a sample lands in, and that bucket's inclusive upper
  // bound in milliseconds (the Prometheus `le` value; the last bucket is
  // +Inf). Exposed for the bucket-math unit tests.
  static std::size_t BucketIndex(std::uint64_t micros);
  static double BucketUpperMs(std::size_t bucket);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum_ms = 0.0;
    std::uint64_t buckets[kBuckets] = {};

    // Upper bound (ms) of the bucket containing the p-th percentile sample
    // (p in [0, 100]); 0 when empty. A bucket estimate — within 2x of the
    // true value by construction, which is what a log histogram trades for
    // its fixed footprint.
    double PercentileMs(double p) const;

    // Prometheus text exposition for this histogram (cumulative _bucket
    // series with le labels, then _sum and _count). `labels` is either
    // empty or a `{k="v",...}` group; the le label is merged in. The
    // caller emits the # TYPE line.
    void AppendPrometheus(std::string* out, std::string_view name,
                          std::string_view labels) const;
  };
  Snapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_micros_{0};
};

// The process-wide registry. Get* registers on first use and returns a
// reference valid for the process lifetime; repeated calls with the same
// (name, labels) return the same instance. Names follow Prometheus
// conventions (snake_case, unit-suffixed); `labels` is "" or a literal
// `{key="value",...}` group, which keys the instance and is emitted
// verbatim.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter& GetCounter(std::string_view name, std::string_view labels = "");
  Gauge& GetGauge(std::string_view name, std::string_view labels = "");
  Histogram& GetHistogram(std::string_view name,
                          std::string_view labels = "");

  // Prometheus text exposition of every registered metric, one # TYPE line
  // per family, families and label sets in lexicographic order (stable
  // output for tests and diffable scrapes).
  std::string RenderPrometheus() const;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

// Append one `name{labels} value` exposition line; shared with call sites
// (the daemon's per-instance section) that render outside the registry.
void AppendPrometheusLine(std::string* out, std::string_view name,
                          std::string_view labels, std::uint64_t value);
void AppendPrometheusLine(std::string* out, std::string_view name,
                          std::string_view labels, double value);

}  // namespace sharpcq

#endif  // SHARPCQ_UTIL_METRICS_H_
