#include "util/status.h"

#include <cerrno>
#include <cstring>

namespace sharpcq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruptData:
      return "CORRUPT_DATA";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status ErrnoStatus(StatusCode code, const std::string& what,
                   const std::string& path) {
  return Status(code, what + " " + path + ": " + std::strerror(errno));
}

}  // namespace sharpcq
