#ifndef SHARPCQ_UTIL_STATUS_H_
#define SHARPCQ_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace sharpcq {

// Error taxonomy for fallible operations (storage, server, engine edges).
// Replaces the earlier string-or-abort convention: callers branch on the
// code (a corrupt generation is recoverable, a bad argument is not) and
// surface the message to humans. Codes deliberately mirror the wire
// protocol's error strings so the daemon maps them 1:1.
enum class StatusCode : unsigned char {
  kOk = 0,
  kInvalidArgument,    // caller misuse: bad name, bad header, bad flag
  kNotFound,           // database / file / key absent
  kAlreadyExists,      // create raced an existing object
  kIoError,            // the OS failed us: open/write/fsync/rename/mmap
  kCorruptData,        // bytes exist but fail validation (checksums, magic)
  kResourceExhausted,  // a memory budget (or injected allocation) refused
  kDeadlineExceeded,
  kCancelled,
  kUnavailable,        // transient: retry may succeed (connect refused, ...)
  kFailedPrecondition,
  kInternal,
};

const char* StatusCodeName(StatusCode code);

// A code plus a human-readable message. Default-constructed Status is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status CorruptData(std::string m) {
    return Status(StatusCode::kCorruptData, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "CORRUPT_DATA: dict checksum mismatch" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

// errno-flavored helper: "cannot open /x/y: No such file or directory".
Status ErrnoStatus(StatusCode code, const std::string& what,
                   const std::string& path);

}  // namespace sharpcq

#endif  // SHARPCQ_UTIL_STATUS_H_
