#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace sharpcq {

std::string_view StripWhitespace(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  for (std::string_view piece : SplitAndTrimViews(text, sep)) {
    pieces.emplace_back(piece);
  }
  return pieces;
}

std::vector<std::string_view> SplitAndTrimViews(std::string_view text,
                                                char sep) {
  std::vector<std::string_view> pieces;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) pos = text.size();
    pieces.push_back(StripWhitespace(text.substr(start, pos - start)));
    start = pos + 1;
  }
  return pieces;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace sharpcq
