#ifndef SHARPCQ_UTIL_STRING_UTIL_H_
#define SHARPCQ_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sharpcq {

// Splits `text` on `sep`, trimming ASCII whitespace from each piece and
// dropping empty pieces.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

}  // namespace sharpcq

#endif  // SHARPCQ_UTIL_STRING_UTIL_H_
