#ifndef SHARPCQ_UTIL_STRING_UTIL_H_
#define SHARPCQ_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sharpcq {

// Splits `text` on `sep`, trimming ASCII whitespace from each piece. Empty
// pieces are preserved so positional formats (CSV rows, atom argument
// lists) keep their arity: "1,,3" yields three pieces, the middle one
// empty, and the empty string yields a single empty piece. Callers that
// need to reject blanks check for them explicitly.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

// Allocation-free variant: the returned views alias `text`, which must
// outlive them. The CSV ingest hot loop uses this together with the
// heterogeneous ValueDict lookup so fields are never copied just to probe.
std::vector<std::string_view> SplitAndTrimViews(std::string_view text,
                                                char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

// Appends `text` JSON-escaped (quotes, backslash, control characters as
// \uOOXX) WITHOUT surrounding quotes; callers supply those. Shared by the
// trace JSON renderer and the CLI's --json output.
void AppendJsonEscaped(std::string* out, std::string_view text);

}  // namespace sharpcq

#endif  // SHARPCQ_UTIL_STRING_UTIL_H_
