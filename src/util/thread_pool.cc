#include "util/thread_pool.h"

#include <utility>

namespace sharpcq {

namespace {

thread_local const ThreadPool* current_pool = nullptr;
thread_local std::size_t current_worker = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  std::size_t target;
  if (current_pool == this) {
    // Submitted from inside a task: keep the chain on this worker's queue.
    target = current_worker;
  } else {
    std::lock_guard<std::mutex> lock(wake_mu_);
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ++pending_;
  }
  wake_cv_.notify_one();
}

std::function<void()> ThreadPool::TakeTask(std::size_t worker_index) {
  const std::size_t n = queues_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = (worker_index + step) % n;
    std::lock_guard<std::mutex> lock(queues_[i]->mu);
    if (queues_[i]->tasks.empty()) continue;
    std::function<void()> task;
    if (step == 0) {  // own queue: LIFO for locality
      task = std::move(queues_[i]->tasks.back());
      queues_[i]->tasks.pop_back();
    } else {  // steal: FIFO, taking the oldest (likely largest) work
      task = std::move(queues_[i]->tasks.front());
      queues_[i]->tasks.pop_front();
    }
    return task;
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  current_pool = this;
  current_worker = worker_index;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [this] { return pending_ > 0 || stop_; });
      if (pending_ == 0 && stop_) return;
      // Claim one unit of pending work; the matching task is in some queue.
      --pending_;
    }
    // A sibling racing this claim may have taken a task pushed after our
    // claim, leaving our unit's task in a queue we already scanned past. A
    // failed take therefore returns the claim so the task is never
    // stranded; the retry rescans and must eventually find it (tasks never
    // move between queues).
    std::function<void()> task = TakeTask(worker_index);
    if (task) {
      task();
    } else {
      {
        std::lock_guard<std::mutex> lock(wake_mu_);
        ++pending_;
      }
      wake_cv_.notify_one();
    }
  }
}

}  // namespace sharpcq
