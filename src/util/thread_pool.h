#ifndef SHARPCQ_UTIL_THREAD_POOL_H_
#define SHARPCQ_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sharpcq {

// A small work-stealing thread pool for the engine's batch counting paths.
//
// Each worker owns a deque: it pops its own work LIFO (cache-warm) and
// steals FIFO from siblings when idle, so a burst of submissions landing on
// one queue still spreads across the pool. Submissions round-robin across
// the worker queues; a worker submitting from inside a task pushes to its
// own queue, keeping plan-then-execute chains on one core.
//
// Tasks are fire-and-forget std::function<void()>; callers wanting results
// wrap a promise (see CountingEngine::CountAsync). Tasks must not block on
// other tasks submitted to the same pool — counting jobs are independent by
// construction, which is all the engine needs.
class ThreadPool {
 public:
  // num_threads = 0 means std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  // Drains nothing: outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; wakes one sleeping worker.
  void Submit(std::function<void()> task);

  std::size_t num_threads() const { return workers_.size(); }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(std::size_t worker_index);
  // Pops from own queue (back = LIFO), else steals (front = FIFO) from the
  // sibling queues starting after worker_index. Empty function on failure.
  std::function<void()> TakeTask(std::size_t worker_index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake machinery: pending_ counts queued-but-not-taken tasks so a
  // notify racing with a worker going to sleep is never lost.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::size_t pending_ = 0;
  bool stop_ = false;

  std::size_t next_queue_ = 0;  // round-robin cursor, guarded by wake_mu_
};

}  // namespace sharpcq

#endif  // SHARPCQ_UTIL_THREAD_POOL_H_
