#include "util/trace.h"

#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace sharpcq {

namespace {

thread_local Trace* current_trace = nullptr;

}  // namespace

Trace::Trace() : origin_(MonotonicNow()) {
  root_.name = "query";
  current_ = &root_;
}

TraceNode* Trace::OpenSpan(std::string_view name) {
  auto node = std::make_unique<TraceNode>();
  node->name = std::string(name);
  node->start_ms = ElapsedMsSinceOrigin();
  node->parent = current_;
  TraceNode* raw = node.get();
  current_->children.push_back(std::move(node));
  current_ = raw;
  return raw;
}

void Trace::CloseSpan(TraceNode* node) {
  node->duration_ms = ElapsedMsSinceOrigin() - node->start_ms;
  // Unwind to the span's parent even if inner spans were left open (an
  // exception unwinding through nested spans closes them outer-first only
  // when every level is RAII — this keeps a missed level from corrupting
  // the parent chain).
  current_ = node->parent != nullptr ? node->parent : &root_;
}

void Trace::Finish() {
  if (finished_) return;
  finished_ = true;
  root_.duration_ms = ElapsedMsSinceOrigin();
  current_ = &root_;
}

Trace* CurrentTrace() { return current_trace; }

TraceScope::TraceScope(Trace* trace) : previous_(current_trace) {
  current_trace = trace;
}

TraceScope::~TraceScope() { current_trace = previous_; }

void TraceSpan::NoteMs(std::string_view key, double ms) {
  if (trace_ == nullptr) return;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  node_->notes.emplace_back(std::string(key), buffer);
}

// --- serialization -----------------------------------------------------------

namespace {

// Space is the token separator, so it (plus the escape character and line
// structure) must be escaped in names, keys, and values.
void AppendEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case ' ':
        *out += "\\s";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

std::string Unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 == text.size()) {
      out += text[i];
      continue;
    }
    switch (text[++i]) {
      case 's':
        out += ' ';
        break;
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      default:
        out += text[i];
    }
  }
  return out;
}

std::string FormatMs(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

void SerializeInto(const TraceNode& node, int depth, std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  AppendEscaped(out, node.name);
  *out += " +" + FormatMs(node.start_ms) + "ms " +
          FormatMs(node.duration_ms) + "ms";
  for (const auto& [key, value] : node.notes) {
    *out += " ";
    AppendEscaped(out, key);
    *out += "=";
    AppendEscaped(out, value);
  }
  *out += "\n";
  for (const auto& child : node.children) {
    SerializeInto(*child, depth + 1, out);
  }
}

std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t begin = 0;
  while (begin < line.size()) {
    std::size_t end = line.find(' ', begin);
    if (end == std::string_view::npos) end = line.size();
    if (end > begin) tokens.push_back(line.substr(begin, end - begin));
    begin = end + 1;
  }
  return tokens;
}

bool ParseMsToken(std::string_view token, bool leading_plus, double* out) {
  if (leading_plus) {
    if (token.empty() || token[0] != '+') return false;
    token.remove_prefix(1);
  }
  if (token.size() < 3 || token.substr(token.size() - 2) != "ms") {
    return false;
  }
  const std::string digits(token.substr(0, token.size() - 2));
  char* end = nullptr;
  *out = std::strtod(digits.c_str(), &end);
  return end == digits.c_str() + digits.size();
}

}  // namespace

std::string SerializeTraceNode(const TraceNode& node) {
  std::string out;
  SerializeInto(node, 0, &out);
  return out;
}

std::unique_ptr<TraceNode> ParseTraceNode(std::string_view text,
                                          std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  std::unique_ptr<TraceNode> root;
  std::vector<TraceNode*> stack;  // stack[d] = last node at depth d
  std::size_t line_no = 0;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(begin, end - begin);
    begin = end + 1;
    ++line_no;
    if (line.empty()) continue;

    std::size_t indent = 0;
    while (indent < line.size() && line[indent] == ' ') ++indent;
    if (indent % 2 != 0) {
      return fail("line " + std::to_string(line_no) + ": odd indentation");
    }
    const std::size_t depth = indent / 2;

    std::vector<std::string_view> tokens = SplitTokens(line.substr(indent));
    if (tokens.size() < 3) {
      return fail("line " + std::to_string(line_no) +
                  ": expected 'name +START.ms DURATION.ms'");
    }
    auto node = std::make_unique<TraceNode>();
    node->name = Unescape(tokens[0]);
    if (!ParseMsToken(tokens[1], /*leading_plus=*/true, &node->start_ms) ||
        !ParseMsToken(tokens[2], /*leading_plus=*/false,
                      &node->duration_ms)) {
      return fail("line " + std::to_string(line_no) + ": bad timing fields");
    }
    for (std::size_t t = 3; t < tokens.size(); ++t) {
      const std::size_t eq = tokens[t].find('=');
      if (eq == std::string_view::npos || eq == 0) {
        return fail("line " + std::to_string(line_no) +
                    ": annotation without key=value form");
      }
      node->notes.emplace_back(Unescape(tokens[t].substr(0, eq)),
                               Unescape(tokens[t].substr(eq + 1)));
    }

    TraceNode* raw = node.get();
    if (depth == 0) {
      if (root != nullptr) {
        return fail("line " + std::to_string(line_no) +
                    ": multiple roots at depth 0");
      }
      root = std::move(node);
    } else {
      if (depth > stack.size()) {
        return fail("line " + std::to_string(line_no) +
                    ": depth jumps past its parent");
      }
      TraceNode* parent = stack[depth - 1];
      node->parent = parent;
      parent->children.push_back(std::move(node));
    }
    stack.resize(depth);
    stack.push_back(raw);
  }
  if (root == nullptr) return fail("empty trace");
  return root;
}

namespace {

void AppendJsonString(std::string* out, std::string_view text) {
  *out += '"';
  AppendJsonEscaped(out, text);
  *out += '"';
}

void RenderJsonInto(const TraceNode& node, std::string* out) {
  *out += "{\"name\":";
  AppendJsonString(out, node.name);
  *out += ",\"start_ms\":" + FormatMs(node.start_ms);
  *out += ",\"duration_ms\":" + FormatMs(node.duration_ms);
  *out += ",\"notes\":{";
  for (std::size_t i = 0; i < node.notes.size(); ++i) {
    if (i != 0) *out += ",";
    AppendJsonString(out, node.notes[i].first);
    *out += ":";
    AppendJsonString(out, node.notes[i].second);
  }
  *out += "},\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i != 0) *out += ",";
    RenderJsonInto(*node.children[i], out);
  }
  *out += "]}";
}

}  // namespace

std::string RenderTraceJson(const TraceNode& node) {
  std::string out;
  RenderJsonInto(node, &out);
  return out;
}

// --- slow-query log ----------------------------------------------------------

SlowQueryLog::SlowQueryLog(Options options) : options_(options) {
  if (options_.sample_every == 0) options_.sample_every = 1;
}

bool SlowQueryLog::ShouldRecord(double total_ms) {
  if (!enabled() || total_ms < options_.threshold_ms) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t ordinal = slow_seen_++;
  return ordinal % options_.sample_every == 0;
}

void SlowQueryLog::Record(SlowQueryEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.sequence = recorded_++;
  ring_.push_back(std::move(entry));
  while (ring_.size() > options_.capacity) ring_.pop_front();
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t SlowQueryLog::total_slow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_seen_;
}

}  // namespace sharpcq
