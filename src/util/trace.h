#ifndef SHARPCQ_UTIL_TRACE_H_
#define SHARPCQ_UTIL_TRACE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/clock.h"

namespace sharpcq {

// Per-query span trees: where one execution's time went, as a tree of
// named, steady-clock-timed spans with key/value annotations — planner
// phases, the strategy that ran, cost-model steering, consistency-worklist
// iterations, morsel and filter tallies.
//
// Cost discipline (the "null sink"): tracing is OFF unless the caller
// hands CountingEngine::Count a Trace*. Instrumentation sites construct a
// TraceSpan unconditionally; when no trace is installed on the thread its
// constructor is one thread-local load and a null check — no allocation,
// no clock read, no branch in the destructor beyond the same check. The
// observability test suite asserts the zero-allocation property with a
// counting operator new.
//
// Threading: a Trace is single-threaded by design. Only the thread driving
// an execution opens spans (strategy phases, operators); morsel pool
// workers never see the trace — their numeric contributions flow through
// the ExecStats atomics and are annotated onto the enclosing span when it
// closes. This keeps span recording free of locks entirely.

struct TraceNode {
  std::string name;
  double start_ms = 0.0;     // offset from the trace origin
  double duration_ms = 0.0;  // filled when the span closes
  std::vector<std::pair<std::string, std::string>> notes;
  std::vector<std::unique_ptr<TraceNode>> children;
  TraceNode* parent = nullptr;  // null for the root
};

class Trace {
 public:
  // Opens the root span ("query") at the trace origin.
  Trace();

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  const TraceNode& root() const { return root_; }
  TraceNode* current() { return current_; }

  TraceNode* OpenSpan(std::string_view name);
  void CloseSpan(TraceNode* node);
  double ElapsedMsSinceOrigin() const { return ElapsedMs(origin_); }

  // Closes the root span (idempotent). Call before serializing.
  void Finish();

 private:
  MonotonicClock::time_point origin_;
  TraceNode root_;
  TraceNode* current_;
  bool finished_ = false;
};

// The trace installed on this thread, or nullptr (tracing off — the null
// sink). Installed by TraceScope for the duration of an engine Count.
Trace* CurrentTrace();

class TraceScope {
 public:
  explicit TraceScope(Trace* trace);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Trace* previous_;
};

// RAII span: opens a child of the current span on construction, closes it
// (stamping the duration) on destruction. Inactive — and allocation-free —
// when no trace is installed.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) : trace_(CurrentTrace()) {
    if (trace_ != nullptr) node_ = trace_->OpenSpan(name);
  }
  ~TraceSpan() {
    if (trace_ != nullptr) trace_->CloseSpan(node_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return trace_ != nullptr; }

  void Note(std::string_view key, std::string_view value) {
    if (trace_ != nullptr) {
      node_->notes.emplace_back(std::string(key), std::string(value));
    }
  }
  void NoteCount(std::string_view key, std::uint64_t value) {
    if (trace_ != nullptr) {
      node_->notes.emplace_back(std::string(key), std::to_string(value));
    }
  }
  void NoteMs(std::string_view key, double ms);

 private:
  Trace* trace_;
  TraceNode* node_ = nullptr;
};

// --- serialization -----------------------------------------------------------

// Indented text form, one span per line:
//
//   <2*depth spaces><name> +<start>ms <duration>ms [key=value ...]
//
// Names, keys, and values are escaped (backslash, space -> "\s", tab,
// newline) so the format round-trips through ParseTraceNode; it doubles as
// the human tree `sharpcq count --trace` prints and the wire body the
// daemon returns for `count ... trace=1`.
std::string SerializeTraceNode(const TraceNode& node);

// Inverse of SerializeTraceNode; nullptr with *error set on malformed
// input (bad indentation, missing timing fields, orphan depths).
std::unique_ptr<TraceNode> ParseTraceNode(std::string_view text,
                                          std::string* error);

// One-way JSON rendering, for `sharpcq count --json`:
//   {"name":...,"start_ms":...,"duration_ms":...,
//    "notes":{...},"children":[...]}
std::string RenderTraceJson(const TraceNode& node);

// --- slow-query log ----------------------------------------------------------

struct SlowQueryEntry {
  std::uint64_t sequence = 0;  // ordinal among recorded entries
  std::string wall_time;       // WallTimestamp() at record time (log only)
  std::string query;           // canonical query key
  std::string method;
  double planner_ms = 0.0;
  double execute_ms = 0.0;
  std::string trace;  // serialized span tree; "" when tracing was off
};

// Ring buffer of the slowest recent queries: every Count whose total time
// crosses the threshold is counted, every sample_every-th such query is
// recorded (deterministic sampling — no RNG, so tests and replays agree),
// and the ring retains the last `capacity` records. The engine owns one
// (EngineOptions knobs); the daemon surfaces it via `inspect ... slowlog=1`.
class SlowQueryLog {
 public:
  struct Options {
    std::size_t capacity = 32;
    double threshold_ms = 100.0;  // < 0 disables the log entirely
    std::uint32_t sample_every = 1;
  };

  explicit SlowQueryLog(Options options);

  bool enabled() const {
    return options_.capacity > 0 && options_.threshold_ms >= 0.0;
  }
  double threshold_ms() const { return options_.threshold_ms; }

  // Threshold + sampling decision for a query that took `total_ms`. True
  // means the caller should build and Record an entry.
  bool ShouldRecord(double total_ms);

  // Stamps entry.sequence and appends, evicting the oldest past capacity.
  void Record(SlowQueryEntry entry);

  std::vector<SlowQueryEntry> Entries() const;  // oldest first
  std::uint64_t total_slow() const;             // threshold crossings

 private:
  Options options_;
  mutable std::mutex mu_;
  std::uint64_t slow_seen_ = 0;
  std::uint64_t recorded_ = 0;
  std::deque<SlowQueryEntry> ring_;
};

}  // namespace sharpcq

#endif  // SHARPCQ_UTIL_TRACE_H_
