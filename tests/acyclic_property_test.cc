// Cross-validation of two independent acyclicity engines: GYO reduction
// (hypergraph/acyclic.cc) vs. the normal-form tree-projection search
// (decomp/tree_projection.cc). A hypergraph H is alpha-acyclic iff the pair
// (H, H) has a tree projection, so the two must agree on every input.

#include <gtest/gtest.h>

#include <random>

#include "decomp/tree_projection.h"
#include "hypergraph/acyclic.h"
#include "util/id_set.h"

namespace sharpcq {
namespace {

std::vector<IdSet> RandomEdges(std::mt19937_64* rng, int nodes, int edges,
                               int max_arity) {
  std::vector<IdSet> out;
  for (int e = 0; e < edges; ++e) {
    IdSet edge;
    int arity = 1 + static_cast<int>((*rng)() %
                                     static_cast<std::uint64_t>(max_arity));
    for (int i = 0; i < arity; ++i) {
      edge.Insert(static_cast<std::uint32_t>(
          (*rng)() % static_cast<std::uint64_t>(nodes)));
    }
    out.push_back(std::move(edge));
  }
  return out;
}

class AcyclicAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(AcyclicAgreementTest, GyoAgreesWithTreeProjection) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    int nodes = 3 + static_cast<int>(rng() % 5);
    int edges = 2 + static_cast<int>(rng() % 5);
    std::vector<IdSet> hypergraph = RandomEdges(&rng, nodes, edges, 3);

    bool gyo = IsAcyclic(hypergraph);
    bool tp = FindTreeProjection(hypergraph, ViewsFromEdges(hypergraph))
                  .has_value();
    EXPECT_EQ(gyo, tp) << "seed " << GetParam() << " trial " << trial;

    // When acyclic, the produced join tree must satisfy the running
    // intersection property.
    if (gyo) {
      auto tree = BuildJoinTree(hypergraph);
      ASSERT_TRUE(tree.has_value());
      EXPECT_TRUE(SatisfiesRunningIntersection(hypergraph, *tree));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcyclicAgreementTest, ::testing::Range(1, 13));

TEST(AcyclicAgreementTest, KnownCyclicFamilies) {
  // Cycles of every length 3..8 are cyclic; adding the full edge makes
  // them alpha-acyclic.
  for (std::uint32_t n = 3; n <= 8; ++n) {
    std::vector<IdSet> cycle;
    IdSet all;
    for (std::uint32_t i = 0; i < n; ++i) {
      cycle.push_back(IdSet{i, (i + 1) % n});
      all.Insert(i);
    }
    EXPECT_FALSE(IsAcyclic(cycle)) << n;
    EXPECT_FALSE(FindTreeProjection(cycle, ViewsFromEdges(cycle)).has_value())
        << n;
    cycle.push_back(all);
    EXPECT_TRUE(IsAcyclic(cycle)) << n;
  }
}

TEST(AcyclicAgreementTest, BetaCyclicButAlphaAcyclic) {
  // The classic: three overlapping triples sharing a common node are
  // alpha-acyclic via the ear {0,1,2,3}... build the fan: {0,1,2}, {0,2,3},
  // {0,1,3} plus {0,1,2,3}.
  std::vector<IdSet> fan = {IdSet{0, 1, 2}, IdSet{0, 2, 3}, IdSet{0, 1, 3}};
  EXPECT_FALSE(IsAcyclic(fan));
  fan.push_back(IdSet{0, 1, 2, 3});
  EXPECT_TRUE(IsAcyclic(fan));
}

}  // namespace
}  // namespace sharpcq
