// The relational kernel (algebra/) against the legacy VarRelation algebra
// (data/var_relation.h): a differential/property suite over random
// instances, plus the copy-on-write and index-cache contracts the counting
// strategies rely on, and the Relation membership-cache invalidation
// regression.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <random>
#include <unordered_map>
#include <vector>

#include "algebra/exec_policy.h"
#include "algebra/miss_filter.h"
#include "algebra/rel.h"
#include "algebra/simd.h"
#include "data/relation.h"
#include "data/var_relation.h"
#include "solver/consistency.h"
#include "util/cpu.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace sharpcq {
namespace {

VarRelation MakeVarRel(IdSet vars, std::vector<std::vector<Value>> rows) {
  VarRelation r(std::move(vars));
  for (const auto& row : rows) r.rel().AddRow(std::span<const Value>(row));
  return r;
}

// A random deduplicated VarRelation over `vars` with values in [0, domain).
VarRelation RandomVarRel(std::mt19937_64* rng, IdSet vars, int domain,
                         int max_rows) {
  VarRelation r(std::move(vars));
  std::uniform_int_distribution<int> rows_dist(0, max_rows);
  std::uniform_int_distribution<Value> value_dist(0, domain - 1);
  const int rows = rows_dist(*rng);
  std::vector<Value> row(r.vars().size());
  for (int i = 0; i < rows; ++i) {
    for (Value& v : row) v = value_dist(*rng);
    r.rel().AddRow(row);
  }
  r.rel().Dedup();
  return r;
}

// A random schema: a subset of the variable pool, at least `min_vars` wide.
IdSet RandomVars(std::mt19937_64* rng, std::uint32_t pool,
                 std::size_t min_vars) {
  IdSet vars;
  while (vars.size() < min_vars) {
    vars = IdSet{};
    for (std::uint32_t v = 0; v < pool; ++v) {
      if ((*rng)() % 2 == 0) vars.Insert(v);
    }
  }
  return vars;
}

bool SameAsLegacy(const Rel& kernel, const VarRelation& legacy) {
  return SameVarRelation(ToVarRelation(kernel), legacy);
}

// Reference degree computation, independent of the kernel's group index.
std::size_t LegacyDegree(const VarRelation& rel, const IdSet& free) {
  if (rel.empty()) return 0;
  IdSet key_vars = Intersect(rel.vars(), free);
  std::unordered_map<std::vector<Value>, std::size_t, VectorHash<Value>>
      multiplicity;
  std::vector<Value> key(key_vars.size());
  std::size_t degree = 0;
  for (std::size_t row = 0; row < rel.size(); ++row) {
    std::size_t j = 0;
    for (std::uint32_t v : key_vars) key[j++] = rel.At(row, v);
    degree = std::max(degree, ++multiplicity[key]);
  }
  return degree;
}

// Legacy pairwise-consistency fixpoint, mirroring the kernel loop but on
// by-value VarRelations with the legacy semijoin.
bool LegacyEnforcePairwiseConsistency(std::vector<VarRelation>* views) {
  const std::size_t n = views->size();
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && (*views)[i].vars().Intersects((*views)[j].vars())) {
        pairs.emplace_back(i, j);
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto [i, j] : pairs) {
      bool local = false;
      (*views)[i] = Semijoin((*views)[i], (*views)[j], &local);
      if (local) {
        changed = true;
        if ((*views)[i].empty()) return false;
      }
    }
  }
  for (const VarRelation& v : *views) {
    if (v.empty()) return false;
  }
  return true;
}

// --- differential property suite ---------------------------------------------

TEST(AlgebraKernelDifferentialTest, OpsAgreeWithLegacyOn250RandomInstances) {
  for (std::uint64_t seed = 1; seed <= 250; ++seed) {
    std::mt19937_64 rng(seed);
    const std::uint32_t pool = 5;
    const int domain = 2 + static_cast<int>(seed % 4);    // 2..5
    const int max_rows = 4 + static_cast<int>(seed % 17);  // 4..20

    IdSet vars_a = RandomVars(&rng, pool, 1);
    IdSet vars_b = RandomVars(&rng, pool, 1);
    VarRelation la = RandomVarRel(&rng, vars_a, domain, max_rows);
    VarRelation lb = RandomVarRel(&rng, vars_b, domain, max_rows);
    Rel ka(la);
    Rel kb(lb);

    // Join.
    EXPECT_TRUE(SameAsLegacy(Join(ka, kb), Join(la, lb))) << "seed " << seed;

    // Semijoin, both directions, with changed-flag agreement.
    bool kernel_changed = false;
    bool legacy_changed = false;
    Rel ks = Semijoin(ka, kb, &kernel_changed);
    VarRelation ls = Semijoin(la, lb, &legacy_changed);
    EXPECT_TRUE(SameAsLegacy(ks, ls)) << "seed " << seed;
    EXPECT_EQ(kernel_changed, legacy_changed) << "seed " << seed;
    EXPECT_TRUE(SameAsLegacy(Semijoin(kb, ka), Semijoin(lb, la)))
        << "seed " << seed;

    // Project onto a random subset of a's variables.
    IdSet onto;
    for (std::uint32_t v : vars_a) {
      if (rng() % 2 == 0) onto.Insert(v);
    }
    EXPECT_TRUE(SameAsLegacy(Project(ka, onto), Project(la, onto)))
        << "seed " << seed;

    // Counted projection: keys match the plain projection, counts
    // partition the source rows, and the streamed distinct count agrees.
    CountedProjection counted = ProjectCounted(ka, onto);
    EXPECT_TRUE(SameAsLegacy(counted.keys, Project(la, onto)))
        << "seed " << seed;
    CountInt total = 0;
    for (CountInt c : counted.counts) total += c;
    EXPECT_EQ(total, CountInt{la.size()}) << "seed " << seed;
    EXPECT_EQ(DistinctCount(ka, onto), Project(la, onto).size())
        << "seed " << seed;

    // SelectEqual on a random variable/value.
    std::uint32_t var = vars_a[rng() % vars_a.size()];
    Value value = static_cast<Value>(rng() % domain);
    EXPECT_TRUE(SameAsLegacy(SelectEqual(ka, var, value),
                             SelectEqual(la, var, value)))
        << "seed " << seed;

    // Degree (max group size) against an independent reference.
    EXPECT_EQ(MaxGroupSize(ka, onto), LegacyDegree(la, onto))
        << "seed " << seed;

    // Set equality both ways.
    EXPECT_TRUE(SameRel(ka, Rel(la))) << "seed " << seed;
    EXPECT_EQ(SameRel(ka, kb), SameVarRelation(la, lb)) << "seed " << seed;
  }
}

TEST(AlgebraKernelDifferentialTest, ConsistencyFixpointAgreesWithLegacy) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    std::mt19937_64 rng(seed);
    const std::uint32_t pool = 5;
    std::vector<VarRelation> legacy;
    std::vector<Rel> kernel;
    const std::size_t num_views = 2 + seed % 4;  // 2..5
    for (std::size_t i = 0; i < num_views; ++i) {
      VarRelation v = RandomVarRel(&rng, RandomVars(&rng, pool, 1),
                                   /*domain=*/3, /*max_rows=*/12);
      kernel.push_back(v);
      legacy.push_back(std::move(v));
    }
    bool kernel_ok = EnforcePairwiseConsistency(&kernel);
    bool legacy_ok = LegacyEnforcePairwiseConsistency(&legacy);
    EXPECT_EQ(kernel_ok, legacy_ok) << "seed " << seed;
    if (kernel_ok && legacy_ok) {
      for (std::size_t i = 0; i < num_views; ++i) {
        EXPECT_TRUE(SameAsLegacy(kernel[i], legacy[i]))
            << "seed " << seed << " view " << i;
      }
    }
  }
}

// --- packed-key probe kernel --------------------------------------------------

// A random deduplicated VarRelation whose values are base + stretch * u for
// u in [0, domain): stretch 1 exercises the dictionary-dense bit-packing,
// large stretches blow the 62-bit budget and force the collision-checked
// hash-word fallback.
VarRelation RandomStretchedVarRel(std::mt19937_64* rng, IdSet vars,
                                  int domain, int max_rows, Value base,
                                  Value stretch) {
  VarRelation r(std::move(vars));
  std::uniform_int_distribution<int> rows_dist(0, max_rows);
  std::uniform_int_distribution<Value> value_dist(0, domain - 1);
  const int rows = rows_dist(*rng);
  std::vector<Value> row(r.vars().size());
  for (int i = 0; i < rows; ++i) {
    for (Value& v : row) v = base + stretch * value_dist(*rng);
    r.rel().AddRow(row);
  }
  r.rel().Dedup();
  return r;
}

// Restores full-width hash words even if a test fails mid-way.
struct NarrowHashedWords {
  explicit NarrowHashedWords(int bits) {
    TableIndex::SetHashedWordBitsForTesting(bits);
  }
  ~NarrowHashedWords() { TableIndex::SetHashedWordBitsForTesting(0); }
};

// One differential round of every kernel operator against the legacy
// algebra (shared by the sequential and morsel-parallel sweeps below).
void CheckOpsAgainstLegacy(std::mt19937_64* rng, const VarRelation& la,
                           const VarRelation& lb, int domain, Value base,
                           Value stretch, std::uint64_t seed) {
  Rel ka(la);
  Rel kb(lb);

  EXPECT_TRUE(SameAsLegacy(Join(ka, kb), Join(la, lb))) << "seed " << seed;

  bool kernel_changed = false;
  bool legacy_changed = false;
  Rel ks = Semijoin(ka, kb, &kernel_changed);
  VarRelation ls = Semijoin(la, lb, &legacy_changed);
  EXPECT_TRUE(SameAsLegacy(ks, ls)) << "seed " << seed;
  EXPECT_EQ(kernel_changed, legacy_changed) << "seed " << seed;
  EXPECT_TRUE(SameAsLegacy(Semijoin(kb, ka), Semijoin(lb, la)))
      << "seed " << seed;

  IdSet onto;
  for (std::uint32_t v : la.vars()) {
    if ((*rng)() % 2 == 0) onto.Insert(v);
  }
  EXPECT_TRUE(SameAsLegacy(Project(ka, onto), Project(la, onto)))
      << "seed " << seed;
  EXPECT_EQ(DistinctCount(ka, onto), Project(la, onto).size())
      << "seed " << seed;
  EXPECT_EQ(MaxGroupSize(ka, onto), LegacyDegree(la, onto)) << "seed " << seed;

  // SelectEqual probes the single-column fast path; half the probes use a
  // value absent from the relation (poison/out-of-dictionary case).
  std::uint32_t var = la.vars()[(*rng)() % la.vars().size()];
  Value value = base + stretch * static_cast<Value>((*rng)() % domain);
  if ((*rng)() % 2 == 0) value += 1;  // usually misses every stretched value
  EXPECT_TRUE(SameAsLegacy(SelectEqual(ka, var, value),
                           SelectEqual(la, var, value)))
      << "seed " << seed;

  EXPECT_TRUE(SameRel(ka, Rel(la))) << "seed " << seed;
  EXPECT_EQ(SameRel(ka, kb), SameVarRelation(la, lb)) << "seed " << seed;
}

// The ISSUE-5 packed-key differential: >= 200 random instances over
// multi-column keys covering the dense bit-packing, shifted bases, the
// hashed fallback, collision-forcing narrowed hash words, and morsel
// parallelism both on and off — every configuration must agree with the
// legacy by-value algebra.
TEST(PackedKeyDifferentialTest, OpsAgreeWithLegacyOn240Instances) {
  ThreadPool pool(3);
  for (std::uint64_t seed = 1; seed <= 240; ++seed) {
    std::mt19937_64 rng(seed);
    const std::uint32_t pool_vars = 5;
    const int domain = 2 + static_cast<int>(seed % 4);     // 2..5
    const int max_rows = 4 + static_cast<int>(seed % 17);  // 4..20

    Value base = 0;
    Value stretch = 1;
    switch (seed % 3) {
      case 0:  // dictionary-dense small values
        break;
      case 1:  // dense packing with a shifted (negative) base
        base = -1000003;
        stretch = 7;
        break;
      case 2:  // ranges past the 62-bit budget: hashed fallback
        base = -(Value{1} << 60);
        stretch = Value{1} << 59;
        break;
    }
    // Multi-column schemas (>= 2 vars) so shared keys are usually wide.
    IdSet vars_a = RandomVars(&rng, pool_vars, 2);
    IdSet vars_b = RandomVars(&rng, pool_vars, 2);
    VarRelation la =
        RandomStretchedVarRel(&rng, vars_a, domain, max_rows, base, stretch);
    VarRelation lb =
        RandomStretchedVarRel(&rng, vars_b, domain, max_rows, base, stretch);

    // Every fourth seed narrows hash words to 3 bits, making word
    // collisions between distinct keys near-certain: the collision-checked
    // probe must still verify values.
    std::unique_ptr<NarrowHashedWords> narrowed;
    if (seed % 4 == 0) narrowed = std::make_unique<NarrowHashedWords>(3);

    if (seed % 2 == 0) {
      // Morsel-parallel: thresholds forced low so even tiny probe sides
      // split into several chunks across the pool.
      ExecPolicy policy;
      policy.pool = [&pool]() -> ThreadPool* { return &pool; };
      policy.morsel_rows = 3;
      policy.row_threshold = 1;
      ExecScope scope(std::move(policy));
      CheckOpsAgainstLegacy(&rng, la, lb, domain, base, stretch, seed);
    } else {
      CheckOpsAgainstLegacy(&rng, la, lb, domain, base, stretch, seed);
    }
  }
}

TEST(PackedKeyTest, PackingModeSelectionAndPoisonProbes) {
  // Dense: two columns with tiny ranges bit-pack exactly.
  Rel dense = MakeVarRel(IdSet{0, 1}, {{1, 10}, {2, 11}, {3, 12}, {1, 12}});
  auto dense_index = dense.table()->IndexOn({0, 1});
  EXPECT_EQ(dense_index->packing().mode, KeyPacking::Mode::kDense);
  const Value hit[2] = {1, 12};
  EXPECT_EQ(dense_index->Lookup(std::span<const Value>(hit, 2)).size(), 1u);
  // Out-of-range probes poison the word and must miss (not crash, not
  // alias an in-range key).
  const Value miss_low[2] = {0, 10};
  const Value miss_high[2] = {1, 999};
  EXPECT_TRUE(dense_index->Lookup(std::span<const Value>(miss_low, 2)).empty());
  EXPECT_TRUE(
      dense_index->Lookup(std::span<const Value>(miss_high, 2)).empty());

  // Hashed: a column spanning more than 62 bits of range.
  const Value wide = Value{1} << 62;
  Rel hashed = MakeVarRel(IdSet{0, 1}, {{-wide, 0}, {wide, 1}, {0, 1}});
  auto hashed_index = hashed.table()->IndexOn({0, 1});
  EXPECT_EQ(hashed_index->packing().mode, KeyPacking::Mode::kHashed);
  const Value hkey[2] = {wide, 1};
  EXPECT_EQ(hashed_index->Lookup(std::span<const Value>(hkey, 2)).size(), 1u);
  const Value habsent[2] = {wide, 0};
  EXPECT_TRUE(
      hashed_index->Lookup(std::span<const Value>(habsent, 2)).empty());

  // Single column: pass-through words plus the Value fast-path overload.
  auto single_index = dense.table()->IndexOn({0});
  EXPECT_EQ(single_index->packing().mode, KeyPacking::Mode::kSingle);
  EXPECT_EQ(single_index->Lookup(Value{1}).size(), 2u);
  EXPECT_TRUE(single_index->Lookup(Value{42}).empty());
  const Value one[1] = {1};
  EXPECT_EQ(single_index->Lookup(Value{1}).data(),
            single_index->Lookup(std::span<const Value>(one, 1)).data());

  // Width-0 key: one group holding every row.
  auto empty_key_index = dense.table()->IndexOn({});
  EXPECT_EQ(empty_key_index->num_groups(), 1u);
  EXPECT_EQ(empty_key_index->Lookup(std::span<const Value>{}).size(), 4u);
}

TEST(PackedKeyTest, NarrowedHashWordsForceCollisionCheckedProbes) {
  // 2-bit hash words admit only 4 distinct words; 40 distinct wide-range
  // keys therefore collide heavily, and both the index build and every
  // probe must disambiguate by comparing actual values.
  NarrowHashedWords narrowed(2);
  const Value stretch = Value{1} << 56;  // 39 * 2^56 stays well inside int64
  std::vector<std::vector<Value>> rows;
  for (Value u = 0; u < 40; ++u) {
    rows.push_back({u * stretch - (Value{1} << 60), (u % 7) * stretch});
  }
  Rel r = MakeVarRel(IdSet{0, 1}, rows);
  auto index = r.table()->IndexOn({0, 1});
  ASSERT_EQ(index->packing().mode, KeyPacking::Mode::kHashed);
  EXPECT_EQ(index->num_groups(), 40u);  // collisions never merge groups
  for (const auto& row : rows) {
    std::span<const std::uint32_t> matches =
        index->Lookup(std::span<const Value>(row));
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(r.table()->at(matches[0], 0), row[0]);
    EXPECT_EQ(r.table()->at(matches[0], 1), row[1]);
    // A perturbed key sharing the same word space must miss.
    const Value absent[2] = {row[0] + 1, row[1]};
    EXPECT_TRUE(index->Lookup(std::span<const Value>(absent, 2)).empty());
  }
}

TEST(PackedKeyTest, MorselParallelSemijoinMatchesSequentialOnLargeInputs) {
  // Large enough that the parallel plan splits into many morsels; the
  // gathered selection must be byte-identical to the sequential result.
  std::mt19937_64 rng(7);
  std::vector<std::vector<Value>> a_rows;
  std::vector<std::vector<Value>> b_rows;
  for (int i = 0; i < 5000; ++i) {
    a_rows.push_back({static_cast<Value>(rng() % 50),
                      static_cast<Value>(rng() % 50),
                      static_cast<Value>(rng() % 50)});
    b_rows.push_back({static_cast<Value>(rng() % 40),
                      static_cast<Value>(rng() % 40)});
  }
  VarRelation la = MakeVarRel(IdSet{0, 1, 2}, a_rows);
  la.rel().Dedup();
  VarRelation lb = MakeVarRel(IdSet{1, 2}, b_rows);
  lb.rel().Dedup();
  Rel ka(la);
  Rel kb(lb);
  Rel seq_semi = Semijoin(ka, kb);
  Rel seq_join = Join(ka, kb);

  ThreadPool pool(4);
  ExecPolicy policy;
  policy.pool = [&pool]() -> ThreadPool* { return &pool; };
  policy.morsel_rows = 128;
  policy.row_threshold = 256;
  ExecScope scope(std::move(policy));
  Rel par_semi = Semijoin(ka, kb);
  Rel par_join = Join(ka, kb);
  EXPECT_TRUE(SameRel(par_semi, seq_semi));
  EXPECT_TRUE(SameRel(par_join, seq_join));
  // Chunk gathering preserves probe order: results are row-for-row equal,
  // not just set-equal.
  ASSERT_EQ(par_join.size(), seq_join.size());
  for (std::size_t i = 0; i < par_join.size(); ++i) {
    for (int c = 0; c < par_join.table()->arity(); ++c) {
      ASSERT_EQ(par_join.table()->at(i, c), seq_join.table()->at(i, c));
    }
  }
}

// --- SIMD probe kernel, miss filters, radix builds ----------------------------

// Restores the auto-dispatched kernel even if a test fails mid-way.
struct ForcedProbeKernel {
  explicit ForcedProbeKernel(ProbeKernel kernel) {
    SetProbeKernelForTesting(kernel);
  }
  ~ForcedProbeKernel() { SetProbeKernelForTesting(ProbeKernel::kAuto); }
};

// Restores the L2-derived radix threshold even if a test fails mid-way.
struct ForcedRadixThreshold {
  explicit ForcedRadixThreshold(std::size_t rows) {
    TableIndex::SetRadixRowThresholdForTesting(rows);
  }
  ~ForcedRadixThreshold() { TableIndex::SetRadixRowThresholdForTesting(0); }
};

// The ISSUE-6 axes differential: >= 200 instances sweeping the probe
// kernel's new degrees of freedom — SIMD vs scalar dispatch, miss filters
// on vs off, radix-partitioned vs streaming index builds — crossed with the
// packing-mode configurations of the ISSUE-5 sweep. Every combination must
// agree with the legacy by-value algebra. (Forcing kSimd on a machine
// without AVX2 resolves to the scalar kernel, so the sweep degrades
// gracefully rather than skipping.)
TEST(ProbeKernelAxesDifferentialTest, FilterSimdRadixAxesAgreeOn216Instances) {
  for (std::uint64_t seed = 1; seed <= 27; ++seed) {
    for (int axes = 0; axes < 8; ++axes) {
      const bool force_simd = (axes & 1) != 0;
      const bool filters_off = (axes & 2) != 0;
      const bool force_radix = (axes & 4) != 0;
      ForcedProbeKernel kernel(force_simd ? ProbeKernel::kSimd
                                          : ProbeKernel::kScalar);
      // Threshold 1 pushes even these tiny builds through the radix
      // partitioner (including its group renumbering); 0 keeps the
      // L2-derived default, i.e. the streaming path.
      ForcedRadixThreshold radix(force_radix ? 1 : 0);
      std::optional<MissFilterDisableScope> no_filters;
      if (filters_off) no_filters.emplace();

      std::mt19937_64 rng(seed * 8 + static_cast<std::uint64_t>(axes));
      const int domain = 2 + static_cast<int>(seed % 4);     // 2..5
      const int max_rows = 4 + static_cast<int>(seed % 17);  // 4..20
      Value base = 0;
      Value stretch = 1;
      switch (seed % 3) {
        case 0:
          break;
        case 1:
          base = -1000003;
          stretch = 7;
          break;
        case 2:  // hashed fallback
          base = -(Value{1} << 60);
          stretch = Value{1} << 59;
          break;
      }
      // Every fifth seed narrows hash words so the filter and the slot
      // walk both face word collisions between distinct keys.
      std::unique_ptr<NarrowHashedWords> narrowed;
      if (seed % 5 == 0) narrowed = std::make_unique<NarrowHashedWords>(3);

      IdSet vars_a = RandomVars(&rng, 5, 2);
      IdSet vars_b = RandomVars(&rng, 5, 2);
      VarRelation la =
          RandomStretchedVarRel(&rng, vars_a, domain, max_rows, base, stretch);
      VarRelation lb =
          RandomStretchedVarRel(&rng, vars_b, domain, max_rows, base, stretch);
      CheckOpsAgainstLegacy(&rng, la, lb, domain, base, stretch,
                            seed * 8 + static_cast<std::uint64_t>(axes));
    }
  }
}

TEST(SimdKernelTest, SimdAndScalarPrimitivesAreByteIdentical) {
  if (!SimdProbeAvailable()) {
    GTEST_SKIP() << "AVX2 kernel not available in this build/CPU";
  }
  std::mt19937_64 rng(11);
  const std::size_t n = 1031;  // odd: exercises the vector tails
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) w = rng();
  words[0] = 0;
  words[1] = ~std::uint64_t{0};
  words[2] = KeyPacking::kPoison;

  std::vector<std::uint64_t> scalar_hashes(n);
  std::vector<std::uint64_t> simd_hashes(n);
  {
    ForcedProbeKernel scalar(ProbeKernel::kScalar);
    HashWordsBatch(words.data(), n, scalar_hashes.data());
  }
  {
    ForcedProbeKernel simd(ProbeKernel::kSimd);
    HashWordsBatch(words.data(), n, simd_hashes.data());
  }
  EXPECT_EQ(std::memcmp(scalar_hashes.data(), simd_hashes.data(),
                        n * sizeof(std::uint64_t)),
            0);

  // Dense digit packing: values straddling the in-range box, a negative
  // base, and a nonzero accumulator (the |= contract).
  std::vector<Value> col(n);
  for (auto& v : col) v = static_cast<Value>(rng() % 2000) - 1000;
  const std::uint64_t base = static_cast<std::uint64_t>(Value{-900});
  const std::uint64_t range = 1500;
  const int shift = 13;
  std::vector<std::uint64_t> scalar_out(n);
  std::vector<std::uint64_t> simd_out(n);
  for (std::size_t i = 0; i < n; ++i) scalar_out[i] = simd_out[i] = rng() % 8;
  {
    ForcedProbeKernel scalar(ProbeKernel::kScalar);
    PackDenseDigits(col.data(), n, base, range, shift, scalar_out.data());
  }
  {
    ForcedProbeKernel simd(ProbeKernel::kSimd);
    PackDenseDigits(col.data(), n, base, range, shift, simd_out.data());
  }
  EXPECT_EQ(std::memcmp(scalar_out.data(), simd_out.data(),
                        n * sizeof(std::uint64_t)),
            0);
}

// Both filter layouts: no stored key may be filtered out (one-sidedness),
// and a false positive must fall through to a slot walk that misses.
TEST(MissFilterTest, OneSidedAndFalsePositivesResolveToMiss) {
  for (const std::size_t keys : {100u, 5000u}) {
    std::vector<std::vector<Value>> rows;
    rows.reserve(keys);
    for (std::size_t u = 0; u < keys; ++u) {
      rows.push_back({static_cast<Value>(u * 3)});
    }
    Rel r = MakeVarRel(IdSet{0}, rows);
    auto index = r.table()->IndexOn({0});
    ASSERT_EQ(index->num_groups(), keys);
    EXPECT_EQ(index->miss_filter().kind(),
              keys <= 2048 ? MissFilter::Kind::kTagVector
                           : MissFilter::Kind::kBlockedBloom);

    // One-sided: every stored word passes.
    for (std::size_t u = 0; u < keys; ++u) {
      EXPECT_TRUE(index->FilterMightContainWord(
          static_cast<std::uint64_t>(u * 3)))
          << "key " << u * 3;
    }

    // Hunt for a false positive among absent keys; at the filters' ~2-3%
    // rates one shows up in the first few thousand candidates.
    bool found_false_positive = false;
    std::vector<std::uint64_t> absent_word(1);
    std::vector<std::uint32_t> group(1);
    for (std::uint64_t candidate = 1; candidate < 1000000 * 3;
         candidate += 3) {  // == 1 mod 3: never a stored key
      if (!index->FilterMightContainWord(candidate)) continue;
      found_false_positive = true;
      // The slot walk must still resolve it as a miss, through both the
      // point lookup and the block driver.
      EXPECT_TRUE(index->Lookup(static_cast<Value>(candidate)).empty());
      absent_word[0] = candidate;
      index->ResolveProbeWords(absent_word.data(), 1, nullptr, group.data());
      EXPECT_EQ(group[0], TableIndex::kNoGroup);
      break;
    }
    EXPECT_TRUE(found_false_positive) << keys << " keys";
  }
}

TEST(MissFilterTest, CountersTallyHitsAndPassesAndDisableScopeStopsThem) {
  std::vector<std::vector<Value>> build_rows;
  for (Value u = 0; u < 64; ++u) build_rows.push_back({u, u});
  std::vector<std::vector<Value>> probe_rows;
  for (Value u = 0; u < 512; ++u) probe_rows.push_back({u + 100000, u});
  probe_rows.push_back({5, 5});  // one present key
  Rel build = MakeVarRel(IdSet{0, 1}, build_rows);
  Rel probe = MakeVarRel(IdSet{0, 1}, probe_rows);

  const ProbeFilterStats before = GlobalProbeFilterStats();
  Rel kept = Semijoin(probe, build);
  const ProbeFilterStats after = GlobalProbeFilterStats();
  EXPECT_EQ(kept.size(), 1u);
  // Nearly every probe is a definite miss the filter absorbs; the present
  // key (plus any false positives) walks the slots.
  EXPECT_GT(after.hits - before.hits, 400u);
  EXPECT_GE(after.passes - before.passes, 1u);

  MissFilterDisableScope off;
  const ProbeFilterStats disabled_before = GlobalProbeFilterStats();
  Rel kept_off = Semijoin(probe, build);
  const ProbeFilterStats disabled_after = GlobalProbeFilterStats();
  EXPECT_EQ(kept_off.size(), 1u);
  EXPECT_EQ(disabled_after.hits, disabled_before.hits);
  EXPECT_EQ(disabled_after.passes, disabled_before.passes);
}

TEST(RadixBuildTest, ThresholdDefaultsToCacheDerivedValueAndOverrides) {
  // No override: the cache-derived default — slot arrays must overflow the
  // last-level cache before partitioning engages, with a floor so small
  // builds always stream.
  const std::size_t expected =
      std::max<std::size_t>(65536, LastLevelCacheBytes() / 13);
  EXPECT_EQ(TableIndex::RadixRowThreshold(), expected);
  {
    ForcedRadixThreshold forced(5);
    EXPECT_EQ(TableIndex::RadixRowThreshold(), 5u);
  }
  EXPECT_EQ(TableIndex::RadixRowThreshold(), expected);
}

// The radix build must be semantically invisible: same group ids, keys,
// words, CSR row lists, and degree as the streaming build, for every
// packing mode.
TEST(RadixBuildTest, RadixAndStreamingBuildsProduceIdenticalGroupStructure) {
  for (int mode = 0; mode < 3; ++mode) {
    std::mt19937_64 rng(31 + static_cast<std::uint64_t>(mode));
    // Mode 2's stretch blows the 62-bit dense budget across two columns
    // (2 * 61 bits) while 39 * 2^55 still fits int64.
    const Value stretch = mode == 2 ? (Value{1} << 55) : 1;
    std::vector<std::vector<Value>> rows;
    for (int i = 0; i < 3000; ++i) {
      Value a = static_cast<Value>(rng() % 40) * stretch;
      Value b = static_cast<Value>(rng() % 40) * stretch;
      if (mode == 0) {
        rows.push_back({a});  // kSingle
      } else {
        rows.push_back({a, b});  // kDense (mode 1) / kHashed (mode 2)
      }
    }
    const IdSet vars = mode == 0 ? IdSet{0} : IdSet{0, 1};
    std::vector<int> key_cols(mode == 0 ? 1 : 2);
    for (std::size_t c = 0; c < key_cols.size(); ++c) {
      key_cols[c] = static_cast<int>(c);
    }

    Rel streaming_rel = MakeVarRel(vars, rows);
    auto streaming = streaming_rel.table()->IndexOn(key_cols);
    ASSERT_FALSE(streaming->built_with_radix());

    ForcedRadixThreshold forced(1);
    Rel radix_rel = MakeVarRel(vars, rows);  // fresh table, fresh index
    auto radix = radix_rel.table()->IndexOn(key_cols);
    ASSERT_TRUE(radix->built_with_radix());

    ASSERT_EQ(radix->num_groups(), streaming->num_groups()) << "mode " << mode;
    EXPECT_EQ(radix->max_group_size(), streaming->max_group_size());
    for (std::size_t g = 0; g < streaming->num_groups(); ++g) {
      EXPECT_EQ(radix->group_words()[g], streaming->group_words()[g])
          << "mode " << mode << " group " << g;
      std::span<const Value> rk = radix->group_key(g);
      std::span<const Value> sk = streaming->group_key(g);
      ASSERT_EQ(rk.size(), sk.size());
      for (std::size_t j = 0; j < rk.size(); ++j) ASSERT_EQ(rk[j], sk[j]);
      std::span<const std::uint32_t> rr = radix->group_rows(g);
      std::span<const std::uint32_t> sr = streaming->group_rows(g);
      ASSERT_EQ(rr.size(), sr.size()) << "mode " << mode << " group " << g;
      for (std::size_t j = 0; j < rr.size(); ++j) ASSERT_EQ(rr[j], sr[j]);
    }
  }
}

TEST(TableBuilderTest, ReservedTaggedDedupKeepsFirstOccurrences) {
  // Heavy duplication through the tag-fronted dedup hash, with the
  // capacity reserved up front from the input size.
  TableBuilder builder(2);
  builder.ReserveRows(4000);
  for (int i = 0; i < 4000; ++i) {
    const Value a = i % 37;
    const Value b = i % 11;
    const Value row[2] = {a, b};
    builder.AddRow(std::span<const Value>(row, 2));
  }
  auto table = std::move(builder).Build();
  // lcm(37, 11) = 407 distinct pairs.
  ASSERT_EQ(table->rows(), 407u);
  // First occurrences in input order: row i of the output is the i-th
  // fresh pair of the input stream.
  EXPECT_EQ(table->at(0, 0), 0);
  EXPECT_EQ(table->at(0, 1), 0);
  EXPECT_EQ(table->at(1, 0), 1);
  EXPECT_EQ(table->at(1, 1), 1);
  EXPECT_EQ(table->at(37, 0), 0);   // 37 % 37 == 0, 37 % 11 == 4
  EXPECT_EQ(table->at(37, 1), 4);
}

// --- worklist consistency propagator ------------------------------------------

// Chain schemas are acyclic (the worklist downgrades to the join-tree full
// reducer); triangles are cyclic (the worklist itself runs). Both must
// match the legacy full-rescan fixpoint.
TEST(WorklistConsistencyTest, MatchesLegacyFixpointOnChainsAndTriangles) {
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    std::mt19937_64 rng(seed);
    std::vector<VarRelation> legacy;
    const bool triangle = seed % 2 == 0;
    if (triangle) {
      legacy.push_back(RandomVarRel(&rng, IdSet{0, 1}, 3, 14));
      legacy.push_back(RandomVarRel(&rng, IdSet{1, 2}, 3, 14));
      legacy.push_back(RandomVarRel(&rng, IdSet{0, 2}, 3, 14));
      if (seed % 4 == 0) {  // a 4th view re-using an edge
        legacy.push_back(RandomVarRel(&rng, IdSet{0, 1}, 3, 14));
      }
    } else {
      const std::uint32_t len = 3 + static_cast<std::uint32_t>(seed % 3);
      for (std::uint32_t i = 0; i < len; ++i) {
        legacy.push_back(RandomVarRel(&rng, IdSet{i, i + 1}, 3, 14));
      }
    }
    std::vector<Rel> kernel(legacy.begin(), legacy.end());
    bool kernel_ok = EnforcePairwiseConsistency(&kernel);
    bool legacy_ok = LegacyEnforcePairwiseConsistency(&legacy);
    EXPECT_EQ(kernel_ok, legacy_ok) << "seed " << seed;
    if (kernel_ok && legacy_ok) {
      for (std::size_t i = 0; i < legacy.size(); ++i) {
        EXPECT_TRUE(SameAsLegacy(kernel[i], legacy[i]))
            << "seed " << seed << " view " << i;
      }
    }
  }
}

// --- copy-on-write and sharing contracts --------------------------------------

TEST(AlgebraKernelTest, ConversionDedupsAndUnitHasOneEmptyRow) {
  VarRelation dup = MakeVarRel(IdSet{0}, {{1}, {1}, {2}});
  Rel r(dup);
  EXPECT_EQ(r.size(), 2u);
  Rel unit = Rel::Unit();
  EXPECT_EQ(unit.size(), 1u);
  EXPECT_TRUE(unit.vars().empty());
  // Unit is the Join identity.
  Rel a = MakeVarRel(IdSet{0, 1}, {{1, 10}, {2, 20}});
  EXPECT_TRUE(SameRel(Join(a, unit), a));
}

TEST(AlgebraKernelTest, CopiesAndNoOpSemijoinShareTheTable) {
  Rel a = MakeVarRel(IdSet{0, 1}, {{1, 10}, {2, 20}, {3, 30}});
  Rel copy = a;
  EXPECT_EQ(copy.table().get(), a.table().get());

  // b matches every row of a: the semijoin removes nothing and must return
  // a handle to a's table itself, preserving cached indexes.
  Rel b = MakeVarRel(IdSet{1, 2}, {{10, 5}, {20, 5}, {30, 6}});
  bool changed = true;
  Rel kept = Semijoin(a, b, &changed);
  EXPECT_FALSE(changed);
  EXPECT_EQ(kept.table().get(), a.table().get());

  // Identity projection shares too.
  EXPECT_EQ(Project(a, a.vars()).table().get(), a.table().get());

  // A removing semijoin materializes a fresh table.
  Rel c = MakeVarRel(IdSet{1}, {{10}});
  Rel reduced = Semijoin(a, c, &changed);
  EXPECT_TRUE(changed);
  EXPECT_NE(reduced.table().get(), a.table().get());
  EXPECT_EQ(reduced.size(), 1u);
}

TEST(AlgebraKernelTest, IndexCacheIsReusedPerKeyColumnSet) {
  Rel b = MakeVarRel(IdSet{0, 1}, {{1, 10}, {2, 20}, {3, 30}});
  EXPECT_EQ(b.table()->CachedIndexCount(), 0u);
  auto first = b.table()->IndexOn({0});
  EXPECT_EQ(b.table()->CachedIndexCount(), 1u);
  auto second = b.table()->IndexOn({0});
  EXPECT_EQ(second.get(), first.get());  // same cached index object
  EXPECT_EQ(b.table()->CachedIndexCount(), 1u);
  b.table()->IndexOn({1});
  EXPECT_EQ(b.table()->CachedIndexCount(), 2u);

  // Repeated semijoins against the same right-hand side hit the cache: the
  // index over the shared columns is built once.
  Rel a = MakeVarRel(IdSet{0}, {{1}, {2}});
  std::size_t before = b.table()->CachedIndexCount();
  Semijoin(a, b);
  std::size_t after_one = b.table()->CachedIndexCount();
  Semijoin(a, b);
  Semijoin(a, b);
  EXPECT_EQ(b.table()->CachedIndexCount(), after_one);
  EXPECT_GE(after_one, before);
}

TEST(AlgebraKernelTest, GroupIndexExposesCountedGroups) {
  Rel r = MakeVarRel(IdSet{0, 1}, {{1, 10}, {1, 11}, {2, 20}});
  CountedProjection counted = ProjectCounted(r, IdSet{0});
  ASSERT_EQ(counted.keys.size(), 2u);
  ASSERT_EQ(counted.counts.size(), 2u);
  // Key 1 has multiplicity 2, key 2 multiplicity 1 (order-insensitive).
  CountInt total = counted.counts[0] + counted.counts[1];
  EXPECT_EQ(total, CountInt{3});
  EXPECT_EQ(DistinctCount(r, IdSet{0}), 2u);
  EXPECT_EQ(MaxGroupSize(r, IdSet{0}), 2u);
  EXPECT_EQ(MaxGroupSize(r, IdSet{0, 1}), 1u);
  // Empty key set: one group holding every row.
  EXPECT_EQ(MaxGroupSize(r, IdSet{}), 3u);
}

// --- Relation membership-cache invalidation ----------------------------------

TEST(RelationMembershipCacheTest, InvalidatedByMutation) {
  Relation r(2);
  r.AddRow({1, 2});
  r.AddRow({3, 4});
  EXPECT_FALSE(r.HasCachedMembershipIndex());

  // First membership check builds and caches the index.
  EXPECT_TRUE(r.ContainsRow(std::vector<Value>{1, 2}));
  EXPECT_TRUE(r.HasCachedMembershipIndex());
  EXPECT_FALSE(r.ContainsRow(std::vector<Value>{9, 9}));

  // Mutation drops the cache; the next check must see the new row.
  r.AddRow({9, 9});
  EXPECT_FALSE(r.HasCachedMembershipIndex());
  EXPECT_TRUE(r.ContainsRow(std::vector<Value>{9, 9}));
  EXPECT_TRUE(r.ContainsRow(std::vector<Value>{1, 2}));

  // Dedup (which sorts) also invalidates; results stay correct.
  r.AddRow({1, 2});
  r.Dedup();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.ContainsRow(std::vector<Value>{1, 2}));
  EXPECT_TRUE(r.ContainsRow(std::vector<Value>{9, 9}));
  EXPECT_FALSE(r.ContainsRow(std::vector<Value>{2, 1}));

  // Copies do not inherit the cache but answer correctly.
  EXPECT_TRUE(r.ContainsRow(std::vector<Value>{3, 4}));
  Relation copy = r;
  EXPECT_FALSE(copy.HasCachedMembershipIndex());
  EXPECT_TRUE(copy.ContainsRow(std::vector<Value>{3, 4}));
}

}  // namespace
}  // namespace sharpcq
