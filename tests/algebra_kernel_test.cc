// The relational kernel (algebra/) against the legacy VarRelation algebra
// (data/var_relation.h): a differential/property suite over random
// instances, plus the copy-on-write and index-cache contracts the counting
// strategies rely on, and the Relation membership-cache invalidation
// regression.

#include <gtest/gtest.h>

#include <random>
#include <unordered_map>
#include <vector>

#include "algebra/rel.h"
#include "data/relation.h"
#include "data/var_relation.h"
#include "solver/consistency.h"
#include "util/hash.h"

namespace sharpcq {
namespace {

VarRelation MakeVarRel(IdSet vars, std::vector<std::vector<Value>> rows) {
  VarRelation r(std::move(vars));
  for (const auto& row : rows) r.rel().AddRow(std::span<const Value>(row));
  return r;
}

// A random deduplicated VarRelation over `vars` with values in [0, domain).
VarRelation RandomVarRel(std::mt19937_64* rng, IdSet vars, int domain,
                         int max_rows) {
  VarRelation r(std::move(vars));
  std::uniform_int_distribution<int> rows_dist(0, max_rows);
  std::uniform_int_distribution<Value> value_dist(0, domain - 1);
  const int rows = rows_dist(*rng);
  std::vector<Value> row(r.vars().size());
  for (int i = 0; i < rows; ++i) {
    for (Value& v : row) v = value_dist(*rng);
    r.rel().AddRow(row);
  }
  r.rel().Dedup();
  return r;
}

// A random schema: a subset of the variable pool, at least `min_vars` wide.
IdSet RandomVars(std::mt19937_64* rng, std::uint32_t pool,
                 std::size_t min_vars) {
  IdSet vars;
  while (vars.size() < min_vars) {
    vars = IdSet{};
    for (std::uint32_t v = 0; v < pool; ++v) {
      if ((*rng)() % 2 == 0) vars.Insert(v);
    }
  }
  return vars;
}

bool SameAsLegacy(const Rel& kernel, const VarRelation& legacy) {
  return SameVarRelation(ToVarRelation(kernel), legacy);
}

// Reference degree computation, independent of the kernel's group index.
std::size_t LegacyDegree(const VarRelation& rel, const IdSet& free) {
  if (rel.empty()) return 0;
  IdSet key_vars = Intersect(rel.vars(), free);
  std::unordered_map<std::vector<Value>, std::size_t, VectorHash<Value>>
      multiplicity;
  std::vector<Value> key(key_vars.size());
  std::size_t degree = 0;
  for (std::size_t row = 0; row < rel.size(); ++row) {
    std::size_t j = 0;
    for (std::uint32_t v : key_vars) key[j++] = rel.At(row, v);
    degree = std::max(degree, ++multiplicity[key]);
  }
  return degree;
}

// Legacy pairwise-consistency fixpoint, mirroring the kernel loop but on
// by-value VarRelations with the legacy semijoin.
bool LegacyEnforcePairwiseConsistency(std::vector<VarRelation>* views) {
  const std::size_t n = views->size();
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && (*views)[i].vars().Intersects((*views)[j].vars())) {
        pairs.emplace_back(i, j);
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto [i, j] : pairs) {
      bool local = false;
      (*views)[i] = Semijoin((*views)[i], (*views)[j], &local);
      if (local) {
        changed = true;
        if ((*views)[i].empty()) return false;
      }
    }
  }
  for (const VarRelation& v : *views) {
    if (v.empty()) return false;
  }
  return true;
}

// --- differential property suite ---------------------------------------------

TEST(AlgebraKernelDifferentialTest, OpsAgreeWithLegacyOn250RandomInstances) {
  for (std::uint64_t seed = 1; seed <= 250; ++seed) {
    std::mt19937_64 rng(seed);
    const std::uint32_t pool = 5;
    const int domain = 2 + static_cast<int>(seed % 4);    // 2..5
    const int max_rows = 4 + static_cast<int>(seed % 17);  // 4..20

    IdSet vars_a = RandomVars(&rng, pool, 1);
    IdSet vars_b = RandomVars(&rng, pool, 1);
    VarRelation la = RandomVarRel(&rng, vars_a, domain, max_rows);
    VarRelation lb = RandomVarRel(&rng, vars_b, domain, max_rows);
    Rel ka(la);
    Rel kb(lb);

    // Join.
    EXPECT_TRUE(SameAsLegacy(Join(ka, kb), Join(la, lb))) << "seed " << seed;

    // Semijoin, both directions, with changed-flag agreement.
    bool kernel_changed = false;
    bool legacy_changed = false;
    Rel ks = Semijoin(ka, kb, &kernel_changed);
    VarRelation ls = Semijoin(la, lb, &legacy_changed);
    EXPECT_TRUE(SameAsLegacy(ks, ls)) << "seed " << seed;
    EXPECT_EQ(kernel_changed, legacy_changed) << "seed " << seed;
    EXPECT_TRUE(SameAsLegacy(Semijoin(kb, ka), Semijoin(lb, la)))
        << "seed " << seed;

    // Project onto a random subset of a's variables.
    IdSet onto;
    for (std::uint32_t v : vars_a) {
      if (rng() % 2 == 0) onto.Insert(v);
    }
    EXPECT_TRUE(SameAsLegacy(Project(ka, onto), Project(la, onto)))
        << "seed " << seed;

    // Counted projection: keys match the plain projection, counts
    // partition the source rows, and the streamed distinct count agrees.
    CountedProjection counted = ProjectCounted(ka, onto);
    EXPECT_TRUE(SameAsLegacy(counted.keys, Project(la, onto)))
        << "seed " << seed;
    CountInt total = 0;
    for (CountInt c : counted.counts) total += c;
    EXPECT_EQ(total, CountInt{la.size()}) << "seed " << seed;
    EXPECT_EQ(DistinctCount(ka, onto), Project(la, onto).size())
        << "seed " << seed;

    // SelectEqual on a random variable/value.
    std::uint32_t var = vars_a[rng() % vars_a.size()];
    Value value = static_cast<Value>(rng() % domain);
    EXPECT_TRUE(SameAsLegacy(SelectEqual(ka, var, value),
                             SelectEqual(la, var, value)))
        << "seed " << seed;

    // Degree (max group size) against an independent reference.
    EXPECT_EQ(MaxGroupSize(ka, onto), LegacyDegree(la, onto))
        << "seed " << seed;

    // Set equality both ways.
    EXPECT_TRUE(SameRel(ka, Rel(la))) << "seed " << seed;
    EXPECT_EQ(SameRel(ka, kb), SameVarRelation(la, lb)) << "seed " << seed;
  }
}

TEST(AlgebraKernelDifferentialTest, ConsistencyFixpointAgreesWithLegacy) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    std::mt19937_64 rng(seed);
    const std::uint32_t pool = 5;
    std::vector<VarRelation> legacy;
    std::vector<Rel> kernel;
    const std::size_t num_views = 2 + seed % 4;  // 2..5
    for (std::size_t i = 0; i < num_views; ++i) {
      VarRelation v = RandomVarRel(&rng, RandomVars(&rng, pool, 1),
                                   /*domain=*/3, /*max_rows=*/12);
      kernel.push_back(v);
      legacy.push_back(std::move(v));
    }
    bool kernel_ok = EnforcePairwiseConsistency(&kernel);
    bool legacy_ok = LegacyEnforcePairwiseConsistency(&legacy);
    EXPECT_EQ(kernel_ok, legacy_ok) << "seed " << seed;
    if (kernel_ok && legacy_ok) {
      for (std::size_t i = 0; i < num_views; ++i) {
        EXPECT_TRUE(SameAsLegacy(kernel[i], legacy[i]))
            << "seed " << seed << " view " << i;
      }
    }
  }
}

// --- copy-on-write and sharing contracts --------------------------------------

TEST(AlgebraKernelTest, ConversionDedupsAndUnitHasOneEmptyRow) {
  VarRelation dup = MakeVarRel(IdSet{0}, {{1}, {1}, {2}});
  Rel r(dup);
  EXPECT_EQ(r.size(), 2u);
  Rel unit = Rel::Unit();
  EXPECT_EQ(unit.size(), 1u);
  EXPECT_TRUE(unit.vars().empty());
  // Unit is the Join identity.
  Rel a = MakeVarRel(IdSet{0, 1}, {{1, 10}, {2, 20}});
  EXPECT_TRUE(SameRel(Join(a, unit), a));
}

TEST(AlgebraKernelTest, CopiesAndNoOpSemijoinShareTheTable) {
  Rel a = MakeVarRel(IdSet{0, 1}, {{1, 10}, {2, 20}, {3, 30}});
  Rel copy = a;
  EXPECT_EQ(copy.table().get(), a.table().get());

  // b matches every row of a: the semijoin removes nothing and must return
  // a handle to a's table itself, preserving cached indexes.
  Rel b = MakeVarRel(IdSet{1, 2}, {{10, 5}, {20, 5}, {30, 6}});
  bool changed = true;
  Rel kept = Semijoin(a, b, &changed);
  EXPECT_FALSE(changed);
  EXPECT_EQ(kept.table().get(), a.table().get());

  // Identity projection shares too.
  EXPECT_EQ(Project(a, a.vars()).table().get(), a.table().get());

  // A removing semijoin materializes a fresh table.
  Rel c = MakeVarRel(IdSet{1}, {{10}});
  Rel reduced = Semijoin(a, c, &changed);
  EXPECT_TRUE(changed);
  EXPECT_NE(reduced.table().get(), a.table().get());
  EXPECT_EQ(reduced.size(), 1u);
}

TEST(AlgebraKernelTest, IndexCacheIsReusedPerKeyColumnSet) {
  Rel b = MakeVarRel(IdSet{0, 1}, {{1, 10}, {2, 20}, {3, 30}});
  EXPECT_EQ(b.table()->CachedIndexCount(), 0u);
  auto first = b.table()->IndexOn({0});
  EXPECT_EQ(b.table()->CachedIndexCount(), 1u);
  auto second = b.table()->IndexOn({0});
  EXPECT_EQ(second.get(), first.get());  // same cached index object
  EXPECT_EQ(b.table()->CachedIndexCount(), 1u);
  b.table()->IndexOn({1});
  EXPECT_EQ(b.table()->CachedIndexCount(), 2u);

  // Repeated semijoins against the same right-hand side hit the cache: the
  // index over the shared columns is built once.
  Rel a = MakeVarRel(IdSet{0}, {{1}, {2}});
  std::size_t before = b.table()->CachedIndexCount();
  Semijoin(a, b);
  std::size_t after_one = b.table()->CachedIndexCount();
  Semijoin(a, b);
  Semijoin(a, b);
  EXPECT_EQ(b.table()->CachedIndexCount(), after_one);
  EXPECT_GE(after_one, before);
}

TEST(AlgebraKernelTest, GroupIndexExposesCountedGroups) {
  Rel r = MakeVarRel(IdSet{0, 1}, {{1, 10}, {1, 11}, {2, 20}});
  CountedProjection counted = ProjectCounted(r, IdSet{0});
  ASSERT_EQ(counted.keys.size(), 2u);
  ASSERT_EQ(counted.counts.size(), 2u);
  // Key 1 has multiplicity 2, key 2 multiplicity 1 (order-insensitive).
  CountInt total = counted.counts[0] + counted.counts[1];
  EXPECT_EQ(total, CountInt{3});
  EXPECT_EQ(DistinctCount(r, IdSet{0}), 2u);
  EXPECT_EQ(MaxGroupSize(r, IdSet{0}), 2u);
  EXPECT_EQ(MaxGroupSize(r, IdSet{0, 1}), 1u);
  // Empty key set: one group holding every row.
  EXPECT_EQ(MaxGroupSize(r, IdSet{}), 3u);
}

// --- Relation membership-cache invalidation ----------------------------------

TEST(RelationMembershipCacheTest, InvalidatedByMutation) {
  Relation r(2);
  r.AddRow({1, 2});
  r.AddRow({3, 4});
  EXPECT_FALSE(r.HasCachedMembershipIndex());

  // First membership check builds and caches the index.
  EXPECT_TRUE(r.ContainsRow(std::vector<Value>{1, 2}));
  EXPECT_TRUE(r.HasCachedMembershipIndex());
  EXPECT_FALSE(r.ContainsRow(std::vector<Value>{9, 9}));

  // Mutation drops the cache; the next check must see the new row.
  r.AddRow({9, 9});
  EXPECT_FALSE(r.HasCachedMembershipIndex());
  EXPECT_TRUE(r.ContainsRow(std::vector<Value>{9, 9}));
  EXPECT_TRUE(r.ContainsRow(std::vector<Value>{1, 2}));

  // Dedup (which sorts) also invalidates; results stay correct.
  r.AddRow({1, 2});
  r.Dedup();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.ContainsRow(std::vector<Value>{1, 2}));
  EXPECT_TRUE(r.ContainsRow(std::vector<Value>{9, 9}));
  EXPECT_FALSE(r.ContainsRow(std::vector<Value>{2, 1}));

  // Copies do not inherit the cache but answer correctly.
  EXPECT_TRUE(r.ContainsRow(std::vector<Value>{3, 4}));
  Relation copy = r;
  EXPECT_FALSE(copy.HasCachedMembershipIndex());
  EXPECT_TRUE(copy.ContainsRow(std::vector<Value>{3, 4}));
}

}  // namespace
}  // namespace sharpcq
