#include <gtest/gtest.h>

#include "core/analyze.h"
#include "gen/paper_queries.h"

namespace sharpcq {
namespace {

TEST(AnalyzeTest, Q0Profile) {
  QueryAnalysis a = AnalyzeQuery(MakeQ0(), 3);
  EXPECT_EQ(a.num_atoms, 9u);
  EXPECT_EQ(a.num_vars, 9u);
  EXPECT_EQ(a.num_free, 3u);
  EXPECT_FALSE(a.is_simple);
  EXPECT_FALSE(a.is_acyclic);
  EXPECT_EQ(a.core_atoms, 7u);
  EXPECT_EQ(a.hypertree_width, 2);
  EXPECT_EQ(a.sharp_hypertree_width, 2);
  EXPECT_EQ(a.quantified_star_size, 2);
  // Frontier hypergraph of the core: {A,B}, {B}, {B,C} (Figure 3(b)).
  EXPECT_EQ(a.frontier_edges, 3u);
  EXPECT_EQ(a.max_frontier_size, 2u);
  std::string report = a.ToString();
  EXPECT_NE(report.find("cyclic"), std::string::npos);
  EXPECT_NE(report.find("#-hypertree width: 2"), std::string::npos);
}

TEST(AnalyzeTest, Qn1ProfileSeparatesParameters) {
  QueryAnalysis a = AnalyzeQuery(MakeQn1(5), 3);
  EXPECT_EQ(a.quantified_star_size, 3);       // ceil(5/2)
  EXPECT_EQ(a.sharp_hypertree_width, 1);      // Example A.2
  EXPECT_EQ(a.hypertree_width, 2);
  EXPECT_TRUE(a.core_is_acyclic);
}

TEST(AnalyzeTest, WidthBudgetReportedAsUnknown) {
  QueryAnalysis a = AnalyzeQuery(MakeQn2(4), 2);
  EXPECT_FALSE(a.hypertree_width.has_value());       // ghw = 4 > 2
  EXPECT_EQ(a.sharp_hypertree_width, 1);             // core is one atom
  EXPECT_NE(a.ToString().find("> budget"), std::string::npos);
}

TEST(AnalyzeTest, AcyclicSimpleQuery) {
  QueryAnalysis a = AnalyzeQuery(MakeQh2(3), 2);
  EXPECT_TRUE(a.is_simple);
  EXPECT_TRUE(a.is_acyclic);
  EXPECT_EQ(a.hypertree_width, 1);
}

}  // namespace
}  // namespace sharpcq
