#include <gtest/gtest.h>

#include "count/enumeration.h"
#include "gen/paper_queries.h"
#include "gen/random_gen.h"
#include "query/canonical.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

ConjunctiveQuery Parse(const std::string& text) {
  std::string error;
  auto q = ParseQuery(text, nullptr, &error);
  EXPECT_TRUE(q.has_value()) << text << ": " << error;
  return *q;
}

TEST(CanonicalTest, InvariantUnderVariableRenaming) {
  ConjunctiveQuery a = Parse("Q(X) <- r(X,Y), s(Y,Z), t(Z,X)");
  ConjunctiveQuery b = Parse("Q(U) <- r(U,V), s(V,W), t(W,U)");
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

TEST(CanonicalTest, InvariantUnderAtomReordering) {
  ConjunctiveQuery a = Parse("Q(X) <- r(X,Y), s(Y,Z), t(Z,X)");
  ConjunctiveQuery b = Parse("Q(X) <- t(Z,X), r(X,Y), s(Y,Z)");
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

TEST(CanonicalTest, RenamedAndReorderedTogether) {
  ConjunctiveQuery a = Parse("Q(A,B) <- e(A,M), e(M,B), lives(B,7)");
  ConjunctiveQuery b = Parse("Q(P,Q) <- lives(Q,7), e(X,Q), e(P,X)");
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

TEST(CanonicalTest, DistinguishesFreeVariableChoice) {
  ConjunctiveQuery a = Parse("Q(X) <- r(X,Y)");
  ConjunctiveQuery b = Parse("Q(Y) <- r(X,Y)");
  ConjunctiveQuery c = Parse("Q(X,Y) <- r(X,Y)");
  EXPECT_NE(CanonicalQueryKey(a), CanonicalQueryKey(b));
  EXPECT_NE(CanonicalQueryKey(a), CanonicalQueryKey(c));
  EXPECT_NE(CanonicalQueryKey(b), CanonicalQueryKey(c));
}

TEST(CanonicalTest, DistinguishesConstants) {
  ConjunctiveQuery a = Parse("Q(X) <- lives(X,100)");
  ConjunctiveQuery b = Parse("Q(X) <- lives(X,101)");
  ConjunctiveQuery c = Parse("Q(X) <- lives(X,Y)");
  EXPECT_NE(CanonicalQueryKey(a), CanonicalQueryKey(b));
  EXPECT_NE(CanonicalQueryKey(a), CanonicalQueryKey(c));
}

TEST(CanonicalTest, DistinguishesRepeatedVariablePatterns) {
  ConjunctiveQuery a = Parse("Q(X) <- r(X,X)");
  ConjunctiveQuery b = Parse("Q(X) <- r(X,Y)");
  EXPECT_NE(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

TEST(CanonicalTest, DistinguishesSharedVsFreshExistentials) {
  // Same atom multiset up to renaming, different join structure.
  ConjunctiveQuery a = Parse("Q(X) <- r(X,Y), s(Y,Z)");
  ConjunctiveQuery b = Parse("Q(X) <- r(X,Y), s(W,Z)");
  EXPECT_NE(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

TEST(CanonicalTest, CanonicalQueryIsWellFormed) {
  ConjunctiveQuery q = MakeQ0();
  CanonicalForm form = CanonicalizeQuery(q);
  EXPECT_EQ(form.query.NumAtoms(), q.NumAtoms());
  EXPECT_EQ(form.query.free_vars().size(), q.free_vars().size());
  EXPECT_EQ(form.query.AllVars().size(), q.AllVars().size());
  // Canonicalization is idempotent on the key.
  EXPECT_EQ(CanonicalQueryKey(form.query), form.key);
  // The variable mapping is a bijection consistent in both directions.
  EXPECT_EQ(form.to_original.size(), q.AllVars().size());
  for (std::size_t c = 0; c < form.to_original.size(); ++c) {
    EXPECT_EQ(form.to_canonical.at(form.to_original[c]),
              static_cast<VarId>(c));
  }
}

TEST(CanonicalTest, CanonicalQueryCountsLikeOriginal) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 6;
    qp.num_atoms = 5;
    qp.max_arity = 3;
    qp.num_free = 2;
    qp.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(qp);
    RandomDatabaseParams dp;
    dp.domain = 3;
    dp.tuples_per_relation = 9;
    dp.seed = seed * 613;
    Database db = MakeRandomDatabase(q, dp);
    CanonicalForm form = CanonicalizeQuery(q);
    EXPECT_EQ(CountByBacktracking(form.query, db), CountByBacktracking(q, db))
        << "seed " << seed;
  }
}

TEST(CanonicalTest, HeadOnlyFreeVariablesKeepTheKeyStable) {
  // VarByName-interned head variables that never occur in a body atom.
  ConjunctiveQuery a;
  a.AddAtomVars("r", {"X", "Y"});
  a.SetFreeByName({"X", "Loose"});
  ConjunctiveQuery b;
  b.AddAtomVars("r", {"P", "Q"});
  b.SetFreeByName({"P", "Dangling"});
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

}  // namespace
}  // namespace sharpcq
