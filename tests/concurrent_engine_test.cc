// Concurrency stress for the shared engine: many threads hammering one
// CountingEngine on overlapping canonical forms. Counts must stay exact,
// the sharded plan cache's statistics must stay internally consistent
// (hits + misses == lookups, per-shard sums == aggregate), and plans must
// survive eviction pressure while other threads still hold them. Run under
// ThreadSanitizer in CI (.github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "count/enumeration.h"
#include "engine/engine.h"
#include "gen/paper_queries.h"
#include "query/parser.h"
#include "util/thread_pool.h"

namespace sharpcq {
namespace {

ConjunctiveQuery Parse(const std::string& text) {
  std::string error;
  auto q = ParseQuery(text, nullptr, &error);
  EXPECT_TRUE(q.has_value()) << text << ": " << error;
  return *q;
}

// The overlapping-canonical-form workload: a few query shapes, each in
// several renamed/reordered spellings that canonicalize to the same key, so
// concurrent planners collide on the same cache entries.
struct Workload {
  std::vector<ConjunctiveQuery> variants;  // all spellings, round-robined
  std::vector<CountInt> expected;          // aligned with variants
  std::vector<Database> databases;         // one per shape
  std::vector<std::size_t> db_of;          // variant -> database index
};

Workload MakeWorkload() {
  Workload w;
  auto add_shape = [&w](std::vector<ConjunctiveQuery> spellings, Database db) {
    const std::size_t db_index = w.databases.size();
    w.databases.push_back(std::move(db));
    for (ConjunctiveQuery& q : spellings) {
      w.expected.push_back(CountByBacktracking(q, w.databases[db_index]));
      w.variants.push_back(std::move(q));
      w.db_of.push_back(db_index);
    }
  };

  // Shape 1: the square Q1 in three spellings.
  add_shape(
      {Parse("Q(A,C) <- s1(A,B), s2(B,C), s3(C,D), s4(D,A)"),
       Parse("Q(X,Z) <- s3(Z,W), s4(W,X), s1(X,Y), s2(Y,Z)"),
       Parse("Q(U,V) <- s2(T,V), s1(U,T), s4(S,U), s3(V,S)")},
      MakeQ1Database(6, 18, 11));

  // Shape 2: a path with two spellings (width-1 structural plan).
  {
    ConjunctiveQuery a = Parse("Q(X,Z) <- r(X,Y), s(Y,Z)");
    ConjunctiveQuery b = Parse("Q(A,C) <- s(B,C), r(A,B)");
    Database db;
    for (Value i = 0; i < 5; ++i) {
      for (Value j = 0; j < 5; ++j) {
        if ((i + j) % 2 == 0) db.AddTuple("r", {i, j});
        if ((i * j) % 3 == 0) db.AddTuple("s", {i, j});
      }
    }
    add_shape({std::move(a), std::move(b)}, std::move(db));
  }

  // Shape 3: the acyclic unbounded-width family (PS13 plan).
  add_shape({MakeQh2(4)}, MakeQh2Database(4));

  return w;
}

TEST(ConcurrentEngineTest, EightThreadsOneEngineOverlappingShapes) {
  const int kThreads = 8;
  const int kItersPerThread = 60;

  Workload w = MakeWorkload();
  CountingEngine engine;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&w, &engine, &failures, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        // Interleave shapes differently per thread so lookups overlap.
        const std::size_t v =
            (static_cast<std::size_t>(t) * 7 + static_cast<std::size_t>(i)) %
            w.variants.size();
        CountResult result =
            engine.Count(w.variants[v], w.databases[w.db_of[v]]);
        if (result.count != w.expected[v]) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  PlanCache::Stats stats = engine.cache_stats();
  const std::size_t total_counts =
      static_cast<std::size_t>(kThreads) * kItersPerThread;
  EXPECT_EQ(stats.lookups, total_counts);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  // Three distinct canonical shapes; concurrent first-misses may plan the
  // same shape more than once, but the cache never holds duplicates.
  EXPECT_EQ(stats.size, 3u);
  EXPECT_GE(stats.misses, 3u);
  EXPECT_GE(stats.insertions, stats.size);
  EXPECT_LE(stats.insertions, stats.misses);

  // Per-shard counters must sum to the aggregate exactly.
  std::size_t shard_lookups = 0, shard_hits = 0, shard_misses = 0;
  for (const PlanCache::ShardStats& s : stats.shards) {
    EXPECT_EQ(s.hits + s.misses, s.lookups);
    shard_lookups += s.lookups;
    shard_hits += s.hits;
    shard_misses += s.misses;
  }
  EXPECT_EQ(shard_lookups, stats.lookups);
  EXPECT_EQ(shard_hits, stats.hits);
  EXPECT_EQ(shard_misses, stats.misses);
}

TEST(ConcurrentEngineTest, CountBatchMatchesSequentialAndSharesPlans) {
  EngineOptions options;
  options.batch_threads = 8;
  CountingEngine engine(options);
  Workload w = MakeWorkload();

  std::vector<CountJob> jobs;
  for (int repeat = 0; repeat < 10; ++repeat) {
    for (std::size_t v = 0; v < w.variants.size(); ++v) {
      jobs.push_back({w.variants[v], &w.databases[w.db_of[v]]});
    }
  }
  std::vector<CountResult> results = engine.CountBatch(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].count, w.expected[i % w.variants.size()])
        << "job " << i << " via " << results[i].method;
  }
  PlanCache::Stats stats = engine.cache_stats();
  EXPECT_EQ(stats.lookups, jobs.size());
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.size, 3u);
}

TEST(ConcurrentEngineTest, CountAsyncDeliversExactCounts) {
  EngineOptions options;
  options.batch_threads = 4;
  CountingEngine engine(options);
  Workload w = MakeWorkload();

  std::vector<std::future<CountResult>> futures;
  for (int repeat = 0; repeat < 5; ++repeat) {
    for (std::size_t v = 0; v < w.variants.size(); ++v) {
      futures.push_back(
          engine.CountAsync(w.variants[v], w.databases[w.db_of[v]]));
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get().count, w.expected[i % w.variants.size()]);
  }
}

TEST(ConcurrentEngineTest, FilterTalliesStayPerQueryUnderConcurrency) {
  // The probe-filter provenance in CountResult must describe that query's
  // execution alone. This workload's tallies are deterministic — the same
  // query on the same database always probes the same rows — so if any
  // result under concurrency reports more (or fewer) probes than the solo
  // run, executions leaked tallies into each other (the old process-global
  // counters did exactly that).
  CountingEngine engine;
  Database db = MakeQ1Database(80, 900, 11);
  ConjunctiveQuery q = MakeQ1();

  CountResult solo = engine.Count(q, db);
  ASSERT_GT(solo.filter_hits, 0u);
  ASSERT_GT(solo.filter_passes, 0u);

  const int kThreads = 8;
  const int kItersPerThread = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, &db, &q, &solo, &mismatches] {
      for (int i = 0; i < kItersPerThread; ++i) {
        CountResult result = engine.Count(q, db);
        if (result.count != solo.count ||
            result.filter_hits != solo.filter_hits ||
            result.filter_passes != solo.filter_passes) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentEngineTest, EvictedPlansSurviveWhileExecuting) {
  // capacity=1 collapses to one shard, so every new shape evicts the
  // previous plan; threads alternating two shapes thrash the cache while
  // holding each other's evicted plans through the shared_ptr.
  EngineOptions options;
  options.plan_cache_capacity = 1;
  CountingEngine engine(options);
  Workload w = MakeWorkload();

  const int kThreads = 8;
  const int kItersPerThread = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&w, &engine, &failures, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::size_t v =
            (static_cast<std::size_t>(t) + static_cast<std::size_t>(i)) %
            w.variants.size();
        CountResult result =
            engine.Count(w.variants[v], w.databases[w.db_of[v]]);
        if (result.count != w.expected[v]) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  PlanCache::Stats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  const int kTasks = 2000;
  std::atomic<int> ran{0};
  std::vector<std::promise<void>> done(kTasks);
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) futures.push_back(done[i].get_future());
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&ran, &done, i] {
      ran.fetch_add(1);
      done[i].set_value();
    });
  }
  for (std::future<void>& f : futures) f.wait();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, NestedSubmissionsComplete) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::promise<void> all_done;
  std::future<void> all_done_future = all_done.get_future();
  const int kOuter = 16;
  const int kInner = 8;
  for (int i = 0; i < kOuter; ++i) {
    pool.Submit([&pool, &ran, &all_done] {
      for (int j = 0; j < kInner; ++j) {
        pool.Submit([&ran, &all_done] {
          if (ran.fetch_add(1) + 1 == kOuter * kInner) all_done.set_value();
        });
      }
    });
  }
  all_done_future.wait();
  EXPECT_EQ(ran.load(), kOuter * kInner);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool joins after completing queued work
  EXPECT_EQ(ran.load(), 500);
}

}  // namespace
}  // namespace sharpcq
