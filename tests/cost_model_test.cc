// The statistics-driven cost model (ISSUE 8): estimator units, fingerprint
// stability, and — the load-bearing property — scheduling neutrality: every
// count with the cost model on must equal the same count with it off,
// because the model only reorders exact algorithms. The differential suite
// here runs 200+ random instances (including skewed/heavy-tail data and
// columnar snapshot-backed databases) through both settings.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "algebra/rel.h"
#include "algebra/stats.h"
#include "algebra/table.h"
#include "count/enumeration.h"
#include "engine/engine.h"
#include "gen/random_gen.h"
#include "query/parser.h"
#include "storage/snapshot.h"

namespace sharpcq {
namespace {

std::string MakeScratchDir() {
  std::string tmpl = ::testing::TempDir() + "sharpcq_cost_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir;
}

std::shared_ptr<const Table> BuildTable(
    const std::vector<std::vector<Value>>& rows) {
  TableBuilder builder(rows.empty() ? 0 : static_cast<int>(rows[0].size()));
  for (const auto& row : rows) builder.AddRow(row);
  return std::move(builder).Build();
}

// --- estimator units -------------------------------------------------------

TEST(CostModelUnitTest, DegreeBucketIsLogTwoClamped) {
  EXPECT_EQ(DegreeBucket(1), 0u);
  EXPECT_EQ(DegreeBucket(2), 1u);
  EXPECT_EQ(DegreeBucket(3), 1u);
  EXPECT_EQ(DegreeBucket(4), 2u);
  EXPECT_EQ(DegreeBucket(7), 2u);
  EXPECT_EQ(DegreeBucket(8), 3u);
  EXPECT_EQ(DegreeBucket(1u << 15), 15u);
  // Everything past the last bucket boundary is absorbed by bucket 15.
  EXPECT_EQ(DegreeBucket(std::uint64_t{1} << 40), kDegreeHistogramBuckets - 1);
}

TEST(CostModelUnitTest, SizeClassIsBitWidth) {
  EXPECT_EQ(SizeClass(0), 0u);
  EXPECT_EQ(SizeClass(1), 1u);
  EXPECT_EQ(SizeClass(2), 2u);
  EXPECT_EQ(SizeClass(3), 2u);
  EXPECT_EQ(SizeClass(4), 3u);
  EXPECT_EQ(SizeClass(1023), 10u);
  EXPECT_EQ(SizeClass(1024), 11u);
}

TEST(CostModelUnitTest, ComputeTableStatsMatchesHandCount) {
  // Column 0: values {1 x3, 2 x1} -> distinct 2, max_group 3.
  // Column 1: values {10, 20, 30, 40} -> distinct 4, max_group 1.
  auto table = BuildTable({{1, 10}, {1, 20}, {1, 30}, {2, 40}});
  TableStats stats = ComputeTableStats(*table);
  ASSERT_EQ(stats.rows, 4u);
  ASSERT_EQ(stats.columns.size(), 2u);
  EXPECT_EQ(stats.columns[0].distinct, 2u);
  EXPECT_EQ(stats.columns[0].max_group, 3u);
  // Groups of size 3 land in bucket 1 ([2,4)), size 1 in bucket 0.
  EXPECT_EQ(stats.columns[0].histogram[0], 1u);
  EXPECT_EQ(stats.columns[0].histogram[1], 1u);
  EXPECT_EQ(stats.columns[1].distinct, 4u);
  EXPECT_EQ(stats.columns[1].max_group, 1u);
  EXPECT_EQ(stats.columns[1].histogram[0], 4u);
  EXPECT_DOUBLE_EQ(stats.columns[0].AvgGroup(stats.rows), 2.0);

  // The lazy per-table cache returns the same statistics, and installs win
  // only once.
  auto cached = table->Stats();
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(*cached, stats);
  EXPECT_EQ(table->StatsIfPresent().get(), cached.get());
}

TEST(CostModelUnitTest, PermuteStatsReordersColumns) {
  auto table = BuildTable({{1, 10}, {1, 20}, {2, 30}});
  TableStats stats = ComputeTableStats(*table);
  const std::vector<int> perm = {1, 0};
  auto permuted = PermuteStats(stats, perm);
  ASSERT_NE(permuted, nullptr);
  EXPECT_EQ(permuted->rows, stats.rows);
  ASSERT_EQ(permuted->columns.size(), 2u);
  EXPECT_EQ(permuted->columns[0], stats.columns[1]);
  EXPECT_EQ(permuted->columns[1], stats.columns[0]);
}

TEST(CostModelUnitTest, EstimatedDistinctCountUsesStatsAndCaps) {
  // 8 rows, column 0 has 4 distinct values, column 1 has 8.
  std::vector<std::vector<Value>> rows;
  for (Value i = 0; i < 8; ++i) rows.push_back({i % 4, i});
  auto table = BuildTable(rows);
  Rel rel(IdSet{3, 7}, table);

  // No stats cached yet: falls back to the row count.
  EXPECT_EQ(EstimatedDistinctCount(rel, IdSet{3}), 8u);

  table->Stats();  // prime the cache
  EXPECT_EQ(EstimatedDistinctCount(rel, IdSet{3}), 4u);
  EXPECT_EQ(EstimatedDistinctCount(rel, IdSet{7}), 8u);
  // The product 4 * 8 exceeds the row count, so the estimate caps at rows
  // (a relation never has more distinct keys than rows).
  EXPECT_EQ(EstimatedDistinctCount(rel, IdSet{3, 7}), 8u);
  // Variables outside the relation's schema do not constrain it.
  EXPECT_EQ(EstimatedDistinctCount(rel, IdSet{99}), 1u);
  EXPECT_EQ(EstimatedDistinctCount(rel, IdSet{3, 99}), 4u);
}

// --- fingerprints ----------------------------------------------------------

TEST(CostModelUnitTest, FingerprintIsRowOrderInsensitive) {
  Database forward;
  Database shuffled;
  forward.AddTuple("r", {1, 2});
  forward.AddTuple("r", {3, 4});
  forward.AddTuple("s", {7});
  shuffled.AddTuple("s", {7});
  shuffled.AddTuple("r", {3, 4});
  shuffled.AddTuple("r", {1, 2});

  const std::string dir = MakeScratchDir();
  Status error;
  ASSERT_TRUE(WriteSnapshot(forward, nullptr, dir + "/a.sharpcq", &error)
                  .has_value())
      << error;
  ASSERT_TRUE(WriteSnapshot(shuffled, nullptr, dir + "/b.sharpcq", &error)
                  .has_value())
      << error;
  auto a = LoadSnapshot(dir + "/a.sharpcq", SnapshotLoadMode::kMapped, &error);
  auto b = LoadSnapshot(dir + "/b.sharpcq", SnapshotLoadMode::kOwned, &error);
  ASSERT_TRUE(a.has_value() && b.has_value()) << error;
  EXPECT_EQ(BuildDataProfile(a->db).Fingerprint(),
            BuildDataProfile(b->db).Fingerprint());
  EXPECT_FALSE(BuildDataProfile(a->db).Fingerprint().empty());
}

TEST(CostModelUnitTest, FingerprintTracksSizeClassNotExactCounts) {
  // Within one log2 class the fingerprint is stable; crossing a class
  // boundary (2 rows -> 4 rows) moves it.
  auto profile_of = [](int rows) {
    Database db;
    for (int i = 0; i < rows; ++i) db.AddTuple("e", {i, i + 100});
    const std::string dir = MakeScratchDir();
    Status error;
    EXPECT_TRUE(
        WriteSnapshot(db, nullptr, dir + "/p.sharpcq", &error).has_value());
    auto loaded =
        LoadSnapshot(dir + "/p.sharpcq", SnapshotLoadMode::kMapped, &error);
    EXPECT_TRUE(loaded.has_value()) << error;
    return BuildDataProfile(loaded->db).Fingerprint();
  };
  EXPECT_EQ(profile_of(2), profile_of(3));    // both class bit_width=2
  EXPECT_NE(profile_of(2), profile_of(4));    // class 2 vs class 3
  EXPECT_NE(profile_of(4), profile_of(100));  // order of magnitude apart
}

// --- persisted stats == computed stats -------------------------------------

TEST(CostModelUnitTest, SnapshotPersistedStatsEqualLazyComputation) {
  Database db;
  for (int i = 0; i < 50; ++i) {
    db.AddTuple("skew", {i % 5, i});  // col 0 heavy, col 1 unique
  }
  const std::string dir = MakeScratchDir();
  const std::string path = dir + "/stats.sharpcq";
  Status error;
  ASSERT_TRUE(WriteSnapshot(db, nullptr, path, &error).has_value()) << error;

  for (SnapshotLoadMode mode :
       {SnapshotLoadMode::kOwned, SnapshotLoadMode::kMapped}) {
    auto loaded = LoadSnapshot(path, mode, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    auto backing = loaded->db.ColumnarBacking("skew");
    ASSERT_NE(backing, nullptr);
    // v2 loads install the persisted stats without a computation pass...
    auto persisted = backing->StatsIfPresent();
    ASSERT_NE(persisted, nullptr);
    // ...and they match what a from-scratch pass over the data produces.
    EXPECT_EQ(*persisted, ComputeTableStats(*backing));
    EXPECT_EQ(persisted->columns[0].distinct, 5u);
    EXPECT_EQ(persisted->columns[0].max_group, 10u);
    EXPECT_EQ(persisted->columns[1].distinct, 50u);
  }
}

// --- plan cache keying -----------------------------------------------------

TEST(CostModelCacheTest, ProfileClassChangeReplansSameClassStaysWarm) {
  const std::string dir = MakeScratchDir();
  Status error;
  auto snapshot_db = [&](const std::string& name, int rows) {
    Database db;
    for (int i = 0; i < rows; ++i) db.AddTuple("e", {i, i + 1});
    const std::string path = dir + "/" + name + ".sharpcq";
    EXPECT_TRUE(WriteSnapshot(db, nullptr, path, &error).has_value()) << error;
    auto loaded = LoadSnapshot(path, SnapshotLoadMode::kMapped, &error);
    EXPECT_TRUE(loaded.has_value()) << error;
    return std::move(loaded->db);
  };
  Database small = snapshot_db("small", 6);        // rows class 3
  Database small2 = snapshot_db("small2", 7);      // same class
  Database large = snapshot_db("large", 400);      // different class

  auto q = ParseQuery("Q(X,Z) <- e(X,Y), e(Y,Z)");
  ASSERT_TRUE(q.has_value());

  CountingEngine engine;  // cost model on by default
  EXPECT_FALSE(engine.Count(*q, small).cache_hit);
  // Same shape, same profile class: the cached plan is reused.
  EXPECT_TRUE(engine.Count(*q, small2).cache_hit);
  // Same shape, different data class: the fingerprinted key forces a
  // re-plan ("same shape + same data profile => same plan").
  EXPECT_FALSE(engine.Count(*q, large).cache_hit);
  // And the large class is now warm too.
  EXPECT_TRUE(engine.Count(*q, large).cache_hit);

  // With the cost model off the key has no profile component, so every
  // database shares one cached plan per shape.
  EngineOptions off;
  off.enable_cost_model = false;
  CountingEngine blind(off);
  EXPECT_FALSE(blind.Count(*q, small).cache_hit);
  EXPECT_TRUE(blind.Count(*q, large).cache_hit);
}

// --- differential: cost model on == cost model off -------------------------

struct DiffCase {
  ConjunctiveQuery query;
  Database db;
  std::uint64_t seed = 0;
};

std::vector<DiffCase> MakeDiffCases(std::uint64_t first_seed,
                                    std::uint64_t last_seed, bool skewed) {
  std::vector<DiffCase> cases;
  for (std::uint64_t seed = first_seed; seed <= last_seed; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 4 + static_cast<int>(seed % 3);
    qp.num_atoms = 3 + static_cast<int>(seed % 3);
    qp.max_arity = 2 + static_cast<int>(seed % 2);
    qp.num_free = 1 + static_cast<int>(seed % 3);
    qp.num_relations = 2 + static_cast<int>(seed % 3);
    qp.force_acyclic = (seed % 2 == 0);
    qp.seed = seed;
    DiffCase c;
    c.query = MakeRandomQuery(qp);
    RandomDatabaseParams dp;
    dp.domain = skewed ? 6 : 3;
    dp.tuples_per_relation = 8 + static_cast<int>(seed % 5);
    dp.seed = seed * 0x9e3779b97f4a7c15ULL + 17;
    c.db = MakeRandomDatabase(c.query, dp);
    if (skewed) {
      // Heavy-tail the data: pile extra tuples onto one hot value per
      // relation so per-column max_group dwarfs the average (the regime the
      // degree-steer threshold and worklist priority react to).
      for (const Atom& atom : c.query.atoms()) {
        for (int i = 0; i < 12; ++i) {
          std::vector<Value> row(static_cast<std::size_t>(atom.arity()), 0);
          row.back() = i % 6;
          c.db.AddTuple(atom.relation, row);
        }
      }
    }
    c.seed = seed;
    cases.push_back(std::move(c));
  }
  return cases;
}

void RunDifferential(const std::vector<DiffCase>& cases, bool via_snapshot) {
  CountingEngine on;  // default: cost model enabled
  EngineOptions off_options;
  off_options.enable_cost_model = false;
  CountingEngine off(off_options);

  const std::string dir = via_snapshot ? MakeScratchDir() : "";
  for (const DiffCase& c : cases) {
    const Database* db = &c.db;
    Database columnar;
    if (via_snapshot) {
      // Round-trip through a v2 snapshot: the cost-model engine then runs
      // on columnar tables with persisted stats installed (the production
      // serving shape).
      const std::string path =
          dir + "/case_" + std::to_string(c.seed) + ".sharpcq";
      Status error;
      ASSERT_TRUE(WriteSnapshot(c.db, nullptr, path, &error).has_value())
          << error;
      auto loaded = LoadSnapshot(path, SnapshotLoadMode::kMapped, &error);
      ASSERT_TRUE(loaded.has_value()) << error;
      columnar = std::move(loaded->db);
      db = &columnar;
    }
    const CountInt expected = off.Count(c.query, *db).count;
    EXPECT_EQ(CountByBacktracking(c.query, *db), expected)
        << "seed " << c.seed;
    CountResult steered = on.Count(c.query, *db);
    EXPECT_EQ(steered.count, expected)
        << "seed " << c.seed << " via " << steered.method;
    // And under every named strategy the two engines still agree.
    for (const char* strategy : {"sharp", "ps13", "hybrid"}) {
      auto options = PlannerOptionsForStrategy(strategy, PlannerOptions{});
      ASSERT_TRUE(options.has_value());
      EXPECT_EQ(on.Count(c.query, *db, *options).count,
                off.Count(c.query, *db, *options).count)
          << "seed " << c.seed << " strategy " << strategy;
    }
  }
}

TEST(CostModelDifferentialTest, UniformRandomInstancesAgree) {
  RunDifferential(MakeDiffCases(1, 120, /*skewed=*/false),
                  /*via_snapshot=*/false);
}

TEST(CostModelDifferentialTest, SkewedHeavyTailInstancesAgree) {
  RunDifferential(MakeDiffCases(301, 360, /*skewed=*/true),
                  /*via_snapshot=*/false);
}

TEST(CostModelDifferentialTest, ColumnarSnapshotBackedInstancesAgree) {
  // Through the snapshot the tables carry persisted stats, so every
  // cost-model consult actually fires (StatsIfPresent is non-null).
  RunDifferential(MakeDiffCases(401, 430, /*skewed=*/true),
                  /*via_snapshot=*/true);
}

TEST(CostModelDifferentialTest, MorselForcedCostModelAgrees) {
  // Cost model on with morsels forced tiny: the build-size-aware threshold
  // path and the reordered executions must still match the sequential
  // cost-model-off engine.
  EngineOptions on_options;
  on_options.batch_threads = 3;
  on_options.morsel_rows = 2;
  on_options.morsel_row_threshold = 1;
  CountingEngine on(on_options);
  EngineOptions off_options;
  off_options.enable_cost_model = false;
  off_options.enable_morsel_parallelism = false;
  CountingEngine off(off_options);

  for (const DiffCase& c : MakeDiffCases(501, 540, /*skewed=*/true)) {
    EXPECT_EQ(on.Count(c.query, c.db).count, off.Count(c.query, c.db).count)
        << "seed " << c.seed;
  }
}

// --- concurrency -----------------------------------------------------------

TEST(CostModelConcurrencyTest, ConcurrentLazyStatsComputeOnce) {
  // Many threads racing the double-checked lazy Stats() computation: the
  // sanitizer CI legs run this test, so a data race in the compute-outside-
  // the-lock/first-install-wins protocol would trip TSan here.
  std::vector<std::vector<Value>> rows;
  for (Value i = 0; i < 512; ++i) rows.push_back({i % 17, i % 3, i});
  auto table = BuildTable(rows);

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const TableStats>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &seen, t] { seen[t] = table->Stats(); });
  }
  for (std::thread& thread : threads) thread.join();

  // Whoever computed, exactly one result was installed and everyone agrees
  // with the ground truth.
  const TableStats expected = ComputeTableStats(*table);
  for (const auto& stats : seen) {
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(*stats, expected);
    EXPECT_EQ(stats.get(), table->StatsIfPresent().get());
  }
  EXPECT_EQ(expected.columns[0].distinct, 17u);
  EXPECT_EQ(expected.columns[2].distinct, 512u);
}

TEST(CostModelConcurrencyTest, ConcurrentCountsWithCostModelOn) {
  // Batch counting over a snapshot-backed database with the cost model on:
  // concurrent jobs consult shared stats, reorder join trees, and run the
  // priority worklist under TSan.
  Database source;
  for (int i = 0; i < 200; ++i) {
    source.AddTuple("e", {i % 20, (i * 3) % 40});
    source.AddTuple("f", {(i * 5) % 40, i % 10});
  }
  const std::string dir = MakeScratchDir();
  const std::string path = dir + "/batch.sharpcq";
  Status error;
  ASSERT_TRUE(WriteSnapshot(source, nullptr, path, &error).has_value())
      << error;
  auto loaded = LoadSnapshot(path, SnapshotLoadMode::kMapped, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  auto q = ParseQuery("Q(X,Z) <- e(X,Y), f(Y,Z)");
  ASSERT_TRUE(q.has_value());
  EngineOptions options;
  options.batch_threads = 4;
  CountingEngine engine(options);
  const CountInt expected = engine.Count(*q, loaded->db).count;

  std::vector<CountJob> jobs(16, CountJob{*q, &loaded->db});
  for (const CountResult& result : engine.CountBatch(jobs)) {
    EXPECT_EQ(result.count, expected);
  }
}

}  // namespace
}  // namespace sharpcq
