#include <gtest/gtest.h>

#include "count/enumeration.h"
#include "count/join_tree_instance.h"
#include "count/ps13.h"
#include "count/starsize.h"
#include "gen/paper_queries.h"
#include "gen/random_gen.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

VarRelation MakeVarRel(IdSet vars, std::vector<std::vector<Value>> rows) {
  VarRelation r(std::move(vars));
  for (const auto& row : rows) r.rel().AddRow(std::span<const Value>(row));
  return r;
}

// A two-node chain instance: {X,Y} - {Y,Z}.
JoinTreeInstance ChainInstance() {
  JoinTreeInstance instance;
  instance.shape = TreeShape::FromParents({-1, 0});
  instance.nodes.push_back(
      MakeVarRel(IdSet{0, 1}, {{1, 10}, {2, 20}, {3, 30}}));
  instance.nodes.push_back(
      MakeVarRel(IdSet{1, 2}, {{10, 100}, {10, 101}, {20, 200}, {99, 999}}));
  return instance;
}

TEST(FullReduceTest, RemovesDanglingTuples) {
  JoinTreeInstance instance = ChainInstance();
  ASSERT_TRUE(FullReduce(&instance));
  // (3,30) has no child match; (99,999) has no parent match.
  EXPECT_EQ(instance.nodes[0].size(), 2u);
  EXPECT_EQ(instance.nodes[1].size(), 3u);
}

TEST(FullReduceTest, DetectsEmptyJoin) {
  JoinTreeInstance instance;
  instance.shape = TreeShape::FromParents({-1, 0});
  instance.nodes.push_back(MakeVarRel(IdSet{0}, {{1}}));
  instance.nodes.push_back(MakeVarRel(IdSet{0}, {{2}}));
  EXPECT_FALSE(FullReduce(&instance));
}

TEST(CountFullJoinTest, ChainCount) {
  JoinTreeInstance instance = ChainInstance();
  // Solutions: (1,10,100), (1,10,101), (2,20,200).
  EXPECT_EQ(CountFullJoin(instance), CountInt{3});
}

TEST(CountFullJoinTest, EmptyInstanceCountsOne) {
  EXPECT_EQ(CountFullJoin(JoinTreeInstance{}), CountInt{1});
}

TEST(CountFullJoinTest, ZeroAritySolutionsMultiply) {
  // Two independent bags: 2 x 3 = 6 full solutions.
  JoinTreeInstance instance;
  instance.shape = TreeShape::FromParents({-1, 0});
  instance.nodes.push_back(MakeVarRel(IdSet{0}, {{1}, {2}}));
  instance.nodes.push_back(MakeVarRel(IdSet{1}, {{5}, {6}, {7}}));
  EXPECT_EQ(CountFullJoin(instance), CountInt{6});
}

TEST(RestrictToVarsTest, ProjectsAndDedups) {
  JoinTreeInstance instance = ChainInstance();
  JoinTreeInstance restricted = RestrictToVars(instance, IdSet{1});
  EXPECT_EQ(restricted.nodes[0].vars(), (IdSet{1}));
  EXPECT_EQ(restricted.nodes[0].size(), 3u);  // {10,20,30}
  EXPECT_EQ(restricted.nodes[1].size(), 3u);  // {10,20,99}
}

// --- PS13 (Figure 13) -------------------------------------------------------

TEST(Ps13Test, SingleNodeCountsDistinctFreeProjections) {
  JoinTreeInstance instance;
  instance.shape = TreeShape::FromParents({-1});
  instance.nodes.push_back(
      MakeVarRel(IdSet{0, 1}, {{1, 10}, {1, 20}, {2, 10}}));
  EXPECT_EQ(Ps13Count(instance, IdSet{0}), CountInt{2});
  EXPECT_EQ(Ps13Count(instance, IdSet{0, 1}), CountInt{3});
  EXPECT_EQ(Ps13Count(instance, IdSet{}), CountInt{1});
}

TEST(Ps13Test, EmptyRelationCountsZero) {
  JoinTreeInstance instance;
  instance.shape = TreeShape::FromParents({-1});
  instance.nodes.push_back(VarRelation(IdSet{0}));
  EXPECT_EQ(Ps13Count(instance, IdSet{0}), CountInt{0});
}

TEST(Ps13Test, ChainWithProjection) {
  // free = {X} (variable 0): answers are X values extendable down the
  // chain: X=1, X=2.
  JoinTreeInstance instance = ChainInstance();
  EXPECT_EQ(Ps13Count(instance, IdSet{0}), CountInt{2});
  // free = {Z} (variable 2): Z in {100, 101, 200}.
  EXPECT_EQ(Ps13Count(instance, IdSet{2}), CountInt{3});
  // free = {X, Z}: (1,100), (1,101), (2,200).
  EXPECT_EQ(Ps13Count(instance, IdSet{0, 2}), CountInt{3});
}

TEST(Ps13Test, MatchesFullJoinCountWhenAllVarsFree) {
  JoinTreeInstance instance = ChainInstance();
  EXPECT_EQ(Ps13Count(instance, instance.AllVars()),
            CountFullJoin(instance));
}

TEST(Ps13Test, StatsReflectDegreeBlowup) {
  // Bag {X, Y} with one X extended by 4 Y values: the #-relation of the
  // root has one set of size 4 when X is quantified away below a free
  // parent... here we just sanity check the stats plumbing.
  JoinTreeInstance instance;
  instance.shape = TreeShape::FromParents({-1});
  instance.nodes.push_back(
      MakeVarRel(IdSet{0, 1}, {{1, 10}, {1, 11}, {1, 12}, {1, 13}}));
  Ps13Stats stats;
  EXPECT_EQ(Ps13Count(instance, IdSet{0}, &stats), CountInt{1});
  EXPECT_EQ(stats.max_sets, 1u);
  EXPECT_EQ(stats.max_set_size, 4u);
}

// PS13 on materialized acyclic instances must agree with brute force.
TEST(Ps13Test, AgreesWithBruteForceOnRandomAcyclicInstances) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 7;
    qp.num_atoms = 5;
    qp.max_arity = 3;
    qp.num_free = 3;
    qp.force_acyclic = true;
    qp.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(qp);

    RandomDatabaseParams dp;
    dp.domain = 3;
    dp.tuples_per_relation = 10;
    dp.seed = seed * 131;
    Database db = MakeRandomDatabase(q, dp);

    CountInt brute = CountByJoinProject(q, db);
    EXPECT_EQ(CountByBacktracking(q, db), brute) << "seed " << seed;
  }
}

// --- baselines --------------------------------------------------------------

TEST(EnumerationTest, JoinProjectOnQ1) {
  ConjunctiveQuery q = MakeQ1();
  Database db = MakeQ1Database(5, 10, 42);
  EXPECT_EQ(CountByJoinProject(q, db), CountByBacktracking(q, db));
}

TEST(EnumerationTest, BooleanQueryCountsZeroOrOne) {
  ConjunctiveQuery q = MakeQn2(2);
  Database db;
  db.AddTuple("r", {1, 2});
  EXPECT_EQ(CountByJoinProject(q, db), CountInt{1});
  EXPECT_EQ(CountByBacktracking(q, db), CountInt{1});
  Database empty;
  empty.DeclareRelation("r", 2);
  EXPECT_EQ(CountByJoinProject(q, empty), CountInt{0});
  EXPECT_EQ(CountByBacktracking(q, empty), CountInt{0});
}

TEST(EnumerationTest, Qh2DatabaseHasExactlyMAnswers) {
  // Example C.1: |answers| = m = 2^h on D_2.
  for (int h : {1, 2, 3, 4}) {
    ConjunctiveQuery q = MakeQh2(h);
    Database db = MakeQh2Database(h);
    EXPECT_EQ(CountByBacktracking(q, db), CountInt{1} << h) << "h=" << h;
  }
}

TEST(EnumerationTest, Qn1CycleDatabaseCountsD) {
  // On the d-cycle, Q^n_1 has exactly d answers.
  for (int n : {2, 3}) {
    for (int d : {3, 5, 8}) {
      ConjunctiveQuery q = MakeQn1(n);
      Database db = MakeQn1CycleDatabase(d);
      EXPECT_EQ(CountByBacktracking(q, db), static_cast<CountInt>(d))
          << "n=" << n << " d=" << d;
    }
  }
}

// --- quantified star size ----------------------------------------------------

TEST(StarSizeTest, Qn1StarSizeIsCeilHalfN) {
  // Example A.2: the quantified star size of Q^n_1 is ceil(n/2).
  EXPECT_EQ(QuantifiedStarSize(MakeQn1(2)), 1);
  EXPECT_EQ(QuantifiedStarSize(MakeQn1(3)), 2);
  EXPECT_EQ(QuantifiedStarSize(MakeQn1(4)), 2);
  EXPECT_EQ(QuantifiedStarSize(MakeQn1(5)), 3);
  EXPECT_EQ(QuantifiedStarSize(MakeQn1(6)), 3);
}

TEST(StarSizeTest, Q0StarSize) {
  // Q0's frontiers are {A,B}, {B}, {B,C}: A,B adjacent (mw) and B,C not
  // adjacent but {B,C} has independent set {C}... the max independent set
  // within any single frontier is 1 ({A,B} induces an edge; {B,C} has no
  // edge between B and C, so the independent set {B,C} has size 2).
  EXPECT_EQ(QuantifiedStarSize(MakeQ0()), 2);
}

TEST(StarSizeTest, QuantifierFreeQueryHasStarSizeZero) {
  ConjunctiveQuery q;
  q.AddAtomVars("r", {"X", "Y"});
  q.SetFreeByName({"X", "Y"});
  EXPECT_EQ(QuantifiedStarSize(q), 0);
}

TEST(StarSizeTest, FrontierMaterializationMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 6;
    qp.num_atoms = 4;
    qp.max_arity = 3;
    qp.num_free = 2;
    qp.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(qp);
    RandomDatabaseParams dp;
    dp.domain = 3;
    dp.tuples_per_relation = 8;
    dp.seed = seed * 977;
    Database db = MakeRandomDatabase(q, dp);
    EXPECT_EQ(CountByFrontierMaterialization(q, db),
              CountByBacktracking(q, db))
        << "seed " << seed;
  }
}

TEST(StarSizeTest, FrontierMaterializationOnQn1) {
  ConjunctiveQuery q = MakeQn1(3);
  Database db = MakeQn1RandomDatabase(6, 14, 5);
  EXPECT_EQ(CountByFrontierMaterialization(q, db), CountByBacktracking(q, db));
}

}  // namespace
}  // namespace sharpcq
