#include <gtest/gtest.h>

#include "data/database.h"
#include "data/relation.h"
#include "data/value.h"
#include "data/var_relation.h"

namespace sharpcq {
namespace {

TEST(ValueDictTest, InternAndLookup) {
  ValueDict dict;
  Value a = dict.Intern("alice");
  Value b = dict.Intern("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alice"), a);
  EXPECT_EQ(dict.NameOf(a), "alice");
  EXPECT_EQ(dict.Find("bob"), b);
  EXPECT_FALSE(dict.Find("carol").has_value());
  EXPECT_EQ(dict.NameOf(999), "999");  // un-interned falls back to decimal
}

TEST(ValueDictTest, HeterogeneousLookupAvoidsCopies) {
  ValueDict dict;
  std::string line = "alice,bob,alice";
  // Probing with views into a larger buffer must not require std::string.
  std::string_view alice = std::string_view(line).substr(0, 5);
  std::string_view bob = std::string_view(line).substr(6, 3);
  Value a = dict.Intern(alice);
  Value b = dict.Intern(bob);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern(std::string_view(line).substr(10, 5)), a);
  EXPECT_EQ(dict.Find(alice), a);
  EXPECT_EQ(dict.Find("bob"), b);
  EXPECT_FALSE(dict.Find(std::string_view("carol")).has_value());
  // Stored names are owned copies, independent of the probe buffer.
  line.assign(line.size(), 'x');
  EXPECT_EQ(dict.NameOf(a), "alice");
  EXPECT_EQ(dict.NameOf(b), "bob");
}

TEST(RelationTest, AddAndRead) {
  Relation r(2);
  r.AddRow({1, 2});
  r.AddRow({3, 4});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.Row(0)[0], 1);
  EXPECT_EQ(r.Row(1)[1], 4);
}

TEST(RelationTest, DedupRemovesDuplicates) {
  Relation r(2);
  r.AddRow({1, 2});
  r.AddRow({1, 2});
  r.AddRow({0, 9});
  r.Dedup();
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.ContainsRow(std::vector<Value>{1, 2}));
  EXPECT_TRUE(r.ContainsRow(std::vector<Value>{0, 9}));
}

TEST(RelationTest, ZeroArityMultiplicity) {
  Relation r(0);
  EXPECT_TRUE(r.empty());
  r.AddRow(std::span<const Value>{});
  r.AddRow(std::span<const Value>{});
  EXPECT_EQ(r.size(), 2u);
  r.Dedup();
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, SameRowSetIgnoresOrderAndDuplicates) {
  Relation a(1), b(1);
  a.AddRow({1});
  a.AddRow({2});
  b.AddRow({2});
  b.AddRow({1});
  b.AddRow({1});
  EXPECT_TRUE(SameRowSet(a, b));
  b.AddRow({3});
  EXPECT_FALSE(SameRowSet(a, b));
}

TEST(RowIndexTest, LookupByKeyColumns) {
  Relation r(3);
  r.AddRow({1, 10, 100});
  r.AddRow({1, 20, 200});
  r.AddRow({2, 10, 300});
  RowIndex index(r, {0});
  std::vector<Value> key{1};
  const auto* rows = index.Lookup(key);
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 2u);
  key[0] = 7;
  EXPECT_EQ(index.Lookup(key), nullptr);
}

TEST(RowIndexTest, EmptyKeyMatchesAllRows) {
  Relation r(2);
  r.AddRow({1, 2});
  r.AddRow({3, 4});
  RowIndex index(r, {});
  const auto* rows = index.Lookup(std::span<const Value>{});
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 2u);
}

VarRelation MakeVarRel(IdSet vars, std::vector<std::vector<Value>> rows) {
  VarRelation r(std::move(vars));
  for (const auto& row : rows) {
    r.rel().AddRow(std::span<const Value>(row));
  }
  return r;
}

TEST(VarRelationTest, ColumnOfFollowsSortedVarOrder) {
  VarRelation r(IdSet{7, 2, 5});
  EXPECT_EQ(r.ColumnOf(2), 0);
  EXPECT_EQ(r.ColumnOf(5), 1);
  EXPECT_EQ(r.ColumnOf(7), 2);
}

TEST(VarRelationTest, ProjectDedups) {
  VarRelation r = MakeVarRel(IdSet{0, 1}, {{1, 10}, {1, 20}, {2, 10}});
  VarRelation p = Project(r, IdSet{0});
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.rel().ContainsRow(std::vector<Value>{1}));
  EXPECT_TRUE(p.rel().ContainsRow(std::vector<Value>{2}));
}

TEST(VarRelationTest, NaturalJoinOnSharedVar) {
  VarRelation a = MakeVarRel(IdSet{0, 1}, {{1, 10}, {2, 20}});
  VarRelation b = MakeVarRel(IdSet{1, 2}, {{10, 100}, {10, 101}, {30, 300}});
  VarRelation j = Join(a, b);
  EXPECT_EQ(j.vars(), (IdSet{0, 1, 2}));
  EXPECT_EQ(j.size(), 2u);
  EXPECT_TRUE(j.rel().ContainsRow(std::vector<Value>{1, 10, 100}));
  EXPECT_TRUE(j.rel().ContainsRow(std::vector<Value>{1, 10, 101}));
}

TEST(VarRelationTest, JoinWithDisjointVarsIsCartesian) {
  VarRelation a = MakeVarRel(IdSet{0}, {{1}, {2}});
  VarRelation b = MakeVarRel(IdSet{1}, {{10}, {20}, {30}});
  EXPECT_EQ(Join(a, b).size(), 6u);
}

TEST(VarRelationTest, JoinWithUnitIsIdentity) {
  VarRelation a = MakeVarRel(IdSet{0, 3}, {{1, 2}, {4, 5}});
  VarRelation j = Join(VarRelation::Unit(), a);
  EXPECT_TRUE(SameVarRelation(j, a));
}

TEST(VarRelationTest, SemijoinFiltersAndReportsChange) {
  VarRelation a = MakeVarRel(IdSet{0, 1}, {{1, 10}, {2, 20}, {3, 30}});
  VarRelation b = MakeVarRel(IdSet{1}, {{10}, {30}});
  bool changed = false;
  VarRelation s = Semijoin(a, b, &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(s.size(), 2u);
  changed = true;
  VarRelation s2 = Semijoin(s, b, &changed);
  EXPECT_FALSE(changed);
  EXPECT_EQ(s2.size(), 2u);
}

TEST(VarRelationTest, SemijoinOnDisjointVarsKeepsAllWhenNonEmpty) {
  VarRelation a = MakeVarRel(IdSet{0}, {{1}, {2}});
  VarRelation b = MakeVarRel(IdSet{5}, {{7}});
  EXPECT_EQ(Semijoin(a, b).size(), 2u);
  VarRelation empty(IdSet{5});
  EXPECT_EQ(Semijoin(a, empty).size(), 0u);
}

TEST(VarRelationTest, SelectEqual) {
  VarRelation a = MakeVarRel(IdSet{0, 1}, {{1, 10}, {2, 20}, {1, 30}});
  VarRelation s = SelectEqual(a, 0, 1);
  EXPECT_EQ(s.size(), 2u);
}

TEST(DatabaseTest, DeclareAndAdd) {
  Database db;
  db.AddTuple("r", {1, 2});
  db.AddTuple("r", {3, 4});
  db.AddTuple("s", {5});
  EXPECT_TRUE(db.HasRelation("r"));
  EXPECT_FALSE(db.HasRelation("t"));
  EXPECT_EQ(db.relation("r").size(), 2u);
  EXPECT_EQ(db.MaxRelationSize(), 2u);
  EXPECT_EQ(db.TotalTuples(), 3u);
}

TEST(DatabaseTest, DedupAll) {
  Database db;
  db.AddTuple("r", {1, 2});
  db.AddTuple("r", {1, 2});
  db.DedupAll();
  EXPECT_EQ(db.relation("r").size(), 1u);
}

}  // namespace
}  // namespace sharpcq
